// Strategycompare reproduces the decision matrix behind the paper's
// Section 5 guidelines: it measures every strategy on every query-tree
// shape at a small and a large machine size and prints which strategy wins
// where — SP for few processors, FP for many, SE on wide bushy trees, RD on
// right-oriented trees.
package main

import (
	"context"
	"fmt"
	"log"

	"multijoin"
)

func main() {
	ctx := context.Background()
	db, err := multijoin.NewDatabase(10, 5000, 1995)
	if err != nil {
		log.Fatal(err)
	}
	params := multijoin.DefaultParams()

	// One session serves the whole decision matrix; the simulator section
	// uses it with the default "sim" runtime, the wall-clock section below
	// switches per query.
	eng, err := multijoin.Open(db,
		multijoin.WithEngineParams(params),
		multijoin.WithEngineProcs(multijoin.HostCap(16)))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	for _, procs := range []int{20, 80} {
		fmt.Printf("===== %d processors =====\n", procs)
		fmt.Printf("%-22s", "shape")
		for _, s := range multijoin.Strategies {
			fmt.Printf("%10v", s)
		}
		fmt.Printf("%10s\n", "winner")
		for _, shape := range multijoin.Shapes {
			tree, err := multijoin.BuildTree(shape, 10)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-22v", shape)
			bestSec, bestStrat := -1.0, multijoin.SP
			for _, s := range multijoin.Strategies {
				res, err := eng.Exec(ctx, multijoin.Query{
					Tree: tree, Strategy: s, Procs: procs,
				})
				if err != nil {
					log.Fatal(err)
				}
				sec := res.Time.Seconds()
				fmt.Printf("%10.2f", sec)
				if bestSec < 0 || sec < bestSec {
					bestSec, bestStrat = sec, s
				}
			}
			fmt.Printf("%10v\n", bestStrat)
		}
		fmt.Println()
	}

	// Mirroring (Section 5): RD on a left-linear tree degenerates to SP,
	// but mirroring the tree is free and makes it right-linear.
	tree, _ := multijoin.BuildTree(multijoin.LeftLinear, 10)
	left, err := eng.Exec(ctx, multijoin.Query{Tree: tree, Strategy: multijoin.RD, Procs: 80})
	if err != nil {
		log.Fatal(err)
	}
	mirrored, _ := multijoin.BuildTree(multijoin.RightLinear, 10)
	right, err := eng.Exec(ctx, multijoin.Query{Tree: mirrored, Strategy: multijoin.RD, Procs: 80})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RD on left-linear: %.2fs; after mirroring to right-linear: %.2fs\n",
		left.Time.Seconds(), right.Time.Seconds())

	// The same comparison on real cores: the goroutine runtime executes the
	// identical plans with one worker goroutine per operation process and
	// reports wall-clock time. Results are verified against the sequential
	// reference on every run.
	// Plans are generated for 16 processors (RD and FP need one processor
	// per concurrently executing join); the engine's shared processor pool
	// (WithEngineProcs above) caps actual concurrency at the host's real
	// core count.
	procs := 16
	maxProcs := multijoin.HostCap(procs)
	fmt.Printf("\n===== goroutine runtime: %d-processor plans on %d cores, wall-clock ms =====\n", procs, maxProcs)
	fmt.Printf("%-22s", "shape")
	for _, s := range multijoin.Strategies {
		fmt.Printf("%10v", s)
	}
	fmt.Printf("%10s\n", "winner")
	for _, shape := range multijoin.Shapes {
		tree, err := multijoin.BuildTree(shape, 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22v", shape)
		bestMS, bestStrat := -1.0, multijoin.SP
		for _, s := range multijoin.Strategies {
			res, err := eng.Exec(ctx, multijoin.Query{
				Tree: tree, Strategy: s, Procs: procs,
			}, multijoin.WithRuntime("parallel"), multijoin.WithVerify())
			if err != nil {
				log.Fatal(err)
			}
			ms := float64(res.Time.Microseconds()) / 1000
			fmt.Printf("%10.1f", ms)
			if bestMS < 0 || ms < bestMS {
				bestMS, bestStrat = ms, s
			}
		}
		fmt.Printf("%10v\n", bestStrat)
	}
}
