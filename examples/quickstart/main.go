// Quickstart: generate the paper's test database, open a long-lived Engine
// session over it, and execute the four strategies through the session API —
// first streaming one query's result through a Rows cursor tuple by tuple,
// then running the full strategy table on both the simulated 80-processor
// PRISMA/DB machine and the goroutine runtime with real concurrency. Every
// materialized run is verified against a sequential reference execution via
// WithVerify.
package main

import (
	"context"
	"fmt"
	"log"

	"multijoin"
)

func main() {
	// Required for the "dist" runtime below: when the coordinator re-executes
	// this binary as a worker process, this call runs the worker protocol and
	// never returns. In the normal (coordinator) invocation it is a no-op.
	multijoin.InitDistWorker()

	ctx := context.Background()

	// The paper's small experiment: 10 Wisconsin relations of 5000 tuples,
	// joined in a chain (Section 4.1).
	db, err := multijoin.NewDatabase(10, 5000, 1995)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1 of the two-phase optimization: for this regular workload all
	// trees cost the same, so we pick the wide bushy shape the paper found
	// to parallelize best.
	tree, err := multijoin.BuildTree(multijoin.WideBushy, 10)
	if err != nil {
		log.Fatal(err)
	}

	// One session serves every query below: the Engine owns the shared
	// processor pool, the shared memory budget and the admission queue, the
	// way PRISMA/DB owns its machine across queries.
	eng, err := multijoin.Open(db, multijoin.WithMaxConcurrent(8))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Streaming consumption: Engine.Query returns a cursor, not a
	// relation. Tuples arrive while the join pipeline is still running —
	// here we stop after a handful, and closing the cursor tears the
	// query's workers down without waiting for the rest.
	q := multijoin.Query{DB: db, Tree: tree, Strategy: multijoin.FP, Procs: 80}
	rows, err := eng.Query(ctx, q, multijoin.WithRuntime("parallel"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("first 5 result tuples, streamed from the FP pipeline:")
	n := 0
	for t := range rows.Iter() {
		fmt.Printf("  unique1=%-8d unique2=%-8d check=%016x\n", t.Unique1, t.Unique2, t.Check)
		if n++; n == 5 {
			break
		}
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Phase 2: parallelize with each strategy and execute on every
	// registered runtime through the same session. The simulator measures
	// virtual seconds on 80 simulated processors; the wall-clock runtimes
	// run the identical plans on the host's real cores — "dist" spreads
	// them over two spawned worker processes connected by loopback TCP.
	// Engine.Exec materializes (Rows.All under the hood) and WithVerify
	// checks each result against the sequential reference.
	for _, rt := range multijoin.RuntimeNames() {
		fmt.Printf("wide bushy tree, 50000 tuples, runtime=%s:\n", rt)
		fmt.Printf("%-10s%14s%12s%12s%10s\n", "strategy", "time (s)", "processes", "streams", "virtual")
		for _, s := range multijoin.Strategies {
			q := multijoin.Query{
				DB: db, Tree: tree, Strategy: s, Procs: 80,
				Params: multijoin.DefaultParams(),
			}
			res, err := eng.Exec(ctx, q,
				multijoin.WithRuntime(rt),
				multijoin.WithVerify())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10v%14.3f%12d%12d%10v\n",
				s, res.Time.Seconds(), res.Stats.Processes, res.Stats.Streams, res.Virtual)
		}
		fmt.Println()
	}

	fmt.Println("The paper's guideline: use SP on few processors, FP on many;")
	fmt.Println("SE shines on wide bushy trees, RD on right-oriented ones.")
}
