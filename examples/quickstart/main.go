// Quickstart: generate the paper's test database, parallelize one join tree
// with each of the four strategies, execute on the simulated 80-processor
// PRISMA/DB machine, and verify every result against a sequential reference
// execution.
package main

import (
	"fmt"
	"log"

	"multijoin"
)

func main() {
	// The paper's small experiment: 10 Wisconsin relations of 5000 tuples,
	// joined in a chain (Section 4.1).
	db, err := multijoin.NewDatabase(10, 5000, 1995)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1 of the two-phase optimization: for this regular workload all
	// trees cost the same, so we pick the wide bushy shape the paper found
	// to parallelize best.
	tree, err := multijoin.BuildTree(multijoin.WideBushy, 10)
	if err != nil {
		log.Fatal(err)
	}

	// The correctness oracle: a sequential reference execution.
	want := multijoin.Reference(db, tree)

	// Phase 2: parallelize with each strategy and execute on 80 simulated
	// processors.
	fmt.Println("wide bushy tree, 50000 tuples, 80 processors:")
	fmt.Printf("%-10s%12s%12s%12s%14s\n", "strategy", "resp (s)", "processes", "streams", "verified")
	for _, s := range multijoin.Strategies {
		res, err := multijoin.Run(multijoin.Query{
			DB: db, Tree: tree, Strategy: s, Procs: 80,
			Params: multijoin.DefaultParams(),
		})
		if err != nil {
			log.Fatal(err)
		}
		verified := res.Result.Card() == want.Card()
		fmt.Printf("%-10v%12.2f%12d%12d%14v\n",
			s, res.ResponseTime.Seconds(), res.Stats.Processes, res.Stats.Streams, verified)
	}

	fmt.Println("\nThe paper's guideline: use SP on few processors, FP on many;")
	fmt.Println("SE shines on wide bushy trees, RD on right-oriented ones.")
}
