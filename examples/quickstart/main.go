// Quickstart: generate the paper's test database, parallelize one join tree
// with each of the four strategies, and execute through the unified Exec
// API — first on the simulated 80-processor PRISMA/DB machine, then the
// same plans on the goroutine runtime with real concurrency. Every run is
// verified against a sequential reference execution via WithVerify.
package main

import (
	"context"
	"fmt"
	"log"

	"multijoin"
)

func main() {
	ctx := context.Background()

	// The paper's small experiment: 10 Wisconsin relations of 5000 tuples,
	// joined in a chain (Section 4.1).
	db, err := multijoin.NewDatabase(10, 5000, 1995)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1 of the two-phase optimization: for this regular workload all
	// trees cost the same, so we pick the wide bushy shape the paper found
	// to parallelize best.
	tree, err := multijoin.BuildTree(multijoin.WideBushy, 10)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 2: parallelize with each strategy and execute on every
	// registered runtime through the same call. The simulator measures
	// virtual seconds on 80 simulated processors; the goroutine runtime
	// runs the identical plans on the host's real cores. WithVerify checks
	// each result against the sequential reference.
	for _, rt := range multijoin.RuntimeNames() {
		fmt.Printf("wide bushy tree, 50000 tuples, runtime=%s:\n", rt)
		fmt.Printf("%-10s%14s%12s%12s%10s\n", "strategy", "time (s)", "processes", "streams", "virtual")
		for _, s := range multijoin.Strategies {
			q := multijoin.Query{
				DB: db, Tree: tree, Strategy: s, Procs: 80,
				Params: multijoin.DefaultParams(),
			}
			res, err := multijoin.Exec(ctx, q,
				multijoin.WithRuntime(rt),
				multijoin.WithMaxProcs(multijoin.HostCap(80)),
				multijoin.WithVerify())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10v%14.3f%12d%12d%10v\n",
				s, res.Time.Seconds(), res.Stats.Processes, res.Stats.Streams, res.Virtual)
		}
		fmt.Println()
	}

	fmt.Println("The paper's guideline: use SP on few processors, FP on many;")
	fmt.Println("SE shines on wide bushy trees, RD on right-oriented ones.")
}
