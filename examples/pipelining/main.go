// Pipelining demonstrates the difference between the simple (build-probe)
// hash-join and the pipelining (symmetric) hash-join of Section 2.3.2 at the
// algorithm level: the pipelining join emits result tuples long before its
// operands are complete, at the price of a second hash table. It then shows
// the system-level consequence: on a linear pipeline, FP's response time
// beats a strategy without inter-operator pipelining.
package main

import (
	"context"
	"fmt"
	"log"

	"multijoin"
	"multijoin/internal/hashjoin"
	"multijoin/internal/relation"
)

func main() {
	const n = 10000
	db, err := multijoin.NewDatabase(2, n, 42)
	if err != nil {
		log.Fatal(err)
	}
	lower, higher := db.Relation(0), db.Relation(1)
	spec := hashjoin.Spec{BuildIsLower: true}

	// Feed both joins the same interleaved batches and track when the
	// first and half of the results appear (measured in consumed tuples).
	fmt.Printf("join of two %d-tuple relations, batches of 100 tuples:\n\n", n)

	pipe := hashjoin.NewPipelining(spec)
	var consumed, produced, firstAt, halfAt int
	for i := 0; i < n; i += 100 {
		out := pipe.FromBuildSide(lower.Tuples[i : i+100])
		consumed += 100
		produced += len(out)
		out = pipe.FromProbeSide(higher.Tuples[i : i+100])
		consumed += 100
		produced += len(out)
		if firstAt == 0 && produced > 0 {
			firstAt = consumed
		}
		if halfAt == 0 && produced >= n/2 {
			halfAt = consumed
		}
	}
	bt, pt := pipe.Sizes()
	fmt.Printf("pipelining hash-join: first result after %d consumed tuples,\n", firstAt)
	fmt.Printf("  half the output after %d of %d; memory: %d + %d tuples (two tables)\n\n",
		halfAt, 2*n, bt, pt)

	simple := hashjoin.NewSimple(spec)
	simple.Insert(lower.Tuples) // the build phase consumes the whole operand
	out := simple.Probe(higher.Tuples[:100])
	fmt.Printf("simple hash-join: zero results until the build phase ends at %d consumed\n", n)
	fmt.Printf("  tuples; first probe batch then yields %d results; memory: %d tuples\n\n",
		len(out), simple.BuildSize())

	// Both algorithms agree exactly.
	a := hashjoin.Join(lower, higher, spec, false)
	b := hashjoin.Join(lower, higher, spec, true)
	fmt.Printf("results identical: %v (%d tuples)\n\n", relation.EqualMultiset(a, b), a.Card())

	// System-level effect on a 10-relation right-linear pipeline, through a
	// session: the Engine supplies default runtime and params, Engine.Exec
	// materializes the streamed result.
	big, err := multijoin.NewDatabase(10, 5000, 42)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := multijoin.Open(big)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	tree, _ := multijoin.BuildTree(multijoin.RightLinear, 10)
	for _, s := range []multijoin.Strategy{multijoin.SP, multijoin.FP} {
		res, err := eng.Exec(context.Background(), multijoin.Query{
			Tree: tree, Strategy: s, Procs: 60,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("right-linear chain, 60 procs, %v: %.2fs (%d processes)\n",
			s, res.Time.Seconds(), res.Stats.Processes)
	}
}
