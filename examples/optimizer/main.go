// Optimizer demonstrates phase 1 of the two-phase optimization (Section
// 1.2): dynamic programming over chain spans under the paper's cost
// function, in both the System R linear space and the full bushy space.
//
// On the paper's regular workload every tree costs the same — which is
// exactly why the paper can study parallelization in isolation. On a skewed
// catalog the spaces diverge and the bushy optimum wins, supporting the
// paper's closing advice to prefer bushy trees.
package main

import (
	"context"
	"fmt"
	"log"

	"multijoin"
)

func main() {
	// Regular catalog: 10 relations x 5000 tuples, 1:1 joins.
	uniform := multijoin.UniformCatalog(10, 5000)
	linTree, linCost, err := multijoin.Optimize(uniform, multijoin.LinearSpace)
	if err != nil {
		log.Fatal(err)
	}
	bushyTree, bushyCost, err := multijoin.Optimize(uniform, multijoin.BushySpace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("uniform catalog (the paper's workload):")
	fmt.Printf("  linear optimum cost %.0f units: %v\n", linCost, linTree)
	fmt.Printf("  bushy  optimum cost %.0f units: %v\n", bushyCost, bushyTree)
	fmt.Println("  => equal total cost; shape only matters for parallelization")

	// Skewed catalog: very selective predicates at both ends of the chain
	// and weak ones in the middle. A bushy plan shrinks both ends first and
	// joins two small intermediates; a linear plan has to drag a growing
	// intermediate across the weak middle predicates.
	skewed := multijoin.Catalog{
		Cards: []float64{10000, 10000, 10000, 10000, 10000, 10000},
		Sel:   []float64{1e-4, 5e-3, 5e-3, 5e-3, 1e-4},
	}
	linTree, linCost, err = multijoin.Optimize(skewed, multijoin.LinearSpace)
	if err != nil {
		log.Fatal(err)
	}
	bushyTree, bushyCost, err = multijoin.Optimize(skewed, multijoin.BushySpace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nskewed catalog (selective predicates at both chain ends):")
	fmt.Printf("  linear optimum cost %.0f units: %v\n", linCost, linTree)
	fmt.Printf("  bushy  optimum cost %.0f units: %v\n", bushyCost, bushyTree)
	fmt.Printf("  => bushy space saves %.1f%% total work\n", 100*(1-bushyCost/linCost))

	// Full two-phase pipeline: optimize, then parallelize with FP and run.
	db, err := multijoin.NewDatabase(10, 5000, 1995)
	if err != nil {
		log.Fatal(err)
	}
	tree, res, err := multijoin.TwoPhase(db, multijoin.BushySpace, multijoin.FP, 40, multijoin.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntwo-phase pipeline on the generated database:\n")
	fmt.Printf("  chosen tree: %v\n", tree)
	fmt.Printf("  FP on 40 processors: %.2fs response time, %d result tuples\n",
		res.ResponseTime.Seconds(), res.Stats.ResultTuples)

	// The same optimized tree through a session, this time on the goroutine
	// runtime: the Engine's shared processor pool takes the place of a
	// per-run WithMaxProcs, wall-clock time on the host's cores, verified
	// against the sequential reference.
	eng, err := multijoin.Open(db,
		multijoin.WithEngineRuntime("parallel"),
		multijoin.WithEngineProcs(multijoin.HostCap(16)))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	par, err := eng.Exec(context.Background(), multijoin.Query{
		Tree: tree, Strategy: multijoin.FP, Procs: 16,
	}, multijoin.WithVerify())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  same tree on the %s runtime: %v wall time, verified\n",
		par.Runtime, par.Time)
}
