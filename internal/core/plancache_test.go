package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"multijoin/internal/jointree"
	"multijoin/internal/strategy"
	"multijoin/internal/xra"
)

// TestPlanCacheOverflowPreservesInFlight is the regression test for the
// overflow reset racing a planning in flight: a caller is blocked inside
// its entry's once.Do when the cache overflows and resets the map. The
// in-flight entry must survive the reset — pre-fix the map was replaced
// wholesale, so a later same-key caller found no entry, built a fresh one,
// and re-ran the plan behind the first caller's back (two plannings of
// one key, breaking the singleflight contract).
func TestPlanCacheOverflowPreservesInFlight(t *testing.T) {
	db := sessionDB(t, 2, 8)
	tree, err := jointree.BuildShape(jointree.WideBushy, db.NumRelations())
	if err != nil {
		t.Fatal(err)
	}
	q := func(procs int) Query {
		return Query{DB: db, Tree: tree, Strategy: strategy.FP, Procs: procs}
	}

	const hotProcs = 1 << 20 // sentinel Procs marking the hot key
	c := newPlanCache()
	block := make(chan struct{})
	entered := make(chan struct{}, 4)
	var hotPlans atomic.Int32
	c.planFn = func(qq Query) (*xra.Plan, error) {
		if qq.Procs == hotProcs {
			hotPlans.Add(1)
			entered <- struct{}{}
			<-block
		}
		return &xra.Plan{Strategy: fmt.Sprintf("p%d", qq.Procs)}, nil
	}

	// First hot caller: enters planFn and parks there, mid-once.Do.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := c.plan(q(hotProcs)); err != nil {
			t.Errorf("first hot plan: %v", err)
		}
	}()
	<-entered

	// Churn the cache past planCacheMaxEntries with distinct keys while the
	// hot entry is still in flight, forcing the overflow reset.
	for i := 0; i < planCacheMaxEntries; i++ {
		if _, _, err := c.plan(q(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	if n := len(c.m); n > planCacheMaxEntries/2 {
		t.Fatalf("overflow reset did not happen (cache holds %d entries)", n)
	}
	_, hotSurvived := c.m[planKey(q(hotProcs))]
	c.mu.Unlock()
	if !hotSurvived {
		t.Error("in-flight entry dropped by the overflow reset")
	}

	// Second hot caller after the reset: must join the in-flight entry, not
	// start a second planning.
	wg.Add(1)
	var secondHit atomic.Bool
	go func() {
		defer wg.Done()
		_, hit, err := c.plan(q(hotProcs))
		if err != nil {
			t.Errorf("second hot plan: %v", err)
		}
		secondHit.Store(hit)
	}()

	close(block)
	wg.Wait()
	if n := hotPlans.Load(); n != 1 {
		t.Errorf("hot key planned %d times across the overflow reset, want 1", n)
	}
	if !secondHit.Load() {
		t.Error("second same-key caller missed instead of joining the in-flight entry")
	}
}

// TestPlanCacheChurnAtOverflow hammers the cache across the overflow
// boundary from many goroutines (run under -race): keys cycle through a
// range wider than planCacheMaxEntries so resets happen repeatedly while
// lookups race them. Asserts the accounting invariant hits+misses == calls
// and that every call yields a plan.
func TestPlanCacheChurnAtOverflow(t *testing.T) {
	db := sessionDB(t, 2, 8)
	tree, err := jointree.BuildShape(jointree.WideBushy, db.NumRelations())
	if err != nil {
		t.Fatal(err)
	}

	c := newPlanCache()
	c.planFn = func(qq Query) (*xra.Plan, error) {
		return &xra.Plan{Strategy: fmt.Sprintf("p%d", qq.Procs)}, nil
	}

	const (
		workers  = 8
		perG     = 600
		keySpace = planCacheMaxEntries + planCacheMaxEntries/2
	)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				procs := (g*perG+i*7)%keySpace + 1
				p, _, err := c.plan(Query{DB: db, Tree: tree, Strategy: strategy.FP, Procs: procs})
				if err != nil {
					t.Errorf("plan: %v", err)
					return
				}
				if want := fmt.Sprintf("p%d", procs); p.Strategy != want {
					t.Errorf("key p%d got plan %q (cross-key entry reuse)", procs, p.Strategy)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	hits, misses := c.Stats()
	if total := hits + misses; total != workers*perG {
		t.Errorf("hits+misses = %d, want %d", total, workers*perG)
	}
	c.mu.Lock()
	n := len(c.m)
	c.mu.Unlock()
	if n > planCacheMaxEntries {
		t.Errorf("cache holds %d entries after churn, above the %d bound", n, planCacheMaxEntries)
	}
}

// TestPlanCacheNilTree is the regression test for a zero-valued Query
// (no join tree) reaching the plan cache through the public Engine.Query:
// planKey rendered q.Tree.String() before Query.Plan could report its
// contract error, so a library caller got a nil-pointer panic instead of
// "query needs a database and a join tree". The cache must bypass keying
// and surface Plan's error.
func TestPlanCacheNilTree(t *testing.T) {
	db := sessionDB(t, 2, 8)
	eng, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	if _, err := eng.Query(context.Background(), Query{Procs: 4}); err == nil {
		t.Fatal("Query with nil tree: want contract error, got nil")
	} else if !strings.Contains(err.Error(), "join tree") {
		t.Fatalf("Query with nil tree: want the Plan contract error, got %v", err)
	}

	c := newPlanCache()
	if _, _, err := c.plan(Query{DB: db}); err == nil {
		t.Fatal("plan with nil tree: want error, got nil")
	}
	if _, _, err := c.plan(Query{Tree: mustTree(t, db.NumRelations())}); err == nil {
		t.Fatal("plan with nil DB: want error, got nil")
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("contract-error bypass must not touch the cache counters: hits=%d misses=%d", hits, misses)
	}
}

func mustTree(t *testing.T, k int) *jointree.Node {
	t.Helper()
	tree, err := jointree.BuildShape(jointree.WideBushy, k)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}
