package core

import (
	"context"
	"time"

	"multijoin/internal/dist"
	"multijoin/internal/engine"
	"multijoin/internal/parallel"
	"multijoin/internal/sim"
	"multijoin/internal/spill"
	"multijoin/internal/xra"
)

// The built-in backends register themselves like database/sql drivers;
// future runtimes (affinity queues, calibrated wall-clock) do the same from
// their own packages.
func init() {
	RegisterRuntime("sim", simRuntime{})
	RegisterRuntime("parallel", parallelRuntime{})
	RegisterRuntime("spill", spillRuntime{})
	RegisterRuntime("dist", distRuntime{})
}

// simRuntime executes plans on the discrete-event-simulated PRISMA/DB
// machine (package engine): virtual response time, deterministic, the
// source of every figure of the paper's evaluation.
type simRuntime struct{}

func (simRuntime) Name() string { return "sim" }

func (simRuntime) Execute(ctx context.Context, plan *xra.Plan, base BaseFunc, sink Sink, opts Options) (*Result, error) {
	res, err := engine.RunStream(ctx, plan, base, opts.Params, sink)
	if err != nil {
		return nil, err
	}
	return &Result{
		Runtime: "sim",
		Virtual: true,
		Time:    simToWall(res.ResponseTime),
		Stats: Stats{
			Processes:              res.Stats.Processes,
			Streams:                res.Stats.Streams,
			TuplesMovedRemote:      res.Stats.TuplesMovedRemote,
			TuplesLocal:            res.Stats.TuplesLocal,
			Batches:                res.Stats.Batches,
			ResultTuples:           res.Stats.ResultTuples,
			OpDone:                 simOpDone(res.Stats.OpFinish),
			StartupTime:            simToWall(res.Stats.StartupTime),
			HandshakeTime:          simToWall(res.Stats.HandshakeTime),
			SimEvents:              res.Stats.SimEvents,
			PeakTableTuplesPerProc: res.Stats.PeakTableTuplesPerProc,
			PeakTableTuplesTotal:   res.Stats.PeakTableTuplesTotal,
		},
	}, nil
}

// simToWall converts virtual microseconds to a time.Duration of the same
// magnitude.
func simToWall[T ~int64](d T) time.Duration { return time.Duration(d) * time.Microsecond }

func simOpDone(finish map[string]sim.Time) map[string]time.Duration {
	done := make(map[string]time.Duration, len(finish))
	for id, t := range finish {
		done[id] = simToWall(t)
	}
	return done
}

// parallelRuntime executes plans with real goroutine concurrency (package
// parallel): one worker goroutine per operation process, one buffered
// channel per tuple stream, wall-clock time.
type parallelRuntime struct{}

func (parallelRuntime) Name() string { return "parallel" }

func (parallelRuntime) Execute(ctx context.Context, plan *xra.Plan, base BaseFunc, sink Sink, opts Options) (*Result, error) {
	cfg := parallel.Config{
		MaxProcs:     opts.MaxProcs,
		BatchTuples:  opts.BatchTuples,
		ChannelDepth: opts.ChannelDepth,
	}
	if s := opts.shared; s != nil {
		cfg.Pool = s.procs
	}
	res, err := parallel.RunStream(ctx, plan, base, cfg, sink)
	if err != nil {
		return nil, err
	}
	return wallResult("parallel", res), nil
}

// spillRuntime executes plans out-of-core: the goroutine runtime in
// memory-budgeted mode, where join operands are hash-partitioned against a
// per-run budget (Options.MemoryBudget, default spill.DefaultBudgetBytes),
// overflow partitions are serialized to temp files, and every join runs
// Grace-style, partition-at-a-time. It opens the memory-constrained
// scenario class the in-memory runtimes cannot run: the result multiset is
// identical, but peak tuple residency is bounded by the budget instead of
// the operand sizes.
type spillRuntime struct{}

func (spillRuntime) Name() string { return "spill" }

func (spillRuntime) Execute(ctx context.Context, plan *xra.Plan, base BaseFunc, sink Sink, opts Options) (*Result, error) {
	budget := opts.MemoryBudget
	if budget < 1 {
		budget = spill.DefaultBudgetBytes
	}
	cfg := parallel.Config{
		MaxProcs:     opts.MaxProcs,
		BatchTuples:  opts.BatchTuples,
		ChannelDepth: opts.ChannelDepth,
		MemoryBudget: budget,
	}
	if s := opts.shared; s != nil {
		// Engine session: shared dispatchers, and the engine's shared
		// memory budget (a per-query child meter) replaces the private
		// per-run budget, so concurrent queries spill against their
		// combined residency.
		cfg.Pool = s.procs
		cfg.Meter = s.meter
	}
	res, err := parallel.RunStream(ctx, plan, base, cfg, sink)
	if err != nil {
		return nil, err
	}
	return wallResult("spill", res), nil
}

// distRuntime executes plans across multiple OS processes (package dist):
// a coordinator partitions the plan's operation processes over
// Options.Workers spawned mjworker children and streams every node-crossing
// redistribution edge over loopback TCP as credit-windowed columnar batch
// blocks; the coordinator-side collect feeds the caller's Sink, so
// Engine.Query/Rows work over it transparently. Under an Engine session the
// shared processor pool and memory meter do not apply — each worker process
// schedules its own local processes (shared-nothing by construction).
type distRuntime struct{}

func (distRuntime) Name() string { return "dist" }

func (distRuntime) Execute(ctx context.Context, plan *xra.Plan, base BaseFunc, sink Sink, opts Options) (*Result, error) {
	cfg := dist.Config{
		Workers:      opts.Workers,
		BatchTuples:  opts.BatchTuples,
		ChannelDepth: opts.ChannelDepth,
	}
	res, err := dist.Run(ctx, plan, base, cfg, sink)
	if err != nil {
		return nil, err
	}
	return &Result{
		Runtime: "dist",
		Virtual: false,
		Time:    res.WallTime,
		Stats: Stats{
			Processes:         res.Stats.Processes,
			Streams:           res.Stats.Streams,
			TuplesMovedRemote: res.Stats.TuplesMovedRemote,
			TuplesLocal:       res.Stats.TuplesLocal,
			Batches:           res.Stats.Batches,
			ResultTuples:      res.Stats.ResultTuples,
			OpDone:            res.Stats.OpWall,
			Goroutines:        res.Stats.Goroutines,
			BytesOnWire:       res.Stats.BytesOnWire,
			Workers:           res.Stats.Workers,
		},
	}, nil
}

// wallResult maps a goroutine-runtime result onto the unified Result.
func wallResult(name string, res *parallel.RunResult) *Result {
	return &Result{
		Runtime: name,
		Virtual: false,
		Time:    res.WallTime,
		Stats: Stats{
			Processes:         res.Stats.Processes,
			Streams:           res.Stats.Streams,
			TuplesMovedRemote: res.Stats.TuplesMovedRemote,
			TuplesLocal:       res.Stats.TuplesLocal,
			Batches:           res.Stats.Batches,
			ResultTuples:      res.Stats.ResultTuples,
			OpDone:            res.Stats.OpWall,
			Goroutines:        res.Stats.Goroutines,
			MaxProcs:          res.Stats.MaxProcs,
			BytesSpilled:      res.Stats.BytesSpilled,
			SpillPartitions:   res.Stats.SpillPartitions,
			SpillTime:         res.Stats.SpillTime,
		},
	}
}
