package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"multijoin/internal/jointree"
	"multijoin/internal/relation"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
)

// tinyBudget is small enough that every join operand overflows: each join
// process must spill at least one partition, so the out-of-core path is
// genuinely exercised rather than degenerating to the in-memory one.
const tinyBudget = 1 << 12

// scopeTempDir points TMPDIR at a fresh per-test directory so the temp-file
// audit sees only this test's spill runs: `go test ./...` runs packages in
// parallel, and other packages (the fuzz harness, the experiments tests)
// legitimately create mjspill-* dirs in the shared OS temp dir at the same
// time. os.MkdirTemp consults TMPDIR on every call, so the redirect takes
// effect without restarting anything.
func scopeTempDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	t.Setenv("TMPDIR", dir)
	return dir
}

// spillTempFiles counts mjspill temp dirs (and any partition files inside
// them) left in the scoped temp directory — the leak audit for the spill
// runtime, which promises to remove its per-run directory wholesale.
func spillTempFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "mjspill-*"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// openFDs returns the number of open file descriptors of this process, or
// -1 on platforms without /proc.
func openFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// TestRuntimeNamesIncludeSpill pins the acceptance criterion that "spill"
// is a registered runtime.
func TestRuntimeNamesIncludeSpill(t *testing.T) {
	names := RuntimeNames()
	for _, name := range names {
		if name == "spill" {
			return
		}
	}
	t.Fatalf("RuntimeNames() = %v does not include %q", names, "spill")
}

// TestSpillEquivalenceAllStrategies runs every strategy on the spill
// runtime under a budget that forces at least one spilled partition per
// join and asserts the checksum multiset matches the sequential reference,
// with no temp files, descriptors or goroutines left behind.
func TestSpillEquivalenceAllStrategies(t *testing.T) {
	db, err := wisconsin.Chain(wisconsin.Config{Relations: 6, Cardinality: 2000, Seed: 1995})
	if err != nil {
		t.Fatal(err)
	}
	joins := db.NumRelations() - 1
	for _, kind := range strategy.Kinds {
		for _, shape := range []jointree.Shape{jointree.LeftLinear, jointree.WideBushy, jointree.RightLinear} {
			t.Run(fmt.Sprintf("%v/%v", kind, shape), func(t *testing.T) {
				tmp := scopeTempDir(t)
				tree, err := jointree.BuildShape(shape, db.NumRelations())
				if err != nil {
					t.Fatal(err)
				}
				beforeG := runtime.NumGoroutine()
				beforeFD := openFDs()
				q := Query{DB: db, Tree: tree, Strategy: kind, Procs: 8}
				res, err := Exec(context.Background(), q,
					WithRuntime("spill"), WithMemoryBudget(tinyBudget))
				if err != nil {
					t.Fatal(err)
				}
				want := Reference(db, tree)
				if diff := relation.DiffMultiset(res.Result, want); diff != "" {
					t.Fatalf("spill result differs from reference: %s", diff)
				}
				if res.Stats.SpillPartitions < joins {
					t.Errorf("budget %d spilled only %d partitions for %d joins, want >= 1 per join",
						tinyBudget, res.Stats.SpillPartitions, joins)
				}
				if res.Stats.BytesSpilled == 0 {
					t.Error("BytesSpilled = 0 under a tiny budget")
				}
				if left := spillTempFiles(t, tmp); len(left) != 0 {
					t.Errorf("spill run left temp files: %v", left)
				}
				if afterG := settleGoroutines(beforeG, 2, 5*time.Second); afterG > beforeG+2 {
					t.Errorf("goroutine leak: %d before, %d after", beforeG, afterG)
				}
				if beforeFD >= 0 {
					if afterFD := openFDs(); afterFD > beforeFD {
						t.Errorf("fd leak: %d before, %d after", beforeFD, afterFD)
					}
				}
			})
		}
	}
}

// TestSpillDefaultBudgetStaysInMemory asserts the paper-sized workloads run
// on the spill runtime without spilling under the default budget — the
// runtime only pays the out-of-core price when memory is actually short —
// while still producing the reference multiset.
func TestSpillDefaultBudgetStaysInMemory(t *testing.T) {
	db, err := wisconsin.Chain(wisconsin.Config{Relations: 5, Cardinality: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := jointree.BuildShape(jointree.WideBushy, 5)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{DB: db, Tree: tree, Strategy: strategy.FP, Procs: 8}
	res, err := Exec(context.Background(), q, WithRuntime("spill"), WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BytesSpilled != 0 || res.Stats.SpillPartitions != 0 {
		t.Errorf("default budget spilled %d bytes in %d partitions on a tiny workload",
			res.Stats.BytesSpilled, res.Stats.SpillPartitions)
	}
	if res.Runtime != "spill" {
		t.Errorf("Result.Runtime = %q, want spill", res.Runtime)
	}
}

// TestSpillCancelMidQuery cancels a budgeted run mid-flight and audits all
// three resources the spill path can leak: goroutines, temp files, and file
// descriptors.
func TestSpillCancelMidQuery(t *testing.T) {
	tmp := scopeTempDir(t)
	q := cancelQuery(t)
	for i := 0; i < 6; i++ {
		beforeG := runtime.NumGoroutine()
		beforeFD := openFDs()
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func() {
			_, err := Exec(ctx, q, WithRuntime("spill"), WithMemoryBudget(tinyBudget))
			errc <- err
		}()
		// Vary the cancellation point to hit partitioning, spilling and
		// drain phases.
		time.Sleep(time.Duration(i*2) * time.Millisecond)
		cancel()
		select {
		case err := <-errc:
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("round %d: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: spill Exec hung after cancel", i)
		}
		if left := spillTempFiles(t, tmp); len(left) != 0 {
			t.Fatalf("round %d: cancelled spill run left temp files: %v", i, left)
		}
		if afterG := settleGoroutines(beforeG, 2, 5*time.Second); afterG > beforeG+2 {
			t.Errorf("round %d: goroutine leak after cancel: %d before, %d after", i, beforeG, afterG)
		}
		if beforeFD >= 0 {
			if afterFD := openFDs(); afterFD > beforeFD {
				t.Errorf("round %d: fd leak after cancel: %d before, %d after", i, beforeFD, afterFD)
			}
		}
	}
}

// TestSpillCancelBeforeStart asserts a pre-cancelled context is refused
// before any temp directory is created.
func TestSpillCancelBeforeStart(t *testing.T) {
	tmp := scopeTempDir(t)
	q := cancelQuery(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Exec(ctx, q, WithRuntime("spill"), WithMemoryBudget(tinyBudget))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled spill Exec returned %v, want context.Canceled", err)
	}
	if left := spillTempFiles(t, tmp); len(left) != 0 {
		t.Fatalf("pre-cancelled spill Exec created temp files: %v", left)
	}
}

// TestSpillErrorMentionsRuntime asserts a spill-runtime verification
// failure is attributed to the spill runtime (the unified error path).
func TestSpillErrorMentionsRuntime(t *testing.T) {
	_, err := LookupRuntime("spill")
	if err != nil {
		t.Fatal(err)
	}
	_, err = LookupRuntime("no-such-runtime")
	if err == nil || !strings.Contains(err.Error(), "spill") {
		t.Fatalf("unknown-runtime error %v does not list spill among registered runtimes", err)
	}
}
