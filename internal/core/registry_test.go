package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"multijoin/internal/relation"
	"multijoin/internal/xra"
)

func TestRuntimeNamesContainBuiltins(t *testing.T) {
	names := RuntimeNames()
	got := strings.Join(names, ",")
	for _, want := range []string{"parallel", "sim"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("RuntimeNames() = %s, missing %q", got, want)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("RuntimeNames() not sorted: %s", got)
		}
	}
}

func TestLookupRuntimeUnknownListsNames(t *testing.T) {
	_, err := LookupRuntime("nope")
	if err == nil {
		t.Fatal("unknown runtime must fail")
	}
	for _, want := range []string{`"nope"`, "sim", "parallel"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// fakeRuntime honors the Runtime contract (a non-nil Result or an error,
// prompt ctx handling) so that, being registered process-globally, it
// cannot break any other test that resolves it through the registry.
type fakeRuntime struct{}

func (fakeRuntime) Name() string { return "fake" }
func (fakeRuntime) Execute(ctx context.Context, _ *xra.Plan, _ BaseFunc, _ Sink, _ Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Result{Runtime: "fake", Result: relation.New("fake", 0)}, nil
}

// registerFakeOnce makes TestRegisterRuntimeDuplicatePanics reentrant: the
// registry is process-global with no unregister, so under -count=N only
// the first pass may perform the initial registration.
var registerFakeOnce sync.Once

func TestRegisterRuntimeDuplicatePanics(t *testing.T) {
	registerFakeOnce.Do(func() { RegisterRuntime("registry-test-once", fakeRuntime{}) })
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	RegisterRuntime("registry-test-once", fakeRuntime{})
}

func TestRegisterRuntimeRejectsEmptyAndNil(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("empty name", func() { RegisterRuntime("", fakeRuntime{}) })
	mustPanic("nil runtime", func() { RegisterRuntime("registry-test-nil", nil) })
}
