package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"multijoin/internal/costmodel"
	"multijoin/internal/jointree"
	"multijoin/internal/relation"
	"multijoin/internal/strategy"
)

// TestPlanCacheSingleflight is the plan-cache race test: a stampede of
// identical-shape queries interleaved with distinct shapes must plan each
// distinct shape exactly once (misses == shapes, everything else hits) and
// still return correct results, under -race.
func TestPlanCacheSingleflight(t *testing.T) {
	db := sessionDB(t, 5, 400)
	eng, err := Open(db, WithEngineRuntime("parallel"))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	shapes := []jointree.Shape{jointree.WideBushy, jointree.RightLinear, jointree.LeftBushy}
	kinds := []strategy.Kind{strategy.FP, strategy.RD}
	refs := map[jointree.Shape]*relation.Relation{}
	for _, shape := range shapes {
		refs[shape] = Reference(db, sessionQuery(t, db, shape, strategy.FP).Tree)
	}
	// Distinct cache keys: shape × strategy (all queries share procs and
	// cardinalities).
	distinct := int64(len(shapes) * len(kinds))

	const perShape = 8
	var wg sync.WaitGroup
	errc := make(chan error, int(distinct)*perShape)
	for _, shape := range shapes {
		for _, kind := range kinds {
			for i := 0; i < perShape; i++ {
				wg.Add(1)
				go func(shape jointree.Shape, kind strategy.Kind) {
					defer wg.Done()
					q := sessionQuery(t, db, shape, kind)
					rows, err := eng.Query(context.Background(), q)
					if err != nil {
						errc <- err
						return
					}
					got, err := rows.All()
					if err != nil {
						errc <- err
						return
					}
					if diff := relation.DiffMultiset(got, refs[shape]); diff != "" {
						errc <- fmt.Errorf("%v/%v differs from reference: %s", shape, kind, diff)
					}
				}(shape, kind)
			}
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	hits, misses := eng.PlanCacheStats()
	if misses != distinct {
		t.Errorf("plan cache misses = %d, want exactly %d (one per distinct shape)", misses, distinct)
	}
	if want := distinct * (perShape - 1); hits != want {
		t.Errorf("plan cache hits = %d, want %d", hits, want)
	}
}

// TestPlanCacheHitReported asserts ExecStats.PlanCacheHit: false on the
// first query of a shape, true on the repeat.
func TestPlanCacheHitReported(t *testing.T) {
	db := sessionDB(t, 4, 200)
	eng, err := Open(db, WithEngineRuntime("parallel"))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q := sessionQuery(t, db, jointree.WideBushy, strategy.FP)
	for i, wantHit := range []bool{false, true, true} {
		res, err := eng.Exec(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.PlanCacheHit != wantHit {
			t.Errorf("query %d: PlanCacheHit = %v, want %v", i, res.Stats.PlanCacheHit, wantHit)
		}
	}
}

// TestCostAdmissionCorrectAndLeakFree is the reservation leak audit: under
// the cost policy with a forcing shared budget, a mix of completed and
// cancelled-mid-stream spill queries must produce reference-identical
// results, report reservations in ExecStats, and leave the shared meter at
// exactly zero once everything settles.
func TestCostAdmissionCorrectAndLeakFree(t *testing.T) {
	db := sessionDB(t, 5, 1500)
	cal := costmodel.Calibration{
		HashNanos: 20, ProbeNanos: 25, TransportNanos: 15,
		BatchNanos: 500, StartupNanos: 2000, UnitNanos: 20,
	}
	eng, err := Open(db,
		WithMaxConcurrent(4),
		WithEngineMemoryBudget(1<<20),
		WithAdmissionPolicy("cost"),
		WithCalibration(cal))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if got := eng.AdmissionPolicy(); got != "cost" {
		t.Fatalf("AdmissionPolicy() = %q, want %q", got, "cost")
	}
	q := sessionQuery(t, db, jointree.WideBushy, strategy.FP)
	want := Reference(db, q.Tree)

	const queries = 12
	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		reservedAny bool
		firstE      error
	)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			rows, err := eng.Query(ctx, q, WithRuntime("spill"))
			if err != nil {
				mu.Lock()
				if firstE == nil {
					firstE = err
				}
				mu.Unlock()
				return
			}
			if i%3 == 0 {
				// Abandon mid-stream: the reservation and every buffered
				// batch must come back to the shared meter on Close.
				for j := 0; j < 5 && rows.Next(); j++ {
					_ = rows.Tuple()
				}
				cancel()
				rows.Close()
				return
			}
			got, err := rows.All()
			if err != nil {
				mu.Lock()
				if firstE == nil {
					firstE = err
				}
				mu.Unlock()
				return
			}
			if diff := relation.DiffMultiset(got, want); diff != "" {
				mu.Lock()
				if firstE == nil {
					firstE = fmt.Errorf("query %d differs from reference: %s", i, diff)
				}
				mu.Unlock()
				return
			}
			if res, ok := rows.Result(); ok {
				mu.Lock()
				if res.Stats.MemReserved > 0 {
					reservedAny = true
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if firstE != nil {
		t.Fatal(firstE)
	}
	if !reservedAny {
		t.Error("no completed spill query reported a memory reservation (Stats.MemReserved)")
	}
	if live := eng.MemoryLive(); live != 0 {
		t.Errorf("shared meter holds %d live bytes after all queries settled (reservation leak)", live)
	}
}

// TestCostAdmissionEstimates asserts the estimate surface: a cost-policy
// query reports a positive EstimatedCost, and the fifo engine reports none
// of the cost machinery but still works.
func TestCostAdmissionEstimates(t *testing.T) {
	db := sessionDB(t, 4, 300)
	eng, err := Open(db, WithAdmissionPolicy("cost"), WithEngineRuntime("parallel"))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q := sessionQuery(t, db, jointree.WideBushy, strategy.FP)
	res, err := eng.Exec(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.EstimatedCost <= 0 {
		t.Errorf("EstimatedCost = %v, want > 0", res.Stats.EstimatedCost)
	}
	if res.Stats.MemReserved != 0 {
		t.Errorf("parallel (unmetered) query reserved %d bytes, want 0", res.Stats.MemReserved)
	}
}

// TestOpenRejectsUnknownPolicy pins admission-policy validation at Open.
func TestOpenRejectsUnknownPolicy(t *testing.T) {
	db := sessionDB(t, 4, 10)
	if _, err := Open(db, WithAdmissionPolicy("lifo")); err == nil {
		t.Fatal("Open with unknown admission policy must fail")
	}
}
