// Runtime abstraction: one pluggable execution API over every backend that
// can run an xra plan.
//
// The paper's central move is executing the *same* XRA plan on different
// machines — PRISMA/DB's 80-node shared-nothing cluster and analytical
// models. This file is that move as an API: a Runtime turns a plan plus
// base relations into a unified Result, and a by-name registry
// (registry.go) lets callers pick the backend ("sim", "parallel") without
// touching a different code path per backend. Future runtimes — per-
// processor affinity queues, calibrated wall-clock models, spill-to-disk
// execution — are a RegisterRuntime call, not a new API surface.
package core

import (
	"context"
	"fmt"
	"time"

	"multijoin/internal/costmodel"
	"multijoin/internal/relation"
	"multijoin/internal/xra"
)

// BaseFunc resolves a plan leaf index to its base relation.
type BaseFunc func(leaf int) *relation.Relation

// Stats is the unified structural-counter set across runtimes. Quantities
// that only one backend can measure are documented as such and are zero on
// the other; everything structural (processes, streams, tuple movement) is
// runtime-independent by construction — both backends interpret the same
// plan — and is filled by every runtime.
type Stats struct {
	// Processes is the number of operation processes the plan used.
	Processes int
	// Streams is the number of tuple streams opened (n×m per
	// redistribution edge, n per local edge).
	Streams int
	// TuplesMovedRemote counts tuples that crossed processor boundaries.
	TuplesMovedRemote int64
	// TuplesLocal counts tuples delivered processor-locally.
	TuplesLocal int64
	// Batches counts delivered data batches.
	Batches int64
	// ResultTuples is the cardinality of the final result.
	ResultTuples int
	// OpDone maps operator ids to their completion offset from query
	// start (virtual time on the simulator, wall time on real runtimes).
	OpDone map[string]time.Duration
	// QueueWait is how long the query waited in an Engine's admission
	// queue before it began executing (zero outside an Engine session or
	// when a slot was free immediately).
	QueueWait time.Duration
	// PlanCacheHit reports whether the query's plan was served from the
	// Engine's plan cache instead of being planned from scratch (always
	// false outside an Engine session).
	PlanCacheHit bool
	// EstimatedCost is the admission policy's predicted wall time for the
	// query — calibrated via WithCalibration, otherwise on an assumed
	// per-unit cost (zero outside an Engine session).
	EstimatedCost time.Duration
	// MemReserved is the peak-memory reservation the cost admission policy
	// held for the query on the shared budget, in bytes (zero under the
	// fifo policy, for non-spill queries, and for grace-mode admissions of
	// queries too large to ever fit).
	MemReserved int64

	// Simulator-only counters (zero on wall-clock runtimes).

	// StartupTime is the total serial scheduler time spent initializing
	// operation processes.
	StartupTime time.Duration
	// HandshakeTime is the total processor time spent on stream
	// handshakes.
	HandshakeTime time.Duration
	// SimEvents is the number of simulation events processed.
	SimEvents uint64
	// PeakTableTuplesPerProc is the per-processor peak of hash-table
	// resident tuples (the Section 5 memory observation).
	PeakTableTuplesPerProc int
	// PeakTableTuplesTotal is the machine-wide peak of hash-table
	// resident tuples.
	PeakTableTuplesTotal int

	// Wall-clock-runtime-only counters (zero on the simulator).

	// Goroutines is the total number of goroutines launched.
	Goroutines int
	// MaxProcs is the effective concurrent-computation cap.
	MaxProcs int

	// Spill-runtime-only counters (zero on the in-memory runtimes).

	// BytesSpilled is the total bytes of operand tuples serialized to
	// temp-file spill partitions.
	BytesSpilled int64
	// SpillPartitions is the number of spill-partition files created.
	SpillPartitions int
	// SpillTime is the total wall time spent on spill-file I/O (writes
	// plus partition re-reads).
	SpillTime time.Duration

	// Dist-runtime-only counters (zero on single-process runtimes).

	// BytesOnWire is the total frame bytes written on inter-node TCP data
	// connections, summed over the coordinator and every worker process.
	BytesOnWire int64
	// Workers is the number of worker processes the run spawned.
	Workers int
}

// Result is the unified outcome of executing a plan on any runtime.
type Result struct {
	// Runtime is the registry name of the runtime that produced this
	// result.
	Runtime string
	// Virtual reports whether Time is virtual (simulated) rather than
	// wall-clock time.
	Virtual bool
	// Time is the response time: virtual time on the simulator (the
	// paper's metric, Figures 9-13), elapsed wall time on real runtimes.
	Time time.Duration
	// Result is the materialized final relation — the same multiset on
	// every runtime, verified against the sequential reference in tests.
	// Runtimes stream their result into a Sink and leave it nil; Exec (the
	// materializing adapter) fills it from a draining sink, while
	// Engine.Query hands the stream to a Rows cursor instead.
	Result *relation.Relation
	// Stats holds the unified structural counters.
	Stats Stats
}

// Sink consumes the result stream of one execution — the push half of the
// streaming Runtime contract. A runtime calls Push once per final result
// batch, in result order, transferring batch ownership: release (which may
// be nil) returns the batch to the runtime's pool and must be invoked
// exactly once, when the consumer is done with the tuples. Push blocks
// until the consumer accepts the batch (streaming backpressure, which
// propagates through the runtime's channels up the whole plan) or ctx is
// cancelled, in which case it returns the context's error and the runtime
// keeps ownership. Implementations must be safe for use from the single
// goroutine the runtime pushes from; they need not be concurrency-safe.
type Sink interface {
	Push(ctx context.Context, batch *relation.Batch, release func()) error
}

// gatherSink materializes a result stream into one relation — the draining
// sink behind the classic Exec API.
type gatherSink struct{ rel *relation.Relation }

func (g *gatherSink) Push(_ context.Context, batch *relation.Batch, release func()) error {
	batch.AppendTo(g.rel)
	if release != nil {
		release()
	}
	return nil
}

// Options parameterizes one execution, runtime-independently. Runtimes
// ignore the knobs that do not apply to them (the simulator has no
// channel depth; a wall-clock runtime has no virtual machine model beyond
// BatchTuples).
type Options struct {
	// Runtime is the registry name of the backend to execute on.
	// Empty means DefaultRuntime.
	Runtime string
	// Params is the simulated machine model (simulator) and the source of
	// the default batch size (all runtimes).
	Params costmodel.Params
	// MaxProcs caps concurrent computation on wall-clock runtimes. Zero
	// means the plan's own processor count.
	MaxProcs int
	// BatchTuples is the number of tuples per transport batch. Zero means
	// the executing runtime's own default (the simulator batches at
	// Params.BatchTuples, the goroutine runtimes at
	// parallel.DefaultBatchTuples).
	BatchTuples int
	// ChannelDepth is the per-stream buffer capacity in batches on
	// wall-clock runtimes. Zero means the runtime's default.
	ChannelDepth int
	// MemoryBudget is the per-run live-tuple memory budget in bytes on the
	// spill runtime; join operands overflowing it are serialized to
	// temp-file partitions. Zero means spill.DefaultBudgetBytes. The
	// in-memory runtimes ignore it, and under an Engine session the
	// engine's shared budget (WithEngineMemoryBudget) takes its place.
	MemoryBudget int64
	// Workers is the number of worker processes the "dist" runtime spawns
	// (plan processor id p runs on worker p mod Workers). Zero means
	// dist.DefaultWorkers. Single-process runtimes ignore it.
	Workers int
	// Verify checks the result against the sequential reference execution
	// wherever it is materialized (Exec, Engine.Exec, Rows.All; runtimes
	// do not see the option). Cursor-style iteration over a Rows never
	// materializes and therefore never verifies.
	Verify bool

	// shared carries the engine-owned resources a session query executes
	// against (processor pool, memory-budget meter); nil outside an Engine
	// session. Set by Engine.Query only.
	shared *sharedRes
}

// Option mutates Options — the functional options accepted by Exec.
type Option func(*Options)

// WithRuntime selects the execution backend by registry name
// ("sim", "parallel", or any registered runtime).
func WithRuntime(name string) Option { return func(o *Options) { o.Runtime = name } }

// WithParams sets the simulated machine model.
func WithParams(p costmodel.Params) Option { return func(o *Options) { o.Params = p } }

// WithMaxProcs sets the number of modeled processors on wall-clock
// runtimes: one run-queue dispatcher each, serializing the operation
// processes bound to it. Zero means the plan's own processor count.
func WithMaxProcs(n int) Option { return func(o *Options) { o.MaxProcs = n } }

// WithBatchTuples sets the transport batch size (pipelining granularity).
func WithBatchTuples(n int) Option { return func(o *Options) { o.BatchTuples = n } }

// WithChannelDepth sets the per-stream buffer capacity, in batches, on
// wall-clock runtimes. The depth is resolved once per run and applied to
// every stream alike; each process's mailbox is additionally sized to
// depth × its incoming stream count, so a stream forwarder can always
// buffer a full channel's worth of batches without blocking a producer
// whose consumer has not started yet (the deadlock-freedom heuristic —
// see parallel.Config.ChannelDepth).
func WithChannelDepth(n int) Option { return func(o *Options) { o.ChannelDepth = n } }

// WithMemoryBudget caps the spill runtime's live tuple memory at bytes:
// when pooled batches in flight plus buffered join operands exceed the
// budget, operand partitions overflow to temp files and the joins run
// Grace-style, partition-at-a-time. Zero (the default) means
// spill.DefaultBudgetBytes. The budget bounds tuple buffering during the
// partitioning phase, not total process RSS: the per-partition drain
// (re-reading one spilled partition into a hash table) is bounded
// structurally rather than metered. The in-memory runtimes ignore the
// option.
func WithMemoryBudget(bytes int64) Option { return func(o *Options) { o.MemoryBudget = bytes } }

// WithWorkers sets the worker-process count of the "dist" runtime: the
// plan's operation processes are partitioned round-robin over n spawned
// mjworker processes (processor id p on worker p mod n), with the collect
// process on the coordinator. Zero means dist.DefaultWorkers; the
// single-process runtimes ignore the option.
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithVerify checks the result against the sequential reference execution.
func WithVerify() Option { return func(o *Options) { o.Verify = true } }

// Runtime is one execution backend for xra plans. Execute runs the plan
// against the base relations, streams the final result into sink (batch
// ownership transfers per Sink.Push), and returns the unified result with
// Result.Result nil — materialization, when wanted, is the sink's job (see
// Exec). It must honor ctx cancellation by returning promptly with the
// context's error and without leaking goroutines, even when the sink stops
// accepting batches mid-stream (a closed cursor).
type Runtime interface {
	// Name is the registry name the runtime is addressed by.
	Name() string
	// Execute runs one plan to completion or cancellation, pushing the
	// result stream into sink.
	Execute(ctx context.Context, plan *xra.Plan, base BaseFunc, sink Sink, opts Options) (*Result, error)
}

// Exec plans the query and executes it on the runtime selected by the
// options (default: the simulator), materializing the full result — the
// classic one-shot entry point, now a thin adapter that drains the
// runtime's result stream into a relation. Long-lived sessions with
// streaming cursors and shared admission control are Open/Engine.Query:
//
//	res, err := core.Exec(ctx, q)                              // simulator
//	res, err := core.Exec(ctx, q, core.WithRuntime("parallel"),
//	        core.WithMaxProcs(8), core.WithVerify())           // goroutines
//
// Params defaults to the query's own Params. BatchTuples, when unset,
// is left to the executing runtime's transport default (the simulator
// always batches at Params.BatchTuples — its cost-model granularity —
// while the goroutine runtimes default to parallel.DefaultBatchTuples).
func Exec(ctx context.Context, q Query, opts ...Option) (*Result, error) {
	o := Options{Runtime: DefaultRuntime, Params: q.Params}
	for _, opt := range opts {
		opt(&o)
	}
	if o.Runtime == "" {
		o.Runtime = DefaultRuntime
	}
	rt, err := LookupRuntime(o.Runtime)
	if err != nil {
		return nil, err
	}
	plan, err := q.Plan()
	if err != nil {
		return nil, err
	}
	sink := &gatherSink{rel: relation.NewWithCap("result", q.tupleBytes(), q.estResultCard())}
	res, err := rt.Execute(ctx, plan, q.baseRelation, sink, o)
	if err != nil {
		return nil, err
	}
	if res.Result == nil {
		res.Result = sink.rel
	}
	if o.Verify {
		want := Reference(q.DB, q.Tree)
		if diff := relation.DiffMultiset(res.Result, want); diff != "" {
			return nil, fmt.Errorf("core: %s %v result differs from reference: %s", rt.Name(), q.Strategy, diff)
		}
	}
	return res, nil
}
