package core

import (
	"testing"

	"multijoin/internal/costmodel"
	"multijoin/internal/engine"
	"multijoin/internal/jointree"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
)

// These tests pin the qualitative findings of the paper's evaluation at a
// reduced scale (2000-tuple relations), so the full conclusions of Section 5
// are guarded by the test suite, not only by the benchmark harness.

func measure(t *testing.T, db *wisconsin.Database, shape jointree.Shape, kind strategy.Kind, procs int) *engine.RunResult {
	t.Helper()
	tree, err := jointree.BuildShape(shape, db.NumRelations())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Query{DB: db, Tree: tree, Strategy: kind, Procs: procs,
		Params: costmodel.Default()}.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLinearDegenerations(t *testing.T) {
	db := testDB(t, 10, 2000)
	// Figure 9: SP, SE and RD coincide exactly on a left-linear tree.
	sp := measure(t, db, jointree.LeftLinear, strategy.SP, 16)
	se := measure(t, db, jointree.LeftLinear, strategy.SE, 16)
	rd := measure(t, db, jointree.LeftLinear, strategy.RD, 16)
	if sp.ResponseTime != se.ResponseTime || sp.ResponseTime != rd.ResponseTime {
		t.Errorf("left-linear: SP=%v SE=%v RD=%v, want identical",
			sp.ResponseTime, se.ResponseTime, rd.ResponseTime)
	}
	// Figure 13: SE still coincides with SP on a right-linear tree, while
	// RD forms a pipeline and beats both at scale.
	sp = measure(t, db, jointree.RightLinear, strategy.SP, 48)
	se = measure(t, db, jointree.RightLinear, strategy.SE, 48)
	rd = measure(t, db, jointree.RightLinear, strategy.RD, 48)
	if sp.ResponseTime != se.ResponseTime {
		t.Errorf("right-linear: SP=%v SE=%v, want identical", sp.ResponseTime, se.ResponseTime)
	}
	if rd.ResponseTime >= sp.ResponseTime {
		t.Errorf("right-linear at 48 procs: RD=%v not better than SP=%v",
			rd.ResponseTime, sp.ResponseTime)
	}
}

func TestSPDegradesWithParallelism(t *testing.T) {
	// Section 5: "SP works fine for a small number of processors, but for a
	// larger number the startup and coordination overhead get prohibitive."
	db := testDB(t, 10, 2000)
	small := measure(t, db, jointree.WideBushy, strategy.SP, 16)
	large := measure(t, db, jointree.WideBushy, strategy.SP, 64)
	if large.ResponseTime <= small.ResponseTime {
		t.Errorf("SP at 64 procs (%v) should be slower than at 16 (%v) for a small problem",
			large.ResponseTime, small.ResponseTime)
	}
}

func TestFPBestAtScale(t *testing.T) {
	// Section 5: "FP gives the best overall performance over the entire
	// range of query shapes, when large numbers of processors are used."
	db := testDB(t, 10, 2000)
	for _, shape := range jointree.Shapes {
		fp := measure(t, db, shape, strategy.FP, 64)
		for _, other := range []strategy.Kind{strategy.SP, strategy.SE} {
			o := measure(t, db, shape, other, 64)
			if fp.ResponseTime >= o.ResponseTime {
				t.Errorf("%v at 64 procs: FP=%v not better than %v=%v",
					shape, fp.ResponseTime, other, o.ResponseTime)
			}
		}
	}
}

func TestRDWinsRightOrientedTrees(t *testing.T) {
	// Figure 12: RD performs best on the right-oriented bushy tree (here
	// against SE and SP; FP is allowed to come close).
	db := testDB(t, 10, 2000)
	rd := measure(t, db, jointree.RightBushy, strategy.RD, 32)
	for _, other := range []strategy.Kind{strategy.SP, strategy.SE} {
		o := measure(t, db, jointree.RightBushy, other, 32)
		if rd.ResponseTime >= o.ResponseTime {
			t.Errorf("right-bushy at 32 procs: RD=%v not better than %v=%v",
				rd.ResponseTime, other, o.ResponseTime)
		}
	}
}

func TestSEBeatsRDOnWideBushy(t *testing.T) {
	// Figure 11: the wide bushy tree is SE's territory among the
	// non-pipelining strategies.
	db := testDB(t, 10, 2000)
	se := measure(t, db, jointree.WideBushy, strategy.SE, 32)
	rd := measure(t, db, jointree.WideBushy, strategy.RD, 32)
	sp := measure(t, db, jointree.WideBushy, strategy.SP, 32)
	if se.ResponseTime >= rd.ResponseTime || se.ResponseTime >= sp.ResponseTime {
		t.Errorf("wide-bushy at 32 procs: SE=%v RD=%v SP=%v; SE should lead",
			se.ResponseTime, rd.ResponseTime, sp.ResponseTime)
	}
}

func TestFPNeedsMoreMemoryThanRD(t *testing.T) {
	// Section 5: "RD uses less memory than FP because only one hash-table
	// needs to be built."
	db := testDB(t, 10, 2000)
	fp := measure(t, db, jointree.WideBushy, strategy.FP, 32)
	rd := measure(t, db, jointree.WideBushy, strategy.RD, 32)
	if fp.Stats.PeakTableTuplesPerProc <= rd.Stats.PeakTableTuplesPerProc {
		t.Errorf("peak table tuples per proc: FP=%d should exceed RD=%d",
			fp.Stats.PeakTableTuplesPerProc, rd.Stats.PeakTableTuplesPerProc)
	}
	if fp.Stats.PeakTableTuplesTotal <= rd.Stats.PeakTableTuplesTotal {
		t.Errorf("peak table tuples total: FP=%d should exceed RD=%d",
			fp.Stats.PeakTableTuplesTotal, rd.Stats.PeakTableTuplesTotal)
	}
}

func TestMemoryAccountingBounds(t *testing.T) {
	db := testDB(t, 6, 500)
	for _, kind := range strategy.Kinds {
		res := measure(t, db, jointree.WideBushy, kind, 8)
		if res.Stats.PeakTableTuplesTotal <= 0 {
			t.Errorf("%v: no table memory recorded", kind)
		}
		// Upper bound: every operand of every join resident at once, both
		// tables: 2 operands x 5 joins x 500 tuples.
		if res.Stats.PeakTableTuplesTotal > 2*5*500 {
			t.Errorf("%v: peak %d exceeds physical bound", kind, res.Stats.PeakTableTuplesTotal)
		}
		if res.Stats.PeakTableTuplesPerProc > res.Stats.PeakTableTuplesTotal {
			t.Errorf("%v: per-proc peak exceeds total peak", kind)
		}
	}
}

func TestBushyBeatsLinearAtBest(t *testing.T) {
	// Figure 14's headline: bushy trees give better best response times
	// than linear trees.
	db := testDB(t, 10, 2000)
	bestOf := func(shape jointree.Shape) (best float64) {
		best = -1
		for _, kind := range strategy.Kinds {
			for _, procs := range []int{16, 32, 64} {
				r := measure(t, db, shape, kind, procs)
				if best < 0 || r.ResponseTime.Seconds() < best {
					best = r.ResponseTime.Seconds()
				}
			}
		}
		return best
	}
	if wb, ll := bestOf(jointree.WideBushy), bestOf(jointree.LeftLinear); wb >= ll {
		t.Errorf("best wide-bushy %.3fs not better than best left-linear %.3fs", wb, ll)
	}
}
