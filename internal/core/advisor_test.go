package core

import (
	"testing"

	"multijoin/internal/costmodel"
	"multijoin/internal/jointree"
	"multijoin/internal/strategy"
)

func adviseShape(t *testing.T, shape jointree.Shape, procs int, card float64) Advice {
	t.Helper()
	tree, err := jointree.BuildShape(shape, 10)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Advise(AdviseInput{Tree: tree, Procs: procs, Card: card})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAdviseSmallMachine(t *testing.T) {
	for _, shape := range jointree.Shapes {
		a := adviseShape(t, shape, 10, 5000)
		if a.Strategy != strategy.SP {
			t.Errorf("%v on 10 procs: advised %v, want SP", shape, a.Strategy)
		}
	}
}

func TestAdviseWideBushyLarge(t *testing.T) {
	a := adviseShape(t, jointree.WideBushy, 80, 40000)
	if a.Strategy != strategy.SE {
		t.Errorf("wide bushy 40K: advised %v, want SE", a.Strategy)
	}
}

func TestAdviseWideBushySmallProblem(t *testing.T) {
	a := adviseShape(t, jointree.WideBushy, 80, 5000)
	if a.Strategy == strategy.SP {
		t.Errorf("wide bushy 5K on 80 procs must not fall back to SP")
	}
}

func TestAdviseRightOriented(t *testing.T) {
	a := adviseShape(t, jointree.RightBushy, 80, 5000)
	if a.Strategy != strategy.RD || a.MirrorFirst {
		t.Errorf("right bushy: advised %v (mirror=%v), want RD without mirroring",
			a.Strategy, a.MirrorFirst)
	}
}

func TestAdviseLeftOrientedMirrors(t *testing.T) {
	a := adviseShape(t, jointree.LeftBushy, 80, 5000)
	if a.Strategy != strategy.RD || !a.MirrorFirst {
		t.Errorf("left bushy: advised %v (mirror=%v), want RD after mirroring",
			a.Strategy, a.MirrorFirst)
	}
}

func TestAdviseLinearFP(t *testing.T) {
	for _, shape := range []jointree.Shape{jointree.LeftLinear, jointree.RightLinear} {
		a := adviseShape(t, shape, 80, 5000)
		want := strategy.FP
		if shape == jointree.RightLinear {
			// A right-linear tree is one long segment: RD (which then
			// coincides with FP) is an equally valid answer.
			if a.Strategy != strategy.RD && a.Strategy != strategy.FP {
				t.Errorf("right-linear: advised %v", a.Strategy)
			}
			continue
		}
		if a.Strategy != want {
			t.Errorf("%v: advised %v, want %v", shape, a.Strategy, want)
		}
	}
}

func TestAdviseMemoryConstrained(t *testing.T) {
	tree, err := jointree.BuildShape(jointree.WideBushy, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 40 million tuples per relation on 80 nodes of 16 MB: a single build
	// table (208 B x 40e6 / 80 = 104 MB/node) cannot fit.
	a, err := Advise(AdviseInput{Tree: tree, Procs: 80, Card: 40e6, NodeMemoryBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if a.Strategy != strategy.SP {
		t.Errorf("memory-constrained: advised %v, want SP", a.Strategy)
	}
	// The same query with enough memory must not degrade to SP.
	a, err = Advise(AdviseInput{Tree: tree, Procs: 80, Card: 40000, NodeMemoryBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if a.Strategy == strategy.SP {
		t.Error("memory rule fired although the join fits")
	}
}

func TestAdviseErrors(t *testing.T) {
	if _, err := Advise(AdviseInput{Procs: 8}); err == nil {
		t.Error("nil tree must fail")
	}
	tree, _ := jointree.BuildShape(jointree.WideBushy, 4)
	if _, err := Advise(AdviseInput{Tree: tree}); err == nil {
		t.Error("zero processors must fail")
	}
}

// TestAdviceIsGood: the advised strategy must never be much worse than the
// best strategy for the configuration — the paper's "missing the very best
// plan is not a big problem as long as you will not come up with a very bad
// one" [KBZ86].
func TestAdviceIsGood(t *testing.T) {
	db := testDB(t, 10, 2000)
	for _, shape := range jointree.Shapes {
		for _, procs := range []int{12, 48} {
			tree, err := jointree.BuildShape(shape, 10)
			if err != nil {
				t.Fatal(err)
			}
			a, err := Advise(AdviseInput{Tree: tree, Procs: procs, SpanCard: db.SpanCard})
			if err != nil {
				t.Fatal(err)
			}
			runTree := tree
			if a.MirrorFirst {
				runTree = jointree.Clone(tree)
				jointree.Mirror(runTree)
			}
			advised, err := Query{DB: db, Tree: runTree, Strategy: a.Strategy,
				Procs: procs, Params: costmodel.Default()}.Run()
			if err != nil {
				t.Fatal(err)
			}
			best := advised.ResponseTime.Seconds()
			for _, kind := range strategy.Kinds {
				r, err := Query{DB: db, Tree: tree, Strategy: kind,
					Procs: procs, Params: costmodel.Default()}.Run()
				if err != nil {
					t.Fatal(err)
				}
				if s := r.ResponseTime.Seconds(); s < best {
					best = s
				}
			}
			if got := advised.ResponseTime.Seconds(); got > 2.0*best {
				t.Errorf("%v/%d procs: advised %v (mirror=%v) took %.3fs, best is %.3fs",
					shape, procs, a.Strategy, a.MirrorFirst, got, best)
			}
		}
	}
}
