// Materialized views: Engine-owned resident queries maintained
// incrementally (internal/ivm) instead of re-executed.
//
// CreateView runs the query once on the paper's FP (full pipelining)
// strategy and then keeps the plan's symmetric hash-join network resident:
// every join operand table stays built, charged against the engine's
// shared memory budget exactly like an in-flight spill query's residency.
// View.Apply pushes signed base-relation deltas through the resident
// network, so refreshing the view after a small change costs work
// proportional to the delta's share of the data, not to the full query —
// the incremental-view-maintenance counterpart of the paper's observation
// that pipelining hash joins never rebuild state between tuples.
package core

import (
	"context"
	"sync"

	"multijoin/internal/costmodel"
	"multijoin/internal/ivm"
	"multijoin/internal/jointree"
	"multijoin/internal/relation"
	"multijoin/internal/spill"
	"multijoin/internal/strategy"
	"multijoin/internal/xra"
)

// View is an engine-owned materialized view over one query: the resident
// FP join network plus the maintained result multiset. All methods are
// safe for concurrent use with each other and with engine shutdown;
// Apply calls themselves serialize (one delta round at a time).
type View struct {
	eng   *Engine
	iv    *ivm.View
	child *spill.Meter

	closeOnce sync.Once
}

// CreateView plans q on the FP strategy (whatever q.Strategy says — a
// resident view is a pipelining network by construction), executes the
// initial population under the engine's admission policy, and registers
// the view with the engine. The admission slot is held only for the
// population; afterwards the view keeps just its memory charge (and any
// cost-policy reservation) on the shared budget until Close. Engine
// shutdown force-closes open views, failing a blocked Apply with
// ivm.ErrViewClosed.
func (e *Engine) CreateView(ctx context.Context, q Query, opts ...Option) (*View, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrEngineClosed
	}
	e.inflight.Add(1)
	e.mu.Unlock()
	defer e.inflight.Done()
	return e.createView(ctx, q, opts)
}

func (e *Engine) createView(ctx context.Context, q Query, opts []Option) (*View, error) {
	if q.DB == nil {
		q.DB = e.db
	}
	if q.Params == (costmodel.Params{}) {
		q.Params = e.defaults.Params
	}
	q.Strategy = strategy.FP
	o := e.defaults
	o.Params = q.Params
	for _, opt := range opts {
		opt(&o)
	}
	plan, _, err := e.plans.plan(q)
	if err != nil {
		return nil, err
	}
	child := e.meter.Child()

	// Admission covers the initial population — a full FP execution's worth
	// of work — and, under the cost policy, reserves the view's estimated
	// resident footprint from the shared budget for its whole lifetime.
	ticket := &admitTicket{est: e.estimateView(q, plan), meter: child}
	if err := e.policy.admit(ctx, ticket); err != nil {
		return nil, err
	}
	undo := func() {
		e.policy.release(ticket)
		child.Settle()
		e.policy.kick()
	}

	iv, err := ivm.New(plan, q.baseRelation, ivm.Config{
		BatchTuples: o.BatchTuples,
		TupleBytes:  q.tupleBytes(),
		Meter:       child,
	})
	if err != nil {
		undo()
		return nil, err
	}
	v := &View{eng: e, iv: iv, child: child}

	// Admission may have raced a concurrent Close: re-check under the lock
	// and undo if the engine closed while the view was populating, so its
	// network and memory charge do not outlive a torn-down engine.
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		iv.Close()
		undo()
		return nil, ErrEngineClosed
	}
	e.views[v] = struct{}{}
	e.mu.Unlock()

	// Population done: the execution slot goes back to the queue. The
	// residency charge (and reservation) stays until View.Close.
	e.policy.release(ticket)
	e.policy.kick()
	return v, nil
}

// estimateView is the admission estimate for a view: the population's work
// units like any query, plus the resident footprint — both operand tables
// of every join stay built for the view's lifetime, so the peak estimate
// is the sum of all operand cardinalities rather than the transient
// pipeline residency of a one-shot run.
func (e *Engine) estimateView(q Query, plan *xra.Plan) queryEstimate {
	est := e.estimateQuery(q, e.defaults, plan)
	var operands int64
	spanCard := q.DB.SpanCard
	for _, j := range jointree.Joins(q.Tree) {
		n1 := spanCard(j.Build.Lo, j.Build.Hi)
		n2 := spanCard(j.Probe.Lo, j.Probe.Hi)
		operands += int64(n1+n2) * relation.TupleWireBytes
	}
	est.peakBytes = operands
	return est
}

// Apply pushes one batch of signed base-relation deltas through the view's
// resident network and returns once the view is exact again. Inserts apply
// before deletes within a round; a delete of an absent base tuple is
// dropped and counted in ApplyResult.Unmatched.
func (v *View) Apply(ctx context.Context, deltas ...ivm.Delta) (ivm.ApplyResult, error) {
	return v.iv.Apply(ctx, deltas...)
}

// Rows returns a snapshot of the view's current result multiset.
func (v *View) Rows(ctx context.Context) (*relation.Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return v.iv.Rows()
}

// Changes returns a cursor over the view's signed change stream: every
// Apply round's net result changes, in round order, until the stream or
// the view is closed.
func (v *View) Changes() *ivm.ChangeStream { return v.iv.Changes() }

// ResultCard returns the current result cardinality without materializing.
func (v *View) ResultCard() int { return v.iv.ResultCard() }

// Resident returns the view's current resident bytes (join operand tables
// plus the maintained result) — the amount charged to the engine's shared
// memory budget, before any admission reservation.
func (v *View) Resident() int64 { return v.iv.Resident() }

// Close tears the view's network down, settles its charge and reservation
// on the shared budget, and deregisters it from the engine. A blocked
// Apply fails with ivm.ErrViewClosed. Close is idempotent and safe to
// call concurrently with Apply and with engine shutdown.
func (v *View) Close() error {
	v.closeOnce.Do(func() {
		v.iv.Close()
		v.child.Settle()
		v.eng.dropView(v)
		v.eng.policy.kick()
	})
	return nil
}

// dropView forgets a closed view.
func (e *Engine) dropView(v *View) {
	e.mu.Lock()
	delete(e.views, v)
	e.mu.Unlock()
}
