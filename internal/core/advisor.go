package core

import (
	"fmt"

	"multijoin/internal/jointree"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
)

// Advice is a strategy recommendation derived from the paper's Section 5
// guidelines.
type Advice struct {
	// Strategy is the recommended parallelization strategy.
	Strategy strategy.Kind
	// MirrorFirst indicates the tree should first be mirrored (free, see
	// Section 5) to make it right-oriented before applying the strategy.
	MirrorFirst bool
	// Reason explains the recommendation in the paper's terms.
	Reason string
}

// AdviseInput describes the situation to choose a strategy for.
type AdviseInput struct {
	Tree  *jointree.Node
	Procs int
	// SpanCard estimates span cardinalities (for example
	// (*wisconsin.Database).SpanCard); nil assumes a regular workload of
	// cardinality Card.
	SpanCard jointree.SpanCardFunc
	Card     float64
	// NodeMemoryBytes, when positive, is the main memory of one processor
	// node (16 MB on PRISMA). If even a single join's hash tables cannot
	// fit, the disk-based discussion of Section 5 applies: inter-join
	// parallelism never pays off and SP should be used.
	NodeMemoryBytes int
}

// Advise encodes the paper's closing guidelines:
//
//   - "For a small number of processors, Sequential Parallel execution (SP)
//     is the easiest and best way to evaluate a multi-join query in
//     parallel." — fewer than two processors per join leaves no room for
//     inter-operator parallelism, and SP needs no cost function.
//   - In a memory-constrained (disk-based) system where joins cannot hold
//     their hash tables, "such systems should use SP".
//   - "SE works very well for wide bushy trees."
//   - "RD works well for right-oriented trees"; left-oriented trees can be
//     mirrored for free first.
//   - "For larger numbers of processors, Full Parallel execution (FP)
//     performs quite well" and "gives the best overall performance over the
//     entire range of query shapes, when large numbers of processors are
//     used."
func Advise(in AdviseInput) (Advice, error) {
	if in.Tree == nil || in.Tree.IsLeaf() {
		return Advice{}, fmt.Errorf("core: advise needs a join tree")
	}
	if in.Procs < 1 {
		return Advice{}, fmt.Errorf("core: advise needs a processor count")
	}
	spanCard := in.SpanCard
	if spanCard == nil {
		card := in.Card
		if card <= 0 {
			card = 1
		}
		spanCard = func(lo, hi int) float64 { return card }
	}
	joins := jointree.Joins(in.Tree)

	// Disk-based / memory-constrained rule: if the largest single join's
	// hash table exceeds a node's memory even when declustered over all
	// processors, inter-join parallelism would force joins to share memory
	// and thrash; evaluate sequentially (SP).
	if in.NodeMemoryBytes > 0 {
		var largest float64
		for _, j := range joins {
			if n := spanCard(j.Build.Lo, j.Build.Hi); n > largest {
				largest = n
			}
		}
		perNode := largest * wisconsin.TupleBytes / float64(in.Procs)
		if perNode > float64(in.NodeMemoryBytes) {
			return Advice{Strategy: strategy.SP,
				Reason: "a single join's hash table does not fit node memory; inter-join parallelism would thrash (Section 5, disk-based systems)"}, nil
		}
	}

	// Small machines: no room for inter-operator parallelism.
	if in.Procs < 2*len(joins) {
		return Advice{Strategy: strategy.SP,
			Reason: "few processors per join: SP is the easiest and best, and needs no cost function"}, nil
	}

	// Shape classification.
	bothInternal := 0
	for _, j := range joins {
		if !j.Build.IsLeaf() && !j.Probe.IsLeaf() {
			bothInternal++
		}
	}
	segments := jointree.RightDeepSegments(in.Tree)
	longestSegment := 0
	for _, s := range segments {
		if len(s.Joins) > longestSegment {
			longestSegment = len(s.Joins)
		}
	}

	// Wide bushy trees: many independent subtrees; SE wins on big
	// problems, FP on small ones. The 40K crossover in Figure 11 sits at
	// operand sizes where SE's perfect operand-ready synchronization beats
	// FP's bushy-pipeline delay.
	totalTuples := 0.0
	for _, l := range jointree.Leaves(in.Tree) {
		totalTuples += spanCard(l.Leaf, l.Leaf)
	}
	wideBushy := bothInternal >= len(joins)/3
	if wideBushy && totalTuples/float64(len(joins)+1) >= 20000 {
		return Advice{Strategy: strategy.SE,
			Reason: "wide bushy tree with large operands: independent subtrees synchronize well (Figure 11)"}, nil
	}

	// Right-oriented trees: long probe pipelines suit RD. Left-oriented
	// trees can be mirrored for free to become right-oriented.
	if longestSegment >= (len(joins)+1)/2 {
		return Advice{Strategy: strategy.RD,
			Reason: "right-oriented tree: a long probe pipeline with independent build operands (Figure 12)"}, nil
	}
	mirrored := jointree.Clone(in.Tree)
	jointree.Mirror(mirrored)
	mSegments := jointree.RightDeepSegments(mirrored)
	mLongest := 0
	for _, s := range mSegments {
		if len(s.Joins) > mLongest {
			mLongest = len(s.Joins)
		}
	}
	if mLongest >= len(joins) && len(joins) >= 2 {
		// A fully linear left-deep tree mirrors into one long pipeline; RD
		// and FP then coincide, and FP's pipelining join needs no mirror.
		return Advice{Strategy: strategy.FP, MirrorFirst: false,
			Reason: "linear tree on a large machine: FP pipelines along both operands (Figures 9 and 13)"}, nil
	}
	if mLongest >= (len(joins)+1)/2 {
		return Advice{Strategy: strategy.RD, MirrorFirst: true,
			Reason: "left-oriented tree: mirroring is free and makes it right-oriented for RD (Section 5)"}, nil
	}

	return Advice{Strategy: strategy.FP,
		Reason: "large machine: FP gives the best overall performance across query shapes (Section 5)"}, nil
}
