// Plan cache: memoized strategy.Plan output for the Engine's repeated
// query shapes.
//
// Planning a query is pure — the plan depends only on the join tree's
// canonical shape, the strategy, the processor count, and the operand
// cardinalities — yet every Engine.Query used to re-run it from scratch,
// which on a serving workload means re-planning the same handful of shapes
// thousands of times. The cache keys plans by that canonical shape (with
// cardinalities bucketed to powers of two, so minor data growth does not
// fragment the cache) and is concurrency-safe with singleflight semantics:
// N identical queries arriving together plan exactly once, the rest wait
// for the winner's entry. Cached plans are shared between concurrent runs;
// that is safe because plans are immutable after strategy.Plan returns —
// every runtime treats xra.Op as read-only.
package core

import (
	"fmt"
	"math/bits"
	"strings"
	"sync"
	"sync/atomic"

	"multijoin/internal/jointree"
	"multijoin/internal/xra"
)

// planCacheMaxEntries bounds the cache. A serving workload has a handful of
// shapes; a fuzzer has millions — on overflow settled entries are dropped
// wholesale (simple, and correct for a cache) rather than evicted
// piecemeal. Entries still mid-planning survive the reset: dropping one
// would let a concurrent same-key caller re-plan behind the waiters'
// backs, double-running the singleflight.
const planCacheMaxEntries = 1024

// planEntry is one memoized planning: the first caller runs the plan under
// once, every later caller waits on it. done flips after the planning
// completed, so an overflow reset can tell settled entries (droppable)
// from in-flight ones (which concurrent same-key callers are waiting on).
type planEntry struct {
	once sync.Once
	done atomic.Bool
	plan *xra.Plan
	err  error
}

// planCache memoizes Query.Plan results by canonical query shape.
type planCache struct {
	planFn func(Query) (*xra.Plan, error) // Query.Plan; injectable for churn tests
	mu     sync.Mutex
	m      map[string]*planEntry
	hits   atomic.Int64
	misses atomic.Int64
}

func newPlanCache() *planCache {
	return &planCache{
		planFn: func(q Query) (*xra.Plan, error) { return q.Plan() },
		m:      make(map[string]*planEntry),
	}
}

// key renders the canonical shape of a query: the join tree with its ids
// (two trees with different JoinIDs yield different plan operator ids, so
// the ids are part of the shape), the strategy, the processor budget, the
// cost-function toggle, and each leaf's cardinality bucketed to the next
// power of two. Queries differing only within a cardinality bucket share a
// plan — processor allocation is proportional, so sub-2× differences do
// not change it materially.
func planKey(q Query) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|p%d|eq%t|", q.Tree.String(), q.Strategy, q.Procs, q.EqualWork)
	for _, leaf := range jointree.Leaves(q.Tree) {
		fmt.Fprintf(&b, "c%d,", cardBucket(q.DB.Card(leaf.Leaf)))
	}
	return b.String()
}

// cardBucket buckets a cardinality to its power-of-two ceiling exponent.
func cardBucket(card int) int {
	if card <= 1 {
		return 0
	}
	return bits.Len(uint(card - 1))
}

// plan returns the memoized plan for q, planning it on a miss. hit reports
// whether an already-built (or in-flight) entry served the call; exactly
// one caller per key ever runs q.Plan (singleflight), so a stampede of
// identical concurrent queries plans once. Planning errors are cached too:
// a structurally invalid shape fails every time for the same reason.
func (c *planCache) plan(q Query) (p *xra.Plan, hit bool, err error) {
	if q.Tree == nil || q.DB == nil {
		// planKey needs both to render the shape; bypass the cache and let
		// Query.Plan report the contract error instead of segfaulting.
		_, err := c.planFn(q)
		return nil, false, err
	}
	key := planKey(q)
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		if len(c.m) >= planCacheMaxEntries {
			fresh := make(map[string]*planEntry)
			for k, pe := range c.m {
				if !pe.done.Load() {
					fresh[k] = pe
				}
			}
			c.m = fresh
		}
		e = &planEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() {
		e.plan, e.err = c.planFn(q)
		e.done.Store(true)
	})
	return e.plan, ok, e.err
}

// Stats returns the cumulative hit and miss counts.
func (c *planCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
