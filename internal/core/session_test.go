package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"multijoin/internal/jointree"
	"multijoin/internal/relation"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
)

// sessionDB builds a small chain database shared by the session tests.
func sessionDB(t testing.TB, relations, card int) *wisconsin.Database {
	t.Helper()
	db, err := wisconsin.Chain(wisconsin.Config{Relations: relations, Cardinality: card, Seed: 1995})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func sessionQuery(t testing.TB, db *wisconsin.Database, shape jointree.Shape, kind strategy.Kind) Query {
	t.Helper()
	tree, err := jointree.BuildShape(shape, db.NumRelations())
	if err != nil {
		t.Fatal(err)
	}
	return Query{DB: db, Tree: tree, Strategy: kind, Procs: 8}
}

// TestEngineConcurrentQueries is the acceptance criterion: one Engine
// serving >= 8 concurrent queries across all three runtimes and all four
// strategies yields multiset-identical results to the sequential reference
// under -race, with queue waits recorded once admission throttles.
func TestEngineConcurrentQueries(t *testing.T) {
	db := sessionDB(t, 5, 600)
	eng, err := Open(db,
		WithMaxConcurrent(4), // half the in-flight queries wait: queue-wait paths exercised
		WithEngineMemoryBudget(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	runtimes := []string{"sim", "parallel", "spill"}
	shapes := []jointree.Shape{jointree.WideBushy, jointree.RightLinear}
	type job struct {
		rt    string
		shape jointree.Shape
		kind  strategy.Kind
	}
	var jobs []job
	for _, rt := range runtimes {
		for _, shape := range shapes {
			for _, kind := range strategy.Kinds {
				jobs = append(jobs, job{rt, shape, kind})
			}
		}
	}
	if len(jobs) < 8 {
		t.Fatalf("want >= 8 concurrent queries, built %d", len(jobs))
	}
	refs := map[jointree.Shape]*relation.Relation{}
	for _, shape := range shapes {
		refs[shape] = Reference(db, sessionQuery(t, db, shape, strategy.FP).Tree)
	}

	var wg sync.WaitGroup
	errc := make(chan error, len(jobs))
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			q := sessionQuery(t, db, j.shape, j.kind)
			rows, err := eng.Query(context.Background(), q, WithRuntime(j.rt))
			if err != nil {
				errc <- fmt.Errorf("%s/%v/%v: %w", j.rt, j.shape, j.kind, err)
				return
			}
			got, err := rows.All()
			if err != nil {
				errc <- fmt.Errorf("%s/%v/%v: %w", j.rt, j.shape, j.kind, err)
				return
			}
			if diff := relation.DiffMultiset(got, refs[j.shape]); diff != "" {
				errc <- fmt.Errorf("%s/%v/%v differs from reference: %s", j.rt, j.shape, j.kind, diff)
				return
			}
			res, ok := rows.Result()
			if !ok {
				errc <- fmt.Errorf("%s/%v/%v: Result unavailable after All", j.rt, j.shape, j.kind)
				return
			}
			if res.Runtime != j.rt {
				errc <- fmt.Errorf("%s/%v/%v: Result.Runtime = %q", j.rt, j.shape, j.kind, res.Runtime)
			}
		}(j)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if live := eng.MemoryLive(); live != 0 {
		t.Errorf("shared budget not settled after all queries: %d live bytes", live)
	}
}

// TestEngineQueueWaitRecorded asserts the admission semaphore actually
// queues: with one slot and a held cursor, a second query's Stats.QueueWait
// must cover the time the first query was streaming.
func TestEngineQueueWaitRecorded(t *testing.T) {
	db := sessionDB(t, 4, 400)
	eng, err := Open(db, WithMaxConcurrent(1), WithEngineRuntime("parallel"))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q := sessionQuery(t, db, jointree.WideBushy, strategy.FP)

	first, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Next() {
		t.Fatalf("first query produced no tuples: %v", first.Err())
	}
	// The slot is held while the first cursor is open; release it after a
	// measurable hold.
	const hold = 30 * time.Millisecond
	go func() {
		time.Sleep(hold)
		first.Close()
	}()
	rows, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.All(); err != nil {
		t.Fatal(err)
	}
	res, ok := rows.Result()
	if !ok {
		t.Fatal("Result unavailable after All")
	}
	if res.Stats.QueueWait < hold/2 {
		t.Errorf("QueueWait = %v, want >= %v (the admission hold)", res.Stats.QueueWait, hold/2)
	}
}

// TestEngineQueryCancelWhileQueued asserts a context cancelled in the
// admission queue abandons the query without executing it.
func TestEngineQueryCancelWhileQueued(t *testing.T) {
	db := sessionDB(t, 4, 400)
	eng, err := Open(db, WithMaxConcurrent(1), WithEngineRuntime("parallel"))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q := sessionQuery(t, db, jointree.WideBushy, strategy.FP)
	first, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if !first.Next() {
		t.Fatalf("first query produced no tuples: %v", first.Err())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := eng.Query(ctx, q); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued query returned %v, want context.DeadlineExceeded", err)
	}
}

// TestRowsMidCloseNoLeaks is the mid-iteration abandonment audit on all
// three runtimes: consume a few tuples, Close, and assert no goroutines, no
// spill temp files, and no stranded shared-budget reservation remain. The
// forcing budget makes the spill runtime hold partition files and meter
// reservations at the moment of Close.
func TestRowsMidCloseNoLeaks(t *testing.T) {
	db := sessionDB(t, 6, 2000)
	for _, rt := range builtinRuntimes {
		t.Run(rt, func(t *testing.T) {
			tmp := scopeTempDir(t)
			eng, err := Open(db, WithMaxConcurrent(2), WithEngineMemoryBudget(tinyBudget))
			if err != nil {
				t.Fatal(err)
			}
			before := runtime.NumGoroutine()
			q := sessionQuery(t, db, jointree.WideBushy, strategy.FP)
			rows, err := eng.Query(context.Background(), q, WithRuntime(rt))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10 && rows.Next(); i++ {
				_ = rows.Tuple()
			}
			if err := rows.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := rows.Err(); err != nil {
				t.Errorf("Err after user Close = %v, want nil", err)
			}
			if left := spillTempFiles(t, tmp); len(left) != 0 {
				t.Errorf("mid-iteration Close left temp files: %v", left)
			}
			if live := eng.MemoryLive(); live != 0 {
				t.Errorf("mid-iteration Close stranded %d live bytes on the shared budget", live)
			}
			if after := settleGoroutines(before, 2, 5*time.Second); after > before+2 {
				t.Errorf("goroutine leak after mid-iteration Close: %d before, %d after", before, after)
			}
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRowsContextCancelMidIteration cancels the query context (not the
// cursor) mid-iteration: Next must return false, Err must surface the
// cancellation, and nothing may leak.
func TestRowsContextCancelMidIteration(t *testing.T) {
	db := sessionDB(t, 6, 2000)
	for _, rt := range builtinRuntimes {
		t.Run(rt, func(t *testing.T) {
			tmp := scopeTempDir(t)
			eng, err := Open(db, WithEngineMemoryBudget(tinyBudget))
			if err != nil {
				t.Fatal(err)
			}
			before := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			q := sessionQuery(t, db, jointree.WideBushy, strategy.FP)
			rows, err := eng.Query(ctx, q, WithRuntime(rt))
			if err != nil {
				cancel()
				t.Fatal(err)
			}
			if !rows.Next() {
				t.Fatalf("no first tuple: %v", rows.Err())
			}
			cancel()
			for rows.Next() {
				// drain whatever was already in flight
			}
			if err := rows.Err(); !errors.Is(err, context.Canceled) {
				t.Errorf("Err after ctx cancel = %v, want context.Canceled", err)
			}
			rows.Close()
			if left := spillTempFiles(t, tmp); len(left) != 0 {
				t.Errorf("ctx cancel left temp files: %v", left)
			}
			if live := eng.MemoryLive(); live != 0 {
				t.Errorf("ctx cancel stranded %d live bytes on the shared budget", live)
			}
			if after := settleGoroutines(before, 2, 5*time.Second); after > before+2 {
				t.Errorf("goroutine leak after ctx cancel: %d before, %d after", before, after)
			}
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEngineSharedBudgetDrivesSpill pins the acceptance criterion that the
// *shared* budget, not a per-query one, decides spilling: a budget sized so
// one query runs fully resident must still spill once several queries hold
// residency concurrently.
func TestEngineSharedBudgetDrivesSpill(t *testing.T) {
	db := sessionDB(t, 5, 3000)
	tree, err := jointree.BuildShape(jointree.WideBushy, db.NumRelations())
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(db, tree)
	q := Query{DB: db, Tree: tree, Strategy: strategy.FP, Procs: 8}

	// Working set of one query: 5 relations x 3000 tuples x 24 wire bytes
	// ~= 360 KB of operands alone. 2 MiB fits one query with room to
	// spare but not several at once.
	const budget = 2 << 20

	single, err := Open(db, WithEngineMemoryBudget(budget))
	if err != nil {
		t.Fatal(err)
	}
	res, err := single.Exec(context.Background(), q, WithRuntime("spill"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BytesSpilled != 0 {
		t.Fatalf("single query spilled %d bytes under the %d budget; test budget needs retuning", res.Stats.BytesSpilled, budget)
	}
	single.Close()

	eng, err := Open(db, WithEngineMemoryBudget(budget), WithMaxConcurrent(12))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	const concurrent = 12
	// Start every query and let each stream its first batch before any is
	// drained: all runs hold partitioning residency simultaneously, so the
	// combined balance crosses the shared budget even though each query
	// alone would fit.
	cursors := make([]*Rows, concurrent)
	for i := range cursors {
		rows, err := eng.Query(context.Background(), q, WithRuntime("spill"))
		if err != nil {
			t.Fatal(err)
		}
		cursors[i] = rows
	}
	var wg sync.WaitGroup
	errc := make(chan error, concurrent)
	for _, rows := range cursors {
		wg.Add(1)
		go func(rows *Rows) {
			defer wg.Done()
			got, err := rows.All()
			if err != nil {
				errc <- err
				return
			}
			if diff := relation.DiffMultiset(got, want); diff != "" {
				errc <- fmt.Errorf("concurrent spill result differs from reference: %s", diff)
			}
		}(rows)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if eng.SpilledBytes() == 0 {
		t.Errorf("%d concurrent queries on a shared %d-byte budget spilled nothing; the budget is not shared", concurrent, budget)
	}
	if live := eng.MemoryLive(); live != 0 {
		t.Errorf("shared budget left %d live bytes after completion", live)
	}
}

// TestRowsAllAndIterAgree asserts the three consumption styles — Next
// loop, All, Iter — produce the same multiset as Exec.
func TestRowsAllAndIterAgree(t *testing.T) {
	db := sessionDB(t, 4, 500)
	eng, err := Open(db, WithEngineRuntime("parallel"))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q := sessionQuery(t, db, jointree.LeftLinear, strategy.RD)
	want := Reference(db, q.Tree)

	rows, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	byNext := relation.New("result", 0)
	for rows.Next() {
		byNext.Append(rows.Tuple())
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if diff := relation.DiffMultiset(byNext, want); diff != "" {
		t.Errorf("Next-loop result differs: %s", diff)
	}

	rows, err = eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	byAll, err := rows.All()
	if err != nil {
		t.Fatal(err)
	}
	if diff := relation.DiffMultiset(byAll, want); diff != "" {
		t.Errorf("All result differs: %s", diff)
	}

	// A streamed prefix plus All must partition the result: the tuple the
	// cursor already delivered through Next/Tuple is not re-delivered.
	rows, err = eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	split := relation.New("result", 0)
	for i := 0; i < 3; i++ {
		if !rows.Next() {
			t.Fatalf("stream ended after %d tuples: %v", i, rows.Err())
		}
		split.Append(rows.Tuple())
	}
	rest, err := rows.All()
	if err != nil {
		t.Fatal(err)
	}
	split.Append(rest.Tuples...)
	if diff := relation.DiffMultiset(split, want); diff != "" {
		t.Errorf("Next-prefix + All remainder differs (current tuple re-delivered?): %s", diff)
	}

	rows, err = eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	byIter := relation.New("result", 0)
	for tp := range rows.Iter() {
		byIter.Append(tp)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if diff := relation.DiffMultiset(byIter, want); diff != "" {
		t.Errorf("Iter result differs: %s", diff)
	}

	// Early break through Iter closes the cursor.
	rows, err = eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range rows.Iter() {
		if n++; n == 3 {
			break
		}
	}
	if err := rows.Err(); err != nil {
		t.Errorf("Err after early Iter break = %v, want nil", err)
	}
}

// TestRowsIterSurfacesExternalCancel asserts Iter's automatic Close does
// not mask an external context cancellation: a truncated stream must not
// read as a complete one.
func TestRowsIterSurfacesExternalCancel(t *testing.T) {
	db := sessionDB(t, 6, 2000)
	eng, err := Open(db, WithEngineRuntime("parallel"))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	q := sessionQuery(t, db, jointree.WideBushy, strategy.FP)
	rows, err := eng.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range rows.Iter() {
		if n++; n == 5 {
			cancel() // external cancellation, not a user Close
		}
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("Err after external cancel through Iter = %v, want context.Canceled", err)
	}
}

// TestRowsAllVerifyRejectsPartialConsumption asserts a verifying All on a
// cursor that already handed out tuples fails loudly instead of reporting
// a spurious mismatch on the remainder.
func TestRowsAllVerifyRejectsPartialConsumption(t *testing.T) {
	db := sessionDB(t, 4, 300)
	eng, err := Open(db, WithEngineRuntime("parallel"))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q := sessionQuery(t, db, jointree.WideBushy, strategy.FP)
	rows, err := eng.Query(context.Background(), q, WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first tuple: %v", rows.Err())
	}
	if _, err := rows.All(); err == nil {
		t.Fatal("verifying All after Next must fail")
	}
}

// TestEngineExecVerify asserts Engine.Exec honors WithVerify and returns
// the materialized relation with session stats attached.
func TestEngineExecVerify(t *testing.T) {
	db := sessionDB(t, 4, 300)
	eng, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q := sessionQuery(t, db, jointree.WideBushy, strategy.SE)
	res, err := eng.Exec(context.Background(), q, WithRuntime("parallel"), WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if res.Result == nil || res.Result.Card() == 0 {
		t.Fatal("Engine.Exec returned no materialized result")
	}
	if res.Stats.ResultTuples != res.Result.Card() {
		t.Errorf("Stats.ResultTuples = %d, materialized card = %d", res.Stats.ResultTuples, res.Result.Card())
	}
}

// TestEngineClosedRejectsQueries pins the Close contract.
func TestEngineClosedRejectsQueries(t *testing.T) {
	db := sessionDB(t, 4, 100)
	eng, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	q := sessionQuery(t, db, jointree.WideBushy, strategy.FP)
	if _, err := eng.Query(context.Background(), q); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Query after Close returned %v, want ErrEngineClosed", err)
	}
	if _, err := eng.Exec(context.Background(), q); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Exec after Close returned %v, want ErrEngineClosed", err)
	}
}

// TestEngineDefaultsApplied asserts the engine's default runtime and
// params reach queries that specify neither.
func TestEngineDefaultsApplied(t *testing.T) {
	db := sessionDB(t, 4, 100)
	eng, err := Open(db, WithEngineRuntime("parallel"))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	tree, err := jointree.BuildShape(jointree.WideBushy, db.NumRelations())
	if err != nil {
		t.Fatal(err)
	}
	// No DB, no Params on the query: the engine supplies both.
	res, err := eng.Exec(context.Background(), Query{Tree: tree, Strategy: strategy.FP, Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime != "parallel" {
		t.Errorf("Result.Runtime = %q, want the engine default %q", res.Runtime, "parallel")
	}
	if diff := relation.DiffMultiset(res.Result, Reference(db, tree)); diff != "" {
		t.Errorf("result differs from reference: %s", diff)
	}
}

// TestOpenRejectsBadConfig pins Open's validation.
func TestOpenRejectsBadConfig(t *testing.T) {
	if _, err := Open(nil); err == nil {
		t.Error("Open(nil) must fail")
	}
	db := sessionDB(t, 4, 10)
	if _, err := Open(db, WithEngineRuntime("no-such-runtime")); err == nil {
		t.Error("Open with unknown default runtime must fail")
	}
}
