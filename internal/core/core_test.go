package core

import (
	"testing"

	"multijoin/internal/costmodel"
	"multijoin/internal/jointree"
	"multijoin/internal/optimizer"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
)

func testDB(t *testing.T, relations, card int) *wisconsin.Database {
	t.Helper()
	db, err := wisconsin.Chain(wisconsin.Config{Relations: relations, Cardinality: card, Seed: 42})
	if err != nil {
		t.Fatalf("Chain: %v", err)
	}
	return db
}

// TestAllStrategiesAllShapesMatchReference is the central correctness check:
// every strategy on every paper query shape must produce exactly the
// sequential reference result (including provenance checksums).
func TestAllStrategiesAllShapesMatchReference(t *testing.T) {
	db := testDB(t, 10, 200)
	for _, shape := range jointree.Shapes {
		tree, err := jointree.BuildShape(shape, db.NumRelations())
		if err != nil {
			t.Fatalf("BuildShape(%v): %v", shape, err)
		}
		for _, kind := range strategy.Kinds {
			kind, tree, shape := kind, tree, shape
			t.Run(shape.String()+"/"+kind.String(), func(t *testing.T) {
				res, err := Verify(Query{
					DB: db, Tree: tree, Strategy: kind, Procs: 12,
					Params: costmodel.Default(),
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Stats.ResultTuples != db.Cardinality() {
					t.Errorf("result tuples = %d, want %d", res.Stats.ResultTuples, db.Cardinality())
				}
				if res.ResponseTime <= 0 {
					t.Errorf("non-positive response time %v", res.ResponseTime)
				}
				ok, err := db.SamePairs(res.Result, 0, db.NumRelations()-1)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Errorf("result pairs differ from expected span pairs")
				}
			})
		}
	}
}

// TestTwoPhase runs the complete pipeline: optimize then parallelize.
func TestTwoPhase(t *testing.T) {
	db := testDB(t, 6, 100)
	for _, space := range []optimizer.Space{optimizer.LinearSpace, optimizer.BushySpace} {
		tree, res, err := TwoPhase(db, space, strategy.FP, 8, costmodel.Default())
		if err != nil {
			t.Fatalf("TwoPhase(%v): %v", space, err)
		}
		if jointree.NumJoins(tree) != 5 {
			t.Errorf("space %v: tree has %d joins, want 5", space, jointree.NumJoins(tree))
		}
		if res.Stats.ResultTuples != db.Cardinality() {
			t.Errorf("space %v: got %d tuples, want %d", space, res.Stats.ResultTuples, db.Cardinality())
		}
	}
}

// TestExampleTree executes the Figure 2 example tree with all strategies.
func TestExampleTree(t *testing.T) {
	db := testDB(t, 5, 150)
	tree := jointree.Example()
	for _, kind := range strategy.Kinds {
		if _, err := Verify(Query{
			DB: db, Tree: tree, Strategy: kind, Procs: 10,
			Params: costmodel.Default(),
		}); err != nil {
			t.Errorf("%v on example tree: %v", kind, err)
		}
	}
}
