// Session layer: a long-lived Engine that admits many concurrent queries
// against one resident database and streams their results through cursors.
//
// The paper's PRISMA/DB is a long-running parallel DBMS: the machine, its
// processors and its memory are owned by the system, not by any single
// query. Exec's one-shot shape (private runtime, materialized result, full
// teardown) cannot express that — two concurrent queries would each claim
// the whole machine. Open returns an Engine that owns the shared resources
// instead: one processor pool (parallel.ProcPool) capping concurrent
// computation across every in-flight query, one spill.Meter memory budget
// that concurrent spill queries draw down together, default runtime and
// machine parameters, and an admission semaphore whose queue wait is
// reported per query in Stats.QueueWait. Engine.Query returns a Rows
// cursor over the runtime's result stream — Volcano-style consumption
// (Next/Tuple) instead of materialization — with mid-iteration Close
// tearing the query's workers down without leaking goroutines, pooled
// batches, or spill temp files.
package core

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"runtime"
	"sync"
	"time"

	"multijoin/internal/costmodel"
	"multijoin/internal/parallel"
	"multijoin/internal/relation"
	"multijoin/internal/spill"
	"multijoin/internal/wisconsin"
)

// ErrEngineClosed is returned by Engine.Query and Engine.Exec after Close.
var ErrEngineClosed = errors.New("core: engine is closed")

// sharedRes carries the engine-owned resources one session query executes
// against. procs is the engine's processor pool; meter is the per-query
// child of the engine's shared memory budget (nil for runtimes that do not
// account memory).
type sharedRes struct {
	procs *parallel.ProcPool
	meter *spill.Meter
}

// Engine is a long-lived session over one database: it admits concurrent
// queries, shares processors and memory among them, and streams results.
// All methods are safe for concurrent use. Close after the last query.
type Engine struct {
	db         *wisconsin.Database
	defaults   Options
	maxConc    int
	poolSize   int
	budget     int64
	policyName string
	cal        costmodel.Calibration

	policy admissionPolicy    // admission: fifo semaphore or cost-based SJF
	plans  *planCache         // memoized strategy.Plan output by query shape
	procs  *parallel.ProcPool // shared modeled processors (wall-clock runtimes)
	meter  *spill.Meter       // shared memory budget (root; queries get children)

	mu      sync.Mutex
	closed  bool
	cursors map[*Rows]struct{} // open cursors whose resources are not yet settled
	views   map[*View]struct{} // open materialized views (CreateView)
	// idle is non-nil while a graceful Shutdown waits for the open cursors
	// to settle; dropCursor closes it when the last one does.
	idle chan struct{}
	// closeDone is closed once the first Close/Shutdown finished releasing
	// the engine's resources; later callers wait on it (idempotent close).
	closeDone chan struct{}
	inflight  sync.WaitGroup
}

// EngineOption configures an Engine at Open time.
type EngineOption func(*Engine)

// WithEngineRuntime sets the default runtime for the engine's queries, by
// registry name (default: DefaultRuntime). Individual queries may still
// override it with WithRuntime.
func WithEngineRuntime(name string) EngineOption {
	return func(e *Engine) { e.defaults.Runtime = name }
}

// WithEngineParams sets the default machine parameters applied to queries
// whose own Params are zero (default: costmodel.Default()).
func WithEngineParams(p costmodel.Params) EngineOption {
	return func(e *Engine) { e.defaults.Params = p }
}

// WithMaxConcurrent caps how many queries may execute at once; further
// Engine.Query calls wait in the admission queue (the wait is reported in
// the query's Stats.QueueWait) or fail when their context is cancelled
// first. Zero (the default) means 2×GOMAXPROCS; negative means unlimited.
func WithMaxConcurrent(n int) EngineOption {
	return func(e *Engine) { e.maxConc = n }
}

// WithEngineProcs sets the size of the engine's shared processor pool: the
// number of modeled processors (run-queue dispatchers) that serialize the
// operator work of *all* in-flight queries on the wall-clock runtimes, the
// session counterpart of WithMaxProcs. Zero (the default) means GOMAXPROCS.
// Under an engine, a per-query WithMaxProcs is ignored — the pool is the
// machine.
func WithEngineProcs(n int) EngineOption {
	return func(e *Engine) { e.poolSize = n }
}

// WithEngineMemoryBudget sets the engine's shared live-tuple memory budget
// in bytes for spill-runtime queries: all in-flight spill queries account
// against one meter, so spilling starts when their *combined* residency
// exceeds the budget — a per-query budget cannot protect a machine that
// runs many queries. Zero means spill.DefaultBudgetBytes. Under an engine,
// a per-query WithMemoryBudget is ignored.
func WithEngineMemoryBudget(bytes int64) EngineOption {
	return func(e *Engine) { e.budget = bytes }
}

// WithAdmissionPolicy selects how queued queries are admitted, by name:
// "fifo" (the default) admits in arrival order; "cost" orders the queue
// shortest-estimated-job-first with aging and reserves each spill query's
// estimated peak memory from the shared budget at admission, so a query
// that fits runs unspilled and one that can never fit is admitted with a
// Grace-partitioned budget instead of thrashing the pool.
func WithAdmissionPolicy(name string) EngineOption {
	return func(e *Engine) { e.policyName = name }
}

// WithCalibration supplies host-measured cost-model calibration
// (costmodel.Calibrate): the cost admission policy then orders the queue by
// predicted wall time on this machine instead of an assumed per-unit cost,
// and Stats.EstimatedCost reports the calibrated prediction.
func WithCalibration(c costmodel.Calibration) EngineOption {
	return func(e *Engine) { e.cal = c }
}

// Open starts a session over db: a long-lived Engine owning the shared
// processor pool, the shared memory budget, and the admission queue that
// every Engine.Query draws on.
//
//	eng, err := core.Open(db, core.WithMaxConcurrent(16))
//	defer eng.Close()
//	rows, err := eng.Query(ctx, q, core.WithRuntime("parallel"))
//	defer rows.Close()
//	for rows.Next() { use(rows.Tuple()) }
//	err = rows.Err()
func Open(db *wisconsin.Database, opts ...EngineOption) (*Engine, error) {
	if db == nil {
		return nil, fmt.Errorf("core: Open needs a database")
	}
	e := &Engine{
		db:       db,
		defaults: Options{Runtime: DefaultRuntime, Params: costmodel.Default()},
	}
	for _, opt := range opts {
		opt(e)
	}
	if _, err := LookupRuntime(e.defaults.Runtime); err != nil {
		return nil, err
	}
	if e.maxConc == 0 {
		e.maxConc = 2 * runtime.GOMAXPROCS(0)
	}
	e.procs = parallel.NewProcPool(e.poolSize)
	e.meter = spill.NewMeter(e.budget)
	e.plans = newPlanCache()
	e.cursors = make(map[*Rows]struct{})
	e.views = make(map[*View]struct{})
	e.closeDone = make(chan struct{})
	policy, err := newAdmissionPolicy(e.policyName, e.maxConc, e.meter)
	if err != nil {
		e.procs.Close()
		return nil, err
	}
	e.policy = policy
	return e, nil
}

// Query plans q and starts executing it under the engine's shared
// resources, returning a streaming cursor over the result. The query's
// workers run concurrently with the caller; backpressure through the
// cursor paces them. q.DB defaults to the engine's database and a zero
// q.Params to the engine's default parameters. ctx bounds the whole query:
// cancelling it (or calling Rows.Close) tears the execution down.
func (e *Engine) Query(ctx context.Context, q Query, opts ...Option) (*Rows, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrEngineClosed
	}
	e.inflight.Add(1)
	e.mu.Unlock()
	rows, err := e.query(ctx, q, opts)
	if err != nil {
		e.inflight.Done()
		return nil, err
	}
	return rows, nil
}

func (e *Engine) query(ctx context.Context, q Query, opts []Option) (*Rows, error) {
	if q.DB == nil {
		q.DB = e.db
	}
	if q.Params == (costmodel.Params{}) {
		q.Params = e.defaults.Params
	}
	o := e.defaults
	o.Params = q.Params
	for _, opt := range opts {
		opt(&o)
	}
	if o.Runtime == "" {
		o.Runtime = DefaultRuntime
	}
	rt, err := LookupRuntime(o.Runtime)
	if err != nil {
		return nil, err
	}
	plan, planHit, err := e.plans.plan(q)
	if err != nil {
		return nil, err
	}
	child := e.meter.Child()
	o.shared = &sharedRes{procs: e.procs, meter: child}

	// Admission: the engine's policy decides when the query may start —
	// arrival order under "fifo", calibrated shortest-job-first with memory
	// reservation under "cost". The wait is the queue-wait the throughput
	// experiment reports; a context cancelled while queued abandons the
	// query before it consumed anything.
	ticket := &admitTicket{est: e.estimateQuery(q, o, plan), meter: child}
	start := time.Now()
	if err := e.policy.admit(ctx, ticket); err != nil {
		return nil, err
	}
	queueWait := time.Since(start)

	qctx, cancel := context.WithCancel(ctx)
	r := &Rows{
		cancel:     cancel,
		ch:         make(chan pushed, 1),
		done:       make(chan struct{}),
		queueWait:  queueWait,
		planHit:    planHit,
		estCost:    ticket.est.wall,
		reserved:   ticket.reserved,
		meter:      child,
		tupleBytes: q.tupleBytes(),
		estCard:    q.estResultCard(),
		verify:     o.Verify,
		query:      q,
	}
	r.onSettle = func() {
		// The cursor's shared-budget accounting is settled: it no longer
		// needs a force-close at engine shutdown, and the freed reservation
		// may admit a memory-blocked waiter.
		e.dropCursor(r)
		e.policy.kick()
	}

	// Register the cursor so Close/Shutdown can find and drain it. Admission
	// may have raced a concurrent Close: re-check under the lock and undo the
	// grant if the engine closed while this query was queued, so its slot and
	// reservation do not leak into a torn-down engine.
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		cancel()
		e.policy.release(ticket)
		child.Settle()
		e.policy.kick()
		return nil, ErrEngineClosed
	}
	e.cursors[r] = struct{}{}
	e.mu.Unlock()

	go func() {
		res, err := rt.Execute(qctx, plan, q.baseRelation, (*querySink)(r), o)
		r.res, r.err = res, err
		close(r.ch) // no pushes after Execute returns; readers observe res/err
		e.policy.release(ticket)
		e.inflight.Done()
		cancel()
		close(r.done)
	}()
	return r, nil
}

// dropCursor forgets a settled cursor and, when a graceful Shutdown is
// waiting, signals it once the last open cursor has settled.
func (e *Engine) dropCursor(r *Rows) {
	e.mu.Lock()
	delete(e.cursors, r)
	if e.idle != nil && len(e.cursors) == 0 {
		close(e.idle)
		e.idle = nil
	}
	e.mu.Unlock()
}

// Exec runs the query to completion under the engine's shared resources
// and returns the materialized result — Engine.Query plus Rows.All, for
// callers that want the classic Exec shape with session semantics
// (admission, shared processors and memory, QueueWait in the stats).
// WithVerify is honored here.
func (e *Engine) Exec(ctx context.Context, q Query, opts ...Option) (*Result, error) {
	rows, err := e.Query(ctx, q, opts...)
	if err != nil {
		return nil, err
	}
	rel, err := rows.All()
	if err != nil {
		return nil, err
	}
	res, _ := rows.Result()
	res.Result = rel
	return res, nil
}

// DB returns the engine's resident database.
func (e *Engine) DB() *wisconsin.Database { return e.db }

// MemoryLive returns the current live-byte balance of the engine's shared
// memory budget — pooled batches and buffered join operands of every
// in-flight spill query. It settles back to zero once all queries have
// completed or been closed.
func (e *Engine) MemoryLive() int64 { return e.meter.Live() }

// SpilledBytes returns the total bytes all of the engine's queries have
// written to spill partitions so far.
func (e *Engine) SpilledBytes() int64 { return e.meter.SpilledBytes() }

// PlanCacheStats returns the engine's cumulative plan-cache hit and miss
// counts. Every miss planned exactly once (singleflight), so misses equals
// the number of distinct query shapes planned.
func (e *Engine) PlanCacheStats() (hits, misses int64) { return e.plans.Stats() }

// AdmissionPolicy returns the name of the engine's admission policy
// ("fifo" or "cost").
func (e *Engine) AdmissionPolicy() string { return e.policy.name() }

// Close tears the engine down immediately: no new queries are admitted,
// queries still waiting in the admission queue fail with ErrEngineClosed,
// and every outstanding Rows cursor — streaming, or finished but never
// drained — is force-closed, releasing its pooled batches and settling its
// shared-budget reservation (such a cursor's Err reports ErrEngineClosed).
// Only then are the shared resources released, so after Close the meter's
// live balance is zero and no query goroutine survives. Close is
// idempotent and safe to call concurrently; it never blocks on a cursor
// nobody reads. For a drain that gives in-flight queries time to finish
// naturally, use Shutdown.
func (e *Engine) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // zero grace: force-close straight away
	return e.Shutdown(ctx)
}

// Shutdown closes the engine gracefully: new queries and queued admission
// waiters fail with ErrEngineClosed immediately, but queries already
// executing keep their cursors alive until their consumers drain them —
// up to ctx's deadline. Cursors still unsettled when ctx expires are
// force-closed exactly as by Close. Shutdown returns once every query
// goroutine has exited and the shared memory budget has settled to zero;
// like Close it is idempotent, and a second concurrent call waits for the
// first to finish.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.closeDone
		return nil
	}
	e.closed = true
	idle := make(chan struct{})
	if len(e.cursors) == 0 {
		close(idle)
	} else {
		e.idle = idle
	}
	e.mu.Unlock()
	defer close(e.closeDone)

	// Fail queued admits: a waiter granted a slot after this point is
	// undone by the registration re-check in query().
	e.policy.close()

	// Grace period: wait for the consumers to drain and settle every open
	// cursor. (The runtime goroutines exiting is not enough — a finished
	// execution's batches may still be in flight through the cursor.)
	select {
	case <-idle:
	case <-ctx.Done():
	}

	// Force-close whatever is still unsettled — cursors mid-stream when the
	// grace expired, and cursors whose execution finished but that nobody
	// drained (their pooled batches and reservations are still charged).
	e.mu.Lock()
	e.idle = nil
	open := make([]*Rows, 0, len(e.cursors))
	for r := range e.cursors {
		open = append(open, r)
	}
	views := make([]*View, 0, len(e.views))
	for v := range e.views {
		views = append(views, v)
	}
	e.mu.Unlock()
	for _, r := range open {
		r.closeWith(ErrEngineClosed)
	}
	// Views are resident until closed — they never settle on their own, so
	// a shutdown of any kind tears them down here (a blocked Apply fails
	// with ivm.ErrViewClosed and the residency charge settles to zero).
	for _, v := range views {
		v.Close()
	}
	e.inflight.Wait()
	e.procs.Close()
	return nil
}

// pushed is one result batch handed from the runtime to the cursor,
// together with the release that returns it to the runtime's pool.
type pushed struct {
	batch   *relation.Batch
	release func()
}

// querySink adapts a Rows into the Sink the runtime pushes into. (A
// separate type keeps Push off the cursor's public API.)
type querySink Rows

func (s *querySink) Push(ctx context.Context, batch *relation.Batch, release func()) error {
	select {
	case s.ch <- pushed{batch: batch, release: release}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Rows is a streaming cursor over one query's result — the database/sql
// shape over the runtime's push stream:
//
//	rows, err := eng.Query(ctx, q)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	        t := rows.Tuple()
//	        ...
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Batches are pooled: the cursor holds one batch at a time and releases it
// back to the runtime's pool when Next advances past it. Next/Tuple/Err/
// All/Iter are for one goroutine; Close may be called from any goroutine
// (and concurrently with Next) to abandon the query mid-iteration — it
// cancels the execution, drains and releases pending batches, and returns
// only after every worker goroutine has exited.
type Rows struct {
	cancel     context.CancelFunc
	ch         chan pushed
	done       chan struct{} // closed when the runtime goroutine has exited
	queueWait  time.Duration
	planHit    bool          // plan served from the engine's plan cache
	estCost    time.Duration // admission-time wall estimate
	reserved   int64         // admission-time memory reservation (bytes)
	meter      *spill.Meter  // per-query child of the engine budget
	onSettle   func()        // pokes the admission policy when the reservation frees
	tupleBytes int
	estCard    int // upper-bound result cardinality, presizes All
	verify     bool
	query      Query

	// res and err are written by the runtime goroutine before ch closes.
	res *Result
	err error

	mu        sync.Mutex
	closed    bool
	finished  bool
	delivered bool // at least one tuple was handed out through Next/Tuple
	// userCancelled records that Close tore down a still-running query —
	// the one case where a context.Canceled outcome is the caller's own
	// doing and Err reports nil. A run that already ended (external ctx
	// cancel, runtime failure) before Close keeps its error.
	userCancelled bool
	cur           pushed
	idx           int
	curTuple      relation.Tuple // copy of cur.tuples[idx]; survives a concurrent Close
	runErr        error          // final error exposed by Err

	closeOnce  sync.Once
	settleOnce sync.Once
}

// Next advances the cursor to the next result tuple, blocking until one is
// available, and reports whether there is one. It returns false when the
// stream ends (then Err reports how) and after Close.
func (r *Rows) Next() bool {
	r.mu.Lock()
	if r.closed || r.finished {
		r.mu.Unlock()
		return false
	}
	if r.cur.batch != nil {
		if r.idx+1 < r.cur.batch.Len() {
			r.idx++
			r.curTuple = r.cur.batch.Tuple(r.idx)
			r.delivered = true
			r.mu.Unlock()
			return true
		}
		rel := r.cur.release
		r.cur = pushed{}
		r.mu.Unlock()
		if rel != nil {
			rel() // consumed: pooled batch goes back to the runtime
		}
	} else {
		r.mu.Unlock()
	}
	for {
		p, ok := <-r.ch
		if !ok {
			r.finish()
			return false
		}
		if p.batch.Len() == 0 {
			if p.release != nil {
				p.release()
			}
			continue
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			if p.release != nil {
				p.release()
			}
			return false
		}
		r.cur, r.idx = p, 0
		r.curTuple = p.batch.Tuple(0)
		r.delivered = true
		r.mu.Unlock()
		return true
	}
}

// Tuple returns the tuple the cursor is positioned on: the one the last
// Next that returned true advanced to. A concurrent Close only stops
// further iteration — the copy returned here stays valid.
func (r *Rows) Tuple() relation.Tuple {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.curTuple
}

// finish records the execution outcome once the stream has been fully
// consumed.
func (r *Rows) finish() {
	<-r.done // res/err are now written; workers have exited
	r.mu.Lock()
	if !r.finished {
		r.finished = true
		r.runErr = r.err
		r.stampStats()
	}
	r.mu.Unlock()
	r.settle()
}

// stampStats writes the session-side stats (admission wait, plan-cache
// outcome, reservation) into the runtime's result. Callers hold r.mu.
func (r *Rows) stampStats() {
	if r.res == nil {
		return
	}
	r.res.Stats.QueueWait = r.queueWait
	r.res.Stats.PlanCacheHit = r.planHit
	r.res.Stats.EstimatedCost = r.estCost
	r.res.Stats.MemReserved = r.reserved
}

// settle releases the query's outstanding shared-budget reservation (a
// cancelled run can strand pooled-batch accounting); it must run after the
// workers exited and the cursor released every batch it held. The engine's
// admission policy is poked afterwards: freed reservation bytes may admit
// a memory-blocked waiter.
func (r *Rows) settle() {
	r.settleOnce.Do(func() {
		if r.meter != nil {
			r.meter.Settle()
		}
		if r.onSettle != nil {
			r.onSettle()
		}
	})
}

// Err returns the error that ended iteration, if any. It is nil while
// iterating, after a complete drain, and after a Close that abandoned a
// still-running query (that cancellation is the caller's own doing, not an
// error). A query whose context was cancelled externally reports
// context.Canceled even if the cursor is closed afterwards — a truncated
// stream must not read as a complete one.
func (r *Rows) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.userCancelled && errors.Is(r.runErr, context.Canceled) {
		return nil
	}
	return r.runErr
}

// Result returns the unified execution result (runtime name, response
// time, stats including QueueWait) once the cursor is exhausted or closed;
// ok is false while the query is still streaming. Result.Result is nil —
// the tuples went through the cursor.
func (r *Rows) Result() (*Result, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.finished {
		return nil, false
	}
	return r.res, r.res != nil
}

// Close abandons the query: it cancels the execution, releases every
// pending pooled batch, and returns once all of the query's goroutines
// have exited and its shared-budget reservation is settled. Closing a
// fully consumed or already closed cursor is a no-op. Close always returns
// nil; consumption errors are Err's.
func (r *Rows) Close() error {
	r.closeWith(nil)
	return nil
}

// closeWith is Close with an attributed cause. A nil cause is the caller's
// own Close — abandoning a still-running query is then deliberate and Err
// stays nil. A non-nil cause (the engine shutting down underneath the
// cursor) becomes the cursor's error: the consumer's stream was truncated
// by someone else and must not read as complete.
func (r *Rows) closeWith(cause error) {
	r.closeOnce.Do(func() {
		r.mu.Lock()
		alreadyDone := r.finished
		r.closed = true
		if !alreadyDone && cause == nil {
			r.userCancelled = true
		}
		cur := r.cur
		r.cur = pushed{}
		r.mu.Unlock()
		r.cancel()
		if cur.release != nil {
			cur.release()
		}
		for p := range r.ch {
			if p.release != nil {
				p.release()
			}
		}
		<-r.done
		r.mu.Lock()
		if !r.finished {
			r.finished = true
			if !alreadyDone {
				r.runErr = r.err
				if cause != nil {
					r.runErr = cause
				}
			}
			r.stampStats()
		}
		r.mu.Unlock()
		r.settle()
	})
}

// All drains the cursor into a materialized relation and closes it — the
// bridge from the streaming API back to Exec's shape. If the query was
// started with WithVerify, the materialized result is checked against the
// sequential reference here; that check needs the *whole* result, so a
// verifying All on a cursor that already handed out tuples through Next
// fails rather than reporting a spurious mismatch on the remainder.
func (r *Rows) All() (*relation.Relation, error) {
	r.mu.Lock()
	if r.verify && r.delivered {
		r.mu.Unlock()
		r.Close()
		return nil, errors.New("core: Rows.All with WithVerify needs the full stream; tuples were already consumed through Next")
	}
	r.mu.Unlock()
	rel := relation.NewWithCap("result", r.tupleBytes, r.estCard)
	for {
		r.mu.Lock()
		closed, finished := r.closed, r.finished
		if r.cur.batch != nil {
			// Drain the rest of the current batch wholesale, starting
			// after the tuple the cursor already delivered through
			// Next/Tuple.
			r.cur.batch.AppendRangeTo(rel, r.idx+1, r.cur.batch.Len())
			release := r.cur.release
			r.cur = pushed{}
			r.mu.Unlock()
			if release != nil {
				release()
			}
			continue
		}
		r.mu.Unlock()
		if closed || finished {
			break
		}
		p, ok := <-r.ch
		if !ok {
			r.finish()
			break
		}
		p.batch.AppendTo(rel)
		if p.release != nil {
			p.release()
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	r.Close()
	if r.verify {
		want := Reference(r.query.DB, r.query.Tree)
		if diff := relation.DiffMultiset(rel, want); diff != "" {
			return nil, fmt.Errorf("core: %v result differs from reference: %s", r.query.Strategy, diff)
		}
	}
	return rel, nil
}

// Iter returns a Go 1.23 range-over-func iterator over the remaining
// tuples; the cursor is closed when iteration stops (including early
// break). Check Err afterwards for how the stream ended:
//
//	for t := range rows.Iter() {
//	        use(t)
//	}
//	if err := rows.Err(); err != nil { ... }
func (r *Rows) Iter() iter.Seq[relation.Tuple] {
	return func(yield func(relation.Tuple) bool) {
		defer r.Close()
		for r.Next() {
			if !yield(r.Tuple()) {
				return
			}
		}
	}
}
