package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"multijoin/internal/jointree"
	"multijoin/internal/spill"
	"multijoin/internal/strategy"
)

// admitAsync runs admit in a goroutine and reports its outcome on the
// returned channel.
func admitAsync(p admissionPolicy, ctx context.Context, t *admitTicket) chan error {
	ch := make(chan error, 1)
	go func() { ch <- p.admit(ctx, t) }()
	return ch
}

// waitQueued polls until the cost policy has n queued waiters.
func waitQueued(t *testing.T, p *costPolicy, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.mu.Lock()
		have := len(p.waiters)
		p.mu.Unlock()
		if have >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d queued waiters (have %d)", n, have)
		}
		time.Sleep(time.Millisecond)
	}
}

func spillTicket(root *spill.Meter, peak int64, wall time.Duration) *admitTicket {
	return &admitTicket{
		est:   queryEstimate{wall: wall, peakBytes: peak},
		meter: root.Child(),
	}
}

// TestCostAdmitCancelQueuedHeadUnblocksQueue is the regression test for a
// context firing while its query is *queued*: cancelling the memory-blocked
// head waiter must re-evaluate the queue, because head-of-line blocking on
// memory was holding every other spill waiter behind it — one of them may
// fit right now. Pre-fix, the departing waiter was only removed, and the
// admissible waiter stayed stranded until some unrelated release.
func TestCostAdmitCancelQueuedHeadUnblocksQueue(t *testing.T) {
	root := spill.NewMeter(100)
	pol, err := newAdmissionPolicy("cost", -1, root)
	if err != nil {
		t.Fatal(err)
	}
	p := pol.(*costPolicy)

	// A runs, reserving 60 of the 100-byte budget.
	a := spillTicket(root, 60, 5*time.Millisecond)
	if err := p.admit(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	if a.reserved != 60 {
		t.Fatalf("ticket A reserved %d bytes, want 60", a.reserved)
	}

	// B (cheaper, so always the queue head) needs 50: blocked on memory.
	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelB()
	b := spillTicket(root, 50, 10*time.Millisecond)
	chB := admitAsync(p, ctxB, b)
	waitQueued(t, p, 1)

	// C needs 30 — it would fit (60+30 <= 100) but the memory-blocked head
	// B holds its place against other memory consumers.
	c := spillTicket(root, 30, 20*time.Millisecond)
	chC := admitAsync(p, context.Background(), c)
	waitQueued(t, p, 2)

	select {
	case err := <-chC:
		t.Fatalf("C admitted while blocked behind the queue head: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// B's context fires while it is queued. C must be admitted promptly.
	cancelB()
	if err := <-chB; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queued admit returned %v, want context.Canceled", err)
	}
	select {
	case err := <-chC:
		if err != nil {
			t.Fatalf("C's admit failed: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("C stranded after the queued head's context fired (queue not re-evaluated)")
	}
	if c.reserved != 30 {
		t.Errorf("C admitted with reservation %d, want 30", c.reserved)
	}
}

// TestCostAbandonGrantKicksMemoryWaiters is the regression test for the
// narrower race: the queued context fires in the same instant a grant
// lands. The undo path must release the ticket's slot AND its memory
// reservation AND kick the queue afterwards — releasing the slot first
// re-evaluates waiters while the doomed reservation is still charged, so
// without the final kick a memory-blocked waiter stays stranded even
// though the bytes it needs just came free.
func TestCostAbandonGrantKicksMemoryWaiters(t *testing.T) {
	root := spill.NewMeter(100)
	pol, err := newAdmissionPolicy("cost", -1, root)
	if err != nil {
		t.Fatal(err)
	}
	p := pol.(*costPolicy)

	// A1 keeps running throughout, holding 60 bytes.
	a1 := spillTicket(root, 60, 5*time.Millisecond)
	if err := p.admit(context.Background(), a1); err != nil {
		t.Fatal(err)
	}
	// A2 is the granted-then-cancelled ticket, holding the remaining 40.
	a2 := spillTicket(root, 40, 5*time.Millisecond)
	if err := p.admit(context.Background(), a2); err != nil {
		t.Fatal(err)
	}
	// B needs 40: blocked until A2's reservation returns.
	b := spillTicket(root, 40, 10*time.Millisecond)
	chB := admitAsync(p, context.Background(), b)
	waitQueued(t, p, 1)

	// A2's caller observed its context cancelled after the grant landed;
	// the policy must undo the admission completely.
	p.abandonGrant(a2)

	select {
	case err := <-chB:
		if err != nil {
			t.Fatalf("B's admit failed: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("B stranded after an abandoned grant settled its reservation (no kick)")
	}
	if live := root.Live(); live != 60+40 {
		t.Errorf("root meter live = %d after abandon+readmit, want 100", live)
	}
}

// TestEngineCostAdmissionTimeoutChurn hammers the queued-cancel path the
// way mjload's open-loop timeouts do: many concurrent spill queries under
// the cost policy with contexts that routinely expire while queued. The
// engine must come out of the churn with zero stranded reservation bytes
// and a working admission queue.
func TestEngineCostAdmissionTimeoutChurn(t *testing.T) {
	db := sessionDB(t, 4, 400)
	eng, err := Open(db,
		WithMaxConcurrent(2),
		WithEngineMemoryBudget(64<<10),
		WithAdmissionPolicy("cost"))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	tree, err := jointree.BuildShape(jointree.WideBushy, db.NumRelations())
	if err != nil {
		t.Fatal(err)
	}
	q := Query{DB: db, Tree: tree, Strategy: strategy.FP, Procs: 4}

	rng := rand.New(rand.NewSource(9))
	timeouts := make([]time.Duration, 48)
	for i := range timeouts {
		timeouts[i] = time.Duration(rng.Intn(4000)) * time.Microsecond
	}
	var wg sync.WaitGroup
	for _, d := range timeouts {
		wg.Add(1)
		go func(d time.Duration) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), d)
			defer cancel()
			rows, err := eng.Query(ctx, q, WithRuntime("spill"))
			if err != nil {
				return // timed out while queued: the path under test
			}
			rows.All()
		}(d)
	}
	wg.Wait()

	// Every reservation the churn stranded would surface here: either as a
	// nonzero live balance, or as a fresh spill query stuck in admission.
	deadline := time.Now().Add(5 * time.Second)
	for eng.MemoryLive() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if live := eng.MemoryLive(); live != 0 {
		t.Errorf("engine meter live = %d bytes after timeout churn, want 0", live)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rows, err := eng.Query(ctx, q, WithRuntime("spill"))
	if err != nil {
		t.Fatalf("fresh query after churn not admitted: %v", err)
	}
	if _, err := rows.All(); err != nil {
		t.Fatalf("fresh query after churn failed: %v", err)
	}
}
