// Package core ties the reproduction together: it exposes the two-phase
// optimization/parallelization pipeline of the paper as a small API.
//
// Phase 1 (package optimizer) picks a join tree with minimal total cost;
// phase 2 (package strategy) parallelizes a tree with one of the four
// strategies; the engine executes the resulting xra plan on the simulated
// PRISMA/DB machine. Core also provides the sequential reference execution
// used to verify every parallel run.
package core

import (
	"fmt"

	"multijoin/internal/costmodel"
	"multijoin/internal/engine"
	"multijoin/internal/jointree"
	"multijoin/internal/optimizer"
	"multijoin/internal/parallel"
	"multijoin/internal/relation"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
	"multijoin/internal/xra"
)

// Query is one parallel multi-join execution request: a database, a join
// tree over its relations, a parallelization strategy, and a machine size.
type Query struct {
	DB       *wisconsin.Database
	Tree     *jointree.Node
	Strategy strategy.Kind
	Procs    int
	Params   costmodel.Params
	// EqualWork disables the strategies' cost function for this query:
	// every join is weighted equally when distributing processors (the
	// Section 5 cost-function ablation).
	EqualWork bool
}

// Plan produces the xra plan for the query (phase 2 only). Work estimates
// use the database's exact span cardinalities, which on the paper's regular
// workload reduce to the constant per-relation cardinality.
func (q Query) Plan() (*xra.Plan, error) {
	if q.DB == nil || q.Tree == nil {
		return nil, fmt.Errorf("core: query needs a database and a join tree")
	}
	cfg := strategy.Config{
		Procs:     q.Procs,
		Card:      float64(q.DB.Cardinality()),
		SpanCard:  q.DB.SpanCard,
		EqualWork: q.EqualWork,
	}
	return strategy.Plan(q.Strategy, q.Tree, cfg)
}

// Run plans and executes the query on the simulated machine.
//
// Deprecated: use Exec, which executes on any registered runtime with
// context cancellation and returns the unified Result.
func (q Query) Run() (*engine.RunResult, error) {
	plan, err := q.Plan()
	if err != nil {
		return nil, err
	}
	return engine.Run(plan, q.baseRelation, q.Params)
}

func (q Query) baseRelation(leaf int) *relation.Relation {
	if leaf < 0 || leaf >= q.DB.NumRelations() {
		return nil
	}
	return q.DB.Relation(leaf)
}

// tupleBytes is the declared tuple width for the query's result relation
// (the base relations all share one width).
func (q Query) tupleBytes() int {
	if q.DB == nil || q.DB.NumRelations() == 0 {
		return 0
	}
	return q.DB.Relation(0).TupleBytes
}

// estResultCard is the upper-bound result cardinality used to presize
// materialized results (gatherSink, Rows.All): the chain query's joins are
// 1:1, so the largest base relation bounds the output — the same estimate
// the runtimes use to size hash tables and collect buffers.
func (q Query) estResultCard() int {
	if q.DB == nil {
		return 0
	}
	est := 0
	for i := 0; i < q.DB.NumRelations(); i++ {
		if c := q.DB.Card(i); c > est {
			est = c
		}
	}
	return est
}

// ExecuteParallel plans the query and executes the plan with real
// goroutine concurrency (package parallel) instead of the simulator: one
// worker goroutine per operation process, buffered channels as tuple
// streams, and a processor-cap semaphore. The returned result is the same
// multiset the simulator and the sequential reference produce.
//
// Deprecated: use Exec with WithRuntime("parallel").
func ExecuteParallel(q Query, cfg parallel.Config) (*parallel.RunResult, error) {
	plan, err := q.Plan()
	if err != nil {
		return nil, err
	}
	return parallel.Run(plan, q.baseRelation, cfg)
}

// VerifyParallel executes the query on the goroutine runtime and checks the
// result against the sequential reference.
//
// Deprecated: use Exec with WithRuntime("parallel") and WithVerify.
func VerifyParallel(q Query, cfg parallel.Config) (*parallel.RunResult, error) {
	res, err := ExecuteParallel(q, cfg)
	if err != nil {
		return nil, err
	}
	want := Reference(q.DB, q.Tree)
	if diff := relation.DiffMultiset(res.Result, want); diff != "" {
		return nil, fmt.Errorf("core: parallel %v result differs from reference: %s", q.Strategy, diff)
	}
	return res, nil
}

// Reference evaluates the tree sequentially with real hash joins — the
// oracle result, with provenance checksums, that every strategy must
// reproduce exactly.
func Reference(db *wisconsin.Database, tree *jointree.Node) *relation.Relation {
	return jointree.Reference(tree, func(leaf int) *relation.Relation {
		return db.Relation(leaf)
	})
}

// Verify runs the query and checks the result against the sequential
// reference, returning the run result or an error describing the first
// discrepancy.
//
// Deprecated: use Exec with WithVerify.
func Verify(q Query) (*engine.RunResult, error) {
	res, err := q.Run()
	if err != nil {
		return nil, err
	}
	want := Reference(q.DB, q.Tree)
	if diff := relation.DiffMultiset(res.Result, want); diff != "" {
		return nil, fmt.Errorf("core: %v result differs from reference: %s", q.Strategy, diff)
	}
	return res, nil
}

// TwoPhase performs the full two-phase pipeline of Section 1.2: phase 1
// picks the minimal-total-cost tree for the database's uniform catalog in
// the given search space, phase 2 parallelizes and executes it.
func TwoPhase(db *wisconsin.Database, space optimizer.Space, kind strategy.Kind, procs int, params costmodel.Params) (*jointree.Node, *engine.RunResult, error) {
	cat := optimizer.Uniform(db.NumRelations(), float64(db.Cardinality()))
	opt, err := optimizer.Optimize(cat, space)
	if err != nil {
		return nil, nil, err
	}
	res, err := Query{DB: db, Tree: opt.Tree, Strategy: kind, Procs: procs, Params: params}.Run()
	if err != nil {
		return nil, nil, err
	}
	return opt.Tree, res, nil
}
