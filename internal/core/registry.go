package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DefaultRuntime is the backend Exec uses when no runtime is selected: the
// discrete-event simulator that reproduces the paper's figures.
const DefaultRuntime = "sim"

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Runtime)
)

// RegisterRuntime adds an execution backend to the by-name registry. It
// panics on an empty name, a nil runtime, or a duplicate registration —
// runtime registration is a program-initialization-time act, like
// database/sql driver registration.
func RegisterRuntime(name string, rt Runtime) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" {
		panic("core: RegisterRuntime with empty name")
	}
	if rt == nil {
		panic("core: RegisterRuntime with nil runtime")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("core: RegisterRuntime called twice for %q", name))
	}
	registry[name] = rt
}

// LookupRuntime resolves a registry name to its runtime. The error for an
// unknown name lists every registered runtime.
func LookupRuntime(name string) (Runtime, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	if rt, ok := registry[name]; ok {
		return rt, nil
	}
	return nil, fmt.Errorf("core: unknown runtime %q (registered: %s)", name, strings.Join(runtimeNamesLocked(), ", "))
}

// RuntimeNames lists every registered runtime name, sorted.
func RuntimeNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return runtimeNamesLocked()
}

func runtimeNamesLocked() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
