// Admission policies: who runs next, and with how much memory.
//
// The Engine used to admit queries with a blind FIFO semaphore: arrival
// order, no knowledge of cost, and spill queries discovering memory
// pressure reactively — everyone over-commits the shared spill.Meter, then
// everyone spills. This file turns admission into a policy seam with two
// implementations:
//
//   - "fifo": the original semaphore. Arrival order, no reservation.
//   - "cost": shortest-job-first by the calibrated cost-model estimate,
//     with aging (waiting discounts a query's effective cost, so a large
//     query cannot be starved by a stream of small ones), plus memory
//     reservation — a spill query's estimated peak residency is reserved
//     from the shared meter at admission. A query whose reservation fits
//     runs unspilled; one that can never fit (estimate ≥ whole budget)
//     claims the whole budget instead, so memory consumers serialize —
//     each spills only its own structural overage, bounded by recursive
//     Grace partitioning (see hashjoin.Grace), instead of all thrashing
//     the meter together — while zero-memory queries keep filling free
//     execution slots.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"multijoin/internal/jointree"
	"multijoin/internal/parallel"
	"multijoin/internal/relation"
	"multijoin/internal/spill"
	"multijoin/internal/xra"
)

// AdmissionPolicies lists the registry names accepted by
// WithAdmissionPolicy.
var AdmissionPolicies = []string{"fifo", "cost"}

// defaultUnitNanos is the per-work-unit wall cost assumed when the engine
// has no calibration: a few tens of nanoseconds per tuple action is the
// right order of magnitude on current hardware, and the cost policy only
// needs estimates on a consistent scale to order the queue.
const defaultUnitNanos = 25.0

// agingFactor is the SJF aging rate: every nanosecond spent waiting
// discounts agingFactor nanoseconds of estimated cost, so a queued query
// overtakes one estimated to be d cheaper after waiting d/agingFactor —
// bounded starvation instead of strict SJF.
const agingFactor = 4.0

// queryEstimate is the admission policy's view of one query, derived from
// the cost model before the query queues.
type queryEstimate struct {
	// units is the abstract work-unit total: the paper's JoinCost summed
	// over the tree plus per-tuple scan work.
	units float64
	// wall is units converted to predicted wall time on this host (the
	// engine's calibration, or defaultUnitNanos without one), assuming the
	// processor pool spreads the work.
	wall time.Duration
	// peakBytes is the predicted peak memory residency of a spill-runtime
	// query: fully buffered join operands plus pooled transport batches in
	// flight. Zero for runtimes that do not meter memory.
	peakBytes int64
}

// admitTicket accompanies one query through admission and release.
type admitTicket struct {
	est   queryEstimate
	meter *spill.Meter // the query's child meter; the cost policy reserves on it
	// reserved is the memory reservation granted at admission (zero under
	// fifo, for non-spill queries, and for grace-mode admissions).
	reserved int64
}

// admissionPolicy decides when a query may start executing. admit blocks
// until the query is admitted, ctx is done, or the policy is closed;
// release frees the query's slot once its workers have exited; kick
// re-evaluates waiters after external state changed (a finished query's
// meter reservation settled); close fails every queued and future admit
// with ErrEngineClosed (engine shutdown must not leave waiters parked
// forever). Implementations must be safe for concurrent use.
type admissionPolicy interface {
	name() string
	admit(ctx context.Context, t *admitTicket) error
	release(t *admitTicket)
	kick()
	close()
}

// newAdmissionPolicy builds the named policy for an engine. slots <= 0
// means unlimited concurrency.
func newAdmissionPolicy(name string, slots int, root *spill.Meter) (admissionPolicy, error) {
	switch name {
	case "", "fifo":
		p := &fifoPolicy{closing: make(chan struct{})}
		if slots > 0 {
			p.sem = make(chan struct{}, slots)
		}
		return p, nil
	case "cost":
		return &costPolicy{slots: slots, root: root, closing: make(chan struct{})}, nil
	default:
		return nil, fmt.Errorf("core: unknown admission policy %q (valid: fifo, cost)", name)
	}
}

// fifoPolicy is the original admission semaphore: strict arrival order, no
// cost knowledge, no reservation.
type fifoPolicy struct {
	sem       chan struct{} // nil means unlimited
	closing   chan struct{} // closed by close(); wakes queued admits
	closeOnce sync.Once
}

func (p *fifoPolicy) name() string { return "fifo" }

func (p *fifoPolicy) admit(ctx context.Context, t *admitTicket) error {
	select {
	case <-p.closing:
		return ErrEngineClosed
	default:
	}
	if p.sem == nil {
		return nil
	}
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-p.closing:
		return ErrEngineClosed
	}
}

func (p *fifoPolicy) release(t *admitTicket) {
	if p.sem != nil {
		<-p.sem
	}
}

func (p *fifoPolicy) kick() {}

func (p *fifoPolicy) close() {
	p.closeOnce.Do(func() { close(p.closing) })
}

// costWaiter is one queued query under the cost policy.
type costWaiter struct {
	t   *admitTicket
	enq time.Time
	ch  chan struct{} // buffered 1; a grant sends exactly once
}

// costPolicy admits shortest-estimated-job-first with aging and reserves
// estimated peak memory from the shared meter at admission.
type costPolicy struct {
	slots int // <= 0 means unlimited
	root  *spill.Meter

	closing   chan struct{} // closed by close(); wakes queued admits
	closeOnce sync.Once

	mu      sync.Mutex
	closed  bool
	running int
	waiters []*costWaiter
}

func (p *costPolicy) name() string { return "cost" }

func (p *costPolicy) admit(ctx context.Context, t *admitTicket) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrEngineClosed
	}
	if len(p.waiters) == 0 && p.startLocked(t) {
		p.mu.Unlock()
		return nil
	}
	w := &costWaiter{t: t, enq: time.Now(), ch: make(chan struct{}, 1)}
	p.waiters = append(p.waiters, w)
	// Re-evaluate immediately: with a memory-blocked spill query at the
	// head of the queue, a zero-memory arrival may be admissible right now
	// rather than at the next release/kick.
	p.grantLocked()
	p.mu.Unlock()
	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		p.abandonWait(w, t)
		return ctx.Err()
	case <-p.closing:
		p.abandonWait(w, t)
		return ErrEngineClosed
	}
}

// abandonWait takes a woken-for-another-reason waiter out of the queue —
// its context fired, or the engine closed, while it was parked.
func (p *costPolicy) abandonWait(w *costWaiter, t *admitTicket) {
	p.mu.Lock()
	removed := p.removeLocked(w)
	if removed {
		// A departing waiter can unblock the queue: if w was the
		// memory-blocked head, grantLocked was holding every other
		// spill waiter behind it (head-of-line on memory), and a
		// smaller one may fit right now.
		p.grantLocked()
	}
	p.mu.Unlock()
	if !removed {
		// Lost the race: a grant landed between the wake-up and the
		// lock. Undo it — free the slot, return the reservation, and
		// re-evaluate the queue: without the kick the freed
		// reservation bytes would strand every memory-blocked waiter
		// until some unrelated release happened by.
		p.abandonGrant(t)
	}
}

func (p *costPolicy) close() {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
		close(p.closing)
	})
}

// abandonGrant undoes an admission whose query will never run — the queued
// context fired in the same instant a grant landed. The slot goes back, the
// ticket's memory reservation is settled, and the queue is re-evaluated so
// waiters blocked on that reservation do not stay stranded.
func (p *costPolicy) abandonGrant(t *admitTicket) {
	p.release(t)
	t.meter.Settle()
	p.kick()
}

// startLocked takes a slot for t and grants (or waives) its memory
// reservation. It reports false when t must wait: no slot, or its
// reservation does not fit yet while other queries are still running (their
// completion will free memory). A query whose estimate exceeds the whole
// budget claims exactly the budget instead — it then runs only when no
// other memory consumer does, with recursive Grace partitioning bounding
// the overage, rather than thrashing every sibling's residency. With
// nothing running, t always starts (waiting could then wait forever), in
// grace mode (unreserved) if its claim does not fit.
func (p *costPolicy) startLocked(t *admitTicket) bool {
	if p.slots > 0 && p.running >= p.slots {
		return false
	}
	if t.est.peakBytes > 0 && t.meter != nil {
		budget := t.meter.Budget()
		claim := t.est.peakBytes
		if claim > budget {
			claim = budget
		}
		switch {
		case p.root.Live()+claim <= budget:
			t.meter.Reserve(claim)
			t.reserved = claim
		case p.running > 0:
			return false
		}
	}
	p.running++
	return true
}

// grantLocked starts as many waiters as slots and memory allow, best
// effective cost first. A memory-blocked best waiter holds its place
// against other *memory consumers* (head-of-line on memory: skipping it
// for a smaller spill query would hand its freed memory away and starve it
// despite aging), but zero-memory waiters may still fill free slots — they
// cannot take the blocked query's memory, only compute that would
// otherwise sit idle.
func (p *costPolicy) grantLocked() {
	memBlocked := false
	for len(p.waiters) > 0 {
		if p.slots > 0 && p.running >= p.slots {
			return
		}
		now := time.Now()
		eff := func(w *costWaiter) float64 {
			return float64(w.t.est.wall) - agingFactor*float64(now.Sub(w.enq))
		}
		best := -1
		for i, w := range p.waiters {
			if memBlocked && w.t.est.peakBytes > 0 {
				continue
			}
			if best < 0 || eff(w) < eff(p.waiters[best]) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		w := p.waiters[best]
		if !p.startLocked(w.t) {
			// Slots were checked above and zero-memory waiters always
			// start, so this is a memory block on a spill waiter.
			memBlocked = true
			continue
		}
		p.waiters = append(p.waiters[:best], p.waiters[best+1:]...)
		w.ch <- struct{}{}
	}
}

// removeLocked takes w out of the wait queue, reporting whether it was
// still queued.
func (p *costPolicy) removeLocked(w *costWaiter) bool {
	for i, q := range p.waiters {
		if q == w {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			return true
		}
	}
	return false
}

func (p *costPolicy) release(t *admitTicket) {
	p.mu.Lock()
	p.running--
	p.grantLocked()
	p.mu.Unlock()
}

// kick re-evaluates waiters; the engine calls it when a query's meter
// reservation settles (memory freed without a slot changing hands).
func (p *costPolicy) kick() {
	p.mu.Lock()
	p.grantLocked()
	p.mu.Unlock()
}

// estimateQuery derives the admission estimate for one planned query: work
// units from the paper's cost function over the tree's span cardinalities,
// wall time via the engine's calibration, and — for the spill runtime,
// the only memory-metered backend — peak residency from fully buffered
// join operands plus the pooled transport batches the plan's streams keep
// in flight.
func (e *Engine) estimateQuery(q Query, o Options, plan *xra.Plan) queryEstimate {
	spanCard := q.DB.SpanCard
	units := jointree.SubtreeWorkSpan(q.Tree, spanCard)
	var scanTuples float64
	for _, leaf := range jointree.Leaves(q.Tree) {
		scanTuples += float64(q.DB.Card(leaf.Leaf))
	}
	units += q.Params.ScanUnits * scanTuples

	unitNanos := defaultUnitNanos
	if !e.cal.IsZero() {
		unitNanos = e.cal.UnitNanos
	}
	procs := e.procs.Size()
	if procs < 1 {
		procs = 1
	}
	est := queryEstimate{
		units: units,
		wall:  time.Duration(units * unitNanos / float64(procs)),
	}
	if o.Runtime == "spill" {
		var operands int64
		for _, j := range jointree.Joins(q.Tree) {
			n1 := spanCard(j.Build.Lo, j.Build.Hi)
			n2 := spanCard(j.Probe.Lo, j.Probe.Hi)
			operands += int64(n1+n2) * relation.TupleWireBytes
		}
		depth := o.ChannelDepth
		if depth < 1 {
			depth = parallel.DefaultChannelDepth
		}
		bt := o.BatchTuples
		if bt < 1 {
			bt = parallel.DefaultSpillBatchTuples
		}
		pooled := int64(plan.NumStreams()) * int64(depth+1) * int64(bt) * relation.TupleWireBytes
		est.peakBytes = operands + pooled
	}
	return est
}
