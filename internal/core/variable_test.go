package core

import (
	"testing"

	"multijoin/internal/costmodel"
	"multijoin/internal/jointree"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
	"multijoin/internal/xra"
)

// variableDB builds the non-regular halving chain used by the cost-function
// experiments.
func variableDB(t *testing.T, cards []int) *wisconsin.Database {
	t.Helper()
	db, err := wisconsin.Chain(wisconsin.Config{Cards: cards, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestVariableChainAllStrategiesMatchReference: correctness holds on
// non-regular workloads too, for every strategy and shape.
func TestVariableChainAllStrategiesMatchReference(t *testing.T) {
	db := variableDB(t, []int{400, 200, 100, 50, 25, 12})
	for _, shape := range jointree.Shapes {
		tree, err := jointree.BuildShape(shape, db.NumRelations())
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range strategy.Kinds {
			res, err := Verify(Query{
				DB: db, Tree: tree, Strategy: kind, Procs: 10,
				Params: costmodel.Default(),
			})
			if err != nil {
				t.Errorf("%v/%v: %v", shape, kind, err)
				continue
			}
			if res.Stats.ResultTuples != 400 {
				t.Errorf("%v/%v: %d result tuples, want 400 (lower-span card)",
					shape, kind, res.Stats.ResultTuples)
			}
		}
	}
}

// TestVariableAllocationFollowsWork: on the halving chain the cost function
// must give the big joins (near the chain head) more processors than the
// tiny ones.
func TestVariableAllocationFollowsWork(t *testing.T) {
	db := variableDB(t, []int{3200, 1600, 800, 400, 200, 100, 50, 25})
	tree, err := jointree.BuildShape(jointree.RightLinear, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Query{DB: db, Tree: tree, Strategy: strategy.FP, Procs: 24,
		Params: costmodel.Default()}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	// The right-linear tree's root join touches the largest relations.
	var rootProcs, bottomProcs int
	for _, o := range plan.Ops {
		if o.Kind != xra.OpPipeJoin {
			continue
		}
		// Post-order ids: join 1 is the deepest (smallest), join 7 the root.
		switch o.JoinID {
		case 7:
			rootProcs = len(o.Procs)
		case 1:
			bottomProcs = len(o.Procs)
		}
	}
	if rootProcs <= bottomProcs {
		t.Errorf("root join got %d procs, bottom %d: allocation ignores work",
			rootProcs, bottomProcs)
	}
}

// TestEqualWorkAblation: disabling the cost function must not change
// results, but must change the allocation (and typically the response time)
// for cost-function strategies, while SP is exactly unaffected.
func TestEqualWorkAblation(t *testing.T) {
	db := variableDB(t, []int{1600, 800, 400, 200, 100, 50})
	tree, err := jointree.BuildShape(jointree.RightBushy, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(db, tree)
	for _, kind := range strategy.Kinds {
		base, err := Query{DB: db, Tree: tree, Strategy: kind, Procs: 12,
			Params: costmodel.Default()}.Run()
		if err != nil {
			t.Fatal(err)
		}
		equal, err := Query{DB: db, Tree: tree, Strategy: kind, Procs: 12,
			Params: costmodel.Default(), EqualWork: true}.Run()
		if err != nil {
			t.Fatal(err)
		}
		if equal.Result.Card() != want.Card() {
			t.Errorf("%v equal-work result wrong", kind)
		}
		if kind == strategy.SP && base.ResponseTime != equal.ResponseTime {
			t.Errorf("SP must be unaffected by the cost function: %v vs %v",
				base.ResponseTime, equal.ResponseTime)
		}
		if kind == strategy.FP && equal.ResponseTime <= base.ResponseTime {
			t.Errorf("FP without cost function (%v) should be slower than with (%v)",
				equal.ResponseTime, base.ResponseTime)
		}
	}
}
