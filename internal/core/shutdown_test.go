package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"multijoin/internal/jointree"
	"multijoin/internal/strategy"
)

// closeWithin runs eng.Close in a goroutine and fails the test if it does
// not return within d — the pre-fix Engine.Close parked forever on
// inflight.Wait when a streaming cursor's consumer had walked away.
func closeWithin(t *testing.T, eng *Engine, d time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() { eng.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("Engine.Close hung on a streaming cursor nobody reads")
	}
}

// TestEngineCloseWhileRowsStreaming is the regression test for server
// shutdown's hottest path: Engine.Close while Rows cursors are still
// streaming and their consumers have stopped reading. Close must force the
// cursors down — not hang on them, not strand their pooled batches or the
// shared meter's reservations — and the abandoned cursors must report
// ErrEngineClosed, never a silently truncated clean stream.
func TestEngineCloseWhileRowsStreaming(t *testing.T) {
	before := runtime.NumGoroutine()
	fdBefore := openFDs()
	q := cancelQuery(t)
	eng, err := Open(q.DB,
		WithMaxConcurrent(8),
		WithEngineMemoryBudget(64<<10), // force spilling: temp files in flight at Close
		WithAdmissionPolicy("cost"))
	if err != nil {
		t.Fatal(err)
	}

	// Four queries, each read a little and then abandoned mid-stream: the
	// runtimes are parked in Push against full cursor channels. One spill
	// query only — its whole-budget reservation serializes further memory
	// consumers behind it by design, and nothing here ever finishes.
	var cursors []*Rows
	for i := 0; i < 4; i++ {
		rt := "parallel"
		if i == 0 {
			rt = "spill"
		}
		rows, err := eng.Query(context.Background(), q, WithRuntime(rt))
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("query %d produced no rows: %v", i, rows.Err())
		}
		cursors = append(cursors, rows)
	}

	closeWithin(t, eng, 30*time.Second)

	for i, rows := range cursors {
		if err := rows.Err(); !errors.Is(err, ErrEngineClosed) {
			t.Errorf("cursor %d force-closed by the engine reports Err = %v, want ErrEngineClosed", i, err)
		}
		if rows.Next() {
			t.Errorf("cursor %d still yields tuples after engine close", i)
		}
	}
	if live := eng.MemoryLive(); live != 0 {
		t.Errorf("engine meter live = %d bytes after Close, want 0 (stranded reservations/batches)", live)
	}
	if n := settleGoroutines(before, 4, 10*time.Second); n > before+4 {
		t.Errorf("goroutines: %d before, %d after close (leak)", before, n)
	}
	if fdBefore >= 0 {
		limit := time.Now().Add(10 * time.Second)
		n := openFDs()
		for n > fdBefore && time.Now().Before(limit) {
			time.Sleep(10 * time.Millisecond)
			n = openFDs()
		}
		if n > fdBefore {
			t.Errorf("fds: %d before, %d after close (leaked spill temp files)", fdBefore, n)
		}
	}
}

// TestEngineCloseSettlesUndrainedFinishedCursor covers the quieter strand:
// a query whose execution completed but whose cursor nobody ever read or
// closed. Its last pooled batch sits in the cursor channel and its
// admission-time reservation is still charged to the shared meter;
// Engine.Close must find the cursor and settle both.
func TestEngineCloseSettlesUndrainedFinishedCursor(t *testing.T) {
	db := sessionDB(t, 3, 64)
	eng, err := Open(db, WithAdmissionPolicy("cost"))
	if err != nil {
		t.Fatal(err)
	}
	q := sessionQuery(t, db, jointree.WideBushy, strategy.FP)
	want := len(Reference(db, q.Tree).Tuples)
	rows, err := eng.Query(context.Background(), q, WithRuntime("spill"))
	if err != nil {
		t.Fatal(err)
	}
	// Consume every tuple but never take the final Next that would notice
	// the stream's end (and settle the cursor): execution completes, yet the
	// cursor still holds its last pooled batch and its reservation.
	for i := 0; i < want; i++ {
		if !rows.Next() {
			t.Fatalf("stream ended after %d tuples, want %d: %v", i, want, rows.Err())
		}
	}
	select {
	case <-rows.done: // execution finished; cursor abandoned unsettled
	case <-time.After(30 * time.Second):
		t.Fatal("query did not finish")
	}
	if live := eng.MemoryLive(); live == 0 {
		t.Skip("no live bytes to strand on this host; nothing to regress")
	}
	closeWithin(t, eng, 30*time.Second)
	if live := eng.MemoryLive(); live != 0 {
		t.Errorf("engine meter live = %d bytes after Close, want 0", live)
	}
	if err := rows.Err(); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("undrained cursor reports Err = %v, want ErrEngineClosed", err)
	}
}

// TestEngineShutdownGracefulDrain: Shutdown with headroom lets active
// consumers finish their streams untruncated — the serving front end's
// SIGTERM path — and still ends with a settled meter.
func TestEngineShutdownGracefulDrain(t *testing.T) {
	db := sessionDB(t, 4, 400)
	eng, err := Open(db, WithMaxConcurrent(4))
	if err != nil {
		t.Fatal(err)
	}
	q := sessionQuery(t, db, jointree.WideBushy, strategy.FP)

	const consumers = 4
	counts := make([]int, consumers)
	errs := make([]error, consumers)
	var wg sync.WaitGroup
	started := make(chan struct{}, consumers)
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows, err := eng.Query(context.Background(), q, WithRuntime("parallel"))
			if err != nil {
				errs[i] = err
				started <- struct{}{}
				return
			}
			first := true
			for rows.Next() {
				if first {
					started <- struct{}{}
					first = false
				}
				counts[i]++
				time.Sleep(100 * time.Microsecond) // slow consumer, still draining
			}
			errs[i] = rows.Err()
			rows.Close()
		}(i)
	}
	for i := 0; i < consumers; i++ {
		<-started
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := eng.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()

	want := len(Reference(db, q.Tree).Tuples)
	for i := 0; i < consumers; i++ {
		if errs[i] != nil {
			t.Errorf("consumer %d: %v", i, errs[i])
		}
		if counts[i] != want {
			t.Errorf("consumer %d drained %d tuples, want %d (graceful shutdown truncated the stream)", i, counts[i], want)
		}
	}
	if live := eng.MemoryLive(); live != 0 {
		t.Errorf("engine meter live = %d after graceful shutdown, want 0", live)
	}
}

// TestEngineCloseFailsQueuedAdmits: a query parked in the admission queue
// when the engine closes must fail promptly with ErrEngineClosed under
// both policies — pre-fix it stayed parked until the running query's slot
// freed, which during shutdown could be never.
func TestEngineCloseFailsQueuedAdmits(t *testing.T) {
	for _, policy := range AdmissionPolicies {
		t.Run(policy, func(t *testing.T) {
			q := cancelQuery(t)
			eng, err := Open(q.DB, WithMaxConcurrent(1), WithAdmissionPolicy(policy))
			if err != nil {
				t.Fatal(err)
			}
			// A holds the single slot, streaming, abandoned.
			a, err := eng.Query(context.Background(), q, WithRuntime("parallel"))
			if err != nil {
				t.Fatal(err)
			}
			if !a.Next() {
				t.Fatalf("A produced no rows: %v", a.Err())
			}
			// B queues behind it.
			errB := make(chan error, 1)
			go func() {
				rows, err := eng.Query(context.Background(), q, WithRuntime("parallel"))
				if rows != nil {
					rows.Close()
				}
				errB <- err
			}()
			time.Sleep(50 * time.Millisecond) // let B reach the admission queue

			closeWithin(t, eng, 30*time.Second)
			select {
			case err := <-errB:
				if !errors.Is(err, ErrEngineClosed) {
					t.Errorf("queued query returned %v, want ErrEngineClosed", err)
				}
			case <-time.After(10 * time.Second):
				t.Error("queued query still parked after engine close")
			}
			if live := eng.MemoryLive(); live != 0 {
				t.Errorf("engine meter live = %d after close, want 0", live)
			}
		})
	}
}
