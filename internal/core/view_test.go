package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"multijoin/internal/ivm"
	"multijoin/internal/jointree"
	"multijoin/internal/relation"
	"multijoin/internal/strategy"
)

// applyAndShadow applies a small churn delta through the view and mirrors
// it on a shadow copy of the base relation so the reference recompute
// stays in sync.
func applyAndShadow(t *testing.T, v *View, shadow *relation.Relation, rel int) {
	t.Helper()
	ins := shadow.Tuples[0]
	ins.Check = ins.Check*31 + 7
	del := shadow.Tuples[len(shadow.Tuples)-1]
	if _, err := v.Apply(context.Background(), ivm.Delta{
		Rel:    rel,
		Insert: []relation.Tuple{ins},
		Delete: []relation.Tuple{del},
	}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	shadow.Tuples = shadow.Tuples[:len(shadow.Tuples)-1]
	shadow.Append(ins)
}

// TestEngineCreateView exercises the session-level lifecycle: create,
// verify against recompute, apply deltas, verify again, close, meter zero.
func TestEngineCreateView(t *testing.T) {
	for _, policy := range AdmissionPolicies {
		t.Run(policy, func(t *testing.T) {
			db := sessionDB(t, 4, 400)
			eng, err := Open(db, WithAdmissionPolicy(policy))
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			q := sessionQuery(t, db, jointree.LeftLinear, strategy.FP)

			v, err := eng.CreateView(context.Background(), q)
			if err != nil {
				t.Fatalf("CreateView: %v", err)
			}
			shadow := relation.NewWithCap("shadow", relation.TupleWireBytes, db.Card(1))
			shadow.Append(db.Relation(1).Tuples...)
			rel := func(leaf int) *relation.Relation {
				if leaf == 1 {
					return shadow
				}
				return db.Relation(leaf)
			}
			check := func(label string) {
				got, err := v.Rows(context.Background())
				if err != nil {
					t.Fatalf("%s: Rows: %v", label, err)
				}
				want := jointree.Reference(q.Tree, rel)
				if diff := relation.DiffMultiset(got, want); diff != "" {
					t.Fatalf("%s: view diverged: %s", label, diff)
				}
			}
			check("population")
			if eng.MemoryLive() == 0 {
				t.Error("resident view charged nothing to the engine budget")
			}
			for i := 0; i < 3; i++ {
				applyAndShadow(t, v, shadow, 1)
				check("after delta")
			}
			v.Close()
			if live := eng.MemoryLive(); live != 0 {
				t.Errorf("engine meter live = %d after View.Close, want 0", live)
			}
			// Closing again, and engine close after, must both be no-ops.
			v.Close()
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEngineCreateViewAfterClose pins the closed-engine path.
func TestEngineCreateViewAfterClose(t *testing.T) {
	db := sessionDB(t, 3, 64)
	eng, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	if _, err := eng.CreateView(context.Background(), sessionQuery(t, db, jointree.LeftLinear, strategy.FP)); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("CreateView on closed engine returned %v, want ErrEngineClosed", err)
	}
}

// TestEngineShutdownWithViewMidApply is the leak regression the issue asks
// for: Engine.Shutdown while a view has an Apply wedged (its change-stream
// subscriber stopped consuming) must force the view down, fail the Apply
// with ivm.ErrViewClosed, settle the shared meter to zero, and leak no
// goroutines.
func TestEngineShutdownWithViewMidApply(t *testing.T) {
	before := runtime.NumGoroutine()
	db := sessionDB(t, 4, 400)
	eng, err := Open(db, WithAdmissionPolicy("cost"))
	if err != nil {
		t.Fatal(err)
	}
	q := sessionQuery(t, db, jointree.LeftLinear, strategy.FP)
	v, err := eng.CreateView(context.Background(), q)
	if err != nil {
		t.Fatalf("CreateView: %v", err)
	}
	stream := v.Changes() // never consumed: Apply wedges once its buffer fills
	defer stream.Close()
	applyErr := make(chan error, 1)
	go func() {
		shadow := relation.NewWithCap("shadow", relation.TupleWireBytes, db.Card(0))
		shadow.Append(db.Relation(0).Tuples...)
		for {
			ins := shadow.Tuples[0]
			ins.Check++
			shadow.Append(ins)
			if _, err := v.Apply(context.Background(), ivm.Delta{Rel: 0, Insert: []relation.Tuple{ins}}); err != nil {
				applyErr <- err
				return
			}
		}
	}()
	time.Sleep(50 * time.Millisecond) // let Apply wedge behind the subscriber

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	go func() { eng.Shutdown(ctx); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown hung on a view mid-apply")
	}
	select {
	case err := <-applyErr:
		if !errors.Is(err, ivm.ErrViewClosed) {
			t.Errorf("wedged Apply returned %v, want ivm.ErrViewClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Error("Apply still blocked after engine shutdown")
	}
	if live := eng.MemoryLive(); live != 0 {
		t.Errorf("engine meter live = %d after shutdown with open view, want 0", live)
	}
	if n := settleGoroutines(before, 4, 10*time.Second); n > before+4 {
		t.Errorf("goroutines: %d before, %d after shutdown (leak)", before, n)
	}
}

// TestEngineViewsAndQueriesShareBudget runs a query while a view is
// resident: both charge the same root meter, and closing both settles it.
func TestEngineViewsAndQueriesShareBudget(t *testing.T) {
	db := sessionDB(t, 4, 400)
	eng, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q := sessionQuery(t, db, jointree.LeftLinear, strategy.FP)
	v, err := eng.CreateView(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	viewCharge := eng.MemoryLive()
	if viewCharge == 0 {
		t.Fatal("view charged nothing")
	}
	res, err := eng.Exec(context.Background(), q, WithRuntime("spill"), WithVerify())
	if err != nil {
		t.Fatalf("Exec alongside view: %v", err)
	}
	if res.Result.Card() != v.ResultCard() {
		t.Errorf("query result card %d != view card %d", res.Result.Card(), v.ResultCard())
	}
	if live := eng.MemoryLive(); live != viewCharge {
		t.Errorf("after query settled, meter live = %d, want the view's %d", live, viewCharge)
	}
	v.Close()
	if live := eng.MemoryLive(); live != 0 {
		t.Errorf("meter live = %d after closing view, want 0", live)
	}
}
