package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"multijoin/internal/jointree"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
)

// cancelQuery is a workload large enough (~tens of milliseconds per run on
// both runtimes) that a cancel a few milliseconds in is reliably mid-query.
func cancelQuery(t testing.TB) Query {
	t.Helper()
	db, err := wisconsin.Chain(wisconsin.Config{Relations: 10, Cardinality: 8000, Seed: 1995})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := jointree.BuildShape(jointree.WideBushy, 10)
	if err != nil {
		t.Fatal(err)
	}
	return Query{DB: db, Tree: tree, Strategy: strategy.FP, Procs: 16}
}

// builtinRuntimes are the built-in backends under test, named explicitly so
// that runtimes leaked into the global registry by other tests (which may
// complete instantly and legitimately beat a cancel) cannot affect the
// cancellation assertions. The spill runtime runs here with its default
// budget (no spilling); the spill-specific cancellation audits with a
// forcing budget live in spill_test.go.
var builtinRuntimes = []string{"sim", "parallel", "spill"}

// settleGoroutines polls until the goroutine count drops back to at most
// base+slack or the deadline passes, and returns the final count. The
// settle loop absorbs runtime-internal goroutines (GC, timers) that come
// and go independently of the code under test.
func settleGoroutines(base, slack int, deadline time.Duration) int {
	limit := time.Now().Add(deadline)
	n := runtime.NumGoroutine()
	for n > base+slack && time.Now().Before(limit) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestExecCancelMidQuery cancels a context mid-execution on both built-in
// runtimes and asserts a prompt context.Canceled return and no leaked
// goroutines.
func TestExecCancelMidQuery(t *testing.T) {
	q := cancelQuery(t)
	for _, rt := range builtinRuntimes {
		t.Run(rt, func(t *testing.T) {
			before := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			errc := make(chan error, 1)
			start := time.Now()
			go func() {
				_, err := Exec(ctx, q, WithRuntime(rt))
				errc <- err
			}()
			time.Sleep(5 * time.Millisecond)
			cancel()
			select {
			case err := <-errc:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("Exec after cancel returned %v, want context.Canceled", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("Exec did not return within 10s of cancellation (started %v ago)", time.Since(start))
			}
			after := settleGoroutines(before, 2, 5*time.Second)
			if after > before+2 {
				t.Errorf("goroutine leak after cancel: %d before, %d after", before, after)
			}
		})
	}
}

// TestExecCancelBeforeStart passes an already-cancelled context: both
// runtimes must refuse to execute and return the context error without
// launching anything.
func TestExecCancelBeforeStart(t *testing.T) {
	q := cancelQuery(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, rt := range builtinRuntimes {
		t.Run(rt, func(t *testing.T) {
			before := runtime.NumGoroutine()
			start := time.Now()
			_, err := Exec(ctx, q, WithRuntime(rt))
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Exec with cancelled context returned %v, want context.Canceled", err)
			}
			if elapsed := time.Since(start); elapsed > time.Second {
				t.Errorf("pre-cancelled Exec took %v, want immediate return", elapsed)
			}
			after := settleGoroutines(before, 2, 5*time.Second)
			if after > before+2 {
				t.Errorf("goroutine leak: %d before, %d after", before, after)
			}
		})
	}
}

// TestExecDeadline exercises the context.DeadlineExceeded path on both
// runtimes.
func TestExecDeadline(t *testing.T) {
	q := cancelQuery(t)
	for _, rt := range builtinRuntimes {
		t.Run(rt, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
			defer cancel()
			_, err := Exec(ctx, q, WithRuntime(rt))
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("Exec past deadline returned %v, want context.DeadlineExceeded", err)
			}
		})
	}
}

// TestExecCancelledRepeatedly stresses cancellation teardown under the race
// detector: many back-to-back cancelled runs must neither deadlock nor
// accumulate goroutines.
func TestExecCancelledRepeatedly(t *testing.T) {
	if testing.Short() {
		t.Skip("cancellation stress skipped in -short mode")
	}
	q := cancelQuery(t)
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		for _, rt := range builtinRuntimes {
			ctx, cancel := context.WithCancel(context.Background())
			errc := make(chan error, 1)
			go func() {
				_, err := Exec(ctx, q, WithRuntime(rt))
				errc <- err
			}()
			// Vary the cancellation point from "immediately" upward to hit
			// different teardown phases (setup, scan, join, drain).
			time.Sleep(time.Duration(i) * time.Millisecond)
			cancel()
			select {
			case err := <-errc:
				// nil is possible when the run beats a late cancel.
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Fatalf("round %d %s: %v", i, rt, err)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("round %d %s: Exec hung after cancel", i, rt)
			}
		}
	}
	after := settleGoroutines(before, 4, 5*time.Second)
	if after > before+4 {
		t.Errorf("goroutine accumulation across cancelled runs: %d before, %d after", before, after)
	}
}
