package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"multijoin/internal/relation"
)

// errCancelled marks a run torn down by a CANCEL frame (the remote side's
// context was cancelled).
var errCancelled = errors.New("dist: cancelled by peer")

// plane is one node's data plane: every data connection it serves, the
// per-stream ingress queues and egress credit windows, and the pooled
// batch recycling shared with the node's partial run.
//
// Flow control: each egress stream starts with window credits; sending one
// DATA frame costs one credit, and the receiving plane grants a credit
// back (CREDIT frame on the same connection, reverse direction) only after
// the batch has been handed to the consuming process's channel. The
// receiver dispatches frames off the connection into per-stream queues of
// capacity window — the protocol guarantees at most window undelivered
// batches per stream, so dispatch never blocks on a slow stream and one
// stalled consumer cannot head-of-line-block the other streams sharing the
// connection.
type plane struct {
	window int
	pool   *relation.BatchPool
	ctx    context.Context
	fail   func(error)
	bytes  atomic.Int64 // frame bytes written on this node's data conns
	spawns atomic.Int64 // transport goroutines launched (readers + movers)

	in  map[uint32]*inStream
	out map[uint32]*outStream

	mu      sync.Mutex
	conns   []*Conn
	closing bool

	// readers tracks per-connection serving goroutines (unblocked by
	// closing their connection); movers tracks ingress pumps and egress
	// senders (unblocked by ctx cancellation and stream completion).
	readers sync.WaitGroup
	movers  sync.WaitGroup
}

// inStream is the receive side of one node-crossing stream.
type inStream struct {
	q    chan *relation.Batch
	src  atomic.Pointer[Conn] // the connection delivering this stream
	once sync.Once            // closes q on EOS (or teardown)
}

// outStream is the send side of one node-crossing stream.
type outStream struct {
	credits chan struct{}
	conn    *Conn
}

func newPlane(ctx context.Context, window int, pool *relation.BatchPool, fail func(error)) *plane {
	return &plane{
		window: window,
		pool:   pool,
		ctx:    ctx,
		fail:   fail,
		in:     make(map[uint32]*inStream),
		out:    make(map[uint32]*outStream),
	}
}

// expectIngress declares that stream sid arrives from a remote node; its
// queue exists before any connection is served, so early frames always
// have a home.
func (p *plane) expectIngress(sid uint32) {
	p.in[sid] = &inStream{q: make(chan *relation.Batch, p.window)}
}

// addEgress declares that stream sid leaves this node over c, with a full
// credit window.
func (p *plane) addEgress(sid uint32, c *Conn) {
	credits := make(chan struct{}, p.window)
	for i := 0; i < p.window; i++ {
		credits <- struct{}{}
	}
	p.out[sid] = &outStream{credits: credits, conn: c}
}

// track registers a data connection for teardown and starts its serving
// goroutine. The connection's writes count toward bytes-on-wire.
func (p *plane) track(c *Conn) {
	c.bytes = &p.bytes
	p.mu.Lock()
	p.conns = append(p.conns, c)
	closing := p.closing
	p.mu.Unlock()
	if closing {
		c.Close()
		return
	}
	p.readers.Add(1)
	p.spawns.Add(1)
	go p.serve(c)
}

// goroutines returns how many transport goroutines this plane launched —
// the node's contribution to the unified Goroutines counter.
func (p *plane) goroutines() int { return int(p.spawns.Load()) }

// serve is the single reading goroutine of one data connection: DATA
// frames are decoded into pooled batches and dispatched to their stream's
// queue, EOS closes the queue, CREDIT refills the egress window. A read
// error during normal operation fails the run (a peer died); during
// teardown it just ends the goroutine.
func (p *plane) serve(c *Conn) {
	defer p.readers.Done()
	for {
		kind, payload, err := c.ReadFrame()
		if err != nil {
			if p.isClosing() || p.ctx.Err() != nil {
				return
			}
			p.fail(fmt.Errorf("dist: data connection lost: %w", err))
			return
		}
		switch kind {
		case ftData:
			sid, block, err := parseDataFrame(payload)
			if err != nil {
				p.fail(err)
				return
			}
			in := p.in[sid]
			if in == nil {
				p.fail(fmt.Errorf("dist: data frame for unknown stream %d", sid))
				return
			}
			in.src.Store(c)
			n, size, err := relation.BlockHeader(block)
			if err != nil || size != len(block) {
				p.fail(fmt.Errorf("dist: bad block on stream %d: %v", sid, err))
				return
			}
			b := p.pool.Get()
			b.AppendColumns(block[relation.BlockHeaderBytes:size], n, 0, n)
			select {
			case in.q <- b: // capacity window; the credit protocol keeps this from blocking
			case <-p.ctx.Done():
				return
			}
		case ftEOS:
			sid, err := parseStreamID(payload)
			if err != nil {
				p.fail(err)
				return
			}
			if in := p.in[sid]; in != nil {
				in.once.Do(func() { close(in.q) })
			}
		case ftCredit:
			sid, n, err := parseCreditFrame(payload)
			if err != nil {
				p.fail(err)
				return
			}
			out := p.out[sid]
			if out == nil {
				p.fail(fmt.Errorf("dist: credit for unknown stream %d", sid))
				return
			}
			for i := uint32(0); i < n; i++ {
				select {
				case out.credits <- struct{}{}:
				case <-p.ctx.Done():
					return
				}
			}
		default:
			p.fail(fmt.Errorf("dist: unexpected frame 0x%02x on data connection", kind))
			return
		}
	}
}

// ingress is the run's Partial.Ingress hook: it pumps stream sid's queue
// into the consuming process's channel, granting one credit per delivered
// batch, and closes the channel when the queue ends (EOS received).
func (p *plane) ingress(sid int, ch chan *relation.Batch) {
	in := p.in[uint32(sid)]
	if in == nil {
		p.fail(fmt.Errorf("dist: run opened unexpected ingress stream %d", sid))
		close(ch)
		return
	}
	p.movers.Add(1)
	p.spawns.Add(1)
	go func() {
		defer p.movers.Done()
		for {
			select {
			case b, ok := <-in.q:
				if !ok {
					close(ch)
					return
				}
				select {
				case ch <- b:
				case <-p.ctx.Done():
					return
				}
				if c := in.src.Load(); c != nil {
					if err := c.WriteCredit(uint32(sid), 1); err != nil {
						if !p.isClosing() && p.ctx.Err() == nil {
							p.fail(fmt.Errorf("dist: credit grant: %w", err))
						}
						return
					}
				}
			case <-p.ctx.Done():
				return
			}
		}
	}()
}

// egress is the run's Partial.Egress hook: it drains the producing
// process's channel, spending one credit per batch, writes each batch as a
// DATA frame, recycles it, and ends the stream with an EOS frame when the
// producer closes the channel.
func (p *plane) egress(sid int, ch chan *relation.Batch) {
	out := p.out[uint32(sid)]
	if out == nil {
		p.fail(fmt.Errorf("dist: run opened unexpected egress stream %d", sid))
		return
	}
	p.movers.Add(1)
	p.spawns.Add(1)
	go func() {
		defer p.movers.Done()
		for {
			select {
			case b, ok := <-ch:
				if !ok {
					if err := out.conn.WriteEOS(uint32(sid)); err != nil && !p.isClosing() && p.ctx.Err() == nil {
						p.fail(fmt.Errorf("dist: eos: %w", err))
					}
					return
				}
				select {
				case <-out.credits:
				case <-p.ctx.Done():
					return
				}
				err := out.conn.WriteBatch(uint32(sid), b)
				p.pool.Put(b)
				if err != nil {
					if !p.isClosing() && p.ctx.Err() == nil {
						p.fail(fmt.Errorf("dist: send: %w", err))
					}
					return
				}
			case <-p.ctx.Done():
				return
			}
		}
	}()
}

func (p *plane) isClosing() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closing
}

// quiesce ends a *successful* run's data plane gracefully: wait for the
// movers (every EOS written, every delivered batch handed over), then mark
// the plane closing so the EOFs of peers tearing down their ends are
// treated as quiet closes, not failures. The connections stay open — a
// peer may not have drained our frames yet; they are closed in teardown
// once the coordinator declares the whole run over.
func (p *plane) quiesce() {
	p.movers.Wait()
	p.mu.Lock()
	p.closing = true
	p.mu.Unlock()
}

// teardown closes every data connection and joins all plane goroutines.
// Closing the connections is what unblocks readers stuck in ReadFrame and
// movers stuck in a TCP write on error paths (where quiesce was skipped
// and the movers unwind via ctx or write errors instead).
func (p *plane) teardown() {
	p.mu.Lock()
	p.closing = true
	conns := p.conns
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	p.readers.Wait()
	p.movers.Wait()
}
