package dist

import (
	"encoding/binary"
	"net"
	"time"
)

// Exported codec surface for sibling packages that speak the dist frame
// protocol. internal/serve (the query-serving TCP front end) reuses this
// connection codec as its wire format: the same length-prefixed frames,
// the same columnar DATA block encoding (WriteBatch), and the same
// EOS/CREDIT flow control — it only adds its own control frame kinds in a
// disjoint range (0x20+).

// Frame kinds shared with protocol embedders. FrameData, FrameEOS and
// FrameCredit are the kinds WriteBatch, WriteEOS and WriteCredit stamp;
// FrameHello opens every connection.
const (
	FrameHello  = ftHello
	FrameData   = ftData
	FrameEOS    = ftEOS
	FrameCredit = ftCredit
)

// NewConn wraps an accepted net.Conn in the framed codec.
func NewConn(nc net.Conn) *Conn { return newConn(nc) }

// Dial opens a framed connection to addr.
func Dial(addr string, timeout time.Duration) (*Conn, error) { return dialConn(addr, timeout) }

// WriteMsg writes one gob-encoded control frame of the given kind.
func (c *Conn) WriteMsg(kind byte, v any) error { return c.writeMsg(kind, v) }

// EncodeMsg gob-encodes a control message payload.
func EncodeMsg(v any) ([]byte, error) { return encodeMsg(v) }

// DecodeMsg gob-decodes a control frame payload into v.
func DecodeMsg(payload []byte, v any) error { return decodeMsg(payload, v) }

// ParseDataFrame splits a DATA payload into its stream id and block bytes.
func ParseDataFrame(payload []byte) (uint32, []byte, error) { return parseDataFrame(payload) }

// ParseStreamID reads the stream id of an EOS payload.
func ParseStreamID(payload []byte) (uint32, error) { return parseStreamID(payload) }

// ParseCreditFrame splits a CREDIT payload into stream id and grant count.
func ParseCreditFrame(payload []byte) (uint32, uint32, error) { return parseCreditFrame(payload) }

// WriteStreamID writes one frame whose payload is a single stream id —
// the shape of EOS and of serve's CANCEL.
func (c *Conn) WriteStreamID(kind byte, sid uint32) error {
	var p [4]byte
	binary.LittleEndian.PutUint32(p[:], sid)
	return c.writeFrame(kind, p[:])
}
