package dist

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"sync/atomic"
)

// Environment contract between a coordinator and the worker processes it
// spawns. envWorkerBin optionally points at a built cmd/mjworker binary;
// without it the coordinator re-executes its own binary, which works for
// any process that called InitWorker first thing in main (or TestMain).
const (
	envWorker    = "MJ_DIST_WORKER"
	envConnect   = "MJ_DIST_CONNECT"
	envNode      = "MJ_DIST_NODE"
	envRun       = "MJ_DIST_RUN"
	envWorkerBin = "MJ_DIST_WORKER_BIN"
	// envBind/envAdvertise set the spawned worker's data-listener bind
	// address and advertised peer address (ResolveAdvertise semantics);
	// unset means the historical loopback defaults. They pass through
	// os.Environ, so exporting them on the coordinator host configures
	// every locally spawned worker.
	envBind      = "MJ_DIST_BIND"
	envAdvertise = "MJ_DIST_ADVERTISE"
)

// selfExec records that this process passed through InitWorker, so
// re-executing os.Executable() with the worker environment yields a
// functioning worker.
var selfExec atomic.Bool

// workerSpawnHook, when non-nil, observes every spawned worker process —
// test instrumentation for the crash-recovery audits (set via
// export_test.go, never in production paths).
var workerSpawnHook func(node, pid int)

// InitWorker is the dist worker entry hook. Call it first thing in main
// (or TestMain): in an ordinary process it only marks the binary as
// re-executable and returns; in a process spawned by a coordinator (worker
// environment set) it runs the worker protocol to completion and exits,
// never returning. Without this hook (or MJ_DIST_WORKER_BIN pointing at a
// built cmd/mjworker), the "dist" runtime cannot spawn workers and fails
// with a diagnostic.
func InitWorker() {
	if os.Getenv(envWorker) == "" {
		selfExec.Store(true)
		return
	}
	node, err := strconv.Atoi(os.Getenv(envNode))
	if err != nil {
		fmt.Fprintf(os.Stderr, "mjworker: bad %s: %v\n", envNode, err)
		os.Exit(1)
	}
	if err := ServeWorkerOn(os.Getenv(envConnect), node, os.Getenv(envRun),
		os.Getenv(envBind), os.Getenv(envAdvertise)); err != nil {
		fmt.Fprintf(os.Stderr, "mjworker %d: %v\n", node, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// workerBinary resolves the executable to spawn workers from:
// Config.WorkerBinary, then $MJ_DIST_WORKER_BIN, then the current binary
// if it passed through InitWorker.
func workerBinary(cfg Config) (string, error) {
	if cfg.WorkerBinary != "" {
		return cfg.WorkerBinary, nil
	}
	if p := os.Getenv(envWorkerBin); p != "" {
		return p, nil
	}
	if selfExec.Load() {
		exe, err := os.Executable()
		if err != nil {
			return "", fmt.Errorf("dist: resolve own executable: %w", err)
		}
		return exe, nil
	}
	return "", fmt.Errorf("dist: no worker binary: call dist.InitWorker from main/TestMain, or set %s to a built cmd/mjworker", envWorkerBin)
}

// spawnWorker starts worker node as a child process connecting back to
// addr. Stderr passes through (a worker only writes on failure); stdout is
// discarded — no pipes, so the coordinator holds no extra descriptors per
// child.
func spawnWorker(bin, addr, runID string, node int) (*exec.Cmd, error) {
	cmd := exec.Command(bin)
	cmd.Env = append(os.Environ(),
		envWorker+"=1",
		envConnect+"="+addr,
		envNode+"="+strconv.Itoa(node),
		envRun+"="+runID,
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: spawn worker %d (%s): %w", node, bin, err)
	}
	if workerSpawnHook != nil {
		workerSpawnHook(node, cmd.Process.Pid)
	}
	return cmd, nil
}
