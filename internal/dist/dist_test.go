// End-to-end audits of the distributed runtime: multiset equivalence with
// the sequential reference across all four strategies and worker counts,
// resource-leak checks (goroutines, file descriptors, child processes) on
// completion and cancellation, and crash recovery when a worker dies
// mid-run. The tests live in the external package so they can drive the
// runtime through core.Exec exactly as callers do.
package dist_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"multijoin/internal/core"
	"multijoin/internal/dist"
	"multijoin/internal/jointree"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
)

// testQuery builds a chain-database query of the given size.
func testQuery(t testing.TB, relations, card, procs int, kind strategy.Kind, shape jointree.Shape) core.Query {
	t.Helper()
	db, err := wisconsin.Chain(wisconsin.Config{Relations: relations, Cardinality: card, Seed: 1995})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := jointree.BuildShape(shape, relations)
	if err != nil {
		t.Fatal(err)
	}
	return core.Query{DB: db, Tree: tree, Strategy: kind, Procs: procs}
}

// settleGoroutines polls until the goroutine count drops back to at most
// base+slack or the deadline passes, and returns the final count.
func settleGoroutines(base, slack int, deadline time.Duration) int {
	limit := time.Now().Add(deadline)
	n := runtime.NumGoroutine()
	for n > base+slack && time.Now().Before(limit) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// openFDs returns the number of open file descriptors of this process, or
// -1 on platforms without /proc.
func openFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// settleFDs polls until the descriptor count drops back to at most
// base+slack (sockets linger briefly after Close) or the deadline passes.
func settleFDs(base, slack int, deadline time.Duration) int {
	limit := time.Now().Add(deadline)
	n := openFDs()
	for n > base+slack && time.Now().Before(limit) {
		time.Sleep(10 * time.Millisecond)
		n = openFDs()
	}
	return n
}

// pidRecorder collects the (node, pid) pairs of every worker the runtime
// spawns while installed.
type pidRecorder struct {
	mu   sync.Mutex
	pids map[int]int // node -> pid
}

func recordSpawns(t *testing.T) *pidRecorder {
	t.Helper()
	r := &pidRecorder{pids: make(map[int]int)}
	dist.SetWorkerSpawnHook(func(node, pid int) {
		r.mu.Lock()
		r.pids[node] = pid
		r.mu.Unlock()
	})
	t.Cleanup(func() { dist.SetWorkerSpawnHook(nil) })
	return r
}

func (r *pidRecorder) pid(node int) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	pid, ok := r.pids[node]
	return pid, ok
}

func (r *pidRecorder) all() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.pids))
	for _, pid := range r.pids {
		out = append(out, pid)
	}
	return out
}

// assertChildrenReaped fails if any recorded worker pid is still alive
// (signal 0 probes existence; ESRCH means fully reaped).
func assertChildrenReaped(t *testing.T, r *pidRecorder) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for _, pid := range r.all() {
		for syscall.Kill(pid, 0) == nil {
			if time.Now().After(deadline) {
				t.Errorf("worker pid %d still alive after run ended", pid)
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestDistEquivalenceAllStrategies is the acceptance criterion: every
// strategy produces the reference multiset on the dist runtime with 1, 2
// and 4 loopback workers, and each run leaves no goroutines, descriptors or
// child processes behind.
func TestDistEquivalenceAllStrategies(t *testing.T) {
	q := testQuery(t, 5, 2000, 8, strategy.SP, jointree.WideBushy)
	for _, workers := range []int{1, 2, 4} {
		for _, kind := range strategy.Kinds {
			t.Run(fmt.Sprintf("w%d/%v", workers, kind), func(t *testing.T) {
				q := q
				q.Strategy = kind
				rec := recordSpawns(t)
				beforeG := runtime.NumGoroutine()
				beforeFD := openFDs()
				res, err := core.Exec(context.Background(), q,
					core.WithRuntime("dist"), core.WithWorkers(workers), core.WithVerify())
				if err != nil {
					t.Fatal(err)
				}
				if res.Stats.Workers != workers {
					t.Errorf("Stats.Workers = %d, want %d", res.Stats.Workers, workers)
				}
				if res.Stats.BytesOnWire <= 0 {
					t.Errorf("Stats.BytesOnWire = %d, want > 0 (result must cross the wire)", res.Stats.BytesOnWire)
				}
				if res.Stats.ResultTuples != res.Result.Card() {
					t.Errorf("Stats.ResultTuples = %d, result card = %d", res.Stats.ResultTuples, res.Result.Card())
				}
				assertChildrenReaped(t, rec)
				if after := settleGoroutines(beforeG, 2, 5*time.Second); after > beforeG+2 {
					t.Errorf("goroutine leak: %d before, %d after", beforeG, after)
				}
				if beforeFD >= 0 {
					if after := settleFDs(beforeFD, 2, 5*time.Second); after > beforeFD+2 {
						t.Errorf("fd leak: %d before, %d after", beforeFD, after)
					}
				}
			})
		}
	}
}

// TestDistStatsMatchParallel pins the shared-nothing bookkeeping: summed
// over all nodes, the dist runtime moves exactly the tuples the
// single-process goroutine runtime moves for the same plan and batch size —
// the transport changes, the dataflow does not.
func TestDistStatsMatchParallel(t *testing.T) {
	q := testQuery(t, 5, 2000, 8, strategy.FP, jointree.WideBushy)
	ref, err := core.Exec(context.Background(), q, core.WithRuntime("parallel"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Exec(context.Background(), q,
		core.WithRuntime("dist"), core.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TuplesMovedRemote != ref.Stats.TuplesMovedRemote {
		t.Errorf("TuplesMovedRemote = %d, parallel runtime moved %d", res.Stats.TuplesMovedRemote, ref.Stats.TuplesMovedRemote)
	}
	if res.Stats.TuplesLocal != ref.Stats.TuplesLocal {
		t.Errorf("TuplesLocal = %d, parallel runtime delivered %d", res.Stats.TuplesLocal, ref.Stats.TuplesLocal)
	}
	if res.Stats.ResultTuples != ref.Stats.ResultTuples {
		t.Errorf("ResultTuples = %d, parallel runtime produced %d", res.Stats.ResultTuples, ref.Stats.ResultTuples)
	}
	if res.Stats.Processes != ref.Stats.Processes || res.Stats.Streams != ref.Stats.Streams {
		t.Errorf("structural counters differ: dist %d procs/%d streams, parallel %d/%d",
			res.Stats.Processes, res.Stats.Streams, ref.Stats.Processes, ref.Stats.Streams)
	}
}

// TestDistCancelMidQuery cancels a distributed run partway through and
// asserts a prompt context.Canceled return with every resource — local
// goroutines, sockets, and the spawned children — released.
func TestDistCancelMidQuery(t *testing.T) {
	q := testQuery(t, 10, 8000, 16, strategy.FP, jointree.WideBushy)
	for _, delay := range []time.Duration{5 * time.Millisecond, 150 * time.Millisecond} {
		t.Run(delay.String(), func(t *testing.T) {
			rec := recordSpawns(t)
			beforeG := runtime.NumGoroutine()
			beforeFD := openFDs()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			errc := make(chan error, 1)
			go func() {
				_, err := core.Exec(ctx, q, core.WithRuntime("dist"), core.WithWorkers(2))
				errc <- err
			}()
			time.Sleep(delay)
			cancel()
			select {
			case err := <-errc:
				// nil is possible only when the run beats a late cancel.
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Fatalf("Exec after cancel returned %v, want context.Canceled", err)
				}
			case <-time.After(20 * time.Second):
				t.Fatal("Exec did not return within 20s of cancellation")
			}
			assertChildrenReaped(t, rec)
			if after := settleGoroutines(beforeG, 2, 5*time.Second); after > beforeG+2 {
				t.Errorf("goroutine leak after cancel: %d before, %d after", beforeG, after)
			}
			if beforeFD >= 0 {
				if after := settleFDs(beforeFD, 2, 5*time.Second); after > beforeFD+2 {
					t.Errorf("fd leak after cancel: %d before, %d after", beforeFD, after)
				}
			}
		})
	}
}

// TestDistWorkerCrash kills one worker process and asserts the coordinator
// returns a diagnostic error (not a hang) and releases everything: the
// remaining children are cancelled and reaped, no goroutines or sockets
// leak.
func TestDistWorkerCrash(t *testing.T) {
	q := testQuery(t, 10, 8000, 16, strategy.FP, jointree.WideBushy)
	for _, tc := range []struct {
		name  string
		delay time.Duration
	}{
		{"at-spawn", 0},
		{"mid-run", 250 * time.Millisecond},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := recordSpawns(t)
			beforeG := runtime.NumGoroutine()
			beforeFD := openFDs()
			killed := make(chan struct{})
			go func() {
				defer close(killed)
				deadline := time.Now().Add(10 * time.Second)
				for {
					if pid, ok := rec.pid(1); ok {
						if tc.delay > 0 {
							time.Sleep(tc.delay)
						}
						syscall.Kill(pid, syscall.SIGKILL)
						return
					}
					if time.Now().After(deadline) {
						return
					}
					time.Sleep(time.Millisecond)
				}
			}()
			errc := make(chan error, 1)
			go func() {
				_, err := core.Exec(context.Background(), q, core.WithRuntime("dist"), core.WithWorkers(2))
				errc <- err
			}()
			var err error
			select {
			case err = <-errc:
			case <-time.After(30 * time.Second):
				t.Fatal("coordinator hung after worker was killed")
			}
			<-killed
			if err == nil {
				// Only a very late kill can lose the race against a
				// completed run; the at-spawn variant must always error.
				if tc.delay == 0 {
					t.Fatal("coordinator returned success though worker 1 was killed at spawn")
				}
				t.Logf("run completed before the delayed kill landed")
			} else if !strings.Contains(err.Error(), "worker") {
				t.Errorf("error does not identify the dead worker: %v", err)
			}
			assertChildrenReaped(t, rec)
			if after := settleGoroutines(beforeG, 2, 5*time.Second); after > beforeG+2 {
				t.Errorf("goroutine leak after crash: %d before, %d after", beforeG, after)
			}
			if beforeFD >= 0 {
				if after := settleFDs(beforeFD, 2, 5*time.Second); after > beforeFD+2 {
					t.Errorf("fd leak after crash: %d before, %d after", beforeFD, after)
				}
			}
		})
	}
}
