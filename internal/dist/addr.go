// Bind/advertise address resolution for multi-host runs.
//
// The dist transport was built on loopback: every listener bound
// 127.0.0.1:0 and handed peers exactly the address it bound. Across hosts
// those two addresses diverge — a node binds a wildcard or NIC address and
// must *advertise* a name its peers can actually dial. This file is that
// split: listeners take a bind address, and ResolveAdvertise derives the
// dialable form from what the listener actually bound (so an ephemeral
// ":0" port can still be advertised under a fixed hostname).
package dist

import (
	"errors"
	"fmt"
	"net"
	"strings"
)

// defaultBind is the historical single-host default: loopback, ephemeral
// port.
const defaultBind = "127.0.0.1:0"

// ResolveAdvertise derives the address peers dial from the address a
// listener actually bound (including its kernel-assigned port) and an
// optional advertise override:
//
//   - empty advertise: the bound address itself — valid only when the bind
//     names a concrete host; a wildcard bind (0.0.0.0, [::]) is not
//     dialable and is rejected.
//   - a bare host, or host with port 0: the override's host with the bound
//     port — the usual multi-host form, "this machine's name, whatever
//     port the kernel picked".
//   - a full host:port: taken verbatim (NAT, port forwarding).
func ResolveAdvertise(bound, advertise string) (string, error) {
	_, bPort, err := net.SplitHostPort(bound)
	if err != nil {
		return "", fmt.Errorf("dist: bound address %q: %w", bound, err)
	}
	if advertise == "" {
		bHost, _, _ := net.SplitHostPort(bound)
		if unspecifiedHost(bHost) {
			return "", fmt.Errorf("dist: listener bound to wildcard %q needs an explicit advertise address (peers cannot dial it)", bound)
		}
		return bound, nil
	}
	aHost, aPort, err := net.SplitHostPort(advertise)
	if err != nil {
		var ae *net.AddrError
		if errors.As(err, &ae) && strings.Contains(ae.Err, "missing port") {
			aHost, aPort = strings.Trim(advertise, "[]"), bPort
		} else {
			return "", fmt.Errorf("dist: advertise address %q: %w", advertise, err)
		}
	}
	if unspecifiedHost(aHost) {
		return "", fmt.Errorf("dist: advertise address %q does not name a dialable host", advertise)
	}
	if aPort == "" || aPort == "0" {
		aPort = bPort
	}
	return net.JoinHostPort(aHost, aPort), nil
}

// unspecifiedHost reports whether host is empty or a wildcard IP — an
// address a peer cannot dial.
func unspecifiedHost(host string) bool {
	if host == "" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsUnspecified()
}
