package dist

import (
	"bytes"
	"crypto/rand"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"time"
)

// protoVersion is the wire protocol version carried in every HELLO frame;
// both ends must agree exactly. Version 2 extended the DATA payload
// grammar with signed tuple blocks (relation.SignedBlockFlag on the count
// header plus a sign bitmap after the Check column) — a version-1 reader
// would misparse the flagged count as an implausible batch length.
const protoVersion = 2

// Frame kinds (see the package documentation for the layout).
const (
	ftHello  byte = 0x01
	ftSetup  byte = 0x02
	ftReady  byte = 0x03
	ftStart  byte = 0x04
	ftDone   byte = 0x05
	ftCancel byte = 0x06
	ftData   byte = 0x10
	ftEOS    byte = 0x11
	ftCredit byte = 0x12
)

// maxFrame bounds any frame a reader accepts: large enough for a SETUP
// carrying a big relation's fragments, small enough to reject corrupt
// length prefixes before allocating.
const maxFrame = 1 << 28

// Connection kinds carried in HELLO.
const (
	kindControl = "control"
	kindData    = "data"
)

// helloMsg opens every connection: protocol version, run id, the sender's
// node id, the connection kind, and (control connections only) the
// worker's data listener address.
type helloMsg struct {
	Version  int
	RunID    string
	Node     int
	Kind     string
	DataAddr string
}

// fragMsg carries the pre-placed base-relation fragment of one scan
// instance: the fragment encoded as consecutive columnar blocks
// (relation.AppendBlocksBytes).
type fragMsg struct {
	OpID   string
	Idx    int
	Blocks []byte
}

// setupMsg ships one worker everything it needs to build its partial run.
type setupMsg struct {
	Workers      int
	Node         int
	PeerAddrs    []string // worker data listener addresses, by node id
	CoordAddr    string   // coordinator data listener address
	PlanText     string   // xra.Encode of the plan
	LeafCards    map[int]int
	BatchTuples  int
	ChannelDepth int
	Window       int
	Frags        []fragMsg
}

// doneMsg reports one worker's completed run and its share of the unified
// counters.
type doneMsg struct {
	TuplesMovedRemote int64
	TuplesLocal       int64
	Batches           int64
	Goroutines        int
	BytesOnWire       int64
	OpWall            map[string]time.Duration
}

// encodeMsg gob-encodes a control message payload.
func encodeMsg(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("dist: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeMsg gob-decodes a control frame payload into v.
func decodeMsg(payload []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("dist: decode: %w", err)
	}
	return nil
}

// newRunID returns a fresh random run identifier, the token every
// connection of one distributed run is tied to.
func newRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a clock-free
		// constant still works single-run since connections also match on
		// address.
		return "mjrun-static"
	}
	return "mjrun-" + hex.EncodeToString(b[:])
}

// checkHello validates a received HELLO against this run.
func checkHello(h helloMsg, runID string) error {
	if h.Version != protoVersion {
		return fmt.Errorf("dist: protocol version mismatch: got %d, want %d", h.Version, protoVersion)
	}
	if h.RunID != runID {
		return fmt.Errorf("dist: run id mismatch: got %q", h.RunID)
	}
	if h.Kind != kindControl && h.Kind != kindData {
		return fmt.Errorf("dist: unknown connection kind %q", h.Kind)
	}
	return nil
}
