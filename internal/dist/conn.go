package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"multijoin/internal/relation"
)

// Conn is one framed connection of a distributed run. Writes are
// frame-atomic (a mutex serializes concurrent senders — several egress
// streams multiplex one connection); reads are single-reader by
// construction (each connection has exactly one serving goroutine). The
// hot path, WriteBatch, encodes a columnar batch straight from its columns
// into a staging buffer with the relation block codec — no per-tuple
// encode step and no allocation in steady state.
type Conn struct {
	nc net.Conn
	br *bufio.Reader

	wmu  sync.Mutex
	bw   *bufio.Writer
	wbuf []byte
	rbuf []byte

	// bytes, when set, accumulates every frame byte written — the
	// bytes-on-wire counter of the run's data plane.
	bytes *atomic.Int64

	closeOnce sync.Once
	closeErr  error
}

func newConn(nc net.Conn) *Conn {
	return &Conn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
}

// dialConn opens a framed connection to addr.
func dialConn(addr string, timeout time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dist: dial %s: %w", addr, err)
	}
	return newConn(nc), nil
}

// Close closes the underlying connection; it is idempotent and safe to
// call concurrently with blocked reads and writes (which then fail).
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.nc.Close() })
	return c.closeErr
}

// writeFrame writes one frame (kind + payload) atomically and flushes.
func (c *Conn) writeFrame(kind byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = c.wbuf[:0]
	c.wbuf = binary.LittleEndian.AppendUint32(c.wbuf, uint32(1+len(payload)))
	c.wbuf = append(c.wbuf, kind)
	c.wbuf = append(c.wbuf, payload...)
	return c.send()
}

// send writes the staged frame in wbuf and flushes, accounting the bytes.
// Callers hold wmu.
func (c *Conn) send() error {
	if _, err := c.bw.Write(c.wbuf); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	if c.bytes != nil {
		c.bytes.Add(int64(len(c.wbuf)))
	}
	return nil
}

// writeMsg writes one gob-encoded control frame.
func (c *Conn) writeMsg(kind byte, v any) error {
	payload, err := encodeMsg(v)
	if err != nil {
		return err
	}
	return c.writeFrame(kind, payload)
}

// WriteBatch writes one DATA frame: the stream id followed by the batch as
// one columnar block, encoded directly from the batch's columns.
func (c *Conn) WriteBatch(sid uint32, b *relation.Batch) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = c.wbuf[:0]
	c.wbuf = append(c.wbuf, 0, 0, 0, 0, ftData)
	c.wbuf = binary.LittleEndian.AppendUint32(c.wbuf, sid)
	c.wbuf = relation.AppendBatchBytes(c.wbuf, b)
	binary.LittleEndian.PutUint32(c.wbuf, uint32(len(c.wbuf)-4))
	return c.send()
}

// WriteEOS writes one EOS frame for stream sid.
func (c *Conn) WriteEOS(sid uint32) error {
	var p [4]byte
	binary.LittleEndian.PutUint32(p[:], sid)
	return c.writeFrame(ftEOS, p[:])
}

// WriteCredit grants the sender of stream sid n more batch credits.
func (c *Conn) WriteCredit(sid uint32, n uint32) error {
	var p [8]byte
	binary.LittleEndian.PutUint32(p[:4], sid)
	binary.LittleEndian.PutUint32(p[4:], n)
	return c.writeFrame(ftCredit, p[:])
}

// ReadFrame reads the next frame, returning its kind and payload. The
// payload slice is only valid until the next ReadFrame call (it views the
// connection's reusable read buffer). It fails on malformed framing, on a
// closed connection, and on any transport error.
func (c *Conn) ReadFrame() (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("dist: implausible frame length %d", n)
	}
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	c.rbuf = c.rbuf[:n]
	if _, err := io.ReadFull(c.br, c.rbuf); err != nil {
		return 0, nil, err
	}
	return c.rbuf[0], c.rbuf[1:], nil
}

// readMsgFrame reads the next frame and requires it to be of the given
// kind, decoding its gob payload into v (v nil skips decoding). A CANCEL
// frame instead of the expected kind is surfaced as a distinct error.
func (c *Conn) readMsgFrame(kind byte, v any) error {
	got, payload, err := c.ReadFrame()
	if err != nil {
		return err
	}
	if got == ftCancel && kind != ftCancel {
		return errCancelled
	}
	if got != kind {
		return fmt.Errorf("dist: expected frame 0x%02x, got 0x%02x", kind, got)
	}
	if v == nil {
		return nil
	}
	return decodeMsg(payload, v)
}

// parseDataFrame splits a DATA payload into its stream id and block bytes.
func parseDataFrame(payload []byte) (uint32, []byte, error) {
	if len(payload) < 4 {
		return 0, nil, fmt.Errorf("dist: short data frame: %d bytes", len(payload))
	}
	return binary.LittleEndian.Uint32(payload), payload[4:], nil
}

// parseStreamID reads the stream id of an EOS payload.
func parseStreamID(payload []byte) (uint32, error) {
	if len(payload) < 4 {
		return 0, fmt.Errorf("dist: short stream-id payload: %d bytes", len(payload))
	}
	return binary.LittleEndian.Uint32(payload), nil
}

// parseCreditFrame splits a CREDIT payload into stream id and grant count.
func parseCreditFrame(payload []byte) (uint32, uint32, error) {
	if len(payload) < 8 {
		return 0, 0, fmt.Errorf("dist: short credit frame: %d bytes", len(payload))
	}
	return binary.LittleEndian.Uint32(payload), binary.LittleEndian.Uint32(payload[4:]), nil
}
