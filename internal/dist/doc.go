// Package dist executes xra plans across multiple OS processes on a
// shared-nothing model: a coordinator partitions the plan's operation
// processes over N mjworker child processes (plan processor id p lives on
// worker p mod N, the same placement rule the parallel dispatcher uses for
// its run queues; the collect process stays on the coordinator), ships each
// worker its plan fragment and pre-placed base-relation fragments, and
// streams every node-crossing redistribution edge over loopback TCP as
// pooled columnar batch blocks. Each node runs the ordinary worker loop of
// package parallel over its local process subset (parallel.Partial); only
// the transport is new.
//
// # Wire protocol
//
// Every connection carries a sequence of length-prefixed frames:
//
//	frame := length(uint32 LE) kind(uint8) payload
//
// where length counts the kind byte plus the payload. The first frame on
// any connection must be HELLO, carrying the protocol version, the run id
// and the connection kind (control or data); a receiver closes the
// connection on any mismatch. Frame kinds and payloads:
//
//	HELLO  0x01  gob(helloMsg)   version, run id, node id, kind, data addr
//	SETUP  0x02  gob(setupMsg)   worker count, peer addrs, plan text
//	                             (xra.Encode), leaf cardinalities, batch
//	                             geometry, credit window, this worker's
//	                             scan fragments as encoded blocks
//	READY  0x03  (empty)         worker: wiring built, data listener open
//	START  0x04  (empty)         coordinator: all workers ready, execute
//	DONE   0x05  gob(doneMsg)    worker: local run complete + its counters
//	CANCEL 0x06  (empty)         coordinator: ctx cancelled, unwind
//	DATA   0x10  sid(u32) block  one batch of stream sid, encoded with the
//	                             columnar block codec of package relation
//	                             (count header + U1, U2, Check columns)
//	                             or a signed block (below)
//	EOS    0x11  sid(u32)        stream sid ended (producer finished)
//	CREDIT 0x12  sid(u32) n(u32) receiver grants n more batches on sid
//
// Control frames (HELLO..CANCEL) flow on each worker's control connection
// to the coordinator; DATA/EOS/CREDIT flow on direct data connections
// between the nodes. Stream ids are the canonical plan-wide enumeration of
// parallel.Streams, so both endpoints derive identical wiring from the
// plan text alone.
//
// # Signed tuple blocks (protocol version 2)
//
// Incremental view maintenance carries deltas — insertions and
// retractions — over the same block codec. A signed block is an ordinary
// columnar block whose count header has relation.SignedBlockFlag (bit 62)
// set and which appends one extra section after the Check column: a sign
// bitmap of ceil(n/8) bytes, bit i set meaning tuple i is a delete
// (retraction) and clear meaning an insert. Unsigned blocks are unchanged
// byte-for-byte, so the two kinds interleave freely on a stream; the flag
// bit makes a signed block unmistakable to a version-2 reader and an
// implausible batch length to anything older, which is why the HELLO
// version moved to 2. Encoders/decoders live in package relation
// (AppendSignedBlockBytes, DecodeSignedBlocks); the serving layer's
// VAPPLY frames (internal/serve, its own protocol version 2) transport
// view deltas as exactly these blocks.
//
// # Backpressure
//
// Data streams are credit-windowed: a sender starts with a window of W
// batch credits per stream, spends one per DATA frame, and blocks when the
// window is empty; the receiver grants a credit back only after the batch
// has been handed to the consuming process's channel. The receiver thus
// buffers at most W undelivered batches per stream, a slow consumer
// propagates backpressure to the remote producer exactly like a full
// channel does in-process, and one stalled stream never blocks the other
// streams multiplexed on the same connection (frames are dispatched to
// per-stream queues before delivery).
//
// # Scheduling approximation
//
// Op.After start dependencies are enforced node-locally: an operator with
// no local instances counts as complete. This is sound — a process whose
// dependencies are pending buffers early input and replays it (the stash),
// so cross-node After edges relax scheduling, never correctness.
package dist
