package dist

import (
	"fmt"
	"net"
	"time"
)

// helloTimeout bounds how long a freshly accepted or dialed connection may
// take to complete its HELLO exchange — a child that never speaks (or a
// stray connection) is cut off instead of pinning the run.
const helloTimeout = 20 * time.Second

// Listener accepts the framed connections of one distributed run on a
// loopback TCP port and validates each connection's HELLO handshake
// (protocol version + run id) before handing it to the node.
type Listener struct {
	l     net.Listener
	runID string
}

// listen opens the run's listener on the single-host default: loopback,
// ephemeral port.
func listen(runID string) (*Listener, error) {
	return listenOn("", runID)
}

// listenOn opens the run's listener on bind; empty means defaultBind.
func listenOn(bind, runID string) (*Listener, error) {
	if bind == "" {
		bind = defaultBind
	}
	l, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("dist: listen %s: %w", bind, err)
	}
	return &Listener{l: l, runID: runID}, nil
}

// Addr returns the listener's dialable address.
func (ln *Listener) Addr() string { return ln.l.Addr().String() }

// Close stops accepting; blocked Accept calls fail.
func (ln *Listener) Close() error { return ln.l.Close() }

// Accept waits for the next connection and completes its handshake: the
// first frame must be a HELLO matching this run's protocol version and run
// id, read under helloTimeout. Invalid connections are closed and the
// error returned; the caller decides whether that fails the run (it does —
// nothing else should ever dial a run's port).
func (ln *Listener) Accept() (*Conn, helloMsg, error) {
	nc, err := ln.l.Accept()
	if err != nil {
		return nil, helloMsg{}, err
	}
	c := newConn(nc)
	h, err := readHello(c)
	if err != nil {
		c.Close()
		return nil, helloMsg{}, err
	}
	if err := checkHello(h, ln.runID); err != nil {
		c.Close()
		return nil, helloMsg{}, err
	}
	return c, h, nil
}

// readHello reads one HELLO frame under the handshake deadline.
func readHello(c *Conn) (helloMsg, error) {
	var h helloMsg
	c.nc.SetReadDeadline(time.Now().Add(helloTimeout))
	defer c.nc.SetReadDeadline(time.Time{})
	if err := c.readMsgFrame(ftHello, &h); err != nil {
		return h, fmt.Errorf("dist: handshake: %w", err)
	}
	return h, nil
}

// sendHello opens c's handshake from the dialing side.
func sendHello(c *Conn, h helloMsg) error {
	return c.writeMsg(ftHello, h)
}
