package dist

import (
	"context"
	"errors"
	"fmt"
	"os/exec"
	"sync/atomic"
	"time"

	"multijoin/internal/parallel"
	"multijoin/internal/relation"
	"multijoin/internal/xra"
)

// DefaultWorkers is the worker-process count when Config.Workers is unset.
const DefaultWorkers = 2

// Timeouts guarding the run against a wedged or dead child: spawned
// workers must say HELLO and READY promptly, and their DONE must follow
// the coordinator's own run completion (their producers finished before
// our collect could).
const (
	spawnTimeout = 30 * time.Second
	doneTimeout  = 60 * time.Second
	exitGrace    = 5 * time.Second
)

// Config parameterizes one distributed execution.
type Config struct {
	// Workers is the number of worker processes to spawn; plan processor
	// id p runs on worker p mod Workers. Zero means DefaultWorkers.
	Workers int
	// BatchTuples and ChannelDepth mirror the parallel runtime's knobs and
	// apply on every node; the credit window per node-crossing stream
	// equals the resolved ChannelDepth.
	BatchTuples  int
	ChannelDepth int
	// WorkerBinary overrides worker binary resolution (see workerBinary).
	WorkerBinary string
	// ListenAddr is the coordinator's bind address for control and data
	// connections; empty means the single-host default (loopback with an
	// ephemeral port). AdvertiseAddr overrides the address workers are
	// given to dial back — required when ListenAddr binds a wildcard, and
	// resolved against the actually bound port (ResolveAdvertise), so a
	// fixed hostname composes with an ephemeral port.
	ListenAddr    string
	AdvertiseAddr string
}

// Stats aggregates the unified counters across the coordinator and every
// worker (tuples, batches and goroutines are summed over the nodes; the
// structural plan counters are node-independent).
type Stats struct {
	Processes         int
	Streams           int
	TuplesMovedRemote int64
	TuplesLocal       int64
	Batches           int64
	ResultTuples      int
	Goroutines        int
	OpWall            map[string]time.Duration

	// Workers is the number of worker processes the run spawned.
	Workers int
	// BytesOnWire is the total frame bytes written on inter-node data
	// connections, summed over all nodes.
	BytesOnWire int64
}

// Result is the outcome of one distributed execution.
type Result struct {
	// WallTime is the elapsed real time of the whole run, worker spawn and
	// teardown included.
	WallTime time.Duration
	Stats    Stats
}

// workerProc is the coordinator's handle on one spawned worker.
type workerProc struct {
	node     int
	cmd      *exec.Cmd
	ctrl     *Conn
	exited   chan struct{}
	waitErr  error
	doneSeen atomic.Bool
	// killed records that the coordinator itself killed the child (a
	// teardown straggler), so its abnormal exit is not read as a crash.
	killed atomic.Bool
}

// nodeDone pairs a DONE report with its worker.
type nodeDone struct {
	node int
	msg  doneMsg
}

// Run executes the plan across Config.Workers freshly spawned worker
// processes plus this process as coordinator, streaming the final result
// into sink (the push contract of parallel.Sink / core.Sink). It returns
// when the result is fully delivered and every child reaped; cancellation
// propagates to the workers as CANCEL frames and the call never leaves
// goroutines, sockets or child processes behind.
func Run(ctx context.Context, plan *xra.Plan, base func(leaf int) *relation.Relation, cfg Config, sink parallel.Sink) (*Result, error) {
	if sink == nil {
		return nil, errors.New("dist: Run needs a sink")
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = DefaultWorkers
	}
	bin, err := workerBinary(cfg)
	if err != nil {
		return nil, err
	}
	bt := cfg.BatchTuples
	if bt < 1 {
		bt = parallel.DefaultBatchTuples
	}
	depth := cfg.ChannelDepth
	if depth < 1 {
		depth = parallel.DefaultChannelDepth
	}
	window := depth

	runID := newRunID()
	ln, err := listenOn(cfg.ListenAddr, runID)
	if err != nil {
		return nil, err
	}
	coordAddr, err := ResolveAdvertise(ln.Addr(), cfg.AdvertiseAddr)
	if err != nil {
		ln.Close()
		return nil, err
	}
	start := time.Now()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var failed atomic.Bool
	failCh := make(chan error, 1)
	fail := func(err error) {
		if failed.CompareAndSwap(false, true) {
			failCh <- err
			cancel()
		}
	}
	var closing atomic.Bool

	retain := plan.NumStreams() * (depth + 1)
	if retain > relation.MaxPoolRetain {
		retain = relation.MaxPoolRetain
	}
	pool := relation.NewBatchPool(bt, retain)
	p := newPlane(runCtx, window, pool, fail)
	for _, sp := range parallel.Streams(plan) {
		fn, tn := nodeOf(sp.FromProc, workers), nodeOf(sp.ToProc, workers)
		if tn == coordNode && fn != coordNode {
			p.expectIngress(uint32(sp.ID))
		}
	}

	// Accept loop: control HELLOs go to the rendezvous channel, data
	// connections straight to the plane.
	type helloConn struct {
		c *Conn
		h helloMsg
	}
	helloCh := make(chan helloConn, workers)
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			c, h, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			switch h.Kind {
			case kindControl:
				select {
				case helloCh <- helloConn{c, h}:
				default:
					c.Close()
				}
			case kindData:
				p.track(c)
			}
		}
	}()

	// Spawn the children and watch each for a premature exit (the crash
	// signal: gone before its DONE while the run is still live).
	ws := make([]*workerProc, workers)
	abort := func(err error) (*Result, error) {
		closing.Store(true)
		cancel()
		// Tell every worker we know to stop, then cut all control paths —
		// including HELLOs still queued at the rendezvous — so workers
		// blocked on SETUP see the run end instead of eating the reap grace.
		for _, w := range ws {
			if w != nil && w.ctrl != nil {
				w.ctrl.writeFrame(ftCancel, nil)
				w.ctrl.Close()
			}
		}
		ln.Close()
		<-acceptDone
		for {
			select {
			case hc := <-helloCh:
				hc.c.Close()
				continue
			default:
			}
			break
		}
		reapAll(ws, exitGrace)
		p.teardown()
		// A child that vanished before its DONE (and that we did not kill
		// ourselves) is the likeliest root cause — transport errors like a
		// lost data connection are its symptoms. Name it in the error.
		for _, w := range ws {
			if w != nil && w.cmd != nil && w.waitErr != nil &&
				!w.doneSeen.Load() && !w.killed.Load() {
				err = fmt.Errorf("dist: worker %d died mid-run (%v): %w", w.node, w.waitErr, err)
				break
			}
		}
		return nil, err
	}
	for i := 0; i < workers; i++ {
		cmd, err := spawnWorker(bin, coordAddr, runID, i)
		if err != nil {
			return abort(err)
		}
		w := &workerProc{node: i, cmd: cmd, exited: make(chan struct{})}
		ws[i] = w
		go func() {
			w.waitErr = w.cmd.Wait()
			close(w.exited)
			if !w.doneSeen.Load() && !closing.Load() && runCtx.Err() == nil {
				status := "exited"
				if w.waitErr != nil {
					status = w.waitErr.Error()
				}
				fail(fmt.Errorf("dist: worker %d died mid-run (%s)", w.node, status))
			}
		}()
	}

	// Rendezvous: every worker says HELLO with its data address.
	dataAddrs := make([]string, workers)
	for have := 0; have < workers; {
		select {
		case hc := <-helloCh:
			n := hc.h.Node
			if n < 0 || n >= workers || ws[n].ctrl != nil {
				hc.c.Close()
				return abort(fmt.Errorf("dist: bogus worker hello (node %d)", n))
			}
			ws[n].ctrl = hc.c
			dataAddrs[n] = hc.h.DataAddr
			have++
		case err := <-failCh:
			return abort(err)
		case <-runCtx.Done():
			return abort(fmt.Errorf("dist: %w", context.Cause(runCtx)))
		case <-time.After(spawnTimeout):
			return abort(fmt.Errorf("dist: timed out waiting for worker handshakes"))
		}
	}

	// Per-worker control readers: READY and DONE flow back on the control
	// connections; anything else (or a lost connection mid-run) fails the
	// run.
	readyCh := make(chan int, workers)
	doneCh := make(chan nodeDone, workers)
	for _, w := range ws {
		w := w
		go func() {
			for {
				kind, payload, err := w.ctrl.ReadFrame()
				if err != nil {
					if !closing.Load() && runCtx.Err() == nil {
						fail(fmt.Errorf("dist: worker %d control connection lost: %w", w.node, err))
					}
					return
				}
				switch kind {
				case ftReady:
					readyCh <- w.node
				case ftDone:
					var d doneMsg
					if err := decodeMsg(payload, &d); err != nil {
						fail(err)
						return
					}
					w.doneSeen.Store(true)
					doneCh <- nodeDone{w.node, d}
				default:
					fail(fmt.Errorf("dist: unexpected frame 0x%02x from worker %d", kind, w.node))
					return
				}
			}
		}()
	}

	// Ship each worker its SETUP: the plan as text, the peers' data
	// addresses, and the pre-placed fragments of every scan instance it
	// hosts (encoded as columnar blocks).
	leafCards := make(map[int]int)
	frags := make([][]fragMsg, workers)
	for _, op := range plan.Ops {
		if op.Kind != xra.OpScan {
			continue
		}
		rel := base(op.Leaf)
		if rel == nil {
			return abort(fmt.Errorf("dist: no base relation for leaf %d", op.Leaf))
		}
		leafCards[op.Leaf] = rel.Card()
		fb := relation.FragmentBatches(rel, op.FragAttr, len(op.Procs))
		for i, proc := range op.Procs {
			tn := nodeOf(proc, workers)
			frags[tn] = append(frags[tn], fragMsg{
				OpID:   op.ID,
				Idx:    i,
				Blocks: relation.AppendBlocksBytes(nil, &fb[i], relation.MaxBlockTuples),
			})
		}
	}
	planText := xra.Encode(plan)
	for _, w := range ws {
		su := setupMsg{
			Workers:      workers,
			Node:         w.node,
			PeerAddrs:    dataAddrs,
			CoordAddr:    coordAddr,
			PlanText:     planText,
			LeafCards:    leafCards,
			BatchTuples:  bt,
			ChannelDepth: depth,
			Window:       window,
			Frags:        frags[w.node],
		}
		if err := w.ctrl.writeMsg(ftSetup, su); err != nil {
			return abort(fmt.Errorf("dist: setup worker %d: %w", w.node, err))
		}
	}

	// READY barrier, then START: a worker only dials its data connections
	// after START, when every receiver's queues exist.
	for have := 0; have < workers; {
		select {
		case <-readyCh:
			have++
		case err := <-failCh:
			return abort(err)
		case <-runCtx.Done():
			return abort(fmt.Errorf("dist: %w", context.Cause(runCtx)))
		case <-time.After(spawnTimeout):
			return abort(fmt.Errorf("dist: timed out waiting for worker setup"))
		}
	}
	for _, w := range ws {
		if err := w.ctrl.writeFrame(ftStart, nil); err != nil {
			return abort(fmt.Errorf("dist: start worker %d: %w", w.node, err))
		}
	}

	// The coordinator's own partial run: just the scheduler-host processes
	// (collect), gathering the workers' streams into the caller's sink.
	res, runErr := parallel.RunStream(runCtx, plan, nil, parallel.Config{
		MaxProcs:     1,
		BatchTuples:  bt,
		ChannelDepth: depth,
		Partial: &parallel.Partial{
			Local:     func(proc int) bool { return proc < 0 },
			Ingress:   p.ingress,
			Egress:    p.egress,
			LeafCard:  func(leaf int) int { return leafCards[leaf] },
			BatchPool: pool,
		},
	}, sink)
	if runErr != nil {
		if err := ctx.Err(); err != nil {
			return abort(fmt.Errorf("dist: %w", err))
		}
		select {
		case err := <-failCh:
			return abort(err)
		default:
		}
		return abort(runErr)
	}

	// Gather every worker's DONE and merge the counters.
	st := Stats{
		Processes:         res.Stats.Processes,
		Streams:           res.Stats.Streams,
		TuplesMovedRemote: res.Stats.TuplesMovedRemote,
		TuplesLocal:       res.Stats.TuplesLocal,
		Batches:           res.Stats.Batches,
		ResultTuples:      res.Stats.ResultTuples,
		Goroutines:        res.Stats.Goroutines + p.goroutines(),
		OpWall:            res.Stats.OpWall,
		Workers:           workers,
		BytesOnWire:       p.bytes.Load(),
	}
	for have := 0; have < workers; {
		select {
		case nd := <-doneCh:
			st.TuplesMovedRemote += nd.msg.TuplesMovedRemote
			st.TuplesLocal += nd.msg.TuplesLocal
			st.Batches += nd.msg.Batches
			st.Goroutines += nd.msg.Goroutines
			st.BytesOnWire += nd.msg.BytesOnWire
			for id, d := range nd.msg.OpWall {
				if d > st.OpWall[id] {
					st.OpWall[id] = d
				}
			}
			have++
		case err := <-failCh:
			return abort(err)
		case <-runCtx.Done():
			return abort(fmt.Errorf("dist: %w", context.Cause(runCtx)))
		case <-time.After(doneTimeout):
			return abort(fmt.Errorf("dist: timed out waiting for worker completion"))
		}
	}

	// Clean teardown: closing the control connections is the workers'
	// signal that the whole run is over and their sockets may go.
	p.quiesce()
	closing.Store(true)
	for _, w := range ws {
		w.ctrl.Close()
	}
	reapAll(ws, exitGrace)
	ln.Close()
	p.teardown()
	<-acceptDone
	wall := time.Since(start)
	return &Result{WallTime: wall, Stats: st}, nil
}

// reapAll waits for every child to exit, killing stragglers once the
// shared grace period is spent — teardown never hangs on a wedged child
// and never leaks one.
func reapAll(ws []*workerProc, grace time.Duration) {
	deadline := time.Now().Add(grace)
	for _, w := range ws {
		if w == nil || w.cmd == nil {
			continue
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			w.killed.Store(true)
			w.cmd.Process.Kill()
			<-w.exited
			continue
		}
		t := time.NewTimer(remain)
		select {
		case <-w.exited:
		case <-t.C:
			w.killed.Store(true)
			w.cmd.Process.Kill()
			<-w.exited
		}
		t.Stop()
	}
}
