package dist

// SetWorkerSpawnHook installs (or, with nil, removes) a test observer that
// sees every spawned worker's node id and OS pid — the seam the
// crash-recovery audits use to kill a live worker mid-run.
func SetWorkerSpawnHook(h func(node, pid int)) { workerSpawnHook = h }
