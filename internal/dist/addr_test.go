// Address-resolution audits: the bind/advertise split that lets dist
// listeners serve peers on other hosts (the transport was loopback-only —
// every node handed peers exactly the address it bound, which is wrong the
// moment the bind is a wildcard or the peer is remote).
package dist_test

import (
	"context"
	"net"
	"strings"
	"testing"

	"multijoin/internal/core"
	"multijoin/internal/dist"
	"multijoin/internal/jointree"
	"multijoin/internal/strategy"
)

func TestResolveAdvertise(t *testing.T) {
	cases := []struct {
		name      string
		bound     string
		advertise string
		want      string
		wantErr   string
	}{
		{name: "default is the bound address",
			bound: "127.0.0.1:44321", want: "127.0.0.1:44321"},
		{name: "wildcard bind needs an advertise",
			bound: "0.0.0.0:44321", wantErr: "advertise"},
		{name: "ipv6 wildcard bind needs an advertise",
			bound: "[::]:44321", wantErr: "advertise"},
		{name: "bare host takes the bound port",
			bound: "0.0.0.0:44321", advertise: "worker1.example", want: "worker1.example:44321"},
		{name: "host with port zero takes the bound port",
			bound: "0.0.0.0:44321", advertise: "worker1.example:0", want: "worker1.example:44321"},
		{name: "full host and port verbatim",
			bound: "10.0.0.7:44321", advertise: "nat.example:7000", want: "nat.example:7000"},
		{name: "bare ip takes the bound port",
			bound: "0.0.0.0:9", advertise: "10.0.0.7", want: "10.0.0.7:9"},
		{name: "bare ipv6 takes the bound port",
			bound: "[::]:9", advertise: "[2001:db8::1]", want: "[2001:db8::1]:9"},
		{name: "wildcard advertise rejected",
			bound: "127.0.0.1:9", advertise: "0.0.0.0:7000", wantErr: "dialable"},
		{name: "bound address must have a port",
			bound: "127.0.0.1", wantErr: "bound"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := dist.ResolveAdvertise(tc.bound, tc.advertise)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("ResolveAdvertise(%q, %q) = %q, %v; want error containing %q",
						tc.bound, tc.advertise, got, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ResolveAdvertise(%q, %q): %v", tc.bound, tc.advertise, err)
			}
			if got != tc.want {
				t.Errorf("ResolveAdvertise(%q, %q) = %q, want %q", tc.bound, tc.advertise, got, tc.want)
			}
		})
	}
}

// TestDistRunWithBindAdvertise runs a real distributed query with every
// listener bound explicitly to a wildcard address and advertised back as a
// concrete host — the multi-host configuration, exercised on one machine.
// Pre-split, workers handed peers their wildcard bind verbatim and the
// data dials failed.
func TestDistRunWithBindAdvertise(t *testing.T) {
	t.Setenv("MJ_DIST_BIND", "0.0.0.0:0")
	t.Setenv("MJ_DIST_ADVERTISE", "127.0.0.1")
	q := testQuery(t, 4, 500, 4, strategy.FP, jointree.WideBushy)
	res, err := core.Exec(context.Background(), q,
		core.WithRuntime("dist"), core.WithWorkers(2), core.WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Workers != 2 {
		t.Errorf("Stats.Workers = %d, want 2", res.Stats.Workers)
	}
	if res.Stats.BytesOnWire <= 0 {
		t.Errorf("Stats.BytesOnWire = %d, want > 0", res.Stats.BytesOnWire)
	}
}

// TestDistWildcardBindWithoutAdvertiseFails pins the guard: a worker told
// to bind a wildcard without an advertise address must fail its run
// instead of handing peers an undialable address.
func TestDistWildcardBindWithoutAdvertiseFails(t *testing.T) {
	probe, err := net.Listen("tcp", "0.0.0.0:0")
	if err != nil {
		t.Skipf("no wildcard bind on this host: %v", err)
	}
	probe.Close()
	err = dist.ServeWorkerOn("127.0.0.1:1", 0, "run", "0.0.0.0:0", "")
	if err == nil || !strings.Contains(err.Error(), "advertise") {
		t.Fatalf("ServeWorkerOn with wildcard bind and no advertise returned %v, want advertise error", err)
	}
}
