package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"

	"multijoin/internal/parallel"
	"multijoin/internal/relation"
	"multijoin/internal/xra"
)

// coordNode is the placement id of the coordinator process: it hosts
// exactly the plan processes bound to negative processor ids (the
// scheduler host's collect, xra.HostProc).
const coordNode = -1

// nodeOf maps a plan processor id to the node that runs it: the
// round-robin rule of the parallel dispatcher's run queues, with the
// scheduler host pinned to the coordinator.
func nodeOf(proc, workers int) int {
	if proc < 0 {
		return coordNode
	}
	return proc % workers
}

// fragKey identifies one scan instance's pre-placed fragment.
type fragKey struct {
	op  string
	idx int
}

// ServeWorker runs one worker process of a distributed run to completion:
// dial the coordinator, hand over our data address, build the partial run
// the SETUP describes, execute it with the plan's own worker loop
// (parallel.Partial), report DONE, and hold all connections open until the
// coordinator closes the control connection — the signal that every node
// has drained our frames. It is called by InitWorker in spawned processes
// and by cmd/mjworker. The data listener binds the single-host default
// (loopback, ephemeral port); multi-host workers use ServeWorkerOn.
func ServeWorker(connect string, node int, runID string) error {
	return ServeWorkerOn(connect, node, runID, "", "")
}

// ServeWorkerOn is ServeWorker with an explicit bind address for the
// worker's data listener and an advertise override for the address the
// peers are told to dial (ResolveAdvertise semantics). Empty bind means
// loopback with an ephemeral port; empty advertise means the bound
// address.
func ServeWorkerOn(connect string, node int, runID, bind, advertise string) error {
	if connect == "" {
		return errors.New("dist: worker: no coordinator address")
	}
	ln, err := listenOn(bind, runID)
	if err != nil {
		return err
	}
	defer ln.Close()
	dataAddr, err := ResolveAdvertise(ln.Addr(), advertise)
	if err != nil {
		return err
	}
	ctrl, err := dialConn(connect, helloTimeout)
	if err != nil {
		return err
	}
	defer ctrl.Close()
	if err := sendHello(ctrl, helloMsg{
		Version: protoVersion, RunID: runID, Node: node,
		Kind: kindControl, DataAddr: dataAddr,
	}); err != nil {
		return err
	}
	var su setupMsg
	if err := ctrl.readMsgFrame(ftSetup, &su); err != nil {
		if errors.Is(err, errCancelled) || quietClose(err) {
			return nil // the coordinator aborted before setting us up
		}
		return fmt.Errorf("dist: worker %d: setup: %w", node, err)
	}
	plan, err := xra.Parse(su.PlanText)
	if err != nil {
		return fmt.Errorf("dist: worker %d: plan: %w", node, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var failOnce sync.Once
	var failErr error
	fail := func(err error) {
		failOnce.Do(func() {
			failErr = err
			cancel()
		})
	}

	retain := plan.NumStreams() * (su.ChannelDepth + 1)
	if retain > relation.MaxPoolRetain {
		retain = relation.MaxPoolRetain
	}
	pool := relation.NewBatchPool(su.BatchTuples, retain)
	p := newPlane(ctx, su.Window, pool, fail)

	local := func(proc int) bool { return proc >= 0 && proc%su.Workers == node }

	// Wire the node-crossing streams of the canonical enumeration: queues
	// for everything arriving here, a per-target-node stream list for
	// everything leaving.
	egressTo := make(map[int][]int)
	for _, sp := range parallel.Streams(plan) {
		fn, tn := nodeOf(sp.FromProc, su.Workers), nodeOf(sp.ToProc, su.Workers)
		if fn == node && tn != node {
			egressTo[tn] = append(egressTo[tn], sp.ID)
		}
		if tn == node && fn != node {
			p.expectIngress(uint32(sp.ID))
		}
	}

	// Decode the pre-placed scan fragments shipped in SETUP.
	frags := make(map[fragKey]relation.Batch, len(su.Frags))
	for _, f := range su.Frags {
		var b relation.Batch
		if err := b.AppendBlocks(f.Blocks); err != nil {
			return fmt.Errorf("dist: worker %d: fragment %s/%d: %w", node, f.OpID, f.Idx, err)
		}
		frags[fragKey{f.OpID, f.Idx}] = b
	}

	// Serve incoming data connections (peers with egress toward us dial in
	// after the START barrier, when our queues above already exist).
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			c, h, err := ln.Accept()
			if err != nil {
				return // listener closed (teardown)
			}
			if h.Kind != kindData {
				c.Close()
				continue
			}
			p.track(c)
		}
	}()

	if err := ctrl.writeFrame(ftReady, nil); err != nil {
		return fmt.Errorf("dist: worker %d: ready: %w", node, err)
	}
	if err := ctrl.readMsgFrame(ftStart, nil); err != nil {
		if errors.Is(err, errCancelled) || quietClose(err) {
			return nil // aborted between setup and start
		}
		return fmt.Errorf("dist: worker %d: start: %w", node, err)
	}

	// From here the control connection carries at most a CANCEL, then the
	// coordinator's final close. closing flips once we have sent DONE and
	// the close is the expected outcome.
	var closing atomic.Bool
	ctrlClosed := make(chan struct{})
	go func() {
		defer close(ctrlClosed)
		for {
			kind, _, err := ctrl.ReadFrame()
			if err != nil {
				if !closing.Load() {
					fail(fmt.Errorf("dist: worker %d: coordinator connection lost: %w", node, err))
				}
				return
			}
			if kind == ftCancel {
				fail(errCancelled)
				return
			}
		}
	}()

	// Dial one data connection per node we send to (deterministic order),
	// and hang every egress stream toward that node off it.
	targets := make([]int, 0, len(egressTo))
	for tn := range egressTo {
		targets = append(targets, tn)
	}
	sort.Ints(targets)
	for _, tn := range targets {
		addr := su.CoordAddr
		if tn != coordNode {
			addr = su.PeerAddrs[tn]
		}
		c, err := dialConn(addr, helloTimeout)
		if err != nil {
			fail(err)
			break
		}
		if err := sendHello(c, helloMsg{Version: protoVersion, RunID: runID, Node: node, Kind: kindData}); err != nil {
			c.Close()
			fail(err)
			break
		}
		p.track(c)
		for _, sid := range egressTo[tn] {
			p.addEgress(uint32(sid), c)
		}
	}

	var res *parallel.RunResult
	var runErr error
	if failErr == nil {
		cfg := parallel.Config{
			MaxProcs:     localProcCount(plan, local),
			BatchTuples:  su.BatchTuples,
			ChannelDepth: su.ChannelDepth,
			Partial: &parallel.Partial{
				Local:        local,
				Ingress:      p.ingress,
				Egress:       p.egress,
				ScanFragment: func(opID string, idx int) relation.Batch { return frags[fragKey{opID, idx}] },
				LeafCard:     func(leaf int) int { return su.LeafCards[leaf] },
				BatchPool:    pool,
			},
		}
		res, runErr = parallel.RunContext(ctx, plan, nil, cfg)
	}

	if runErr != nil || failErr != nil {
		// Torn down (cancel, peer loss, or a local failure): close
		// everything, unblocking any stuck goroutine, and report. A
		// coordinator-initiated cancel is a clean exit, not a failure.
		cancel()
		closing.Store(true)
		p.teardown()
		ln.Close()
		ctrl.Close()
		<-ctrlClosed
		<-acceptDone
		if errors.Is(failErr, errCancelled) {
			return nil
		}
		if failErr != nil {
			return failErr
		}
		return runErr
	}

	// Success: flush every EOS (quiesce), report DONE with our counters,
	// then hold the sockets open until the coordinator ends the run.
	p.quiesce()
	d := doneMsg{
		TuplesMovedRemote: res.Stats.TuplesMovedRemote,
		TuplesLocal:       res.Stats.TuplesLocal,
		Batches:           res.Stats.Batches,
		Goroutines:        res.Stats.Goroutines + p.goroutines(),
		BytesOnWire:       p.bytes.Load(),
		OpWall:            res.Stats.OpWall,
	}
	closing.Store(true)
	if err := ctrl.writeMsg(ftDone, d); err != nil {
		cancel()
		p.teardown()
		ln.Close()
		ctrl.Close()
		<-ctrlClosed
		<-acceptDone
		return fmt.Errorf("dist: worker %d: done: %w", node, err)
	}
	<-ctrlClosed
	cancel()
	p.teardown()
	ln.Close()
	<-acceptDone
	if failErr != nil && !errors.Is(failErr, errCancelled) {
		return failErr
	}
	return nil
}

// quietClose reports whether err is an orderly connection teardown — the
// coordinator ending the run before this worker got its next control
// frame, which is an abort to obey silently, not a failure to report.
func quietClose(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE)
}

// localProcCount counts the distinct plan processor ids placed on this
// node — the worker's modeled-processor (dispatcher) count.
func localProcCount(plan *xra.Plan, local func(int) bool) int {
	seen := make(map[int]bool)
	for _, op := range plan.Ops {
		for _, p := range op.Procs {
			if local(p) {
				seen[p] = true
			}
		}
	}
	if len(seen) < 1 {
		return 1
	}
	return len(seen)
}
