package dist_test

import (
	"os"
	"testing"

	"multijoin/internal/dist"
)

// TestMain routes spawned worker processes into the worker protocol: the
// coordinator under test re-executes this test binary with the MJ_DIST_*
// environment set, and InitWorker never returns in that case. In the
// ordinary test process it just marks the binary self-executable.
func TestMain(m *testing.M) {
	dist.InitWorker()
	os.Exit(m.Run())
}
