package costmodel

import (
	"testing"
	"testing/quick"

	"multijoin/internal/sim"
)

func TestDefaultSane(t *testing.T) {
	p := Default()
	if p.TupleUnit <= 0 || p.Startup <= 0 || p.Handshake <= 0 || p.BatchTuples < 1 {
		t.Errorf("default params degenerate: %+v", p)
	}
	if p.ScanUnits < 0 {
		t.Errorf("negative scan units")
	}
}

func TestWorkCost(t *testing.T) {
	p := Params{TupleUnit: 100 * sim.Microsecond}
	if got := p.WorkCost(10); got != 1*sim.Millisecond {
		t.Errorf("WorkCost(10) = %v, want 1ms", got)
	}
	if p.WorkCost(0) != 0 || p.WorkCost(-5) != 0 {
		t.Error("non-positive units must cost nothing")
	}
}

func TestWorkCostMonotone(t *testing.T) {
	p := Default()
	f := func(a, b uint16) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		return p.WorkCost(x) <= p.WorkCost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestJoinCostPaperValues pins the Section 4.3 formula on the regular
// workload: with equal cardinalities N, a join of two base relations costs
// 4N, base+intermediate costs 5N, two intermediates cost 6N.
func TestJoinCostPaperValues(t *testing.T) {
	const n = 1000.0
	cases := []struct {
		base1, base2 bool
		want         float64
	}{
		{true, true, 4 * n},
		{true, false, 5 * n},
		{false, true, 5 * n},
		{false, false, 6 * n},
	}
	for _, c := range cases {
		got := JoinCost(n, n, n, c.base1, c.base2)
		if got != c.want {
			t.Errorf("JoinCost(base1=%v, base2=%v) = %g, want %g", c.base1, c.base2, got, c.want)
		}
	}
}

func TestJoinCostGeneral(t *testing.T) {
	// cost = a*n1 + b*n2 + 2r with a=1 (base) and b=2 (intermediate).
	if got := JoinCost(10, 20, 5, true, false); got != 10+40+10 {
		t.Errorf("JoinCost = %g, want 60", got)
	}
}

// TestJoinCostSymmetry: swapping the operands (with their base flags) never
// changes the cost — the paper's formula does not care which side builds.
func TestJoinCostSymmetry(t *testing.T) {
	f := func(n1Raw, n2Raw, rRaw uint16, b1, b2 bool) bool {
		n1, n2, r := float64(n1Raw), float64(n2Raw), float64(rRaw)
		return JoinCost(n1, n2, r, b1, b2) == JoinCost(n2, n1, r, b2, b1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnitConstants(t *testing.T) {
	// Pin the paper's unit model so a refactor cannot silently change the
	// cost structure: result tuples cost 2 units, everything else 1.
	if UnitsHash != 1 || UnitsNetReceive != 1 || UnitsProbe != 1 {
		t.Error("per-action unit costs must be 1")
	}
	if UnitsResult != 2 {
		t.Error("result tuples must cost 2 units (create + send)")
	}
}
