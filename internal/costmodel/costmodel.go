// Package costmodel holds the calibrated cost parameters of the simulated
// PRISMA/DB machine and the paper's join cost function.
//
// Two distinct things live here and must not be confused:
//
//   - Params: the machine model used by the execution engine to advance the
//     virtual clock (how long hashing a tuple takes, how long the scheduler
//     needs to initialize one operation process, and so on). These are
//     calibrated so that the *shapes* of the paper's response-time curves
//     are reproduced; absolute 1995 timings of a 68020 are not a target.
//
//   - JoinCost: the deliberately simple cost function of Section 4.3,
//     cost = a*n1 + b*n2 + c*r, used by the SE, RD and FP strategies to
//     allocate processors proportionally to estimated work, and by the
//     phase-1 optimizer to pick a minimal-total-cost tree. The paper argues
//     a more precise estimate is impossible anyway because parallelization
//     itself changes the real costs.
package costmodel

import "multijoin/internal/sim"

// Unit costs of single actions on a tuple, expressed in abstract work units
// exactly as in Section 4.3: hashing a tuple, retrieving a tuple from the
// network, creating a result tuple and sending it over the network all take
// "the same order of magnitude, which is taken as unity".
const (
	UnitsHash       = 1.0 // hash an operand tuple into a hash table
	UnitsNetReceive = 1.0 // retrieve a tuple from the network
	UnitsResult     = 2.0 // create a result tuple and send it to the consumer

	// UnitsProbe is the extra hash-table action of the pipelining
	// hash-join: where the simple algorithm performs one table action per
	// tuple (insert during build, lookup during probe), the symmetric
	// algorithm both probes the other operand's table and inserts into its
	// own for *every* tuple (Section 2.3.2) — result tuples come earlier
	// at the cost of a second hash table and more per-tuple work.
	UnitsProbe = 1.0
)

// Params is the machine model of the simulated shared-nothing
// multiprocessor. All durations are virtual time.
type Params struct {
	// TupleUnit is the duration of one abstract work unit (one single
	// action on one tuple: hash, receive, ...). The 68020 nodes of
	// PRISMA/DB spent on the order of a hundred microseconds per tuple
	// action; the default is calibrated against the paper's figures.
	TupleUnit sim.Duration

	// ScanUnits is the per-tuple work (in units) of reading a tuple from a
	// locally stored fragment. The paper's cost function does not charge
	// for scanning; a small nonzero value models the memory traversal that
	// feeds the joins.
	ScanUnits float64

	// Startup is the time the scheduler needs to claim and initialize one
	// operation process. Initialization is performed sequentially by the
	// per-query scheduler, so total startup time grows linearly with the
	// number of operation processes — the effect that makes SP degrade at
	// high degrees of parallelism (Section 3.5, "startup").
	Startup sim.Duration

	// Handshake is the cost paid by each endpoint of one tuple stream
	// before transport can start (Section 3.5, "coordination"). An operand
	// redistribution from n producer processes to m consumer processes
	// opens n*m streams.
	Handshake sim.Duration

	// NetLatency is the transfer latency of one batch between two
	// different processors. Local (same-processor) delivery is immediate.
	NetLatency sim.Duration

	// BatchTuples is the number of tuples per transport batch in the
	// simulator's cost model. It controls the granularity of pipelining:
	// consumers see data only after a producer fills (or flushes) a
	// batch, which is the source of the "delay over the pipeline". The
	// goroutine runtimes transport larger columnar vectors by default
	// (parallel.DefaultBatchTuples); this parameter stays the paper's
	// modeled batch size.
	BatchTuples int

	// RecordUtilization retains per-processor busy intervals so that
	// utilization diagrams (Figures 3, 4, 6, 7) can be rendered.
	RecordUtilization bool

	// EventLimit bounds the number of simulation events as a runaway
	// safety net. Zero means no limit.
	EventLimit uint64
}

// Default returns the calibrated machine model. Calibration targets (see
// EXPERIMENTS.md): with the 10-relation Wisconsin chain query of the paper,
// SP response time degrades beyond roughly 40 processors for the 5K problem
// while FP keeps improving, SE wins the wide bushy 40K experiment, RD wins
// right-oriented trees, and absolute response times land in the same
// few-seconds to tens-of-seconds range as Figures 9-13.
func Default() Params {
	return Params{
		TupleUnit:   120 * sim.Microsecond,
		ScanUnits:   0.25,
		Startup:     15 * sim.Millisecond,
		Handshake:   5 * sim.Millisecond,
		NetLatency:  8 * sim.Millisecond,
		BatchTuples: 64,
	}
}

// WorkCost converts an abstract number of work units into virtual time.
func (p Params) WorkCost(units float64) sim.Duration {
	if units <= 0 {
		return 0
	}
	return sim.Duration(units * float64(p.TupleUnit))
}

// JoinCost is the paper's cost function for one binary join (Section 4.3):
//
//	cost = a*n1 + b*n2 + c*r
//
// where n1, n2 are operand cardinalities, r the result cardinality, a (resp.
// b) is 1 if the corresponding operand is a base relation and 2 if it is an
// intermediate result (the extra unit pays for retrieving the tuple from the
// network), and c = 2 (creating and sending each result tuple).
func JoinCost(n1, n2, r float64, base1, base2 bool) float64 {
	a, b := 2.0, 2.0
	if base1 {
		a = 1.0
	}
	if base2 {
		b = 1.0
	}
	return a*n1 + b*n2 + 2.0*r
}
