package costmodel

import (
	"testing"
	"time"
)

// TestCalibrateSmoke is the CI calibration smoke: a deliberately tiny sweep
// must produce finite, positive per-action costs, a usable wall-time
// estimator, and a Params whose durations stay positive after rescaling.
// It asserts orders of magnitude only — absolute values are host-dependent.
func TestCalibrateSmoke(t *testing.T) {
	cal, err := Calibrate(CalibrateOptions{Tuples: 4096, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cal.IsZero() {
		t.Fatal("Calibrate returned a zero calibration")
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"HashNanos", cal.HashNanos},
		{"ProbeNanos", cal.ProbeNanos},
		{"TransportNanos", cal.TransportNanos},
		{"BatchNanos", cal.BatchNanos},
		{"StartupNanos", cal.StartupNanos},
		{"UnitNanos", cal.UnitNanos},
	} {
		if !(c.v > 0) {
			t.Errorf("%s = %v, want > 0", c.name, c.v)
		}
		if c.v > 1e9 {
			t.Errorf("%s = %v ns, implausibly slow for a per-action cost", c.name, c.v)
		}
	}
	// More work must predict more wall time; more processors less.
	w1 := cal.EstimateWall(1e6, 1)
	w2 := cal.EstimateWall(2e6, 1)
	w4 := cal.EstimateWall(2e6, 4)
	if !(w2 > w1) {
		t.Errorf("EstimateWall not monotone in units: %v vs %v", w1, w2)
	}
	if !(w4 < w2) {
		t.Errorf("EstimateWall not decreasing in procs: %v vs %v", w2, w4)
	}
	if w1 <= 0 || w1 > time.Hour {
		t.Errorf("EstimateWall(1e6, 1) = %v, outside plausible range", w1)
	}
	p := cal.Params()
	if p.TupleUnit < 1 || p.Startup < 1 || p.NetLatency < 1 {
		t.Errorf("Params rescaling produced non-positive durations: %+v", p)
	}
}

// TestCalibrationZero pins the IsZero sentinel the engine uses to decide
// whether a calibration was installed.
func TestCalibrationZero(t *testing.T) {
	var c Calibration
	if !c.IsZero() {
		t.Error("zero Calibration must report IsZero")
	}
	c.UnitNanos = 25
	if c.IsZero() {
		t.Error("non-zero Calibration must not report IsZero")
	}
}
