// Calibration: fitting the abstract cost model to this host.
//
// The paper's cost function counts abstract per-tuple work units (hash,
// probe, receive, result — Section 4.3); Params turns them into *virtual*
// time on the simulated 1995 machine. For the advisor and the Engine's
// cost-based admission to predict anything about a run on the goroutine
// runtimes, one more number is needed: what one work unit costs in wall
// time on the machine actually executing. Calibrate measures exactly that
// with micro-runs of the runtime's own kernels — hash-table build, batch
// probe, batch transport through a channel, goroutine startup — and fits a
// per-unit wall cost by least squares over the unit weights the model
// assigns those actions.
package costmodel

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"multijoin/internal/hashjoin"
	"multijoin/internal/relation"
	"multijoin/internal/sim"
)

// Calibration holds host-measured wall costs of the cost model's abstract
// actions, fitted by Calibrate. The zero value means "not calibrated"; use
// IsZero to detect it.
type Calibration struct {
	// HashNanos is the measured wall cost of hashing one tuple into a hash
	// table (the model's UnitsHash action).
	HashNanos float64
	// ProbeNanos is the measured per-tuple wall cost of probing a complete
	// table and emitting the (one, on the chain workload) result tuple —
	// the model's UnitsProbe + UnitsResult actions.
	ProbeNanos float64
	// TransportNanos is the measured per-tuple wall cost of moving a tuple
	// through a pooled transport batch and a channel (UnitsNetReceive).
	TransportNanos float64
	// BatchNanos is the fixed per-batch channel/handoff overhead, separated
	// from TransportNanos by measuring two batch sizes — the wall analogue
	// of Params.NetLatency.
	BatchNanos float64
	// StartupNanos is the measured cost of launching one goroutine — the
	// wall analogue of Params.Startup for one operation process.
	StartupNanos float64
	// UnitNanos is the least-squares fit of the wall cost of one abstract
	// work unit over the three per-tuple observations above. It is the
	// number the Engine's admission policy multiplies JoinCost sums by.
	UnitNanos float64
}

// IsZero reports whether the calibration is the zero value (not measured).
func (c Calibration) IsZero() bool { return c == Calibration{} }

// EstimateWall converts an abstract work-unit total into predicted wall
// time on the calibrated host, assuming the work spreads over procs
// processors with perfect speedup. procs < 1 means 1.
func (c Calibration) EstimateWall(units float64, procs int) time.Duration {
	if procs < 1 {
		procs = 1
	}
	if units <= 0 || c.UnitNanos <= 0 {
		return 0
	}
	return time.Duration(units * c.UnitNanos / float64(procs))
}

// Params maps the calibration onto the simulator's machine model: every
// duration of Default() is rescaled by the ratio of the fitted unit cost to
// the default TupleUnit, so the virtual clock ticks at this host's speed
// while the model's relative structure (startup ≫ handshake ≫ per-tuple)
// is preserved. sim.Duration is microsecond-granular, so sub-microsecond
// action costs quantize: durations are clamped to at least one tick, and
// wall predictions should use EstimateWall (exact) rather than the
// returned Params.
func (c Calibration) Params() Params {
	p := Default()
	if c.UnitNanos <= 0 {
		return p
	}
	scale := c.UnitNanos / (float64(p.TupleUnit) * 1e3) // default unit in ns
	rescale := func(d sim.Duration) sim.Duration {
		s := sim.Duration(math.Round(float64(d) * scale))
		if s < 1 {
			s = 1
		}
		return s
	}
	p.TupleUnit = rescale(p.TupleUnit)
	p.Startup = rescale(p.Startup)
	p.Handshake = rescale(p.Handshake)
	p.NetLatency = rescale(p.NetLatency)
	return p
}

// CalibrateOptions scales the calibration micro-runs.
type CalibrateOptions struct {
	// Tuples is the operand size of each micro-run. Zero means 1<<15 —
	// large enough that per-tuple costs dominate fixed setup, small enough
	// to finish in tens of milliseconds.
	Tuples int
	// Rounds is how many times each micro-run repeats; the median timing is
	// kept (micro-benchmarks without a harness need outlier rejection).
	// Zero means 3.
	Rounds int
}

// Calibrate runs the micro-run sweep and fits a Calibration. It executes
// the runtime's own kernels — hashjoin table build and vectorized probe,
// pooled-batch transport through a buffered channel at two batch sizes (to
// separate per-tuple copy cost from per-batch handoff cost), goroutine
// startup — and returns an error if any fitted cost comes out non-finite
// or non-positive (a broken clock, not a usable model).
func Calibrate(opt CalibrateOptions) (Calibration, error) {
	n := opt.Tuples
	if n < 1 {
		n = 1 << 15
	}
	if n < 256 {
		n = 256 // below this, fixed overheads drown the per-tuple signal
	}
	rounds := opt.Rounds
	if rounds < 1 {
		rounds = 3
	}

	build := relation.NewBatch(n)
	probe := relation.NewBatch(n)
	for i := 0; i < n; i++ {
		v := int64(i)
		build.Append(v, v, uint64(i)) // build side keyed on Unique2
		probe.Append(v, v, uint64(i)) // probe side keyed on Unique1
	}
	spec := hashjoin.Spec{BuildIsLower: true}

	var hashNs, probeNs float64
	{
		var scratch relation.Batch
		hashTimes := make([]float64, 0, rounds)
		probeTimes := make([]float64, 0, rounds)
		for r := 0; r < rounds; r++ {
			j := hashjoin.NewSimpleSized(spec, n)
			start := time.Now()
			j.InsertBatch(build)
			hashTimes = append(hashTimes, float64(time.Since(start)))
			scratch.Reset()
			start = time.Now()
			j.ProbeBatchInto(&scratch, probe)
			probeTimes = append(probeTimes, float64(time.Since(start)))
			if scratch.Len() != n {
				return Calibration{}, fmt.Errorf("costmodel: calibration probe produced %d results, want %d", scratch.Len(), n)
			}
			j.Release()
		}
		hashNs = median(hashTimes) / float64(n)
		probeNs = median(probeTimes) / float64(n)
	}

	// Transport at two batch sizes: T(bt) ≈ n·perTuple + (n/bt)·perBatch.
	small, large := 64, 512
	tSmall, err := transportRun(build, small, rounds)
	if err != nil {
		return Calibration{}, err
	}
	tLarge, err := transportRun(build, large, rounds)
	if err != nil {
		return Calibration{}, err
	}
	batches := func(bt int) float64 { return math.Ceil(float64(n) / float64(bt)) }
	perBatch := (tSmall - tLarge) / (batches(small) - batches(large))
	perTuple := (tSmall - batches(small)*perBatch) / float64(n)
	if perBatch < 1 {
		perBatch = 1 // two noisy samples can invert; clamp, don't fail
	}
	if perTuple < 0.1 {
		perTuple = 0.1
	}

	startupNs := startupRun(rounds)

	// Least-squares fit of one per-unit wall cost u over the per-tuple
	// observations (measured_i ≈ units_i · u): u = Σ m·w / Σ w².
	type obs struct{ measured, units float64 }
	observations := []obs{
		{hashNs, UnitsHash},
		{probeNs, UnitsProbe + UnitsResult},
		{perTuple, UnitsNetReceive},
	}
	var num, den float64
	for _, o := range observations {
		num += o.measured * o.units
		den += o.units * o.units
	}
	c := Calibration{
		HashNanos:      hashNs,
		ProbeNanos:     probeNs,
		TransportNanos: perTuple,
		BatchNanos:     perBatch,
		StartupNanos:   startupNs,
		UnitNanos:      num / den,
	}
	for name, v := range map[string]float64{
		"HashNanos": c.HashNanos, "ProbeNanos": c.ProbeNanos,
		"TransportNanos": c.TransportNanos, "BatchNanos": c.BatchNanos,
		"StartupNanos": c.StartupNanos, "UnitNanos": c.UnitNanos,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return Calibration{}, fmt.Errorf("costmodel: calibration produced non-positive %s = %v", name, v)
		}
	}
	return c, nil
}

// transportRun measures moving src's tuples through pooled batches of bt
// tuples over a buffered channel — a producer goroutine chunking into the
// pool's batches, the caller draining and returning them — and reports the
// median total wall time in nanoseconds.
func transportRun(src *relation.Batch, bt, rounds int) (float64, error) {
	pool := relation.NewBatchPool(bt, 16)
	times := make([]float64, 0, rounds)
	n := src.Len()
	for r := 0; r < rounds; r++ {
		ch := make(chan *relation.Batch, 4)
		start := time.Now()
		go func() {
			for lo := 0; lo < n; {
				b := pool.Get()
				hi := lo + bt
				if hi > n {
					hi = n
				}
				b.AppendRange(src, lo, hi)
				lo = hi
				ch <- b
			}
			close(ch)
		}()
		got := 0
		for b := range ch {
			got += b.Len()
			pool.Put(b)
		}
		times = append(times, float64(time.Since(start)))
		if got != n {
			return 0, fmt.Errorf("costmodel: calibration transport moved %d tuples, want %d", got, n)
		}
	}
	return median(times), nil
}

// startupRun measures launching one goroutine (spawn to first instruction),
// the wall analogue of the scheduler's per-process Startup cost.
func startupRun(rounds int) float64 {
	const g = 512
	times := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		wg.Add(g)
		start := time.Now()
		for i := 0; i < g; i++ {
			go wg.Done()
		}
		wg.Wait()
		times = append(times, float64(time.Since(start))/g)
	}
	return median(times)
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}
