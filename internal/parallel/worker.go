package parallel

import (
	"time"

	"multijoin/internal/hashjoin"
	"multijoin/internal/relation"
	"multijoin/internal/xra"
)

// inst is one operation process: an operator replica bound to one plan
// processor id, running as one worker goroutine.
type inst struct {
	r    *runtimeState
	op   *opState
	idx  int
	proc int

	// Input side.
	mailbox  chan item
	incoming []*stream
	eosWant  map[port]int
	eosGot   map[port]int
	stash    []item // input buffered while After dependencies are pending

	// Join algorithm state (exactly one is non-nil for join operators).
	simple    *hashjoin.Simple
	pipe      *hashjoin.Pipelining
	buildDone bool
	probeWait []item // probe batches buffered during the simple join's build phase

	// Scan state.
	scanTuples []relation.Tuple

	// Output side: one stream and one batch buffer per destination
	// process (a single destination on local edges).
	outs    []*stream
	outBufs [][]relation.Tuple

	// Collect state.
	gathered *relation.Relation
}

// run is the worker goroutine body. It first buffers any input that arrives
// while the operator's After dependencies are pending — draining the
// mailbox unconditionally is what makes dependency waiting deadlock-free:
// producers are never blocked forever by a consumer that is not allowed to
// start yet. Once the dependencies complete it replays the stash and then
// processes live input until every incoming stream has ended.
func (w *inst) run() {
	defer w.r.wg.Done()
	done := w.r.ctx.Done()
	for waiting := len(w.op.deps) > 0; waiting; {
		select {
		case <-w.op.ready:
			waiting = false
		case it := <-w.mailbox:
			w.stash = append(w.stash, it)
		case <-done:
			return
		}
	}
	w.initState()
	if w.op.op.Kind == xra.OpScan {
		w.emitScan()
	}
	for _, it := range w.stash {
		w.handle(it)
	}
	w.stash = nil
	for !w.allEOS() {
		select {
		case it := <-w.mailbox:
			w.handle(it)
		case <-done:
			return
		}
	}
	if w.r.ctx.Err() != nil {
		// Cancelled while draining: the partial output must not be
		// reported as a completed operator.
		return
	}
	w.finish()
}

// initState creates the join algorithm state once processing may begin.
func (w *inst) initState() {
	spec := hashjoin.Spec{BuildIsLower: w.op.op.BuildIsLower}
	switch w.op.op.Kind {
	case xra.OpSimpleJoin:
		w.simple = hashjoin.NewSimple(spec)
	case xra.OpPipeJoin:
		w.pipe = hashjoin.NewPipelining(spec)
	}
}

// allEOS reports whether every incoming stream has delivered its
// end-of-stream marker.
func (w *inst) allEOS() bool {
	for p, want := range w.eosWant {
		if w.eosGot[p] < want {
			return false
		}
	}
	return true
}

// handle applies one mailbox item to the operator state, computing under
// the processor semaphore and emitting any result tuples downstream.
func (w *inst) handle(it item) {
	if it.eos {
		w.eosGot[it.port]++
		switch w.op.op.Kind {
		case xra.OpPipeJoin:
			if w.eosGot[it.port] == w.eosWant[it.port] {
				// A closed operand lets the pipelining join stop inserting
				// the other operand's tuples (no future match can need them).
				if it.port == portBuild {
					w.pipe.CloseBuildSide()
				} else {
					w.pipe.CloseProbeSide()
				}
			}
		case xra.OpSimpleJoin:
			if it.port == portBuild && w.eosGot[portBuild] == w.eosWant[portBuild] {
				// Build phase complete: release the buffered probe input in
				// arrival order.
				w.buildDone = true
				pending := w.probeWait
				w.probeWait = nil
				for _, p := range pending {
					w.handle(p)
				}
			}
		}
		return
	}
	switch w.op.op.Kind {
	case xra.OpSimpleJoin:
		if it.port == portBuild {
			w.compute(func() { w.simple.Insert(it.tuples) })
			return
		}
		if !w.buildDone {
			// The simple hash-join blocks its probe operand until the hash
			// table is complete.
			w.probeWait = append(w.probeWait, it)
			return
		}
		var out []relation.Tuple
		w.compute(func() { out = w.simple.Probe(it.tuples) })
		w.emit(out)
	case xra.OpPipeJoin:
		var out []relation.Tuple
		w.compute(func() {
			if it.port == portBuild {
				out = w.pipe.FromBuildSide(it.tuples)
			} else {
				out = w.pipe.FromProbeSide(it.tuples)
			}
		})
		w.emit(out)
	case xra.OpCollect:
		w.gathered.Append(it.tuples...)
	}
}

// compute runs one batch of operator work holding one of the MaxProcs
// processor slots. Channel operations never happen under the semaphore: a
// process blocked on transport has released its processor. A cancelled
// context skips the work instead of queueing for a slot.
func (w *inst) compute(f func()) {
	select {
	case w.r.sem <- struct{}{}:
	case <-w.r.ctx.Done():
		return
	}
	f()
	<-w.r.sem
}

// emitScan streams the pre-placed base relation fragment downstream in
// batches. Scan work is a slice traversal and is not charged against the
// processor cap (the simulator's near-zero ScanUnits).
func (w *inst) emitScan() {
	b := w.r.cfg.BatchTuples
	for lo := 0; lo < len(w.scanTuples); lo += b {
		hi := lo + b
		if hi > len(w.scanTuples) {
			hi = len(w.scanTuples)
		}
		w.emit(w.scanTuples[lo:hi])
	}
}

// emit routes result tuples into per-destination batch buffers — hashing
// the consumer's routing attribute over its processes exactly like the
// simulator — and flushes full batches.
func (w *inst) emit(results []relation.Tuple) {
	if len(results) == 0 || w.op.edge == nil {
		return
	}
	if len(w.outs) == 1 {
		w.outBufs[0] = append(w.outBufs[0], results...)
	} else {
		m := len(w.outs)
		route := w.op.edge.route
		for _, t := range results {
			d := relation.HashKey(t.Get(route), m)
			w.outBufs[d] = append(w.outBufs[d], t)
		}
	}
	for d := range w.outBufs {
		if len(w.outBufs[d]) >= w.r.cfg.BatchTuples {
			w.flush(d)
		}
	}
}

// flush sends buffer d down its stream, transferring ownership of the
// batch. The final gather at the collect operator is excluded from the
// transport statistics, as in the simulator.
func (w *inst) flush(d int) {
	buf := w.outBufs[d]
	if len(buf) == 0 {
		return
	}
	w.outBufs[d] = nil
	s := w.outs[d]
	if w.op.edge.to.op.Kind != xra.OpCollect {
		if s.remote {
			w.r.remoteTuples.Add(int64(len(buf)))
		} else {
			w.r.localTuples.Add(int64(len(buf)))
		}
		w.r.batches.Add(1)
	}
	select {
	case s.ch <- buf:
	case <-w.r.ctx.Done():
	}
}

// finish flushes remaining buffers, ends every outgoing stream, and reports
// operator completion when the last sibling process finishes.
func (w *inst) finish() {
	if w.op.edge != nil {
		for d := range w.outBufs {
			w.flush(d)
		}
		for _, s := range w.outs {
			close(s.ch)
		}
	}
	if w.op.remaining.Add(-1) == 0 {
		w.op.wallDone = time.Since(w.r.start)
		close(w.op.done)
	}
}
