package parallel

import (
	"time"

	"multijoin/internal/hashjoin"
	"multijoin/internal/relation"
	"multijoin/internal/xra"
)

// inst is one operation process: an operator replica bound to one plan
// processor id, running as one worker goroutine. Operator state changes are
// executed by the processor's dispatcher (see runtimeState.dispatch); the
// worker goroutine itself only moves batches.
type inst struct {
	r    *runtimeState
	op   *opState
	idx  int
	proc int
	// local reports whether this process runs on this node; a non-local
	// instance of a partial run is only a routing target (its streams are
	// served by the transport) and is never launched.
	local bool

	// Run-queue side: the processor's queue, the completion signal
	// (buffered 1 — a worker has at most one task outstanding), and the
	// scratch buffer the dispatcher leaves join results in. scratch is
	// handed back and forth through the queue/taskDone synchronization, so
	// exactly one goroutine touches it at a time.
	queue    chan task
	taskDone chan struct{}
	scratch  relation.Batch

	// Input side.
	mailbox  chan item
	incoming []*stream
	eosWant  map[port]int
	eosGot   map[port]int
	stash    []item // input buffered while After dependencies are pending

	// Join algorithm state (exactly one is non-nil for join operators).
	// grace replaces both in-memory algorithms when the run has a memory
	// budget (Config.MemoryBudget): the operands are partitioned — to disk
	// when over budget — and joined partition-at-a-time after both ended.
	simple    *hashjoin.Simple
	pipe      *hashjoin.Pipelining
	grace     *hashjoin.Grace
	buildDone bool
	probeWait []item // probe batches buffered during the simple join's build phase

	// Scan state: the pre-placed base relation fragment in columnar form.
	scanBatch relation.Batch

	// Output side: one stream and one pooled batch buffer per destination
	// process (a single destination on local edges). A nil buffer is
	// replaced from the pool on first use after each flush. emitTuples and
	// emitPool are the per-stream transport batch size and its matching
	// pool, chosen in setup from the operator's estimated per-stream
	// cardinality (the run default when the stream is expected to fill it).
	outs       []*stream
	outBufs    []*relation.Batch
	emitTuples int
	emitPool   *relation.BatchPool

	// Collect state.
	gathered *relation.Relation
}

// run is the worker goroutine body. It first buffers any input that arrives
// while the operator's After dependencies are pending — draining the
// mailbox unconditionally is what makes dependency waiting deadlock-free:
// producers are never blocked forever by a consumer that is not allowed to
// start yet. Once the dependencies complete it replays the stash and then
// processes live input until every incoming stream has ended.
func (w *inst) run() {
	defer w.r.wg.Done()
	done := w.r.ctx.Done()
	for waiting := len(w.op.deps) > 0; waiting; {
		select {
		case <-w.op.ready:
			waiting = false
		case it := <-w.mailbox:
			w.stash = append(w.stash, it)
		case <-done:
			return
		}
	}
	w.initState()
	if w.op.op.Kind == xra.OpScan {
		w.emitScan()
	}
	for _, it := range w.stash {
		if !w.handle(it) {
			return
		}
	}
	w.stash = nil
	for !w.allEOS() {
		select {
		case it := <-w.mailbox:
			if !w.handle(it) {
				return
			}
		case <-done:
			return
		}
	}
	if w.r.ctx.Err() != nil {
		// Cancelled while draining: the partial output must not be
		// reported as a completed operator.
		return
	}
	if w.grace != nil {
		// Out-of-core join: both operands have ended; join the partitions
		// one at a time, emitting result chunks downstream. This runs on
		// the worker goroutine, not the processor dispatcher — it may
		// block on file I/O and on downstream channel sends, and blocked
		// processes must not occupy a processor.
		err := w.grace.Drain(func(results *relation.Batch) error {
			w.emit(results)
			return w.r.ctx.Err()
		})
		if err != nil {
			if w.r.ctx.Err() == nil {
				w.r.fail(err)
			}
			return
		}
	}
	w.finish()
}

// initState creates the join algorithm state once processing may begin,
// with hash tables sized from the operator's estimated per-process operand
// cardinality so steady-state inserts never rehash.
func (w *inst) initState() {
	if w.grace != nil {
		return // out-of-core: the Grace join was created in setup
	}
	spec := hashjoin.Spec{BuildIsLower: w.op.op.BuildIsLower}
	hint := relation.PerFragmentCap(w.op.estCard, len(w.op.instances))
	switch w.op.op.Kind {
	case xra.OpSimpleJoin:
		w.simple = hashjoin.NewSimpleSized(spec, hint)
	case xra.OpPipeJoin:
		w.pipe = hashjoin.NewPipeliningSized(spec, hint)
	default:
		return
	}
	// Probing a full transport batch produces about one match per row on
	// the chain queries; presizing the result scratch to twice that keeps
	// steady-state probes from regrowing it column by column.
	w.scratch = *relation.NewBatch(2 * w.r.cfg.BatchTuples)
}

// allEOS reports whether every incoming stream has delivered its
// end-of-stream marker.
func (w *inst) allEOS() bool {
	for p, want := range w.eosWant {
		if w.eosGot[p] < want {
			return false
		}
	}
	return true
}

// handle applies one mailbox item to the operator state — computing on the
// process's run-queue dispatcher — emits any result tuples downstream, and
// returns the exhausted batch to the pool. It reports false when the run
// was cancelled mid-item; the batch then stays with the dispatcher, which
// may still be reading it.
func (w *inst) handle(it item) bool {
	if w.grace != nil {
		return w.handleGrace(it)
	}
	if it.eos {
		w.eosGot[it.port]++
		switch w.op.op.Kind {
		case xra.OpPipeJoin:
			if w.eosGot[it.port] == w.eosWant[it.port] {
				// A closed operand lets the pipelining join stop inserting
				// the other operand's tuples (no future match can need
				// them). The worker has no task in flight here, so mutating
				// the join state directly cannot race with its dispatcher.
				if it.port == portBuild {
					w.pipe.CloseBuildSide()
				} else {
					w.pipe.CloseProbeSide()
				}
			}
		case xra.OpSimpleJoin:
			if it.port == portBuild && w.eosGot[portBuild] == w.eosWant[portBuild] {
				// Build phase complete: release the buffered probe input in
				// arrival order.
				w.buildDone = true
				pending := w.probeWait
				w.probeWait = nil
				for _, p := range pending {
					if !w.handle(p) {
						return false
					}
				}
			}
		}
		return true
	}
	switch w.op.op.Kind {
	case xra.OpSimpleJoin:
		if it.port == portProbe && !w.buildDone {
			// The simple hash-join blocks its probe operand until the hash
			// table is complete; the batch stays queued (and pool-owned by
			// this process) until then.
			w.probeWait = append(w.probeWait, it)
			return true
		}
		if !w.dispatch(it) {
			return false
		}
		if it.port == portProbe {
			w.emit(&w.scratch)
		}
	case xra.OpPipeJoin:
		if !w.dispatch(it) {
			return false
		}
		w.emit(&w.scratch)
	case xra.OpCollect:
		if w.r.sink != nil {
			// Streaming: hand the pooled batch to the cursor. Ownership
			// transfers with the Push; the consumer's release (invoked on
			// its Next past the batch, or during Close-drain) returns it to
			// the run's pool. Push blocks until the consumer accepts the
			// batch — the backpressure that makes the whole plan stream —
			// and fails only when the run is cancelled.
			batch := it.batch
			n := batch.Len() // before Push: ownership transfers with it
			if err := w.r.sink.Push(w.r.ctx, batch, func() { w.r.putBatch(batch) }); err != nil {
				return false
			}
			w.r.resultTuples.Add(int64(n))
			return true
		}
		it.batch.AppendTo(w.gathered)
	}
	w.r.putBatch(it.batch)
	return true
}

// handleGrace applies one mailbox item to an out-of-core join: data batches
// are hash-partitioned (and spilled to disk while the run is over budget)
// on the worker goroutine itself — partitioning may block on file I/O,
// which must not occupy a modeled processor — and end-of-stream markers
// only count toward allEOS; the join produces all output in the drain after
// both operands ended. It reports false when partitioning failed (the run
// is torn down via runtimeState.fail).
func (w *inst) handleGrace(it item) bool {
	if it.eos {
		w.eosGot[it.port]++
		return true
	}
	var err error
	if it.port == portBuild {
		err = w.grace.AddBuild(it.batch)
	} else {
		err = w.grace.AddProbe(it.batch)
	}
	if err != nil {
		w.r.fail(err)
		return false
	}
	w.r.putBatch(it.batch)
	return true
}

// dispatch hands one item to the processor's run queue and waits for the
// dispatcher to apply it (results, if any, are left in w.scratch). It
// reports false when the run was cancelled instead.
func (w *inst) dispatch(it item) bool {
	select {
	case w.queue <- task{w: w, it: it}:
	case <-w.r.ctx.Done():
		return false
	}
	select {
	case <-w.taskDone:
		return true
	case <-w.r.ctx.Done():
		return false
	}
}

// applyJoin runs on the run-queue dispatcher of w's processor: it applies
// one input batch to the join state machine, leaving any result tuples in
// w.scratch. All processes of one plan processor execute here serially —
// the shared-nothing node model.
func (w *inst) applyJoin(it item) {
	switch w.op.op.Kind {
	case xra.OpSimpleJoin:
		if it.port == portBuild {
			w.simple.InsertBatch(it.batch)
			return
		}
		w.scratch.Reset()
		w.simple.ProbeBatchInto(&w.scratch, it.batch)
	case xra.OpPipeJoin:
		w.scratch.Reset()
		if it.port == portBuild {
			w.pipe.FromBuildSideBatchInto(&w.scratch, it.batch)
		} else {
			w.pipe.FromProbeSideBatchInto(&w.scratch, it.batch)
		}
	}
}

// emitScan streams the pre-placed base relation fragment downstream. Scan
// work is a column copy (emit chunks into pooled transport batches) and is
// not charged to the run queue (the simulator's near-zero ScanUnits).
func (w *inst) emitScan() {
	w.emit(&w.scanBatch)
}

// emit routes result tuples into per-destination pooled batch buffers —
// hashing the consumer's routing attribute over its processes exactly like
// the simulator — and flushes batches the moment they are full, so a
// pooled buffer never regrows past its fixed capacity. The single-
// destination path is three bulk column copies per chunk; redistribution
// hoists the routing key column and scatters row-at-a-time over flat
// columns.
func (w *inst) emit(results *relation.Batch) {
	n := results.Len()
	if n == 0 || w.op.edge == nil {
		return
	}
	bt := w.emitTuples
	if len(w.outs) == 1 {
		for lo := 0; lo < n; {
			buf := w.outBufs[0]
			if buf == nil {
				buf = w.emitPool.Get()
				w.outBufs[0] = buf
			}
			c := bt - buf.Len()
			if c > n-lo {
				c = n - lo
			}
			buf.AppendRange(results, lo, lo+c)
			lo += c
			if buf.Len() == bt {
				w.flush(0)
			}
		}
		return
	}
	bk := relation.NewBucketer(len(w.outs))
	keys := results.Col(w.op.edge.route)
	for i := 0; i < n; i++ {
		d := bk.Bucket(keys[i])
		buf := w.outBufs[d]
		if buf == nil {
			buf = w.emitPool.Get()
			w.outBufs[d] = buf
		}
		buf.Append(results.U1[i], results.U2[i], results.Check[i])
		if buf.Len() == bt {
			w.flush(d)
		}
	}
}

// flush sends buffer d down its stream, transferring ownership of the
// pooled batch to the consumer (which returns it to the pool once
// exhausted). The final gather at the collect operator is excluded from the
// transport statistics, as in the simulator.
func (w *inst) flush(d int) {
	buf := w.outBufs[d]
	if buf == nil || buf.Len() == 0 {
		return
	}
	w.outBufs[d] = nil
	s := w.outs[d]
	if w.op.edge.to.op.Kind != xra.OpCollect {
		if s.remote {
			w.r.remoteTuples.Add(int64(buf.Len()))
		} else {
			w.r.localTuples.Add(int64(buf.Len()))
		}
		w.r.batches.Add(1)
	}
	select {
	case s.ch <- buf:
	case <-w.r.ctx.Done():
	}
}

// finish flushes remaining buffers, ends every outgoing stream, and reports
// operator completion when the last sibling process finishes.
func (w *inst) finish() {
	if w.op.edge != nil {
		for d := range w.outBufs {
			w.flush(d)
		}
		for _, s := range w.outs {
			close(s.ch)
		}
	}
	// The join state is dead once the output streams are closed; recycle
	// its table memory for the joins still running.
	if w.simple != nil {
		w.simple.Release()
		w.simple = nil
	}
	if w.pipe != nil {
		w.pipe.Release()
		w.pipe = nil
	}
	if w.op.remaining.Add(-1) == 0 {
		w.op.wallDone = time.Since(w.r.start)
		close(w.op.done)
	}
}
