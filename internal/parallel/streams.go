package parallel

import (
	"multijoin/internal/relation"
	"multijoin/internal/xra"
)

// StreamSpec identifies one tuple stream of a plan in the canonical
// enumeration every node of a distributed run agrees on: streams are listed
// producer-op by producer-op in plan order; a local (scan-aligned) edge
// contributes one stream per process pair (i -> i), a redistribution edge
// one stream per producer-instance x consumer-instance pair, producer-major.
// The ID is the stream's index in that enumeration — a pure function of the
// plan, so a coordinator and its workers can wire the same stream to the
// same TCP frames without exchanging any wiring metadata.
type StreamSpec struct {
	// ID is the stream's index in the canonical enumeration.
	ID int
	// From and To are the producer and consumer operators.
	From, To *xra.Op
	// In is the consumer's input edge this stream feeds (routing attribute,
	// logical port).
	In *xra.Input
	// FromIdx and ToIdx are the producer and consumer instance indices
	// (positions in the operators' Procs lists).
	FromIdx, ToIdx int
	// FromProc and ToProc are the plan processor ids the endpoint processes
	// are bound to.
	FromProc, ToProc int
	// LocalEdge reports whether the stream belongs to a scan-aligned local
	// edge (one stream per process, no redistribution).
	LocalEdge bool
}

// Streams enumerates every tuple stream of the plan in the canonical order.
// len(Streams(p)) == p.NumStreams() for any valid plan.
func Streams(plan *xra.Plan) []StreamSpec {
	type edge struct {
		to *xra.Op
		in *xra.Input
	}
	consumers := make(map[string]edge, len(plan.Ops))
	for _, o := range plan.Ops {
		for _, in := range o.Inputs() {
			consumers[in.From] = edge{to: o, in: in}
		}
	}
	var specs []StreamSpec
	for _, from := range plan.Ops {
		c, ok := consumers[from.ID]
		if !ok {
			continue // collect: no consumer
		}
		if xra.LocalEdge(from, c.to, c.in) {
			for i := range from.Procs {
				specs = append(specs, StreamSpec{
					ID: len(specs), From: from, To: c.to, In: c.in,
					FromIdx: i, ToIdx: i,
					FromProc: from.Procs[i], ToProc: c.to.Procs[i],
					LocalEdge: true,
				})
			}
			continue
		}
		for i, fp := range from.Procs {
			for d, tp := range c.to.Procs {
				specs = append(specs, StreamSpec{
					ID: len(specs), From: from, To: c.to, In: c.in,
					FromIdx: i, ToIdx: d,
					FromProc: fp, ToProc: tp,
				})
			}
		}
	}
	return specs
}

// InstanceInStreams counts the canonical streams feeding consumer instance
// idx of operator op. This is the per-round token multiplicity a
// punctuation (quiescence) barrier over the plan's streams must wait for:
// a resident view network sends one end-of-round token down every stream,
// and a consumer instance is quiescent for the round once it has collected
// one token per incoming stream (internal/ivm).
func InstanceInStreams(specs []StreamSpec, op *xra.Op, idx int) int {
	n := 0
	for _, s := range specs {
		if s.To == op && s.ToIdx == idx {
			n++
		}
	}
	return n
}

// Partial configures a partial execution of a plan: only the operation
// processes whose plan processor id is Local execute on this node; streams
// that cross the node boundary are handed to a transport through the
// Ingress/Egress hooks instead of being wired process-to-process. This is
// the reuse seam of the distributed runtime (internal/dist): every node of
// a distributed run executes the ordinary worker loop of this package over
// its own process subset, and only the transport differs.
type Partial struct {
	// Local reports whether the processes bound to plan processor id proc
	// execute on this node. It must be a pure function of proc, and the
	// union of all nodes' Local sets must cover the plan exactly once.
	Local func(proc int) bool

	// Ingress is called during setup for every stream whose producer is
	// remote and whose consumer is local, identified by its canonical
	// stream id (Streams). The transport must feed decoded batches into ch
	// and close ch at end-of-stream; batches must come from BatchPool so
	// the consuming process can return them after use.
	Ingress func(id int, ch chan *relation.Batch)

	// Egress is called during setup for every stream whose producer is
	// local and whose consumer is remote. The transport must drain ch until
	// it is closed (the producer's end-of-stream), forward each batch, and
	// return it to BatchPool; it must also stop draining when the run
	// context is cancelled.
	Egress func(id int, ch chan *relation.Batch)

	// ScanFragment returns the pre-placed base relation fragment of local
	// scan instance idx of operator opID — the distributed substitute for
	// in-process fragmentation (the coordinator fragments once and ships
	// each worker its fragments). It is only called for local scan
	// instances and may be nil on nodes that host none.
	ScanFragment func(opID string, idx int) relation.Batch

	// LeafCard returns the total cardinality of base relation leaf, used
	// for downstream size estimates exactly like rel.Card() in-process.
	LeafCard func(leaf int) int

	// BatchPool, when set, replaces the run's private pool so the transport
	// and the run recycle the same batches. Its batch capacity must equal
	// the resolved Config.BatchTuples.
	BatchPool *relation.BatchPool
}
