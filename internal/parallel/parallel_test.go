package parallel_test

import (
	"fmt"
	"testing"

	"multijoin/internal/core"
	"multijoin/internal/jointree"
	"multijoin/internal/parallel"
	"multijoin/internal/relation"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
	"multijoin/internal/xra"
)

// testDB returns a small deterministic chain database (seed-pinned so every
// run, including CI's -race runs, sees identical data).
func testDB(t testing.TB, relations, card int) *wisconsin.Database {
	t.Helper()
	db, err := wisconsin.Chain(wisconsin.Config{Relations: relations, Cardinality: card, Seed: 1995})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func planFor(t testing.TB, db *wisconsin.Database, tree *jointree.Node, kind strategy.Kind, procs int) *core.Query {
	t.Helper()
	return &core.Query{DB: db, Tree: tree, Strategy: kind, Procs: procs}
}

// TestResultEquivalence checks the acceptance criterion: the goroutine
// runtime returns the identical result multiset as the sequential reference
// (and therefore as the simulator, which is verified against the same
// reference elsewhere) for all four strategies on linear and wide-bushy
// trees.
func TestResultEquivalence(t *testing.T) {
	db := testDB(t, 6, 400)
	shapes := []jointree.Shape{jointree.LeftLinear, jointree.RightLinear, jointree.WideBushy}
	for _, shape := range shapes {
		tree, err := jointree.BuildShape(shape, 6)
		if err != nil {
			t.Fatal(err)
		}
		want := core.Reference(db, tree)
		for _, kind := range strategy.Kinds {
			t.Run(fmt.Sprintf("%v/%v", shape, kind), func(t *testing.T) {
				q := planFor(t, db, tree, kind, 12)
				res, err := core.ExecuteParallel(*q, parallel.Config{})
				if err != nil {
					t.Fatal(err)
				}
				if diff := relation.DiffMultiset(res.Result, want); diff != "" {
					t.Fatalf("%v/%v: parallel result differs from reference: %s", shape, kind, diff)
				}
				if res.Stats.ResultTuples != want.Card() {
					t.Fatalf("ResultTuples = %d, want %d", res.Stats.ResultTuples, want.Card())
				}
			})
		}
	}
}

// TestSimulatorEquivalence runs the same plan through both runtimes and
// compares the result multisets directly.
func TestSimulatorEquivalence(t *testing.T) {
	db := testDB(t, 5, 300)
	tree, err := jointree.BuildShape(jointree.WideBushy, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range strategy.Kinds {
		q := core.Query{DB: db, Tree: tree, Strategy: kind, Procs: 10}
		sim, err := core.Verify(q)
		if err != nil {
			t.Fatal(err)
		}
		par, err := core.ExecuteParallel(q, parallel.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if diff := relation.DiffMultiset(par.Result, sim.Result); diff != "" {
			t.Fatalf("%v: parallel vs simulator: %s", kind, diff)
		}
	}
}

// TestStructuralCounters checks that the runtime opens exactly the stream
// and process structure the plan declares — the quantities engine.Stats
// counts on the virtual machine.
func TestStructuralCounters(t *testing.T) {
	db := testDB(t, 5, 200)
	tree, err := jointree.BuildShape(jointree.LeftLinear, 5)
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{DB: db, Tree: tree, Strategy: strategy.FP, Procs: 8}
	plan, err := q.Plan()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.ExecuteParallel(q, parallel.Config{MaxProcs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Processes != plan.NumProcesses() {
		t.Errorf("Processes = %d, want %d", res.Stats.Processes, plan.NumProcesses())
	}
	if res.Stats.Streams != plan.NumStreams() {
		t.Errorf("Streams = %d, want %d", res.Stats.Streams, plan.NumStreams())
	}
	if res.Stats.MaxProcs != 4 {
		t.Errorf("MaxProcs = %d, want 4", res.Stats.MaxProcs)
	}
	if res.Stats.Goroutines < plan.NumProcesses()+plan.NumStreams() {
		t.Errorf("Goroutines = %d, want at least processes+streams = %d",
			res.Stats.Goroutines, plan.NumProcesses()+plan.NumStreams())
	}
	if len(res.Stats.OpWall) != len(plan.Ops) {
		t.Errorf("OpWall has %d entries, want %d", len(res.Stats.OpWall), len(plan.Ops))
	}
	if res.WallTime <= 0 {
		t.Errorf("WallTime = %v, want > 0", res.WallTime)
	}
}

// TestProcessorCapExtremes runs with the tightest possible cap (a single
// run-queue dispatcher serializing every operation process) and a cap far
// above the plan's parallelism: both must produce the reference result.
// MaxProcs=1 in particular proves no dispatcher ever blocks on a channel
// operation a worker is responsible for.
func TestProcessorCapExtremes(t *testing.T) {
	db := testDB(t, 5, 300)
	tree, err := jointree.BuildShape(jointree.WideBushy, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := core.Reference(db, tree)
	for _, maxProcs := range []int{1, 2, 64} {
		for _, kind := range strategy.Kinds {
			q := core.Query{DB: db, Tree: tree, Strategy: kind, Procs: 10}
			res, err := core.ExecuteParallel(q, parallel.Config{MaxProcs: maxProcs})
			if err != nil {
				t.Fatalf("MaxProcs=%d %v: %v", maxProcs, kind, err)
			}
			if diff := relation.DiffMultiset(res.Result, want); diff != "" {
				t.Fatalf("MaxProcs=%d %v: %s", maxProcs, kind, diff)
			}
		}
	}
}

// TestBatchAndDepthExtremes exercises pipelining granularity edge cases:
// single-tuple batches (maximal stream traffic) and depth-1 channels
// (maximal backpressure) — the configurations most likely to deadlock a
// buggy dependency or build-phase gate.
func TestBatchAndDepthExtremes(t *testing.T) {
	db := testDB(t, 4, 150)
	tree, err := jointree.BuildShape(jointree.LeftLinear, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := core.Reference(db, tree)
	for _, cfg := range []parallel.Config{
		{BatchTuples: 1, ChannelDepth: 1},
		{BatchTuples: 7, ChannelDepth: 1},
		{BatchTuples: 1024, ChannelDepth: 2},
	} {
		for _, kind := range strategy.Kinds {
			q := core.Query{DB: db, Tree: tree, Strategy: kind, Procs: 8}
			res, err := core.ExecuteParallel(q, cfg)
			if err != nil {
				t.Fatalf("%+v %v: %v", cfg, kind, err)
			}
			if diff := relation.DiffMultiset(res.Result, want); diff != "" {
				t.Fatalf("%+v %v: %s", cfg, kind, diff)
			}
		}
	}
}

// TestPooledPathEquivalence pins the allocation-free data path — pooled
// batches, open-addressing hash tables, per-processor run queues — to the
// sequential reference at the BenchmarkExecAlloc shape (left-linear, 80
// plan processors), with batch sizes small enough to force heavy pool
// recycling. The provenance checksums in the multiset comparison prove
// every tuple was combined exactly once: a batch recycled while still
// aliased anywhere would corrupt a checksum and fail the diff.
func TestPooledPathEquivalence(t *testing.T) {
	db := testDB(t, 6, 400)
	tree, err := jointree.BuildShape(jointree.LeftLinear, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := core.Reference(db, tree)
	for _, cfg := range []parallel.Config{
		{MaxProcs: 1, BatchTuples: 3, ChannelDepth: 1},
		{MaxProcs: 3, BatchTuples: 16, ChannelDepth: 2},
		{BatchTuples: 64}, // the plan's own 80 processors, one queue each
	} {
		for _, kind := range strategy.Kinds {
			q := core.Query{DB: db, Tree: tree, Strategy: kind, Procs: 80}
			res, err := core.ExecuteParallel(q, cfg)
			if err != nil {
				t.Fatalf("%+v %v: %v", cfg, kind, err)
			}
			if diff := relation.DiffMultiset(res.Result, want); diff != "" {
				t.Fatalf("%+v %v: %s", cfg, kind, diff)
			}
		}
	}
}

// TestVerifyParallel exercises the public verification path.
func TestVerifyParallel(t *testing.T) {
	db := testDB(t, 5, 250)
	tree, err := jointree.BuildShape(jointree.RightBushy, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range strategy.Kinds {
		if _, err := core.VerifyParallel(core.Query{DB: db, Tree: tree, Strategy: kind, Procs: 10}, parallel.Config{}); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

// TestRaceStress is the -race stress test: many concurrent small queries
// across every strategy, exercising scheduler interleavings of workers,
// forwarders and dependency waiters. Data is seed-pinned; only goroutine
// scheduling varies between runs.
func TestRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	db := testDB(t, 4, 120)
	trees := make([]*jointree.Node, 0, 2)
	for _, shape := range []jointree.Shape{jointree.LeftLinear, jointree.WideBushy} {
		tree, err := jointree.BuildShape(shape, 4)
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tree)
	}
	wants := []*relation.Relation{core.Reference(db, trees[0]), core.Reference(db, trees[1])}
	const rounds = 8
	errc := make(chan error, rounds*len(strategy.Kinds)*len(trees))
	for round := 0; round < rounds; round++ {
		for ti, tree := range trees {
			for _, kind := range strategy.Kinds {
				tree, kind, want := tree, kind, wants[ti]
				go func() {
					q := core.Query{DB: db, Tree: tree, Strategy: kind, Procs: 8}
					res, err := core.ExecuteParallel(q, parallel.Config{BatchTuples: 16, ChannelDepth: 1})
					if err != nil {
						errc <- err
						return
					}
					if diff := relation.DiffMultiset(res.Result, want); diff != "" {
						errc <- fmt.Errorf("%v: %s", kind, diff)
						return
					}
					errc <- nil
				}()
			}
		}
	}
	for i := 0; i < rounds*len(strategy.Kinds)*len(trees); i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// TestInvalidPlan checks input validation paths.
func TestInvalidPlan(t *testing.T) {
	if _, err := parallel.Run(&xra.Plan{}, nil, parallel.Config{}); err == nil {
		t.Fatal("empty plan must be rejected")
	}
}
