// Package parallel executes xra plans with real goroutine concurrency — the
// wall-clock counterpart of the discrete-event simulator in package engine.
//
// The simulator reproduces the paper's *structural* cost effects on a
// virtual clock; this package runs the very same plans on the host machine
// so that the FP-vs-RD pipelining tradeoffs can be measured on real cores:
//
//   - every operation process of the plan (one operator replica per
//     processor in Op.Procs) becomes one worker goroutine;
//   - every tuple stream becomes one buffered channel — n×m channels per
//     redistribution edge from n producer to m consumer processes, n
//     channels per local edge — exactly the stream structure counted by
//     engine.Stats and xra.Plan.NumStreams;
//   - operand redistribution hash-partitions result batches over the
//     consumer's processes with relation.HashKey, identical to the
//     simulator, so both runtimes compute the identical result multiset;
//   - the plan's processor count is modeled by a counting semaphore: at
//     most MaxProcs operation processes compute at any instant, while
//     channel sends and receives are never performed under the semaphore
//     (blocked processes release their processor, as on a real machine);
//   - Op.After start dependencies are honored without deadlock: a process
//     whose dependencies are pending keeps draining its input into an
//     unbounded stash (the simulator's "input arriving earlier is
//     buffered") and processes it once the dependencies complete.
//
// The join operators reuse the hash-join state machines of package
// hashjoin; the simple join blocks its probe operand until the build phase
// ends, the pipelining join processes both operands as they arrive. Result
// equivalence against the sequential reference is asserted for every
// strategy in the tests.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"multijoin/internal/relation"
	"multijoin/internal/xra"
)

// HostCap returns procs bounded by the host's GOMAXPROCS: the MaxProcs to
// use when a plan targets more processors than the machine has cores.
// Plans must keep their full processor count (RD and FP need one processor
// per concurrently executing join); only the semaphore is capped.
func HostCap(procs int) int {
	if n := runtime.GOMAXPROCS(0); procs > n {
		return n
	}
	return procs
}

// Config parameterizes one parallel execution.
type Config struct {
	// MaxProcs caps the number of operation processes computing
	// concurrently — the semaphore modeling p physical processors. Zero
	// means the plan's own processor count (MaxProc+1), i.e. the machine
	// the plan was generated for.
	MaxProcs int
	// BatchTuples is the number of tuples per transport batch (the
	// pipelining granularity). Zero means DefaultBatchTuples.
	BatchTuples int
	// ChannelDepth is the buffer capacity, in batches, of each tuple
	// stream channel. Zero means DefaultChannelDepth.
	ChannelDepth int
}

// Defaults for Config zero values.
const (
	DefaultBatchTuples  = 64
	DefaultChannelDepth = 4
)

func (c Config) withDefaults(plan *xra.Plan) Config {
	if c.MaxProcs < 1 {
		c.MaxProcs = plan.MaxProc() + 1
		if c.MaxProcs < 1 {
			c.MaxProcs = 1
		}
	}
	if c.BatchTuples < 1 {
		c.BatchTuples = DefaultBatchTuples
	}
	if c.ChannelDepth < 1 {
		c.ChannelDepth = DefaultChannelDepth
	}
	return c
}

// Stats aggregates the structural counters of one parallel run, mirroring
// engine.Stats where the quantity is meaningful on a real machine.
type Stats struct {
	// Processes is the number of operation processes (worker goroutines).
	Processes int
	// Streams is the number of tuple-stream channels opened.
	Streams int
	// Goroutines is the total number of goroutines launched: workers,
	// one stream forwarder per incoming stream, and dependency waiters.
	Goroutines int
	// MaxProcs is the effective processor cap.
	MaxProcs int
	// TuplesMovedRemote counts tuples that crossed plan-processor
	// boundaries (producer and consumer process bound to different
	// processor ids).
	TuplesMovedRemote int64
	// TuplesLocal counts tuples delivered between processes bound to the
	// same processor id.
	TuplesLocal int64
	// Batches counts delivered data batches.
	Batches int64
	// ResultTuples is the cardinality of the final result.
	ResultTuples int
	// OpWall maps operator ids to their wall-clock completion offset from
	// query start.
	OpWall map[string]time.Duration
}

// RunResult is the outcome of one parallel execution.
type RunResult struct {
	// Result is the collected final relation (real tuples, same multiset
	// as the simulator and the sequential reference).
	Result *relation.Relation
	// WallTime is the elapsed real time from launch to the completion of
	// the last operation process.
	WallTime time.Duration
	// Stats holds structural counters.
	Stats Stats
}

// port identifies one logical input of an operator (same roles as the
// simulator's ports).
type port int

const (
	portBuild port = iota
	portProbe
	portIn
)

// item is one unit of work in a process's mailbox: a data batch or an
// end-of-stream marker for one port.
type item struct {
	port   port
	tuples []relation.Tuple
	eos    bool
}

// stream is one tuple stream: a buffered channel from one producer process
// to one consumer process. Closing the channel ends the stream.
type stream struct {
	ch     chan []relation.Tuple
	port   port
	remote bool // producer and consumer bound to different processor ids
}

// consumerEdge describes where an operator's output goes.
type consumerEdge struct {
	to    *opState
	port  port
	route relation.Attr
	local bool
}

// opState is the shared runtime state of one plan operator.
type opState struct {
	op        *xra.Op
	instances []*inst
	edge      *consumerEdge // nil only for collect
	deps      []*opState

	ready     chan struct{} // closed when all After dependencies completed
	done      chan struct{} // closed when all instances finished
	remaining atomic.Int32
	wallDone  time.Duration // written by the closing instance before close(done)
}

// runtimeState carries one execution.
type runtimeState struct {
	plan  *xra.Plan
	cfg   Config
	ctx   context.Context
	sem   chan struct{}
	ops   map[string]*opState
	order []*opState

	collect *inst
	start   time.Time
	wg      sync.WaitGroup

	goroutines   int
	remoteTuples atomic.Int64
	localTuples  atomic.Int64
	batches      atomic.Int64
}

// Run executes the plan against the base relations (leaf index → relation)
// with real goroutine concurrency and returns the collected result and
// wall-clock statistics.
func Run(plan *xra.Plan, base func(leaf int) *relation.Relation, cfg Config) (*RunResult, error) {
	return RunContext(context.Background(), plan, base, cfg)
}

// RunContext is Run with cancellation: every worker goroutine, stream
// forwarder and dependency waiter selects on ctx.Done() at each blocking
// point, so a cancelled query tears the whole process tree down — no
// goroutine outlives the call — and the context's error is returned instead
// of a partial result.
func RunContext(ctx context.Context, plan *xra.Plan, base func(leaf int) *relation.Relation, cfg Config) (*RunResult, error) {
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("parallel: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("parallel: %w", err)
	}
	r := &runtimeState{
		plan: plan,
		cfg:  cfg.withDefaults(plan),
		ctx:  ctx,
		ops:  make(map[string]*opState, len(plan.Ops)),
	}
	r.sem = make(chan struct{}, r.cfg.MaxProcs)
	if err := r.setup(base); err != nil {
		return nil, err
	}
	r.start = time.Now()
	r.launch()
	r.wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("parallel: %w", err)
	}
	return r.finish(), nil
}

// setup builds operator and process state, wires dependency edges, creates
// one channel per tuple stream, and pre-places base relation fragments.
func (r *runtimeState) setup(base func(leaf int) *relation.Relation) error {
	for _, op := range r.plan.Ops {
		os := &opState{op: op, ready: make(chan struct{}), done: make(chan struct{})}
		os.remaining.Store(int32(len(op.Procs)))
		r.ops[op.ID] = os
		r.order = append(r.order, os)
	}
	// Wire consumer edges and After dependencies.
	for _, os := range r.order {
		for _, in := range os.op.Inputs() {
			from := r.ops[in.From]
			from.edge = &consumerEdge{
				to:    os,
				port:  portOf(os.op, in),
				route: in.Route,
				local: xra.LocalEdge(from.op, os.op, in),
			}
		}
		for _, a := range os.op.After {
			os.deps = append(os.deps, r.ops[a])
		}
	}
	// Create one process (worker) per operator replica.
	for _, os := range r.order {
		for i, procID := range os.op.Procs {
			w := &inst{
				r:      r,
				op:     os,
				idx:    i,
				proc:   procID,
				eosGot: make(map[port]int),
			}
			os.instances = append(os.instances, w)
		}
		if os.op.Kind == xra.OpCollect {
			r.collect = os.instances[0]
			r.collect.gathered = relation.New("result", 0)
		}
	}
	// Pre-place base relation fragments: ideal initial fragmentation
	// (Section 4.1), identical to the simulator — fragment i of a scan
	// goes to scan process i.
	for _, os := range r.order {
		if os.op.Kind != xra.OpScan {
			continue
		}
		rel := base(os.op.Leaf)
		if rel == nil {
			return fmt.Errorf("parallel: no base relation for leaf %d", os.op.Leaf)
		}
		if r.collect.gathered.TupleBytes == 0 {
			r.collect.gathered.TupleBytes = rel.TupleBytes
		}
		frags := relation.Fragment(rel, os.op.FragAttr, len(os.instances))
		for i, w := range os.instances {
			w.scanTuples = frags[i].Tuples
		}
	}
	// Open the tuple streams: on a local edge, producer process i feeds
	// consumer process i over one channel; on a redistribution edge every
	// producer process opens one channel to every consumer process.
	for _, os := range r.order {
		c := os.edge
		if c == nil {
			continue
		}
		for _, w := range os.instances {
			if c.local {
				dest := c.to.instances[w.idx]
				s := r.newStream(c.port, w.proc, dest.proc)
				w.outs = []*stream{s}
				dest.incoming = append(dest.incoming, s)
			} else {
				w.outs = make([]*stream, len(c.to.instances))
				for d, dest := range c.to.instances {
					s := r.newStream(c.port, w.proc, dest.proc)
					w.outs[d] = s
					dest.incoming = append(dest.incoming, s)
				}
			}
			w.outBufs = make([][]relation.Tuple, len(w.outs))
		}
	}
	// End-of-stream accounting and mailboxes: every incoming stream
	// delivers exactly one end-of-stream marker on its port.
	for _, os := range r.order {
		for _, w := range os.instances {
			w.eosWant = make(map[port]int)
			for _, s := range w.incoming {
				w.eosWant[s.port]++
			}
			depth := len(w.incoming) * r.cfg.ChannelDepth
			if depth < 1 {
				depth = 1
			}
			w.mailbox = make(chan item, depth)
		}
	}
	return nil
}

func (r *runtimeState) newStream(p port, fromProc, toProc int) *stream {
	return &stream{
		ch:     make(chan []relation.Tuple, r.cfg.ChannelDepth),
		port:   p,
		remote: fromProc != toProc,
	}
}

// portOf resolves which logical port an input feeds, by identity with the
// operator's input fields (as the simulator does).
func portOf(op *xra.Op, in *xra.Input) port {
	switch in {
	case op.Build:
		return portBuild
	case op.Probe:
		return portProbe
	default:
		return portIn
	}
}

// launch starts dependency waiters, stream forwarders and workers. Every
// blocking channel operation selects on ctx.Done() so cancellation unwinds
// the whole goroutine tree.
func (r *runtimeState) launch() {
	done := r.ctx.Done()
	for _, os := range r.order {
		os := os
		if len(os.deps) == 0 {
			close(os.ready)
		} else {
			r.wg.Add(1)
			r.goroutines++
			go func() {
				defer r.wg.Done()
				for _, d := range os.deps {
					select {
					case <-d.done:
					case <-done:
						return
					}
				}
				close(os.ready)
			}()
		}
		for _, w := range os.instances {
			w := w
			for _, s := range w.incoming {
				s := s
				r.wg.Add(1)
				r.goroutines++
				go func() {
					defer r.wg.Done()
					for {
						select {
						case b, ok := <-s.ch:
							if !ok {
								select {
								case w.mailbox <- item{port: s.port, eos: true}:
								case <-done:
								}
								return
							}
							select {
							case w.mailbox <- item{port: s.port, tuples: b}:
							case <-done:
								return
							}
						case <-done:
							return
						}
					}
				}()
			}
			r.wg.Add(1)
			r.goroutines++
			go w.run()
		}
	}
}

// finish assembles the run result after every goroutine exited.
func (r *runtimeState) finish() *RunResult {
	var last time.Duration
	opWall := make(map[string]time.Duration, len(r.order))
	for _, os := range r.order {
		opWall[os.op.ID] = os.wallDone
		if os.op.Kind != xra.OpCollect && os.wallDone > last {
			last = os.wallDone
		}
	}
	return &RunResult{
		Result:   r.collect.gathered,
		WallTime: last,
		Stats: Stats{
			Processes:         r.plan.NumProcesses(),
			Streams:           r.plan.NumStreams(),
			Goroutines:        r.goroutines,
			MaxProcs:          r.cfg.MaxProcs,
			TuplesMovedRemote: r.remoteTuples.Load(),
			TuplesLocal:       r.localTuples.Load(),
			Batches:           r.batches.Load(),
			ResultTuples:      r.collect.gathered.Card(),
			OpWall:            opWall,
		},
	}
}
