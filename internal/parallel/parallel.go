// Package parallel executes xra plans with real goroutine concurrency — the
// wall-clock counterpart of the discrete-event simulator in package engine.
//
// The simulator reproduces the paper's *structural* cost effects on a
// virtual clock; this package runs the very same plans on the host machine
// so that the FP-vs-RD pipelining tradeoffs can be measured on real cores:
//
//   - every operation process of the plan (one operator replica per
//     processor in Op.Procs) becomes one worker goroutine;
//   - every tuple stream becomes one buffered channel — n×m channels per
//     redistribution edge from n producer to m consumer processes, n
//     channels per local edge — exactly the stream structure counted by
//     engine.Stats and xra.Plan.NumStreams;
//   - operand redistribution hash-partitions result batches over the
//     consumer's processes with relation.HashKey, identical to the
//     simulator, so both runtimes compute the identical result multiset;
//   - the plan's processors are modeled by per-processor run queues: one
//     dispatcher goroutine per modeled processor executes the operator work
//     of every process bound (by plan processor id, modulo MaxProcs) to it,
//     serializing a processor's operation processes exactly like the
//     paper's shared-nothing nodes. Channel sends and receives never run on
//     a dispatcher (blocked processes occupy no processor, as on a real
//     machine);
//   - Op.After start dependencies are honored without deadlock: a process
//     whose dependencies are pending keeps draining its input into an
//     unbounded stash (the simulator's "input arriving earlier is
//     buffered") and processes it once the dependencies complete.
//
// The hot data path is allocation-free in steady state: tuple batches come
// from a relation.BatchPool and are returned by the consumer that exhausts
// them, join results are built in per-process scratch buffers, and the join
// operators reuse the open-addressing hash-join state machines of package
// hashjoin sized from the operands' declared cardinalities. The simple join
// blocks its probe operand until the build phase ends, the pipelining join
// processes both operands as they arrive. Result equivalence against the
// sequential reference is asserted for every strategy in the tests.
package parallel

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"multijoin/internal/hashjoin"
	"multijoin/internal/relation"
	"multijoin/internal/spill"
	"multijoin/internal/xra"
)

// HostCap returns procs bounded by the host's GOMAXPROCS: the MaxProcs to
// use when a plan targets more processors than the machine has cores.
// Plans must keep their full processor count (RD and FP need one processor
// per concurrently executing join); only the dispatcher count is capped.
func HostCap(procs int) int {
	if n := runtime.GOMAXPROCS(0); procs > n {
		return n
	}
	return procs
}

// Sink consumes the final result stream of one run. The runtime transfers
// batch ownership with every Push: release (which may be nil) returns the
// batch to its pool and must be called exactly once, when the consumer has
// finished with the tuples. Push blocks until the consumer accepts the
// batch — streaming backpressure — or ctx is cancelled, in which case it
// returns the context's error and keeps ownership of the batch.
type Sink interface {
	Push(ctx context.Context, batch *relation.Batch, release func()) error
}

// sharedQueueDepth is the buffered capacity of each shared run queue. A
// worker has at most one task outstanding, so queued tasks never exceed the
// live worker count; the buffer only smooths bursts — a full queue simply
// blocks the producing worker (which selects on its run's cancellation).
const sharedQueueDepth = 256

// ProcPool is a shared set of modeled processors: one run-queue dispatcher
// goroutine each, serving the operation processes of *every* run configured
// with the pool (Config.Pool). It is the session-level resource that caps
// concurrent computation across in-flight queries — the engine's
// counterpart of a per-run dispatcher set. Close stops the dispatchers; it
// must not be called while runs still use the pool.
type ProcPool struct {
	queues []chan task
	stop   chan struct{}
	wg     sync.WaitGroup
}

// NewProcPool starts a pool of n modeled processors (n < 1 means
// GOMAXPROCS). Plan processor id p is served by dispatcher p mod n.
func NewProcPool(n int) *ProcPool {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &ProcPool{queues: make([]chan task, n), stop: make(chan struct{})}
	for i := range p.queues {
		q := make(chan task, sharedQueueDepth)
		p.queues[i] = q
		p.wg.Add(1)
		go p.dispatch(q)
	}
	return p
}

// Size returns the number of modeled processors (dispatchers).
func (p *ProcPool) Size() int { return len(p.queues) }

// Close stops every dispatcher and waits for them to exit. Tasks of
// cancelled runs that are still queued are drained (their workers have
// already unwound; completing the task is harmless and never blocks).
func (p *ProcPool) Close() {
	close(p.stop)
	p.wg.Wait()
}

// dispatch is one shared modeled processor. Unlike a per-run dispatcher it
// must not exit on any single run's cancellation: a cancelled run's workers
// unwind on their own, and a stale queued task is completed harmlessly (the
// taskDone send is buffered for the one task its worker had outstanding).
func (p *ProcPool) dispatch(q chan task) {
	defer p.wg.Done()
	for {
		select {
		case t := <-q:
			t.w.applyJoin(t.it)
			t.w.taskDone <- struct{}{}
		case <-p.stop:
			return
		}
	}
}

// Config parameterizes one parallel execution.
type Config struct {
	// MaxProcs is the number of modeled processors: one run-queue
	// dispatcher goroutine each. Plan processor id p maps to dispatcher
	// p mod MaxProcs, so at most MaxProcs operation processes compute at
	// any instant and processes sharing a plan processor are serialized on
	// the same dispatcher. Zero means the plan's own processor count
	// (MaxProc+1), i.e. the machine the plan was generated for.
	MaxProcs int
	// BatchTuples is the number of tuples per transport batch (the
	// pipelining granularity and the batch-pool capacity). Zero means
	// DefaultBatchTuples.
	BatchTuples int
	// ChannelDepth is the buffer capacity, in batches, of each tuple
	// stream channel; it is resolved once per run, not per edge. A
	// process's mailbox is additionally sized to ChannelDepth × its
	// incoming stream count, so that every stream forwarder can buffer a
	// full channel's worth of batches without blocking a producer whose
	// consumer has not been scheduled yet. Zero means DefaultChannelDepth.
	ChannelDepth int
	// MemoryBudget, when positive, switches the run to out-of-core mode
	// (the "spill" runtime): live pooled batches and buffered join
	// operands are accounted against the budget in bytes, join processes
	// use Grace-style partitioned joins (hashjoin.Grace), and operand
	// tuples overflowing the budget are serialized to temp-file partitions
	// that are re-read partition-at-a-time once both operands ended. Zero
	// keeps the in-memory pipelining execution.
	//
	// Out-of-core mode trades the paper's pipelining for the memory
	// bound: every join materializes (partitioned, possibly on disk)
	// before producing output, and join work runs on the worker goroutine
	// rather than the processor dispatcher, since it may block on file
	// I/O. The result multiset is identical to the in-memory runtimes.
	//
	// The budget bounds the partitioning phase (buffered operands plus
	// pooled batches in flight); the drain phase additionally meters the
	// one hash table it rebuilds at a time (its residency stays bounded
	// structurally at ~1/hashjoin.GraceFanout of one operand per process,
	// but the reservation is visible, so concurrent runs on a shared meter
	// spill in response).
	MemoryBudget int64

	// Pool, when set, executes this run's operator work on a shared,
	// long-lived ProcPool instead of launching per-run dispatchers — the
	// engine session mode, where one set of modeled processors caps
	// concurrent computation across every in-flight query. MaxProcs is
	// ignored; the pool's size takes its place.
	Pool *ProcPool

	// Meter, when set, accounts this run against a shared memory budget
	// (an engine session's spill.Meter child) instead of a private
	// NewMeter(MemoryBudget). It implies out-of-core mode like a positive
	// MemoryBudget, whose value is then ignored: the shared meter carries
	// its own budget. The caller owns the meter's lifecycle (Settle).
	Meter *spill.Meter

	// Partial, when set, executes only the operation processes placed on
	// this node and hands node-crossing streams to the configured transport
	// (the distributed runtime's reuse seam — see Partial). Incompatible
	// with Pool and with out-of-core mode (MemoryBudget/Meter).
	Partial *Partial
}

// Defaults for Config zero values.
//
// DefaultBatchTuples is the transport vector size of the goroutine
// runtimes, deliberately larger than the simulator's cost-model granularity
// (costmodel.Params.BatchTuples): every batch send costs a fixed number of
// channel operations and a run-queue handshake, so with columnar batches
// the per-batch overhead amortizes over 4x more tuples while a batch still
// stays a few KB of cache-warm columns.
// DefaultSpillBatchTuples is the transport vector size of memory-budgeted
// (out-of-core) runs. Pooled batches are metered against the run's budget,
// so smaller vectors keep the accounting granularity — and the residency a
// blocked stream pins — fine enough for tight budgets to keep their
// meaning.
const (
	DefaultBatchTuples      = 256
	DefaultSpillBatchTuples = 64
	DefaultChannelDepth     = 4
)

func (c Config) withDefaults(plan *xra.Plan) Config {
	if c.Pool != nil {
		c.MaxProcs = c.Pool.Size()
	} else if c.MaxProcs < 1 {
		c.MaxProcs = plan.MaxProc() + 1
		if c.MaxProcs < 1 {
			c.MaxProcs = 1
		}
	}
	if c.BatchTuples < 1 {
		if c.MemoryBudget > 0 || c.Meter != nil {
			c.BatchTuples = DefaultSpillBatchTuples
		} else {
			c.BatchTuples = DefaultBatchTuples
		}
	}
	if c.ChannelDepth < 1 {
		c.ChannelDepth = DefaultChannelDepth
	}
	return c
}

// Stats aggregates the structural counters of one parallel run, mirroring
// engine.Stats where the quantity is meaningful on a real machine.
type Stats struct {
	// Processes is the number of operation processes (worker goroutines).
	Processes int
	// Streams is the number of tuple-stream channels opened.
	Streams int
	// Goroutines is the total number of goroutines launched: workers,
	// one stream forwarder per incoming stream, dependency waiters, and
	// one dispatcher per modeled processor.
	Goroutines int
	// MaxProcs is the number of modeled processors (run-queue
	// dispatchers).
	MaxProcs int
	// TuplesMovedRemote counts tuples that crossed plan-processor
	// boundaries (producer and consumer process bound to different
	// processor ids).
	TuplesMovedRemote int64
	// TuplesLocal counts tuples delivered between processes bound to the
	// same processor id.
	TuplesLocal int64
	// Batches counts delivered data batches.
	Batches int64
	// ResultTuples is the cardinality of the final result.
	ResultTuples int
	// OpWall maps operator ids to their wall-clock completion offset from
	// query start.
	OpWall map[string]time.Duration

	// Out-of-core counters (zero unless Config.MemoryBudget was set).

	// BytesSpilled is the total bytes written to spill-partition files.
	BytesSpilled int64
	// SpillPartitions is the number of spill-partition files created.
	SpillPartitions int
	// SpillTime is the total wall time spent on spill-file I/O.
	SpillTime time.Duration
}

// RunResult is the outcome of one parallel execution.
type RunResult struct {
	// Result is the collected final relation (real tuples, same multiset
	// as the simulator and the sequential reference).
	Result *relation.Relation
	// WallTime is the elapsed real time from launch to the completion of
	// the last operation process.
	WallTime time.Duration
	// Stats holds structural counters.
	Stats Stats
}

// port identifies one logical input of an operator (same roles as the
// simulator's ports).
type port int

const (
	portBuild port = iota
	portProbe
	portIn
)

// item is one unit of work in a process's mailbox: a data batch or an
// end-of-stream marker for one port. Data batches are pool-owned: the
// consumer that applies one returns it to the run's BatchPool.
type item struct {
	port  port
	batch *relation.Batch
	eos   bool
}

// task is one unit of operator work on a run queue: the process requesting
// computation and the input item to apply. The dispatcher runs the
// operator's state change and signals the process's taskDone channel.
type task struct {
	w  *inst
	it item
}

// stream is one tuple stream: a buffered channel from one producer process
// to one consumer process. Closing the channel ends the stream.
type stream struct {
	ch     chan *relation.Batch
	port   port
	remote bool // producer and consumer bound to different processor ids
}

// consumerEdge describes where an operator's output goes.
type consumerEdge struct {
	to    *opState
	port  port
	route relation.Attr
	local bool
}

// opState is the shared runtime state of one plan operator.
type opState struct {
	op        *xra.Op
	instances []*inst
	edge      *consumerEdge // nil only for collect
	deps      []*opState
	// locals is the number of instances placed on this node (all of them
	// unless the run is partial).
	locals int

	// estCard is the estimated output cardinality of the operator (exact
	// for scans, an upper-bound estimate for the 1:1 chain joins), used to
	// size hash tables and the collect relation up front.
	estCard int

	ready     chan struct{} // closed when all After dependencies completed
	done      chan struct{} // closed when all instances finished
	remaining atomic.Int32
	wallDone  time.Duration // written by the closing instance before close(done)
}

// spillState carries the out-of-core machinery of one budgeted run: the
// memory meter, the per-run temp directory every partition file lives in,
// and the Grace joins to close during cleanup.
type spillState struct {
	meter  *spill.Meter
	dir    string
	graces []*hashjoin.Grace
}

// cleanup closes every Grace join (releasing file descriptors and meter
// reservations) and removes the run's temp directory wholesale. It must run
// after every goroutine of the run has exited.
func (s *spillState) cleanup() {
	for _, g := range s.graces {
		g.Close()
	}
	os.RemoveAll(s.dir)
}

// runtimeState carries one execution.
type runtimeState struct {
	plan    *xra.Plan
	cfg     Config
	ctx     context.Context
	pool    *relation.BatchPool
	retain  int                         // per-pool free-list bound
	pools   map[int]*relation.BatchPool // batch capacity → pool; nil until a sized pool exists
	ops     map[string]*opState
	order   []*opState
	spill   *spillState // nil unless the run is budgeted (MemoryBudget/Meter)
	partial *Partial    // nil for whole-plan (single-node) runs

	// sink, when set, receives the final result stream (collect pushes
	// pooled batches instead of materializing); resultTuples counts what
	// was pushed. When nil, collect gathers into a Relation as before.
	sink         Sink
	resultTuples atomic.Int64

	// failOnce/failErr record the first internal failure (spill I/O); the
	// recording goroutine cancels the run context so every other goroutine
	// unwinds as if the caller had cancelled.
	failOnce  sync.Once
	failErr   error
	cancelRun context.CancelFunc

	// queues are the per-processor run queues, one dispatcher goroutine
	// each; plan processor id p is served by queues[p mod len(queues)].
	queues    []chan task
	queueStop chan struct{} // closed when all workers finished
	dwg       sync.WaitGroup

	collect *inst
	start   time.Time
	wg      sync.WaitGroup

	goroutines   int
	remoteTuples atomic.Int64
	localTuples  atomic.Int64
	batches      atomic.Int64
}

// Run executes the plan against the base relations (leaf index → relation)
// with real goroutine concurrency and returns the collected result and
// wall-clock statistics.
func Run(plan *xra.Plan, base func(leaf int) *relation.Relation, cfg Config) (*RunResult, error) {
	return RunContext(context.Background(), plan, base, cfg)
}

// RunContext is Run with cancellation: every worker goroutine, stream
// forwarder, dispatcher and dependency waiter selects on ctx.Done() at each
// blocking point, so a cancelled query tears the whole process tree down —
// no goroutine outlives the call — and the context's error is returned
// instead of a partial result.
func RunContext(ctx context.Context, plan *xra.Plan, base func(leaf int) *relation.Relation, cfg Config) (*RunResult, error) {
	return run(ctx, plan, base, cfg, nil)
}

// RunStream executes the plan in streaming mode: instead of materializing
// the final relation, the collect process pushes each pooled result batch
// into sink (transferring ownership; the consumer's release returns it to
// the run's pool) and RunResult.Result is nil. Push backpressure propagates
// upstream through the plan's channels, and cancelling ctx mid-stream tears
// every worker down exactly like RunContext.
func RunStream(ctx context.Context, plan *xra.Plan, base func(leaf int) *relation.Relation, cfg Config, sink Sink) (*RunResult, error) {
	if sink == nil {
		return nil, fmt.Errorf("parallel: RunStream needs a sink")
	}
	return run(ctx, plan, base, cfg, sink)
}

func run(ctx context.Context, plan *xra.Plan, base func(leaf int) *relation.Relation, cfg Config, sink Sink) (*RunResult, error) {
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("parallel: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("parallel: %w", err)
	}
	if cfg.Partial != nil {
		if cfg.Partial.Local == nil {
			return nil, fmt.Errorf("parallel: Partial needs a Local placement function")
		}
		if cfg.Partial.Ingress == nil || cfg.Partial.Egress == nil {
			return nil, fmt.Errorf("parallel: Partial needs Ingress and Egress transport hooks")
		}
		if cfg.Pool != nil || cfg.MemoryBudget > 0 || cfg.Meter != nil {
			return nil, fmt.Errorf("parallel: Partial is incompatible with Pool and out-of-core mode")
		}
	}
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	r := &runtimeState{
		plan:      plan,
		cfg:       cfg.withDefaults(plan),
		ctx:       runCtx,
		cancelRun: cancelRun,
		sink:      sink,
		partial:   cfg.Partial,
		ops:       make(map[string]*opState, len(plan.Ops)),
	}
	retain := plan.NumStreams() * (r.cfg.ChannelDepth + 1)
	if retain > relation.MaxPoolRetain {
		retain = relation.MaxPoolRetain
	}
	r.retain = retain
	if r.cfg.MemoryBudget > 0 || r.cfg.Meter != nil {
		dir, err := os.MkdirTemp("", "mjspill-")
		if err != nil {
			return nil, fmt.Errorf("parallel: spill dir: %w", err)
		}
		meter := r.cfg.Meter
		if meter == nil {
			meter = spill.NewMeter(r.cfg.MemoryBudget)
		}
		r.spill = &spillState{meter: meter, dir: dir}
		r.pool = relation.NewBatchPoolAccounted(r.cfg.BatchTuples, retain, meter.Add)
	} else if r.partial != nil && r.partial.BatchPool != nil {
		r.pool = r.partial.BatchPool
	} else {
		r.pool = relation.NewBatchPool(r.cfg.BatchTuples, retain)
	}
	if err := r.setup(base); err != nil {
		if r.spill != nil {
			r.spill.cleanup()
		}
		return nil, err
	}
	r.start = time.Now()
	r.launch()
	r.wg.Wait()
	if r.cfg.Pool == nil {
		close(r.queueStop)
		r.dwg.Wait()
	}
	if r.spill != nil {
		r.spill.cleanup()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("parallel: %w", err)
	}
	if r.failErr != nil {
		return nil, fmt.Errorf("parallel: %w", r.failErr)
	}
	return r.finish(), nil
}

// fail records the first internal failure and cancels the run so every
// goroutine unwinds; RunContext returns the recorded error.
func (r *runtimeState) fail(err error) {
	r.failOnce.Do(func() {
		r.failErr = err
		r.cancelRun()
	})
}

// setup builds operator and process state, wires dependency edges, creates
// one channel per tuple stream and one run queue per modeled processor, and
// pre-places base relation fragments.
func (r *runtimeState) setup(base func(leaf int) *relation.Relation) error {
	for _, op := range r.plan.Ops {
		os := &opState{op: op, ready: make(chan struct{}), done: make(chan struct{})}
		r.ops[op.ID] = os
		r.order = append(r.order, os)
	}
	// Per-processor run queues: plan processor id p maps to queue
	// p mod MaxProcs. A shared pool (engine session) brings its own queues
	// and long-lived dispatchers; otherwise the run creates private queues,
	// buffered for every process so a send can only block while the queue
	// is genuinely backed up.
	if r.cfg.Pool != nil {
		r.queues = r.cfg.Pool.queues
	} else {
		r.queues = make([]chan task, r.cfg.MaxProcs)
		for i := range r.queues {
			r.queues[i] = make(chan task, r.plan.NumProcesses()+1)
		}
		r.queueStop = make(chan struct{})
	}
	// Wire consumer edges and After dependencies.
	for _, os := range r.order {
		for _, in := range os.op.Inputs() {
			from := r.ops[in.From]
			from.edge = &consumerEdge{
				to:    os,
				port:  portOf(os.op, in),
				route: in.Route,
				local: xra.LocalEdge(from.op, os.op, in),
			}
		}
		for _, a := range os.op.After {
			os.deps = append(os.deps, r.ops[a])
		}
	}
	// Create one process (worker) per operator replica, bound to its
	// processor's run queue. In a partial run, instances whose processor is
	// placed on another node exist only as routing targets: they are never
	// launched and own no mailbox. In out-of-core mode every join process
	// gets a Grace join up front (single-threaded here, so registration for
	// cleanup needs no lock).
	for _, os := range r.order {
		for i, procID := range os.op.Procs {
			w := &inst{
				r:          r,
				op:         os,
				idx:        i,
				proc:       procID,
				local:      r.partial == nil || r.partial.Local(procID),
				queue:      r.queues[queueIndex(procID, len(r.queues))],
				taskDone:   make(chan struct{}, 1),
				eosGot:     make(map[port]int),
				emitTuples: r.cfg.BatchTuples,
				emitPool:   r.pool,
			}
			if w.local {
				os.locals++
			}
			if w.local && r.spill != nil && (os.op.Kind == xra.OpSimpleJoin || os.op.Kind == xra.OpPipeJoin) {
				spec := hashjoin.Spec{BuildIsLower: os.op.BuildIsLower}
				w.grace = hashjoin.NewGrace(spec, r.spill.meter, r.spill.dir, r.pool)
				r.spill.graces = append(r.spill.graces, w.grace)
			}
			os.instances = append(os.instances, w)
		}
		os.remaining.Store(int32(os.locals))
		if os.locals == 0 {
			// No process of this operator runs here; its completion is
			// another node's business. Closing done up front keeps local
			// After dependencies on it from blocking (cross-node After
			// ordering is node-local — see internal/dist).
			close(os.done)
		}
	}
	// Pre-place base relation fragments: ideal initial fragmentation
	// (Section 4.1), identical to the simulator — fragment i of a scan
	// goes to scan process i. A partial run receives its fragments
	// pre-placed by the coordinator (Partial.ScanFragment) instead of
	// fragmenting in-process.
	var tupleBytes int
	for _, os := range r.order {
		if os.op.Kind != xra.OpScan {
			continue
		}
		if r.partial != nil {
			if r.partial.LeafCard == nil {
				return fmt.Errorf("parallel: Partial needs LeafCard")
			}
			os.estCard = r.partial.LeafCard(os.op.Leaf)
			for i, w := range os.instances {
				if !w.local {
					continue
				}
				if r.partial.ScanFragment == nil {
					return fmt.Errorf("parallel: Partial needs ScanFragment (local scan %s/%d)", os.op.ID, i)
				}
				w.scanBatch = r.partial.ScanFragment(os.op.ID, i)
			}
			continue
		}
		rel := base(os.op.Leaf)
		if rel == nil {
			return fmt.Errorf("parallel: no base relation for leaf %d", os.op.Leaf)
		}
		if tupleBytes == 0 {
			tupleBytes = rel.TupleBytes
		}
		os.estCard = rel.Card()
		frags := relation.FragmentBatches(rel, os.op.FragAttr, len(os.instances))
		for i, w := range os.instances {
			w.scanBatch = frags[i]
		}
	}
	// Propagate cardinality estimates downstream (plan order lists
	// producers before consumers). The chain query's joins are 1:1, so the
	// larger operand bounds the output; the estimates size hash tables and
	// the collect relation so the hot path never regrows them.
	for _, os := range r.order {
		if os.op.Kind == xra.OpScan {
			continue
		}
		for _, in := range os.op.Inputs() {
			if from := r.ops[in.From]; from.estCard > os.estCard {
				os.estCard = from.estCard
			}
		}
		if os.op.Kind == xra.OpCollect {
			w := os.instances[0]
			if w.local {
				r.collect = w
				if r.sink == nil {
					w.gathered = relation.NewWithCap("result", tupleBytes, os.estCard)
				}
			}
		}
	}
	// Size each producer's transport batches from its estimated per-stream
	// cardinality. A redistribution edge opens producers × consumers streams
	// and a pooled buffer sits on every one of them; with the single global
	// batch size a stream-heavy RD plan pins far more batch memory than
	// tuples it ever moves. A stream expected to carry a few dozen tuples
	// gets a correspondingly small pooled batch instead; batches of
	// different capacities live in per-size pools (putBatch routes returns
	// by capacity, since a pool silently drops — and an accounted pool never
	// un-meters — foreign-capacity batches). Partial (distributed) runs keep
	// the uniform size: the transport owns the pool and peer nodes must
	// agree on wire batch capacity.
	if r.partial == nil {
		for _, os := range r.order {
			if os.edge == nil {
				continue
			}
			dests := len(os.edge.to.instances)
			if os.edge.local {
				dests = 1
			}
			per := os.estCard / (len(os.instances) * dests)
			bt := sizeTransportBatch(per, r.cfg.BatchTuples)
			pool := r.pool
			if bt != r.cfg.BatchTuples {
				pool = r.transportPool(bt)
			}
			for _, w := range os.instances {
				w.emitTuples = bt
				w.emitPool = pool
			}
		}
	}
	// Open the tuple streams, iterating the canonical enumeration (Streams)
	// so a partial run's stream ids can never drift from its peers': on a
	// local edge, producer process i feeds consumer process i over one
	// channel; on a redistribution edge every producer process opens one
	// channel to every consumer process. The per-stream depth is resolved
	// once per run (Config.ChannelDepth). Streams with both endpoints on
	// other nodes are skipped; streams crossing the node boundary keep
	// their channel and hand the far end to the transport.
	depth := r.cfg.ChannelDepth
	specs := Streams(r.plan)
	for i := range specs {
		sp := &specs[i]
		fromOS, toOS := r.ops[sp.From.ID], r.ops[sp.To.ID]
		w := fromOS.instances[sp.FromIdx]
		dest := toOS.instances[sp.ToIdx]
		if !w.local && !dest.local {
			continue
		}
		s := r.newStream(portOf(toOS.op, sp.In), sp.FromProc, sp.ToProc, depth)
		if w.local {
			if w.outs == nil {
				nd := len(toOS.instances)
				if sp.LocalEdge {
					nd = 1
				}
				w.outs = make([]*stream, nd)
				w.outBufs = make([]*relation.Batch, nd)
			}
			d := sp.ToIdx
			if sp.LocalEdge {
				d = 0
			}
			w.outs[d] = s
		}
		if dest.local {
			dest.incoming = append(dest.incoming, s)
			if !w.local {
				r.partial.Ingress(sp.ID, s.ch)
			}
		} else {
			r.partial.Egress(sp.ID, s.ch)
		}
	}
	// End-of-stream accounting and mailboxes: every incoming stream
	// delivers exactly one end-of-stream marker on its port.
	for _, os := range r.order {
		for _, w := range os.instances {
			if !w.local {
				continue
			}
			w.eosWant = make(map[port]int)
			for _, s := range w.incoming {
				w.eosWant[s.port]++
			}
			md := len(w.incoming) * depth
			if md < 1 {
				md = 1
			}
			w.mailbox = make(chan item, md)
		}
	}
	return nil
}

// minTransportTuples is the floor of the per-stream transport batch size:
// below a couple of cache lines per column the per-batch channel and
// run-queue overhead dominates any residency win.
const minTransportTuples = 16

// sizeTransportBatch picks a producer's transport batch capacity: the run's
// configured size when the stream is expected to fill it, otherwise the
// power-of-two ceiling of the expected per-stream tuple count (so pools stay
// few and batch capacities stay round), floored at minTransportTuples.
func sizeTransportBatch(expected, max int) int {
	if expected >= max {
		return max
	}
	bt := minTransportTuples
	for bt < expected {
		bt <<= 1
	}
	if bt > max {
		return max
	}
	return bt
}

// transportPool returns the run's batch pool for the given capacity,
// creating it on first use. Only called from the single-threaded setup;
// the pools map is read-only once workers launch.
func (r *runtimeState) transportPool(bt int) *relation.BatchPool {
	if r.pools == nil {
		r.pools = map[int]*relation.BatchPool{r.cfg.BatchTuples: r.pool}
	}
	if p, ok := r.pools[bt]; ok {
		return p
	}
	var p *relation.BatchPool
	if r.spill != nil {
		p = relation.NewBatchPoolAccounted(bt, r.retain, r.spill.meter.Add)
	} else {
		p = relation.NewBatchPool(bt, r.retain)
	}
	r.pools[bt] = p
	return p
}

// putBatch returns a consumed transport batch to the pool it came from,
// routing by capacity: with per-stream batch sizing a consumer receives
// batches from differently-sized producer pools, and handing a batch to the
// wrong pool would silently drop it — never reversing an accounted pool's
// meter charge until Settle.
func (r *runtimeState) putBatch(b *relation.Batch) {
	if r.pools != nil {
		if p, ok := r.pools[b.Cap()]; ok {
			p.Put(b)
			return
		}
	}
	r.pool.Put(b)
}

// queueIndex maps a plan processor id to its run queue. The scheduler
// host's pseudo id (xra.HostProc, negative) wraps around like any other.
func queueIndex(proc, n int) int {
	i := proc % n
	if i < 0 {
		i += n
	}
	return i
}

func (r *runtimeState) newStream(p port, fromProc, toProc, depth int) *stream {
	return &stream{
		ch:     make(chan *relation.Batch, depth),
		port:   p,
		remote: fromProc != toProc,
	}
}

// portOf resolves which logical port an input feeds, by identity with the
// operator's input fields (as the simulator does).
func portOf(op *xra.Op, in *xra.Input) port {
	switch in {
	case op.Build:
		return portBuild
	case op.Probe:
		return portProbe
	default:
		return portIn
	}
}

// launch starts dispatchers, dependency waiters, stream forwarders and
// workers. Every blocking channel operation selects on ctx.Done() so
// cancellation unwinds the whole goroutine tree.
func (r *runtimeState) launch() {
	done := r.ctx.Done()
	if r.cfg.Pool == nil {
		for _, q := range r.queues {
			q := q
			r.dwg.Add(1)
			r.goroutines++
			go r.dispatch(q)
		}
	}
	for _, os := range r.order {
		os := os
		if len(os.deps) == 0 || os.locals == 0 {
			close(os.ready)
		} else {
			r.wg.Add(1)
			r.goroutines++
			go func() {
				defer r.wg.Done()
				for _, d := range os.deps {
					select {
					case <-d.done:
					case <-done:
						return
					}
				}
				close(os.ready)
			}()
		}
		for _, w := range os.instances {
			w := w
			if !w.local {
				continue
			}
			for _, s := range w.incoming {
				s := s
				r.wg.Add(1)
				r.goroutines++
				go func() {
					defer r.wg.Done()
					for {
						select {
						case b, ok := <-s.ch:
							if !ok {
								select {
								case w.mailbox <- item{port: s.port, eos: true}:
								case <-done:
								}
								return
							}
							select {
							case w.mailbox <- item{port: s.port, batch: b}:
							case <-done:
								return
							}
						case <-done:
							return
						}
					}
				}()
			}
			r.wg.Add(1)
			r.goroutines++
			go w.run()
		}
	}
}

// dispatch is one modeled processor: it serializes the operator work of
// every process bound to its run queue. It exits when all workers finished
// (queueStop) or the run is cancelled.
func (r *runtimeState) dispatch(q chan task) {
	defer r.dwg.Done()
	done := r.ctx.Done()
	for {
		select {
		case t := <-q:
			t.w.applyJoin(t.it)
			// taskDone is buffered for the one outstanding task its worker
			// can have, so this send never blocks.
			t.w.taskDone <- struct{}{}
		case <-r.queueStop:
			return
		case <-done:
			return
		}
	}
}

// finish assembles the run result after every goroutine exited.
func (r *runtimeState) finish() *RunResult {
	var last time.Duration
	opWall := make(map[string]time.Duration, len(r.order))
	for _, os := range r.order {
		opWall[os.op.ID] = os.wallDone
		if os.op.Kind != xra.OpCollect && os.wallDone > last {
			last = os.wallDone
		}
	}
	resultTuples := int(r.resultTuples.Load())
	var gathered *relation.Relation
	if r.collect != nil {
		gathered = r.collect.gathered
		if r.sink == nil {
			resultTuples = gathered.Card()
		}
	}
	res := &RunResult{
		Result:   gathered, // nil in streaming mode (the sink consumed the tuples) and on worker nodes
		WallTime: last,
		Stats: Stats{
			Processes:         r.plan.NumProcesses(),
			Streams:           r.plan.NumStreams(),
			Goroutines:        r.goroutines,
			MaxProcs:          r.cfg.MaxProcs,
			TuplesMovedRemote: r.remoteTuples.Load(),
			TuplesLocal:       r.localTuples.Load(),
			Batches:           r.batches.Load(),
			ResultTuples:      resultTuples,
			OpWall:            opWall,
		},
	}
	if r.spill != nil {
		res.Stats.BytesSpilled = r.spill.meter.SpilledBytes()
		res.Stats.SpillPartitions = r.spill.meter.Partitions()
		res.Stats.SpillTime = r.spill.meter.IOTime()
	}
	return res
}
