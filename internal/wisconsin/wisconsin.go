// Package wisconsin generates the paper's test database: a chain of
// Wisconsin-benchmark relations [BDT83] built so that the 10-relation
// multi-join query of Section 4.1 behaves exactly as described there:
//
//   - every relation has the same cardinality N and 208-byte tuples with two
//     unique integer attributes;
//   - the relations are joined "one-by-one" on integer attributes, and after
//     each join the result is projected so that it is again a Wisconsin
//     relation of cardinality N;
//   - no correlation exists between the two attributes of one relation or
//     between attributes of different relations.
//
// Construction. For a chain of k relations we draw k+1 independent random
// permutations B_0 .. B_k of [0, N). Relation i (0-based) contains the N
// tuples {(Unique1 = B_i(j), Unique2 = B_{i+1}(j)) : j in [0, N)}: adjacent
// relations share a "boundary" permutation. The join of the chain span
// [lo, hi] then contains exactly the tuples {(B_lo(j), B_{hi+1}(j))} — a
// Wisconsin relation of cardinality N no matter how the span was
// parenthesized, which is the regular-workload property the paper's
// experiments rely on. Every binary join matches the lower span's Unique2
// against the higher span's Unique1 (the boundary both sides share) and is
// 1:1.
package wisconsin

import (
	"fmt"
	"math/rand"

	"multijoin/internal/relation"
)

// TupleBytes is the size of one Wisconsin tuple: thirteen 4-byte integer
// attributes (unique1, unique2, two, four, ten, twenty, onePercent,
// tenPercent, twentyPercent, fiftyPercent, unique3, evenOnePercent,
// oddOnePercent) and three 52-byte strings (stringu1, stringu2, string4).
const TupleBytes = 208

// Config describes a chain database.
type Config struct {
	Relations   int   // number of base relations in the chain (paper: 10)
	Cardinality int   // tuples per relation (paper: 5000 and 40000)
	Seed        int64 // RNG seed; same seed => identical database

	// Cards optionally gives every relation its own cardinality,
	// overriding Cardinality (and Relations, which must then match
	// len(Cards) or be zero). The paper's regular workload uses equal
	// cardinalities so that all join trees cost the same; variable
	// cardinalities create the non-regular, "real-life" workloads the
	// paper's closing section asks about, where the cost function truly
	// drives processor allocation. Between relations of different sizes
	// the join is no longer 1:1: every tuple of the lower relation matches
	// exactly one tuple of the higher relation, so the join of chain span
	// [lo, hi] has exactly Cards[lo] tuples regardless of tree shape.
	Cards []int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if len(c.Cards) > 0 {
		if len(c.Cards) < 2 {
			return fmt.Errorf("wisconsin: need at least 2 relations, got %d", len(c.Cards))
		}
		if c.Relations != 0 && c.Relations != len(c.Cards) {
			return fmt.Errorf("wisconsin: Relations=%d contradicts len(Cards)=%d", c.Relations, len(c.Cards))
		}
		for i, n := range c.Cards {
			if n < 1 {
				return fmt.Errorf("wisconsin: non-positive cardinality %d for relation %d", n, i)
			}
		}
		return nil
	}
	if c.Relations < 2 {
		return fmt.Errorf("wisconsin: need at least 2 relations, got %d", c.Relations)
	}
	if c.Cardinality < 1 {
		return fmt.Errorf("wisconsin: need positive cardinality, got %d", c.Cardinality)
	}
	return nil
}

// cards returns the per-relation cardinalities implied by the config.
func (c Config) cards() []int {
	if len(c.Cards) > 0 {
		return c.Cards
	}
	out := make([]int, c.Relations)
	for i := range out {
		out[i] = c.Cardinality
	}
	return out
}

// Database is a generated chain of Wisconsin relations plus the boundary
// permutations and pointer structure, kept so that expected query answers
// can be computed without running any join.
type Database struct {
	Config     Config
	Relations  []*relation.Relation
	cards      []int
	boundaries [][]int64 // boundaries[i][j] = B_i(j); len(boundaries[i]) = cards[min(i, k-1)]
	targets    [][]int   // tuple j of relation i matches tuple targets[i][j] of relation i+1
}

// Chain generates a chain database. Tuples are produced in row order; the
// per-tuple provenance checksum of base relation i, row j is BaseCheck(i, j).
//
// Relation i holds cards[i] tuples with Unique1 = B_i(j) (a permutation of
// [0, cards[i])) and Unique2 = B_{i+1}(targets[i][j]). For equal adjacent
// cardinalities the target mapping is the identity, making the join 1:1 (the
// paper's regular workload); otherwise targets are drawn uniformly, so every
// lower tuple matches exactly one higher tuple.
func Chain(cfg Config) (*Database, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := &Database{Config: cfg, cards: cfg.cards()}
	k := len(db.cards)
	// Boundary b sits between relations b-1 and b; its value domain is the
	// Unique1 domain of relation b (for b < k) and a fresh domain of the
	// last relation's size for the chain's outer edge b = k.
	db.boundaries = make([][]int64, k+1)
	for b := 0; b <= k; b++ {
		size := db.cards[k-1]
		if b < k {
			size = db.cards[b]
		}
		db.boundaries[b] = permutation(rng, size)
	}
	db.targets = make([][]int, k)
	for i := 0; i < k; i++ {
		n := db.cards[i]
		next := db.cards[k-1]
		if i+1 < k {
			next = db.cards[i+1]
		}
		db.targets[i] = make([]int, n)
		for j := 0; j < n; j++ {
			if n == next {
				db.targets[i][j] = j // 1:1 regular workload
			} else {
				db.targets[i][j] = rng.Intn(next)
			}
		}
	}
	db.Relations = make([]*relation.Relation, k)
	for i := 0; i < k; i++ {
		r := relation.New(fmt.Sprintf("R%d", i), TupleBytes)
		r.Tuples = make([]relation.Tuple, db.cards[i])
		for j := 0; j < db.cards[i]; j++ {
			r.Tuples[j] = relation.Tuple{
				Unique1: db.boundaries[i][j],
				Unique2: db.boundaries[i+1][db.targets[i][j]],
				Check:   BaseCheck(i, j),
			}
		}
		db.Relations[i] = r
	}
	return db, nil
}

// permutation returns a uniformly random permutation of [0, n) as int64s.
func permutation(rng *rand.Rand, n int) []int64 {
	p := make([]int64, n)
	for i := range p {
		p[i] = int64(i)
	}
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// BaseCheck is the provenance checksum of row j of base relation i.
func BaseCheck(rel, row int) uint64 {
	h := uint64(rel)*0x100000001b3 + uint64(row) + 0xcbf29ce484222325
	h ^= h >> 31
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	return h
}

// Relation returns base relation i.
func (db *Database) Relation(i int) *relation.Relation { return db.Relations[i] }

// NumRelations returns the number of base relations.
func (db *Database) NumRelations() int { return len(db.Relations) }

// Cardinality returns the cardinality of the first relation — for the
// paper's regular workload (equal cardinalities) this is the cardinality of
// every relation and of every intermediate result.
func (db *Database) Cardinality() int { return db.cards[0] }

// Card returns the cardinality of relation i.
func (db *Database) Card(i int) int { return db.cards[i] }

// SpanCard returns the exact cardinality of the join of chain span
// [lo, hi]: every lower-span tuple matches exactly one higher-span tuple, so
// the result has Cards[lo] tuples for any tree shape. Strategies use this as
// their cost-function cardinality input.
func (db *Database) SpanCard(lo, hi int) float64 {
	if lo < 0 || lo >= len(db.cards) {
		return 0
	}
	return float64(db.cards[lo])
}

// ExpectedPairs returns the (Unique1, Unique2) pairs — with zero checksums —
// that the join of chain span [lo, hi] (inclusive, 0-based) must produce,
// computed by following the generator's pointer structure. Checksums depend
// on the join tree shape and are verified separately against a sequential
// reference execution.
func (db *Database) ExpectedPairs(lo, hi int) (*relation.Relation, error) {
	if lo < 0 || hi >= len(db.Relations) || lo > hi {
		return nil, fmt.Errorf("wisconsin: invalid span [%d,%d] of %d relations", lo, hi, len(db.Relations))
	}
	out := relation.New(fmt.Sprintf("expected[%d,%d]", lo, hi), TupleBytes)
	n := db.cards[lo]
	out.Tuples = make([]relation.Tuple, n)
	for j := 0; j < n; j++ {
		row := j
		for i := lo; i < hi; i++ {
			row = db.targets[i][row]
		}
		out.Tuples[j] = relation.Tuple{
			Unique1: db.boundaries[lo][j],
			Unique2: db.boundaries[hi+1][db.targets[hi][row]],
		}
	}
	return out, nil
}

// SamePairs reports whether got contains exactly the (Unique1, Unique2)
// multiset of the expected span result, ignoring checksums.
func (db *Database) SamePairs(got *relation.Relation, lo, hi int) (bool, error) {
	want, err := db.ExpectedPairs(lo, hi)
	if err != nil {
		return false, err
	}
	g := got.Clone()
	for i := range g.Tuples {
		g.Tuples[i].Check = 0
	}
	return relation.EqualMultiset(g, want), nil
}
