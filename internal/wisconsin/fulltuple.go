package wisconsin

import (
	"fmt"
	"strings"
)

// FullTuple is a complete 208-byte Wisconsin benchmark tuple [BDT83]. The
// execution engine carries only the join-relevant attributes (see package
// relation); FullTuple exists for the data-inspection tool and for tests
// that pin down the declared tuple layout.
type FullTuple struct {
	Unique1       int32
	Unique2       int32
	Two           int32
	Four          int32
	Ten           int32
	Twenty        int32
	OnePercent    int32
	TenPercent    int32
	TwentyPercent int32
	FiftyPercent  int32
	Unique3       int32
	EvenOnePct    int32
	OddOnePct     int32
	StringU1      string // 52 bytes
	StringU2      string // 52 bytes
	String4       string // 52 bytes
}

// Expand derives the full Wisconsin attribute set from the two unique
// integers, exactly as the original benchmark defines the derived columns.
func Expand(unique1, unique2 int64) FullTuple {
	u1, u2 := int32(unique1), int32(unique2)
	return FullTuple{
		Unique1:       u1,
		Unique2:       u2,
		Two:           u1 % 2,
		Four:          u1 % 4,
		Ten:           u1 % 10,
		Twenty:        u1 % 20,
		OnePercent:    u1 % 100,
		TenPercent:    u1 % 10,
		TwentyPercent: u1 % 5,
		FiftyPercent:  u1 % 2,
		Unique3:       u1,
		EvenOnePct:    (u1 % 100) * 2,
		OddOnePct:     (u1%100)*2 + 1,
		StringU1:      wisconsinString(unique1),
		StringU2:      wisconsinString(unique2),
		String4:       string4(unique1),
	}
}

// Size returns the declared byte width of a full tuple (13 four-byte
// integers plus three 52-byte strings).
func (FullTuple) Size() int { return 13*4 + 3*52 }

// wisconsinString builds the classic 52-byte Wisconsin string: a 7-letter
// base-26 encoding of the value padded with 'x' to 52 characters.
func wisconsinString(v int64) string {
	var enc [7]byte
	for i := 6; i >= 0; i-- {
		enc[i] = byte('A' + v%26)
		v /= 26
	}
	return string(enc[:]) + strings.Repeat("x", 52-7)
}

// string4 cycles through the four benchmark string constants.
func string4(v int64) string {
	pats := [4]string{"AAAA", "HHHH", "OOOO", "VVVV"}
	p := pats[v%4]
	return p + strings.Repeat("x", 52-len(p))
}

// String renders a compact view of the tuple.
func (t FullTuple) String() string {
	return fmt.Sprintf("(u1=%d u2=%d two=%d four=%d ten=%d twenty=%d str=%s...)",
		t.Unique1, t.Unique2, t.Two, t.Four, t.Ten, t.Twenty, t.StringU1[:7])
}
