package wisconsin

import (
	"testing"
	"testing/quick"

	"multijoin/internal/relation"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{Relations: 2, Cardinality: 1}, true},
		{Config{Relations: 10, Cardinality: 5000}, true},
		{Config{Relations: 1, Cardinality: 10}, false},
		{Config{Relations: 3, Cardinality: 0}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) error = %v, want ok=%v", c.cfg, err, c.ok)
		}
	}
}

func TestChainShape(t *testing.T) {
	db, err := Chain(Config{Relations: 4, Cardinality: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if db.NumRelations() != 4 || db.Cardinality() != 100 {
		t.Fatalf("db shape %d x %d", db.NumRelations(), db.Cardinality())
	}
	for i, r := range db.Relations {
		if r.Card() != 100 {
			t.Errorf("relation %d card %d", i, r.Card())
		}
		if r.TupleBytes != TupleBytes {
			t.Errorf("relation %d tuple bytes %d, want %d", i, r.TupleBytes, TupleBytes)
		}
		// Both attributes must be permutations of [0, N).
		for _, attr := range []relation.Attr{relation.Unique1, relation.Unique2} {
			seen := make(map[int64]bool, 100)
			for _, tp := range r.Tuples {
				v := tp.Get(attr)
				if v < 0 || v >= 100 {
					t.Fatalf("relation %d %v value %d out of range", i, attr, v)
				}
				if seen[v] {
					t.Fatalf("relation %d %v value %d duplicated", i, attr, v)
				}
				seen[v] = true
			}
		}
	}
}

func TestChainBoundariesShared(t *testing.T) {
	// Adjacent relations must agree on their shared boundary: the multiset
	// of R_i.Unique2 values equals the multiset of R_{i+1}.Unique1 values,
	// and each value appears in exactly one tuple on each side (1:1 joins).
	db, err := Chain(Config{Relations: 5, Cardinality: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < db.NumRelations(); i++ {
		left := db.Relation(i)
		right := db.Relation(i + 1)
		rightByKey := make(map[int64]int)
		for _, tp := range right.Tuples {
			rightByKey[tp.Unique1]++
		}
		for _, tp := range left.Tuples {
			if rightByKey[tp.Unique2] != 1 {
				t.Fatalf("boundary %d: value %d has %d matches, want 1",
					i+1, tp.Unique2, rightByKey[tp.Unique2])
			}
		}
	}
}

func TestChainDeterministic(t *testing.T) {
	a, _ := Chain(Config{Relations: 3, Cardinality: 50, Seed: 11})
	b, _ := Chain(Config{Relations: 3, Cardinality: 50, Seed: 11})
	for i := range a.Relations {
		if !relation.EqualMultiset(a.Relations[i], b.Relations[i]) {
			t.Fatalf("same seed produced different relation %d", i)
		}
	}
	c, _ := Chain(Config{Relations: 3, Cardinality: 50, Seed: 12})
	same := true
	for i := range a.Relations {
		if !relation.EqualMultiset(a.Relations[i], c.Relations[i]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical databases")
	}
}

func TestBaseCheckUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for rel := 0; rel < 10; rel++ {
		for row := 0; row < 1000; row++ {
			h := BaseCheck(rel, row)
			if seen[h] {
				t.Fatalf("BaseCheck collision at rel=%d row=%d", rel, row)
			}
			seen[h] = true
		}
	}
}

func TestExpectedPairs(t *testing.T) {
	db, err := Chain(Config{Relations: 4, Cardinality: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Span of a single relation equals that relation (ignoring checks).
	for i := 0; i < 4; i++ {
		want, err := db.ExpectedPairs(i, i)
		if err != nil {
			t.Fatal(err)
		}
		got := db.Relation(i).Clone()
		for j := range got.Tuples {
			got.Tuples[j].Check = 0
		}
		if !relation.EqualMultiset(got, want) {
			t.Errorf("span [%d,%d] does not match relation %d", i, i, i)
		}
	}
	if _, err := db.ExpectedPairs(-1, 2); err == nil {
		t.Error("negative lo must fail")
	}
	if _, err := db.ExpectedPairs(2, 4); err == nil {
		t.Error("hi out of range must fail")
	}
	if _, err := db.ExpectedPairs(3, 2); err == nil {
		t.Error("inverted span must fail")
	}
}

func TestSamePairs(t *testing.T) {
	db, err := Chain(Config{Relations: 3, Cardinality: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	exp, _ := db.ExpectedPairs(0, 2)
	ok, err := db.SamePairs(exp, 0, 2)
	if err != nil || !ok {
		t.Errorf("SamePairs on expected result: ok=%v err=%v", ok, err)
	}
	exp.Tuples[0].Unique1++
	ok, _ = db.SamePairs(exp, 0, 2)
	if ok {
		t.Error("SamePairs accepted a corrupted result")
	}
}

// TestManualChainJoin joins the whole chain by brute force and compares the
// pairs with ExpectedPairs — validating the generator's core guarantee
// without using any package under test later in the stack.
func TestManualChainJoin(t *testing.T) {
	db, err := Chain(Config{Relations: 4, Cardinality: 30, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	cur := db.Relation(0).Clone()
	for i := 1; i < db.NumRelations(); i++ {
		next := db.Relation(i)
		out := relation.New("acc", TupleBytes)
		for _, l := range cur.Tuples {
			for _, r := range next.Tuples {
				if l.Unique2 == r.Unique1 {
					out.Append(relation.Tuple{Unique1: l.Unique1, Unique2: r.Unique2})
				}
			}
		}
		cur = out
	}
	if cur.Card() != 30 {
		t.Fatalf("brute-force chain join has %d tuples, want 30", cur.Card())
	}
	ok, err := db.SamePairs(cur, 0, 3)
	if err != nil || !ok {
		t.Errorf("brute-force join disagrees with ExpectedPairs: ok=%v err=%v", ok, err)
	}
}

// TestChainJoinProperty: for random small configurations, every adjacent
// join is 1:1 so every span has exactly N tuples.
func TestChainJoinProperty(t *testing.T) {
	f := func(seed int64, relsRaw, cardRaw uint8) bool {
		rels := int(relsRaw%4) + 2
		card := int(cardRaw%50) + 1
		db, err := Chain(Config{Relations: rels, Cardinality: card, Seed: seed})
		if err != nil {
			return false
		}
		for lo := 0; lo < rels; lo++ {
			for hi := lo; hi < rels; hi++ {
				exp, err := db.ExpectedPairs(lo, hi)
				if err != nil || exp.Card() != card {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFullTupleExpand(t *testing.T) {
	ft := Expand(12345, 678)
	if ft.Unique1 != 12345 || ft.Unique2 != 678 {
		t.Errorf("unique attrs: %d, %d", ft.Unique1, ft.Unique2)
	}
	if ft.Two != 12345%2 || ft.Four != 12345%4 || ft.Ten != 12345%10 || ft.Twenty != 12345%20 {
		t.Error("derived modulo attributes wrong")
	}
	if len(ft.StringU1) != 52 || len(ft.StringU2) != 52 || len(ft.String4) != 52 {
		t.Errorf("string lengths %d/%d/%d, want 52",
			len(ft.StringU1), len(ft.StringU2), len(ft.String4))
	}
	if ft.Size() != TupleBytes {
		t.Errorf("declared size %d, want %d", ft.Size(), TupleBytes)
	}
	if ft.String() == "" {
		t.Error("String() empty")
	}
}

func TestWisconsinStringDistinct(t *testing.T) {
	a := Expand(1, 0).StringU1
	b := Expand(2, 0).StringU1
	if a == b {
		t.Error("different unique1 values produced identical stringu1")
	}
	if Expand(0, 0).String4[:4] != "AAAA" || Expand(1, 0).String4[:4] != "HHHH" {
		t.Error("string4 cycle broken")
	}
}
