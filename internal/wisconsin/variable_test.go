package wisconsin

import (
	"testing"

	"multijoin/internal/relation"
)

func TestVariableCardsValidate(t *testing.T) {
	bad := []Config{
		{Cards: []int{100}},
		{Cards: []int{100, 0}},
		{Cards: []int{100, 100}, Relations: 3},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	ok := Config{Cards: []int{100, 50}, Relations: 2}
	if err := ok.Validate(); err != nil {
		t.Errorf("matching Relations should validate: %v", err)
	}
}

func TestVariableCardsShape(t *testing.T) {
	cards := []int{200, 100, 50, 25}
	db, err := Chain(Config{Cards: cards, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if db.NumRelations() != 4 {
		t.Fatalf("relations = %d", db.NumRelations())
	}
	for i, want := range cards {
		if got := db.Relation(i).Card(); got != want {
			t.Errorf("relation %d card %d, want %d", i, got, want)
		}
		if got := db.Card(i); got != want {
			t.Errorf("Card(%d) = %d, want %d", i, got, want)
		}
	}
	if db.Cardinality() != 200 {
		t.Errorf("Cardinality() = %d, want first relation's 200", db.Cardinality())
	}
	// Unique1 must still be a permutation of [0, card_i).
	for i := range cards {
		seen := map[int64]bool{}
		for _, tp := range db.Relation(i).Tuples {
			if tp.Unique1 < 0 || tp.Unique1 >= int64(cards[i]) || seen[tp.Unique1] {
				t.Fatalf("relation %d has bad unique1 %d", i, tp.Unique1)
			}
			seen[tp.Unique1] = true
		}
	}
}

func TestVariableSpanCard(t *testing.T) {
	cards := []int{128, 64, 256, 32}
	db, err := Chain(Config{Cards: cards, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < 4; lo++ {
		for hi := lo; hi < 4; hi++ {
			if got := db.SpanCard(lo, hi); got != float64(cards[lo]) {
				t.Errorf("SpanCard(%d,%d) = %g, want %d", lo, hi, got, cards[lo])
			}
			exp, err := db.ExpectedPairs(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			if exp.Card() != cards[lo] {
				t.Errorf("ExpectedPairs(%d,%d) has %d tuples, want %d", lo, hi, exp.Card(), cards[lo])
			}
		}
	}
	if db.SpanCard(-1, 2) != 0 || db.SpanCard(9, 9) != 0 {
		t.Error("out-of-range SpanCard must be 0")
	}
}

// TestVariableBruteForceJoin verifies the pointer semantics against a
// brute-force nested-loop join of the full variable chain.
func TestVariableBruteForceJoin(t *testing.T) {
	cards := []int{40, 20, 60, 10}
	db, err := Chain(Config{Cards: cards, Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	cur := db.Relation(0).Clone()
	for i := 1; i < db.NumRelations(); i++ {
		next := db.Relation(i)
		out := relation.New("acc", TupleBytes)
		for _, l := range cur.Tuples {
			for _, r := range next.Tuples {
				if l.Unique2 == r.Unique1 {
					out.Append(relation.Tuple{Unique1: l.Unique1, Unique2: r.Unique2})
				}
			}
		}
		cur = out
	}
	if cur.Card() != cards[0] {
		t.Fatalf("brute-force chain has %d tuples, want %d", cur.Card(), cards[0])
	}
	ok, err := db.SamePairs(cur, 0, 3)
	if err != nil || !ok {
		t.Errorf("brute-force join disagrees with ExpectedPairs (err=%v)", err)
	}
}

func TestVariableEveryLowerTupleMatchesOnce(t *testing.T) {
	db, err := Chain(Config{Cards: []int{100, 30, 70}, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < db.NumRelations(); i++ {
		right := db.Relation(i + 1)
		keys := map[int64]int{}
		for _, tp := range right.Tuples {
			keys[tp.Unique1]++
		}
		for _, tp := range db.Relation(i).Tuples {
			if keys[tp.Unique2] != 1 {
				t.Fatalf("boundary %d: lower tuple matches %d higher tuples", i+1, keys[tp.Unique2])
			}
		}
	}
}

func TestEqualCardsStayRegular(t *testing.T) {
	// Cards all equal via the Cards field must behave exactly like the
	// Cardinality field: 1:1 joins, identical databases.
	a, err := Chain(Config{Relations: 3, Cardinality: 50, Seed: 39})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chain(Config{Cards: []int{50, 50, 50}, Seed: 39})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Relations {
		if !relation.EqualMultiset(a.Relations[i], b.Relations[i]) {
			t.Errorf("relation %d differs between equivalent configs", i)
		}
	}
}
