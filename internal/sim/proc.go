package sim

import "sort"

// Interval is a half-open busy span [Start, End) on a processor, labeled with
// the identifier of the operation that consumed the time (a join number in
// the paper's utilization diagrams).
type Interval struct {
	Start, End Time
	Label      string
}

// Proc models one shared-nothing processor node. A processor executes work
// items one at a time: work requested at time t starts at max(t, free time)
// and pushes the free time forward. Because the global event loop delivers
// requests in virtual-time order, this serializing shortcut is equivalent to
// an explicit FIFO run queue and keeps the simulation deterministic.
type Proc struct {
	ID     int
	freeAt Time
	busy   []Interval
	record bool
}

// NewProc returns a processor with the given id. If record is set, busy
// intervals are retained for utilization diagrams.
func NewProc(id int, record bool) *Proc {
	return &Proc{ID: id, record: record}
}

// FreeAt returns the earliest time new work can start.
func (p *Proc) FreeAt() Time { return p.freeAt }

// Acquire reserves the processor for duration d, requested at time at. It
// returns the start and end times of the reserved slot. A zero duration
// returns immediately with start == end and reserves nothing.
func (p *Proc) Acquire(at Time, d Duration, label string) (start, end Time) {
	start = at
	if p.freeAt > start {
		start = p.freeAt
	}
	if d <= 0 {
		return start, start
	}
	end = start + Time(d)
	p.freeAt = end
	if p.record {
		n := len(p.busy)
		if n > 0 && p.busy[n-1].End == start && p.busy[n-1].Label == label {
			p.busy[n-1].End = end // merge adjacent same-label work
		} else {
			p.busy = append(p.busy, Interval{Start: start, End: end, Label: label})
		}
	}
	return start, end
}

// Busy returns the recorded busy intervals in time order.
func (p *Proc) Busy() []Interval { return p.busy }

// BusyTime returns the total recorded busy duration.
func (p *Proc) BusyTime() Duration {
	var total Duration
	for _, iv := range p.busy {
		total += Duration(iv.End - iv.Start)
	}
	return total
}

// Machine is a collection of processors indexed by id, plus one dedicated
// host processor for the scheduler/collector that is excluded from
// utilization accounting.
type Machine struct {
	procs  map[int]*Proc
	host   *Proc
	record bool
}

// NewMachine returns an empty machine. If record is set, processor busy
// intervals are retained for utilization diagrams.
func NewMachine(record bool) *Machine {
	return &Machine{procs: make(map[int]*Proc), host: NewProc(-1, false), record: record}
}

// Proc returns the processor with the given id, creating it on first use.
// The id -1 designates the scheduler host.
func (m *Machine) Proc(id int) *Proc {
	if id == -1 {
		return m.host
	}
	p, ok := m.procs[id]
	if !ok {
		p = NewProc(id, m.record)
		m.procs[id] = p
	}
	return p
}

// Host returns the scheduler host processor.
func (m *Machine) Host() *Proc { return m.host }

// Procs returns all worker processors sorted by id.
func (m *Machine) Procs() []*Proc {
	out := make([]*Proc, 0, len(m.procs))
	for _, p := range m.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumProcs returns the number of worker processors touched so far.
func (m *Machine) NumProcs() int { return len(m.procs) }
