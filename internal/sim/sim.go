// Package sim is a deterministic discrete-event simulation kernel used to
// model the PRISMA/DB shared-nothing multiprocessor of the paper.
//
// The paper's performance effects — startup overhead proportional to the
// number of operation processes, coordination overhead proportional to the
// number of tuple streams, discretization error in processor allocation, and
// delay over pipelines — are structural cost effects. Running the plans on a
// virtual clock reproduces those structures exactly and deterministically,
// independent of the host machine, which a wall-clock goroutine
// implementation could not do (starting a goroutine costs microseconds and a
// laptop does not have 80 CPUs). Real relational data still flows through
// the simulated operators, so the computed join results remain verifiable.
//
// Time is measured in integer virtual microseconds. Events scheduled at the
// same instant fire in scheduling order (FIFO), which makes every run
// reproducible bit-for-bit.
package sim

import (
	"container/heap"
	"context"
	"fmt"
)

// Time is a point in virtual time, in microseconds since query start.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration int64

// Common durations, for readable cost-model constants.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000
	Second      Duration = 1000 * 1000
)

// Seconds converts a virtual duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Seconds converts a virtual time to floating-point seconds since start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats a duration as seconds with millisecond precision.
func (d Duration) String() string { return fmt.Sprintf("%.3fs", d.Seconds()) }

// event is one pending callback.
type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among simultaneous events
	fn  func()
}

// eventHeap orders events by (time, sequence).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. The zero value is ready to use.
type Sim struct {
	now    Time
	seq    uint64
	events eventHeap
	count  uint64 // total events processed, for stats and runaway detection
	limit  uint64 // optional safety limit on processed events (0 = none)
}

// New returns a fresh simulator at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() uint64 { return s.count }

// SetEventLimit installs a safety limit on the number of processed events;
// Run panics if it is exceeded. Zero disables the limit.
func (s *Sim) SetEventLimit(n uint64) { s.limit = n }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is clamped to the current time (the event fires "now", after already
// scheduled simultaneous events).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (s *Sim) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+Time(d), fn)
}

// Run executes events in order until no events remain. It returns the final
// virtual time.
func (s *Sim) Run() Time {
	t, _ := s.RunContext(context.Background())
	return t
}

// RunContext executes events in order until no events remain or ctx is
// cancelled. The context is checked between events — a single event callback
// is never interrupted — so cancellation leaves the simulation in a
// consistent (if incomplete) state. It returns the final virtual time and,
// on cancellation, the context's error.
func (s *Sim) RunContext(ctx context.Context) (Time, error) {
	done := ctx.Done()
	for len(s.events) > 0 {
		if done != nil {
			select {
			case <-done:
				return s.now, ctx.Err()
			default:
			}
		}
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		s.count++
		if s.limit > 0 && s.count > s.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", s.limit, s.now))
		}
		e.fn()
	}
	return s.now, nil
}

// Step executes the single next event, if any, and reports whether one ran.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	s.count++
	e.fn()
	return true
}

// Pending returns the number of events waiting to run.
func (s *Sim) Pending() int { return len(s.events) }
