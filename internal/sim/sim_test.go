package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDurationConversions(t *testing.T) {
	if Second.Seconds() != 1.0 {
		t.Errorf("Second = %v seconds", Second.Seconds())
	}
	if (1500 * Millisecond).Seconds() != 1.5 {
		t.Errorf("1500ms = %v seconds", (1500 * Millisecond).Seconds())
	}
	if Time(2*Second).Seconds() != 2.0 {
		t.Errorf("Time conversion wrong")
	}
	if (250 * Millisecond).String() != "0.250s" {
		t.Errorf("String() = %q", (250 * Millisecond).String())
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var got []Time
	times := []Time{50, 10, 30, 20, 40}
	for _, at := range times {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	s.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("events fired out of order: %v", got)
	}
	if len(got) != len(times) {
		t.Errorf("fired %d events, want %d", len(got), len(times))
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: position %d holds %d", i, v)
		}
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	s := New()
	var when Time
	s.At(100, func() {
		s.At(50, func() { when = s.Now() }) // in the past
	})
	s.Run()
	if when != 100 {
		t.Errorf("past event ran at %d, want clamped to 100", when)
	}
}

func TestAfterNegativeClamps(t *testing.T) {
	s := New()
	ran := false
	s.After(-5, func() { ran = true })
	s.Run()
	if !ran || s.Now() != 0 {
		t.Errorf("negative delay: ran=%v now=%d", ran, s.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	depth := 0
	var recurse func()
	recurse = func() {
		if depth < 10 {
			depth++
			s.After(7, recurse)
		}
	}
	s.After(0, recurse)
	end := s.Run()
	if depth != 10 {
		t.Errorf("depth = %d, want 10", depth)
	}
	if end != 70 {
		t.Errorf("end = %d, want 70", end)
	}
}

func TestStepAndPending(t *testing.T) {
	s := New()
	s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2", s.Pending())
	}
	if !s.Step() {
		t.Error("Step returned false with events pending")
	}
	if s.Now() != 1 || s.Pending() != 1 {
		t.Errorf("after one step: now=%d pending=%d", s.Now(), s.Pending())
	}
	s.Run()
	if s.Step() {
		t.Error("Step returned true with no events")
	}
	if s.Processed() != 2 {
		t.Errorf("processed = %d, want 2", s.Processed())
	}
}

func TestEventLimitPanics(t *testing.T) {
	s := New()
	s.SetEventLimit(5)
	var loop func()
	loop = func() { s.After(1, loop) }
	s.After(1, loop)
	defer func() {
		if recover() == nil {
			t.Error("expected panic from event limit")
		}
	}()
	s.Run()
}

// TestRandomWorkloadOrdering: random schedules always execute in
// nondecreasing time order and run every event exactly once.
func TestRandomWorkloadOrdering(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		rng := rand.New(rand.NewSource(seed))
		s := New()
		fired := 0
		last := Time(-1)
		ok := true
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(1000))
			s.At(at, func() {
				fired++
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		s.Run()
		return ok && fired == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestProcAcquireSerializes(t *testing.T) {
	p := NewProc(0, true)
	s1, e1 := p.Acquire(10, 5, "a")
	if s1 != 10 || e1 != 15 {
		t.Errorf("first acquire [%d,%d], want [10,15]", s1, e1)
	}
	s2, e2 := p.Acquire(12, 5, "a") // requested while busy
	if s2 != 15 || e2 != 20 {
		t.Errorf("second acquire [%d,%d], want [15,20]", s2, e2)
	}
	s3, e3 := p.Acquire(100, 5, "b") // requested after idle gap
	if s3 != 100 || e3 != 105 {
		t.Errorf("third acquire [%d,%d], want [100,105]", s3, e3)
	}
	if p.FreeAt() != 105 {
		t.Errorf("FreeAt = %d, want 105", p.FreeAt())
	}
}

func TestProcZeroDuration(t *testing.T) {
	p := NewProc(0, true)
	s, e := p.Acquire(10, 0, "x")
	if s != e {
		t.Errorf("zero-duration acquire [%d,%d] must be instantaneous", s, e)
	}
	if len(p.Busy()) != 0 {
		t.Error("zero-duration acquire must not record intervals")
	}
}

func TestProcIntervalMerging(t *testing.T) {
	p := NewProc(0, true)
	p.Acquire(0, 5, "a")
	p.Acquire(5, 5, "a") // adjacent, same label: merged
	p.Acquire(10, 5, "b")
	busy := p.Busy()
	if len(busy) != 2 {
		t.Fatalf("got %d intervals, want 2 (merged): %+v", len(busy), busy)
	}
	if busy[0].Start != 0 || busy[0].End != 10 || busy[0].Label != "a" {
		t.Errorf("merged interval %+v", busy[0])
	}
	if p.BusyTime() != 15 {
		t.Errorf("BusyTime = %v, want 15", p.BusyTime())
	}
}

func TestProcNoRecording(t *testing.T) {
	p := NewProc(0, false)
	p.Acquire(0, 5, "a")
	if len(p.Busy()) != 0 {
		t.Error("recording disabled but intervals retained")
	}
}

// TestProcUtilizationProperty: total busy time equals the sum of requested
// durations regardless of request pattern.
func TestProcUtilizationProperty(t *testing.T) {
	f := func(durs []uint8) bool {
		p := NewProc(0, true)
		var want Duration
		at := Time(0)
		for i, d := range durs {
			dd := Duration(d%20) + 1
			want += dd
			// Vary labels so intervals don't merge timing.
			label := "x"
			if i%2 == 0 {
				label = "y"
			}
			p.Acquire(at, dd, label)
			at += Time(d % 7)
		}
		return p.BusyTime() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMachineProcs(t *testing.T) {
	m := NewMachine(false)
	p3 := m.Proc(3)
	p1 := m.Proc(1)
	if m.Proc(3) != p3 {
		t.Error("Proc must return the same processor per id")
	}
	if m.Proc(-1) != m.Host() {
		t.Error("Proc(-1) must be the host")
	}
	procs := m.Procs()
	if len(procs) != 2 || procs[0] != p1 || procs[1] != p3 {
		t.Errorf("Procs() not sorted by id: %v", procs)
	}
	if m.NumProcs() != 2 {
		t.Errorf("NumProcs = %d, want 2 (host excluded)", m.NumProcs())
	}
}
