package serve

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"multijoin/internal/core"
	"multijoin/internal/dist"
	"multijoin/internal/ivm"
	"multijoin/internal/jointree"
	"multijoin/internal/relation"
	"multijoin/internal/strategy"
)

// Config parameterizes a Server.
type Config struct {
	// BatchTuples is the result re-batching granularity: how many tuples
	// each DATA frame carries. Zero means 256; values above the block
	// codec's MaxBlockTuples are clamped to it.
	BatchTuples int
}

// DefaultBatchTuples is the DATA frame granularity when Config leaves it 0.
const DefaultBatchTuples = 256

// Server exposes one long-lived Engine over TCP. Each accepted connection
// gets a reader goroutine that demultiplexes SUBMIT/CREDIT/CANCEL frames;
// each submitted query gets its own goroutine that drains the engine's
// Rows cursor into credit-windowed DATA frames. The server takes ownership
// of the engine: Shutdown drains in-flight cursors through the engine's
// own graceful-drain path before closing it.
type Server struct {
	eng   *core.Engine
	batch int

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*srvConn]struct{}
	closed bool

	wg sync.WaitGroup // accept loop + connection handlers
}

// NewServer wraps an open engine. The server owns eng from here on:
// Server.Shutdown (or Close) closes it.
func NewServer(eng *core.Engine, cfg Config) *Server {
	b := cfg.BatchTuples
	if b <= 0 {
		b = DefaultBatchTuples
	}
	if b > relation.MaxBlockTuples {
		b = relation.MaxBlockTuples
	}
	return &Server{eng: eng, batch: b, conns: make(map[*srvConn]struct{})}
}

// Start binds addr (host:port; port 0 picks an ephemeral port), spawns the
// accept loop, and returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", core.ErrEngineClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		sc := &srvConn{srv: s, c: dist.NewConn(nc), queries: make(map[uint32]*srvQuery), views: make(map[uint32]*core.View)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			sc.c.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sc.serve()
			s.mu.Lock()
			delete(s.conns, sc)
			s.mu.Unlock()
		}()
	}
}

// Shutdown stops the server gracefully: no new connections or queries are
// admitted, then the engine drains — in-flight Rows cursors keep streaming
// to their clients until they settle or ctx expires, at which point the
// stragglers are force-closed — and finally every connection is torn down.
// It returns the engine's shutdown error (nil on a clean drain).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return s.eng.Shutdown(ctx)
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// Graceful phase: the engine waits for cursors to settle; the per-query
	// goroutines keep pushing frames to their clients in the meantime.
	err := s.eng.Shutdown(ctx)
	// Flush phase: a settled cursor's stream may still have its final
	// batches, EOS and DONE in flight under the client's credit window —
	// wait for the per-query goroutines before touching the sockets.
	s.mu.Lock()
	conns := make([]*srvConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	var dwg sync.WaitGroup
	for _, sc := range conns {
		dwg.Add(1)
		go func(sc *srvConn) {
			defer dwg.Done()
			sc.drain(ctx)
		}(sc)
	}
	dwg.Wait()
	// Teardown phase: whatever is left is an idle client or a stalled
	// stream past its grace — close the sockets to unblock the connection
	// readers, then wait for every goroutine.
	s.mu.Lock()
	for sc := range s.conns {
		sc.c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Close is Shutdown with no grace: in-flight queries are force-closed.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return s.Shutdown(ctx)
}

// Engine returns the wrapped engine (observability: meter, plan cache).
func (s *Server) Engine() *core.Engine { return s.eng }

// srvConn is the server side of one client connection.
type srvConn struct {
	srv *Server
	c   *dist.Conn

	mu      sync.Mutex
	queries map[uint32]*srvQuery
	views   map[uint32]*core.View
	qwg     sync.WaitGroup
}

// srvQuery is one in-flight query on a connection.
type srvQuery struct {
	cancel context.CancelFunc
	gate   *creditGate
}

// drain waits for this connection's in-flight query goroutines, cancelling
// whatever is still running when ctx expires (a client that stopped
// granting credit).
func (sc *srvConn) drain(ctx context.Context) {
	done := make(chan struct{})
	go func() { sc.qwg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		sc.mu.Lock()
		for _, q := range sc.queries {
			q.cancel()
		}
		sc.mu.Unlock()
		<-done
	}
}

// serve runs the connection to completion: hello exchange, then the frame
// demultiplex loop. Any protocol violation or transport error tears the
// connection down — every in-flight query is cancelled and drained before
// the socket closes, so a client disconnect mid-stream releases the
// queries' memory reservations.
func (sc *srvConn) serve() {
	defer func() {
		sc.mu.Lock()
		for _, q := range sc.queries {
			q.cancel()
		}
		views := make([]*core.View, 0, len(sc.views))
		for _, v := range sc.views {
			views = append(views, v)
		}
		sc.views = make(map[uint32]*core.View)
		sc.mu.Unlock()
		// A client disconnect must not strand resident hash tables on the
		// engine's budget: views are connection-scoped.
		for _, v := range views {
			v.Close()
		}
		sc.qwg.Wait()
		sc.c.Close()
	}()
	var hello helloMsg
	if err := readMsg(sc.c, fsHello, &hello); err != nil {
		return
	}
	if err := checkHello(hello, roleClient); err != nil {
		return
	}
	if err := sc.c.WriteMsg(fsHello, helloMsg{Version: protoVersion, Role: roleServer}); err != nil {
		return
	}
	for {
		kind, payload, err := sc.c.ReadFrame()
		if err != nil {
			return
		}
		switch kind {
		case fsSubmit:
			var sub submitMsg
			if err := dist.DecodeMsg(payload, &sub); err != nil {
				return
			}
			sc.submit(sub)
		case fsCredit:
			sid, n, err := dist.ParseCreditFrame(payload)
			if err != nil {
				return
			}
			sc.mu.Lock()
			q := sc.queries[sid]
			sc.mu.Unlock()
			if q != nil {
				q.gate.grant(n)
			}
		case fsCancel:
			sid, err := dist.ParseStreamID(payload)
			if err != nil {
				return
			}
			sc.mu.Lock()
			q := sc.queries[sid]
			sc.mu.Unlock()
			if q != nil {
				q.cancel()
			}
		case fsViewCreate:
			var vc viewCreateMsg
			if err := dist.DecodeMsg(payload, &vc); err != nil {
				return
			}
			sc.viewCreate(vc)
		case fsViewApply:
			var va viewApplyMsg
			if err := dist.DecodeMsg(payload, &va); err != nil {
				return
			}
			sc.viewApply(va)
		case fsViewClose:
			sid, err := dist.ParseStreamID(payload)
			if err != nil {
				return
			}
			sc.viewClose(sid)
		default:
			return // unknown frame kind: protocol violation
		}
	}
}

// submit validates a SUBMIT and launches its query goroutine.
func (sc *srvConn) submit(sub submitMsg) {
	sc.mu.Lock()
	if _, dup := sc.queries[sub.ID]; dup {
		sc.mu.Unlock()
		sc.writeErr(sub.ID, fmt.Errorf("serve: duplicate stream id %d", sub.ID))
		return
	}
	window := sub.Window
	if window <= 0 {
		window = DefaultWindow
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &srvQuery{cancel: cancel, gate: newCreditGate(window)}
	sc.queries[sub.ID] = q
	sc.qwg.Add(1)
	sc.mu.Unlock()
	go func() {
		defer sc.qwg.Done()
		defer cancel()
		sc.runQuery(ctx, q, sub)
		sc.mu.Lock()
		delete(sc.queries, sub.ID)
		sc.mu.Unlock()
	}()
}

// runQuery executes one submitted query and streams its result: DATA
// frames under the credit window, then EOS and DONE, or ERROR on any
// failure (including cancellation, whose ERROR carries context.Canceled's
// message).
func (sc *srvConn) runQuery(ctx context.Context, sq *srvQuery, sub submitMsg) {
	query, opts, err := sc.srv.buildQuery(sub)
	if err != nil {
		sc.writeErr(sub.ID, err)
		return
	}
	rows, err := sc.srv.eng.Query(ctx, query, opts...)
	if err != nil {
		sc.writeErr(sub.ID, err)
		return
	}
	defer rows.Close()
	var nrows int64
	batch := relation.NewBatch(sc.srv.batch)
	flush := func() error {
		if batch.Len() == 0 {
			return nil
		}
		if err := sq.gate.take(ctx); err != nil {
			return err
		}
		if err := sc.c.WriteBatch(sub.ID, batch); err != nil {
			return err
		}
		nrows += int64(batch.Len())
		batch.Reset()
		return nil
	}
	for rows.Next() {
		batch.AppendTuple(rows.Tuple())
		if batch.Len() >= sc.srv.batch {
			if err := flush(); err != nil {
				// Client gone or query cancelled: abort the execution and
				// let the deferred Close drain the cursor.
				sc.writeErr(sub.ID, err)
				return
			}
		}
	}
	if err := rows.Err(); err != nil {
		sc.writeErr(sub.ID, err)
		return
	}
	if err := flush(); err != nil {
		sc.writeErr(sub.ID, err)
		return
	}
	if err := sc.c.WriteEOS(sub.ID); err != nil {
		return
	}
	done := doneMsg{ID: sub.ID, Rows: nrows}
	if res, ok := rows.Result(); ok {
		done.WallNanos = res.Time.Nanoseconds()
		done.QueueWaitNanos = res.Stats.QueueWait.Nanoseconds()
		done.SpilledBytes = res.Stats.BytesSpilled
		done.MemReserved = res.Stats.MemReserved
		done.PlanCacheHit = res.Stats.PlanCacheHit
	}
	sc.c.WriteMsg(fsDone, done)
}

// writeErr sends an ERROR frame; transport failures are ignored (the
// connection teardown path handles them).
func (sc *srvConn) writeErr(sid uint32, err error) {
	sc.c.WriteMsg(fsError, errMsg{ID: sid, Msg: err.Error()})
}

// viewCreate materializes one view and acknowledges with VOK carrying the
// database shape. Runs synchronously in the demux loop: the population is
// the round-zero refresh, and a view connection has nothing else to do.
func (sc *srvConn) viewCreate(vc viewCreateMsg) {
	sc.mu.Lock()
	_, dupQ := sc.queries[vc.ID]
	_, dupV := sc.views[vc.ID]
	sc.mu.Unlock()
	if dupQ || dupV {
		sc.writeErr(vc.ID, fmt.Errorf("serve: duplicate stream id %d", vc.ID))
		return
	}
	shape := vc.Shape
	if shape == "" {
		shape = "left-linear"
	}
	query, _, err := sc.srv.buildQuery(submitMsg{
		ID: vc.ID, Shape: shape, Relations: vc.Relations, Strategy: "FP", Procs: vc.Procs,
	})
	if err != nil {
		sc.writeErr(vc.ID, err)
		return
	}
	v, err := sc.srv.eng.CreateView(context.Background(), query)
	if err != nil {
		sc.writeErr(vc.ID, err)
		return
	}
	sc.mu.Lock()
	sc.views[vc.ID] = v
	sc.mu.Unlock()
	db := sc.srv.eng.DB()
	cards := make([]int64, db.NumRelations())
	for i := range cards {
		cards[i] = int64(db.Card(i))
	}
	sc.c.WriteMsg(fsViewOK, viewOKMsg{
		ID: vc.ID, Rows: int64(v.ResultCard()), Resident: v.Resident(), Cards: cards,
	})
}

// viewApply runs one maintenance round and acknowledges with VRESULT.
func (sc *srvConn) viewApply(va viewApplyMsg) {
	sc.mu.Lock()
	v := sc.views[va.ID]
	sc.mu.Unlock()
	if v == nil {
		sc.writeErr(va.ID, fmt.Errorf("serve: no view on stream id %d", va.ID))
		return
	}
	deltas := make([]ivm.Delta, 0, len(va.Deltas))
	for _, wd := range va.Deltas {
		var ins, del relation.Batch
		if err := relation.DecodeSignedBlocks(wd.Blocks, &ins, &del); err != nil {
			sc.writeErr(va.ID, err)
			return
		}
		d := ivm.Delta{Rel: wd.Rel}
		for i, n := 0, ins.Len(); i < n; i++ {
			d.Insert = append(d.Insert, ins.Tuple(i))
		}
		for i, n := 0, del.Len(); i < n; i++ {
			d.Delete = append(d.Delete, del.Tuple(i))
		}
		deltas = append(deltas, d)
	}
	t0 := time.Now()
	res, err := v.Apply(context.Background(), deltas...)
	if err != nil {
		sc.writeErr(va.ID, err)
		return
	}
	sc.c.WriteMsg(fsViewResult, viewResultMsg{
		ID: va.ID, Inserted: int64(res.Inserted), Deleted: int64(res.Deleted),
		Unmatched: res.Unmatched, Changes: int64(res.Changes),
		Rows: int64(res.ResultCard), WallNanos: time.Since(t0).Nanoseconds(),
	})
}

// viewClose releases a view's resident tables and acknowledges with DONE
// carrying the final result cardinality.
func (sc *srvConn) viewClose(sid uint32) {
	sc.mu.Lock()
	v := sc.views[sid]
	delete(sc.views, sid)
	sc.mu.Unlock()
	if v == nil {
		sc.writeErr(sid, fmt.Errorf("serve: no view on stream id %d", sid))
		return
	}
	rows := int64(v.ResultCard())
	v.Close()
	sc.c.WriteMsg(fsDone, doneMsg{ID: sid, Rows: rows})
}

// buildQuery resolves a submitMsg against the server's database into an
// executable query and its per-query options.
func (s *Server) buildQuery(sub submitMsg) (core.Query, []core.Option, error) {
	db := s.eng.DB()
	k := sub.Relations
	if k == 0 {
		k = db.NumRelations()
	}
	if k < 2 || k > db.NumRelations() {
		return core.Query{}, nil, fmt.Errorf("serve: %d relations requested, database has %d", k, db.NumRelations())
	}
	shape, err := jointree.ParseShape(sub.Shape)
	if err != nil {
		return core.Query{}, nil, err
	}
	tree, err := jointree.BuildShape(shape, k)
	if err != nil {
		return core.Query{}, nil, err
	}
	kind, err := strategy.Parse(sub.Strategy)
	if err != nil {
		return core.Query{}, nil, err
	}
	// Default the plan's processor count so any strategy fits: FP needs a
	// processor per concurrent operation, so scale with the join fan-in
	// (plans may name more processors than the host has cores — the
	// engine's shared pool caps actual concurrency).
	procs := sub.Procs
	if procs <= 0 {
		procs = max(runtime.GOMAXPROCS(0), 2*k)
	}
	q := core.Query{DB: db, Tree: tree, Strategy: kind, Procs: procs}
	var opts []core.Option
	if sub.Runtime != "" {
		opts = append(opts, core.WithRuntime(sub.Runtime))
	}
	return q, opts, nil
}

// readMsg reads the next frame, requires the given kind, and gob-decodes
// its payload.
func readMsg(c *dist.Conn, kind byte, v any) error {
	got, payload, err := c.ReadFrame()
	if err != nil {
		return err
	}
	if got != kind {
		return fmt.Errorf("serve: expected frame 0x%02x, got 0x%02x", kind, got)
	}
	return dist.DecodeMsg(payload, v)
}

// creditGate is the server side of one stream's flow-control window: take
// blocks until the client has granted at least one unconsumed credit.
type creditGate struct {
	mu    sync.Mutex
	avail int
	ch    chan struct{} // cap 1: wake signal for grant
}

func newCreditGate(window int) *creditGate {
	return &creditGate{avail: window, ch: make(chan struct{}, 1)}
}

// grant adds n credits and wakes a blocked take.
func (g *creditGate) grant(n uint32) {
	g.mu.Lock()
	g.avail += int(n)
	g.mu.Unlock()
	select {
	case g.ch <- struct{}{}:
	default:
	}
}

// take consumes one credit, blocking until one is available or ctx ends.
func (g *creditGate) take(ctx context.Context) error {
	for {
		g.mu.Lock()
		if g.avail > 0 {
			g.avail--
			g.mu.Unlock()
			return nil
		}
		g.mu.Unlock()
		select {
		case <-g.ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
