package serve

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// LoadConfig parameterizes one load-generation step against a server.
type LoadConfig struct {
	Addr     string        // server address
	Conns    int           // concurrent client connections (0 means 8)
	Duration time.Duration // offered-load window (0 means 2s)
	// OfferedQPS > 0 runs an open loop: arrivals at this aggregate rate
	// with exponential inter-arrival times, issued regardless of
	// completions (queueing shows up as latency). Zero runs a closed loop:
	// each connection issues its next query the moment the previous one
	// terminates.
	OfferedQPS float64
	// CancelFrac in [0,1] is the fraction of queries cancelled after their
	// first result batch — the abort-mid-stream path.
	CancelFrac float64
	Specs      []QuerySpec // query mix, cycled through per arrival (empty means a default mix)
	Window     int         // per-stream credit window (0 means DefaultWindow)
	Seed       int64
}

// LoadResult aggregates one step's outcome.
type LoadResult struct {
	Offered      float64 // configured open-loop rate; 0 on closed loops
	Completed    int64   // queries that reached DONE
	Cancelled    int64   // queries we cancelled that terminated
	Errors       int64   // queries that failed for any other reason
	Abandoned    int64   // open-loop queries still in flight at the deadline
	Elapsed      time.Duration
	Achieved     float64 // terminated queries (completed+cancelled) per second
	P50          time.Duration
	P95          time.Duration
	P99          time.Duration
	AvgQueueWait time.Duration
	SpilledBytes int64 // sum of per-query spill reported in DONE
	Rows         int64 // tuples streamed to clients
}

// DefaultMix is the load generator's default query mix: the four
// strategies crossed with the in-memory parallel runtime and the spilling
// out-of-core runtime, on the paper's wide-bushy shape.
func DefaultMix() []QuerySpec {
	var specs []QuerySpec
	for _, st := range []string{"SP", "SE", "RD", "FP"} {
		for _, rt := range []string{"parallel", "spill"} {
			specs = append(specs, QuerySpec{Shape: "wide-bushy", Strategy: st, Runtime: rt})
		}
	}
	return specs
}

// loadStats collects per-query outcomes under one mutex.
type loadStats struct {
	mu        sync.Mutex
	latencies []time.Duration
	waits     []time.Duration
	completed int64
	cancelled int64
	errors    int64
	abandoned int64
	spilled   int64
	rows      int64
}

func (ls *loadStats) done(lat time.Duration, d *Done, cancelled bool) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.latencies = append(ls.latencies, lat)
	if d != nil {
		ls.waits = append(ls.waits, d.QueueWait)
		ls.spilled += d.SpilledBytes
	}
	if cancelled {
		ls.cancelled++
	} else {
		ls.completed++
	}
}

// RunLoad drives one offered-load step and reports its aggregate result.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if len(cfg.Specs) == 0 {
		cfg.Specs = DefaultMix()
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	clients := make([]*Client, cfg.Conns)
	for i := range clients {
		cl, err := DialWindow(cfg.Addr, cfg.Window)
		if err != nil {
			for _, c := range clients[:i] {
				c.Close()
			}
			return nil, fmt.Errorf("serve: load dial %d: %w", i, err)
		}
		clients[i] = cl
	}
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()

	stats := &loadStats{}
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
			if cfg.OfferedQPS > 0 {
				openLoop(cl, cfg, rng, deadline, stats)
			} else {
				closedLoop(cl, cfg, rng, deadline, stats)
			}
		}(i, cl)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &LoadResult{
		Offered:   cfg.OfferedQPS,
		Completed: stats.completed, Cancelled: stats.cancelled,
		Errors: stats.errors, Abandoned: stats.abandoned,
		Elapsed:      elapsed,
		SpilledBytes: stats.spilled, Rows: stats.rows,
	}
	terminated := stats.completed + stats.cancelled
	if elapsed > 0 {
		res.Achieved = float64(terminated) / elapsed.Seconds()
	}
	res.P50 = percentile(stats.latencies, 0.50)
	res.P95 = percentile(stats.latencies, 0.95)
	res.P99 = percentile(stats.latencies, 0.99)
	var sum time.Duration
	for _, w := range stats.waits {
		sum += w
	}
	if len(stats.waits) > 0 {
		res.AvgQueueWait = sum / time.Duration(len(stats.waits))
	}
	return res, nil
}

// runOne issues one query and consumes its stream, cancelling mid-stream
// when the die says so. It records latency (submit to terminal event) and
// the outcome.
func runOne(cl *Client, cfg LoadConfig, rng *rand.Rand, spec QuerySpec, stats *loadStats) {
	cancelMe := rng.Float64() < cfg.CancelFrac
	t0 := time.Now()
	st, err := cl.Submit(spec)
	if err != nil {
		stats.mu.Lock()
		stats.errors++
		stats.mu.Unlock()
		return
	}
	cancelled := false
	for {
		tuples, done, err := st.Recv()
		if err != nil {
			if cancelled {
				// The server's cancellation ERROR is the expected terminal
				// event of a cancelled stream.
				stats.done(time.Since(t0), nil, true)
			} else {
				stats.mu.Lock()
				stats.errors++
				stats.mu.Unlock()
			}
			return
		}
		if done != nil {
			stats.done(time.Since(t0), done, false)
			return
		}
		stats.mu.Lock()
		stats.rows += int64(len(tuples))
		stats.mu.Unlock()
		if cancelMe && !cancelled {
			cancelled = true
			st.Cancel()
		}
	}
}

// closedLoop issues queries back to back until the deadline.
func closedLoop(cl *Client, cfg LoadConfig, rng *rand.Rand, deadline time.Time, stats *loadStats) {
	for i := 0; time.Now().Before(deadline); i++ {
		runOne(cl, cfg, rng, cfg.Specs[rng.Intn(len(cfg.Specs))], stats)
	}
}

// openLoop issues queries at this connection's share of the offered rate
// with exponential inter-arrival times, regardless of completions: the
// generator does not wait, so saturation shows up as queue wait and rising
// latency rather than a throughput plateau alone. Arrivals still in flight
// at the deadline are cancelled and counted as abandoned.
func openLoop(cl *Client, cfg LoadConfig, rng *rand.Rand, deadline time.Time, stats *loadStats) {
	rate := cfg.OfferedQPS / float64(cfg.Conns)
	var qwg sync.WaitGroup
	var inflight sync.Map // *Stream -> struct{}
	for time.Now().Before(deadline) {
		wait := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if d := time.Until(deadline); wait > d {
			time.Sleep(d)
			break
		}
		time.Sleep(wait)
		spec := cfg.Specs[rng.Intn(len(cfg.Specs))]
		cancelMe := rng.Float64() < cfg.CancelFrac
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			t0 := time.Now()
			st, err := cl.Submit(spec)
			if err != nil {
				stats.mu.Lock()
				stats.errors++
				stats.mu.Unlock()
				return
			}
			inflight.Store(st, struct{}{})
			defer inflight.Delete(st)
			cancelled := false
			for {
				tuples, done, err := st.Recv()
				if err != nil {
					if cancelled {
						stats.done(time.Since(t0), nil, true)
					} else if time.Now().After(deadline) {
						stats.mu.Lock()
						stats.abandoned++
						stats.mu.Unlock()
					} else {
						stats.mu.Lock()
						stats.errors++
						stats.mu.Unlock()
					}
					return
				}
				if done != nil {
					stats.done(time.Since(t0), done, false)
					return
				}
				stats.mu.Lock()
				stats.rows += int64(len(tuples))
				stats.mu.Unlock()
				if cancelMe && !cancelled {
					cancelled = true
					st.Cancel()
				}
			}
		}()
	}
	// Grace: let the tail drain briefly, then cancel the stragglers so the
	// step ends instead of waiting out a saturated queue.
	graceDone := make(chan struct{})
	go func() { qwg.Wait(); close(graceDone) }()
	select {
	case <-graceDone:
	case <-time.After(cfg.Duration):
		inflight.Range(func(k, _ any) bool {
			k.(*Stream).Cancel()
			return true
		})
		<-graceDone
	}
}

// percentile returns the nearest-rank percentile of the latencies.
func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := make([]time.Duration, len(ds))
	copy(s, ds)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(p*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
