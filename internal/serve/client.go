package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"multijoin/internal/dist"
	"multijoin/internal/ivm"
	"multijoin/internal/relation"
)

// QuerySpec names one query against the server's resident database.
type QuerySpec struct {
	Shape     string // wide-bushy, left-linear, ... ("" means wide-bushy)
	Relations int    // join fan-in; 0 means the whole database chain
	Strategy  string // SP, SE, RD, FP ("" means FP)
	Runtime   string // "", "parallel", "spill", ...
	Procs     int    // plan processor count; 0 means the engine default
}

// Done carries a completed query's server-side stats.
type Done struct {
	Rows         int64
	Wall         time.Duration
	QueueWait    time.Duration
	SpilledBytes int64
	MemReserved  int64
	PlanCacheHit bool
}

// ErrClientClosed reports an operation on a closed client.
var ErrClientClosed = errors.New("serve: client closed")

// Client is one multiplexed connection to a Server: any number of
// concurrent query streams share it. A single reader goroutine dispatches
// incoming frames to per-stream event channels sized so the reader never
// blocks on a slow stream consumer (the credit window bounds what the
// server may have outstanding).
type Client struct {
	c      *dist.Conn
	window int

	mu      sync.Mutex
	streams map[uint32]*Stream
	views   map[uint32]*ViewHandle
	nextID  uint32
	err     error // first reader error, ErrClientClosed after Close

	readerDone chan struct{}
}

// Dial connects to a server with the default credit window.
func Dial(addr string) (*Client, error) { return DialWindow(addr, DefaultWindow) }

// DialWindow connects with an explicit per-stream credit window (how many
// DATA frames the server may send ahead of the client's consumption).
func DialWindow(addr string, window int) (*Client, error) {
	if window <= 0 {
		window = DefaultWindow
	}
	c, err := dist.Dial(addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	if err := c.WriteMsg(fsHello, helloMsg{Version: protoVersion, Role: roleClient}); err != nil {
		c.Close()
		return nil, err
	}
	var hello helloMsg
	if err := readMsg(c, fsHello, &hello); err != nil {
		c.Close()
		return nil, fmt.Errorf("serve: hello exchange: %w", err)
	}
	if err := checkHello(hello, roleServer); err != nil {
		c.Close()
		return nil, err
	}
	cl := &Client{c: c, window: window, streams: make(map[uint32]*Stream), views: make(map[uint32]*ViewHandle), readerDone: make(chan struct{})}
	go cl.readLoop()
	return cl, nil
}

// Close tears the connection down; every open stream's Recv fails.
func (cl *Client) Close() error {
	cl.fail(ErrClientClosed)
	err := cl.c.Close()
	<-cl.readerDone
	return err
}

// fail records the terminal error and delivers it to every open stream.
func (cl *Client) fail(err error) {
	cl.mu.Lock()
	if cl.err == nil {
		cl.err = err
	}
	streams := make([]*Stream, 0, len(cl.streams))
	for _, st := range cl.streams {
		streams = append(streams, st)
	}
	cl.streams = make(map[uint32]*Stream)
	views := make([]*ViewHandle, 0, len(cl.views))
	for _, vh := range cl.views {
		views = append(views, vh)
	}
	cl.views = make(map[uint32]*ViewHandle)
	cl.mu.Unlock()
	for _, st := range streams {
		st.deliver(streamEvent{err: err})
	}
	for _, vh := range views {
		vh.deliver(viewEvent{err: err})
	}
}

// Submit starts one query stream.
func (cl *Client) Submit(spec QuerySpec) (*Stream, error) {
	if spec.Shape == "" {
		spec.Shape = "wide-bushy"
	}
	if spec.Strategy == "" {
		spec.Strategy = "FP"
	}
	cl.mu.Lock()
	if cl.err != nil {
		err := cl.err
		cl.mu.Unlock()
		return nil, err
	}
	cl.nextID++
	id := cl.nextID
	// The server may have window unconsumed DATA frames in flight, plus
	// EOS and a terminal DONE/ERROR; size the event buffer so the read
	// loop never blocks dispatching to this stream.
	st := &Stream{cl: cl, id: id, ev: make(chan streamEvent, cl.window+3)}
	cl.streams[id] = st
	cl.mu.Unlock()
	sub := submitMsg{
		ID: id, Shape: spec.Shape, Relations: spec.Relations,
		Strategy: spec.Strategy, Runtime: spec.Runtime, Procs: spec.Procs,
		Window: cl.window,
	}
	if err := cl.c.WriteMsg(fsSubmit, sub); err != nil {
		cl.mu.Lock()
		delete(cl.streams, id)
		cl.mu.Unlock()
		return nil, err
	}
	return st, nil
}

// lookup finds the stream for a frame's stream id.
func (cl *Client) lookup(sid uint32) *Stream {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.streams[sid]
}

// drop removes a finished stream.
func (cl *Client) drop(sid uint32) {
	cl.mu.Lock()
	delete(cl.streams, sid)
	cl.mu.Unlock()
}

// readLoop is the connection's single reader: it dispatches every frame to
// its stream until the transport fails.
func (cl *Client) readLoop() {
	defer close(cl.readerDone)
	for {
		kind, payload, err := cl.c.ReadFrame()
		if err != nil {
			cl.fail(fmt.Errorf("serve: connection lost: %w", err))
			return
		}
		switch kind {
		case fsData:
			sid, block, err := dist.ParseDataFrame(payload)
			if err != nil {
				cl.fail(err)
				return
			}
			// The payload views the connection's reusable read buffer;
			// decoding into fresh tuples is also the copy.
			tuples, err := relation.TuplesFromBytes(nil, block)
			if err != nil {
				cl.fail(err)
				return
			}
			if st := cl.lookup(sid); st != nil {
				st.deliver(streamEvent{tuples: tuples})
			}
		case fsEOS:
			// Informational: the terminal DONE follows immediately.
		case fsDone:
			var d doneMsg
			if err := dist.DecodeMsg(payload, &d); err != nil {
				cl.fail(err)
				return
			}
			if st := cl.lookup(d.ID); st != nil {
				cl.drop(d.ID)
				st.deliver(streamEvent{done: &Done{
					Rows: d.Rows, Wall: time.Duration(d.WallNanos),
					QueueWait:    time.Duration(d.QueueWaitNanos),
					SpilledBytes: d.SpilledBytes, MemReserved: d.MemReserved,
					PlanCacheHit: d.PlanCacheHit,
				}})
			} else if vh := cl.lookupView(d.ID); vh != nil {
				cl.dropView(d.ID)
				vh.deliver(viewEvent{done: &Done{Rows: d.Rows}})
			}
		case fsError:
			var e errMsg
			if err := dist.DecodeMsg(payload, &e); err != nil {
				cl.fail(err)
				return
			}
			if st := cl.lookup(e.ID); st != nil {
				cl.drop(e.ID)
				st.deliver(streamEvent{err: fmt.Errorf("serve: query failed: %s", e.Msg)})
			} else if vh := cl.lookupView(e.ID); vh != nil {
				cl.dropView(e.ID)
				vh.deliver(viewEvent{err: fmt.Errorf("serve: view failed: %s", e.Msg)})
			}
		case fsViewOK:
			var ok viewOKMsg
			if err := dist.DecodeMsg(payload, &ok); err != nil {
				cl.fail(err)
				return
			}
			if vh := cl.lookupView(ok.ID); vh != nil {
				vh.deliver(viewEvent{ok: &ok})
			}
		case fsViewResult:
			var vr viewResultMsg
			if err := dist.DecodeMsg(payload, &vr); err != nil {
				cl.fail(err)
				return
			}
			if vh := cl.lookupView(vr.ID); vh != nil {
				vh.deliver(viewEvent{res: &ApplyStats{
					Inserted: vr.Inserted, Deleted: vr.Deleted, Unmatched: vr.Unmatched,
					Changes: vr.Changes, Rows: vr.Rows, Wall: time.Duration(vr.WallNanos),
				}})
			}
		default:
			cl.fail(fmt.Errorf("serve: unexpected frame kind 0x%02x", kind))
			return
		}
	}
}

// streamEvent is one dispatched frame: a tuple batch, the terminal Done,
// or the terminal error.
type streamEvent struct {
	tuples []relation.Tuple
	done   *Done
	err    error
}

// Stream is one query's result stream on a client connection.
type Stream struct {
	cl *Client
	id uint32
	ev chan streamEvent

	deliverOnce sync.Once // guards the terminal event
}

// deliver dispatches one event; terminal events (done or err) may race
// between the read loop and Client.fail, so only the first lands.
func (st *Stream) deliver(e streamEvent) {
	if e.done != nil || e.err != nil {
		st.deliverOnce.Do(func() { st.ev <- e })
		return
	}
	st.ev <- e
}

// Recv returns the next result batch. It returns (tuples, nil, nil) for
// each DATA batch — granting the server one credit back — then
// (nil, done, nil) when the query completes, or (nil, nil, err) on query
// failure, cancellation, or a lost connection.
func (st *Stream) Recv() ([]relation.Tuple, *Done, error) {
	e := <-st.ev
	switch {
	case e.err != nil:
		return nil, nil, e.err
	case e.done != nil:
		return nil, e.done, nil
	default:
		// Consumed one window slot: grant it back so the server keeps
		// streaming. A write error surfaces on the next Recv via readLoop.
		st.cl.c.WriteCredit(st.id, 1)
		return e.tuples, nil, nil
	}
}

// Cancel asks the server to abort the query. The stream still terminates
// through Recv — with the server's cancellation ERROR.
func (st *Stream) Cancel() error {
	return st.cl.c.WriteStreamID(fsCancel, st.id)
}

// Drain consumes the stream to its terminal event, returning the Done on
// success, the row count seen, and the terminal error otherwise.
func (st *Stream) Drain() (int64, *Done, error) {
	var n int64
	for {
		tuples, done, err := st.Recv()
		if err != nil {
			return n, nil, err
		}
		if done != nil {
			return n, done, nil
		}
		n += int64(len(tuples))
	}
}

// ViewSpec names one materialized view over the server's database. The
// strategy is always FP — a resident view is a pipelining network.
type ViewSpec struct {
	Shape     string // jointree shape name ("" means left-linear)
	Relations int    // join fan-in; 0 means every relation in the DB
	Procs     int    // plan processor count; 0 means the engine default
}

// ApplyStats is one maintenance round's server-side outcome.
type ApplyStats struct {
	Inserted  int64 // base tuples applied as inserts
	Deleted   int64 // base tuples applied as deletes
	Unmatched int64 // base deletes that matched nothing
	Changes   int64 // signed changes to the result multiset
	Rows      int64 // result cardinality after the round
	Wall      time.Duration
}

// viewEvent is one dispatched view reply.
type viewEvent struct {
	ok   *viewOKMsg
	res  *ApplyStats
	done *Done
	err  error
}

// ViewHandle is one materialized view held open on a client connection.
// Its operations are strictly request-reply — one outstanding at a time,
// serialized by an internal mutex.
type ViewHandle struct {
	cl *Client
	id uint32

	// Rows is the view's initial result cardinality; Cards the database's
	// per-relation cardinalities (chain order), the vocabulary for
	// synthesizing join-compatible deltas. Both are set by CreateView.
	Rows  int64
	Cards []int64

	opMu   sync.Mutex
	closed bool // set by Close; later ops fail locally, their replies having no handle
	ev     chan viewEvent

	deliverOnce sync.Once // guards the terminal event
}

func (vh *ViewHandle) deliver(e viewEvent) {
	if e.done != nil || e.err != nil {
		vh.deliverOnce.Do(func() { vh.ev <- e })
		return
	}
	vh.ev <- e
}

// lookupView finds the view for a frame's stream id.
func (cl *Client) lookupView(sid uint32) *ViewHandle {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.views[sid]
}

// dropView removes a finished view.
func (cl *Client) dropView(sid uint32) {
	cl.mu.Lock()
	delete(cl.views, sid)
	cl.mu.Unlock()
}

// CreateView materializes a view on the server and blocks until its initial
// population completes (the round-zero refresh).
func (cl *Client) CreateView(spec ViewSpec) (*ViewHandle, error) {
	cl.mu.Lock()
	if cl.err != nil {
		err := cl.err
		cl.mu.Unlock()
		return nil, err
	}
	cl.nextID++
	id := cl.nextID
	vh := &ViewHandle{cl: cl, id: id, ev: make(chan viewEvent, 2)}
	cl.views[id] = vh
	cl.mu.Unlock()
	msg := viewCreateMsg{ID: id, Shape: spec.Shape, Relations: spec.Relations, Procs: spec.Procs}
	if err := cl.c.WriteMsg(fsViewCreate, msg); err != nil {
		cl.dropView(id)
		return nil, err
	}
	e := <-vh.ev
	switch {
	case e.err != nil:
		return nil, e.err
	case e.ok == nil:
		return nil, fmt.Errorf("serve: unexpected view reply")
	}
	vh.Rows = e.ok.Rows
	vh.Cards = e.ok.Cards
	return vh, nil
}

// Apply ships one round of signed base-relation deltas and blocks until the
// server's view is exact again.
func (vh *ViewHandle) Apply(deltas ...ivm.Delta) (ApplyStats, error) {
	vh.opMu.Lock()
	defer vh.opMu.Unlock()
	if vh.closed {
		return ApplyStats{}, ivm.ErrViewClosed
	}
	msg := viewApplyMsg{ID: vh.id}
	var ins, del relation.Batch
	for _, d := range deltas {
		ins.Reset()
		del.Reset()
		for _, tp := range d.Insert {
			ins.AppendTuple(tp)
		}
		for _, tp := range d.Delete {
			del.AppendTuple(tp)
		}
		msg.Deltas = append(msg.Deltas, viewDeltaMsg{
			Rel:    d.Rel,
			Blocks: relation.AppendSignedBlocksBytes(nil, &ins, &del, 0),
		})
	}
	if err := vh.cl.c.WriteMsg(fsViewApply, msg); err != nil {
		return ApplyStats{}, err
	}
	e := <-vh.ev
	switch {
	case e.err != nil:
		return ApplyStats{}, e.err
	case e.res == nil:
		return ApplyStats{}, fmt.Errorf("serve: unexpected view reply")
	}
	return *e.res, nil
}

// Close tears the server-side view down, releasing its resident tables.
func (vh *ViewHandle) Close() error {
	vh.opMu.Lock()
	defer vh.opMu.Unlock()
	if vh.closed {
		return nil
	}
	vh.closed = true
	if err := vh.cl.c.WriteStreamID(fsViewClose, vh.id); err != nil {
		return err
	}
	e := <-vh.ev
	if e.err != nil {
		return e.err
	}
	return nil
}
