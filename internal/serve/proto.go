// Package serve exposes a long-lived multijoin Engine over TCP: a thin
// query-serving front end in the PRISMA/DB spirit, where the machine
// belongs to the system and many clients share its processors and memory.
//
// The wire format is the internal/dist frame codec verbatim — a u32
// little-endian length prefix, a kind byte, and the payload; result rows
// travel as the same columnar blocks (relation.AppendBatchBytes) the
// distributed runtime redistributes, so a result batch is encoded once,
// column-at-a-time, with no per-tuple step. serve adds four control kinds
// in a range disjoint from dist's:
//
//	0x01 HELLO   both directions; gob helloMsg (version, role)
//	0x10 DATA    server→client; stream id + one columnar block
//	0x11 EOS     server→client; stream id (result complete)
//	0x12 CREDIT  client→server; stream id + n (flow-control grant)
//	0x20 SUBMIT  client→server; gob submitMsg (query spec + window)
//	0x21 CANCEL  client→server; stream id (abort the query)
//	0x22 DONE    server→client; gob doneMsg (per-query stats)
//	0x23 ERROR   server→client; gob errMsg
//	0x24 VCREATE client→server; gob viewCreateMsg (materialize a view)
//	0x25 VOK     server→client; gob viewOKMsg (view ready + DB shape)
//	0x26 VAPPLY  client→server; gob viewApplyMsg (signed delta blocks)
//	0x27 VRESULT server→client; gob viewResultMsg (per-round stats)
//	0x28 VCLOSE  client→server; stream id (tear the view down)
//
// A materialized view is one stream id held open across rounds: VCREATE
// populates the view on the server's engine (CreateView, the FP network
// kept resident) and answers VOK carrying the database's per-relation
// cardinalities so the client can synthesize join-compatible deltas;
// each VAPPLY carries one round of base-relation deltas encoded as the
// signed columnar blocks of relation.AppendSignedBlocksBytes and answers
// VRESULT once the view is exact again; VCLOSE releases the view's
// resident tables and answers DONE. View operations on a connection
// execute synchronously in its demultiplex loop — a ticker connection is
// dedicated to its view, and a refresh round is the unit of interest.
//
// A query is one credit-windowed stream: the client picks a stream id and
// an initial window W in SUBMIT; the server may have at most W unconsumed
// DATA frames outstanding and earns more only through CREDIT frames, so a
// stalled client exerts backpressure all the way into the engine's
// push-based cursor instead of ballooning server memory. After EOS the
// server sends DONE with the query's Result stats (rows, wall time, queue
// wait, spilled bytes, plan-cache hit). CANCEL aborts the query's context;
// the server acknowledges with ERROR carrying context.Canceled's message.
package serve

import (
	"fmt"

	"multijoin/internal/dist"
)

// protoVersion is carried in every HELLO; both ends must agree exactly.
// Version 2 added the materialized-view kinds (0x24-0x28) and the signed
// columnar block format they carry.
const protoVersion = 2

// Frame kinds. The data-plane kinds alias dist's so dist.Conn's WriteBatch,
// WriteEOS and WriteCredit fast paths stamp the right bytes; the serve
// control kinds live at 0x20+ where dist defines nothing.
const (
	fsHello  = dist.FrameHello  // 0x01
	fsData   = dist.FrameData   // 0x10
	fsEOS    = dist.FrameEOS    // 0x11
	fsCredit = dist.FrameCredit // 0x12

	fsSubmit byte = 0x20
	fsCancel byte = 0x21
	fsDone   byte = 0x22
	fsError  byte = 0x23

	fsViewCreate byte = 0x24
	fsViewOK     byte = 0x25
	fsViewApply  byte = 0x26
	fsViewResult byte = 0x27
	fsViewClose  byte = 0x28
)

// Connection roles carried in HELLO.
const (
	roleClient = "client"
	roleServer = "server"
)

// helloMsg opens every connection, in both directions.
type helloMsg struct {
	Version int
	Role    string
}

// submitMsg is one query request. The server owns the database; a client
// names the query shape over it (the paper's workload vocabulary) rather
// than shipping relations. ID is the stream id of the reply; Window is the
// initial credit (batches the server may send before the first CREDIT).
type submitMsg struct {
	ID        uint32
	Shape     string // jointree shape name: wide-bushy, left-linear, ...
	Relations int    // join fan-in; 0 means every relation in the DB
	Strategy  string // SP, SE, RD, FP
	Runtime   string // "", "parallel", "spill", ...
	Procs     int    // plan processor count; 0 means the engine default
	Window    int    // initial credit in batches; 0 means DefaultWindow
}

// doneMsg closes a successful stream: the query's Result stats.
type doneMsg struct {
	ID             uint32
	Rows           int64
	WallNanos      int64
	QueueWaitNanos int64
	SpilledBytes   int64
	MemReserved    int64
	PlanCacheHit   bool
}

// errMsg closes a failed (or cancelled) stream.
type errMsg struct {
	ID  uint32
	Msg string
}

// viewCreateMsg materializes one view on the server's engine. The strategy
// is always FP — a resident view is a pipelining network by construction —
// so unlike submitMsg there is none to pick.
type viewCreateMsg struct {
	ID        uint32
	Shape     string // jointree shape name ("" means left-linear)
	Relations int    // join fan-in; 0 means every relation in the DB
	Procs     int    // plan processor count; 0 means the engine default
}

// viewOKMsg acknowledges a populated view. Cards carries the database's
// per-relation cardinalities so the client can synthesize join-compatible
// delta tuples without shipping the relations.
type viewOKMsg struct {
	ID       uint32
	Rows     int64   // initial result cardinality
	Resident int64   // resident bytes charged to the engine's budget
	Cards    []int64 // base-relation cardinalities, chain order
}

// viewApplyMsg is one maintenance round: per-relation deltas whose tuples
// travel as signed columnar blocks (relation.AppendSignedBlocksBytes).
type viewApplyMsg struct {
	ID     uint32
	Deltas []viewDeltaMsg
}

// viewDeltaMsg is one base relation's signed update within a round.
type viewDeltaMsg struct {
	Rel    int
	Blocks []byte // consecutive signed blocks: inserts then deletes
}

// viewResultMsg answers one VAPPLY once the view is exact again.
type viewResultMsg struct {
	ID        uint32
	Inserted  int64
	Deleted   int64
	Unmatched int64
	Changes   int64 // signed changes to the result multiset this round
	Rows      int64 // result cardinality after the round
	WallNanos int64
}

// DefaultWindow is the initial credit used when SUBMIT carries none.
const DefaultWindow = 8

// checkHello validates a received HELLO.
func checkHello(h helloMsg, wantRole string) error {
	if h.Version != protoVersion {
		return fmt.Errorf("serve: protocol version mismatch: got %d, want %d", h.Version, protoVersion)
	}
	if h.Role != wantRole {
		return fmt.Errorf("serve: unexpected peer role %q, want %q", h.Role, wantRole)
	}
	return nil
}
