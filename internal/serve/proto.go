// Package serve exposes a long-lived multijoin Engine over TCP: a thin
// query-serving front end in the PRISMA/DB spirit, where the machine
// belongs to the system and many clients share its processors and memory.
//
// The wire format is the internal/dist frame codec verbatim — a u32
// little-endian length prefix, a kind byte, and the payload; result rows
// travel as the same columnar blocks (relation.AppendBatchBytes) the
// distributed runtime redistributes, so a result batch is encoded once,
// column-at-a-time, with no per-tuple step. serve adds four control kinds
// in a range disjoint from dist's:
//
//	0x01 HELLO   both directions; gob helloMsg (version, role)
//	0x10 DATA    server→client; stream id + one columnar block
//	0x11 EOS     server→client; stream id (result complete)
//	0x12 CREDIT  client→server; stream id + n (flow-control grant)
//	0x20 SUBMIT  client→server; gob submitMsg (query spec + window)
//	0x21 CANCEL  client→server; stream id (abort the query)
//	0x22 DONE    server→client; gob doneMsg (per-query stats)
//	0x23 ERROR   server→client; gob errMsg
//
// A query is one credit-windowed stream: the client picks a stream id and
// an initial window W in SUBMIT; the server may have at most W unconsumed
// DATA frames outstanding and earns more only through CREDIT frames, so a
// stalled client exerts backpressure all the way into the engine's
// push-based cursor instead of ballooning server memory. After EOS the
// server sends DONE with the query's Result stats (rows, wall time, queue
// wait, spilled bytes, plan-cache hit). CANCEL aborts the query's context;
// the server acknowledges with ERROR carrying context.Canceled's message.
package serve

import (
	"fmt"

	"multijoin/internal/dist"
)

// protoVersion is carried in every HELLO; both ends must agree exactly.
const protoVersion = 1

// Frame kinds. The data-plane kinds alias dist's so dist.Conn's WriteBatch,
// WriteEOS and WriteCredit fast paths stamp the right bytes; the serve
// control kinds live at 0x20+ where dist defines nothing.
const (
	fsHello  = dist.FrameHello  // 0x01
	fsData   = dist.FrameData   // 0x10
	fsEOS    = dist.FrameEOS    // 0x11
	fsCredit = dist.FrameCredit // 0x12

	fsSubmit byte = 0x20
	fsCancel byte = 0x21
	fsDone   byte = 0x22
	fsError  byte = 0x23
)

// Connection roles carried in HELLO.
const (
	roleClient = "client"
	roleServer = "server"
)

// helloMsg opens every connection, in both directions.
type helloMsg struct {
	Version int
	Role    string
}

// submitMsg is one query request. The server owns the database; a client
// names the query shape over it (the paper's workload vocabulary) rather
// than shipping relations. ID is the stream id of the reply; Window is the
// initial credit (batches the server may send before the first CREDIT).
type submitMsg struct {
	ID        uint32
	Shape     string // jointree shape name: wide-bushy, left-linear, ...
	Relations int    // join fan-in; 0 means every relation in the DB
	Strategy  string // SP, SE, RD, FP
	Runtime   string // "", "parallel", "spill", ...
	Procs     int    // plan processor count; 0 means the engine default
	Window    int    // initial credit in batches; 0 means DefaultWindow
}

// doneMsg closes a successful stream: the query's Result stats.
type doneMsg struct {
	ID             uint32
	Rows           int64
	WallNanos      int64
	QueueWaitNanos int64
	SpilledBytes   int64
	MemReserved    int64
	PlanCacheHit   bool
}

// errMsg closes a failed (or cancelled) stream.
type errMsg struct {
	ID  uint32
	Msg string
}

// DefaultWindow is the initial credit used when SUBMIT carries none.
const DefaultWindow = 8

// checkHello validates a received HELLO.
func checkHello(h helloMsg, wantRole string) error {
	if h.Version != protoVersion {
		return fmt.Errorf("serve: protocol version mismatch: got %d, want %d", h.Version, protoVersion)
	}
	if h.Role != wantRole {
		return fmt.Errorf("serve: unexpected peer role %q, want %q", h.Role, wantRole)
	}
	return nil
}
