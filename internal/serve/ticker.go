package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"multijoin/internal/ivm"
	"multijoin/internal/relation"
)

// TickerConfig parameterizes the continuous-query workload: every
// connection holds one materialized view open and feeds it base-relation
// deltas at Poisson arrival times, measuring the refresh latency — submit
// to view-exact-again — the way the query workload measures query latency.
type TickerConfig struct {
	Addr     string        // server address
	Views    int           // concurrent view connections (0 means 4)
	Duration time.Duration // delta-arrival window (0 means 2s)
	// Rate is the aggregate delta-arrival rate in rounds per second across
	// all views, with exponential inter-arrival times (0 means 50).
	Rate float64
	// DeltaTuples is the round size: how many fresh tuples each round
	// inserts into one randomly chosen base relation (0 means 16). Once a
	// view has a backlog of its own insertions, rounds also delete that
	// many earlier insertions, holding the view's cardinality roughly flat.
	DeltaTuples int
	Spec        ViewSpec // the view every connection materializes
	Seed        int64
}

// TickerResult aggregates one ticker step's outcome.
type TickerResult struct {
	Views     int   // views that populated successfully
	Applies   int64 // maintenance rounds that completed
	Errors    int64 // failed creates or rounds
	Inserted  int64 // base tuples inserted across all rounds
	Deleted   int64 // base tuples deleted across all rounds
	Changes   int64 // |signed result changes| across all rounds
	Rows      int64 // summed initial view cardinality
	Elapsed   time.Duration
	Achieved  float64       // completed rounds per second
	P50       time.Duration // refresh latency percentiles
	P95       time.Duration
	P99       time.Duration
	CreateP50 time.Duration // view population latency (round zero)
}

// tickerStats collects per-round outcomes under one mutex.
type tickerStats struct {
	mu       sync.Mutex
	refresh  []time.Duration
	creates  []time.Duration
	applies  int64
	errors   int64
	inserted int64
	deleted  int64
	changes  int64
	rows     int64
}

// RunTicker drives one continuous-query step and reports its aggregate
// result: Views connections each create the same view, then apply Poisson
// delta rounds until the deadline.
func RunTicker(cfg TickerConfig) (*TickerResult, error) {
	if cfg.Views <= 0 {
		cfg.Views = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 50
	}
	if cfg.DeltaTuples <= 0 {
		cfg.DeltaTuples = 16
	}
	clients := make([]*Client, cfg.Views)
	for i := range clients {
		cl, err := Dial(cfg.Addr)
		if err != nil {
			for _, c := range clients[:i] {
				c.Close()
			}
			return nil, fmt.Errorf("serve: ticker dial %d: %w", i, err)
		}
		clients[i] = cl
	}
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()

	stats := &tickerStats{}
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
			tickOne(cl, cfg, rng, deadline, stats)
		}(i, cl)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &TickerResult{
		Views: len(stats.creates), Applies: stats.applies, Errors: stats.errors,
		Inserted: stats.inserted, Deleted: stats.deleted, Changes: stats.changes,
		Rows: stats.rows, Elapsed: elapsed,
	}
	if elapsed > 0 {
		res.Achieved = float64(stats.applies) / elapsed.Seconds()
	}
	res.P50 = percentile(stats.refresh, 0.50)
	res.P95 = percentile(stats.refresh, 0.95)
	res.P99 = percentile(stats.refresh, 0.99)
	res.CreateP50 = percentile(stats.creates, 0.50)
	return res, nil
}

// tickOne is one connection's life: create the view, then Poisson delta
// rounds until the deadline, then close it.
func tickOne(cl *Client, cfg TickerConfig, rng *rand.Rand, deadline time.Time, stats *tickerStats) {
	t0 := time.Now()
	vh, err := cl.CreateView(cfg.Spec)
	if err != nil {
		stats.mu.Lock()
		stats.errors++
		stats.mu.Unlock()
		return
	}
	defer vh.Close()
	stats.mu.Lock()
	stats.creates = append(stats.creates, time.Since(t0))
	stats.rows += vh.Rows
	stats.mu.Unlock()

	// backlog holds this view's own insertions per relation: the pool
	// later rounds delete from, keeping the base churn self-cancelling.
	backlog := make([][]relation.Tuple, len(vh.Cards))
	rate := cfg.Rate / float64(cfg.Views)
	for time.Now().Before(deadline) {
		wait := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if d := time.Until(deadline); wait > d {
			return
		}
		time.Sleep(wait)
		d := synthDelta(vh.Cards, backlog, cfg.DeltaTuples, rng)
		ta := time.Now()
		st, err := vh.Apply(d)
		if err != nil {
			stats.mu.Lock()
			stats.errors++
			stats.mu.Unlock()
			return
		}
		stats.mu.Lock()
		stats.refresh = append(stats.refresh, time.Since(ta))
		stats.applies++
		stats.inserted += st.Inserted
		stats.deleted += st.Deleted
		stats.changes += st.Changes
		stats.mu.Unlock()
	}
}

// synthDelta builds one round against a randomly chosen base relation:
// k fresh join-compatible tuples in, and — once the relation has a backlog
// of at least 2k of this ticker's own insertions — k of those back out.
// The chain database's attribute domains make compatibility easy: relation
// i's Unique1 ranges over [0, cards[i]) and its Unique2 over the boundary
// domain it shares with relation i+1, so a uniform draw joins with
// exactly one neighbor tuple on each side and the delta's changes
// propagate through the whole join rather than dying at the first probe.
func synthDelta(cards []int64, backlog [][]relation.Tuple, k int, rng *rand.Rand) ivm.Delta {
	rel := rng.Intn(len(cards))
	u2dom := cards[rel]
	if rel+1 < len(cards) {
		u2dom = cards[rel+1]
	}
	d := ivm.Delta{Rel: rel}
	for i := 0; i < k; i++ {
		d.Insert = append(d.Insert, relation.Tuple{
			Unique1: rng.Int63n(cards[rel]),
			Unique2: rng.Int63n(u2dom),
			Check:   rng.Uint64(),
		})
	}
	if len(backlog[rel]) >= 2*k {
		for i := 0; i < k; i++ {
			j := rng.Intn(len(backlog[rel]))
			d.Delete = append(d.Delete, backlog[rel][j])
			backlog[rel][j] = backlog[rel][len(backlog[rel])-1]
			backlog[rel] = backlog[rel][:len(backlog[rel])-1]
		}
	}
	backlog[rel] = append(backlog[rel], d.Insert...)
	return d
}
