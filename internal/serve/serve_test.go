// Protocol round-trip audits for the serving layer: submit/stream/done
// against the sequential reference, concurrent multiplexed streams,
// cancel-mid-stream, malformed frames, and client disconnect mid-stream —
// each asserting the engine's shared memory meter drains to zero and no
// goroutines or descriptors leak.
package serve_test

import (
	"context"
	"encoding/binary"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"multijoin/internal/core"
	"multijoin/internal/dist"
	"multijoin/internal/jointree"
	"multijoin/internal/relation"
	"multijoin/internal/serve"
	"multijoin/internal/wisconsin"
)

// settleGoroutines polls until the goroutine count drops back to at most
// base+slack or the deadline passes, and returns the final count.
func settleGoroutines(base, slack int, deadline time.Duration) int {
	limit := time.Now().Add(deadline)
	n := runtime.NumGoroutine()
	for n > base+slack && time.Now().Before(limit) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// openFDs returns the number of open file descriptors of this process, or
// -1 on platforms without /proc.
func openFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// settleFDs polls until the descriptor count drops back to at most
// base+slack or the deadline passes.
func settleFDs(base, slack int, deadline time.Duration) int {
	limit := time.Now().Add(deadline)
	n := openFDs()
	for n > base+slack && time.Now().Before(limit) {
		time.Sleep(10 * time.Millisecond)
		n = openFDs()
	}
	return n
}

// startServer opens an engine over a fresh chain database and serves it on
// an ephemeral loopback port. The cleanup asserts the server shut down
// with a drained meter.
func startServer(t *testing.T, relations, card int, engOpts ...core.EngineOption) (*serve.Server, string, *wisconsin.Database) {
	t.Helper()
	db, err := wisconsin.Chain(wisconsin.Config{Relations: relations, Cardinality: card, Seed: 1995})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Open(db, engOpts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(eng, serve.Config{BatchTuples: 64})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("server shutdown: %v", err)
		}
		if live := eng.MemoryLive(); live != 0 {
			t.Errorf("engine meter live = %d bytes after shutdown, want 0", live)
		}
	})
	return srv, addr, db
}

// TestServeRoundTrip submits queries over every strategy and both real
// runtimes on one multiplexed connection and checks each streamed result
// against the sequential reference.
func TestServeRoundTrip(t *testing.T) {
	baseGo := runtime.NumGoroutine()
	baseFD := openFDs()
	_, addr, db := startServer(t, 4, 400)
	tree, err := jointree.BuildShape(jointree.WideBushy, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := core.Reference(db, tree)

	cl, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for _, strat := range []string{"SP", "SE", "RD", "FP"} {
		for _, rt := range []string{"parallel", "spill"} {
			st, err := cl.Submit(serve.QuerySpec{Strategy: strat, Runtime: rt})
			if err != nil {
				t.Fatalf("%s/%s submit: %v", strat, rt, err)
			}
			got := relation.New("result", 0)
			for {
				tuples, done, err := st.Recv()
				if err != nil {
					t.Fatalf("%s/%s recv: %v", strat, rt, err)
				}
				if done != nil {
					if done.Rows != int64(len(got.Tuples)) {
						t.Errorf("%s/%s done.Rows = %d, streamed %d", strat, rt, done.Rows, len(got.Tuples))
					}
					break
				}
				got.Tuples = append(got.Tuples, tuples...)
			}
			if diff := relation.DiffMultiset(got, want); diff != "" {
				t.Errorf("%s/%s result differs from reference: %s", strat, rt, diff)
			}
		}
	}
	cl.Close()

	if n := settleGoroutines(baseGo, 4, 10*time.Second); n > baseGo+4 {
		t.Errorf("goroutines %d -> %d after round trips", baseGo, n)
	}
	_ = baseFD
}

// TestServeConcurrentStreams runs many interleaved streams on a handful of
// shared connections — the multiplexing path — and verifies every result.
func TestServeConcurrentStreams(t *testing.T) {
	_, addr, db := startServer(t, 4, 300, core.WithMaxConcurrent(4))
	tree, err := jointree.BuildShape(jointree.WideBushy, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len(core.Reference(db, tree).Tuples))

	const conns, perConn = 4, 6
	var wg sync.WaitGroup
	errs := make(chan error, conns*perConn)
	for c := 0; c < conns; c++ {
		cl, err := serve.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		for q := 0; q < perConn; q++ {
			wg.Add(1)
			go func(q int) {
				defer wg.Done()
				rt := []string{"parallel", "spill"}[q%2]
				st, err := cl.Submit(serve.QuerySpec{Strategy: "FP", Runtime: rt})
				if err != nil {
					errs <- err
					return
				}
				n, _, err := st.Drain()
				if err != nil {
					errs <- err
					return
				}
				if n != want {
					errs <- &rowCountErr{got: n, want: want}
				}
			}(q)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type rowCountErr struct{ got, want int64 }

func (e *rowCountErr) Error() string { return "row count mismatch" }

// TestServeCancelMidStream cancels queries after their first batch and
// requires the server to terminate each stream with the cancellation
// error while the shared meter drains (the Cleanup assertion).
func TestServeCancelMidStream(t *testing.T) {
	_, addr, _ := startServer(t, 6, 2000, core.WithEngineMemoryBudget(1<<20))
	cl, err := serve.DialWindow(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 4; i++ {
		st, err := cl.Submit(serve.QuerySpec{Strategy: "FP", Runtime: "spill"})
		if err != nil {
			t.Fatal(err)
		}
		// Take the first batch, then abort.
		if _, done, err := st.Recv(); err != nil || done != nil {
			t.Fatalf("first recv: done=%v err=%v", done, err)
		}
		if err := st.Cancel(); err != nil {
			t.Fatal(err)
		}
		for {
			_, done, err := st.Recv()
			if done != nil {
				// The query can win the race and finish before the cancel
				// lands; that is a legal outcome.
				break
			}
			if err != nil {
				if !strings.Contains(err.Error(), "cancel") {
					t.Fatalf("cancelled stream error = %v, want a cancellation", err)
				}
				break
			}
		}
	}
}

// TestServeMalformedFrames sends protocol garbage — an unknown frame kind,
// a corrupt gob payload, an implausible length prefix — and requires the
// server to tear the connection down without taking the engine with it:
// a healthy client still gets full service afterwards.
func TestServeMalformedFrames(t *testing.T) {
	_, addr, _ := startServer(t, 4, 200)

	hello := func(t *testing.T, c *dist.Conn) {
		t.Helper()
		if err := c.WriteMsg(dist.FrameHello, struct {
			Version int
			Role    string
		}{2, "client"}); err != nil {
			t.Fatal(err)
		}
		if kind, _, err := c.ReadFrame(); err != nil || kind != dist.FrameHello {
			t.Fatalf("hello reply: kind=0x%02x err=%v", kind, err)
		}
	}

	t.Run("unknown frame kind", func(t *testing.T) {
		c, err := dist.Dial(addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		hello(t, c)
		if err := c.WriteStreamID(0x7f, 1); err != nil {
			t.Fatal(err)
		}
		// Server must hang up on the violation.
		if _, _, err := c.ReadFrame(); err == nil {
			t.Fatal("server kept the connection after an unknown frame kind")
		}
	})

	t.Run("corrupt submit payload", func(t *testing.T) {
		c, err := dist.Dial(addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		hello(t, c)
		if err := c.WriteStreamID(0x20, 0xdeadbeef); err != nil { // 4 junk bytes where a gob submitMsg belongs
			t.Fatal(err)
		}
		if _, _, err := c.ReadFrame(); err == nil {
			t.Fatal("server kept the connection after a corrupt SUBMIT")
		}
	})

	t.Run("implausible length prefix", func(t *testing.T) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], 1<<30) // over maxFrame
		if _, err := nc.Write(hdr[:]); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		nc.SetReadDeadline(time.Now().Add(10 * time.Second))
		if _, err := nc.Read(buf); err == nil {
			t.Fatal("server kept the connection after an implausible length prefix")
		}
	})

	// The engine must still serve a healthy client.
	cl, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.Submit(serve.QuerySpec{Strategy: "FP", Runtime: "parallel"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Drain(); err != nil {
		t.Fatalf("healthy client after garbage peers: %v", err)
	}
}

// TestServeClientDisconnectMidStream drops the TCP connection while
// results are streaming (with a tiny credit window so the server is
// blocked mid-stream) and requires the server to cancel the orphaned
// queries and release their memory — the Cleanup asserts meter live = 0 —
// without leaking the per-query goroutines.
func TestServeClientDisconnectMidStream(t *testing.T) {
	baseGo := runtime.NumGoroutine()
	baseFD := openFDs()
	_, addr, _ := startServer(t, 6, 2000, core.WithEngineMemoryBudget(1<<20))

	for i := 0; i < 3; i++ {
		cl, err := serve.DialWindow(addr, 1)
		if err != nil {
			t.Fatal(err)
		}
		st, err := cl.Submit(serve.QuerySpec{Strategy: "FP", Runtime: "spill"})
		if err != nil {
			t.Fatal(err)
		}
		// One batch proves the stream is live, then the socket dies with
		// the query mid-flight and the server blocked on credit.
		if _, done, err := st.Recv(); err != nil || done != nil {
			t.Fatalf("first recv: done=%v err=%v", done, err)
		}
		cl.Close()
	}

	if n := settleGoroutines(baseGo, 4, 15*time.Second); n > baseGo+4 {
		t.Errorf("goroutines %d -> %d after client disconnects", baseGo, n)
	}
	if baseFD >= 0 {
		if n := settleFDs(baseFD, 4, 15*time.Second); n > baseFD+4 {
			t.Errorf("fds %d -> %d after client disconnects", baseFD, n)
		}
	}
}

// TestServeShutdownDrainsStreams verifies graceful shutdown: a Shutdown
// issued while clients are slowly consuming must let every stream finish
// (no truncation) before the engine closes.
func TestServeShutdownDrainsStreams(t *testing.T) {
	db, err := wisconsin.Chain(wisconsin.Config{Relations: 4, Cardinality: 400, Seed: 1995})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(eng, serve.Config{BatchTuples: 64})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := jointree.BuildShape(jointree.WideBushy, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len(core.Reference(db, tree).Tuples))

	const nStreams = 3
	var wg sync.WaitGroup
	counts := make([]int64, nStreams)
	errs := make([]error, nStreams)
	started := make(chan struct{}, nStreams)
	for i := 0; i < nStreams; i++ {
		cl, err := serve.DialWindow(addr, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		st, err := cl.Submit(serve.QuerySpec{Strategy: "FP", Runtime: "parallel"})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, st *serve.Stream) {
			defer wg.Done()
			first := true
			for {
				tuples, done, err := st.Recv()
				if err != nil {
					errs[i] = err
					return
				}
				if done != nil {
					return
				}
				counts[i] += int64(len(tuples))
				if first {
					first = false
					started <- struct{}{}
				}
				time.Sleep(5 * time.Millisecond) // slow consumer
			}
		}(i, st)
	}
	for i := 0; i < nStreams; i++ {
		<-started
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	wg.Wait()
	for i := 0; i < nStreams; i++ {
		if errs[i] != nil {
			t.Errorf("stream %d: %v", i, errs[i])
		}
		if counts[i] != want {
			t.Errorf("stream %d truncated by shutdown: %d rows, want %d", i, counts[i], want)
		}
	}
	if live := eng.MemoryLive(); live != 0 {
		t.Errorf("engine meter live = %d after shutdown, want 0", live)
	}

	// A submit after shutdown must be refused.
	if _, err := serve.Dial(addr); err == nil {
		t.Error("Dial succeeded after Shutdown")
	}
}
