// Round-trip audits for the materialized-view protocol: create, signed
// delta rounds, unmatched accounting, close, and the ticker workload —
// with the server's meter drain asserted by the harness cleanup.
package serve_test

import (
	"testing"
	"time"

	"multijoin/internal/ivm"
	"multijoin/internal/relation"
	"multijoin/internal/serve"
)

func TestServeView(t *testing.T) {
	_, addr, db := startServer(t, 4, 300)
	cl, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	vh, err := cl.CreateView(serve.ViewSpec{Shape: "left-linear"})
	if err != nil {
		t.Fatal(err)
	}
	if vh.Rows != int64(db.Cardinality()) {
		t.Fatalf("initial view rows = %d, want %d", vh.Rows, db.Cardinality())
	}
	if len(vh.Cards) != db.NumRelations() {
		t.Fatalf("VOK carried %d cards, want %d", len(vh.Cards), db.NumRelations())
	}

	// A fresh rel-0 tuple joins exactly one tuple of each later relation
	// (Unique1 is a permutation of the boundary domain), so the result
	// grows by exactly one row.
	ins := relation.Tuple{Unique1: 1 << 32, Unique2: 7, Check: 42}
	st, err := vh.Apply(ivm.Delta{Rel: 0, Insert: []relation.Tuple{ins}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserted != 1 || st.Changes != 1 || st.Rows != vh.Rows+1 || st.Unmatched != 0 {
		t.Fatalf("insert round: %+v", st)
	}

	// Deleting it again retracts that row; a ghost delete in the same
	// round is dropped and counted.
	ghost := relation.Tuple{Unique1: -5, Unique2: 0, Check: 0}
	st, err = vh.Apply(ivm.Delta{Rel: 0, Delete: []relation.Tuple{ins, ghost}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Deleted != 2 || st.Changes != 1 || st.Rows != vh.Rows || st.Unmatched != 1 {
		t.Fatalf("delete round: %+v", st)
	}

	if err := vh.Close(); err != nil {
		t.Fatal(err)
	}
	// The id is gone: another apply fails cleanly instead of wedging.
	if _, err := vh.Apply(ivm.Delta{Rel: 0, Insert: []relation.Tuple{ins}}); err == nil {
		t.Fatal("apply after close succeeded")
	}
}

func TestServeTicker(t *testing.T) {
	_, addr, _ := startServer(t, 4, 200)
	res, err := serve.RunTicker(serve.TickerConfig{
		Addr: addr, Views: 2, Duration: 400 * time.Millisecond,
		Rate: 200, DeltaTuples: 4,
		Spec: serve.ViewSpec{Shape: "left-linear"}, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Views != 2 {
		t.Fatalf("populated %d views, want 2: %+v", res.Views, res)
	}
	if res.Errors != 0 {
		t.Fatalf("%d ticker errors: %+v", res.Errors, res)
	}
	if res.Applies == 0 {
		t.Fatal("no delta rounds completed")
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("implausible refresh percentiles: %+v", res)
	}
}
