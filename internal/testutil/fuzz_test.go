package testutil

import (
	"context"
	"os"
	"testing"

	"multijoin/internal/core"
	"multijoin/internal/dist"
	"multijoin/internal/relation"
)

// TestMain lets the dist runtime spawn its workers by re-executing this
// test binary (InitWorker never returns in a spawned worker process).
func TestMain(m *testing.M) {
	dist.InitWorker()
	os.Exit(m.Run())
}

// runtimesUnderTest are the four built-in runtimes the differential
// harness compares, named explicitly so runtimes registered by other tests
// cannot change what the fuzz target asserts.
var runtimesUnderTest = []string{"sim", "parallel", "spill", "dist"}

// execScenario runs a scenario on one runtime and returns the result
// relation. The spill runtime gets the scenario's forcing memory budget so
// the out-of-core path is exercised, not just registered; the dist runtime
// runs the scenario across two loopback worker processes. The parallel
// runtime is consumed through the session API — an Engine and a streaming
// Rows cursor — so the fuzz harness also differential-tests the cursor
// hand-off (pooled batch ownership, release on Next) against the other
// backends' materialized paths.
func execScenario(t testing.TB, s *Scenario, rt string) *relation.Relation {
	t.Helper()
	opts := []core.Option{core.WithRuntime(rt), core.WithBatchTuples(s.BatchTuples)}
	if rt == "parallel" {
		eng, err := core.Open(s.Query.DB)
		if err != nil {
			t.Fatalf("%s: %s: Open: %v", s.Desc, rt, err)
		}
		defer eng.Close()
		rows, err := eng.Query(context.Background(), s.Query, opts...)
		if err != nil {
			t.Fatalf("%s: %s: Query: %v", s.Desc, rt, err)
		}
		got := relation.New("result", 0)
		for tp := range rows.Iter() {
			got.Append(tp)
		}
		if err := rows.Err(); err != nil {
			t.Fatalf("%s: %s: Rows: %v", s.Desc, rt, err)
		}
		return got
	}
	if rt == "spill" {
		opts = append(opts, core.WithMemoryBudget(s.MemoryBudget))
	}
	if rt == "dist" {
		opts = append(opts, core.WithWorkers(2))
	}
	res, err := core.Exec(context.Background(), s.Query, opts...)
	if err != nil {
		t.Fatalf("%s: %s: %v", s.Desc, rt, err)
	}
	return res.Result
}

// FuzzExecEquivalence is the randomized differential harness: for any
// generated scenario — seeded sizes, skewed cardinalities, all four
// strategies, bushy and linear tree shapes — the simulator, the goroutine
// runtime, the out-of-core spill runtime and the multi-process dist runtime
// (two loopback workers) must each produce exactly the checksum multiset of
// the sequential reference execution. The provenance
// checksums make the assertion total: a lost, duplicated, or wrongly
// combined tuple anywhere in any runtime changes the multiset.
func FuzzExecEquivalence(f *testing.F) {
	// Seed corpus: every strategy × size class, across shapes (the
	// selectors are reduced modulo their domain, so 0..4 name the shapes
	// in paper order and 0..3 the strategies SP, SE, RD, FP).
	for strat := int64(0); strat < 4; strat++ {
		for size := int64(0); size < 3; size++ {
			f.Add(int64(1995)+strat*31+size, strat+size, strat, size)
		}
	}
	f.Add(int64(7), int64(3), int64(3), int64(2)) // right-bushy FP skewed
	f.Add(int64(-1), int64(-2), int64(-3), int64(-4))
	f.Fuzz(func(t *testing.T, seed, shapeSel, stratSel, sizeSel int64) {
		s, err := Generate(seed, shapeSel, stratSel, sizeSel)
		if err != nil {
			t.Fatalf("generator rejected (%d,%d,%d,%d): %v", seed, shapeSel, stratSel, sizeSel, err)
		}
		want := core.Reference(s.Query.DB, s.Query.Tree)
		for _, rt := range runtimesUnderTest {
			got := execScenario(t, s, rt)
			if diff := relation.DiffMultiset(got, want); diff != "" {
				t.Errorf("%s: %s result differs from sequential reference: %s", s.Desc, rt, diff)
			}
		}
	})
}

// TestGenerateDeterministic asserts the generator is a pure function of its
// selectors — the property that makes fuzz failures reproducible.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(42, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(42, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Desc != b.Desc {
		t.Fatalf("same selectors, different scenarios:\n%s\n%s", a.Desc, b.Desc)
	}
	if !relation.EqualMultiset(a.Query.DB.Relation(0), b.Query.DB.Relation(0)) {
		t.Fatal("same selectors generated different databases")
	}
}

// TestGenerateCoversDomains asserts selector reduction reaches every shape
// and strategy, including from negative fuzzer inputs.
func TestGenerateCoversDomains(t *testing.T) {
	shapes := map[string]bool{}
	strategies := map[string]bool{}
	for sel := int64(-5); sel < 5; sel++ {
		s, err := Generate(1, sel, sel, sel)
		if err != nil {
			t.Fatal(err)
		}
		shapes[s.Query.Tree.String()] = true
		strategies[s.Query.Strategy.String()] = true
	}
	if len(strategies) != 4 {
		t.Errorf("selector sweep hit %d strategies, want 4", len(strategies))
	}
	if len(shapes) < 2 {
		t.Errorf("selector sweep hit %d tree shapes, want several", len(shapes))
	}
}
