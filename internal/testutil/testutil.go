// Package testutil generates randomized multi-join scenarios for
// differential testing: seeded chain databases (equal or skewed relation
// sizes), all five query-tree shapes, all four parallelization strategies,
// and processor/batch configurations. The fuzz harness built on it
// (FuzzExecEquivalence) asserts that every registered runtime — the
// discrete-event simulator, the goroutine runtime, and the out-of-core
// spill runtime — produces the identical checksum multiset as the
// sequential reference for the same generated query.
package testutil

import (
	"fmt"
	"math/rand"

	"multijoin/internal/core"
	"multijoin/internal/costmodel"
	"multijoin/internal/jointree"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
)

// Scenario is one generated differential-test case: a query plus the
// execution knobs a run needs. The generator is deterministic in its
// inputs, so a failing scenario reproduces from its parameters alone.
type Scenario struct {
	Query core.Query
	// BatchTuples is the transport batch size to execute with (small
	// values exercise batching edges: partial batches, many flushes).
	BatchTuples int
	// MemoryBudget is the spill-runtime budget chosen so that at least
	// part of the run overflows to disk.
	MemoryBudget int64
	// Desc summarizes the scenario for failure messages.
	Desc string
}

// Generate derives a scenario from fuzz-shaped inputs. Every int64 is
// reduced modulo its domain, so arbitrary fuzzer values map onto valid
// scenarios instead of being rejected:
//
//   - seed drives the database RNG (tuple permutations and, for skewed
//     scenarios, the per-relation cardinalities);
//   - shapeSel picks one of the five paper tree shapes (bushy and linear);
//   - stratSel picks one of the four strategies;
//   - sizeSel picks the size class: 0 = small uniform, 1 = medium uniform,
//     2 = skewed (log-uniform per-relation cardinalities spanning ~2
//     decades, the non-regular workload where fragment sizes diverge).
func Generate(seed, shapeSel, stratSel, sizeSel int64) (*Scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	shape := jointree.Shapes[mod(shapeSel, len(jointree.Shapes))]
	kind := strategy.Kinds[mod(stratSel, len(strategy.Kinds))]
	relations := 2 + rng.Intn(5) // 2..6 relations: 1..5 joins
	cfg := wisconsin.Config{Seed: seed}
	switch mod(sizeSel, 3) {
	case 0:
		cfg.Relations = relations
		cfg.Cardinality = 1 + rng.Intn(60)
	case 1:
		cfg.Relations = relations
		cfg.Cardinality = 200 + rng.Intn(400)
	default:
		cards := make([]int, relations)
		for i := range cards {
			// Log-uniform in [4, ~400): heavily skewed operand sizes, so
			// hash fragments and join partitions are unbalanced.
			cards[i] = 4 << rng.Intn(7)
		}
		cfg.Cards = cards
	}
	db, err := wisconsin.Chain(cfg)
	if err != nil {
		return nil, err
	}
	tree, err := jointree.BuildShape(shape, relations)
	if err != nil {
		return nil, err
	}
	// FP (and RD on deep trees) needs one processor per concurrently
	// executing join, so the floor is the join count; the headroom above
	// it varies the per-join processor allocation.
	procs := relations - 1 + rng.Intn(10)
	batch := 1 + rng.Intn(64)
	return &Scenario{
		Query: core.Query{
			DB:       db,
			Tree:     tree,
			Strategy: kind,
			Procs:    procs,
			Params:   costmodel.Default(),
		},
		BatchTuples: batch,
		// A few hundred bytes: essentially everything spills, including
		// on the one-tuple relations.
		MemoryBudget: 512,
		Desc: fmt.Sprintf("seed=%d shape=%v strategy=%v relations=%d cards=%v procs=%d batch=%d",
			seed, shape, kind, relations, cardsOf(db), procs, batch),
	}, nil
}

// cardsOf lists the per-relation cardinalities for failure messages.
func cardsOf(db *wisconsin.Database) []int {
	out := make([]int, db.NumRelations())
	for i := range out {
		out[i] = db.Card(i)
	}
	return out
}

// mod reduces an arbitrary (possibly negative) selector into [0, n).
func mod(v int64, n int) int {
	m := int(v % int64(n))
	if m < 0 {
		m += n
	}
	return m
}
