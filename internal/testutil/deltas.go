package testutil

import (
	"math/rand"

	"multijoin/internal/ivm"
	"multijoin/internal/relation"
	"multijoin/internal/wisconsin"
)

// DeltaScript derives a deterministic sequence of signed delta rounds for
// db's base relations — the workload half of the view-maintenance
// differential harness (FuzzViewEquivalence). The generator tracks the
// evolving live multiset of every relation so deletes target tuples that
// exist at apply time (including tuples inserted by an earlier round, or
// by the same round — inserts apply first); inserts are join-compatible
// clones of live tuples with fresh Check payloads, so they actually flow
// through the join network instead of being filtered at the first probe.
//
// Each round also injects ghost deletes with ~1/4 probability per touched
// relation: tuples with a negative Unique1, which no generated relation
// ever contains, exercising the unmatched-delete path. Ghosts are
// recognizable by Unique1 < 0 so a differential oracle can predict the
// view's Unmatched count exactly.
func DeltaScript(db *wisconsin.Database, seed int64, rounds int) [][]ivm.Delta {
	rng := rand.New(rand.NewSource(seed))
	live := make([][]relation.Tuple, db.NumRelations())
	for i := range live {
		live[i] = append([]relation.Tuple(nil), db.Relation(i).Tuples...)
	}
	script := make([][]ivm.Delta, 0, rounds)
	for r := 0; r < rounds; r++ {
		var round []ivm.Delta
		touched := rng.Perm(db.NumRelations())[:1+rng.Intn(db.NumRelations())]
		for _, rel := range touched {
			d := ivm.Delta{Rel: rel}
			for i, n := 0, rng.Intn(6); i < n && len(live[rel]) > 0; i++ {
				src := live[rel][rng.Intn(len(live[rel]))]
				src.Check = src.Check*31 + uint64(rng.Intn(1<<30)) + 1
				d.Insert = append(d.Insert, src)
				live[rel] = append(live[rel], src)
			}
			for i, n := 0, rng.Intn(4); i < n && len(live[rel]) > 0; i++ {
				j := rng.Intn(len(live[rel]))
				d.Delete = append(d.Delete, live[rel][j])
				live[rel][j] = live[rel][len(live[rel])-1]
				live[rel] = live[rel][:len(live[rel])-1]
			}
			if rng.Intn(4) == 0 {
				d.Delete = append(d.Delete, relation.Tuple{
					Unique1: -(1 + rng.Int63n(1<<30)),
					Unique2: rng.Int63n(1 << 30),
					Check:   rng.Uint64(),
				})
			}
			if len(d.Insert) > 0 || len(d.Delete) > 0 {
				round = append(round, d)
			}
		}
		script = append(script, round)
	}
	return script
}
