package testutil

import (
	"context"
	"testing"

	"multijoin/internal/ivm"
	"multijoin/internal/jointree"
	"multijoin/internal/relation"
)

// removeOne deletes one instance of tp from rel's multiset, reporting
// whether an instance existed — the sequential-reference mirror of the
// view network's unmatched-delete filtering.
func removeOne(rel *relation.Relation, tp relation.Tuple) bool {
	for i, have := range rel.Tuples {
		if have == tp {
			rel.Tuples[i] = rel.Tuples[len(rel.Tuples)-1]
			rel.Tuples = rel.Tuples[:len(rel.Tuples)-1]
			return true
		}
	}
	return false
}

// FuzzViewEquivalence is the view-maintenance differential oracle: for any
// generated scenario (every strategy's plan shape, uniform and skewed
// cardinalities) and any generated delta script, the incrementally
// maintained view must equal a from-scratch recompute of the sequential
// reference over shadow base relations after every round, with the
// unmatched-delete count predicted exactly by the script's ghost deletes.
func FuzzViewEquivalence(f *testing.F) {
	for strat := int64(0); strat < 4; strat++ {
		for size := int64(0); size < 3; size++ {
			f.Add(int64(1995)+strat*31+size, strat+size, strat, size, strat*7+size)
		}
	}
	f.Add(int64(7), int64(3), int64(3), int64(2), int64(40)) // right-bushy FP skewed
	f.Add(int64(-1), int64(-2), int64(-3), int64(-4), int64(-5))
	f.Fuzz(func(t *testing.T, seed, shapeSel, stratSel, sizeSel, deltaSeed int64) {
		s, err := Generate(seed, shapeSel, stratSel, sizeSel)
		if err != nil {
			t.Fatalf("generator rejected (%d,%d,%d,%d): %v", seed, shapeSel, stratSel, sizeSel, err)
		}
		plan, err := s.Query.Plan()
		if err != nil {
			t.Fatalf("%s: Plan: %v", s.Desc, err)
		}
		db := s.Query.DB
		view, err := ivm.New(plan, db.Relation, ivm.Config{BatchTuples: s.BatchTuples})
		if err != nil {
			t.Fatalf("%s: ivm.New: %v", s.Desc, err)
		}
		defer view.Close()

		shadow := make([]*relation.Relation, db.NumRelations())
		for i := range shadow {
			r := db.Relation(i)
			cp := relation.NewWithCap(r.Name, r.TupleBytes, r.Card())
			cp.Append(r.Tuples...)
			shadow[i] = cp
		}
		check := func(round int) {
			got, err := view.Rows()
			if err != nil {
				t.Fatalf("%s: round %d: Rows: %v", s.Desc, round, err)
			}
			want := jointree.Reference(s.Query.Tree, func(leaf int) *relation.Relation { return shadow[leaf] })
			if diff := relation.DiffMultiset(got, want); diff != "" {
				t.Fatalf("%s: deltaSeed=%d round %d: view differs from recompute: %s", s.Desc, deltaSeed, round, diff)
			}
		}
		check(0)

		for r, round := range DeltaScript(db, deltaSeed, 4) {
			res, err := view.Apply(context.Background(), round...)
			if err != nil {
				t.Fatalf("%s: deltaSeed=%d round %d: Apply: %v", s.Desc, deltaSeed, r, err)
			}
			// Mirror the round on the shadows with the view's own ordering
			// contract — all inserts first, then deletes, dropping misses.
			var ghosts int64
			for _, d := range round {
				shadow[d.Rel].Append(d.Insert...)
			}
			for _, d := range round {
				for _, tp := range d.Delete {
					if !removeOne(shadow[d.Rel], tp) {
						ghosts++
					}
				}
			}
			if res.Unmatched != ghosts {
				t.Fatalf("%s: deltaSeed=%d round %d: Unmatched = %d, script has %d ghost deletes",
					s.Desc, deltaSeed, r, res.Unmatched, ghosts)
			}
			check(r + 1)
		}
	})
}
