// Package integration runs cross-module end-to-end checks that no single
// package owns: every strategy over every parenthesization of a chain,
// plan-text round trips through the executor, and the full two-phase
// pipeline against skewed catalogs.
package integration

import (
	"testing"

	"multijoin/internal/core"
	"multijoin/internal/costmodel"
	"multijoin/internal/engine"
	"multijoin/internal/jointree"
	"multijoin/internal/optimizer"
	"multijoin/internal/relation"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
	"multijoin/internal/xra"
)

func chainDB(t *testing.T, k, card int, seed int64) *wisconsin.Database {
	t.Helper()
	db, err := wisconsin.Chain(wisconsin.Config{Relations: k, Cardinality: card, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestAllParenthesizationsAllStrategies executes every join tree of a
// 5-relation chain (14 parenthesizations) under all four strategies and
// compares each result to the sequential reference of the same tree.
func TestAllParenthesizationsAllStrategies(t *testing.T) {
	const k = 5
	db := chainDB(t, k, 120, 101)
	trees, err := optimizer.AllTrees(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 14 {
		t.Fatalf("expected 14 trees, got %d", len(trees))
	}
	for ti, tree := range trees {
		want := core.Reference(db, tree)
		for _, kind := range strategy.Kinds {
			res, err := core.Query{
				DB: db, Tree: tree, Strategy: kind, Procs: 8,
				Params: costmodel.Default(),
			}.Run()
			if err != nil {
				t.Fatalf("tree %d (%v) %v: %v", ti, tree, kind, err)
			}
			if d := relation.DiffMultiset(res.Result, want); d != "" {
				t.Errorf("tree %d (%v) %v: %s", ti, tree, kind, d)
			}
		}
	}
}

// TestPlanTextRoundTripExecutes: encoding a plan to XRA text, parsing it
// back, and executing the parsed plan gives identical results and identical
// virtual response times — the text format loses nothing.
func TestPlanTextRoundTripExecutes(t *testing.T) {
	db := chainDB(t, 6, 200, 102)
	tree, err := jointree.BuildShape(jointree.RightBushy, 6)
	if err != nil {
		t.Fatal(err)
	}
	base := func(leaf int) *relation.Relation { return db.Relation(leaf) }
	for _, kind := range strategy.Kinds {
		q := core.Query{DB: db, Tree: tree, Strategy: kind, Procs: 9, Params: costmodel.Default()}
		plan, err := q.Plan()
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := xra.Parse(xra.Encode(plan))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		a, err := engine.Run(plan, base, costmodel.Default())
		if err != nil {
			t.Fatal(err)
		}
		b, err := engine.Run(parsed, base, costmodel.Default())
		if err != nil {
			t.Fatal(err)
		}
		if a.ResponseTime != b.ResponseTime {
			t.Errorf("%v: parsed plan response %v differs from original %v",
				kind, b.ResponseTime, a.ResponseTime)
		}
		if d := relation.DiffMultiset(a.Result, b.Result); d != "" {
			t.Errorf("%v: parsed plan result differs: %s", kind, d)
		}
	}
}

// TestTwoPhaseOnSkewedChain: phase 1 must pick a cheaper tree than the
// naive linear one on a variable-cardinality chain, and phase 2 must
// execute it correctly with every strategy.
func TestTwoPhaseOnSkewedChain(t *testing.T) {
	cards := []int{2000, 1000, 500, 250, 125, 64}
	db, err := wisconsin.Chain(wisconsin.Config{Cards: cards, Seed: 103})
	if err != nil {
		t.Fatal(err)
	}
	cat := optimizer.Catalog{
		Cards: make([]float64, len(cards)),
		Sel:   make([]float64, len(cards)-1),
	}
	for i, c := range cards {
		cat.Cards[i] = float64(c)
	}
	// Selectivity consistent with the generator: |span(lo,hi)| = cards[lo],
	// i.e. sel at boundary i = 1/cards[i+1].
	for i := range cat.Sel {
		cat.Sel[i] = 1 / float64(cards[i+1])
	}
	opt, err := optimizer.Optimize(cat, optimizer.BushySpace)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range strategy.Kinds {
		res, err := core.Verify(core.Query{
			DB: db, Tree: opt.Tree, Strategy: kind, Procs: 10,
			Params: costmodel.Default(),
		})
		if err != nil {
			t.Fatalf("%v on optimized tree: %v", kind, err)
		}
		if res.Stats.ResultTuples != cards[0] {
			t.Errorf("%v: %d result tuples, want %d", kind, res.Stats.ResultTuples, cards[0])
		}
	}
}

// TestUtilizationNeverExceedsMachine: across a grid of configurations, total
// recorded busy time never exceeds processors x response time, and response
// time never exceeds the sum of all work (sanity bounds of the DES).
func TestUtilizationNeverExceedsMachine(t *testing.T) {
	db := chainDB(t, 8, 300, 104)
	params := costmodel.Default()
	params.RecordUtilization = true
	for _, shape := range jointree.Shapes {
		tree, err := jointree.BuildShape(shape, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range strategy.Kinds {
			res, err := core.Query{DB: db, Tree: tree, Strategy: kind, Procs: 10,
				Params: params}.Run()
			if err != nil {
				t.Fatal(err)
			}
			var busy int64
			for _, p := range res.Procs {
				busy += int64(p.BusyTime())
			}
			capacity := int64(res.ResponseTime) * int64(len(res.Procs))
			if busy > capacity {
				t.Errorf("%v/%v: busy %d exceeds capacity %d", shape, kind, busy, capacity)
			}
			if busy <= 0 {
				t.Errorf("%v/%v: nothing recorded", shape, kind)
			}
		}
	}
}

// TestSchedulerAccounting: the engine's stats must agree with the plan's
// static structure for every strategy and shape.
func TestSchedulerAccounting(t *testing.T) {
	db := chainDB(t, 10, 100, 105)
	for _, shape := range jointree.Shapes {
		tree, err := jointree.BuildShape(shape, 10)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range strategy.Kinds {
			q := core.Query{DB: db, Tree: tree, Strategy: kind, Procs: 12,
				Params: costmodel.Default()}
			plan, err := q.Plan()
			if err != nil {
				t.Fatal(err)
			}
			res, err := q.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Processes != plan.NumProcesses() {
				t.Errorf("%v/%v: processes %d vs plan %d", shape, kind,
					res.Stats.Processes, plan.NumProcesses())
			}
			if res.Stats.Streams != plan.NumStreams() {
				t.Errorf("%v/%v: streams %d vs plan %d", shape, kind,
					res.Stats.Streams, plan.NumStreams())
			}
		}
	}
}
