//go:build pooldebug

package relation

import (
	"fmt"
	"sync"
	"unsafe"
)

// poolDebug (built with -tags pooldebug) enforces the pool's ownership
// discipline at run time instead of assuming it:
//
//   - double Put: returning a batch that is already in the pool panics;
//   - use after Put: Put poisons every column's full capacity with sentinel
//     values, and Get verifies the poison is intact before handing the batch
//     out — any write through a stale alias between Put and the next Get
//     panics at the Get that would have exposed the corruption.
//
// The spill path's release-after-serialize discipline (serialize a batch to
// disk, then Put it) is exactly what this checks: a Put before the write
// completed, or a second Put of the same batch, is caught deterministically
// rather than surfacing as a corrupted join result.
//
// Batches are identified by the U1 column's backing-array pointer (the
// columns travel together for a pooled batch's whole life); the tracking map
// is global per pool and mutex-guarded, so pooldebug builds are for tests,
// not benchmarks.
type poolDebug struct {
	mu     sync.Mutex
	pooled map[unsafe.Pointer]bool // U1 data pointer -> currently in the free list
}

// Poison sentinels per column. The values are implausible for real data
// (join attributes are non-negative).
const (
	poisonU1    = int64(-0x6b6f6c626f6f70)
	poisonU2    = int64(-0x6465616462656566)
	poisonCheck = uint64(0xdeadbeefdeadbeef)
)

func batchPtr(b *Batch) unsafe.Pointer { return unsafe.Pointer(unsafe.SliceData(b.U1)) }

func (d *poolDebug) get(b *Batch, fromFreeList bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if fromFreeList {
		u1, u2, ck := b.U1[:b.Cap()], b.U2[:cap(b.U2)], b.Check[:cap(b.Check)]
		for i := range u1 {
			if u1[i] != poisonU1 || u2[i] != poisonU2 || ck[i] != poisonCheck {
				panic(fmt.Sprintf("relation: pooldebug: use after Put: batch %p slot %d was modified while in the pool", batchPtr(b), i))
			}
		}
	}
	if d.pooled == nil {
		d.pooled = make(map[unsafe.Pointer]bool)
	}
	d.pooled[batchPtr(b)] = false
}

func (d *poolDebug) put(b *Batch) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pooled[batchPtr(b)] {
		panic(fmt.Sprintf("relation: pooldebug: double Put of batch %p", batchPtr(b)))
	}
	u1, u2, ck := b.U1[:b.Cap()], b.U2[:cap(b.U2)], b.Check[:cap(b.Check)]
	for i := range u1 {
		u1[i] = poisonU1
	}
	for i := range u2 {
		u2[i] = poisonU2
	}
	for i := range ck {
		ck[i] = poisonCheck
	}
	if d.pooled == nil {
		d.pooled = make(map[unsafe.Pointer]bool)
	}
	d.pooled[batchPtr(b)] = true
}

// drop forgets a batch the full free list rejected: it is garbage now, and a
// later identical allocation at the same address must not look like a
// double Put.
func (d *poolDebug) drop(b *Batch) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.pooled, batchPtr(b))
}
