//go:build pooldebug

package relation

import (
	"fmt"
	"sync"
	"unsafe"
)

// poolDebug (built with -tags pooldebug) enforces the pool's ownership
// discipline at run time instead of assuming it:
//
//   - double Put: returning a batch that is already in the pool panics;
//   - use after Put: Put poisons the batch's full capacity with sentinel
//     tuples, and Get verifies the poison is intact before handing the batch
//     out — any write through a stale alias between Put and the next Get
//     panics at the Get that would have exposed the corruption.
//
// The spill path's release-after-serialize discipline (serialize a batch to
// disk, then Put it) is exactly what this checks: a Put before the write
// completed, or a second Put of the same batch, is caught deterministically
// rather than surfacing as a corrupted join result.
//
// Batches are identified by their backing-array pointer; the tracking map is
// global per pool and mutex-guarded, so pooldebug builds are for tests, not
// benchmarks.
type poolDebug struct {
	mu     sync.Mutex
	pooled map[unsafe.Pointer]bool // batch data pointer -> currently in the free list
}

// poisonTuple is the sentinel Put fills returned batches with. The values
// are implausible for real data (join attributes are non-negative).
var poisonTuple = Tuple{Unique1: -0x6b6f6c626f6f70, Unique2: -0x6465616462656566, Check: 0xdeadbeefdeadbeef}

func batchPtr(b []Tuple) unsafe.Pointer { return unsafe.Pointer(unsafe.SliceData(b)) }

func (d *poolDebug) get(b []Tuple, fromFreeList bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if fromFreeList {
		for i, t := range b[:cap(b)] {
			if t != poisonTuple {
				panic(fmt.Sprintf("relation: pooldebug: use after Put: batch %p slot %d was modified while in the pool", batchPtr(b), i))
			}
		}
	}
	if d.pooled == nil {
		d.pooled = make(map[unsafe.Pointer]bool)
	}
	d.pooled[batchPtr(b)] = false
}

func (d *poolDebug) put(b []Tuple) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pooled[batchPtr(b)] {
		panic(fmt.Sprintf("relation: pooldebug: double Put of batch %p", batchPtr(b)))
	}
	full := b[:cap(b)]
	for i := range full {
		full[i] = poisonTuple
	}
	if d.pooled == nil {
		d.pooled = make(map[unsafe.Pointer]bool)
	}
	d.pooled[batchPtr(b)] = true
}

// drop forgets a batch the full free list rejected: it is garbage now, and a
// later identical allocation at the same address must not look like a
// double Put.
func (d *poolDebug) drop(b []Tuple) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.pooled, batchPtr(b))
}
