//go:build !pooldebug

package relation

// poolDebug is a no-op unless the binary is built with -tags pooldebug, in
// which case pool_pooldebug.go swaps in a double-Put / use-after-Put
// detector. The zero value is ready to use and adds no per-call cost here.
type poolDebug struct{}

func (poolDebug) get(*Batch, bool) {}
func (poolDebug) put(*Batch)       {}
func (poolDebug) drop(*Batch)      {}
