package relation

// Batch is a columnar tuple batch — the transport unit of every runtime.
// Tuples are stored as three parallel columns (structure-of-arrays): the two
// join-relevant integer attributes and the provenance checksum. The hot
// loops of the execution engines — hashing a key column, routing a batch
// over a consumer's processes, probing a hash table with a whole batch —
// run as tight loops over flat []int64 columns instead of chasing 24-byte
// row structs, which is what lets them vectorize.
//
// A Batch is either pool-shaped (fixed capacity, recycled through a
// BatchPool, ownership transferred along the data path) or a plain growable
// buffer (scratch join results, Grace partition backlogs, scan fragments).
// The zero value is an empty batch ready for appends.
type Batch struct {
	U1    []int64
	U2    []int64
	Check []uint64
}

// NewBatch returns an empty batch with capacity for capTuples tuples in
// each column.
func NewBatch(capTuples int) *Batch {
	if capTuples < 0 {
		capTuples = 0
	}
	return &Batch{
		U1:    make([]int64, 0, capTuples),
		U2:    make([]int64, 0, capTuples),
		Check: make([]uint64, 0, capTuples),
	}
}

// Len returns the number of tuples in the batch.
func (b *Batch) Len() int { return len(b.U1) }

// Cap returns the tuple capacity of the batch's columns.
func (b *Batch) Cap() int { return cap(b.U1) }

// Reset truncates the batch to zero tuples, keeping the columns' capacity.
func (b *Batch) Reset() {
	b.U1 = b.U1[:0]
	b.U2 = b.U2[:0]
	b.Check = b.Check[:0]
}

// Append adds one tuple given as column values.
func (b *Batch) Append(u1, u2 int64, check uint64) {
	b.U1 = append(b.U1, u1)
	b.U2 = append(b.U2, u2)
	b.Check = append(b.Check, check)
}

// AppendTuple adds one row-form tuple.
func (b *Batch) AppendTuple(t Tuple) { b.Append(t.Unique1, t.Unique2, t.Check) }

// AppendTuples adds a slice of row-form tuples, transposing them into the
// columns.
func (b *Batch) AppendTuples(ts []Tuple) {
	for _, t := range ts {
		b.U1 = append(b.U1, t.Unique1)
		b.U2 = append(b.U2, t.Unique2)
		b.Check = append(b.Check, t.Check)
	}
}

// AppendRange bulk-copies rows [lo,hi) of src — three column copies, the
// columnar fast path scans use to fill transport batches.
func (b *Batch) AppendRange(src *Batch, lo, hi int) {
	b.U1 = append(b.U1, src.U1[lo:hi]...)
	b.U2 = append(b.U2, src.U2[lo:hi]...)
	b.Check = append(b.Check, src.Check[lo:hi]...)
}

// Tuple returns row i in row form.
func (b *Batch) Tuple(i int) Tuple {
	return Tuple{Unique1: b.U1[i], Unique2: b.U2[i], Check: b.Check[i]}
}

// View returns rows [lo,hi) as a batch sharing this batch's column storage
// — a read-only window (full-slice expressions keep appends to the view
// from clobbering the parent). Scans use views to emit chunk-at-a-time
// without copying the fragment.
func (b *Batch) View(lo, hi int) Batch {
	return Batch{
		U1:    b.U1[lo:hi:hi],
		U2:    b.U2[lo:hi:hi],
		Check: b.Check[lo:hi:hi],
	}
}

// Col returns the column of the given join attribute — the key column a
// vectorized hash or probe loop iterates.
func (b *Batch) Col(a Attr) []int64 {
	if a == Unique1 {
		return b.U1
	}
	return b.U2
}

// AppendTo appends the batch's tuples to a relation in row form (the
// materialization boundary: collect gathers and cursors leave columnar
// space here).
func (b *Batch) AppendTo(r *Relation) { b.AppendRangeTo(r, 0, b.Len()) }

// AppendRangeTo appends rows [lo,hi) to a relation in row form.
func (b *Batch) AppendRangeTo(r *Relation, lo, hi int) {
	for i := lo; i < hi; i++ {
		r.Tuples = append(r.Tuples, Tuple{Unique1: b.U1[i], Unique2: b.U2[i], Check: b.Check[i]})
	}
}

// Tuples returns the batch as a freshly allocated row-form slice — test and
// debugging convenience, not a hot path.
func (b *Batch) Tuples() []Tuple {
	out := make([]Tuple, 0, b.Len())
	for i := range b.U1 {
		out = append(out, b.Tuple(i))
	}
	return out
}

// FragmentBatches hash-partitions r on attribute a into n columnar
// fragments, exactly like Fragment but producing scan-ready batches as a
// counting sort into three shared backing arrays: one hash pass records
// each tuple's fragment and the fragment cardinalities, the columns are
// allocated once for the whole relation, and the placement pass scatters
// column values to precomputed offsets. Every fragment is a capacity-capped
// window into the shared columns, so fragmenting costs a constant number of
// allocations regardless of n. Fragment i holds exactly the tuples with
// HashKey(t.Get(a), n) == i.
func FragmentBatches(r *Relation, a Attr, n int) []Batch {
	if n < 1 {
		n = 1
	}
	total := len(r.Tuples)
	frags := make([]Batch, n)
	ids := make([]int32, total)
	counts := make([]int32, n)
	bk := NewBucketer(n)
	for i, t := range r.Tuples {
		f := int32(bk.Bucket(t.Get(a)))
		ids[i] = f
		counts[f]++
	}
	u1 := make([]int64, total)
	u2 := make([]int64, total)
	check := make([]uint64, total)
	cursor := make([]int32, n)
	off := int32(0)
	for i, c := range counts {
		cursor[i] = off
		hi := off + c
		frags[i].U1 = u1[off:hi:hi]
		frags[i].U2 = u2[off:hi:hi]
		frags[i].Check = check[off:hi:hi]
		off = hi
	}
	for i, t := range r.Tuples {
		p := cursor[ids[i]]
		cursor[ids[i]] = p + 1
		u1[p] = t.Unique1
		u2[p] = t.Unique2
		check[p] = t.Check
	}
	return frags
}
