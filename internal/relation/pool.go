package relation

// BatchPool recycles fixed-capacity columnar batches across the producers
// and consumers of one execution: scans, redistribution out-buffers and
// channel items draw batches with Get and the consumer that exhausts a
// batch returns it with Put, so steady-state execution allocates no
// per-batch garbage. The free list is a buffered channel — Get and Put are
// themselves allocation-free (unlike sync.Pool, whose interface boxing
// costs one header allocation per cycle) and safe for concurrent use. An
// empty free list falls back to NewBatch; a full one drops the batch to the
// garbage collector, so Put never blocks.
type BatchPool struct {
	size int
	free chan *Batch
	// acct, when set, observes the live-batch byte balance: +batch bytes on
	// every Get, -batch bytes on every Put of a pool-shaped batch. A memory
	// budget (spill runtime) hangs off this hook.
	acct func(deltaBytes int64)
	dbg  poolDebug
}

// MaxPoolRetain is the conventional upper bound both runtimes place on a
// pool's free list: beyond this many idle batches the pool would only
// hoard memory.
const MaxPoolRetain = 1 << 14

// NewBatchPool returns a pool of batches with capacity size tuples each,
// retaining at most retain idle batches. retain should cover the number of
// batches in flight at once (roughly streams × channel depth, capped at
// MaxPoolRetain); beyond that the pool only trades memory for nothing.
func NewBatchPool(size, retain int) *BatchPool {
	if size < 1 {
		size = 1
	}
	if retain < 1 {
		retain = 1
	}
	return &BatchPool{size: size, free: make(chan *Batch, retain)}
}

// NewBatchPoolAccounted is NewBatchPool with a live-byte accounting hook:
// acct observes +size×TupleWireBytes on every Get and the matching negative
// delta on every Put of a pool-shaped batch, so the caller always knows how
// many bytes of pooled batches are checked out. The hook must be safe for
// concurrent use (Get and Put are called from many goroutines).
func NewBatchPoolAccounted(size, retain int, acct func(deltaBytes int64)) *BatchPool {
	p := NewBatchPool(size, retain)
	p.acct = acct
	return p
}

// batchBytes is the accounted size of one pooled batch: full capacity, since
// the capacity is reserved whether or not the batch is full.
func (p *BatchPool) batchBytes() int64 { return int64(p.size) * TupleWireBytes }

// BatchSize returns the capacity, in tuples, of the pool's batches.
func (p *BatchPool) BatchSize() int { return p.size }

// Get returns an empty batch with the pool's capacity.
func (p *BatchPool) Get() *Batch {
	if p.acct != nil {
		p.acct(p.batchBytes())
	}
	select {
	case b := <-p.free:
		p.dbg.get(b, true)
		b.Reset()
		return b
	default:
		b := NewBatch(p.size)
		p.dbg.get(b, false)
		return b
	}
}

// Put returns a batch to the pool. Batches that did not come from a pool of
// the same size (or grew past their capacity) are dropped, so handing a
// foreign batch to Put is harmless — but note that the pool will reuse
// accepted batches: never Put a batch that something still aliases.
func (p *BatchPool) Put(b *Batch) {
	if b == nil || b.Cap() != p.size {
		return
	}
	p.dbg.put(b)
	if p.acct != nil {
		p.acct(-p.batchBytes())
	}
	select {
	case p.free <- b:
	default:
		p.dbg.drop(b)
	}
}
