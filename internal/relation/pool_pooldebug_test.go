//go:build pooldebug

package relation

import (
	"strings"
	"testing"
)

// mustPanic runs fn and returns the recovered panic message, failing the
// test if fn returns normally.
func mustPanic(t *testing.T, fn func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		fn()
		t.Fatal("expected a pooldebug panic, got none")
	}()
	return msg
}

// TestPoolDebugDoublePut asserts that returning the same batch twice panics
// with a double-Put diagnostic.
func TestPoolDebugDoublePut(t *testing.T) {
	p := NewBatchPool(8, 4)
	b := p.Get()
	b.AppendTuple(Tuple{Unique1: 1})
	p.Put(b)
	msg := mustPanic(t, func() { p.Put(b) })
	if !strings.Contains(msg, "double Put") {
		t.Errorf("double Put panic message %q does not mention double Put", msg)
	}
}

// TestPoolDebugUseAfterPut asserts that writing through a stale alias after
// Put is caught at the Get that would have handed out the corrupted batch.
func TestPoolDebugUseAfterPut(t *testing.T) {
	p := NewBatchPool(8, 1)
	b := p.Get()
	b.AppendTuple(Tuple{Unique1: 7})
	u1 := b.U1 // column alias surviving the Put
	p.Put(b)
	// A retained alias mutates the batch while it sits in the pool — the
	// spill bug this detector exists for (Put before the serialize finished).
	u1[0] = 42
	msg := mustPanic(t, func() { p.Get() })
	if !strings.Contains(msg, "use after Put") {
		t.Errorf("use-after-Put panic message %q does not mention use after Put", msg)
	}
}

// TestPoolDebugCleanCycleDoesNotPanic asserts the detector stays silent for
// the disciplined Get/append/Put cycle both runtimes perform.
func TestPoolDebugCleanCycleDoesNotPanic(t *testing.T) {
	p := NewBatchPool(4, 2)
	for i := 0; i < 16; i++ {
		b := p.Get()
		for j := 0; j < 4; j++ {
			b.Append(int64(i), int64(j), 0)
		}
		p.Put(b)
	}
}
