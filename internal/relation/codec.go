package relation

import (
	"encoding/binary"
	"fmt"
)

// TupleWireBytes is the payload size of one tuple in the binary spill
// format (and, not coincidentally, its in-memory size): Unique1, Unique2
// and Check as three 8-byte little-endian words. Memory budgets and
// spill-file sizes are both expressed in these bytes, so "bytes spilled"
// and "bytes resident" are directly comparable.
const TupleWireBytes = 24

// BlockHeaderBytes is the size of the per-block framing: one 8-byte
// little-endian tuple count. The encoding is column-contiguous *within* a
// block — all Unique1 words, then all Unique2 words, then all Check words —
// so the count is needed up front to locate the columns; in exchange,
// encode and decode are three bulk column loops instead of a per-tuple
// three-field interleave.
const BlockHeaderBytes = 8

// BlockBytes returns the encoded size of one block of n tuples.
func BlockBytes(n int) int { return BlockHeaderBytes + n*TupleWireBytes }

// MaxBlockTuples bounds the tuples per encoded block. Writers split larger
// batches into multiple blocks, so a block-at-a-time reader needs at most
// BlockBytes(MaxBlockTuples) ≈ 12KB of staging buffer per partition,
// however large the spilled backlog was.
const MaxBlockTuples = 512

// AppendBlockBytes encodes rows [lo,hi) of a batch as one column-contiguous
// block and appends it to dst, returning the extended slice: the count
// header, the U1 column, the U2 column, the Check column.
func AppendBlockBytes(dst []byte, b *Batch, lo, hi int) []byte {
	n := hi - lo
	need := BlockBytes(n)
	off := len(dst)
	dst = append(dst, make([]byte, need)...)
	binary.LittleEndian.PutUint64(dst[off:], uint64(n))
	off += BlockHeaderBytes
	for _, v := range b.U1[lo:hi] {
		binary.LittleEndian.PutUint64(dst[off:], uint64(v))
		off += 8
	}
	for _, v := range b.U2[lo:hi] {
		binary.LittleEndian.PutUint64(dst[off:], uint64(v))
		off += 8
	}
	for _, v := range b.Check[lo:hi] {
		binary.LittleEndian.PutUint64(dst[off:], v)
		off += 8
	}
	return dst
}

// AppendBatchBytes encodes a whole batch as one column-contiguous block and
// appends it to dst. A file of appended blocks decodes back with
// TuplesFromBytes or block-at-a-time readers (BlockHeader/BlockCount +
// Batch.AppendColumns). Callers that must bound their read buffer split at
// MaxBlockTuples via AppendBlockBytes instead.
func AppendBatchBytes(dst []byte, b *Batch) []byte {
	return AppendBlockBytes(dst, b, 0, b.Len())
}

// AppendBlocksBytes encodes the whole batch as consecutive blocks of at
// most max tuples each (max < 1 means MaxBlockTuples) and appends them to
// dst — the framing used to ship pre-placed scan fragments over the wire;
// the receiver decodes with Batch.AppendBlocks. An empty batch encodes to
// nothing.
func AppendBlocksBytes(dst []byte, b *Batch, max int) []byte {
	if max < 1 {
		max = MaxBlockTuples
	}
	n := b.Len()
	for lo := 0; lo < n; lo += max {
		hi := lo + max
		if hi > n {
			hi = n
		}
		dst = AppendBlockBytes(dst, b, lo, hi)
	}
	return dst
}

// AppendBlocks decodes a whole number of consecutive encoded blocks (as
// produced by AppendBlocksBytes or repeated AppendBatchBytes) into b.
func (b *Batch) AppendBlocks(src []byte) error {
	for len(src) > 0 {
		n, size, err := BlockHeader(src)
		if err != nil {
			return err
		}
		b.AppendColumns(src[BlockHeaderBytes:size], n, 0, n)
		src = src[size:]
	}
	return nil
}

// BlockCount parses a block's count header alone — for streaming readers
// that read the fixed-size header first and then exactly the block body.
func BlockCount(hdr []byte) (int, error) {
	if len(hdr) < BlockHeaderBytes {
		return 0, fmt.Errorf("relation: truncated block header: %d bytes", len(hdr))
	}
	n := binary.LittleEndian.Uint64(hdr)
	if int64(n) < 0 || n > (1<<40) {
		return 0, fmt.Errorf("relation: implausible block tuple count %d", n)
	}
	return int(n), nil
}

// AppendTupleBytes encodes a slice of row-form tuples as one block —
// AppendBatchBytes for callers that hold rows (tests, the sequential
// reference).
func AppendTupleBytes(dst []byte, ts []Tuple) []byte {
	var b Batch
	b.AppendTuples(ts)
	return AppendBatchBytes(dst, &b)
}

// BlockHeader parses the framing of the block at the head of src and
// returns its tuple count and total encoded size (header included). It
// fails on a truncated header or body.
func BlockHeader(src []byte) (tuples, size int, err error) {
	if len(src) < BlockHeaderBytes {
		return 0, 0, fmt.Errorf("relation: truncated block header: %d bytes", len(src))
	}
	n := binary.LittleEndian.Uint64(src)
	if int64(n) < 0 || n > (1<<40) {
		// Counts beyond any plausible block are rejected before the size
		// arithmetic can overflow — this is also what keeps a signed block
		// (SignedBlockFlag set in the header) from misparsing here.
		return 0, 0, fmt.Errorf("relation: implausible block tuple count %d", n)
	}
	size = BlockBytes(int(n))
	if len(src) < size {
		return 0, 0, fmt.Errorf("relation: block claims %d tuples (%d bytes) but only %d bytes remain", n, size, len(src))
	}
	return int(n), size, nil
}

// AppendColumns decodes rows [lo,hi) of an n-tuple block body (the bytes
// after the count header) and appends them to b — three bulk column loops.
// The caller has validated the framing with BlockHeader.
func (b *Batch) AppendColumns(body []byte, n, lo, hi int) {
	u1 := body[:n*8]
	u2 := body[n*8 : 2*n*8]
	ck := body[2*n*8 : 3*n*8]
	for off := lo * 8; off < hi*8; off += 8 {
		b.U1 = append(b.U1, int64(binary.LittleEndian.Uint64(u1[off:])))
	}
	for off := lo * 8; off < hi*8; off += 8 {
		b.U2 = append(b.U2, int64(binary.LittleEndian.Uint64(u2[off:])))
	}
	for off := lo * 8; off < hi*8; off += 8 {
		b.Check = append(b.Check, binary.LittleEndian.Uint64(ck[off:]))
	}
}

// TuplesFromBytes decodes src (a whole number of encoded blocks) and
// appends the tuples to dst, returning the extended slice — the row-form
// decoder used by tests and oracles; the runtimes decode straight into
// columnar batches instead.
func TuplesFromBytes(dst []Tuple, src []byte) ([]Tuple, error) {
	for len(src) > 0 {
		n, size, err := BlockHeader(src)
		if err != nil {
			return dst, err
		}
		var b Batch
		b.AppendColumns(src[BlockHeaderBytes:size], n, 0, n)
		for i := 0; i < n; i++ {
			dst = append(dst, b.Tuple(i))
		}
		src = src[size:]
	}
	return dst, nil
}
