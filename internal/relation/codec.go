package relation

import (
	"encoding/binary"
	"fmt"
)

// TupleWireBytes is the size of one tuple in the binary spill format (and,
// not coincidentally, its in-memory size): Unique1, Unique2 and Check as
// three 8-byte little-endian words. Memory budgets and spill-file sizes are
// both expressed in these bytes, so "bytes spilled" and "bytes resident"
// are directly comparable.
const TupleWireBytes = 24

// AppendTupleBytes encodes a batch of tuples in the binary spill format and
// appends it to dst, returning the extended slice. The encoding is
// fixed-width, so a file of encoded batches needs no framing: any multiple
// of TupleWireBytes decodes back.
func AppendTupleBytes(dst []byte, ts []Tuple) []byte {
	for _, t := range ts {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(t.Unique1))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(t.Unique2))
		dst = binary.LittleEndian.AppendUint64(dst, t.Check)
	}
	return dst
}

// TuplesFromBytes decodes src (a whole number of wire tuples) and appends
// the tuples to dst, returning the extended slice. Decoding into a pooled
// batch is the intended use: the caller owns sizing.
func TuplesFromBytes(dst []Tuple, src []byte) ([]Tuple, error) {
	if len(src)%TupleWireBytes != 0 {
		return dst, fmt.Errorf("relation: %d bytes is not a whole number of %d-byte tuples", len(src), TupleWireBytes)
	}
	for off := 0; off < len(src); off += TupleWireBytes {
		dst = append(dst, Tuple{
			Unique1: int64(binary.LittleEndian.Uint64(src[off:])),
			Unique2: int64(binary.LittleEndian.Uint64(src[off+8:])),
			Check:   binary.LittleEndian.Uint64(src[off+16:]),
		})
	}
	return dst, nil
}
