package relation

import (
	"math/rand"
	"testing"
)

func randBatch(rng *rand.Rand, n int) *Batch {
	b := NewBatch(n)
	for i := 0; i < n; i++ {
		b.Append(rng.Int63(), rng.Int63(), rng.Uint64())
	}
	return b
}

func batchesEqual(t *testing.T, name string, got, want *Batch) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d tuples, want %d", name, got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.Tuple(i) != want.Tuple(i) {
			t.Fatalf("%s: tuple %d = %v, want %v", name, i, got.Tuple(i), want.Tuple(i))
		}
	}
}

// TestSignedBlockRoundTrip round-trips mixed-sign deltas through single
// blocks and through the splitting encoder, across sizes that cover empty
// sides, bitmap byte boundaries, and multi-block splits.
func TestSignedBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1995))
	sizes := [][2]int{{0, 0}, {1, 0}, {0, 1}, {7, 9}, {8, 8}, {300, 212}, {512, 0}, {600, 1300}}
	for _, sz := range sizes {
		ins, del := randBatch(rng, sz[0]), randBatch(rng, sz[1])
		var enc []byte
		if sz[0]+sz[1] <= MaxBlockTuples {
			enc = AppendSignedBlockBytes(nil, ins, del)
			if sz[0]+sz[1] > 0 && len(enc) != SignedBlockBytes(sz[0]+sz[1]) {
				t.Fatalf("size %v: encoded %d bytes, want %d", sz, len(enc), SignedBlockBytes(sz[0]+sz[1]))
			}
			gotIns, gotDel := NewBatch(0), NewBatch(0)
			if err := DecodeSignedBlocks(enc, gotIns, gotDel); err != nil {
				t.Fatalf("size %v: decode: %v", sz, err)
			}
			batchesEqual(t, "single-block ins", gotIns, ins)
			batchesEqual(t, "single-block del", gotDel, del)
		}
		enc = AppendSignedBlocksBytes(nil, ins, del, 128)
		gotIns, gotDel := NewBatch(0), NewBatch(0)
		if err := DecodeSignedBlocks(enc, gotIns, gotDel); err != nil {
			t.Fatalf("size %v: decode split: %v", sz, err)
		}
		batchesEqual(t, "split ins", gotIns, ins)
		batchesEqual(t, "split del", gotDel, del)
	}
}

// TestSignedBlocksInterleaveUnsigned checks a stream mixing unsigned and
// signed blocks decodes correctly: unsigned rows land on the insert side.
func TestSignedBlocksInterleaveUnsigned(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	plain, ins, del := randBatch(rng, 40), randBatch(rng, 17), randBatch(rng, 23)
	enc := AppendBlocksBytes(nil, plain, 16)
	enc = AppendSignedBlocksBytes(enc, ins, del, 10)
	gotIns, gotDel := NewBatch(0), NewBatch(0)
	if err := DecodeSignedBlocks(enc, gotIns, gotDel); err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := NewBatch(0)
	want.AppendRange(plain, 0, plain.Len())
	want.AppendRange(ins, 0, ins.Len())
	batchesEqual(t, "mixed ins", gotIns, want)
	batchesEqual(t, "mixed del", gotDel, del)
}

// TestSignedBlockRejectedByUnsignedReaders pins the compatibility story: a
// pre-signed-format reader must reject a signed block loudly (the flagged
// count is implausible) instead of misparsing its body.
func TestSignedBlockRejectedByUnsignedReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	enc := AppendSignedBlockBytes(nil, randBatch(rng, 4), randBatch(rng, 4))
	if _, _, err := BlockHeader(enc); err == nil {
		t.Fatal("BlockHeader accepted a signed block")
	}
	if _, err := BlockCount(enc); err == nil {
		t.Fatal("BlockCount accepted a signed block")
	}
	if _, err := TuplesFromBytes(nil, enc); err == nil {
		t.Fatal("TuplesFromBytes accepted a signed block")
	}
}

// TestSignedBlockHeaderTruncation checks framing validation on short input.
func TestSignedBlockHeaderTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	enc := AppendSignedBlockBytes(nil, randBatch(rng, 10), nil)
	for _, cut := range []int{3, BlockHeaderBytes, len(enc) - 1} {
		if _, _, _, err := SignedBlockHeader(enc[:cut]); err == nil {
			t.Fatalf("SignedBlockHeader accepted %d of %d bytes", cut, len(enc))
		}
	}
	if _, _, signed, err := SignedBlockHeader(enc); err != nil || !signed {
		t.Fatalf("SignedBlockHeader(full) = signed %v, err %v", signed, err)
	}
}
