package relation

import (
	"math"
	"testing"
)

// TestTupleCodecRoundTrip encodes and decodes batches, including negative
// attributes and extreme checksums, and asserts exact round-tripping.
func TestTupleCodecRoundTrip(t *testing.T) {
	batches := [][]Tuple{
		nil,
		{},
		{{Unique1: 0, Unique2: 0, Check: 0}},
		{
			{Unique1: 1, Unique2: 2, Check: 3},
			{Unique1: -1, Unique2: math.MinInt64, Check: math.MaxUint64},
			{Unique1: math.MaxInt64, Unique2: -42, Check: 0xdeadbeef},
		},
	}
	for _, ts := range batches {
		enc := AppendTupleBytes(nil, ts)
		if got, want := len(enc), len(ts)*TupleWireBytes; got != want {
			t.Fatalf("encoded %d tuples into %d bytes, want %d", len(ts), got, want)
		}
		dec, err := TuplesFromBytes(nil, enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != len(ts) {
			t.Fatalf("decoded %d tuples, want %d", len(dec), len(ts))
		}
		for i := range ts {
			if dec[i] != ts[i] {
				t.Errorf("tuple %d: got %+v want %+v", i, dec[i], ts[i])
			}
		}
	}
}

// TestTupleCodecAppendsToDst asserts both directions append rather than
// overwrite, the contract pooled-buffer reuse relies on.
func TestTupleCodecAppendsToDst(t *testing.T) {
	a := []Tuple{{Unique1: 1}}
	b := []Tuple{{Unique1: 2}}
	enc := AppendTupleBytes(AppendTupleBytes(nil, a), b)
	dec, err := TuplesFromBytes([]Tuple{{Unique1: 99}}, enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 3 || dec[0].Unique1 != 99 || dec[1].Unique1 != 1 || dec[2].Unique1 != 2 {
		t.Fatalf("append contract broken: %+v", dec)
	}
}

// TestTupleCodecRejectsPartialTuple asserts truncated input errors instead
// of decoding garbage.
func TestTupleCodecRejectsPartialTuple(t *testing.T) {
	enc := AppendTupleBytes(nil, []Tuple{{Unique1: 1}})
	if _, err := TuplesFromBytes(nil, enc[:TupleWireBytes-1]); err == nil {
		t.Fatal("decoding a partial tuple succeeded, want error")
	}
}

// TestBatchPoolAccounting asserts the accounting hook sees +cap bytes per
// Get and the matching negative delta per Put, and nothing for foreign
// batches.
func TestBatchPoolAccounting(t *testing.T) {
	var live int64
	p := NewBatchPoolAccounted(16, 4, func(d int64) { live += d })
	b1, b2 := p.Get(), p.Get()
	if want := int64(2 * 16 * TupleWireBytes); live != want {
		t.Fatalf("after 2 Gets live=%d, want %d", live, want)
	}
	p.Put(b1)
	p.Put(b2)
	if live != 0 {
		t.Fatalf("after matching Puts live=%d, want 0", live)
	}
	p.Put(make([]Tuple, 0, 7)) // foreign capacity: dropped, not accounted
	if live != 0 {
		t.Fatalf("foreign Put changed live to %d", live)
	}
}
