package relation

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestTupleCodecRoundTrip encodes and decodes batches, including negative
// attributes and extreme checksums, and asserts exact round-tripping.
func TestTupleCodecRoundTrip(t *testing.T) {
	batches := [][]Tuple{
		nil,
		{},
		{{Unique1: 0, Unique2: 0, Check: 0}},
		{
			{Unique1: 1, Unique2: 2, Check: 3},
			{Unique1: -1, Unique2: math.MinInt64, Check: math.MaxUint64},
			{Unique1: math.MaxInt64, Unique2: -42, Check: 0xdeadbeef},
		},
	}
	for _, ts := range batches {
		enc := AppendTupleBytes(nil, ts)
		if got, want := len(enc), BlockBytes(len(ts)); got != want {
			t.Fatalf("encoded %d tuples into %d bytes, want %d", len(ts), got, want)
		}
		dec, err := TuplesFromBytes(nil, enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != len(ts) {
			t.Fatalf("decoded %d tuples, want %d", len(dec), len(ts))
		}
		for i := range ts {
			if dec[i] != ts[i] {
				t.Errorf("tuple %d: got %+v want %+v", i, dec[i], ts[i])
			}
		}
	}
}

// TestColumnarCodecRoundTripProperty is the property test for the columnar
// wire format: random batches, split into blocks at random boundaries (the
// writers' MaxBlockTuples discipline), encoded column-contiguously with
// AppendBlockBytes and decoded back through the row-form TuplesFromBytes
// oracle, must reproduce the original multiset. `make pooldebug` runs it
// with the pool poison detector armed and `make test` under -race.
func TestColumnarCodecRoundTripProperty(t *testing.T) {
	sorted := func(ts []Tuple) []Tuple {
		out := append([]Tuple(nil), ts...)
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			if a.Unique1 != b.Unique1 {
				return a.Unique1 < b.Unique1
			}
			if a.Unique2 != b.Unique2 {
				return a.Unique2 < b.Unique2
			}
			return a.Check < b.Check
		})
		return out
	}
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 3000)
		var b Batch
		want := make([]Tuple, n)
		for i := range want {
			want[i] = Tuple{
				Unique1: rng.Int63() - rng.Int63(), // full signed range, both signs
				Unique2: rng.Int63() - rng.Int63(),
				Check:   rng.Uint64(),
			}
			b.AppendTuple(want[i])
		}
		// Encode as a sequence of blocks split at random points, none
		// larger than MaxBlockTuples — the shape a spill writer produces.
		var enc []byte
		for lo := 0; lo < n; {
			hi := lo + 1 + rng.Intn(MaxBlockTuples)
			if hi > n {
				hi = n
			}
			enc = AppendBlockBytes(enc, &b, lo, hi)
			lo = hi
		}
		dec, err := TuplesFromBytes(nil, enc)
		if err != nil {
			t.Logf("seed %d n %d: decode failed: %v", seed, n, err)
			return false
		}
		gs, ws := sorted(dec), sorted(want)
		if len(gs) != len(ws) {
			return false
		}
		for i := range gs {
			if gs[i] != ws[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestTupleCodecAppendsToDst asserts both directions append rather than
// overwrite, the contract pooled-buffer reuse relies on.
func TestTupleCodecAppendsToDst(t *testing.T) {
	a := []Tuple{{Unique1: 1}}
	b := []Tuple{{Unique1: 2}}
	enc := AppendTupleBytes(AppendTupleBytes(nil, a), b)
	dec, err := TuplesFromBytes([]Tuple{{Unique1: 99}}, enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 3 || dec[0].Unique1 != 99 || dec[1].Unique1 != 1 || dec[2].Unique1 != 2 {
		t.Fatalf("append contract broken: %+v", dec)
	}
}

// TestTupleCodecRejectsPartialTuple asserts truncated input errors instead
// of decoding garbage — a block claiming more tuples than the remaining
// bytes hold, and a truncated header.
func TestTupleCodecRejectsPartialTuple(t *testing.T) {
	enc := AppendTupleBytes(nil, []Tuple{{Unique1: 1}})
	if _, err := TuplesFromBytes(nil, enc[:len(enc)-1]); err == nil {
		t.Fatal("decoding a truncated block succeeded, want error")
	}
	if _, err := TuplesFromBytes(nil, enc[:BlockHeaderBytes-1]); err == nil {
		t.Fatal("decoding a truncated header succeeded, want error")
	}
}

// TestBatchPoolAccounting asserts the accounting hook sees +cap bytes per
// Get and the matching negative delta per Put, and nothing for foreign
// batches.
func TestBatchPoolAccounting(t *testing.T) {
	var live int64
	p := NewBatchPoolAccounted(16, 4, func(d int64) { live += d })
	b1, b2 := p.Get(), p.Get()
	if want := int64(2 * 16 * TupleWireBytes); live != want {
		t.Fatalf("after 2 Gets live=%d, want %d", live, want)
	}
	p.Put(b1)
	p.Put(b2)
	if live != 0 {
		t.Fatalf("after matching Puts live=%d, want 0", live)
	}
	p.Put(NewBatch(7)) // foreign capacity: dropped, not accounted
	if live != 0 {
		t.Fatalf("foreign Put changed live to %d", live)
	}
}
