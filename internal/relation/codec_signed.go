package relation

import (
	"encoding/binary"
	"fmt"
)

// Signed blocks extend the columnar block format with a per-tuple sign —
// the wire form of a view-maintenance delta, where every tuple is either
// an insert (+) or a delete (−). A signed block reuses the 8-byte count
// header with SignedBlockFlag set in the high bits (plain counts are
// bounded far below it, so the flag bit is unambiguous) and appends a
// (n+7)/8-byte sign bitmap after the Check column: bit i set means tuple i
// is a delete. Unsigned blocks are unchanged, and a pre-signed-format
// reader rejects a signed block loudly (the flagged count is implausibly
// large) instead of misparsing it.

// SignedBlockFlag marks a block's count header as signed: the body carries
// a sign bitmap after the Check column.
const SignedBlockFlag uint64 = 1 << 62

// SignedBlockBytes returns the encoded size of one signed block of n
// tuples: the plain block plus the sign bitmap.
func SignedBlockBytes(n int) int { return BlockBytes(n) + (n+7)/8 }

// AppendSignedBlockBytes encodes all rows of ins (as inserts) followed by
// all rows of del (as deletes) as one signed block and appends it to dst.
// The combined count must not exceed MaxBlockTuples; nil batches read as
// empty. Callers with larger deltas split with AppendSignedBlocksBytes.
func AppendSignedBlockBytes(dst []byte, ins, del *Batch) []byte {
	ni, nd := 0, 0
	if ins != nil {
		ni = ins.Len()
	}
	if del != nil {
		nd = del.Len()
	}
	n := ni + nd
	if n > MaxBlockTuples {
		panic(fmt.Sprintf("relation: signed block of %d tuples exceeds MaxBlockTuples", n))
	}
	need := SignedBlockBytes(n)
	off := len(dst)
	dst = append(dst, make([]byte, need)...)
	binary.LittleEndian.PutUint64(dst[off:], uint64(n)|SignedBlockFlag)
	off += BlockHeaderBytes
	off = putSignedColumn(dst, off, colU1, ins, del)
	off = putSignedColumn(dst, off, colU2, ins, del)
	off = putSignedColumn(dst, off, colCheck, ins, del)
	// Sign bitmap: the first ni bits stay zero; bits ni..n-1 mark deletes.
	for i := ni; i < n; i++ {
		dst[off+i/8] |= 1 << (i % 8)
	}
	return dst
}

const (
	colU1 = iota
	colU2
	colCheck
)

// putSignedColumn writes one column of a signed block — ins rows then del
// rows — at off and returns the offset past it.
func putSignedColumn(dst []byte, off, col int, ins, del *Batch) int {
	for _, b := range [2]*Batch{ins, del} {
		if b == nil {
			continue
		}
		switch col {
		case colU1:
			for _, v := range b.U1 {
				binary.LittleEndian.PutUint64(dst[off:], uint64(v))
				off += 8
			}
		case colU2:
			for _, v := range b.U2 {
				binary.LittleEndian.PutUint64(dst[off:], uint64(v))
				off += 8
			}
		default:
			for _, v := range b.Check {
				binary.LittleEndian.PutUint64(dst[off:], v)
				off += 8
			}
		}
	}
	return off
}

// AppendSignedBlocksBytes encodes a whole delta — ins inserts plus del
// deletes — as consecutive signed blocks of at most max tuples each
// (max < 1 means MaxBlockTuples) and appends them to dst. The receiver
// decodes with DecodeSignedBlocks. An empty delta encodes to nothing.
func AppendSignedBlocksBytes(dst []byte, ins, del *Batch, max int) []byte {
	if max < 1 || max > MaxBlockTuples {
		max = MaxBlockTuples
	}
	for _, part := range [2]struct {
		b   *Batch
		del bool
	}{{ins, false}, {del, true}} {
		if part.b == nil {
			continue
		}
		n := part.b.Len()
		for lo := 0; lo < n; lo += max {
			hi := lo + max
			if hi > n {
				hi = n
			}
			var view Batch
			view.U1 = part.b.U1[lo:hi]
			view.U2 = part.b.U2[lo:hi]
			view.Check = part.b.Check[lo:hi]
			if part.del {
				dst = AppendSignedBlockBytes(dst, nil, &view)
			} else {
				dst = AppendSignedBlockBytes(dst, &view, nil)
			}
		}
	}
	return dst
}

// SignedBlockHeader parses the framing of the block at the head of src —
// signed or unsigned — returning its tuple count, total encoded size and
// whether it carries a sign bitmap.
func SignedBlockHeader(src []byte) (tuples, size int, signed bool, err error) {
	if len(src) < BlockHeaderBytes {
		return 0, 0, false, fmt.Errorf("relation: truncated block header: %d bytes", len(src))
	}
	raw := binary.LittleEndian.Uint64(src)
	signed = raw&SignedBlockFlag != 0
	n := raw &^ SignedBlockFlag
	if int64(n) < 0 || n > (1<<40) {
		return 0, 0, false, fmt.Errorf("relation: implausible block tuple count %d", n)
	}
	size = BlockBytes(int(n))
	if signed {
		size = SignedBlockBytes(int(n))
	}
	if len(src) < size {
		return 0, 0, false, fmt.Errorf("relation: block claims %d tuples (%d bytes) but only %d bytes remain", n, size, len(src))
	}
	return int(n), size, signed, nil
}

// DecodeSignedBlocks decodes src — a whole number of consecutive blocks,
// signed or unsigned — appending insert rows to ins and delete rows to del
// (every row of an unsigned block is an insert).
func DecodeSignedBlocks(src []byte, ins, del *Batch) error {
	for len(src) > 0 {
		n, size, signed, err := SignedBlockHeader(src)
		if err != nil {
			return err
		}
		body := src[BlockHeaderBytes:size]
		if !signed {
			ins.AppendColumns(body, n, 0, n)
			src = src[size:]
			continue
		}
		signs := body[n*24:]
		// Decode sign runs so the bulk column decoder still does the work.
		for lo := 0; lo < n; {
			neg := signs[lo/8]&(1<<(lo%8)) != 0
			hi := lo + 1
			for hi < n && (signs[hi/8]&(1<<(hi%8)) != 0) == neg {
				hi++
			}
			dst := ins
			if neg {
				dst = del
			}
			dst.AppendColumns(body[:n*24], n, lo, hi)
			lo = hi
		}
		src = src[size:]
	}
	return nil
}
