package relation

import (
	"sync"
	"testing"
)

func TestBatchPoolReuse(t *testing.T) {
	p := NewBatchPool(8, 4)
	if p.BatchSize() != 8 {
		t.Fatalf("BatchSize = %d", p.BatchSize())
	}
	b := p.Get()
	if b.Len() != 0 || b.Cap() != 8 {
		t.Fatalf("Get: len=%d cap=%d", b.Len(), b.Cap())
	}
	b.AppendTuple(Tuple{Unique1: 1})
	p.Put(b)
	b2 := p.Get()
	if b2.Len() != 0 || b2.Cap() != 8 {
		t.Fatalf("recycled batch: len=%d cap=%d", b2.Len(), b2.Cap())
	}
	if b != b2 {
		t.Error("Get after Put did not reuse the batch")
	}
}

func TestBatchPoolRejectsForeign(t *testing.T) {
	p := NewBatchPool(8, 4)
	p.Put(NewBatch(16)) // wrong capacity: dropped
	b := p.Get()
	if b.Cap() != 8 {
		t.Errorf("pool handed out a foreign batch with cap %d", b.Cap())
	}
	// Overfull free list: Put must not block.
	for i := 0; i < 10; i++ {
		p.Put(NewBatch(8))
	}
}

func TestBatchPoolConcurrent(t *testing.T) {
	p := NewBatchPool(64, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b := p.Get()
				for j := 0; j < 64; j++ {
					b.Append(int64(g), int64(j), 0)
				}
				for j := range b.U1 {
					if b.U1[j] != int64(g) {
						t.Errorf("batch mutated by another goroutine")
						return
					}
				}
				p.Put(b)
			}
		}(g)
	}
	wg.Wait()
}
