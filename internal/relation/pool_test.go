package relation

import (
	"sync"
	"testing"
)

func TestBatchPoolReuse(t *testing.T) {
	p := NewBatchPool(8, 4)
	if p.BatchSize() != 8 {
		t.Fatalf("BatchSize = %d", p.BatchSize())
	}
	b := p.Get()
	if len(b) != 0 || cap(b) != 8 {
		t.Fatalf("Get: len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, Tuple{Unique1: 1})
	p.Put(b)
	b2 := p.Get()
	if len(b2) != 0 || cap(b2) != 8 {
		t.Fatalf("recycled batch: len=%d cap=%d", len(b2), cap(b2))
	}
	if &b[:1][0] != &b2[:1][0] {
		t.Error("Get after Put did not reuse the batch memory")
	}
}

func TestBatchPoolRejectsForeign(t *testing.T) {
	p := NewBatchPool(8, 4)
	p.Put(make([]Tuple, 0, 16)) // wrong capacity: dropped
	b := p.Get()
	if cap(b) != 8 {
		t.Errorf("pool handed out a foreign batch with cap %d", cap(b))
	}
	// Overfull free list: Put must not block.
	for i := 0; i < 10; i++ {
		p.Put(make([]Tuple, 0, 8))
	}
}

func TestBatchPoolConcurrent(t *testing.T) {
	p := NewBatchPool(64, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b := p.Get()
				for j := 0; j < 64; j++ {
					b = append(b, Tuple{Unique1: int64(g), Unique2: int64(j)})
				}
				for j := range b {
					if b[j].Unique1 != int64(g) {
						t.Errorf("batch mutated by another goroutine")
						return
					}
				}
				p.Put(b)
			}
		}(g)
	}
	wg.Wait()
}
