// Package relation provides the tuple and relation substrate used by the
// multi-join reproduction: Wisconsin-style tuples, relations, hash
// fragmentation over simulated processors, and multiset comparison helpers.
//
// The paper's workload consists of Wisconsin relations [BDT83]: 208-byte
// tuples with two unique integer attributes and filler attributes. Only the
// two unique integers influence query results; the filler bytes matter only
// for cost accounting. Tuples here therefore carry the two join-relevant
// integers plus a 64-bit provenance checksum standing in for the payload:
// the checksum is combined deterministically as tuples flow through joins,
// so any lost, duplicated, or corrupted tuple is detectable in tests, while
// memory stays proportional to what the experiments need. The declared
// TupleBytes of a relation (208 for Wisconsin) drives the cost model.
package relation

import (
	"fmt"
	"math/bits"
	"sort"
)

// Attr selects one of the two join-relevant integer attributes of a tuple.
type Attr int

const (
	// Unique1 is the first unique integer attribute ("unique1" in the
	// Wisconsin benchmark); the paper joins relations on this attribute.
	Unique1 Attr = iota
	// Unique2 is the second unique integer attribute ("unique2"); after each
	// join the result is projected so that unique2 becomes the join
	// attribute of the next join.
	Unique2
)

// String returns the Wisconsin attribute name.
func (a Attr) String() string {
	switch a {
	case Unique1:
		return "unique1"
	case Unique2:
		return "unique2"
	default:
		return fmt.Sprintf("Attr(%d)", int(a))
	}
}

// Tuple is a Wisconsin-style tuple reduced to the attributes that influence
// query results. Check is a provenance checksum standing in for the ~200
// payload bytes: joins combine the checksums of their operand tuples, so the
// final relation's multiset of (Unique1, Unique2, Check) triples identifies
// exactly which base tuples were combined.
type Tuple struct {
	Unique1 int64
	Unique2 int64
	Check   uint64
}

// Get returns the value of the selected attribute.
func (t Tuple) Get(a Attr) int64 {
	if a == Unique1 {
		return t.Unique1
	}
	return t.Unique2
}

// CombineChecks merges two provenance checksums into the checksum of a join
// result tuple. The combination is asymmetric (left vs right operand), so
// tests can detect accidentally swapped operands, and it is collision
// resistant enough for multiset comparison of experiment-sized relations.
func CombineChecks(left, right uint64) uint64 {
	const m1 = 0x9e3779b97f4a7c15
	const m2 = 0xc2b2ae3d27d4eb4f
	h := left*m1 + right*m2 + 0x165667b19e3779f9
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// Relation is a named multiset of tuples together with the declared on-disk
// width of one tuple in bytes (208 for Wisconsin relations). The width is
// used by the cost model only; it does not change in-memory representation.
type Relation struct {
	Name       string
	TupleBytes int
	Tuples     []Tuple
}

// New returns an empty relation with the given name and tuple width.
func New(name string, tupleBytes int) *Relation {
	return &Relation{Name: name, TupleBytes: tupleBytes}
}

// NewWithCap returns an empty relation with capacity preallocated for
// capTuples tuples — for collectors and fragmenters whose cardinality is
// known up front, so the tuple slice never regrows.
func NewWithCap(name string, tupleBytes, capTuples int) *Relation {
	r := &Relation{Name: name, TupleBytes: tupleBytes}
	if capTuples > 0 {
		r.Tuples = make([]Tuple, 0, capTuples)
	}
	return r
}

// Card returns the cardinality (number of tuples).
func (r *Relation) Card() int { return len(r.Tuples) }

// Bytes returns the total declared size of the relation in bytes.
func (r *Relation) Bytes() int { return len(r.Tuples) * r.TupleBytes }

// Append adds tuples to the relation.
func (r *Relation) Append(ts ...Tuple) { r.Tuples = append(r.Tuples, ts...) }

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	c := &Relation{Name: r.Name, TupleBytes: r.TupleBytes}
	c.Tuples = append([]Tuple(nil), r.Tuples...)
	return c
}

// String summarizes the relation.
func (r *Relation) String() string {
	return fmt.Sprintf("%s[%d tuples x %dB]", r.Name, len(r.Tuples), r.TupleBytes)
}

// HashKey hashes an attribute value into one of n buckets. All components
// that partition data (fragmentation, redistribution, join hash tables) use
// this single function so that co-partitioned operands stay aligned. Loops
// that bucket many values against the same n use a Bucketer, which produces
// bit-identical results without the per-value divide.
func HashKey(v int64, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(v) * 0x9e3779b97f4a7c15
	h ^= h >> 32
	return int(h % uint64(n))
}

// Bucketer maps attribute values onto a fixed number of buckets, exactly
// like HashKey(v, n) for every input, but with the 64-bit divide replaced
// by a multiply-high against a precomputed reciprocal plus one conditional
// fix-up — the divide is the dominant cost of the per-tuple partitioning
// loops (fragmentation, redistribution routing, Grace partitioning).
type Bucketer struct {
	n   uint64
	rec uint64 // floor((2^64-1)/n)
}

// NewBucketer returns a Bucketer over n buckets (n < 1 behaves like 1, as
// in HashKey).
func NewBucketer(n int) Bucketer {
	if n < 1 {
		n = 1
	}
	return Bucketer{n: uint64(n), rec: ^uint64(0) / uint64(n)}
}

// Bucket returns HashKey(v, n).
//
// Why the fix-up is exact: rec = floor((2^64-1)/n) lies in
// [2^64/n - 1, 2^64/n], so q = floor(h*rec / 2^64) is either floor(h/n) or
// floor(h/n)-1; r = h - q*n is therefore h mod n, possibly overshot by
// exactly one n, which the single conditional subtraction removes.
func (b Bucketer) Bucket(v int64) int {
	if b.n == 1 {
		return 0
	}
	h := uint64(v) * 0x9e3779b97f4a7c15
	h ^= h >> 32
	q, _ := bits.Mul64(h, b.rec)
	r := h - q*b.n
	if r >= b.n {
		r -= b.n
	}
	return int(r)
}

// Fragmentation describes how a relation is declustered over a set of
// processors: tuple t lives on Procs[HashKey(t.Get(Attr), len(Procs))].
type Fragmentation struct {
	Attr  Attr
	Procs []int // simulated processor ids, one fragment per entry
}

// NumFragments returns the number of fragments.
func (f Fragmentation) NumFragments() int { return len(f.Procs) }

// FragmentOf returns the index of the fragment that holds attribute value v.
func (f Fragmentation) FragmentOf(v int64) int {
	return HashKey(v, len(f.Procs))
}

// Fragment hash-partitions r on attribute a into n fragments. Fragment i
// holds exactly the tuples with HashKey(t.Get(a), n) == i. Fragmenting into
// a single fragment returns a clone.
func Fragment(r *Relation, a Attr, n int) []*Relation {
	if n < 1 {
		n = 1
	}
	frags := make([]*Relation, n)
	per := PerFragmentCap(len(r.Tuples), n)
	for i := range frags {
		frags[i] = &Relation{
			Name:       fmt.Sprintf("%s#%d", r.Name, i),
			TupleBytes: r.TupleBytes,
			Tuples:     make([]Tuple, 0, per),
		}
	}
	bk := NewBucketer(n)
	for _, t := range r.Tuples {
		i := bk.Bucket(t.Get(a))
		frags[i].Tuples = append(frags[i].Tuples, t)
	}
	return frags
}

// PerFragmentCap returns the capacity to preallocate for one of n hash
// fragments of card tuples: the mean plus a small slack, since hash
// partitioning balances fragments closely but not perfectly. Both runtimes
// also size per-process hash tables with it, so the sizing policy cannot
// drift between them.
func PerFragmentCap(card, n int) int {
	return card/n + card/(8*n) + 8
}

// Merge concatenates fragments back into one relation named name. The tuple
// width is taken from the first non-nil fragment.
func Merge(name string, frags []*Relation) *Relation {
	out := &Relation{Name: name}
	for _, f := range frags {
		if f == nil {
			continue
		}
		if out.TupleBytes == 0 {
			out.TupleBytes = f.TupleBytes
		}
		out.Tuples = append(out.Tuples, f.Tuples...)
	}
	return out
}

// sortTuples orders tuples canonically for multiset comparison.
func sortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.Unique1 != b.Unique1 {
			return a.Unique1 < b.Unique1
		}
		if a.Unique2 != b.Unique2 {
			return a.Unique2 < b.Unique2
		}
		return a.Check < b.Check
	})
}

// EqualMultiset reports whether two relations contain the same multiset of
// tuples, ignoring order and name.
func EqualMultiset(a, b *Relation) bool {
	if a.Card() != b.Card() {
		return false
	}
	as := append([]Tuple(nil), a.Tuples...)
	bs := append([]Tuple(nil), b.Tuples...)
	sortTuples(as)
	sortTuples(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// DiffMultiset returns a short human-readable description of the first
// difference between two relations viewed as multisets, or "" if equal.
// Intended for test failure messages.
func DiffMultiset(a, b *Relation) string {
	if a.Card() != b.Card() {
		return fmt.Sprintf("cardinality %d vs %d", a.Card(), b.Card())
	}
	as := append([]Tuple(nil), a.Tuples...)
	bs := append([]Tuple(nil), b.Tuples...)
	sortTuples(as)
	sortTuples(bs)
	for i := range as {
		if as[i] != bs[i] {
			return fmt.Sprintf("tuple %d: %+v vs %+v", i, as[i], bs[i])
		}
	}
	return ""
}
