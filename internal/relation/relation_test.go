package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAttrString(t *testing.T) {
	if Unique1.String() != "unique1" || Unique2.String() != "unique2" {
		t.Errorf("attr names: got %q, %q", Unique1, Unique2)
	}
	if Attr(9).String() != "Attr(9)" {
		t.Errorf("unknown attr: got %q", Attr(9))
	}
}

func TestTupleGet(t *testing.T) {
	tp := Tuple{Unique1: 7, Unique2: 11}
	if tp.Get(Unique1) != 7 {
		t.Errorf("Get(Unique1) = %d, want 7", tp.Get(Unique1))
	}
	if tp.Get(Unique2) != 11 {
		t.Errorf("Get(Unique2) = %d, want 11", tp.Get(Unique2))
	}
}

func TestCombineChecksAsymmetric(t *testing.T) {
	a, b := uint64(123456), uint64(654321)
	if CombineChecks(a, b) == CombineChecks(b, a) {
		t.Error("CombineChecks must distinguish operand order")
	}
	if CombineChecks(a, b) == CombineChecks(a, b+1) {
		t.Error("CombineChecks must depend on the right operand")
	}
}

func TestCombineChecksCollisionResistance(t *testing.T) {
	// A light birthday check over many combinations.
	seen := make(map[uint64]bool)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		h := CombineChecks(rng.Uint64(), rng.Uint64())
		if seen[h] {
			t.Fatalf("collision after %d combinations", i)
		}
		seen[h] = true
	}
}

func TestRelationBasics(t *testing.T) {
	r := New("R", 208)
	if r.Card() != 0 || r.Bytes() != 0 {
		t.Errorf("empty relation: card=%d bytes=%d", r.Card(), r.Bytes())
	}
	r.Append(Tuple{Unique1: 1}, Tuple{Unique1: 2})
	if r.Card() != 2 {
		t.Errorf("card = %d, want 2", r.Card())
	}
	if r.Bytes() != 416 {
		t.Errorf("bytes = %d, want 416", r.Bytes())
	}
	if got := r.String(); got != "R[2 tuples x 208B]" {
		t.Errorf("String() = %q", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := New("R", 208)
	r.Append(Tuple{Unique1: 1})
	c := r.Clone()
	c.Tuples[0].Unique1 = 99
	if r.Tuples[0].Unique1 != 1 {
		t.Error("Clone shares tuple storage with original")
	}
}

func TestHashKeyRange(t *testing.T) {
	f := func(v int64, n uint8) bool {
		buckets := int(n%64) + 1
		h := HashKey(v, buckets)
		return h >= 0 && h < buckets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashKeyDeterministic(t *testing.T) {
	for _, v := range []int64{0, 1, -5, 1 << 40} {
		if HashKey(v, 17) != HashKey(v, 17) {
			t.Errorf("HashKey(%d, 17) not deterministic", v)
		}
	}
	if HashKey(12345, 1) != 0 {
		t.Error("single bucket must map everything to 0")
	}
	if HashKey(12345, 0) != 0 {
		t.Error("degenerate bucket count must map to 0")
	}
}

// TestBucketerMatchesHashKey pins the Bucketer's reciprocal fix-up to the
// divide it replaces: for every value and bucket count — powers of two,
// primes, huge n, degenerate n — Bucket must equal HashKey bit for bit,
// or co-partitioned operands would silently disagree.
func TestBucketerMatchesHashKey(t *testing.T) {
	f := func(v int64, nRaw uint32) bool {
		n := int(nRaw % 100000)
		return NewBucketer(n).Bucket(v) == HashKey(v, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
	for _, n := range []int{0, 1, 2, 3, 7, 8, 16, 64, 169, 1 << 20, 1<<31 - 1} {
		bk := NewBucketer(n)
		for _, v := range []int64{0, 1, -1, 12345, -12345, 1 << 62, -1 << 62, 1<<63 - 1, -1 << 63} {
			if got, want := bk.Bucket(v), HashKey(v, n); got != want {
				t.Fatalf("Bucket(%d) over %d buckets = %d, HashKey = %d", v, n, got, want)
			}
		}
	}
}

func TestHashKeySpread(t *testing.T) {
	// Sequential keys must spread reasonably evenly over buckets.
	const n, buckets = 10000, 16
	counts := make([]int, buckets)
	for v := int64(0); v < n; v++ {
		counts[HashKey(v, buckets)]++
	}
	want := n / buckets
	for b, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("bucket %d holds %d of %d tuples (expected about %d)", b, c, n, want)
		}
	}
}

func TestFragmentPartitions(t *testing.T) {
	r := New("R", 208)
	for i := int64(0); i < 1000; i++ {
		r.Append(Tuple{Unique1: i, Unique2: 999 - i, Check: uint64(i)})
	}
	for _, attr := range []Attr{Unique1, Unique2} {
		for _, n := range []int{1, 3, 7} {
			frags := Fragment(r, attr, n)
			if len(frags) != n {
				t.Fatalf("Fragment produced %d fragments, want %d", len(frags), n)
			}
			total := 0
			for i, f := range frags {
				total += f.Card()
				if f.TupleBytes != 208 {
					t.Errorf("fragment %d lost tuple width", i)
				}
				for _, tp := range f.Tuples {
					if HashKey(tp.Get(attr), n) != i {
						t.Fatalf("tuple %+v landed in wrong fragment %d", tp, i)
					}
				}
			}
			if total != r.Card() {
				t.Errorf("fragments hold %d tuples, want %d", total, r.Card())
			}
			if !EqualMultiset(Merge("m", frags), r) {
				t.Error("merge of fragments differs from original")
			}
		}
	}
}

func TestFragmentDegenerateCount(t *testing.T) {
	r := New("R", 208)
	r.Append(Tuple{Unique1: 1})
	frags := Fragment(r, Unique1, 0)
	if len(frags) != 1 || frags[0].Card() != 1 {
		t.Errorf("Fragment with n=0 should clamp to 1 fragment, got %d", len(frags))
	}
}

// TestFragmentRoundTrip is the property-based version: fragmenting and
// merging any relation yields the same multiset.
func TestFragmentRoundTrip(t *testing.T) {
	f := func(keys []int64, n uint8) bool {
		r := New("R", 208)
		for i, k := range keys {
			r.Append(Tuple{Unique1: k, Unique2: int64(i), Check: uint64(i)})
		}
		frags := Fragment(r, Unique1, int(n%8)+1)
		return EqualMultiset(Merge("m", frags), r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEqualMultiset(t *testing.T) {
	a := New("a", 208)
	b := New("b", 208)
	a.Append(Tuple{Unique1: 1}, Tuple{Unique1: 2}, Tuple{Unique1: 2})
	b.Append(Tuple{Unique1: 2}, Tuple{Unique1: 1}, Tuple{Unique1: 2})
	if !EqualMultiset(a, b) {
		t.Error("order must not matter")
	}
	b.Append(Tuple{Unique1: 3})
	if EqualMultiset(a, b) {
		t.Error("different cardinalities must differ")
	}
	c := New("c", 208)
	c.Append(Tuple{Unique1: 1}, Tuple{Unique1: 1}, Tuple{Unique1: 2})
	if EqualMultiset(a, c) {
		t.Error("multiplicities must matter")
	}
}

func TestDiffMultiset(t *testing.T) {
	a := New("a", 208)
	b := New("b", 208)
	a.Append(Tuple{Unique1: 1})
	b.Append(Tuple{Unique1: 1})
	if d := DiffMultiset(a, b); d != "" {
		t.Errorf("equal relations diff = %q", d)
	}
	b.Tuples[0].Unique2 = 5
	if d := DiffMultiset(a, b); d == "" {
		t.Error("differing relations must produce a diff")
	}
	b.Append(Tuple{})
	if d := DiffMultiset(a, b); d == "" {
		t.Error("cardinality mismatch must produce a diff")
	}
}

func TestFragmentationHelpers(t *testing.T) {
	f := Fragmentation{Attr: Unique1, Procs: []int{3, 5, 9}}
	if f.NumFragments() != 3 {
		t.Errorf("NumFragments = %d", f.NumFragments())
	}
	for v := int64(0); v < 100; v++ {
		if got, want := f.FragmentOf(v), HashKey(v, 3); got != want {
			t.Fatalf("FragmentOf(%d) = %d, want %d", v, got, want)
		}
	}
}
