// Package engine executes xra plans on a simulated PRISMA/DB machine.
//
// The engine mirrors the PRISMA/DB query execution architecture (Section 2.2
// of the paper): a single per-query scheduler claims operation processes and
// initializes them sequentially (startup overhead); the processes then
// coordinate among themselves. Every operation process is bound to one
// simulated processor. Operand redistribution from n producer processes to m
// consumer processes opens n x m tuple streams, each requiring a handshake
// at both endpoints before transport (coordination overhead). Tuples travel
// in batches, and per-tuple costs follow the paper's unit model: hashing
// costs one unit, retrieving a tuple from the network one unit, creating and
// sending a result tuple two units (Section 4.3).
//
// Real hash joins run inside the simulated operators — the returned relation
// is the true join result and is compared against a sequential reference in
// tests — while the virtual clock yields the response times of Figures 9-13.
package engine

import (
	"context"
	"fmt"
	"sort"

	"multijoin/internal/costmodel"
	"multijoin/internal/relation"
	"multijoin/internal/sim"
	"multijoin/internal/xra"
)

// Stats aggregates the structural quantities behind the paper's tradeoff
// discussion (Section 3.5).
type Stats struct {
	// Processes is the number of operation processes the plan used
	// (#operators weighted by their degree of parallelism).
	Processes int
	// Streams is the number of tuple streams opened (n x m per
	// redistribution edge, n per local edge).
	Streams int
	// StartupTime is the total serial scheduler time spent initializing
	// operation processes.
	StartupTime sim.Duration
	// HandshakeTime is the total processor time spent on stream
	// handshakes across all processes.
	HandshakeTime sim.Duration
	// TuplesMovedRemote counts tuples that crossed processor boundaries.
	TuplesMovedRemote int64
	// TuplesLocal counts tuples delivered processor-locally.
	TuplesLocal int64
	// Batches counts delivered data batches.
	Batches int64
	// ResultTuples is the cardinality of the final result.
	ResultTuples int
	// SimEvents is the number of simulation events processed.
	SimEvents uint64
	// OpFinish maps operator ids to their completion times.
	OpFinish map[string]sim.Time
	// PeakTableTuplesPerProc is the maximum number of hash-table resident
	// tuples any single processor held at one time. This quantifies the
	// paper's Section 5 memory observation: RD needs one hash table per
	// join where FP's pipelining join needs two, and it bounds which
	// strategies fit a given per-node memory (the disk-based discussion).
	PeakTableTuplesPerProc int
	// PeakTableTuplesTotal is the machine-wide peak of hash-table resident
	// tuples.
	PeakTableTuplesTotal int
}

// Sink consumes the final result stream of one run (RunStream). The engine
// transfers batch ownership with every Push: release (which may be nil)
// returns the batch to the engine's pool and must be called exactly once,
// when the consumer is done with the tuples. Push blocks until the consumer
// accepts the batch — which pauses the virtual clock, streaming
// backpressure — or ctx is cancelled, in which case it returns the
// context's error and keeps ownership of the batch.
type Sink interface {
	Push(ctx context.Context, batch *relation.Batch, release func()) error
}

// RunResult is the outcome of executing one plan.
type RunResult struct {
	// Result is the collected final relation (real tuples); nil when the
	// run streamed into a Sink (RunStream).
	Result *relation.Relation
	// ResponseTime is the paper's response-time metric: elapsed virtual
	// time from the moment the scheduler starts scheduling until the last
	// operation process finishes (the collect gather at the host is
	// excluded, as it is identical across strategies).
	ResponseTime sim.Duration
	// Stats holds structural counters.
	Stats Stats
	// Procs exposes per-processor busy intervals when utilization
	// recording was enabled, for rendering the paper's diagrams.
	Procs []*sim.Proc
}

// Run executes the plan against the base relations (leaf index -> relation)
// under the given machine parameters.
func Run(plan *xra.Plan, base func(leaf int) *relation.Relation, params costmodel.Params) (*RunResult, error) {
	return RunContext(context.Background(), plan, base, params)
}

// RunContext is Run with cancellation: the simulator's event loop checks ctx
// between events, so a cancelled context aborts the virtual execution at the
// next event boundary and returns the context's error.
func RunContext(ctx context.Context, plan *xra.Plan, base func(leaf int) *relation.Relation, params costmodel.Params) (*RunResult, error) {
	return execute(ctx, plan, base, params, nil)
}

// RunStream executes the plan in streaming mode: each batch reaching the
// collect process is pushed into sink (transferring ownership of the pooled
// batch) in virtual-time order instead of being materialized, and
// RunResult.Result is nil. A Push that blocks pauses the simulation — the
// virtual clock advances only as fast as the consumer drains — and
// cancelling ctx aborts the run at the next opportunity.
func RunStream(ctx context.Context, plan *xra.Plan, base func(leaf int) *relation.Relation, params costmodel.Params, sink Sink) (*RunResult, error) {
	if sink == nil {
		return nil, fmt.Errorf("engine: RunStream needs a sink")
	}
	return execute(ctx, plan, base, params, sink)
}

func execute(ctx context.Context, plan *xra.Plan, base func(leaf int) *relation.Relation, params costmodel.Params, sink Sink) (*RunResult, error) {
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if params.BatchTuples < 1 {
		params.BatchTuples = 1
	}
	e := &engineState{
		sim:     sim.New(),
		machine: sim.NewMachine(params.RecordUtilization),
		params:  params,
		plan:    plan,
		ctx:     ctx,
		sink:    sink,
		ops:     make(map[string]*opState, len(plan.Ops)),
	}
	if params.EventLimit > 0 {
		e.sim.SetEventLimit(params.EventLimit)
	}
	e.stats.OpFinish = make(map[string]sim.Time, len(plan.Ops))
	retain := plan.NumStreams() * 2
	if retain > relation.MaxPoolRetain {
		retain = relation.MaxPoolRetain
	}
	e.pool = relation.NewBatchPool(params.BatchTuples, retain)
	if err := e.setup(base); err != nil {
		return nil, err
	}
	if _, err := e.sim.RunContext(ctx); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if e.sinkErr != nil {
		return nil, fmt.Errorf("engine: %w", e.sinkErr)
	}
	return e.finish()
}

// port identifies one logical input of an operator.
type port int

const (
	portBuild port = iota
	portProbe
	portIn
)

// consumerEdge describes where an operator's output goes.
type consumerEdge struct {
	to    *opState
	port  port
	route relation.Attr
	local bool
}

// opState is the runtime state of one plan operator.
type opState struct {
	op         *xra.Op
	instances  []*instance
	consumer   *consumerEdge // nil only for collect
	deps       []*opState    // After dependencies
	dependents []*opState
	doneCount  int
	finished   bool
	finishAt   sim.Time

	// estCard is the estimated output cardinality (exact for scans, an
	// upper-bound estimate for the 1:1 chain joins), used to size hash
	// tables and the collect relation up front.
	estCard int
}

func (o *opState) depsDone() bool {
	for _, d := range o.deps {
		if !d.finished {
			return false
		}
	}
	return true
}

// engineState carries one execution.
type engineState struct {
	sim     *sim.Sim
	machine *sim.Machine
	params  costmodel.Params
	plan    *xra.Plan
	ops     map[string]*opState
	order   []*opState // plan order
	stats   Stats
	collect *instance

	// Streaming mode (RunStream): collect pushes batches into sink instead
	// of gathering; ctx backs the pushes, pushed counts delivered tuples,
	// and sinkErr records the first failed push (the run is then aborted
	// at the next event boundary and further pushes are skipped).
	ctx     context.Context
	sink    Sink
	sinkErr error
	pushed  int

	// pool recycles transport batches: every batch delivered between
	// instances is drawn here by the producer's emit and returned by the
	// consumer that applies it, so steady-state simulation allocates no
	// per-batch garbage.
	pool *relation.BatchPool

	// Hash-table memory accounting (tuples resident per processor).
	tableNow map[int]int
	tableSum int
}

// addTableTuples adjusts the resident hash-table tuple count of a processor
// and updates the peaks. Negative deltas release memory (tables are dropped
// when their operation process finishes).
func (e *engineState) addTableTuples(procID, delta int) {
	if delta == 0 {
		return
	}
	if e.tableNow == nil {
		e.tableNow = make(map[int]int)
	}
	e.tableNow[procID] += delta
	e.tableSum += delta
	if e.tableNow[procID] > e.stats.PeakTableTuplesPerProc {
		e.stats.PeakTableTuplesPerProc = e.tableNow[procID]
	}
	if e.tableSum > e.stats.PeakTableTuplesTotal {
		e.stats.PeakTableTuplesTotal = e.tableSum
	}
}

// setup builds operator and instance state, wires edges, pre-places base
// relation fragments, and schedules the sequential process startup.
func (e *engineState) setup(base func(leaf int) *relation.Relation) error {
	for _, op := range e.plan.Ops {
		os := &opState{op: op}
		e.ops[op.ID] = os
		e.order = append(e.order, os)
	}
	// Wire consumer edges and dependencies.
	for _, os := range e.order {
		for _, in := range os.op.Inputs() {
			from := e.ops[in.From]
			var p port
			switch in {
			case os.op.Build:
				p = portBuild
			case os.op.Probe:
				p = portProbe
			default:
				p = portIn
			}
			from.consumer = &consumerEdge{
				to:    os,
				port:  p,
				route: in.Route,
				local: xra.LocalEdge(from.op, os.op, in),
			}
		}
		for _, a := range os.op.After {
			dep := e.ops[a]
			os.deps = append(os.deps, dep)
			dep.dependents = append(dep.dependents, os)
		}
	}
	// Create instances.
	for _, os := range e.order {
		for i, procID := range os.op.Procs {
			inst := &instance{
				e:     e,
				op:    os,
				idx:   i,
				proc:  e.machine.Proc(procID),
				label: opLabel(os.op),
			}
			inst.eosWant = e.eosWant(os)
			os.instances = append(os.instances, inst)
		}
		if os.op.Kind == xra.OpCollect {
			e.collect = os.instances[0]
			if e.sink == nil {
				e.collect.gathered = relation.New("result", 0)
			}
		}
	}
	// Pre-place base relation fragments (ideal initial fragmentation:
	// Section 4.1 — each base relation is declustered on the join attribute
	// of its first join over the processors used for that join).
	for _, os := range e.order {
		if os.op.Kind != xra.OpScan {
			continue
		}
		rel := base(os.op.Leaf)
		if rel == nil {
			return fmt.Errorf("engine: no base relation for leaf %d", os.op.Leaf)
		}
		if e.collect.gathered != nil && e.collect.gathered.TupleBytes == 0 {
			e.collect.gathered.TupleBytes = rel.TupleBytes
		}
		os.estCard = rel.Card()
		frags := relation.FragmentBatches(rel, os.op.FragAttr, len(os.instances))
		for i, inst := range os.instances {
			inst.scanBatch = frags[i]
		}
	}
	// Propagate cardinality estimates downstream (plan order lists
	// producers before consumers): the chain query's joins are 1:1, so the
	// larger operand bounds the output. The estimates size hash tables and
	// the collect relation so the hot path never regrows them.
	for _, os := range e.order {
		if os.op.Kind == xra.OpScan {
			continue
		}
		for _, in := range os.op.Inputs() {
			if from := e.ops[in.From]; from.estCard > os.estCard {
				os.estCard = from.estCard
			}
		}
		if os.op.Kind == xra.OpCollect && os.estCard > 0 && e.collect.gathered != nil {
			e.collect.gathered.Tuples = make([]relation.Tuple, 0, os.estCard)
		}
	}
	// Sequential startup by the scheduler: process k may begin (receive
	// handshakes, process input) only after the scheduler initialized
	// processes 0..k, each costing Startup (Section 3.5, "startup"). Scan
	// processes are exempt: base-relation fragments are memory resident
	// and their readers need no initialization by the scheduler — this
	// matches the paper's process count of one per join per processor
	// (800 for SP at 80 processors).
	k := 0
	for _, os := range e.order {
		for _, inst := range os.instances {
			e.stats.Processes++
			if os.op.Kind != xra.OpScan && os.op.Kind != xra.OpCollect {
				k++
				e.stats.StartupTime += e.params.Startup
			}
			inst.startupAt = sim.Time(sim.Duration(k) * e.params.Startup)
			in := inst
			e.sim.At(inst.startupAt, func() { in.tryActivate() })
		}
	}
	e.stats.Streams = e.plan.NumStreams()
	return nil
}

// eosWant returns, per port, how many end-of-stream markers each instance of
// op will receive: one per producer process on a redistribution edge, one on
// a local edge.
func (e *engineState) eosWant(os *opState) map[port]int {
	want := make(map[port]int)
	for _, in := range os.op.Inputs() {
		from := e.ops[in.From]
		var p port
		switch in {
		case os.op.Build:
			p = portBuild
		case os.op.Probe:
			p = portProbe
		default:
			p = portIn
		}
		if xra.LocalEdge(from.op, os.op, in) {
			want[p] = 1
		} else {
			want[p] = len(from.op.Procs)
		}
	}
	return want
}

// opLabel is the short label used in utilization diagrams: the join number
// for joins, "s" for scans.
func opLabel(op *xra.Op) string {
	switch op.Kind {
	case xra.OpScan:
		return "s"
	case xra.OpCollect:
		return "c"
	default:
		return fmt.Sprintf("%d", op.JoinID)
	}
}

// opFinished is called when the last instance of an operator completed.
func (e *engineState) opFinished(os *opState) {
	os.finished = true
	os.finishAt = e.sim.Now()
	e.stats.OpFinish[os.op.ID] = os.finishAt
	for _, dep := range os.dependents {
		if !dep.depsDone() {
			continue
		}
		for _, inst := range dep.instances {
			inst.tryActivate()
		}
	}
}

// finish assembles the run result after the event loop drained.
func (e *engineState) finish() (*RunResult, error) {
	var last sim.Time
	for _, os := range e.order {
		if !os.finished {
			return nil, fmt.Errorf("engine: operator %q never finished (deadlocked plan?)", os.op.ID)
		}
		if os.op.Kind != xra.OpCollect && os.finishAt > last {
			last = os.finishAt
		}
	}
	e.stats.SimEvents = e.sim.Processed()
	if e.sink != nil {
		e.stats.ResultTuples = e.pushed
	} else {
		e.stats.ResultTuples = e.collect.gathered.Card()
	}
	res := &RunResult{
		Result:       e.collect.gathered, // nil in streaming mode
		ResponseTime: sim.Duration(last),
		Stats:        e.stats,
		Procs:        e.machine.Procs(),
	}
	sort.Slice(res.Procs, func(i, j int) bool { return res.Procs[i].ID < res.Procs[j].ID })
	return res, nil
}
