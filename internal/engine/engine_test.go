package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"multijoin/internal/costmodel"
	"multijoin/internal/jointree"
	"multijoin/internal/relation"
	"multijoin/internal/sim"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
	"multijoin/internal/xra"
)

func testDB(t *testing.T, relations, card int, seed int64) *wisconsin.Database {
	t.Helper()
	db, err := wisconsin.Chain(wisconsin.Config{Relations: relations, Cardinality: card, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func baseFn(db *wisconsin.Database) func(int) *relation.Relation {
	return func(leaf int) *relation.Relation {
		if leaf < 0 || leaf >= db.NumRelations() {
			return nil
		}
		return db.Relation(leaf)
	}
}

func planFor(t *testing.T, k strategy.Kind, tree *jointree.Node, procs, card int) *xra.Plan {
	t.Helper()
	p, err := strategy.Plan(k, tree, strategy.Config{Procs: procs, Card: float64(card)})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t *testing.T, p *xra.Plan, db *wisconsin.Database, params costmodel.Params) *RunResult {
	t.Helper()
	res, err := Run(p, baseFn(db), params)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunRejectsInvalidPlan(t *testing.T) {
	if _, err := Run(&xra.Plan{}, nil, costmodel.Default()); err == nil {
		t.Error("empty plan must fail")
	}
}

func TestRunMissingBaseRelation(t *testing.T) {
	db := testDB(t, 3, 50, 1)
	tree, _ := jointree.BuildShape(jointree.LeftLinear, 3)
	p := planFor(t, strategy.SP, tree, 4, 50)
	_, err := Run(p, func(int) *relation.Relation { return nil }, costmodel.Default())
	if err == nil {
		t.Error("missing base relation must fail")
	}
	_ = db
}

func TestDeterminism(t *testing.T) {
	db := testDB(t, 6, 300, 2)
	tree, _ := jointree.BuildShape(jointree.RightBushy, 6)
	for _, k := range strategy.Kinds {
		p := planFor(t, k, tree, 8, 300)
		a := run(t, p, db, costmodel.Default())
		b := run(t, p, db, costmodel.Default())
		if a.ResponseTime != b.ResponseTime {
			t.Errorf("%v: response times differ: %v vs %v", k, a.ResponseTime, b.ResponseTime)
		}
		if a.Stats.SimEvents != b.Stats.SimEvents {
			t.Errorf("%v: event counts differ", k)
		}
		if d := relation.DiffMultiset(a.Result, b.Result); d != "" {
			t.Errorf("%v: results differ: %s", k, d)
		}
	}
}

func TestSPPhasesAreSequential(t *testing.T) {
	// Under SP, join k+1 must finish strictly after join k (strict phases).
	db := testDB(t, 5, 400, 3)
	tree, _ := jointree.BuildShape(jointree.LeftLinear, 5)
	p := planFor(t, strategy.SP, tree, 6, 400)
	res := run(t, p, db, costmodel.Default())
	var prev string
	for _, o := range p.Ops {
		if o.Kind != xra.OpSimpleJoin {
			continue
		}
		if prev != "" && res.Stats.OpFinish[o.ID] <= res.Stats.OpFinish[prev] {
			t.Errorf("SP: %s finished at %v, not after %s at %v",
				o.ID, res.Stats.OpFinish[o.ID], prev, res.Stats.OpFinish[prev])
		}
		prev = o.ID
	}
}

func TestIdealFragmentationKeepsScansLocal(t *testing.T) {
	// With ideal initial fragmentation, base operand tuples never cross
	// processors; only intermediate results are refragmented.
	db := testDB(t, 4, 500, 4)
	tree, _ := jointree.BuildShape(jointree.RightLinear, 4)
	p := planFor(t, strategy.FP, tree, 9, 500)
	res := run(t, p, db, costmodel.Default())
	// 4 scans deliver 4*500 local tuples; 2 intermediate edges + the
	// collect edge move tuples remotely (collect gathers at the host).
	if res.Stats.TuplesLocal < 2000 {
		t.Errorf("local tuples = %d, want >= 2000 (scan deliveries)", res.Stats.TuplesLocal)
	}
	if res.Stats.TuplesMovedRemote == 0 {
		t.Error("intermediate results must cross processors")
	}
}

func TestStatsProcessesAndStreams(t *testing.T) {
	db := testDB(t, 3, 100, 5)
	tree, _ := jointree.BuildShape(jointree.LeftLinear, 3)
	p := planFor(t, strategy.SP, tree, 4, 100)
	res := run(t, p, db, costmodel.Default())
	if res.Stats.Processes != p.NumProcesses() {
		t.Errorf("processes = %d, want %d", res.Stats.Processes, p.NumProcesses())
	}
	if res.Stats.Streams != p.NumStreams() {
		t.Errorf("streams = %d, want %d", res.Stats.Streams, p.NumStreams())
	}
	// Startup is paid for join processes only (2 joins x 4 procs).
	want := costmodel.Default().Startup * 8
	if res.Stats.StartupTime != want {
		t.Errorf("startup time = %v, want %v", res.Stats.StartupTime, want)
	}
	if res.Stats.HandshakeTime <= 0 {
		t.Error("handshake time must be positive")
	}
	if res.Stats.ResultTuples != 100 {
		t.Errorf("result tuples = %d", res.Stats.ResultTuples)
	}
}

func TestStartupScalesWithProcesses(t *testing.T) {
	// More processors => more operation processes => more serial startup:
	// the core of SP's degradation (Section 3.5).
	db := testDB(t, 6, 200, 6)
	tree, _ := jointree.BuildShape(jointree.LeftLinear, 6)
	small := run(t, planFor(t, strategy.SP, tree, 4, 200), db, costmodel.Default())
	big := run(t, planFor(t, strategy.SP, tree, 16, 200), db, costmodel.Default())
	if big.Stats.StartupTime <= small.Stats.StartupTime {
		t.Errorf("startup %v (16p) vs %v (4p): must grow with processors",
			big.Stats.StartupTime, small.Stats.StartupTime)
	}
	if big.Stats.Streams <= small.Stats.Streams {
		t.Error("streams must grow with processors")
	}
}

func TestFPUsesFewerProcessesThanSP(t *testing.T) {
	db := testDB(t, 10, 100, 7)
	tree, _ := jointree.BuildShape(jointree.WideBushy, 10)
	sp := run(t, planFor(t, strategy.SP, tree, 18, 100), db, costmodel.Default())
	fp := run(t, planFor(t, strategy.FP, tree, 18, 100), db, costmodel.Default())
	if fp.Stats.Processes >= sp.Stats.Processes {
		t.Errorf("FP processes %d must be far fewer than SP's %d",
			fp.Stats.Processes, sp.Stats.Processes)
	}
	if fp.Stats.Streams >= sp.Stats.Streams {
		t.Errorf("FP streams %d must be fewer than SP's %d",
			fp.Stats.Streams, sp.Stats.Streams)
	}
}

func TestUtilizationRecording(t *testing.T) {
	db := testDB(t, 5, 300, 8)
	params := costmodel.Default()
	params.RecordUtilization = true
	p := planFor(t, strategy.FP, jointree.Example(), 10, 300)
	res := run(t, p, db, params)
	if len(res.Procs) != 10 {
		t.Fatalf("recorded %d processors, want 10", len(res.Procs))
	}
	busyTotal := 0
	for _, pr := range res.Procs {
		if len(pr.Busy()) > 0 {
			busyTotal++
			last := pr.Busy()[len(pr.Busy())-1]
			if last.End > sim.Time(res.ResponseTime) {
				t.Errorf("proc %d busy until %v, after response time %v",
					pr.ID, last.End, res.ResponseTime)
			}
		}
	}
	if busyTotal != 10 {
		t.Errorf("only %d processors did work", busyTotal)
	}
	// Without recording, traces stay empty.
	res2 := run(t, p, db, costmodel.Default())
	for _, pr := range res2.Procs {
		if len(pr.Busy()) != 0 {
			t.Error("recording disabled but intervals present")
		}
	}
}

func TestEventLimitAborts(t *testing.T) {
	db := testDB(t, 3, 200, 9)
	tree, _ := jointree.BuildShape(jointree.LeftLinear, 3)
	p := planFor(t, strategy.SP, tree, 4, 200)
	params := costmodel.Default()
	params.EventLimit = 10
	defer func() {
		if recover() == nil {
			t.Error("expected event-limit panic")
		}
	}()
	_, _ = Run(p, baseFn(db), params)
}

func TestBatchSizeAffectsPipelineDelay(t *testing.T) {
	// Larger transport batches delay downstream operators: FP response
	// time on a linear pipeline must grow with batch size.
	db := testDB(t, 8, 512, 10)
	tree, _ := jointree.BuildShape(jointree.RightLinear, 8)
	p := planFor(t, strategy.FP, tree, 14, 512)
	small := costmodel.Default()
	small.BatchTuples = 16
	large := costmodel.Default()
	large.BatchTuples = 512
	rs := run(t, p, db, small)
	rl := run(t, p, db, large)
	if rl.ResponseTime <= rs.ResponseTime {
		t.Errorf("batch 512 response %v not larger than batch 16 response %v",
			rl.ResponseTime, rs.ResponseTime)
	}
	if d := relation.DiffMultiset(rs.Result, rl.Result); d != "" {
		t.Errorf("batch size changed the result: %s", d)
	}
}

func TestZeroOverheadStillCorrect(t *testing.T) {
	db := testDB(t, 5, 200, 11)
	tree, _ := jointree.BuildShape(jointree.WideBushy, 5)
	params := costmodel.Params{TupleUnit: 1, BatchTuples: 8}
	for _, k := range strategy.Kinds {
		p := planFor(t, k, tree, 6, 200)
		res := run(t, p, db, params)
		want := jointree.Reference(tree, baseFn(db))
		if d := relation.DiffMultiset(res.Result, want); d != "" {
			t.Errorf("%v with zero overheads: %s", k, d)
		}
	}
}

func TestSingleProcessorExecution(t *testing.T) {
	// SP on one processor is plain sequential execution; response time must
	// be close to total work.
	db := testDB(t, 4, 300, 12)
	tree, _ := jointree.BuildShape(jointree.LeftLinear, 4)
	p := planFor(t, strategy.SP, tree, 1, 300)
	res := run(t, p, db, costmodel.Default())
	want := jointree.Reference(tree, baseFn(db))
	if d := relation.DiffMultiset(res.Result, want); d != "" {
		t.Error(d)
	}
	if res.Stats.TuplesMovedRemote != 0 {
		t.Errorf("single processor moved %d tuples remotely", res.Stats.TuplesMovedRemote)
	}
}

// TestRandomConfigurationsMatchReference is the property-based correctness
// sweep: random shape, strategy, cardinality and machine size, always equal
// to the sequential reference.
func TestRandomConfigurationsMatchReference(t *testing.T) {
	f := func(seed int64, shapeRaw, kindRaw, procsRaw, cardRaw uint8) bool {
		shape := jointree.Shapes[int(shapeRaw)%len(jointree.Shapes)]
		kind := strategy.Kinds[int(kindRaw)%len(strategy.Kinds)]
		procs := int(procsRaw%12) + 8 // 8..19 procs (>= joins for FP)
		card := int(cardRaw%200) + 10
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(5) + 4 // 4..8 relations
		db, err := wisconsin.Chain(wisconsin.Config{Relations: k, Cardinality: card, Seed: seed})
		if err != nil {
			return false
		}
		tree, err := jointree.BuildShape(shape, k)
		if err != nil {
			return false
		}
		p, err := strategy.Plan(kind, tree, strategy.Config{Procs: procs, Card: float64(card)})
		if err != nil {
			return false
		}
		res, err := Run(p, baseFn(db), costmodel.Default())
		if err != nil {
			return false
		}
		want := jointree.Reference(tree, baseFn(db))
		return relation.EqualMultiset(res.Result, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMirroredTreeExecution: executing a mirrored tree (build/probe swapped)
// produces the identical result on the engine too.
func TestMirroredTreeExecution(t *testing.T) {
	db := testDB(t, 6, 250, 13)
	tree, _ := jointree.BuildShape(jointree.LeftLinear, 6)
	mirrored := jointree.Clone(tree)
	jointree.Mirror(mirrored)
	want := jointree.Reference(tree, baseFn(db))
	for _, k := range strategy.Kinds {
		p := planFor(t, k, mirrored, 8, 250)
		res := run(t, p, db, costmodel.Default())
		if d := relation.DiffMultiset(res.Result, want); d != "" {
			t.Errorf("%v on mirrored tree: %s", k, d)
		}
	}
}

// TestMirroringHelpsRD: Section 5 — mirroring a left-linear tree (free)
// turns it right-linear, where RD pipelines instead of degenerating to SP.
func TestMirroringHelpsRD(t *testing.T) {
	db := testDB(t, 8, 600, 14)
	tree, _ := jointree.BuildShape(jointree.LeftLinear, 8)
	mirrored := jointree.Clone(tree)
	jointree.Mirror(mirrored)
	before := run(t, planFor(t, strategy.RD, tree, 16, 600), db, costmodel.Default())
	after := run(t, planFor(t, strategy.RD, mirrored, 16, 600), db, costmodel.Default())
	if after.ResponseTime >= before.ResponseTime {
		t.Errorf("mirroring did not help RD: %v -> %v", before.ResponseTime, after.ResponseTime)
	}
}
