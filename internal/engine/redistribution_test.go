package engine

import (
	"testing"

	"multijoin/internal/costmodel"
	"multijoin/internal/jointree"
	"multijoin/internal/relation"
	"multijoin/internal/strategy"
	"multijoin/internal/xra"
)

// nonIdealPlan builds a single-join plan whose scans are deliberately
// fragmented on the WRONG attribute and on different processors than the
// join, so both base operands must be redistributed over the network —
// the "full fragmentation" alternative the paper mentions (and rejects as
// the starting placement) in Section 4.1.
func nonIdealPlan() *xra.Plan {
	return &xra.Plan{
		Strategy: "TEST",
		Ops: []*xra.Op{
			{ID: "scan:R0", Kind: xra.OpScan, Leaf: 0, FragAttr: relation.Unique1, Procs: []int{0, 1}},
			{ID: "scan:R1", Kind: xra.OpScan, Leaf: 1, FragAttr: relation.Unique2, Procs: []int{2, 3}},
			{
				ID: "join:1", Kind: xra.OpSimpleJoin, JoinID: 1, BuildIsLower: true,
				Build: &xra.Input{From: "scan:R0", Route: relation.Unique2},
				Probe: &xra.Input{From: "scan:R1", Route: relation.Unique1},
				Procs: []int{4, 5, 6},
			},
			{ID: "collect", Kind: xra.OpCollect, In: &xra.Input{From: "join:1", Route: relation.Unique1},
				Procs: []int{xra.HostProc}},
		},
	}
}

func TestNonIdealFragmentationRedistributes(t *testing.T) {
	db := testDB(t, 2, 400, 21)
	res, err := Run(nonIdealPlan(), baseFn(db), costmodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := jointree.BuildShape(jointree.LeftLinear, 2)
	want := jointree.Reference(tree, baseFn(db))
	if d := relation.DiffMultiset(res.Result, want); d != "" {
		t.Fatalf("redistributed join wrong: %s", d)
	}
	// Both operands crossed the network: 800 remote tuples minimum.
	if res.Stats.TuplesMovedRemote < 800 {
		t.Errorf("remote tuples = %d, want >= 800 (both operands redistributed)",
			res.Stats.TuplesMovedRemote)
	}
}

func TestNonIdealCostsMoreThanIdeal(t *testing.T) {
	db := testDB(t, 2, 400, 22)
	nonIdeal, err := Run(nonIdealPlan(), baseFn(db), costmodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	// The ideal placement: scans co-located with the join, fragmented on
	// the join attributes.
	tree, _ := jointree.BuildShape(jointree.LeftLinear, 2)
	ideal := run(t, planFor(t, strategy.SP, tree, 3, 400), db, costmodel.Default())
	if nonIdeal.ResponseTime <= ideal.ResponseTime {
		t.Errorf("non-ideal placement (%v) should cost more than ideal (%v)",
			nonIdeal.ResponseTime, ideal.ResponseTime)
	}
}

// TestPipeliningJoinRemoteBothSides exercises the pipelining join with both
// operands arriving over the network in interleaved order.
func TestPipeliningJoinRemoteBothSides(t *testing.T) {
	p := nonIdealPlan()
	p.Ops[2].Kind = xra.OpPipeJoin
	db := testDB(t, 2, 300, 23)
	res, err := Run(p, baseFn(db), costmodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := jointree.BuildShape(jointree.LeftLinear, 2)
	want := jointree.Reference(tree, baseFn(db))
	if d := relation.DiffMultiset(res.Result, want); d != "" {
		t.Fatalf("remote pipelining join wrong: %s", d)
	}
}

// TestTinyBatches stresses per-batch bookkeeping: batch size 1 must still
// produce the exact result (and many more simulation events).
func TestTinyBatches(t *testing.T) {
	db := testDB(t, 4, 100, 24)
	tree, _ := jointree.BuildShape(jointree.WideBushy, 4)
	params := costmodel.Default()
	params.BatchTuples = 1
	for _, k := range strategy.Kinds {
		p := planFor(t, k, tree, 6, 100)
		res := run(t, p, db, params)
		want := jointree.Reference(tree, baseFn(db))
		if d := relation.DiffMultiset(res.Result, want); d != "" {
			t.Errorf("%v with 1-tuple batches: %s", k, d)
		}
	}
}

// TestEmptyBaseRelation: joins over an empty relation produce an empty
// result and still terminate cleanly (EOS propagation with no data).
func TestEmptyBaseRelation(t *testing.T) {
	db := testDB(t, 3, 50, 25)
	empty := relation.New("R1", 208)
	base := func(leaf int) *relation.Relation {
		if leaf == 1 {
			return empty
		}
		return db.Relation(leaf)
	}
	tree, _ := jointree.BuildShape(jointree.RightLinear, 3)
	for _, k := range strategy.Kinds {
		p := planFor(t, k, tree, 4, 50)
		res, err := Run(p, base, costmodel.Default())
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if res.Result.Card() != 0 {
			t.Errorf("%v: %d tuples from empty operand", k, res.Result.Card())
		}
		if res.ResponseTime <= 0 {
			t.Errorf("%v: degenerate response time", k)
		}
	}
}

// TestMoreProcsNeverChangesResult: the result is invariant under the degree
// of parallelism.
func TestMoreProcsNeverChangesResult(t *testing.T) {
	db := testDB(t, 6, 300, 26)
	tree, _ := jointree.BuildShape(jointree.RightBushy, 6)
	want := jointree.Reference(tree, baseFn(db))
	for _, procs := range []int{5, 7, 13, 24} {
		for _, k := range strategy.Kinds {
			p := planFor(t, k, tree, procs, 300)
			res := run(t, p, db, costmodel.Default())
			if d := relation.DiffMultiset(res.Result, want); d != "" {
				t.Errorf("%v at %d procs: %s", k, procs, d)
			}
		}
	}
}
