package engine

import (
	"multijoin/internal/costmodel"
	"multijoin/internal/hashjoin"
	"multijoin/internal/relation"
	"multijoin/internal/sim"
	"multijoin/internal/xra"
)

// item is one unit of work in an instance's FIFO queue: a data batch, an
// end-of-stream marker, or a synthetic scan batch. The queue serializes all
// state changes of an instance, so the hash-join state machines never see
// out-of-order input.
type item struct {
	port   port
	batch  *relation.Batch
	eos    bool
	remote bool
	scan   bool
}

// instance is one operation process: an operator replica bound to a single
// simulated processor.
type instance struct {
	e     *engineState
	op    *opState
	idx   int
	proc  *sim.Proc
	label string

	startupAt     sim.Time // scheduler finished initializing this process
	activationSet bool     // activation event scheduled or executed
	started       bool     // handshakes paid; processing may proceed

	queue      []item
	processing bool
	finished   bool

	eosWant map[port]int
	eosGot  map[port]int

	// Join algorithm state (exactly one is non-nil for join operators).
	simple    *hashjoin.Simple
	pipe      *hashjoin.Pipelining
	buildDone bool
	probeWait []item // probe batches buffered during the simple join's build phase

	// Scan state: the pre-placed base relation fragment in columnar form,
	// and its per-batch views queued as scan items (chunk-at-a-time cost
	// events without copying the fragment). Scan views stay out of the
	// batch pool.
	scanBatch  relation.Batch
	scanChunks []relation.Batch

	// scratch is the reusable join-result buffer: apply leaves results in
	// it and the emit event copies them out before the next apply, so one
	// buffer per instance suffices.
	scratch relation.Batch

	// Output batching: one pooled buffer per destination instance of the
	// consumer edge (a nil buffer is replaced from the pool on first use
	// after each flush).
	outBufs []*relation.Batch

	// Collect state.
	gathered *relation.Relation
}

// spec returns the hash-join spec of the instance's operator.
func (in *instance) spec() hashjoin.Spec {
	return hashjoin.Spec{BuildIsLower: in.op.op.BuildIsLower}
}

// tryActivate activates the process once the scheduler has initialized it
// and its After dependencies completed. Activation pays the stream
// handshakes (both incoming and outgoing endpoints) on the instance's
// processor, then opens the gates for processing.
func (in *instance) tryActivate() {
	if in.started || in.activationSet {
		return
	}
	now := in.e.sim.Now()
	if now < in.startupAt || !in.op.depsDone() {
		return // retried by the startup event or a dependency completion
	}
	in.activationSet = true
	hs := in.e.params.Handshake * sim.Duration(in.numStreams())
	in.e.stats.HandshakeTime += hs
	_, end := in.proc.Acquire(now, hs, in.label)
	in.e.sim.At(end, func() {
		in.started = true
		in.initState()
		if !in.processing {
			in.next()
		}
	})
}

// numStreams counts the tuple streams this process participates in: for
// each input, one per producer process (redistribution) or one (local), and
// symmetrically for its output edge.
func (in *instance) numStreams() int {
	n := 0
	for _, w := range in.eosWant {
		n += w
	}
	if c := in.op.consumer; c != nil {
		if c.local || c.to.op.Kind == xra.OpCollect {
			n++
		} else {
			n += len(c.to.instances)
		}
	}
	return n
}

// initState lazily creates algorithm state and enqueues scan work. Join
// tables are sized from the operator's estimated per-process operand
// cardinality so steady-state inserts never rehash.
func (in *instance) initState() {
	hint := relation.PerFragmentCap(in.op.estCard, len(in.op.instances))
	switch in.op.op.Kind {
	case xra.OpSimpleJoin:
		in.simple = hashjoin.NewSimpleSized(in.spec(), hint)
		in.scratch = *relation.NewBatch(2 * in.e.params.BatchTuples)
	case xra.OpPipeJoin:
		in.pipe = hashjoin.NewPipeliningSized(in.spec(), hint)
		in.scratch = *relation.NewBatch(2 * in.e.params.BatchTuples)
	case xra.OpScan:
		b := in.e.params.BatchTuples
		n := in.scanBatch.Len()
		in.scanChunks = make([]relation.Batch, 0, (n+b-1)/b)
		for lo := 0; lo < n; lo += b {
			hi := lo + b
			if hi > n {
				hi = n
			}
			in.scanChunks = append(in.scanChunks, in.scanBatch.View(lo, hi))
		}
		for k := range in.scanChunks {
			in.queue = append(in.queue, item{scan: true, batch: &in.scanChunks[k]})
		}
	}
	if c := in.op.consumer; c != nil {
		n := len(c.to.instances)
		if c.local {
			n = 1
		}
		in.outBufs = make([]*relation.Batch, n)
	}
	if in.eosGot == nil {
		in.eosGot = make(map[port]int)
	}
}

// deliver enqueues an incoming item and kicks processing if idle.
func (in *instance) deliver(it item) {
	in.queue = append(in.queue, it)
	if in.started && !in.processing {
		in.next()
	}
}

// next processes the head of the queue, charging the simulated processor
// and applying the algorithm state change, then re-arms itself. When the
// queue drains and all inputs have ended, the process finishes. Bookkeeping
// items (end-of-stream markers, probe input buffered during a build phase)
// cost nothing and are drained iteratively.
func (in *instance) next() {
	if in.finished {
		return
	}
	for {
		if len(in.queue) == 0 {
			in.processing = false
			in.maybeFinish()
			return
		}
		in.processing = true
		it := in.queue[0]
		in.queue = in.queue[1:]

		if it.eos {
			in.eosGot[it.port]++
			if in.op.op.Kind == xra.OpPipeJoin && in.eosGot[it.port] == in.eosWant[it.port] {
				// A closed operand lets the pipelining join stop
				// inserting the other operand's tuples (no future match
				// can need them).
				if it.port == portBuild {
					in.pipe.CloseBuildSide()
				} else {
					in.pipe.CloseProbeSide()
				}
			}
			if in.op.op.Kind == xra.OpSimpleJoin && it.port == portBuild &&
				in.eosGot[portBuild] == in.eosWant[portBuild] {
				// Build phase complete: release the buffered probe input
				// in arrival order ahead of anything queued later.
				in.buildDone = true
				in.queue = append(in.probeWait, in.queue...)
				in.probeWait = nil
			}
			continue
		}

		if in.op.op.Kind == xra.OpSimpleJoin && it.port == portProbe && !in.buildDone {
			// The simple hash-join blocks its probe operand until the
			// hash table is complete.
			in.probeWait = append(in.probeWait, it)
			continue
		}

		units, results := in.apply(it)
		cost := in.e.params.WorkCost(units)
		now := in.e.sim.Now()
		_, end := in.proc.Acquire(now, cost, in.label)
		in.e.sim.At(end, func() {
			if results != nil && results.Len() > 0 {
				in.emit(results)
			}
			in.next()
		})
		return
	}
}

// apply runs the operator logic on one item, returning the work in cost
// units (Section 4.3: hash=1, net receive=1, result create+send=2) and any
// result batch to emit. Join results land in the instance's scratch
// buffer, which the emit event consumes before the next apply; exhausted
// input batches return to the batch pool (scan items are borrowed views of
// the base relation fragment and stay out of the pool).
func (in *instance) apply(it item) (units float64, results *relation.Batch) {
	n := float64(it.batch.Len())
	switch {
	case it.scan:
		units = n * in.e.params.ScanUnits
		if c := in.op.consumer; c != nil && !c.local {
			units += n * costmodel.UnitsResult / 2 // send over the network
		}
		results = it.batch
	case in.op.op.Kind == xra.OpSimpleJoin && it.port == portBuild:
		units = n * costmodel.UnitsHash
		if it.remote {
			units += n * costmodel.UnitsNetReceive
		}
		in.simple.InsertBatch(it.batch)
		in.e.pool.Put(it.batch)
		in.e.addTableTuples(in.proc.ID, int(n))
	case in.op.op.Kind == xra.OpSimpleJoin: // probe, build complete
		in.scratch.Reset()
		in.simple.ProbeBatchInto(&in.scratch, it.batch)
		in.e.pool.Put(it.batch)
		results = &in.scratch
		units = n * costmodel.UnitsHash
		if it.remote {
			units += n * costmodel.UnitsNetReceive
		}
		units += float64(results.Len()) * costmodel.UnitsResult
	case in.op.op.Kind == xra.OpPipeJoin:
		// A pipelining-join tuple probes the other operand's table and —
		// while that operand is still open — inserts into its own: two
		// table actions per tuple. The second action is saved when the
		// other side has ended (no future arrival can need the insert) or
		// when the other table is still empty (probing is a no-op), which
		// is why FP degenerates to RD-like per-tuple cost on linear trees
		// (Figure 13) while paying the full symmetric cost on bushy ones.
		fromBuild := it.port == portBuild
		otherClosed := in.pipe.SideClosed(!fromBuild)
		bn, pn := in.pipe.Sizes()
		otherEmpty := (fromBuild && pn == 0) || (!fromBuild && bn == 0)
		in.scratch.Reset()
		if fromBuild {
			in.pipe.FromBuildSideBatchInto(&in.scratch, it.batch)
		} else {
			in.pipe.FromProbeSideBatchInto(&in.scratch, it.batch)
		}
		in.e.pool.Put(it.batch)
		results = &in.scratch
		b1, p1 := in.pipe.Sizes()
		in.e.addTableTuples(in.proc.ID, (b1+p1)-(bn+pn))
		units = n * costmodel.UnitsHash
		if !otherClosed && !otherEmpty {
			units += n * costmodel.UnitsProbe
		}
		if it.remote {
			units += n * costmodel.UnitsNetReceive
		}
		units += float64(results.Len()) * costmodel.UnitsResult
	case in.op.op.Kind == xra.OpCollect:
		// Gathering at the scheduler host is free and identical for every
		// strategy; the paper's response time excludes it.
		if in.e.sink != nil {
			// Streaming: hand the pooled batch to the sink in virtual-time
			// order. Ownership transfers with the Push (the consumer's
			// release returns it to the pool); a blocked Push pauses the
			// simulation, and a failed one (cancellation) is recorded so
			// the event loop aborts at its next ctx check without further
			// pushes.
			if in.e.sinkErr == nil {
				batch := it.batch
				cnt := batch.Len() // before Push: ownership transfers with it
				err := in.e.sink.Push(in.e.ctx, batch, func() { in.e.pool.Put(batch) })
				if err != nil {
					in.e.sinkErr = err
				} else {
					in.e.pushed += cnt
				}
			}
			break
		}
		it.batch.AppendTo(in.gathered)
		in.e.pool.Put(it.batch)
	}
	return units, results
}

// emit routes result tuples into per-destination pooled buffers, flushing
// batches the moment they are full so a pooled buffer never regrows past
// its fixed capacity. The single-destination path is three bulk column
// copies per chunk; redistribution hoists the routing key column and
// scatters row-at-a-time over flat columns.
func (in *instance) emit(results *relation.Batch) {
	c := in.op.consumer
	if c == nil {
		return
	}
	n := results.Len()
	bt := in.e.params.BatchTuples
	if len(in.outBufs) == 1 {
		for lo := 0; lo < n; {
			buf := in.outBufs[0]
			if buf == nil {
				buf = in.e.pool.Get()
				in.outBufs[0] = buf
			}
			cnt := bt - buf.Len()
			if cnt > n-lo {
				cnt = n - lo
			}
			buf.AppendRange(results, lo, lo+cnt)
			lo += cnt
			if buf.Len() == bt {
				in.flush(0)
			}
		}
		return
	}
	bk := relation.NewBucketer(len(in.outBufs))
	keys := results.Col(c.route)
	for i := 0; i < n; i++ {
		d := bk.Bucket(keys[i])
		buf := in.outBufs[d]
		if buf == nil {
			buf = in.e.pool.Get()
			in.outBufs[d] = buf
		}
		buf.Append(results.U1[i], results.U2[i], results.Check[i])
		if buf.Len() == bt {
			in.flush(d)
		}
	}
}

// flush sends buffer d to its destination instance, with network latency
// when crossing processors.
func (in *instance) flush(d int) {
	buf := in.outBufs[d]
	if buf == nil || buf.Len() == 0 {
		return
	}
	c := in.op.consumer
	dest := in.destInstance(d)
	in.outBufs[d] = nil
	remote := dest.proc != in.proc
	var latency sim.Duration
	if remote {
		latency = in.e.params.NetLatency
	}
	// The final gather at the scheduler host is identical for every
	// strategy and excluded from the paper's metrics; keep it out of the
	// transport statistics as well.
	if c.to.op.Kind != xra.OpCollect {
		if remote {
			in.e.stats.TuplesMovedRemote += int64(buf.Len())
		} else {
			in.e.stats.TuplesLocal += int64(buf.Len())
		}
		in.e.stats.Batches++
	}
	it := item{port: c.port, batch: buf, remote: remote}
	in.e.sim.After(latency, func() { dest.deliver(it) })
}

// destInstance resolves destination buffer index d to the consumer instance.
func (in *instance) destInstance(d int) *instance {
	c := in.op.consumer
	if c.local {
		return c.to.instances[in.idx]
	}
	return c.to.instances[d]
}

// maybeFinish completes the process once every input ended and all queued
// work was applied: remaining buffers are flushed, end-of-stream markers are
// sent to every destination, and the operator completion is reported when
// the last sibling instance finishes.
func (in *instance) maybeFinish() {
	if in.finished || !in.started {
		return
	}
	for p, want := range in.eosWant {
		if in.eosGot[p] < want {
			return
		}
	}
	if len(in.probeWait) > 0 {
		return // cannot happen once build EOS arrived, defensive
	}
	in.finished = true
	// Release hash-table memory held by this process — the modeled bytes
	// and, below, the real backing arrays, which the recycle pool hands to
	// the joins still running.
	switch {
	case in.simple != nil:
		in.e.addTableTuples(in.proc.ID, -in.simple.BuildSize())
		in.simple.Release()
		in.simple = nil
	case in.pipe != nil:
		bn, pn := in.pipe.Sizes()
		in.e.addTableTuples(in.proc.ID, -(bn + pn))
		in.pipe.Release()
		in.pipe = nil
	}
	if c := in.op.consumer; c != nil {
		for d := range in.outBufs {
			in.flush(d)
		}
		// End-of-stream on every outgoing stream.
		if c.local {
			dest := in.destInstance(0)
			eos := item{port: c.port, eos: true}
			in.e.sim.After(0, func() { dest.deliver(eos) })
		} else {
			for d := range c.to.instances {
				dest := c.to.instances[d]
				remote := dest.proc != in.proc
				var latency sim.Duration
				if remote {
					latency = in.e.params.NetLatency
				}
				eos := item{port: c.port, eos: true}
				in.e.sim.After(latency, func() { dest.deliver(eos) })
			}
		}
	}
	in.op.doneCount++
	if in.op.doneCount == len(in.op.instances) {
		in.e.opFinished(in.op)
	}
}
