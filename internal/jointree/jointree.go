// Package jointree models join trees over the chain query of Section 4.1:
// binary trees whose leaves are the base relations R0..R{k-1} in chain order
// and whose internal nodes join two adjacent chain spans.
//
// Terminology follows Schneider [Sch90] as used in the paper: every join has
// a Build operand (the inner/"left" operand whose hash table a simple
// hash-join constructs) and a Probe operand (the outer/"right" operand that
// streams). Which operand covers the lower chain span is independent of the
// build/probe roles; mirroring a tree swaps the roles without changing the
// result (Section 5 notes mirroring is free and makes trees right-oriented).
package jointree

import (
	"fmt"
	"sort"

	"multijoin/internal/costmodel"
	"multijoin/internal/hashjoin"
	"multijoin/internal/relation"
)

// Node is one node of a join tree: either a leaf (a base relation) or a
// binary join of two subtrees.
type Node struct {
	// Leaf is the base-relation index for leaf nodes and -1 for joins.
	Leaf int
	// JoinID labels a join node. The figures in the paper label joins with
	// their relative work; shape constructors assign sequential ids and
	// Example uses the paper's labels. Zero ids are assigned by Finalize.
	JoinID int
	// Build and Probe are the operand subtrees of a join node (nil for
	// leaves). Build is the hash-table side, Probe the streaming side.
	Build, Probe *Node
	// Weight is an explicit relative work figure for the join (the labels
	// of Figure 2). Zero means "derive from the cost model".
	Weight float64
	// Lo, Hi delimit the chain span [Lo, Hi] covered by the subtree; set
	// by Finalize.
	Lo, Hi int
}

// NewLeaf returns a leaf node for base relation i.
func NewLeaf(i int) *Node { return &Node{Leaf: i, Lo: i, Hi: i} }

// NewJoin returns a join node with the given operands.
func NewJoin(build, probe *Node) *Node {
	return &Node{Leaf: -1, Build: build, Probe: probe}
}

// IsLeaf reports whether the node is a base relation.
func (n *Node) IsLeaf() bool { return n.Build == nil && n.Probe == nil }

// BuildIsLower reports whether the build operand covers the lower chain
// span. Valid after Finalize.
func (n *Node) BuildIsLower() bool { return n.Build.Lo == n.Lo }

// Spec returns the hashjoin specification of this join node.
func (n *Node) Spec() hashjoin.Spec {
	return hashjoin.Spec{BuildIsLower: n.BuildIsLower()}
}

// BuildAttr returns the attribute on which the build operand must be
// partitioned/probed for this join.
func (n *Node) BuildAttr() relation.Attr { return n.Spec().BuildAttr() }

// ProbeAttr returns the probe operand's join attribute.
func (n *Node) ProbeAttr() relation.Attr { return n.Spec().ProbeAttr() }

// String renders the tree in span notation, e.g. "(R0 (R1 R2))".
func (n *Node) String() string {
	if n.IsLeaf() {
		return fmt.Sprintf("R%d", n.Leaf)
	}
	return fmt.Sprintf("(J%d %s %s)", n.JoinID, n.Build, n.Probe)
}

// Finalize validates the tree and computes spans: leaves must cover a
// contiguous range of base-relation indices exactly once, and every join
// must combine two adjacent spans (the chain query has no cartesian
// products). Joins without an id get sequential post-order ids starting at
// 1. Finalize must be called before a tree is planned or executed.
func Finalize(root *Node) error {
	if root == nil {
		return fmt.Errorf("jointree: nil root")
	}
	nextID := 1
	used := make(map[int]bool)
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.IsLeaf() {
			if n.Leaf < 0 {
				return fmt.Errorf("jointree: leaf with negative index %d", n.Leaf)
			}
			n.Lo, n.Hi = n.Leaf, n.Leaf
			return nil
		}
		if n.Build == nil || n.Probe == nil {
			return fmt.Errorf("jointree: join with missing operand")
		}
		if err := walk(n.Build); err != nil {
			return err
		}
		if err := walk(n.Probe); err != nil {
			return err
		}
		b, p := n.Build, n.Probe
		switch {
		case b.Hi+1 == p.Lo:
			n.Lo, n.Hi = b.Lo, p.Hi
		case p.Hi+1 == b.Lo:
			n.Lo, n.Hi = p.Lo, b.Hi
		default:
			return fmt.Errorf("jointree: operands [%d,%d] and [%d,%d] are not adjacent chain spans",
				b.Lo, b.Hi, p.Lo, p.Hi)
		}
		if n.JoinID == 0 {
			for used[nextID] {
				nextID++
			}
			n.JoinID = nextID
		}
		if used[n.JoinID] {
			return fmt.Errorf("jointree: duplicate join id %d", n.JoinID)
		}
		used[n.JoinID] = true
		return nil
	}
	if err := walk(root); err != nil {
		return err
	}
	// Leaf coverage: spans guarantee contiguity; additionally require each
	// leaf index to appear exactly once.
	seen := make(map[int]int)
	for _, l := range Leaves(root) {
		seen[l.Leaf]++
	}
	for i := root.Lo; i <= root.Hi; i++ {
		if seen[i] != 1 {
			return fmt.Errorf("jointree: leaf R%d appears %d times", i, seen[i])
		}
	}
	return nil
}

// Joins returns the join nodes in post-order (operands before their join).
func Joins(root *Node) []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.IsLeaf() {
			return
		}
		walk(n.Build)
		walk(n.Probe)
		out = append(out, n)
	}
	walk(root)
	return out
}

// Leaves returns the leaf nodes in chain order (by span).
func Leaves(root *Node) []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			out = append(out, n)
			return
		}
		walk(n.Build)
		walk(n.Probe)
	}
	walk(root)
	sort.Slice(out, func(i, j int) bool { return out[i].Leaf < out[j].Leaf })
	return out
}

// NumJoins returns the number of join nodes.
func NumJoins(root *Node) int { return len(Joins(root)) }

// Depth returns the height of the tree in join nodes (0 for a leaf).
func Depth(root *Node) int {
	if root == nil || root.IsLeaf() {
		return 0
	}
	b, p := Depth(root.Build), Depth(root.Probe)
	if b > p {
		return b + 1
	}
	return p + 1
}

// Mirror swaps the build and probe operands of every join in place, which
// turns left-oriented trees into right-oriented ones and vice versa without
// changing the query result or its total cost (Section 5).
func Mirror(root *Node) {
	if root == nil || root.IsLeaf() {
		return
	}
	root.Build, root.Probe = root.Probe, root.Build
	Mirror(root.Build)
	Mirror(root.Probe)
}

// Clone returns a deep copy of the tree.
func Clone(root *Node) *Node {
	if root == nil {
		return nil
	}
	c := *root
	c.Build = Clone(root.Build)
	c.Probe = Clone(root.Probe)
	return &c
}

// Work returns the relative work of join node n under the paper's cost
// function (Section 4.3), for the regular workload where every operand and
// every result has cardinality card. An explicit node Weight overrides the
// formula (the Figure 2 example labels joins with their relative work
// directly).
func (n *Node) Work(card float64) float64 {
	if n.IsLeaf() {
		return 0
	}
	if n.Weight > 0 {
		return n.Weight
	}
	return costmodel.JoinCost(card, card, card, n.Build.IsLeaf(), n.Probe.IsLeaf())
}

// SubtreeWork returns the total work of all joins in the subtree.
func SubtreeWork(root *Node, card float64) float64 {
	if root == nil || root.IsLeaf() {
		return 0
	}
	return root.Work(card) + SubtreeWork(root.Build, card) + SubtreeWork(root.Probe, card)
}

// SpanCardFunc estimates the cardinality of the join of a chain span; leaf
// spans (lo == hi) are base relations. It generalizes the regular workload
// (constant cardinality) to variable-size chains.
type SpanCardFunc func(lo, hi int) float64

// WorkSpan is Work with per-span cardinalities: the paper's cost function
// evaluated with n1, n2 and r taken from the span estimator. An explicit
// node Weight still overrides the formula.
func (n *Node) WorkSpan(spanCard SpanCardFunc) float64 {
	if n.IsLeaf() {
		return 0
	}
	if n.Weight > 0 {
		return n.Weight
	}
	n1 := spanCard(n.Build.Lo, n.Build.Hi)
	n2 := spanCard(n.Probe.Lo, n.Probe.Hi)
	r := spanCard(n.Lo, n.Hi)
	return costmodel.JoinCost(n1, n2, r, n.Build.IsLeaf(), n.Probe.IsLeaf())
}

// SubtreeWorkSpan returns the total WorkSpan of all joins in the subtree.
func SubtreeWorkSpan(root *Node, spanCard SpanCardFunc) float64 {
	if root == nil || root.IsLeaf() {
		return 0
	}
	return root.WorkSpan(spanCard) + SubtreeWorkSpan(root.Build, spanCard) + SubtreeWorkSpan(root.Probe, spanCard)
}

// Reference evaluates the tree sequentially with real hash joins and returns
// the exact result relation, including provenance checksums. It is the
// oracle every parallel execution is compared against. rel maps a leaf index
// to its base relation.
func Reference(root *Node, rel func(leaf int) *relation.Relation) *relation.Relation {
	if root.IsLeaf() {
		return rel(root.Leaf)
	}
	b := Reference(root.Build, rel)
	p := Reference(root.Probe, rel)
	out := hashjoin.Join(b, p, root.Spec(), false)
	out.Name = fmt.Sprintf("J%d", root.JoinID)
	return out
}
