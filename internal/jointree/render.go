package jointree

import (
	"fmt"
	"strings"
)

// Render draws the join tree as indented ASCII, build operand first, with
// join ids, spans and (when assigned) relative work weights:
//
//	J1 [0,4]
//	├─build─ R0
//	└─probe─ J5 [1,4] w=5
//	         ├─build─ J4 [1,2] w=4
//	         ...
//
// Intended for plan inspection tools (cmd/mjplan) and debugging output.
func Render(root *Node) string {
	var b strings.Builder
	var walk func(n *Node, prefix string, tag string, last bool)
	walk = func(n *Node, prefix, tag string, last bool) {
		connector := ""
		childPrefix := prefix
		if tag != "" {
			branch := "├─"
			if last {
				branch = "└─"
			}
			connector = prefix + branch + tag + "─ "
			if last {
				childPrefix = prefix + strings.Repeat(" ", len(branch+tag)+2)
			} else {
				childPrefix = prefix + "│" + strings.Repeat(" ", len(branch+tag)+1)
			}
		}
		if n.IsLeaf() {
			fmt.Fprintf(&b, "%sR%d\n", connector, n.Leaf)
			return
		}
		fmt.Fprintf(&b, "%sJ%d [%d,%d]", connector, n.JoinID, n.Lo, n.Hi)
		if n.Weight > 0 {
			fmt.Fprintf(&b, " w=%g", n.Weight)
		}
		b.WriteByte('\n')
		walk(n.Build, childPrefix, "build", false)
		walk(n.Probe, childPrefix, "probe", true)
	}
	walk(root, "", "", true)
	return b.String()
}
