package jointree

import "fmt"

// Shape enumerates the five query-tree shapes of Figure 8.
type Shape int

const (
	// LeftLinear chains through the build operands: every join builds on
	// the intermediate result so far and probes the next base relation,
	// (((R0 R1) R2) R3) ... .
	LeftLinear Shape = iota
	// LeftBushy is the "left-oriented long bushy" tree: base relations are
	// first paired into leaf joins T_k = (R_{2k} R_{2k+1}); the chain then
	// grows through the build side, X_k = (X_{k-1} T_k). Every chain join
	// has two intermediate operands — the bushy-pipeline case of [WiA93].
	LeftBushy
	// WideBushy is the balanced tree: spans are split in the middle
	// recursively, maximizing independent subtrees.
	WideBushy
	// RightBushy mirrors LeftBushy: the chain grows through the probe
	// side, X_k = (T_k X_{k+1}), forming one long right-deep probe
	// pipeline whose build operands are the independent leaf joins.
	RightBushy
	// RightLinear chains through the probe operands:
	// (R0 (R1 (R2 ...))).
	RightLinear
)

// Shapes lists all five shapes in the paper's figure order.
var Shapes = []Shape{LeftLinear, LeftBushy, WideBushy, RightBushy, RightLinear}

// String returns the paper's name for the shape.
func (s Shape) String() string {
	switch s {
	case LeftLinear:
		return "left-linear"
	case LeftBushy:
		return "left-oriented-bushy"
	case WideBushy:
		return "wide-bushy"
	case RightBushy:
		return "right-oriented-bushy"
	case RightLinear:
		return "right-linear"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// ParseShape converts a shape name (as produced by String) back to a Shape.
func ParseShape(name string) (Shape, error) {
	for _, s := range Shapes {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("jointree: unknown shape %q", name)
}

// BuildShape constructs a finalized join tree of the given shape over k base
// relations (k >= 2). Join ids are assigned in post-order.
func BuildShape(s Shape, k int) (*Node, error) {
	if k < 2 {
		return nil, fmt.Errorf("jointree: shape needs at least 2 relations, got %d", k)
	}
	var root *Node
	switch s {
	case LeftLinear:
		root = NewLeaf(0)
		for i := 1; i < k; i++ {
			root = NewJoin(root, NewLeaf(i))
		}
	case RightLinear:
		root = NewLeaf(k - 1)
		for i := k - 2; i >= 0; i-- {
			root = NewJoin(NewLeaf(i), root)
		}
	case WideBushy:
		var split func(lo, hi int) *Node
		split = func(lo, hi int) *Node {
			if lo == hi {
				return NewLeaf(lo)
			}
			mid := (lo + hi) / 2
			return NewJoin(split(lo, mid), split(mid+1, hi))
		}
		root = split(0, k-1)
	case LeftBushy:
		groups := pairUp(k)
		root = groups[0]
		for _, g := range groups[1:] {
			root = NewJoin(root, g)
		}
	case RightBushy:
		groups := pairUp(k)
		root = groups[len(groups)-1]
		for i := len(groups) - 2; i >= 0; i-- {
			root = NewJoin(groups[i], root)
		}
	default:
		return nil, fmt.Errorf("jointree: unknown shape %v", s)
	}
	if err := Finalize(root); err != nil {
		return nil, err
	}
	return root, nil
}

// pairUp groups k leaves into adjacent 2-relation leaf joins (with a single
// trailing leaf when k is odd), the building blocks of the long bushy trees.
func pairUp(k int) []*Node {
	var groups []*Node
	for i := 0; i+1 < k; i += 2 {
		groups = append(groups, NewJoin(NewLeaf(i), NewLeaf(i+1)))
	}
	if k%2 == 1 {
		groups = append(groups, NewLeaf(k-1))
	}
	return groups
}

// Example returns the 5-way join tree of Figure 2, with the paper's join
// labels doubling as relative work weights: join 1 at the top, join 5 below
// it, and the leaf joins 4 and 3:
//
//	J1(w=1): build R0,     probe J5
//	J5(w=5): build J4,     probe J3
//	J4(w=4): build R1, probe R2
//	J3(w=3): build R3, probe R4
func Example() *Node {
	j4 := NewJoin(NewLeaf(1), NewLeaf(2))
	j4.JoinID, j4.Weight = 4, 4
	j3 := NewJoin(NewLeaf(3), NewLeaf(4))
	j3.JoinID, j3.Weight = 3, 3
	j5 := NewJoin(j4, j3)
	j5.JoinID, j5.Weight = 5, 5
	j1 := NewJoin(NewLeaf(0), j5)
	j1.JoinID, j1.Weight = 1, 1
	if err := Finalize(j1); err != nil {
		panic("jointree: example tree invalid: " + err.Error())
	}
	return j1
}

// Segment is one right-deep segment of a bushy tree (Figure 5): a maximal
// chain of joins linked through their probe operands, listed top-down. The
// probe pipeline of a segment starts at the bottom join's probe operand
// (always a base relation, by maximality) and flows upward. Build operands
// of the segment's joins are base relations or the roots of other segments.
type Segment struct {
	Joins []*Node // top-down: Joins[i].Probe == Joins[i+1] (as a subtree)
}

// Root returns the segment's top join.
func (s *Segment) Root() *Node { return s.Joins[0] }

// Bottom returns the segment's lowest join.
func (s *Segment) Bottom() *Node { return s.Joins[len(s.Joins)-1] }

// Work returns the segment's total join work for operand cardinality card.
func (s *Segment) Work(card float64) float64 {
	var w float64
	for _, j := range s.Joins {
		w += j.Work(card)
	}
	return w
}

// RightDeepSegments decomposes the tree into right-deep segments as in
// [CLY92]: starting from the root, follow probe children while they are
// joins to form one segment; every join-valued build child starts a new
// segment, recursively. Segments are returned with the root's segment first;
// each segment appears before the segments that produce its build operands.
func RightDeepSegments(root *Node) []*Segment {
	var out []*Segment
	var cut func(top *Node)
	cut = func(top *Node) {
		seg := &Segment{}
		for n := top; !n.IsLeaf(); n = n.Probe {
			seg.Joins = append(seg.Joins, n)
		}
		out = append(out, seg)
		for _, j := range seg.Joins {
			if !j.Build.IsLeaf() {
				cut(j.Build)
			}
		}
	}
	if !root.IsLeaf() {
		cut(root)
	}
	return out
}
