package jointree

import (
	"strings"
	"testing"
	"testing/quick"

	"multijoin/internal/relation"
	"multijoin/internal/wisconsin"
)

func build(t *testing.T, s Shape, k int) *Node {
	t.Helper()
	n, err := BuildShape(s, k)
	if err != nil {
		t.Fatalf("BuildShape(%v, %d): %v", s, k, err)
	}
	return n
}

func TestFinalizeAssignsSpansAndIDs(t *testing.T) {
	root := NewJoin(NewJoin(NewLeaf(0), NewLeaf(1)), NewLeaf(2))
	if err := Finalize(root); err != nil {
		t.Fatal(err)
	}
	if root.Lo != 0 || root.Hi != 2 {
		t.Errorf("root span [%d,%d]", root.Lo, root.Hi)
	}
	ids := map[int]bool{}
	for _, j := range Joins(root) {
		if j.JoinID == 0 || ids[j.JoinID] {
			t.Errorf("bad or duplicate id %d", j.JoinID)
		}
		ids[j.JoinID] = true
	}
}

func TestFinalizeRejectsBadTrees(t *testing.T) {
	// Non-adjacent spans (would be a cartesian product).
	bad := NewJoin(NewLeaf(0), NewLeaf(2))
	if err := Finalize(bad); err == nil {
		t.Error("non-adjacent spans must fail")
	}
	// Duplicate leaf.
	dup := NewJoin(NewLeaf(1), NewLeaf(1))
	if err := Finalize(dup); err == nil {
		t.Error("duplicate leaf must fail")
	}
	// Negative leaf index.
	if err := Finalize(NewLeaf(-1)); err == nil {
		t.Error("negative leaf must fail")
	}
	// Nil root.
	if err := Finalize(nil); err == nil {
		t.Error("nil root must fail")
	}
	// Duplicate explicit join ids.
	a := NewJoin(NewLeaf(0), NewLeaf(1))
	a.JoinID = 3
	b := NewJoin(a, NewLeaf(2))
	b.JoinID = 3
	if err := Finalize(b); err == nil {
		t.Error("duplicate explicit join ids must fail")
	}
}

func TestShapesStructure(t *testing.T) {
	const k = 10
	for _, s := range Shapes {
		root := build(t, s, k)
		if NumJoins(root) != k-1 {
			t.Errorf("%v: %d joins, want %d", s, NumJoins(root), k-1)
		}
		leaves := Leaves(root)
		if len(leaves) != k {
			t.Errorf("%v: %d leaves", s, len(leaves))
		}
		for i, l := range leaves {
			if l.Leaf != i {
				t.Errorf("%v: leaf %d at position %d", s, l.Leaf, i)
			}
		}
		if root.Lo != 0 || root.Hi != k-1 {
			t.Errorf("%v: root span [%d,%d]", s, root.Lo, root.Hi)
		}
	}
}

func TestShapeDepths(t *testing.T) {
	const k = 10
	depths := map[Shape]int{
		LeftLinear:  9,
		RightLinear: 9,
		WideBushy:   4,
		LeftBushy:   5,
		RightBushy:  5,
	}
	for s, want := range depths {
		if got := Depth(build(t, s, k)); got != want {
			t.Errorf("%v depth = %d, want %d", s, got, want)
		}
	}
	if Depth(NewLeaf(0)) != 0 {
		t.Error("leaf depth must be 0")
	}
}

func TestLinearChaining(t *testing.T) {
	// Left-linear: every join's build operand is the intermediate chain.
	ll := build(t, LeftLinear, 6)
	for n := ll; !n.IsLeaf(); n = n.Build {
		if !n.Probe.IsLeaf() {
			t.Fatal("left-linear probe operands must be base relations")
		}
	}
	// Right-linear: every join's probe operand is the chain.
	rl := build(t, RightLinear, 6)
	for n := rl; !n.IsLeaf(); n = n.Probe {
		if !n.Build.IsLeaf() {
			t.Fatal("right-linear build operands must be base relations")
		}
	}
}

func TestBuildIsLowerConvention(t *testing.T) {
	for _, s := range Shapes {
		root := build(t, s, 10)
		for _, j := range Joins(root) {
			if !j.BuildIsLower() {
				t.Errorf("%v: join %d builds on the higher span", s, j.JoinID)
			}
			if j.BuildAttr() != relation.Unique2 || j.ProbeAttr() != relation.Unique1 {
				t.Errorf("%v: join %d attrs wrong", s, j.JoinID)
			}
		}
	}
}

func TestMirror(t *testing.T) {
	root := build(t, LeftLinear, 5)
	Mirror(root)
	// Mirrored left-linear chains through probe children now.
	for n := root; !n.IsLeaf(); n = n.Probe {
		if !n.Build.IsLeaf() {
			t.Fatal("mirrored left-linear must chain through probe")
		}
	}
	for _, j := range Joins(root) {
		if j.BuildIsLower() {
			t.Errorf("mirrored join %d still builds on lower span", j.JoinID)
		}
		if j.BuildAttr() != relation.Unique1 {
			t.Errorf("mirrored join %d build attr %v", j.JoinID, j.BuildAttr())
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	root := build(t, WideBushy, 6)
	c := Clone(root)
	Mirror(c)
	// Original must be untouched.
	for _, j := range Joins(root) {
		if !j.BuildIsLower() {
			t.Fatal("Clone shares nodes with original")
		}
	}
}

func TestBuildShapeErrors(t *testing.T) {
	if _, err := BuildShape(LeftLinear, 1); err == nil {
		t.Error("k=1 must fail")
	}
	if _, err := BuildShape(Shape(99), 5); err == nil {
		t.Error("unknown shape must fail")
	}
}

func TestShapeNamesRoundTrip(t *testing.T) {
	for _, s := range Shapes {
		got, err := ParseShape(s.String())
		if err != nil || got != s {
			t.Errorf("ParseShape(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseShape("zigzag"); err == nil {
		t.Error("unknown name must fail")
	}
}

func TestOddLeafCounts(t *testing.T) {
	// Bushy shapes must handle odd k (trailing unpaired leaf).
	for _, s := range Shapes {
		for _, k := range []int{2, 3, 5, 7, 9, 11} {
			root := build(t, s, k)
			if NumJoins(root) != k-1 {
				t.Errorf("%v k=%d: %d joins", s, k, NumJoins(root))
			}
		}
	}
}

func TestExampleTree(t *testing.T) {
	ex := Example()
	joins := Joins(ex)
	if len(joins) != 4 {
		t.Fatalf("example tree has %d joins", len(joins))
	}
	byID := map[int]*Node{}
	for _, j := range joins {
		byID[j.JoinID] = j
		if j.Weight != float64(j.JoinID) {
			t.Errorf("join %d weight %g", j.JoinID, j.Weight)
		}
	}
	// Structure from Figure 2: J1 top (build R0, probe J5); J5 (build J4,
	// probe J3); J4 and J3 are leaf joins.
	if byID[1].Probe != byID[5] || !byID[1].Build.IsLeaf() {
		t.Error("J1 structure wrong")
	}
	if byID[5].Build != byID[4] || byID[5].Probe != byID[3] {
		t.Error("J5 structure wrong")
	}
	if Depth(ex) != 3 {
		t.Errorf("example depth %d, want 3", Depth(ex))
	}
	if got := ex.String(); !strings.Contains(got, "J1") || !strings.Contains(got, "R0") {
		t.Errorf("String() = %q", got)
	}
}

func TestWork(t *testing.T) {
	root := build(t, LeftLinear, 4)
	joins := Joins(root)
	// Post-order for left-linear: bottom join first (two bases: 4N), then
	// the chain joins (intermediate + base: 5N).
	if w := joins[0].Work(100); w != 400 {
		t.Errorf("leaf join work %g, want 400", w)
	}
	if w := joins[1].Work(100); w != 500 {
		t.Errorf("chain join work %g, want 500", w)
	}
	// Bushy chain join: both operands intermediate: 6N.
	lb := build(t, LeftBushy, 8)
	if w := lb.Work(100); w != 600 {
		t.Errorf("bushy root work %g, want 600", w)
	}
	// Explicit weight overrides.
	ex := Example()
	if ex.Work(1e9) != 1 {
		t.Error("explicit weight must override cost formula")
	}
	if NewLeaf(0).Work(10) != 0 {
		t.Error("leaf work must be 0")
	}
}

func TestSubtreeWork(t *testing.T) {
	ex := Example()
	if got := SubtreeWork(ex, 100); got != 1+5+3+4 {
		t.Errorf("example subtree work %g, want 13", got)
	}
	if SubtreeWork(nil, 10) != 0 || SubtreeWork(NewLeaf(2), 10) != 0 {
		t.Error("empty subtree work must be 0")
	}
}

func TestRightDeepSegments(t *testing.T) {
	// The example tree decomposes into segments [J1 J5 J3] and [J4]
	// (Figure 5 discussion / Figure 6).
	segs := RightDeepSegments(Example())
	if len(segs) != 2 {
		t.Fatalf("example has %d segments, want 2", len(segs))
	}
	ids := func(s *Segment) []int {
		var out []int
		for _, j := range s.Joins {
			out = append(out, j.JoinID)
		}
		return out
	}
	if got := ids(segs[0]); len(got) != 3 || got[0] != 1 || got[1] != 5 || got[2] != 3 {
		t.Errorf("segment 0 = %v, want [1 5 3]", got)
	}
	if got := ids(segs[1]); len(got) != 1 || got[0] != 4 {
		t.Errorf("segment 1 = %v, want [4]", got)
	}
	if segs[0].Root().JoinID != 1 || segs[0].Bottom().JoinID != 3 {
		t.Error("segment root/bottom wrong")
	}
	if segs[0].Work(1) != 1+5+3 {
		t.Errorf("segment work %g", segs[0].Work(1))
	}
}

func TestSegmentsByShape(t *testing.T) {
	// Left-linear: every join is its own single-join segment (RD -> SP).
	segs := RightDeepSegments(build(t, LeftLinear, 10))
	if len(segs) != 9 {
		t.Errorf("left-linear: %d segments, want 9", len(segs))
	}
	// Right-linear: one segment holding all joins (RD -> FP).
	segs = RightDeepSegments(build(t, RightLinear, 10))
	if len(segs) != 1 || len(segs[0].Joins) != 9 {
		t.Errorf("right-linear: %d segments", len(segs))
	}
	// Right-oriented bushy over 10 relations: the main chain (including
	// the last leaf join) plus 4 independent leaf-join segments.
	segs = RightDeepSegments(build(t, RightBushy, 10))
	if len(segs) != 5 {
		t.Errorf("right-bushy: %d segments, want 5", len(segs))
	}
	if len(segs[0].Joins) != 5 {
		t.Errorf("right-bushy main segment has %d joins, want 5", len(segs[0].Joins))
	}
	// Left-oriented bushy: short segments of length 2 (the paper: "very
	// short" right-deep segments).
	segs = RightDeepSegments(build(t, LeftBushy, 10))
	for i, s := range segs[:len(segs)-1] {
		if len(s.Joins) > 2 {
			t.Errorf("left-bushy segment %d has %d joins, want <=2", i, len(s.Joins))
		}
	}
}

// TestSegmentsPartitionJoins: segments always partition the join set.
func TestSegmentsPartitionJoins(t *testing.T) {
	f := func(shapeRaw, kRaw uint8) bool {
		s := Shapes[int(shapeRaw)%len(Shapes)]
		k := int(kRaw%9) + 2
		root, err := BuildShape(s, k)
		if err != nil {
			return false
		}
		seen := map[int]int{}
		for _, seg := range RightDeepSegments(root) {
			for _, j := range seg.Joins {
				seen[j.JoinID]++
			}
		}
		if len(seen) != k-1 {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReferenceAgainstExpectedPairs(t *testing.T) {
	db, err := wisconsin.Chain(wisconsin.Config{Relations: 6, Cardinality: 100, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	rel := func(leaf int) *relation.Relation { return db.Relation(leaf) }
	for _, s := range Shapes {
		root := build(t, s, 6)
		got := Reference(root, rel)
		if got.Card() != 100 {
			t.Errorf("%v: reference card %d", s, got.Card())
		}
		ok, err := db.SamePairs(got, 0, 5)
		if err != nil || !ok {
			t.Errorf("%v: reference pairs wrong (err=%v)", s, err)
		}
	}
}

// TestReferenceMirrorInvariant: mirroring a tree never changes the result,
// including checksums — the free mirroring transformation of Section 5.
func TestReferenceMirrorInvariant(t *testing.T) {
	db, err := wisconsin.Chain(wisconsin.Config{Relations: 7, Cardinality: 60, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	rel := func(leaf int) *relation.Relation { return db.Relation(leaf) }
	for _, s := range Shapes {
		root := build(t, s, 7)
		want := Reference(root, rel)
		m := Clone(root)
		Mirror(m)
		got := Reference(m, rel)
		if d := relation.DiffMultiset(got, want); d != "" {
			t.Errorf("%v: mirrored reference differs: %s", s, d)
		}
	}
}

func TestRender(t *testing.T) {
	out := Render(Example())
	for _, want := range []string{"J1 [0,4] w=1", "build─ R0", "probe─ J5 [1,4] w=5",
		"build─ J4 [1,2] w=4", "probe─ J3 [3,4] w=3", "build─ R1", "probe─ R4"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	leafOnly := Render(NewLeaf(3))
	if strings.TrimSpace(leafOnly) != "R3" {
		t.Errorf("leaf render = %q", leafOnly)
	}
}
