// Package diagram renders the paper's idealized processor-utilization
// diagrams (Figures 3, 4, 6 and 7) in ASCII: the x-axis is virtual time,
// each row is one processor, and each cell shows the label of the join the
// processor was working on during that time slice (`.` for idle, `s` for
// scan work, `h` is folded into the join label because handshakes are
// recorded under the operator's label).
package diagram

import (
	"fmt"
	"sort"
	"strings"

	"multijoin/internal/sim"
)

// Render draws the utilization of the given processors over [0, end) using
// width character columns. Each cell shows the label that occupied the
// majority of the corresponding time slice.
func Render(procs []*sim.Proc, end sim.Time, width int) string {
	if width < 10 {
		width = 10
	}
	if end <= 0 {
		return "(empty trace)\n"
	}
	slice := (sim.Duration(end) + sim.Duration(width) - 1) / sim.Duration(width)
	if slice <= 0 {
		slice = 1
	}
	ordered := append([]*sim.Proc(nil), procs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID > ordered[j].ID })

	var b strings.Builder
	fmt.Fprintf(&b, "time: 0 .. %.2fs  (one column = %.3fs)\n", end.Seconds(), slice.Seconds())
	for _, p := range ordered {
		fmt.Fprintf(&b, "%3d |", p.ID)
		for c := 0; c < width; c++ {
			lo := sim.Time(sim.Duration(c) * slice)
			hi := lo + sim.Time(slice)
			b.WriteString(dominantLabel(p.Busy(), lo, hi))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// dominantLabel returns the single-character label with the largest overlap
// with [lo, hi), or "." if the processor was idle.
func dominantLabel(busy []sim.Interval, lo, hi sim.Time) string {
	best := "."
	var bestOverlap sim.Duration
	for _, iv := range busy {
		if iv.End <= lo {
			continue
		}
		if iv.Start >= hi {
			break
		}
		s, e := iv.Start, iv.End
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if d := sim.Duration(e - s); d > bestOverlap {
			bestOverlap = d
			best = compress(iv.Label)
		}
	}
	return best
}

// compress shortens a label to one character.
func compress(label string) string {
	if label == "" {
		return "?"
	}
	return label[:1]
}

// Legend summarizes the total busy time per label across processors —
// useful next to a rendered diagram.
func Legend(procs []*sim.Proc) string {
	totals := map[string]sim.Duration{}
	for _, p := range procs {
		for _, iv := range p.Busy() {
			totals[compress(iv.Label)] += sim.Duration(iv.End - iv.Start)
		}
	}
	labels := make([]string, 0, len(totals))
	for l := range totals {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var b strings.Builder
	for _, l := range labels {
		fmt.Fprintf(&b, "  %s: %.2fs busy", l, totals[l].Seconds())
	}
	if b.Len() > 0 {
		b.WriteByte('\n')
	}
	return b.String()
}

// Utilization returns the average fraction of [0, end) the processors spent
// busy — the idealized diagrams of the paper correspond to 1.0 inside each
// strategy's active phase.
func Utilization(procs []*sim.Proc, end sim.Time) float64 {
	if end <= 0 || len(procs) == 0 {
		return 0
	}
	var busy sim.Duration
	for _, p := range procs {
		busy += p.BusyTime()
	}
	return float64(busy) / (float64(end) * float64(len(procs)))
}
