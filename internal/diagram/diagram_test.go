package diagram

import (
	"strings"
	"testing"

	"multijoin/internal/sim"
)

func traceProcs() []*sim.Proc {
	p0 := sim.NewProc(0, true)
	p0.Acquire(0, 50, "4")
	p0.Acquire(50, 50, "3")
	p1 := sim.NewProc(1, true)
	p1.Acquire(25, 25, "4")
	return []*sim.Proc{p0, p1}
}

func TestRenderBasics(t *testing.T) {
	out := Render(traceProcs(), 100, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 processors
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Highest processor id first (paper's diagrams put proc N on top).
	if !strings.HasPrefix(lines[1], "  1 |") || !strings.HasPrefix(lines[2], "  0 |") {
		t.Errorf("processor order wrong:\n%s", out)
	}
	// Proc 0: first half '4', second half '3'.
	row0 := lines[2][strings.IndexByte(lines[2], '|')+1:]
	if row0[0] != '4' || row0[len(row0)-1] != '3' {
		t.Errorf("proc 0 row = %q", row0)
	}
	// Proc 1: idle at the start and end.
	row1 := lines[1][strings.IndexByte(lines[1], '|')+1:]
	if row1[0] != '.' || row1[len(row1)-1] != '.' {
		t.Errorf("proc 1 row = %q", row1)
	}
	if !strings.Contains(row1, "4") {
		t.Errorf("proc 1 row missing its work: %q", row1)
	}
}

func TestRenderEmptyTrace(t *testing.T) {
	if out := Render(nil, 0, 40); !strings.Contains(out, "empty") {
		t.Errorf("empty trace output %q", out)
	}
}

func TestRenderNarrowWidthClamped(t *testing.T) {
	out := Render(traceProcs(), 100, 1)
	if out == "" {
		t.Error("narrow render empty")
	}
}

func TestDominantLabelPicksMajority(t *testing.T) {
	busy := []sim.Interval{
		{Start: 0, End: 10, Label: "a"},
		{Start: 10, End: 40, Label: "b"},
	}
	if got := dominantLabel(busy, 0, 40); got != "b" {
		t.Errorf("dominant = %q, want b", got)
	}
	if got := dominantLabel(busy, 0, 15); got != "a" {
		t.Errorf("dominant = %q, want a", got)
	}
	if got := dominantLabel(busy, 50, 60); got != "." {
		t.Errorf("idle slice = %q, want .", got)
	}
}

func TestCompress(t *testing.T) {
	if compress("") != "?" || compress("12") != "1" || compress("s") != "s" {
		t.Error("compress wrong")
	}
}

func TestLegend(t *testing.T) {
	out := Legend(traceProcs())
	if !strings.Contains(out, "3:") || !strings.Contains(out, "4:") {
		t.Errorf("legend missing labels: %q", out)
	}
	if Legend(nil) != "" {
		t.Error("empty legend should be empty")
	}
}

func TestUtilization(t *testing.T) {
	procs := traceProcs()
	// Total busy 125 over 2 procs x 100 time units.
	if got := Utilization(procs, 100); got != 0.625 {
		t.Errorf("utilization = %g, want 0.625", got)
	}
	if Utilization(procs, 0) != 0 || Utilization(nil, 100) != 0 {
		t.Error("degenerate utilization must be 0")
	}
}
