// Package ivm maintains materialized views incrementally over the
// pipelining join network.
//
// The paper's FP strategy already is a dataflow of long-lived join
// processes: every join runs on private processors, tuples stream through
// symmetric pipelining hash-joins, and both operand tables of every join
// are resident when the last tuple arrives. This package keeps that
// network alive after the initial run instead of tearing it down, and
// feeds it *deltas*: signed base-relation updates (insert/delete) that
// propagate node-by-node through the same channel topology, each node
// probing the opposite operand's resident table and retracting or
// extending its own. The classic multiset-delta identity makes one pass
// exact: applying ±t to one operand changes the join result by exactly
// ±(t ⋈ other operand's current state), so eager per-tuple processing at
// a single-goroutine-owned node — in any arrival order the channels allow
// — telescopes to the correct new result (Berkholz et al.,
// answering-queries-under-updates, is the theory anchor).
//
// Rounds are separated by a punctuation barrier: one Apply injects its
// delta through every scan edge, then sends one end-of-round token down
// every canonical stream (parallel.Streams). A node forwards its own
// tokens only after collecting one per incoming stream — by then, channel
// FIFO order guarantees it has processed and forwarded all of its round
// input — so the collector holding every token implies the result
// multiset is exact for the round. The collector then reports the round's
// change count, publishes the changes to subscribed change streams
// (View.Changes), and releases the waiting Apply.
//
// Resident state — two hash tables per join-node instance plus the
// collector's result multiset — is measured after every round and charged
// to the configured spill.Meter, so views compete for the same memory
// budget as queries.
package ivm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"multijoin/internal/hashjoin"
	"multijoin/internal/parallel"
	"multijoin/internal/relation"
	"multijoin/internal/spill"
	"multijoin/internal/xra"
)

// ErrViewClosed is returned by Apply/Rows on a closed (or torn-down) view.
var ErrViewClosed = errors.New("ivm: view is closed")

// DefaultBatchTuples is the transport batch size of the resident network
// when Config leaves it zero.
const DefaultBatchTuples = 256

// collEntryBytes estimates the resident cost of one distinct result tuple
// in the collector's multiset: the 24-byte tuple, an 8-byte count, and map
// bookkeeping.
const collEntryBytes = 48

// poolRetain bounds how many idle transport batches the view's private
// pool keeps.
const poolRetain = 256

// Config parameterizes a view.
type Config struct {
	// BatchTuples is the transport batch size (zero: DefaultBatchTuples).
	BatchTuples int
	// TupleBytes is the declared tuple width of Rows snapshots (zero:
	// relation.TupleWireBytes).
	TupleBytes int
	// Meter, when set, is charged with the view's resident bytes — join
	// tables plus the result multiset — re-measured after every round and
	// released on Close. Pass a child of the engine's shared meter so
	// views and queries draw down one budget.
	Meter *spill.Meter
}

// Delta is one base relation's signed update: tuples to insert and tuples
// to delete. Within one Apply, inserts are applied before deletes, so a
// tuple inserted and deleted in the same call nets out. Deleting a tuple
// absent from the base relation removes nothing (it is counted in
// ApplyResult.Unmatched).
type Delta struct {
	Rel    int // base relation leaf index (jointree numbering)
	Insert []relation.Tuple
	Delete []relation.Tuple
}

// ApplyResult summarizes one maintenance round.
type ApplyResult struct {
	Inserted   int   // base tuples injected as inserts
	Deleted    int   // base tuples injected as deletes
	Unmatched  int64 // base deletes that matched no resident tuple
	Changes    int   // signed changes to the result multiset this round
	ResultCard int   // result multiset size after the round
}

// Change is one signed result-tuple change emitted by a view round.
type Change struct {
	Tuple relation.Tuple
	Sign  int8 // +1 insert, -1 delete
}

// msg is the unit of the resident network's channels: a signed transport
// batch for one input port, or an end-of-round token.
type msg struct {
	port  int8 // 0 = build input, 1 = probe input
	sign  int8 // +1 insert, -1 delete (data only)
	token bool
	batch *relation.Batch
}

func signIdx(sign int8) int {
	if sign > 0 {
		return 0
	}
	return 1
}

func idxSign(si int) int8 {
	if si == 0 {
		return 1
	}
	return -1
}

// outbox routes one producer instance's output across its consumer edge:
// per-destination pending batches for each sign, bucketed on the edge's
// routing attribute exactly like the executing runtimes route.
type outbox struct {
	dsts  []chan msg
	port  int8
	route relation.Attr
	bk    relation.Bucketer
	pend  [2][]*relation.Batch // [0] inserts, [1] deletes; per destination
}

func (o *outbox) emitTuple(v *View, u1, u2 int64, ck uint64, key int64, si int) bool {
	d := 0
	if len(o.dsts) > 1 {
		d = o.bk.Bucket(key)
	}
	p := o.pend[si][d]
	if p == nil {
		p = v.pool.Get()
		o.pend[si][d] = p
	}
	p.Append(u1, u2, ck)
	if p.Len() >= v.batch {
		o.pend[si][d] = nil
		// A full delete batch must not overtake buffered inserts for the
		// same destination: the retraction of a tuple created earlier this
		// round would arrive before its insertion and be dropped as
		// unmatched. Inserts overtaking deletes are harmless — per-tuple
		// counts only ever rise before they fall.
		if si == 1 {
			if ins := o.pend[0][d]; ins != nil && ins.Len() > 0 {
				o.pend[0][d] = nil
				if !v.send(o.dsts[d], msg{port: o.port, sign: 1, batch: ins}) {
					return false
				}
			}
		}
		return v.send(o.dsts[d], msg{port: o.port, sign: idxSign(si), batch: p})
	}
	return true
}

// emit routes a whole result batch with one sign.
func (o *outbox) emit(v *View, res *relation.Batch, sign int8) bool {
	si := signIdx(sign)
	var keys []int64
	if len(o.dsts) > 1 {
		keys = res.Col(o.route)
	}
	for i, n := 0, res.Len(); i < n; i++ {
		var key int64
		if keys != nil {
			key = keys[i]
		}
		if !o.emitTuple(v, res.U1[i], res.U2[i], res.Check[i], key, si) {
			return false
		}
	}
	return true
}

// flushData sends every non-empty pending batch.
func (o *outbox) flushData(v *View) bool {
	for si := range o.pend {
		for d, p := range o.pend[si] {
			if p == nil {
				continue
			}
			o.pend[si][d] = nil
			if p.Len() == 0 {
				v.pool.Put(p)
				continue
			}
			if !v.send(o.dsts[d], msg{port: o.port, sign: idxSign(si), batch: p}) {
				return false
			}
		}
	}
	return true
}

// tokens sends n end-of-round tokens to every destination instance.
func (o *outbox) tokens(v *View, n int) bool {
	for t := 0; t < n; t++ {
		for _, ch := range o.dsts {
			if !v.send(ch, msg{token: true}) {
				return false
			}
		}
	}
	return true
}

// node is one resident join-operator instance: a goroutine owning the two
// operand hash tables of its fragment.
type node struct {
	op       *xra.Op
	idx      int
	spec     hashjoin.Spec
	tables   [2]*hashjoin.Table // 0: build side, 1: probe side
	in       chan msg
	expect   int // tokens per round: incoming canonical streams
	out      outbox
	res      relation.Batch // probe-result scratch
	fdel     relation.Batch // found-deletes scratch
	heads    []int32
	resident atomic.Int64 // table bytes, updated before the round's tokens
}

// scanPort is the injection point for one base relation: Apply routes
// delta tuples straight into the scan's consumer edge (scans hold no
// state, so they need no goroutine).
type scanPort struct {
	op     *xra.Op
	out    outbox
	tokens int // end-of-round tokens per destination instance
}

type roundResult struct {
	changes int
	card    int
}

// collector owns the result multiset and the change-stream subscribers.
type collector struct {
	v        *View
	in       chan msg
	expect   int
	counts   map[relation.Tuple]int64
	card     int
	changes  int // signed changes in the current round
	resident atomic.Int64

	subMu      sync.Mutex
	subs       []*ChangeStream
	subsClosed bool
}

// View is a continuously maintained materialization of one query: the
// resident join network plus the collected result multiset. Apply, Rows
// and Close are safe for concurrent use; one Apply runs at a time.
type View struct {
	cfg   Config
	batch int
	pool  *relation.BatchPool

	nodes    []*node
	scans    map[int]*scanPort
	scanList []*scanPort
	coll     *collector

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	roundDone chan roundResult
	unmatched atomic.Int64

	mu      sync.Mutex // serializes rounds and snapshots
	charged int64      // bytes currently charged to cfg.Meter

	closeOnce sync.Once
}

// New compiles plan into a resident maintenance network, populates it with
// the base relations (one all-inserts round through the same delta path),
// and returns the live view. base resolves each scan leaf to its relation,
// exactly as the executing runtimes receive it. Close the view to release
// its goroutines, tables, and meter charge.
func New(plan *xra.Plan, base func(leaf int) *relation.Relation, cfg Config) (*View, error) {
	if plan == nil {
		return nil, errors.New("ivm: nil plan")
	}
	collectOp := plan.Collect()
	if collectOp == nil {
		return nil, errors.New("ivm: plan has no collect operator")
	}
	batch := cfg.BatchTuples
	if batch <= 0 {
		batch = DefaultBatchTuples
	}
	if batch > relation.MaxBlockTuples {
		batch = relation.MaxBlockTuples
	}
	if cfg.TupleBytes <= 0 {
		cfg.TupleBytes = relation.TupleWireBytes
	}
	v := &View{
		cfg:       cfg,
		batch:     batch,
		pool:      relation.NewBatchPool(batch, poolRetain),
		scans:     make(map[int]*scanPort),
		roundDone: make(chan roundResult, 1),
	}
	v.ctx, v.cancel = context.WithCancel(context.Background())

	specs := parallel.Streams(plan)

	// One inbox per operator instance, sized for a round's tokens plus
	// in-flight data.
	inboxes := make(map[string][]chan msg, len(plan.Ops))
	instances := func(op *xra.Op) int {
		if op.Kind == xra.OpCollect {
			return 1
		}
		return len(op.Procs)
	}
	for _, op := range plan.Ops {
		if op.Kind == xra.OpScan {
			continue
		}
		chs := make([]chan msg, instances(op))
		for i := range chs {
			expect := parallel.InstanceInStreams(specs, op, i)
			chs[i] = make(chan msg, 2*expect+8)
		}
		inboxes[op.ID] = chs
	}

	// Consumer edge per producer, as in parallel.Streams.
	type edge struct {
		to *xra.Op
		in *xra.Input
	}
	consumers := make(map[string]edge, len(plan.Ops))
	for _, o := range plan.Ops {
		for _, in := range o.Inputs() {
			consumers[in.From] = edge{to: o, in: in}
		}
	}
	newOutbox := func(from *xra.Op) (outbox, *xra.Op, error) {
		c, ok := consumers[from.ID]
		if !ok {
			return outbox{}, nil, fmt.Errorf("ivm: operator %s has no consumer", from.ID)
		}
		var port int8
		if c.in == c.to.Probe {
			port = 1
		}
		dsts := inboxes[c.to.ID]
		o := outbox{dsts: dsts, port: port, route: c.in.Route, bk: relation.NewBucketer(len(dsts))}
		o.pend[0] = make([]*relation.Batch, len(dsts))
		o.pend[1] = make([]*relation.Batch, len(dsts))
		return o, c.to, nil
	}

	maxCard := 0
	for _, op := range plan.Ops {
		if op.Kind == xra.OpScan {
			if r := base(op.Leaf); r != nil && r.Card() > maxCard {
				maxCard = r.Card()
			}
		}
	}

	for _, op := range plan.Ops {
		switch op.Kind {
		case xra.OpScan:
			out, to, err := newOutbox(op)
			if err != nil {
				v.cancel()
				return nil, err
			}
			tokens := len(op.Procs)
			if xra.LocalEdge(op, to, consumers[op.ID].in) {
				tokens = 1
			}
			sp := &scanPort{op: op, out: out, tokens: tokens}
			v.scans[op.Leaf] = sp
			v.scanList = append(v.scanList, sp)
		case xra.OpSimpleJoin, xra.OpPipeJoin:
			out, _, err := newOutbox(op)
			if err != nil {
				v.cancel()
				return nil, err
			}
			spec := hashjoin.Spec{BuildIsLower: op.BuildIsLower}
			hint := relation.PerFragmentCap(maxCard, len(op.Procs))
			for i := range op.Procs {
				// Each instance needs its own outbox buffers; topology is
				// shared.
				o := out
				o.pend[0] = make([]*relation.Batch, len(out.dsts))
				o.pend[1] = make([]*relation.Batch, len(out.dsts))
				n := &node{
					op: op, idx: i, spec: spec,
					in:     inboxes[op.ID][i],
					expect: parallel.InstanceInStreams(specs, op, i),
					out:    o,
				}
				n.tables[0] = hashjoin.NewTableSized(spec.BuildAttr(), hint)
				n.tables[1] = hashjoin.NewTableSized(spec.ProbeAttr(), hint)
				v.nodes = append(v.nodes, n)
			}
		case xra.OpCollect:
			v.coll = &collector{
				v:      v,
				in:     inboxes[op.ID][0],
				expect: parallel.InstanceInStreams(specs, op, 0),
				counts: make(map[relation.Tuple]int64),
			}
		}
	}
	if v.coll == nil {
		v.cancel()
		return nil, errors.New("ivm: plan has no collect operator")
	}

	for _, n := range v.nodes {
		v.wg.Add(1)
		go v.runNode(n)
	}
	v.wg.Add(1)
	go v.coll.run()

	// Initial population: every base tuple as an insert, through the very
	// code path deltas take.
	boot := make([]Delta, 0, len(v.scanList))
	for _, sp := range v.scanList {
		r := base(sp.op.Leaf)
		if r == nil {
			v.Close()
			return nil, fmt.Errorf("ivm: no base relation for leaf %d", sp.op.Leaf)
		}
		boot = append(boot, Delta{Rel: sp.op.Leaf, Insert: r.Tuples})
	}
	v.mu.Lock()
	_, err := v.round(context.Background(), boot)
	v.mu.Unlock()
	if err != nil {
		v.Close()
		return nil, err
	}
	return v, nil
}

// send delivers m, giving up when the view is torn down.
func (v *View) send(ch chan msg, m msg) bool {
	select {
	case ch <- m:
		return true
	case <-v.ctx.Done():
		if m.batch != nil {
			v.pool.Put(m.batch)
		}
		return false
	}
}

func (v *View) runNode(n *node) {
	defer v.wg.Done()
	defer n.tables[0].Release()
	defer n.tables[1].Release()
	got := 0
	for {
		select {
		case m := <-n.in:
			if m.token {
				got++
				if got < n.expect {
					continue
				}
				got = 0
				// Publish resident bytes before the tokens: the sends
				// happen-before the collector's round completion, so the
				// Apply that reads them sees this round's figures.
				n.resident.Store(n.tables[0].MemBytes() + n.tables[1].MemBytes())
				if !n.out.flushData(v) || !n.out.tokens(v, 1) {
					return
				}
				continue
			}
			if !n.handle(v, m) {
				return
			}
		case <-v.ctx.Done():
			return
		}
	}
}

// handle processes one signed batch: deletes first retract from this
// side's table (rows that matched nothing are dropped — they cannot have
// contributed downstream), then the surviving rows probe the opposite
// side's table and the matches propagate with the batch's sign; inserts
// probe first and then extend this side's table. Probe-then-update order
// is immaterial because the two tables index different operands.
func (n *node) handle(v *View, m msg) bool {
	b := m.batch
	own := n.tables[m.port]
	if m.sign < 0 {
		n.fdel.Reset()
		for i, l := 0, b.Len(); i < l; i++ {
			if own.Delete(b.Tuple(i)) {
				n.fdel.Append(b.U1[i], b.U2[i], b.Check[i])
			} else {
				v.unmatched.Add(1)
			}
		}
		b = &n.fdel
	}
	n.res.Reset()
	if b.Len() > 0 {
		if m.port == 0 {
			n.heads = n.tables[1].ProbeBatchInto(&n.res, b, n.spec.BuildAttr(), n.spec.BuildIsLower, n.heads)
		} else {
			n.heads = n.tables[0].ProbeBatchInto(&n.res, b, n.spec.ProbeAttr(), !n.spec.BuildIsLower, n.heads)
		}
	}
	if m.sign > 0 {
		own.InsertBatch(m.batch)
	}
	v.pool.Put(m.batch)
	if n.res.Len() > 0 {
		return n.out.emit(v, &n.res, m.sign)
	}
	return true
}

func (c *collector) run() {
	defer c.v.wg.Done()
	defer c.closeSubs()
	got := 0
	var changes []Change
	for {
		select {
		case m := <-c.in:
			if m.token {
				got++
				if got < c.expect {
					continue
				}
				got = 0
				c.resident.Store(int64(len(c.counts)) * collEntryBytes)
				r := roundResult{changes: c.changes, card: c.card}
				c.changes = 0
				if !c.push(changes) {
					return
				}
				changes = nil
				select {
				case c.v.roundDone <- r:
				case <-c.v.ctx.Done():
					return
				}
				continue
			}
			b := m.batch
			wantChanges := c.hasSubs()
			for i, n := 0, b.Len(); i < n; i++ {
				t := b.Tuple(i)
				cnt := c.counts[t] + int64(m.sign)
				if cnt == 0 {
					delete(c.counts, t)
				} else {
					c.counts[t] = cnt
				}
				c.card += int(m.sign)
				if wantChanges {
					changes = append(changes, Change{Tuple: t, Sign: m.sign})
				}
			}
			c.changes += b.Len()
			c.v.pool.Put(b)
		case <-c.v.ctx.Done():
			return
		}
	}
}

func (c *collector) hasSubs() bool {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	return len(c.subs) > 0
}

// push hands the round's change batch to every subscriber, blocking until
// each accepts it (slow consumers backpressure Apply) or closes.
func (c *collector) push(changes []Change) bool {
	if len(changes) == 0 {
		return true
	}
	c.subMu.Lock()
	subs := append([]*ChangeStream(nil), c.subs...)
	c.subMu.Unlock()
	for _, s := range subs {
		select {
		case s.ch <- changes:
		case <-s.quit:
			c.dropSub(s)
		case <-c.v.ctx.Done():
			return false
		}
	}
	return true
}

func (c *collector) dropSub(s *ChangeStream) {
	c.subMu.Lock()
	for i, x := range c.subs {
		if x == s {
			c.subs = append(c.subs[:i], c.subs[i+1:]...)
			break
		}
	}
	c.subMu.Unlock()
}

func (c *collector) closeSubs() {
	c.subMu.Lock()
	c.subsClosed = true
	for _, s := range c.subs {
		close(s.ch)
	}
	c.subs = nil
	c.subMu.Unlock()
}

// ChangeStream is a cursor over the view's signed result changes, one
// round's batch at a time — the change-stream counterpart of the engine's
// Rows contract (Next / Change / Close).
type ChangeStream struct {
	ch   chan []Change
	quit chan struct{}
	cur  []Change
	idx  int
	once sync.Once
}

// Next advances to the next change, blocking for the next round when the
// current batch is drained. It returns false once the stream or the view
// is closed.
func (s *ChangeStream) Next() bool {
	s.idx++
	if s.idx < len(s.cur) {
		return true
	}
	for {
		select {
		case batch, ok := <-s.ch:
			if !ok {
				return false
			}
			if len(batch) == 0 {
				continue
			}
			s.cur, s.idx = batch, 0
			return true
		case <-s.quit:
			return false
		}
	}
}

// Change returns the change the last successful Next advanced to.
func (s *ChangeStream) Change() Change { return s.cur[s.idx] }

// Close unsubscribes the stream; a blocked Next returns false.
func (s *ChangeStream) Close() { s.once.Do(func() { close(s.quit) }) }

// Changes subscribes a new change stream. Rounds that complete after the
// subscription deliver their signed result changes to it; a subscriber
// that stops consuming backpressures Apply (close the stream instead of
// abandoning it). On a closed view the stream reports no changes.
func (v *View) Changes() *ChangeStream {
	s := &ChangeStream{ch: make(chan []Change, 4), quit: make(chan struct{}), idx: -1}
	c := v.coll
	c.subMu.Lock()
	if c.subsClosed {
		close(s.ch)
	} else {
		c.subs = append(c.subs, s)
	}
	c.subMu.Unlock()
	return s
}

// Apply runs one maintenance round: every delta's inserts, then every
// delta's deletes, are routed into the network, the round is fenced with
// tokens, and Apply returns once the collector holds the exact new result.
// ctx aborts the wait — but a round already in flight cannot be unwound,
// so an aborted Apply tears the view down.
func (v *View) Apply(ctx context.Context, deltas ...Delta) (ApplyResult, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.ctx.Err() != nil {
		return ApplyResult{}, ErrViewClosed
	}
	for _, d := range deltas {
		if _, ok := v.scans[d.Rel]; !ok {
			return ApplyResult{}, fmt.Errorf("ivm: delta for unknown base relation %d", d.Rel)
		}
	}
	return v.round(ctx, deltas)
}

// round injects deltas and waits for the quiescence barrier. Callers hold
// v.mu.
func (v *View) round(ctx context.Context, deltas []Delta) (ApplyResult, error) {
	var out ApplyResult
	for _, d := range deltas {
		if !v.inject(v.scans[d.Rel], d.Insert, +1) {
			return out, ErrViewClosed
		}
		out.Inserted += len(d.Insert)
	}
	for _, d := range deltas {
		if !v.inject(v.scans[d.Rel], d.Delete, -1) {
			return out, ErrViewClosed
		}
		out.Deleted += len(d.Delete)
	}
	for _, sp := range v.scanList {
		if !sp.out.flushData(v) || !sp.out.tokens(v, sp.tokens) {
			return out, ErrViewClosed
		}
	}
	select {
	case r := <-v.roundDone:
		out.Changes = r.changes
		out.ResultCard = r.card
	case <-ctx.Done():
		// The round is mid-flight and cannot be unwound; the view can no
		// longer tell a complete state from a truncated one.
		v.cancel()
		return out, ctx.Err()
	case <-v.ctx.Done():
		return out, ErrViewClosed
	}
	out.Unmatched = v.unmatched.Swap(0)
	v.recharge()
	return out, nil
}

// inject routes one relation's tuples into the scan's consumer edge.
func (v *View) inject(sp *scanPort, tuples []relation.Tuple, sign int8) bool {
	si := signIdx(sign)
	o := &sp.out
	for _, t := range tuples {
		if !o.emitTuple(v, t.Unique1, t.Unique2, t.Check, t.Get(o.route), si) {
			return false
		}
	}
	return true
}

// recharge re-measures resident bytes and charges the meter with the
// difference. Callers hold v.mu, after a completed round (the nodes'
// figures happen-before the collector's round completion).
func (v *View) recharge() {
	total := v.coll.resident.Load()
	for _, n := range v.nodes {
		total += n.resident.Load()
	}
	if d := total - v.charged; d != 0 {
		if v.cfg.Meter != nil {
			v.cfg.Meter.Add(d)
		}
		v.charged = total
	}
}

// Rows materializes the current result multiset. The snapshot is exact:
// it reflects every Apply that returned and nothing in flight.
func (v *View) Rows() (*relation.Relation, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.ctx.Err() != nil {
		return nil, ErrViewClosed
	}
	c := v.coll
	rel := relation.NewWithCap("view", v.cfg.TupleBytes, c.card)
	for t, n := range c.counts {
		for ; n > 0; n-- {
			rel.Append(t)
		}
	}
	return rel, nil
}

// ResultCard returns the current result multiset size.
func (v *View) ResultCard() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.coll.card
}

// Resident returns the bytes currently charged for the view's resident
// state (hash tables plus result multiset).
func (v *View) Resident() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.charged
}

// Close tears the network down: goroutines exit, hash-table arenas are
// recycled, subscribers' streams end, and the meter charge is released.
// Close is idempotent and unblocks a concurrent Apply (which reports
// ErrViewClosed).
func (v *View) Close() error {
	v.closeOnce.Do(func() {
		v.cancel()
		v.wg.Wait()
		v.mu.Lock()
		if v.charged != 0 {
			if v.cfg.Meter != nil {
				v.cfg.Meter.Add(-v.charged)
			}
			v.charged = 0
		}
		v.mu.Unlock()
	})
	return nil
}
