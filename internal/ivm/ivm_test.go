package ivm

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"multijoin/internal/jointree"
	"multijoin/internal/relation"
	"multijoin/internal/spill"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
)

// harness holds one view under test plus the shadow base relations the
// sequential reference recomputes from.
type harness struct {
	db     *wisconsin.Database
	tree   *jointree.Node
	view   *View
	shadow []*relation.Relation
	rng    *rand.Rand
}

func newHarness(t *testing.T, shape jointree.Shape, strat strategy.Kind, relations, card int, seed int64, cfg Config) *harness {
	t.Helper()
	db, err := wisconsin.Chain(wisconsin.Config{Relations: relations, Cardinality: card, Seed: seed})
	if err != nil {
		t.Fatalf("wisconsin.Chain: %v", err)
	}
	tree, err := jointree.BuildShape(shape, relations)
	if err != nil {
		t.Fatalf("BuildShape: %v", err)
	}
	plan, err := strategy.Plan(strat, tree, strategy.Config{Procs: 2 * relations, Card: float64(card)})
	if err != nil {
		t.Fatalf("strategy.Plan: %v", err)
	}
	shadow := make([]*relation.Relation, relations)
	for i := range shadow {
		r := db.Relation(i)
		cp := relation.NewWithCap(r.Name, r.TupleBytes, r.Card())
		cp.Append(r.Tuples...)
		shadow[i] = cp
	}
	view, err := New(plan, func(leaf int) *relation.Relation { return db.Relation(leaf) }, cfg)
	if err != nil {
		t.Fatalf("ivm.New: %v", err)
	}
	t.Cleanup(func() { view.Close() })
	return &harness{db: db, tree: tree, view: view, shadow: shadow, rng: rand.New(rand.NewSource(seed * 31))}
}

// randomDelta builds a delta for relation rel: k tuples deleted from the
// shadow (keeping it in sync) and k fresh insertions that still join
// (clones of surviving tuples with a distinct Check).
func (h *harness) randomDelta(rel, k int) Delta {
	d := Delta{Rel: rel}
	sh := h.shadow[rel]
	for i := 0; i < k && len(sh.Tuples) > 1; i++ {
		j := h.rng.Intn(len(sh.Tuples))
		d.Delete = append(d.Delete, sh.Tuples[j])
		sh.Tuples[j] = sh.Tuples[len(sh.Tuples)-1]
		sh.Tuples = sh.Tuples[:len(sh.Tuples)-1]
	}
	for i := 0; i < k; i++ {
		src := sh.Tuples[h.rng.Intn(len(sh.Tuples))]
		src.Check = src.Check*31 + uint64(h.rng.Intn(1<<30)) + 1
		d.Insert = append(d.Insert, src)
		sh.Append(src)
	}
	return d
}

func (h *harness) verify(t *testing.T, label string) {
	t.Helper()
	got, err := h.view.Rows()
	if err != nil {
		t.Fatalf("%s: Rows: %v", label, err)
	}
	want := jointree.Reference(h.tree, func(leaf int) *relation.Relation { return h.shadow[leaf] })
	if diff := relation.DiffMultiset(got, want); diff != "" {
		t.Fatalf("%s: view diverged from recompute: %s", label, diff)
	}
	if h.view.ResultCard() != want.Card() {
		t.Fatalf("%s: ResultCard = %d, want %d", label, h.view.ResultCard(), want.Card())
	}
}

// TestViewSmoke is the CI smoke (make ivm-smoke): create a view over a
// left-linear FP plan, apply a mixed insert/delete batch, and verify the
// incrementally maintained result against recompute-from-scratch.
func TestViewSmoke(t *testing.T) {
	h := newHarness(t, jointree.LeftLinear, strategy.FP, 4, 300, 1995, Config{})
	h.verify(t, "initial population")
	for round := 0; round < 3; round++ {
		deltas := []Delta{h.randomDelta(0, 20), h.randomDelta(2, 15)}
		res, err := h.view.Apply(context.Background(), deltas...)
		if err != nil {
			t.Fatalf("round %d: Apply: %v", round, err)
		}
		if res.Unmatched != 0 {
			t.Fatalf("round %d: %d unmatched deletes", round, res.Unmatched)
		}
		h.verify(t, "after mixed delta")
	}
}

// TestViewAcrossShapesAndStrategies checks the maintenance network is
// plan-shape agnostic: every strategy's plan, on several tree shapes,
// maintains the same multiset the sequential reference recomputes.
func TestViewAcrossShapesAndStrategies(t *testing.T) {
	for _, strat := range strategy.Kinds {
		for _, shape := range []jointree.Shape{jointree.LeftLinear, jointree.WideBushy, jointree.RightLinear} {
			h := newHarness(t, shape, strat, 5, 120, 7, Config{BatchTuples: 32})
			h.verify(t, "population")
			for round := 0; round < 2; round++ {
				var deltas []Delta
				for rel := 0; rel < 5; rel += 2 {
					deltas = append(deltas, h.randomDelta(rel, 10))
				}
				if _, err := h.view.Apply(context.Background(), deltas...); err != nil {
					t.Fatalf("%v/%v: Apply: %v", strat, shape, err)
				}
			}
			h.verify(t, "after deltas")
			h.view.Close()
		}
	}
}

// TestViewSameTupleInsertDelete pins the in-round ordering contract:
// inserts apply before deletes, so inserting and deleting the same tuple
// in one Apply nets out, and deleting a tuple inserted in a previous
// round retracts it.
func TestViewSameTupleInsertDelete(t *testing.T) {
	h := newHarness(t, jointree.LeftLinear, strategy.FP, 3, 100, 3, Config{})
	fresh := h.shadow[1].Tuples[0]
	fresh.Check = fresh.Check*31 + 12345
	if _, err := h.view.Apply(context.Background(), Delta{Rel: 1, Insert: []relation.Tuple{fresh}, Delete: []relation.Tuple{fresh}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	h.verify(t, "insert+delete same tuple")
	if _, err := h.view.Apply(context.Background(), Delta{Rel: 1, Insert: []relation.Tuple{fresh}}); err != nil {
		t.Fatalf("Apply insert: %v", err)
	}
	h.shadow[1].Append(fresh)
	h.verify(t, "insert")
	res, err := h.view.Apply(context.Background(), Delta{Rel: 1, Delete: []relation.Tuple{fresh}})
	if err != nil {
		t.Fatalf("Apply delete: %v", err)
	}
	if res.Unmatched != 0 {
		t.Fatalf("delete of a previously inserted tuple reported unmatched")
	}
	sh := h.shadow[1]
	sh.Tuples = sh.Tuples[:len(sh.Tuples)-1]
	h.verify(t, "delete")
}

// TestViewUnmatchedDelete checks a delete of an absent base tuple is
// dropped (counted, not propagated) and leaves the result intact.
func TestViewUnmatchedDelete(t *testing.T) {
	h := newHarness(t, jointree.LeftLinear, strategy.FP, 3, 80, 11, Config{})
	ghost := relation.Tuple{Unique1: 1 << 40, Unique2: 1 << 40, Check: 99}
	res, err := h.view.Apply(context.Background(), Delta{Rel: 0, Delete: []relation.Tuple{ghost}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if res.Unmatched != 1 {
		t.Fatalf("Unmatched = %d, want 1", res.Unmatched)
	}
	h.verify(t, "after ghost delete")
}

// TestViewChanges subscribes a change stream and checks each round's
// signed changes telescope to the observed result difference.
func TestViewChanges(t *testing.T) {
	h := newHarness(t, jointree.LeftLinear, strategy.FP, 3, 150, 5, Config{})
	stream := h.view.Changes()
	defer stream.Close()
	before, err := h.view.Rows()
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.view.Apply(context.Background(), h.randomDelta(0, 25))
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	net := make(map[relation.Tuple]int64)
	for _, tp := range before.Tuples {
		net[tp]++
	}
	seen := 0
	for seen < res.Changes && stream.Next() {
		c := stream.Change()
		net[c.Tuple] += int64(c.Sign)
		seen++
	}
	if seen != res.Changes {
		t.Fatalf("change stream delivered %d changes, ApplyResult says %d", seen, res.Changes)
	}
	after, err := h.view.Rows()
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range after.Tuples {
		net[tp]--
	}
	for tp, n := range net {
		if n != 0 {
			t.Fatalf("changes do not telescope: tuple %v off by %d", tp, n)
		}
	}
}

// TestViewMeterSettles charges a meter child and checks the shared live
// balance returns to zero on Close — the leak-regression contract the
// engine relies on.
func TestViewMeterSettles(t *testing.T) {
	root := spill.NewMeter(1 << 30)
	h := newHarness(t, jointree.LeftLinear, strategy.FP, 4, 200, 13, Config{Meter: root.Child()})
	if root.Live() == 0 {
		t.Fatal("resident view charged nothing to the meter")
	}
	if h.view.Resident() != root.Live() {
		t.Fatalf("Resident() = %d, meter live = %d", h.view.Resident(), root.Live())
	}
	if _, err := h.view.Apply(context.Background(), h.randomDelta(0, 30)); err != nil {
		t.Fatal(err)
	}
	h.view.Close()
	if live := root.Live(); live != 0 {
		t.Fatalf("meter live = %d after Close, want 0", live)
	}
}

// TestViewCloseUnblocksApply wedges Apply behind a change-stream
// subscriber that never consumes, then checks Close unblocks it with
// ErrViewClosed and every network goroutine exits.
func TestViewCloseUnblocksApply(t *testing.T) {
	before := runtime.NumGoroutine()
	h := newHarness(t, jointree.LeftLinear, strategy.FP, 3, 150, 17, Config{})
	stream := h.view.Changes() // never consumed: rounds stall once its buffer fills
	defer stream.Close()
	applyErr := make(chan error, 1)
	go func() {
		for {
			if _, err := h.view.Apply(context.Background(), h.randomDelta(0, 5)); err != nil {
				applyErr <- err
				return
			}
		}
	}()
	time.Sleep(50 * time.Millisecond) // let Apply wedge on the full subscriber
	h.view.Close()
	select {
	case err := <-applyErr:
		if err != ErrViewClosed {
			t.Fatalf("Apply returned %v, want ErrViewClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Apply still blocked 5s after Close")
	}
	if _, err := h.view.Rows(); err != ErrViewClosed {
		t.Fatalf("Rows on closed view returned %v, want ErrViewClosed", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after close", before, runtime.NumGoroutine())
}
