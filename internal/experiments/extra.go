package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"multijoin/internal/core"
	"multijoin/internal/costmodel"
	"multijoin/internal/diagram"
	"multijoin/internal/jointree"
	"multijoin/internal/parallel"
	"multijoin/internal/sim"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
)

// UtilizationFigure reproduces the idealized processor-utilization diagrams
// of the example 5-way join tree (Figure 2) on a 10-processor system:
// Figure 3 (SP), Figure 4 (SE), Figure 6 (RD) and Figure 7 (FP).
func UtilizationFigure(fig string) (string, error) {
	kinds := map[string]strategy.Kind{"3": strategy.SP, "4": strategy.SE, "6": strategy.RD, "7": strategy.FP}
	kind, ok := kinds[fig]
	if !ok {
		return "", fmt.Errorf("experiments: no utilization figure %q (want 3, 4, 6 or 7)", fig)
	}
	db, err := wisconsin.Chain(wisconsin.Config{Relations: 5, Cardinality: 4000, Seed: 2})
	if err != nil {
		return "", err
	}
	params := costmodel.Default()
	params.RecordUtilization = true
	// Keep the example tree's join labels but let the cost function derive
	// relative work: the generated data gives every join equal actual work,
	// so allocating by the figure's illustrative labels would starve the
	// top join.
	tree := jointree.Example()
	for _, j := range jointree.Joins(tree) {
		j.Weight = 0
	}
	res, err := core.Query{
		DB: db, Tree: tree, Strategy: kind, Procs: 10, Params: params,
	}.Run()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %v evaluation of the example join tree (10 processors)\n", fig, kind)
	end := sim.Time(res.ResponseTime)
	b.WriteString(diagram.Render(res.Procs, end, 72))
	b.WriteString(diagram.Legend(res.Procs))
	fmt.Fprintf(&b, "response time %.2fs, avg utilization %.0f%%\n\n",
		res.ResponseTime.Seconds(), 100*diagram.Utilization(res.Procs, end))
	return b.String(), nil
}

// SingleJoinSpeedup reproduces the Section 2.3.1 observation from [WFA92]:
// intra-operator speedup of a single join flattens and then reverses as the
// degree of parallelism grows, and the optimal number of processors grows
// roughly with the square root of the operand size.
func SingleJoinSpeedup(params costmodel.Params, seed int64) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 2.3.1: single-join intra-operator speedup (response time in seconds)\n")
	sizes := []int{1000, 4000, 16000, 64000}
	procCounts := []int{1, 2, 4, 8, 16, 32, 64}
	fmt.Fprintf(&b, "%-8s", "card")
	for _, p := range procCounts {
		fmt.Fprintf(&b, "%9dp", p)
	}
	fmt.Fprintf(&b, "%10s\n", "best")
	for _, card := range sizes {
		db, err := wisconsin.Chain(wisconsin.Config{Relations: 2, Cardinality: card, Seed: seed})
		if err != nil {
			return "", err
		}
		tree, err := jointree.BuildShape(jointree.LeftLinear, 2)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-8d", card)
		bestP, bestT := 0, math.Inf(1)
		for _, procs := range procCounts {
			res, err := core.Query{DB: db, Tree: tree, Strategy: strategy.SP, Procs: procs, Params: params}.Run()
			if err != nil {
				return "", err
			}
			sec := res.ResponseTime.Seconds()
			if sec < bestT {
				bestP, bestT = procs, sec
			}
			fmt.Fprintf(&b, "%10.3f", sec)
		}
		fmt.Fprintf(&b, "%7dp  (sqrt(card)=%.0f)\n", bestP, math.Sqrt(float64(card)))
	}
	b.WriteString("\n")
	return b.String(), nil
}

// PipelineDelay reproduces the Section 2.3.3 result from [WiA93]: each step
// of a *linear* pipeline adds a roughly constant delay, while a step of a
// *bushy* pipeline adds a delay that grows with the operand size. It
// measures FP response times while growing the chain length for linear
// trees (fixed cardinality) and while growing the cardinality for bushy
// trees (fixed length), reporting the per-step increments.
func PipelineDelay(params costmodel.Params, seed int64) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 2.3.3: delay over pipelines under FP\n")
	fmt.Fprintf(&b, "linear pipeline, card=4000: response time vs pipeline length\n")
	fmt.Fprintf(&b, "%-10s%12s%14s\n", "relations", "seconds", "delta/step")
	prev := 0.0
	for k := 3; k <= 10; k++ {
		db, err := wisconsin.Chain(wisconsin.Config{Relations: k, Cardinality: 4000, Seed: seed})
		if err != nil {
			return "", err
		}
		tree, err := jointree.BuildShape(jointree.RightLinear, k)
		if err != nil {
			return "", err
		}
		res, err := core.Query{DB: db, Tree: tree, Strategy: strategy.FP, Procs: 4 * (k - 1), Params: params}.Run()
		if err != nil {
			return "", err
		}
		sec := res.ResponseTime.Seconds()
		delta := "-"
		if prev > 0 {
			delta = fmt.Sprintf("%.3f", sec-prev)
		}
		fmt.Fprintf(&b, "%-10d%12.3f%14s\n", k, sec, delta)
		prev = sec
	}
	fmt.Fprintf(&b, "bushy pipeline, 8 relations: per-step delay vs operand size\n")
	fmt.Fprintf(&b, "%-10s%12s%16s\n", "card", "seconds", "delay/step")
	for _, card := range []int{1000, 2000, 4000, 8000, 16000} {
		db, err := wisconsin.Chain(wisconsin.Config{Relations: 8, Cardinality: card, Seed: seed})
		if err != nil {
			return "", err
		}
		bushy, err := jointree.BuildShape(jointree.LeftBushy, 8)
		if err != nil {
			return "", err
		}
		res, err := core.Query{DB: db, Tree: bushy, Strategy: strategy.FP, Procs: 28, Params: params}.Run()
		if err != nil {
			return "", err
		}
		// The left-bushy 8-relation tree has 3 chain (bushy-pipeline)
		// steps above the leaf joins.
		sec := res.ResponseTime.Seconds()
		fmt.Fprintf(&b, "%-10d%12.3f%16.3f\n", card, sec, sec/3)
	}
	b.WriteString("\n")
	return b.String(), nil
}

// Memory reproduces the Section 5 memory observation: RD needs one hash
// table per join where FP's pipelining join maintains two, so RD runs in
// less memory — and, per the disk-based discussion, whether a (sub)tree fits
// the nodes' main memory decides whether inter-join parallelism pays off at
// all. The table reports the peak hash-table footprint per strategy against
// the 16 MB of a PRISMA node.
func Memory(card, procs int, seed int64) (string, error) {
	const nodeBytes = 16 << 20
	r := NewRunner()
	r.Seed = seed
	var b strings.Builder
	fmt.Fprintf(&b, "Section 5 memory footprints: %d tuples/relation, %d processors\n", card, procs)
	fmt.Fprintf(&b, "%-22s%-10s%18s%18s%12s\n",
		"shape", "strategy", "peak/proc (MB)", "peak total (MB)", "fits 16MB")
	mb := func(tuples int) float64 { return float64(tuples) * wisconsin.TupleBytes / (1 << 20) }
	for _, shape := range []jointree.Shape{jointree.WideBushy, jointree.RightLinear} {
		for _, kind := range strategy.Kinds {
			pt, err := r.Run(shape, kind, card, procs, core.DefaultRuntime)
			if err != nil {
				return "", err
			}
			perProc := pt.Stats.PeakTableTuplesPerProc
			fits := "yes"
			if perProc*wisconsin.TupleBytes > nodeBytes {
				fits = "NO"
			}
			fmt.Fprintf(&b, "%-22v%-10v%18.2f%18.2f%12s\n",
				shape, kind, mb(perProc), mb(pt.Stats.PeakTableTuplesTotal), fits)
		}
	}
	b.WriteString("\n")
	return b.String(), nil
}

// MemoryBounded measures the out-of-core scenario class the in-memory
// runtimes cannot run: the wide-bushy query on the spill runtime under a
// sweep of per-run memory budgets, one row per budget × strategy, reporting
// wall-clock seconds against bytes spilled, partition files created, and
// time spent on spill I/O. As the budget shrinks below the working set,
// every strategy degrades toward the same Grace-join profile: the paper's
// pipelining distinctions only exist when operands stay resident.
func MemoryBounded(card, procs int, budgets []int64, seed int64) (string, error) {
	db, err := wisconsin.Chain(wisconsin.Config{Relations: 6, Cardinality: card, Seed: seed})
	if err != nil {
		return "", err
	}
	tree, err := jointree.BuildShape(jointree.WideBushy, db.NumRelations())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Memory-bounded execution: wide-bushy chain of 6x%d tuples, %d processors, spill runtime\n", card, procs)
	fmt.Fprintf(&b, "%-12s%-10s%12s%14s%12s%12s\n",
		"budget", "strategy", "seconds", "spilled (MB)", "partitions", "io (s)")
	for _, budget := range budgets {
		for _, kind := range strategy.Kinds {
			q := core.Query{DB: db, Tree: tree, Strategy: kind, Procs: procs, Params: costmodel.Default()}
			res, err := core.Exec(context.Background(), q,
				core.WithRuntime("spill"),
				core.WithMaxProcs(parallel.HostCap(procs)),
				core.WithMemoryBudget(budget))
			if err != nil {
				return "", fmt.Errorf("budget %d %v: %w", budget, kind, err)
			}
			fmt.Fprintf(&b, "%-12s%-10v%12.3f%14.2f%12d%12.3f\n",
				formatBytes(budget), kind, res.Time.Seconds(),
				float64(res.Stats.BytesSpilled)/(1<<20),
				res.Stats.SpillPartitions, res.Stats.SpillTime.Seconds())
		}
	}
	b.WriteString("\n")
	return b.String(), nil
}

// formatBytes renders a byte count with a binary unit suffix.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// CostFunction reproduces the Section 5 observation that "FP, SE, and RD
// need a cost function to estimate the costs of the constituent binary
// joins": on a non-regular chain (relation sizes halving along the chain —
// the 'real-life' workloads the paper's closing section asks about),
// allocating processors proportionally to estimated work is compared with a
// naive equal split. SP is listed as the control: it needs no cost function
// and is unaffected.
func CostFunction(procs int, seed int64) (string, error) {
	cards := []int{32000, 16000, 8000, 4000, 2000, 1000, 500, 250, 125, 64}
	db, err := wisconsin.Chain(wisconsin.Config{Cards: cards, Seed: seed})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Section 5 cost-function ablation: halving chain %v..%d tuples, %d processors\n",
		cards[0], cards[len(cards)-1], procs)
	fmt.Fprintf(&b, "%-10s%20s%18s%12s\n", "strategy", "cost-based (s)", "equal split (s)", "penalty")
	tree, err := jointree.BuildShape(jointree.RightBushy, len(cards))
	if err != nil {
		return "", err
	}
	for _, kind := range strategy.Kinds {
		var secs [2]float64
		for i, equal := range []bool{false, true} {
			res, err := core.Query{
				DB: db, Tree: tree, Strategy: kind, Procs: procs,
				Params: costmodel.Default(), EqualWork: equal,
			}.Run()
			if err != nil {
				return "", err
			}
			secs[i] = res.ResponseTime.Seconds()
		}
		fmt.Fprintf(&b, "%-10v%20.2f%18.2f%11.0f%%\n",
			kind, secs[0], secs[1], 100*(secs[1]/secs[0]-1))
	}
	b.WriteString("\n")
	return b.String(), nil
}

// Ablation quantifies the Section 3.5 overhead tradeoffs by zeroing one
// machine-model overhead at a time and re-measuring the left-linear SP
// sweep, the configuration the paper identifies as most overhead-bound.
func Ablation(card int, seed int64) (string, error) {
	configs := []struct {
		name string
		mod  func(*costmodel.Params)
	}{
		{"default", func(*costmodel.Params) {}},
		{"no-startup", func(p *costmodel.Params) { p.Startup = 0 }},
		{"no-handshake", func(p *costmodel.Params) { p.Handshake = 0 }},
		{"no-overhead", func(p *costmodel.Params) { p.Startup = 0; p.Handshake = 0; p.NetLatency = 0 }},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Section 3.5 ablation: left-linear SP response time (seconds), card=%d\n", card)
	fmt.Fprintf(&b, "%-14s", "procs")
	procCounts := []int{20, 40, 60, 80}
	for _, p := range procCounts {
		fmt.Fprintf(&b, "%10d", p)
	}
	b.WriteByte('\n')
	for _, cfg := range configs {
		r := NewRunner()
		r.Seed = seed
		cfg.mod(&r.Params)
		fmt.Fprintf(&b, "%-14s", cfg.name)
		for _, procs := range procCounts {
			pt, err := r.Run(jointree.LeftLinear, strategy.SP, card, procs, core.DefaultRuntime)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%10.2f", pt.Seconds)
		}
		b.WriteByte('\n')
	}
	b.WriteString("\n")
	return b.String(), nil
}
