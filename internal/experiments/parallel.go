package experiments

import (
	"fmt"

	"multijoin/internal/core"
	"multijoin/internal/engine"
	"multijoin/internal/jointree"
	"multijoin/internal/parallel"
	"multijoin/internal/strategy"
)

// RunParallel measures one configuration on the goroutine runtime: the same
// plan the simulator would execute, run with real concurrency, reported in
// wall-clock seconds instead of virtual seconds. The processor cap is the
// swept processor count, bounded by the host's GOMAXPROCS (a laptop does
// not have 80 CPUs; capping keeps the sweep honest about what actually runs
// concurrently).
func (r *Runner) RunParallel(shape jointree.Shape, kind strategy.Kind, card, procs int) (Point, error) {
	db, err := r.DB(card)
	if err != nil {
		return Point{}, err
	}
	tree, err := jointree.BuildShape(shape, r.Relations)
	if err != nil {
		return Point{}, err
	}
	q := core.Query{DB: db, Tree: tree, Strategy: kind, Procs: procs, Params: r.Params}
	res, err := core.ExecuteParallel(q, parallel.Config{MaxProcs: parallel.HostCap(procs)})
	if err != nil {
		return Point{}, err
	}
	return Point{
		Shape:    shape,
		Strategy: kind,
		Card:     card,
		Procs:    procs,
		Seconds:  res.WallTime.Seconds(),
		// The structural counters are runtime-independent; carrying them
		// over keeps the CSV columns meaningful for parallel sweeps.
		Stats: engine.Stats{
			Processes:         res.Stats.Processes,
			Streams:           res.Stats.Streams,
			TuplesMovedRemote: res.Stats.TuplesMovedRemote,
			TuplesLocal:       res.Stats.TuplesLocal,
			Batches:           res.Stats.Batches,
			ResultTuples:      res.Stats.ResultTuples,
		},
	}, nil
}

// SweepShapeParallel measures all strategies over all processor counts of
// one problem size on the goroutine runtime — the wall-clock counterpart of
// SweepShape.
func (r *Runner) SweepShapeParallel(shape jointree.Shape, size ProblemSize) ([]Point, error) {
	var out []Point
	for _, procs := range size.Procs {
		for _, kind := range strategy.Kinds {
			p, err := r.RunParallel(shape, kind, size.Card, procs)
			if err != nil {
				return nil, fmt.Errorf("%v/%v/%d procs: %w", shape, kind, procs, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}
