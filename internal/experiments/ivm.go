package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"multijoin/internal/core"
	"multijoin/internal/ivm"
	"multijoin/internal/jointree"
	"multijoin/internal/parallel"
	"multijoin/internal/relation"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
)

// IVM measures incremental view maintenance against re-execution: one
// engine-owned materialized view over the left-linear chain stays resident
// while signed delta rounds of growing size flow through its pipelining
// network, and each round's refresh latency is compared with the cost of
// answering the same query from scratch. Every delta round inserts fresh
// join-compatible tuples into relation 0 and deletes an equal number of
// earlier insertions, so the view's cardinality — checked after every
// round — stays pinned at base+pool and the rounds are steady-state
// rather than monotone growth.
//
// The point of the figure: below some delta fraction, maintenance cost is
// proportional to the delta, not the data, so a view refresh beats even
// the paper's best full-query strategy by orders of magnitude.
func IVM(card, procs int, fracs []float64, seed int64) (string, error) {
	const relations = 6
	const rounds = 5
	db, err := wisconsin.Chain(wisconsin.Config{Relations: relations, Cardinality: card, Seed: seed})
	if err != nil {
		return "", err
	}
	tree, err := jointree.BuildShape(jointree.LeftLinear, relations)
	if err != nil {
		return "", err
	}
	eng, err := core.Open(db, core.WithEngineProcs(parallel.HostCap(procs)))
	if err != nil {
		return "", err
	}
	defer eng.Close()
	ctx := context.Background()
	q := core.Query{DB: db, Tree: tree, Strategy: strategy.FP, Procs: procs}

	// Recompute baseline: the same query executed from scratch (best of 3,
	// the paper's usual treatment of timing noise).
	recompute := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		rows, err := eng.Query(ctx, q)
		if err != nil {
			return "", err
		}
		if _, err := rows.All(); err != nil {
			return "", err
		}
		if d := time.Since(t0); d < recompute {
			recompute = d
		}
	}

	t0 := time.Now()
	view, err := eng.CreateView(ctx, q)
	if err != nil {
		return "", err
	}
	defer view.Close()
	populate := time.Since(t0)
	base := view.ResultCard()

	var b strings.Builder
	fmt.Fprintf(&b, "Incremental view maintenance vs re-execution: left-linear chain of %dx%d tuples, FP network resident\n", relations, card)
	fmt.Fprintf(&b, "recompute %.1f ms (best of 3), population %.1f ms, %.1f MiB resident; refresh = mean of %d steady-state rounds\n",
		recompute.Seconds()*1e3, populate.Seconds()*1e3, float64(view.Resident())/(1<<20), rounds)
	fmt.Fprintf(&b, "%-10s%14s%14s%16s%12s\n", "delta", "tuples/round", "refresh (ms)", "recompute (ms)", "speedup")

	rng := rand.New(rand.NewSource(seed + 7))
	var pool []relation.Tuple
	fresh := func(n int) []relation.Tuple {
		out := make([]relation.Tuple, n)
		for i := range out {
			out[i] = relation.Tuple{
				Unique1: int64(card) + rng.Int63n(1<<40),
				Unique2: rng.Int63n(int64(card)),
				Check:   rng.Uint64(),
			}
		}
		return out
	}
	for _, frac := range fracs {
		n := int(frac * float64(card))
		if n < 1 {
			n = 1
		}
		// Prime the pool (unmeasured) so every measured round both inserts
		// and deletes n tuples.
		prime := fresh(n)
		if _, err := view.Apply(ctx, ivm.Delta{Rel: 0, Insert: prime}); err != nil {
			return "", err
		}
		pool = append(pool, prime...)
		var total time.Duration
		for r := 0; r < rounds; r++ {
			ins := fresh(n)
			del := pool[len(pool)-n:]
			pool = append(pool[:len(pool)-n], ins...)
			t0 := time.Now()
			res, err := view.Apply(ctx, ivm.Delta{Rel: 0, Insert: ins, Delete: del})
			if err != nil {
				return "", err
			}
			total += time.Since(t0)
			// Every fresh relation-0 tuple joins exactly one tuple of each
			// later relation, so the result must sit at base + pool size.
			if res.Unmatched != 0 || res.ResultCard != base+len(pool) {
				return "", fmt.Errorf("ivm: round drifted: unmatched=%d card=%d want %d",
					res.Unmatched, res.ResultCard, base+len(pool))
			}
		}
		refresh := total / rounds
		fmt.Fprintf(&b, "%-10s%14d%14.2f%16.1f%12s\n",
			fmt.Sprintf("%.2g%%", frac*100), 2*n,
			refresh.Seconds()*1e3, recompute.Seconds()*1e3,
			fmt.Sprintf("%.0fx", recompute.Seconds()/refresh.Seconds()))
	}
	return b.String(), nil
}
