package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"multijoin/internal/core"
	"multijoin/internal/jointree"
	"multijoin/internal/parallel"
	"multijoin/internal/relation"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
)

// throughputBudget is the shared engine memory budget of the throughput
// experiment: sized so a single spill query stays resident but several
// concurrent ones cross it together — the spilled column then directly
// shows the budget being shared, not per-query.
const throughputBudget = 1 << 20

// Throughput measures the session layer under concurrent load — the
// workload the paper's PRISMA/DB actually serves but the one-shot figures
// never show. One shared Engine (shared processor pool, shared 1 MiB
// memory budget, admission capped at the sweep's concurrency level,
// admission policy as given: "fifo" or "cost") serves a batch of mixed
// queries: strategies cycle through SP/SE/RD/FP and runtimes alternate
// parallel/spill, every result is drained through a streaming Rows cursor
// and checked against the sequential reference. Each row of the table is
// one concurrency level: queries/sec over the batch, the mean and p95
// admission queue wait the queries observed, and how much the spill
// queries overflowed the shared budget.
func Throughput(card, procs int, concurrencies []int, queries int, seed int64, policy string) (string, error) {
	db, err := wisconsin.Chain(wisconsin.Config{Relations: 6, Cardinality: card, Seed: seed})
	if err != nil {
		return "", err
	}
	tree, err := jointree.BuildShape(jointree.WideBushy, db.NumRelations())
	if err != nil {
		return "", err
	}
	want := core.Reference(db, tree)
	runtimes := []string{"parallel", "spill"}

	if policy == "" {
		policy = "fifo"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Engine throughput: %d mixed queries (SP/SE/RD/FP x parallel/spill) per level,\n", queries)
	fmt.Fprintf(&b, "wide-bushy chain of 6x%d tuples, one shared Engine, %d-processor pool, shared %s budget, %q admission\n",
		card, parallel.HostCap(procs), formatBytes(throughputBudget), policy)
	fmt.Fprintf(&b, "%-14s%12s%12s%16s%16s%14s\n",
		"concurrency", "wall (s)", "queries/s", "avg wait (ms)", "p95 wait (ms)", "spilled (MB)")
	for _, conc := range concurrencies {
		eng, err := core.Open(db,
			core.WithMaxConcurrent(conc),
			core.WithEngineProcs(parallel.HostCap(procs)),
			core.WithEngineMemoryBudget(throughputBudget),
			core.WithAdmissionPolicy(policy))
		if err != nil {
			return "", err
		}
		var (
			wg     sync.WaitGroup
			mu     sync.Mutex
			waits  []time.Duration
			firstE error
		)
		start := time.Now()
		for i := 0; i < queries; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				q := core.Query{
					DB: db, Tree: tree,
					Strategy: strategy.Kinds[i%len(strategy.Kinds)],
					Procs:    procs,
				}
				rows, err := eng.Query(context.Background(), q,
					core.WithRuntime(runtimes[i%len(runtimes)]))
				if err == nil {
					var got *relation.Relation
					if got, err = rows.All(); err == nil {
						if diff := relation.DiffMultiset(got, want); diff != "" {
							err = fmt.Errorf("query %d differs from reference: %s", i, diff)
						}
					}
					if res, ok := rows.Result(); ok {
						mu.Lock()
						waits = append(waits, res.Stats.QueueWait)
						mu.Unlock()
					}
				}
				if err != nil {
					mu.Lock()
					if firstE == nil {
						firstE = err
					}
					mu.Unlock()
				}
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		spilled := eng.SpilledBytes()
		eng.Close()
		if firstE != nil {
			return "", fmt.Errorf("concurrency %d: %w", conc, firstE)
		}
		var waitSum time.Duration
		for _, w := range waits {
			waitSum += w
		}
		avgWait := 0.0
		if len(waits) > 0 {
			avgWait = waitSum.Seconds() * 1e3 / float64(len(waits))
		}
		fmt.Fprintf(&b, "%-14d%12.3f%12.1f%16.2f%16.2f%14.2f\n",
			conc, elapsed.Seconds(), float64(queries)/elapsed.Seconds(),
			avgWait,
			percentileWait(waits, 0.95).Seconds()*1e3,
			float64(spilled)/(1<<20))
	}
	b.WriteString("\n")
	return b.String(), nil
}

// percentileWait returns the p-th percentile (nearest-rank) of the waits.
func percentileWait(waits []time.Duration, p float64) time.Duration {
	if len(waits) == 0 {
		return 0
	}
	s := make([]time.Duration, len(waits))
	copy(s, waits)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(p*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
