package experiments

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"multijoin/internal/jointree"
)

// WriteCSV emits sweep points as CSV with the columns
// shape,strategy,card,procs,runtime,seconds,processes,streams,
// bytes_spilled,spill_partitions,spill_seconds — one row per measurement —
// so the figures can be re-plotted with external tools. The three spill
// columns are zero on the in-memory runtimes. Rows are ordered by
// (shape, card, procs, strategy) for stable diffs.
func WriteCSV(w io.Writer, points []Point) error {
	if _, err := io.WriteString(w, "shape,strategy,card,procs,runtime,seconds,processes,streams,bytes_spilled,spill_partitions,spill_seconds\n"); err != nil {
		return err
	}
	ordered := append([]Point(nil), points...)
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.Shape != b.Shape {
			return a.Shape < b.Shape
		}
		if a.Card != b.Card {
			return a.Card < b.Card
		}
		if a.Procs != b.Procs {
			return a.Procs < b.Procs
		}
		return a.Strategy < b.Strategy
	})
	for _, p := range ordered {
		_, err := fmt.Fprintf(w, "%s,%s,%d,%d,%s,%s,%d,%d,%d,%d,%s\n",
			p.Shape, p.Strategy, p.Card, p.Procs, p.Runtime,
			strconv.FormatFloat(p.Seconds, 'f', 4, 64),
			p.Stats.Processes, p.Stats.Streams,
			p.Stats.BytesSpilled, p.Stats.SpillPartitions,
			strconv.FormatFloat(p.Stats.SpillTime.Seconds(), 'f', 4, 64))
		if err != nil {
			return err
		}
	}
	return nil
}

// CSVForShapes runs the sweeps for all five paper shapes over the given
// sizes on the named runtime and writes a single CSV covering all of them.
func (r *Runner) CSVForShapes(w io.Writer, sizes []ProblemSize, runtime string) error {
	var all []Point
	for _, shape := range jointree.Shapes {
		for _, size := range sizes {
			pts, err := r.SweepShape(shape, size, runtime)
			if err != nil {
				return err
			}
			all = append(all, pts...)
		}
	}
	return WriteCSV(w, all)
}
