package experiments

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"multijoin/internal/jointree"
)

// WriteCSV emits sweep points as CSV with the columns
// shape,strategy,card,procs,seconds,processes,streams — one row per
// measurement — so the figures can be re-plotted with external tools.
// Rows are ordered by (card, procs, strategy) for stable diffs.
func WriteCSV(w io.Writer, points []Point) error {
	if _, err := io.WriteString(w, "shape,strategy,card,procs,seconds,processes,streams\n"); err != nil {
		return err
	}
	ordered := append([]Point(nil), points...)
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.Shape != b.Shape {
			return a.Shape < b.Shape
		}
		if a.Card != b.Card {
			return a.Card < b.Card
		}
		if a.Procs != b.Procs {
			return a.Procs < b.Procs
		}
		return a.Strategy < b.Strategy
	})
	for _, p := range ordered {
		_, err := fmt.Fprintf(w, "%s,%s,%d,%d,%s,%d,%d\n",
			p.Shape, p.Strategy, p.Card, p.Procs,
			strconv.FormatFloat(p.Seconds, 'f', 4, 64),
			p.Stats.Processes, p.Stats.Streams)
		if err != nil {
			return err
		}
	}
	return nil
}

// CSVForShapes runs the simulator sweeps for all five paper shapes over the
// given sizes and writes a single CSV covering all of them.
func (r *Runner) CSVForShapes(w io.Writer, sizes []ProblemSize) error {
	return r.csvForShapes(w, sizes, r.SweepShape)
}

// CSVForShapesParallel is CSVForShapes on the goroutine runtime: the same
// shapes and sizes, measured in wall-clock seconds.
func (r *Runner) CSVForShapesParallel(w io.Writer, sizes []ProblemSize) error {
	return r.csvForShapes(w, sizes, r.SweepShapeParallel)
}

func (r *Runner) csvForShapes(w io.Writer, sizes []ProblemSize, sweep func(jointree.Shape, ProblemSize) ([]Point, error)) error {
	var all []Point
	for _, shape := range jointree.Shapes {
		for _, size := range sizes {
			pts, err := sweep(shape, size)
			if err != nil {
				return err
			}
			all = append(all, pts...)
		}
	}
	return WriteCSV(w, all)
}
