// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4): the response-time curves of Figures 9-13 (five
// query shapes, two problem sizes, 20-80 processors, four strategies), the
// best-response-time table of Figure 14, the utilization diagrams of
// Figures 3/4/6/7, and the supporting experiments of Sections 2.3.1 and
// 2.3.3 plus the Section 3.5 overhead ablation.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"multijoin/internal/core"
	"multijoin/internal/costmodel"
	"multijoin/internal/jointree"
	"multijoin/internal/parallel"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
)

// ProblemSize describes one of the paper's two experiment sizes.
type ProblemSize struct {
	Name  string
	Card  int   // tuples per relation
	Procs []int // processor counts swept
}

// The paper's sizes (Section 4.2): the 5K experiment sweeps 20-80
// processors; the 40K query was too large to run on fewer than 30.
var (
	Small = ProblemSize{Name: "5K", Card: 5000, Procs: []int{20, 30, 40, 50, 60, 70, 80}}
	Large = ProblemSize{Name: "40K", Card: 40000, Procs: []int{30, 40, 50, 60, 70, 80}}
)

// Sizes lists the paper's problem sizes.
var Sizes = []ProblemSize{Small, Large}

// Point is one measured response time.
type Point struct {
	Shape    jointree.Shape
	Strategy strategy.Kind
	Card     int
	Procs    int
	// Runtime is the registry name of the runtime that measured the point.
	Runtime string
	// Virtual reports whether Seconds is virtual (simulated) time.
	Virtual bool
	Seconds float64
	Stats   core.Stats
}

// Runner executes experiment sweeps, caching generated databases per
// cardinality.
type Runner struct {
	Params    costmodel.Params
	Relations int
	Seed      int64
	dbs       map[int]*wisconsin.Database
}

// NewRunner returns a runner with the paper's setup: 10 relations, the
// calibrated default machine model.
func NewRunner() *Runner {
	return &Runner{Params: costmodel.Default(), Relations: 10, Seed: 1995}
}

// DB returns (and caches) the chain database with the given cardinality.
func (r *Runner) DB(card int) (*wisconsin.Database, error) {
	if r.dbs == nil {
		r.dbs = make(map[int]*wisconsin.Database)
	}
	if db, ok := r.dbs[card]; ok {
		return db, nil
	}
	db, err := wisconsin.Chain(wisconsin.Config{Relations: r.Relations, Cardinality: card, Seed: r.Seed})
	if err != nil {
		return nil, err
	}
	r.dbs[card] = db
	return db, nil
}

// Run measures one configuration on the named runtime ("sim" reports
// virtual seconds, "parallel" wall-clock seconds for the identical plan).
// On wall-clock runtimes the concurrency cap is the swept processor count
// bounded by the host's GOMAXPROCS — a laptop does not have 80 CPUs;
// capping keeps the sweep honest about what actually runs concurrently.
func (r *Runner) Run(shape jointree.Shape, kind strategy.Kind, card, procs int, runtime string) (Point, error) {
	db, err := r.DB(card)
	if err != nil {
		return Point{}, err
	}
	tree, err := jointree.BuildShape(shape, r.Relations)
	if err != nil {
		return Point{}, err
	}
	q := core.Query{DB: db, Tree: tree, Strategy: kind, Procs: procs, Params: r.Params}
	res, err := core.Exec(context.Background(), q,
		core.WithRuntime(runtime), core.WithMaxProcs(parallel.HostCap(procs)))
	if err != nil {
		return Point{}, err
	}
	return Point{
		Shape:    shape,
		Strategy: kind,
		Card:     card,
		Procs:    procs,
		Runtime:  res.Runtime,
		Virtual:  res.Virtual,
		Seconds:  res.Time.Seconds(),
		Stats:    res.Stats,
	}, nil
}

// SweepShape measures all strategies over all processor counts of one
// problem size for one query shape on the named runtime — one half of one
// of Figures 9-13 on "sim", its wall-clock counterpart on "parallel".
func (r *Runner) SweepShape(shape jointree.Shape, size ProblemSize, runtime string) ([]Point, error) {
	var out []Point
	for _, procs := range size.Procs {
		for _, kind := range strategy.Kinds {
			p, err := r.Run(shape, kind, size.Card, procs, runtime)
			if err != nil {
				return nil, fmt.Errorf("%v/%v/%d procs: %w", shape, kind, procs, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// FormatSweep renders sweep points as a table in the layout of the paper's
// response-time diagrams: one row per processor count, one column per
// strategy, response times in seconds.
func FormatSweep(title string, points []Point) string {
	procs := map[int]bool{}
	for _, p := range points {
		procs[p.Procs] = true
	}
	var ps []int
	for p := range procs {
		ps = append(ps, p)
	}
	sort.Ints(ps)
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-6s", "procs")
	for _, k := range strategy.Kinds {
		fmt.Fprintf(&b, "%10s", k)
	}
	b.WriteByte('\n')
	for _, pc := range ps {
		fmt.Fprintf(&b, "%-6d", pc)
		for _, k := range strategy.Kinds {
			val := "-"
			for _, p := range points {
				if p.Procs == pc && p.Strategy == k {
					val = fmt.Sprintf("%.2f", p.Seconds)
					break
				}
			}
			fmt.Fprintf(&b, "%10s", val)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Best is one row of Figure 14: the minimal response time for a query shape
// and problem size, with the strategy and processor count that achieved it.
type Best struct {
	Shape    jointree.Shape
	Size     ProblemSize
	Seconds  float64
	Strategy strategy.Kind
	Procs    int
}

// BestOf reduces sweep points to their minimum.
func BestOf(shape jointree.Shape, size ProblemSize, points []Point) Best {
	best := Best{Shape: shape, Size: size, Seconds: -1}
	for _, p := range points {
		if best.Seconds < 0 || p.Seconds < best.Seconds {
			best.Seconds = p.Seconds
			best.Strategy = p.Strategy
			best.Procs = p.Procs
		}
	}
	return best
}

// Figure14 computes the full best-response-time table: every shape, both
// problem sizes, on the simulator (the paper's virtual-time metric).
func (r *Runner) Figure14() ([]Best, error) {
	var out []Best
	for _, shape := range jointree.Shapes {
		for _, size := range Sizes {
			pts, err := r.SweepShape(shape, size, core.DefaultRuntime)
			if err != nil {
				return nil, err
			}
			out = append(out, BestOf(shape, size, pts))
		}
	}
	return out, nil
}

// FormatFigure14 renders the Figure 14 table in the paper's layout.
func FormatFigure14(rows []Best) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 14: best response times in seconds (strategy+procs in parentheses)\n")
	fmt.Fprintf(&b, "%-22s", "")
	for _, size := range Sizes {
		fmt.Fprintf(&b, "%18s", size.Name)
	}
	b.WriteByte('\n')
	for _, shape := range jointree.Shapes {
		fmt.Fprintf(&b, "%-22s", shape)
		for _, size := range Sizes {
			for _, row := range rows {
				if row.Shape == shape && row.Size.Name == size.Name {
					cell := fmt.Sprintf("%.1f (%v%d)", row.Seconds, row.Strategy, row.Procs)
					fmt.Fprintf(&b, "%18s", cell)
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
