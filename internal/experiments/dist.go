package experiments

import (
	"context"
	"fmt"
	"strings"

	"multijoin/internal/core"
	"multijoin/internal/costmodel"
	"multijoin/internal/jointree"
	"multijoin/internal/parallel"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
)

// Distributed compares single-process and multi-process execution of the
// same plans: the wide-bushy chain query per strategy, once on the
// goroutine runtime ("parallel", shared memory, channels as streams) and
// once on the dist runtime (worker OS processes on loopback TCP — the
// shared-nothing transport the paper's PRISMA/DB machine actually had).
// The table reports wall seconds for both, the dist/parallel ratio, and
// the bytes the dist run put on the wire. Dist wall time includes spawning
// and reaping the worker processes, which dominates at small cardinalities
// — the transport tax is the point of the experiment, not a defect.
func Distributed(card, procs, workers int, seed int64) (string, error) {
	db, err := wisconsin.Chain(wisconsin.Config{Relations: 6, Cardinality: card, Seed: seed})
	if err != nil {
		return "", err
	}
	tree, err := jointree.BuildShape(jointree.WideBushy, db.NumRelations())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Distributed execution: wide-bushy chain of 6x%d tuples, %d processors, %d worker processes\n",
		card, procs, workers)
	fmt.Fprintf(&b, "(dist seconds include worker spawn and teardown)\n")
	fmt.Fprintf(&b, "%-10s%14s%10s%12s%12s%12s\n",
		"strategy", "parallel (s)", "dist (s)", "dist/par", "wire (MB)", "batches")
	for _, kind := range strategy.Kinds {
		q := core.Query{DB: db, Tree: tree, Strategy: kind, Procs: procs, Params: costmodel.Default()}
		pres, err := core.Exec(context.Background(), q,
			core.WithRuntime("parallel"),
			core.WithMaxProcs(parallel.HostCap(procs)))
		if err != nil {
			return "", fmt.Errorf("parallel %v: %w", kind, err)
		}
		dres, err := core.Exec(context.Background(), q,
			core.WithRuntime("dist"),
			core.WithWorkers(workers))
		if err != nil {
			return "", fmt.Errorf("dist %v: %w", kind, err)
		}
		ratio := 0.0
		if s := pres.Time.Seconds(); s > 0 {
			ratio = dres.Time.Seconds() / s
		}
		fmt.Fprintf(&b, "%-10v%14.3f%10.3f%12.2f%12.2f%12d\n",
			kind, pres.Time.Seconds(), dres.Time.Seconds(), ratio,
			float64(dres.Stats.BytesOnWire)/(1<<20), dres.Stats.Batches)
	}
	b.WriteString("\n")
	return b.String(), nil
}
