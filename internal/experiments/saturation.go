package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"multijoin/internal/core"
	"multijoin/internal/parallel"
	"multijoin/internal/serve"
	"multijoin/internal/wisconsin"
)

// Saturation measures the serving layer end to end: an in-process mjserve
// (one Engine behind the TCP query protocol of internal/serve) under an
// open-loop load sweep — Poisson arrivals at each offered rate, issued
// regardless of completions, so past the knee the queueing shows up as
// admission wait and latency percentiles instead of a throughput plateau
// alone. Each row is one offered-load step over the full mixed workload
// (SP/SE/RD/FP crossed with the parallel and spill runtimes, a fraction
// cancelled mid-stream); the closing row is a closed-loop step — the
// capacity ceiling the open-loop steps approach.
func Saturation(card, procs int, offered []float64, conns int, stepDur time.Duration,
	cancelFrac float64, seed int64, policy string) (string, error) {
	db, err := wisconsin.Chain(wisconsin.Config{Relations: 6, Cardinality: card, Seed: seed})
	if err != nil {
		return "", err
	}
	if policy == "" {
		policy = "cost"
	}
	eng, err := core.Open(db,
		core.WithEngineProcs(parallel.HostCap(procs)),
		core.WithEngineMemoryBudget(throughputBudget),
		core.WithAdmissionPolicy(policy))
	if err != nil {
		return "", err
	}
	srv := serve.NewServer(eng, serve.Config{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		eng.Close()
		return "", err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	var b strings.Builder
	fmt.Fprintf(&b, "Serving saturation: mjserve protocol over TCP, open-loop Poisson arrivals,\n")
	fmt.Fprintf(&b, "%d conns x %s per step, mixed SP/SE/RD/FP x parallel/spill, %.0f%% cancelled mid-stream,\n",
		conns, stepDur, cancelFrac*100)
	fmt.Fprintf(&b, "wide-bushy chain of 6x%d tuples, %d-processor pool, shared %s budget, %q admission\n",
		card, parallel.HostCap(procs), formatBytes(throughputBudget), policy)
	fmt.Fprintf(&b, "%-12s%12s%10s%10s%8s%10s%10s%10s%14s%12s\n",
		"offered", "achieved", "done", "cancel", "errs", "p50 (ms)", "p95 (ms)", "p99 (ms)", "avg wait (ms)", "spill (MB)")
	row := func(label string, res *serve.LoadResult) {
		ms := func(d time.Duration) float64 { return d.Seconds() * 1e3 }
		fmt.Fprintf(&b, "%-12s%12.1f%10d%10d%8d%10.1f%10.1f%10.1f%14.2f%12.2f\n",
			label, res.Achieved, res.Completed, res.Cancelled, res.Errors,
			ms(res.P50), ms(res.P95), ms(res.P99), ms(res.AvgQueueWait),
			float64(res.SpilledBytes)/(1<<20))
	}
	for _, qps := range offered {
		res, err := serve.RunLoad(serve.LoadConfig{
			Addr: addr, Conns: conns, Duration: stepDur,
			OfferedQPS: qps, CancelFrac: cancelFrac, Seed: seed,
		})
		if err != nil {
			return "", fmt.Errorf("saturation step %.0f q/s: %w", qps, err)
		}
		row(fmt.Sprintf("%.0f q/s", qps), res)
	}
	res, err := serve.RunLoad(serve.LoadConfig{
		Addr: addr, Conns: conns, Duration: stepDur,
		CancelFrac: cancelFrac, Seed: seed,
	})
	if err != nil {
		return "", fmt.Errorf("saturation closed-loop step: %w", err)
	}
	row("closed", res)
	b.WriteString("\n")
	return b.String(), nil
}
