package experiments

import (
	"strings"
	"testing"

	"multijoin/internal/core"
	"multijoin/internal/jointree"
)

func TestMemoryOutput(t *testing.T) {
	out, err := Memory(2000, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"wide-bushy", "right-linear", "SP", "FP", "fits 16MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("memory table missing %q:\n%s", want, out)
		}
	}
	// Eight data rows (2 shapes x 4 strategies).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+8 {
		t.Errorf("memory table has %d lines:\n%s", len(lines), out)
	}
}

func TestCostFunctionOutput(t *testing.T) {
	out, err := CostFunction(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+4 {
		t.Fatalf("cost-function table has %d lines:\n%s", len(lines), out)
	}
	// SP's row must report a 0% penalty (it ignores the cost function).
	var spLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "SP") {
			spLine = l
		}
	}
	if !strings.Contains(spLine, "0%") {
		t.Errorf("SP must be unaffected by the ablation: %q", spLine)
	}
}

func TestPipelineDelayOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline sweep is slow")
	}
	r := NewRunner()
	out, err := PipelineDelay(r.Params, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "linear pipeline") || !strings.Contains(out, "bushy pipeline") {
		t.Errorf("pipeline delay output incomplete:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	r := smallRunner()
	pts, err := r.SweepShape(jointree.WideBushy, smallSize, core.DefaultRuntime)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(pts) {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+len(pts))
	}
	if lines[0] != "shape,strategy,card,procs,runtime,seconds,processes,streams,bytes_spilled,spill_partitions,spill_seconds" {
		t.Errorf("CSV header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if cols := strings.Split(l, ","); len(cols) != 11 {
			t.Errorf("CSV row %q has %d columns", l, len(cols))
		}
	}
}

func TestMemoryBoundedOutput(t *testing.T) {
	out, err := MemoryBounded(1500, 8, []int64{1 << 12, 1 << 30}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"budget", "SP", "FP", "spilled"} {
		if !strings.Contains(out, want) {
			t.Errorf("memory-bounded table missing %q:\n%s", want, out)
		}
	}
	// 2 budgets x 4 strategies data rows after the two header lines.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+2*4 {
		t.Errorf("memory-bounded table has %d lines:\n%s", len(lines), out)
	}
}
