package experiments

import (
	"strings"
	"testing"

	"multijoin/internal/core"
	"multijoin/internal/jointree"
	"multijoin/internal/strategy"
)

// smallRunner scales the experiments down so the full matrix stays fast in
// unit tests; the benchmarks at the module root run the paper-sized sweeps.
func smallRunner() *Runner {
	r := NewRunner()
	r.Relations = 6
	return r
}

var smallSize = ProblemSize{Name: "tiny", Card: 200, Procs: []int{8, 12}}

func TestRunPoint(t *testing.T) {
	r := smallRunner()
	p, err := r.Run(jointree.WideBushy, strategy.FP, 200, 8, core.DefaultRuntime)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seconds <= 0 {
		t.Errorf("non-positive response time %g", p.Seconds)
	}
	if p.Stats.ResultTuples != 200 {
		t.Errorf("result tuples = %d", p.Stats.ResultTuples)
	}
}

func TestDBCaching(t *testing.T) {
	r := smallRunner()
	a, err := r.DB(100)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := r.DB(100)
	if a != b {
		t.Error("database not cached")
	}
	c, _ := r.DB(101)
	if a == c {
		t.Error("different cardinalities must differ")
	}
}

func TestSweepShapeComplete(t *testing.T) {
	r := smallRunner()
	pts, err := r.SweepShape(jointree.LeftLinear, smallSize, core.DefaultRuntime)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(smallSize.Procs)*len(strategy.Kinds) {
		t.Fatalf("sweep has %d points", len(pts))
	}
	// SP, SE and RD must coincide on the left-linear tree (Figure 9).
	byKey := map[string]float64{}
	for _, p := range pts {
		byKey[p.Strategy.String()+string(rune(p.Procs))] = p.Seconds
	}
	for _, procs := range smallSize.Procs {
		sp := byKey["SP"+string(rune(procs))]
		for _, k := range []string{"SE", "RD"} {
			if byKey[k+string(rune(procs))] != sp {
				t.Errorf("%s at %d procs = %g, want SP's %g (degeneration)",
					k, procs, byKey[k+string(rune(procs))], sp)
			}
		}
	}
}

func TestFormatSweep(t *testing.T) {
	r := smallRunner()
	pts, err := r.SweepShape(jointree.WideBushy, smallSize, core.DefaultRuntime)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatSweep("title", pts)
	if !strings.Contains(out, "title") || !strings.Contains(out, "SP") {
		t.Errorf("format missing pieces:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2+len(smallSize.Procs) {
		t.Errorf("format has %d lines:\n%s", len(lines), out)
	}
}

func TestBestOf(t *testing.T) {
	pts := []Point{
		{Strategy: strategy.SP, Procs: 8, Seconds: 5},
		{Strategy: strategy.FP, Procs: 12, Seconds: 2},
		{Strategy: strategy.SE, Procs: 8, Seconds: 3},
	}
	b := BestOf(jointree.WideBushy, smallSize, pts)
	if b.Strategy != strategy.FP || b.Procs != 12 || b.Seconds != 2 {
		t.Errorf("BestOf = %+v", b)
	}
}

func TestUtilizationFigures(t *testing.T) {
	for _, fig := range []string{"3", "4", "6", "7"} {
		out, err := UtilizationFigure(fig)
		if err != nil {
			t.Fatalf("figure %s: %v", fig, err)
		}
		if !strings.Contains(out, "response time") {
			t.Errorf("figure %s output incomplete", fig)
		}
		// Ten processor rows must be present.
		for _, row := range []string{"  9 |", "  0 |"} {
			if !strings.Contains(out, row) {
				t.Errorf("figure %s missing processor row %q", fig, row)
			}
		}
	}
	if _, err := UtilizationFigure("5"); err == nil {
		t.Error("figure 5 is not a utilization diagram")
	}
}

func TestAblationOutput(t *testing.T) {
	out, err := Ablation(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"default", "no-startup", "no-handshake", "no-overhead"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation missing row %q:\n%s", want, out)
		}
	}
}

func TestSingleJoinSpeedupOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup sweep is slow")
	}
	r := NewRunner()
	out, err := SingleJoinSpeedup(r.Params, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sqrt") {
		t.Errorf("speedup output incomplete:\n%s", out)
	}
}
