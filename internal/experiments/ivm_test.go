package experiments

import (
	"strings"
	"testing"
)

func TestIVMOutput(t *testing.T) {
	out, err := IVM(1500, 16, []float64{0.01, 0.1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"left-linear", "recompute", "resident", "speedup", "1%", "10%"} {
		if !strings.Contains(out, want) {
			t.Errorf("ivm table missing %q:\n%s", want, out)
		}
	}
	// Header trio plus one data row per fraction.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3+2 {
		t.Errorf("ivm table has %d lines:\n%s", len(lines), out)
	}
}
