// Package spill provides the out-of-core substrate of the "spill" runtime:
// a per-run memory meter that decides *when* to spill, and temp-file
// partitions that hold the overflow in the fixed-width binary tuple format
// of relation.AppendTupleBytes.
//
// The paper's machine is main-memory (PRISMA/DB keeps every fragment and
// hash table resident); its Section 5 discussion of disk-based machines is
// where this package picks up: when the tuples buffered by a run exceed a
// budget, join operands overflow to disk and the joins switch to Grace-style
// partition-at-a-time processing (hashjoin.Grace). The meter is deliberately
// a soft budget — an accounting of pooled batches and buffered operand
// tuples that triggers spilling, not an allocator that can fail — which is
// how real systems bound join memory too.
package spill

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"multijoin/internal/relation"
)

// DefaultBudgetBytes is the per-run memory budget the spill runtime applies
// when the caller sets none: 64 MiB, a few PRISMA-node memories' worth —
// small enough that genuinely large runs spill, large enough that the
// paper-sized experiments mostly stay in memory.
const DefaultBudgetBytes = 64 << 20

// Meter tracks live tuple bytes against a budget and aggregates spill
// statistics. All methods are safe for concurrent use; the accounting is
// advisory (Add never fails), Over is the signal consumers act on by
// spilling.
//
// A meter is either a root (NewMeter) or a child (Child). Children share
// the root's live-byte balance and budget — every child's Add moves the
// same balance, so concurrent runs drawing on one root spill as soon as
// their *combined* residency exceeds the budget — while keeping their own
// spill statistics (which also roll up into the root). This is how an
// engine session shares one memory budget across in-flight queries yet
// still reports per-query spill stats.
type Meter struct {
	budget       int64
	live         *atomic.Int64 // shared with the root and all siblings
	net          atomic.Int64  // this meter's own net contribution to live
	reserved     atomic.Int64  // admission-time pre-charge (Reserve); child meters only
	parent       *Meter        // nil on a root meter
	spilledBytes atomic.Int64
	partitions   atomic.Int64
	ioNanos      atomic.Int64
}

// NewMeter returns a root meter enforcing the given budget in bytes.
func NewMeter(budget int64) *Meter {
	if budget < 1 {
		budget = DefaultBudgetBytes
	}
	return &Meter{budget: budget, live: new(atomic.Int64)}
}

// Child returns a meter that shares this meter's budget and live-byte
// balance but keeps its own spill statistics (also propagated to the
// parent). Settle releases whatever balance the child still holds.
func (m *Meter) Child() *Meter {
	return &Meter{budget: m.budget, live: m.live, parent: m}
}

// Budget returns the configured budget in bytes.
func (m *Meter) Budget() int64 { return m.budget }

// Add adjusts the live-byte balance (positive when tuples are buffered,
// negative when they are released or written out). It is the hook shape
// relation.NewBatchPoolAccounted expects.
//
// On a meter with an admission reservation (Reserve), residency inside the
// reservation is already pre-charged on the shared balance: the shared live
// counter only moves for the portion of this meter's net contribution that
// exceeds the reservation, so a run that stays within its admitted estimate
// never pushes a sibling over budget mid-flight.
func (m *Meter) Add(deltaBytes int64) {
	r := m.reserved.Load()
	if r == 0 {
		m.net.Add(deltaBytes)
		m.live.Add(deltaBytes)
		return
	}
	for {
		old := m.net.Load()
		if m.net.CompareAndSwap(old, old+deltaBytes) {
			if d := overReservation(old+deltaBytes, r) - overReservation(old, r); d != 0 {
				m.live.Add(d)
			}
			return
		}
	}
}

// overReservation is the portion of a net contribution that exceeds the
// reservation — the only part charged live beyond the admission pre-charge.
func overReservation(net, reserved int64) int64 {
	if net > reserved {
		return net - reserved
	}
	return 0
}

// Reserve pre-charges bytes of the shared live balance to this meter — the
// admission-time memory reservation of the cost-based policy. The run's own
// residency (Add) then only moves the shared balance beyond the reservation;
// Settle returns the pre-charge together with any overage. Reserve must be
// called at most once per child meter, before the run performs its first
// Add, and never on a root meter shared by concurrent runs.
func (m *Meter) Reserve(bytes int64) {
	if bytes <= 0 {
		return
	}
	m.reserved.Store(bytes)
	m.live.Add(bytes)
}

// Reserved returns the admission-time reservation held by this meter.
func (m *Meter) Reserved() int64 { return m.reserved.Load() }

// Live returns the current live-byte balance (shared across a root and all
// its children).
func (m *Meter) Live() int64 { return m.live.Load() }

// Over reports whether the live balance exceeds the budget — the signal to
// spill.
func (m *Meter) Over() bool { return m.live.Load() > m.budget }

// Settle releases this meter's outstanding net contribution from the shared
// balance, including any admission-time reservation (Reserve). A cancelled
// run can strand reservations — pooled batches handed to goroutines that
// unwound without a Put — and on a shared (engine) budget those would
// otherwise shrink every later query's headroom forever. Call it once per
// child after the run's goroutines have exited and its consumer released
// every batch; it must not be called while the run can still Add.
func (m *Meter) Settle() {
	r := m.reserved.Swap(0)
	n := m.net.Swap(0)
	if r == 0 {
		m.live.Add(-n)
		return
	}
	// With a reservation, this meter's total contribution to the shared
	// balance is the pre-charge plus whatever its net residency exceeded it
	// by (Add charged nothing while net stayed inside the reservation).
	m.live.Add(-(r + overReservation(n, r)))
}

// NoteSpill records bytes written to a spill file.
func (m *Meter) NoteSpill(bytes int64) {
	m.spilledBytes.Add(bytes)
	if m.parent != nil {
		m.parent.NoteSpill(bytes)
	}
}

// NotePartition records one newly created spill-partition file.
func (m *Meter) NotePartition() {
	m.partitions.Add(1)
	if m.parent != nil {
		m.parent.NotePartition()
	}
}

// NoteIO records wall time spent on spill-file I/O (writes and re-reads).
func (m *Meter) NoteIO(d time.Duration) {
	m.ioNanos.Add(int64(d))
	if m.parent != nil {
		m.parent.NoteIO(d)
	}
}

// SpilledBytes returns the total bytes written to spill files.
func (m *Meter) SpilledBytes() int64 { return m.spilledBytes.Load() }

// Partitions returns the number of spill-partition files created.
func (m *Meter) Partitions() int { return int(m.partitions.Load()) }

// IOTime returns the total wall time spent on spill-file I/O.
func (m *Meter) IOTime() time.Duration { return time.Duration(m.ioNanos.Load()) }

// File is one spill partition: an append-only temp file of wire-format
// tuples, re-read sequentially exactly once (partition-at-a-time
// processing). It is owned by one goroutine at a time — first the operator
// buffering into it, then the drain reading it back — and needs no lock.
type File struct {
	f      *os.File
	tuples int
	enc    []byte // reusable encode/read staging buffer
}

// Create opens a new spill partition file in dir. The file is created with
// O_EXCL semantics by os.CreateTemp, so concurrent processes cannot
// collide.
func Create(dir string) (*File, error) {
	f, err := os.CreateTemp(dir, "part-*.spill")
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	return &File{f: f}, nil
}

// Append serializes a batch to the end of the file as column-contiguous
// blocks (split at relation.MaxBlockTuples, so re-readers need a bounded
// staging buffer however large the flushed backlog was) and returns the
// number of bytes written. The staging buffer is reused across calls, so a
// steady-state Append allocates nothing.
func (s *File) Append(b *relation.Batch) (int64, error) {
	s.enc = s.enc[:0]
	n := b.Len()
	for lo := 0; lo < n; lo += relation.MaxBlockTuples {
		hi := lo + relation.MaxBlockTuples
		if hi > n {
			hi = n
		}
		s.enc = relation.AppendBlockBytes(s.enc, b, lo, hi)
	}
	if _, err := s.f.Write(s.enc); err != nil {
		return 0, fmt.Errorf("spill: append to %s: %w", s.f.Name(), err)
	}
	s.tuples += n
	return int64(len(s.enc)), nil
}

// Tuples returns the number of tuples written so far.
func (s *File) Tuples() int { return s.tuples }

// ReadBatches rewinds the file and streams its tuples back through fn in
// pool-sized columnar batches. One batch is drawn from the pool for the
// whole drain and reused across calls (no per-batch Get/Put churn), so the
// batch is valid only during each call: fn must copy what it keeps —
// inserting into a hash table or emitting downstream both copy. Decoding is
// three bulk column loops per block (the column-contiguous wire format).
func (s *File) ReadBatches(pool *relation.BatchPool, fn func(batch *relation.Batch) error) error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("spill: rewind %s: %w", s.f.Name(), err)
	}
	batch := pool.Get()
	defer pool.Put(batch)
	per := pool.BatchSize()
	var hdr [relation.BlockHeaderBytes]byte
	for {
		if _, err := io.ReadFull(s.f, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("spill: read block header of %s: %w", s.f.Name(), err)
		}
		n, err := relation.BlockCount(hdr[:])
		if err != nil {
			return fmt.Errorf("spill: %s: %w", s.f.Name(), err)
		}
		body := n * relation.TupleWireBytes
		if cap(s.enc) < body {
			s.enc = make([]byte, body)
		}
		buf := s.enc[:body]
		if _, err := io.ReadFull(s.f, buf); err != nil {
			return fmt.Errorf("spill: read block body of %s: %w", s.f.Name(), err)
		}
		for lo := 0; lo < n; lo += per {
			hi := lo + per
			if hi > n {
				hi = n
			}
			batch.Reset()
			batch.AppendColumns(buf, n, lo, hi)
			if err := fn(batch); err != nil {
				return err
			}
		}
	}
}

// Close closes and removes the file. It is idempotent; the containing
// directory is removed wholesale at the end of the run as a backstop, so
// Close only needs to release the descriptor promptly.
func (s *File) Close() error {
	if s.f == nil {
		return nil
	}
	name := s.f.Name()
	err := s.f.Close()
	s.f = nil
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	return err
}
