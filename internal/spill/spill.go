// Package spill provides the out-of-core substrate of the "spill" runtime:
// a per-run memory meter that decides *when* to spill, and temp-file
// partitions that hold the overflow in the fixed-width binary tuple format
// of relation.AppendTupleBytes.
//
// The paper's machine is main-memory (PRISMA/DB keeps every fragment and
// hash table resident); its Section 5 discussion of disk-based machines is
// where this package picks up: when the tuples buffered by a run exceed a
// budget, join operands overflow to disk and the joins switch to Grace-style
// partition-at-a-time processing (hashjoin.Grace). The meter is deliberately
// a soft budget — an accounting of pooled batches and buffered operand
// tuples that triggers spilling, not an allocator that can fail — which is
// how real systems bound join memory too.
package spill

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"multijoin/internal/relation"
)

// DefaultBudgetBytes is the per-run memory budget the spill runtime applies
// when the caller sets none: 64 MiB, a few PRISMA-node memories' worth —
// small enough that genuinely large runs spill, large enough that the
// paper-sized experiments mostly stay in memory.
const DefaultBudgetBytes = 64 << 20

// Meter tracks one run's live tuple bytes against its budget and aggregates
// the run's spill statistics. All methods are safe for concurrent use; the
// accounting is advisory (Add never fails), Over is the signal consumers
// act on by spilling.
type Meter struct {
	budget       int64
	live         atomic.Int64
	spilledBytes atomic.Int64
	partitions   atomic.Int64
	ioNanos      atomic.Int64
}

// NewMeter returns a meter enforcing the given budget in bytes.
func NewMeter(budget int64) *Meter {
	if budget < 1 {
		budget = DefaultBudgetBytes
	}
	return &Meter{budget: budget}
}

// Budget returns the configured budget in bytes.
func (m *Meter) Budget() int64 { return m.budget }

// Add adjusts the live-byte balance (positive when tuples are buffered,
// negative when they are released or written out). It is the hook shape
// relation.NewBatchPoolAccounted expects.
func (m *Meter) Add(deltaBytes int64) { m.live.Add(deltaBytes) }

// Live returns the current live-byte balance.
func (m *Meter) Live() int64 { return m.live.Load() }

// Over reports whether the live balance exceeds the budget — the signal to
// spill.
func (m *Meter) Over() bool { return m.live.Load() > m.budget }

// NoteSpill records bytes written to a spill file.
func (m *Meter) NoteSpill(bytes int64) { m.spilledBytes.Add(bytes) }

// NotePartition records one newly created spill-partition file.
func (m *Meter) NotePartition() { m.partitions.Add(1) }

// NoteIO records wall time spent on spill-file I/O (writes and re-reads).
func (m *Meter) NoteIO(d time.Duration) { m.ioNanos.Add(int64(d)) }

// SpilledBytes returns the total bytes written to spill files.
func (m *Meter) SpilledBytes() int64 { return m.spilledBytes.Load() }

// Partitions returns the number of spill-partition files created.
func (m *Meter) Partitions() int { return int(m.partitions.Load()) }

// IOTime returns the total wall time spent on spill-file I/O.
func (m *Meter) IOTime() time.Duration { return time.Duration(m.ioNanos.Load()) }

// File is one spill partition: an append-only temp file of wire-format
// tuples, re-read sequentially exactly once (partition-at-a-time
// processing). It is owned by one goroutine at a time — first the operator
// buffering into it, then the drain reading it back — and needs no lock.
type File struct {
	f      *os.File
	tuples int
	enc    []byte // reusable encode/read staging buffer
}

// Create opens a new spill partition file in dir. The file is created with
// O_EXCL semantics by os.CreateTemp, so concurrent processes cannot
// collide.
func Create(dir string) (*File, error) {
	f, err := os.CreateTemp(dir, "part-*.spill")
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	return &File{f: f}, nil
}

// Append serializes a batch to the end of the file and returns the number
// of bytes written. The staging buffer is reused across calls, so a
// steady-state Append allocates nothing.
func (s *File) Append(batch []relation.Tuple) (int64, error) {
	s.enc = relation.AppendTupleBytes(s.enc[:0], batch)
	if _, err := s.f.Write(s.enc); err != nil {
		return 0, fmt.Errorf("spill: append to %s: %w", s.f.Name(), err)
	}
	s.tuples += len(batch)
	return int64(len(s.enc)), nil
}

// Tuples returns the number of tuples written so far.
func (s *File) Tuples() int { return s.tuples }

// ReadBatches rewinds the file and streams its tuples back in batches drawn
// from pool, invoking fn for each. The batch is valid only during the call:
// ReadBatches returns it to the pool afterwards (fn must copy what it
// keeps — inserting into a hash table or emitting downstream both copy).
func (s *File) ReadBatches(pool *relation.BatchPool, fn func(batch []relation.Tuple) error) error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("spill: rewind %s: %w", s.f.Name(), err)
	}
	chunk := pool.BatchSize() * relation.TupleWireBytes
	if cap(s.enc) < chunk {
		s.enc = make([]byte, chunk)
	}
	buf := s.enc[:chunk]
	for {
		n, err := io.ReadFull(s.f, buf)
		if err == io.EOF {
			return nil
		}
		if err != nil && err != io.ErrUnexpectedEOF {
			return fmt.Errorf("spill: read %s: %w", s.f.Name(), err)
		}
		batch := pool.Get()
		batch, derr := relation.TuplesFromBytes(batch, buf[:n])
		if derr == nil {
			derr = fn(batch)
		}
		pool.Put(batch)
		if derr != nil {
			return derr
		}
		if err == io.ErrUnexpectedEOF {
			return nil
		}
	}
}

// Close closes and removes the file. It is idempotent; the containing
// directory is removed wholesale at the end of the run as a backstop, so
// Close only needs to release the descriptor promptly.
func (s *File) Close() error {
	if s.f == nil {
		return nil
	}
	name := s.f.Name()
	err := s.f.Close()
	s.f = nil
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	return err
}
