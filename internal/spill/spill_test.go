package spill

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"multijoin/internal/relation"
)

// TestFileRoundTrip writes batches of varying sizes and reads them back in
// pool-sized batches, asserting the tuple sequence survives.
func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var want []relation.Tuple
	for i := 0; i < 10; i++ {
		var batch relation.Batch
		for j := 0; j <= i*7; j++ {
			tp := relation.Tuple{Unique1: int64(i), Unique2: int64(j), Check: uint64(i*1000 + j)}
			batch.AppendTuple(tp)
			want = append(want, tp)
		}
		if _, err := f.Append(&batch); err != nil {
			t.Fatal(err)
		}
	}
	if f.Tuples() != len(want) {
		t.Fatalf("Tuples() = %d, want %d", f.Tuples(), len(want))
	}
	pool := relation.NewBatchPool(16, 4)
	var got []relation.Tuple
	err = f.ReadBatches(pool, func(batch *relation.Batch) error {
		if batch.Len() > 16 {
			t.Errorf("read batch of %d tuples exceeds pool size 16", batch.Len())
		}
		got = append(got, batch.Tuples()...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tuple %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestFileCloseRemoves asserts Close removes the temp file and is
// idempotent.
func TestFileCloseRemoves(t *testing.T) {
	dir := t.TempDir()
	f, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	var one relation.Batch
	one.AppendTuple(relation.Tuple{Unique1: 1})
	if _, err := f.Append(&one); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	left, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("Close left files behind: %v", left)
	}
}

// TestFileReadEmpty asserts an empty partition streams zero batches.
func TestFileReadEmpty(t *testing.T) {
	f, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pool := relation.NewBatchPool(8, 2)
	calls := 0
	if err := f.ReadBatches(pool, func(*relation.Batch) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("empty file delivered %d batches", calls)
	}
}

// TestMeter exercises the budget signal and the statistics counters.
func TestMeter(t *testing.T) {
	m := NewMeter(100)
	if m.Over() {
		t.Fatal("fresh meter is over budget")
	}
	m.Add(80)
	if m.Over() {
		t.Fatal("80/100 reported over budget")
	}
	m.Add(40)
	if !m.Over() {
		t.Fatal("120/100 not reported over budget")
	}
	m.Add(-60)
	if m.Over() {
		t.Fatal("60/100 still over budget after release")
	}
	m.NoteSpill(24)
	m.NotePartition()
	m.NoteIO(time.Millisecond)
	if m.SpilledBytes() != 24 || m.Partitions() != 1 || m.IOTime() != time.Millisecond {
		t.Fatalf("stats = (%d, %d, %v), want (24, 1, 1ms)", m.SpilledBytes(), m.Partitions(), m.IOTime())
	}
	if m.Live() != 60 {
		t.Fatalf("Live() = %d, want 60", m.Live())
	}
}

// TestMeterDefaultBudget asserts a non-positive budget falls back to the
// documented default.
func TestMeterDefaultBudget(t *testing.T) {
	if got := NewMeter(0).Budget(); got != DefaultBudgetBytes {
		t.Fatalf("NewMeter(0).Budget() = %d, want %d", got, DefaultBudgetBytes)
	}
}

// TestCreateUsesDir asserts partitions land in the given directory (the
// per-run temp dir the runtime removes wholesale).
func TestCreateUsesDir(t *testing.T) {
	dir := t.TempDir()
	f, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("Create made %d entries in dir, want 1", len(entries))
	}
}

// TestMeterReserve pins the reservation accounting: Reserve pre-charges the
// shared balance, Add only moves it for residency beyond the reservation,
// and Settle returns exactly the reservation plus overage — so the root is
// back to zero however the child's net moved.
func TestMeterReserve(t *testing.T) {
	root := NewMeter(1 << 20)
	child := root.Child()
	child.Reserve(1000)
	if got := root.Live(); got != 1000 {
		t.Fatalf("Live after Reserve(1000) = %d, want 1000", got)
	}
	if got := child.Reserved(); got != 1000 {
		t.Fatalf("Reserved() = %d, want 1000", got)
	}
	// Residency inside the reservation does not move the shared balance.
	child.Add(600)
	if got := root.Live(); got != 1000 {
		t.Fatalf("Live after Add(600) within reservation = %d, want 1000", got)
	}
	// Crossing the reservation charges only the overage.
	child.Add(700) // net 1300, overage 300
	if got := root.Live(); got != 1300 {
		t.Fatalf("Live after crossing reservation = %d, want 1300", got)
	}
	// Dropping back under the reservation returns the overage.
	child.Add(-500) // net 800
	if got := root.Live(); got != 1000 {
		t.Fatalf("Live after dropping under reservation = %d, want 1000", got)
	}
	child.Settle()
	if got := root.Live(); got != 0 {
		t.Fatalf("Live after Settle = %d, want 0", got)
	}
	if got := child.Reserved(); got != 0 {
		t.Fatalf("Reserved after Settle = %d, want 0", got)
	}
}

// TestMeterSettleWithOverage asserts Settle releases reservation + overage
// when the run ends while over its estimate.
func TestMeterSettleWithOverage(t *testing.T) {
	root := NewMeter(1 << 20)
	child := root.Child()
	child.Reserve(100)
	child.Add(350) // 250 over the reservation
	if got := root.Live(); got != 350 {
		t.Fatalf("Live = %d, want 350 (reservation 100 + overage 250)", got)
	}
	child.Settle()
	if got := root.Live(); got != 0 {
		t.Fatalf("Live after Settle = %d, want 0", got)
	}
}

// TestMeterSettleNegativeNet asserts a child whose net went negative (it
// released batches it did not allocate, e.g. pool churn across runs) still
// settles the root back to zero.
func TestMeterSettleNegativeNet(t *testing.T) {
	root := NewMeter(1 << 20)
	a := root.Child()
	b := root.Child()
	a.Reserve(200)
	a.Add(500)  // a net +500: live = 200 + 300 overage = 500
	b.Add(-500) // b net -500: live = 0
	a.Settle()  // releases 200 + 300
	b.Settle()  // releases -500
	if got := root.Live(); got != 0 {
		t.Fatalf("Live after both settle = %d, want 0", got)
	}
}

// TestMeterReserveZeroNoop asserts Reserve(<=0) is a no-op and plain meters
// keep the original Add/Settle fast path.
func TestMeterReserveZeroNoop(t *testing.T) {
	root := NewMeter(1 << 20)
	child := root.Child()
	child.Reserve(0)
	child.Reserve(-5)
	child.Add(300)
	if got := root.Live(); got != 300 {
		t.Fatalf("Live = %d, want 300", got)
	}
	child.Settle()
	if got := root.Live(); got != 0 {
		t.Fatalf("Live after Settle = %d, want 0", got)
	}
}
