// Package optimizer implements phase one of the paper's two-phase
// optimization (Section 1.2): choosing the join tree with minimal *total*
// execution cost, ignoring parallelism. Phase two — parallelizing the chosen
// tree — is the subject of package strategy.
//
// The optimizer works on chain queries (the paper's workload): relations
// R0..R{k-1} joined on shared boundary attributes, so candidate trees are
// exactly the parenthesizations of the chain and contain no cartesian
// products. Costs use the paper's formula a*n1 + b*n2 + c*r (Section 4.3).
// Two search spaces are supported: the System R linear-tree space [SAC79]
// and the full bushy space ([KBZ86] argues linear-only is a poor fit for
// parallel systems). Dynamic programming over chain spans finds the optimum
// in O(k^2) / O(k^3).
//
// For the paper's regular workload — equal cardinalities, 1:1 joins — every
// tree has the same total cost; the optimizer (and a test) confirms this,
// which is precisely why the paper can study parallelization in isolation.
package optimizer

import (
	"fmt"
	"math"

	"multijoin/internal/costmodel"
	"multijoin/internal/jointree"
)

// Catalog holds the statistics of a chain query: per-relation cardinalities
// and per-boundary join selectivities. Sel[i] is the selectivity of the join
// predicate between relation i and relation i+1 (len(Sel) == len(Cards)-1):
// |span(lo,hi)| = prod(Cards[lo..hi]) * prod(Sel[lo..hi-1]).
type Catalog struct {
	Cards []float64
	Sel   []float64
}

// Uniform returns the paper's regular catalog: k relations of cardinality
// card with 1:1 joins (selectivity 1/card), so every intermediate result has
// cardinality card again.
func Uniform(k int, card float64) Catalog {
	c := Catalog{Cards: make([]float64, k), Sel: make([]float64, k-1)}
	for i := range c.Cards {
		c.Cards[i] = card
	}
	for i := range c.Sel {
		c.Sel[i] = 1 / card
	}
	return c
}

// Validate checks structural consistency.
func (c Catalog) Validate() error {
	if len(c.Cards) < 2 {
		return fmt.Errorf("optimizer: need at least 2 relations, got %d", len(c.Cards))
	}
	if len(c.Sel) != len(c.Cards)-1 {
		return fmt.Errorf("optimizer: need %d selectivities, got %d", len(c.Cards)-1, len(c.Sel))
	}
	for i, v := range c.Cards {
		if v <= 0 {
			return fmt.Errorf("optimizer: non-positive cardinality %g for R%d", v, i)
		}
	}
	for i, s := range c.Sel {
		if s <= 0 {
			return fmt.Errorf("optimizer: non-positive selectivity %g at boundary %d", s, i)
		}
	}
	return nil
}

// NumRelations returns the chain length.
func (c Catalog) NumRelations() int { return len(c.Cards) }

// SpanCard estimates the cardinality of the join of chain span [lo, hi].
func (c Catalog) SpanCard(lo, hi int) float64 {
	card := 1.0
	for i := lo; i <= hi; i++ {
		card *= c.Cards[i]
	}
	for i := lo; i < hi; i++ {
		card *= c.Sel[i]
	}
	return card
}

// Space selects the plan search space.
type Space int

const (
	// LinearSpace restricts to linear trees (one operand of every join is
	// a base relation), as System R does.
	LinearSpace Space = iota
	// BushySpace searches all parenthesizations of the chain.
	BushySpace
)

// String names the space.
func (s Space) String() string {
	if s == LinearSpace {
		return "linear"
	}
	return "bushy"
}

// Result is an optimization outcome: the chosen tree (finalized, with
// post-order join ids) and its estimated total cost in work units.
type Result struct {
	Tree *jointree.Node
	Cost float64
}

// Optimize returns a minimal-total-cost join tree for the catalog within the
// given search space, via dynamic programming over chain spans.
func Optimize(c Catalog, space Space) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	k := len(c.Cards)
	// best[lo][hi] = minimal total cost of evaluating span [lo, hi];
	// split[lo][hi] = the mid chosen (span = [lo,mid] join [mid+1,hi]).
	best := make([][]float64, k)
	split := make([][]int, k)
	for i := range best {
		best[i] = make([]float64, k)
		split[i] = make([]int, k)
		for j := range best[i] {
			best[i][j] = math.Inf(1)
			split[i][j] = -1
		}
		best[i][i] = 0
	}
	for span := 2; span <= k; span++ {
		for lo := 0; lo+span-1 < k; lo++ {
			hi := lo + span - 1
			for mid := lo; mid < hi; mid++ {
				leftBase := mid == lo
				rightBase := mid+1 == hi
				if space == LinearSpace && !leftBase && !rightBase {
					continue
				}
				n1 := c.SpanCard(lo, mid)
				n2 := c.SpanCard(mid+1, hi)
				r := c.SpanCard(lo, hi)
				cost := best[lo][mid] + best[mid+1][hi] +
					costmodel.JoinCost(n1, n2, r, leftBase, rightBase)
				if cost < best[lo][hi] {
					best[lo][hi] = cost
					split[lo][hi] = mid
				}
			}
		}
	}
	var build func(lo, hi int) *jointree.Node
	build = func(lo, hi int) *jointree.Node {
		if lo == hi {
			return jointree.NewLeaf(lo)
		}
		mid := split[lo][hi]
		// Convention: the lower span is the build operand. Mirroring is
		// free if a strategy prefers right-oriented trees (Section 5).
		return jointree.NewJoin(build(lo, mid), build(mid+1, hi))
	}
	tree := build(0, k-1)
	if err := jointree.Finalize(tree); err != nil {
		return Result{}, fmt.Errorf("optimizer: built invalid tree: %w", err)
	}
	return Result{Tree: tree, Cost: best[0][k-1]}, nil
}

// TotalCost evaluates the total cost of a given (finalized) tree under the
// catalog — the objective the DP minimizes.
func TotalCost(c Catalog, root *jointree.Node) float64 {
	if root.IsLeaf() {
		return 0
	}
	b, p := root.Build, root.Probe
	n1 := c.SpanCard(b.Lo, b.Hi)
	n2 := c.SpanCard(p.Lo, p.Hi)
	r := c.SpanCard(root.Lo, root.Hi)
	return TotalCost(c, b) + TotalCost(c, p) +
		costmodel.JoinCost(n1, n2, r, b.IsLeaf(), p.IsLeaf())
}

// AllTrees enumerates every parenthesization of a k-relation chain (Catalan
// number C_{k-1} trees), finalized. Intended for exhaustively verifying the
// DP on small chains; k is limited to 12 to bound the output.
func AllTrees(k int) ([]*jointree.Node, error) {
	if k < 1 || k > 12 {
		return nil, fmt.Errorf("optimizer: AllTrees supports 1..12 relations, got %d", k)
	}
	var gen func(lo, hi int) []*jointree.Node
	gen = func(lo, hi int) []*jointree.Node {
		if lo == hi {
			return []*jointree.Node{jointree.NewLeaf(lo)}
		}
		var out []*jointree.Node
		for mid := lo; mid < hi; mid++ {
			for _, l := range gen(lo, mid) {
				for _, r := range gen(mid+1, hi) {
					out = append(out, jointree.NewJoin(jointree.Clone(l), jointree.Clone(r)))
				}
			}
		}
		return out
	}
	trees := gen(0, k-1)
	for _, t := range trees {
		if err := jointree.Finalize(t); err != nil {
			return nil, err
		}
	}
	return trees, nil
}
