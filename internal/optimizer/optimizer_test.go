package optimizer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"multijoin/internal/jointree"
)

func TestUniformCatalog(t *testing.T) {
	c := Uniform(10, 5000)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumRelations() != 10 {
		t.Errorf("NumRelations = %d", c.NumRelations())
	}
	// Every span of a uniform 1:1 catalog has cardinality card.
	for lo := 0; lo < 10; lo++ {
		for hi := lo; hi < 10; hi++ {
			if got := c.SpanCard(lo, hi); math.Abs(got-5000) > 1e-6 {
				t.Fatalf("SpanCard(%d,%d) = %g, want 5000", lo, hi, got)
			}
		}
	}
}

func TestCatalogValidate(t *testing.T) {
	bad := []Catalog{
		{Cards: []float64{10}},
		{Cards: []float64{10, 10}, Sel: []float64{}},
		{Cards: []float64{10, 0}, Sel: []float64{0.1}},
		{Cards: []float64{10, 10}, Sel: []float64{0}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("catalog %d should be invalid", i)
		}
	}
}

// TestUniformAllTreesEqualCost verifies the paper's workload property
// (Section 4.1): "All possible join trees for this query have the same total
// execution costs". Every parenthesization of the uniform chain must cost
// the same... except that joins of base relations cost less than joins of
// intermediates, so costs DO differ by tree in the a/b model. What is equal
// is the cost under a fixed tree-shape class; here we check the DP optimum
// is a linear tree (maximizing base-relation operands) and that all five
// paper shapes have costs within the narrow band implied by the formula.
func TestUniformShapeCosts(t *testing.T) {
	const k, card = 10, 1000.0
	c := Uniform(k, card)
	// Under the Section 4.3 formula, every join costs 4N..6N depending on
	// how many operands are base relations. A k-relation tree has k base
	// leaves and k-2 intermediate operands, so total cost is the same for
	// every tree: (k leaves)*1N + (k-2 intermediates)*2N + (k-1 results)*2N.
	want := card*float64(k) + 2*card*float64(k-2) + 2*card*float64(k-1)
	for _, s := range jointree.Shapes {
		tree, err := jointree.BuildShape(s, k)
		if err != nil {
			t.Fatal(err)
		}
		if got := TotalCost(c, tree); math.Abs(got-want) > 1e-6 {
			t.Errorf("%v total cost %g, want %g", s, got, want)
		}
	}
}

func TestOptimizeUniformMatchesShapes(t *testing.T) {
	c := Uniform(8, 500)
	for _, space := range []Space{LinearSpace, BushySpace} {
		res, err := Optimize(c, space)
		if err != nil {
			t.Fatal(err)
		}
		if jointree.NumJoins(res.Tree) != 7 {
			t.Errorf("%v: %d joins", space, jointree.NumJoins(res.Tree))
		}
		if got := TotalCost(c, res.Tree); math.Abs(got-res.Cost) > 1e-6 {
			t.Errorf("%v: reported cost %g but TotalCost %g", space, res.Cost, got)
		}
	}
}

func TestLinearSpaceProducesLinearTree(t *testing.T) {
	c := Uniform(7, 100)
	res, err := Optimize(c, LinearSpace)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jointree.Joins(res.Tree) {
		if !j.Build.IsLeaf() && !j.Probe.IsLeaf() {
			t.Fatal("linear space produced a bushy join")
		}
	}
}

func randomCatalog(rng *rand.Rand, k int) Catalog {
	c := Catalog{Cards: make([]float64, k), Sel: make([]float64, k-1)}
	for i := range c.Cards {
		c.Cards[i] = float64(rng.Intn(1000) + 1)
	}
	for i := range c.Sel {
		c.Sel[i] = math.Pow(10, -rng.Float64()*3) // 0.001 .. 1
	}
	return c
}

// TestDPOptimalAgainstExhaustive: on random catalogs the bushy DP must match
// the exhaustive minimum over all parenthesizations, and the linear DP the
// minimum over all linear trees.
func TestDPOptimalAgainstExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		k := rng.Intn(5) + 3 // 3..7 relations
		c := randomCatalog(rng, k)
		trees, err := AllTrees(k)
		if err != nil {
			t.Fatal(err)
		}
		bestBushy, bestLinear := math.Inf(1), math.Inf(1)
		for _, tree := range trees {
			cost := TotalCost(c, tree)
			if cost < bestBushy {
				bestBushy = cost
			}
			linear := true
			for _, j := range jointree.Joins(tree) {
				if !j.Build.IsLeaf() && !j.Probe.IsLeaf() {
					linear = false
					break
				}
			}
			if linear && cost < bestLinear {
				bestLinear = cost
			}
		}
		for _, tc := range []struct {
			space Space
			want  float64
		}{{BushySpace, bestBushy}, {LinearSpace, bestLinear}} {
			res, err := Optimize(c, tc.space)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.Cost-tc.want)/tc.want > 1e-9 {
				t.Errorf("trial %d %v: DP cost %g, exhaustive %g", trial, tc.space, res.Cost, tc.want)
			}
		}
	}
}

// TestBushyNeverWorseThanLinear: the bushy space contains the linear space.
func TestBushyNeverWorseThanLinear(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%6) + 3
		rng := rand.New(rand.NewSource(seed))
		c := randomCatalog(rng, k)
		b, err1 := Optimize(c, BushySpace)
		l, err2 := Optimize(c, LinearSpace)
		if err1 != nil || err2 != nil {
			return false
		}
		return b.Cost <= l.Cost+1e-9*l.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAllTreesCatalanCounts(t *testing.T) {
	// C_{k-1} parenthesizations: 1, 1, 2, 5, 14, 42 for k = 1..6.
	want := map[int]int{1: 1, 2: 1, 3: 2, 4: 5, 5: 14, 6: 42}
	for k, n := range want {
		trees, err := AllTrees(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(trees) != n {
			t.Errorf("AllTrees(%d) = %d trees, want %d", k, len(trees), n)
		}
	}
	if _, err := AllTrees(20); err == nil {
		t.Error("AllTrees must refuse large chains")
	}
}

func TestOptimizeRejectsInvalidCatalog(t *testing.T) {
	if _, err := Optimize(Catalog{Cards: []float64{1}}, BushySpace); err == nil {
		t.Error("invalid catalog must fail")
	}
}

func TestSkewedCatalogPrefersSmallIntermediates(t *testing.T) {
	// One very selective boundary in the middle: the optimizer must join
	// across it early to shrink intermediates. Relations: 100 each;
	// boundary 2 has selectivity 1e-4 (result 1 tuple), others 0.01
	// (result 100).
	c := Catalog{
		Cards: []float64{100, 100, 100, 100, 100},
		Sel:   []float64{0.01, 1e-4, 0.01, 0.01},
	}
	res, err := Optimize(c, BushySpace)
	if err != nil {
		t.Fatal(err)
	}
	// The subtree containing span [1,2] (the selective join) must appear:
	// check that relations 1 and 2 are joined before anything else touches
	// them, i.e. some join node has exactly the span [1,2].
	found := false
	for _, j := range jointree.Joins(res.Tree) {
		if j.Lo == 1 && j.Hi == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("optimizer did not join the selective boundary first: %v", res.Tree)
	}
	if res.Cost >= TotalCost(c, mustShape(t, jointree.LeftLinear, 5)) {
		t.Error("optimal bushy tree should beat naive left-linear on skewed catalog")
	}
}

func mustShape(t *testing.T, s jointree.Shape, k int) *jointree.Node {
	t.Helper()
	tree, err := jointree.BuildShape(s, k)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestSpaceString(t *testing.T) {
	if LinearSpace.String() != "linear" || BushySpace.String() != "bushy" {
		t.Error("space names wrong")
	}
}
