package pipemodel

import (
	"testing"

	"multijoin/internal/core"
	"multijoin/internal/costmodel"
	"multijoin/internal/jointree"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
)

func model() Model { return New(costmodel.Default()) }

func TestLinearStepDelayConstant(t *testing.T) {
	m := model()
	small := m.StepDelay(false, 1000, 4)
	large := m.StepDelay(false, 64000, 4)
	if small != large {
		t.Errorf("linear step delay must not depend on operand size: %v vs %v", small, large)
	}
	if small <= 0 {
		t.Error("step delay must be positive")
	}
}

func TestBushyStepDelayGrowsWithOperands(t *testing.T) {
	m := model()
	prev := m.StepDelay(true, 1000, 4)
	for _, card := range []float64{2000, 4000, 8000} {
		cur := m.StepDelay(true, card, 4)
		if cur <= prev {
			t.Errorf("bushy step delay must grow with card: %v at %g after %v", cur, card, prev)
		}
		prev = cur
	}
	// And shrink with more processors (the Figure 10 explanation).
	few := m.StepDelay(true, 8000, 2)
	many := m.StepDelay(true, 8000, 16)
	if many >= few {
		t.Errorf("bushy step delay must shrink with processors: %v (16p) vs %v (2p)", many, few)
	}
}

func TestBushyExceedsLinear(t *testing.T) {
	m := model()
	if m.StepDelay(true, 4000, 4) <= m.StepDelay(false, 4000, 4) {
		t.Error("a bushy step must cost at least a linear step")
	}
}

func TestClassify(t *testing.T) {
	tree, err := jointree.BuildShape(jointree.LeftBushy, 8)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[PipelineKind]int{}
	for _, j := range jointree.Joins(tree) {
		counts[Classify(j)]++
	}
	// Left bushy over 8 relations: 4 leaf joins, 3 bushy chain steps.
	if counts[LeafJoin] != 4 || counts[BushyStep] != 3 || counts[LinearStep] != 0 {
		t.Errorf("classification = %v", counts)
	}
	ll, _ := jointree.BuildShape(jointree.LeftLinear, 8)
	counts = map[PipelineKind]int{}
	for _, j := range jointree.Joins(ll) {
		counts[Classify(j)]++
	}
	if counts[LeafJoin] != 1 || counts[LinearStep] != 6 {
		t.Errorf("left-linear classification = %v", counts)
	}
	if LeafJoin.String() != "leaf" || LinearStep.String() != "linear-step" || BushyStep.String() != "bushy-step" {
		t.Error("kind names wrong")
	}
}

func TestLinearResponseGrowsPerStep(t *testing.T) {
	m := model()
	prev := m.LinearResponse(3, 4000, 8)
	for k := 4; k <= 10; k++ {
		cur := m.LinearResponse(k, 4000, 4*(k-1))
		// With processors scaled to keep per-join parallelism constant,
		// response grows roughly linearly in pipeline length.
		if cur <= prev {
			t.Errorf("linear response must grow with chain length: %v at k=%d after %v", cur, k, prev)
		}
		prev = cur
	}
	if m.LinearResponse(1, 100, 4) != 0 {
		t.Error("degenerate chain must cost 0")
	}
}

// TestModelMatchesSimulatorTrend compares the analytical model against the
// discrete-event simulator on the Section 2.3.3 setups: both must agree that
// (a) linear-chain response grows by a near-constant per step, and (b) the
// bushy per-step delay grows with cardinality.
func TestModelMatchesSimulatorTrend(t *testing.T) {
	m := model()
	// (b): bushy trees, fixed shape, growing cardinality. Compare the
	// growth factor of simulated response vs modeled response.
	shape, _ := jointree.BuildShape(jointree.LeftBushy, 8)
	simAt := func(card int) float64 {
		db, err := wisconsin.Chain(wisconsin.Config{Relations: 8, Cardinality: card, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Query{DB: db, Tree: shape, Strategy: strategy.FP, Procs: 28,
			Params: costmodel.Default()}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.ResponseTime.Seconds()
	}
	simGrowth := simAt(8000) / simAt(1000)
	modelGrowth := float64(m.BushyResponse(3, 8000, 28)) / float64(m.BushyResponse(3, 1000, 28))
	if simGrowth < 2 || modelGrowth < 2 {
		t.Errorf("both must show strong growth with cardinality: sim %.2fx, model %.2fx",
			simGrowth, modelGrowth)
	}
	if ratio := simGrowth / modelGrowth; ratio < 0.3 || ratio > 3 {
		t.Errorf("simulator growth %.2fx and model growth %.2fx diverge beyond 3x",
			simGrowth, modelGrowth)
	}
}

func TestCriticalPathOrdersShapes(t *testing.T) {
	m := model()
	ll, _ := jointree.BuildShape(jointree.LeftLinear, 10)
	wb, _ := jointree.BuildShape(jointree.WideBushy, 10)
	// Small operands: the bushy ramp is negligible, so the deeper tree
	// (left-linear, 9 steps) has the longer critical path — "when the join
	// operands are small, a bushy tree works better" (Section 2.3.3).
	if m.CriticalPath(ll, 200, 4) <= m.CriticalPath(wb, 200, 4) {
		t.Error("small operands: linear critical path must exceed wide bushy")
	}
	// Large operands at low parallelism: the bushy steps' size-proportional
	// delay dominates and the ordering flips — "for larger operands linear
	// trees work better".
	if m.CriticalPath(ll, 50000, 4) >= m.CriticalPath(wb, 50000, 4) {
		t.Error("large operands: bushy critical path must exceed linear")
	}
}

func TestCrossoverCard(t *testing.T) {
	m := model()
	// Small operands: bushy faster; large operands: linear closes in
	// (constant vs proportional step delay). The crossover must be finite
	// and positive when bushy steps are expensive relative to the shorter
	// pipeline, or +Inf when bushy always wins; with 9 linear joins vs 3
	// bushy steps the bushy tree is shorter, so at tiny cards it must win.
	cross := m.CrossoverCard(9, 3, 12)
	bushySmall := m.BushyResponse(3, 500, 12)
	linearSmall := m.LinearResponse(10, 500, 12)
	if bushySmall >= linearSmall {
		t.Errorf("at 500 tuples the bushy tree must win: %v vs %v", bushySmall, linearSmall)
	}
	if cross <= 500 {
		t.Errorf("crossover %g inconsistent with bushy winning at 500", cross)
	}
}
