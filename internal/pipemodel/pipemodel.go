// Package pipemodel implements the analytical model of pipelined query
// execution from Wilschut & Apers [WiA93] / Wilschut & van Gils [WiG93] that
// the paper's Section 2.3.3 builds on:
//
//   - each step of a *linear* pipeline (a join with one base-relation
//     operand and one intermediate operand) adds a constant delay to the
//     response time, independent of operand size;
//
//   - each step of a *bushy* pipeline (a join with two intermediate
//     operands) adds a delay proportional to the size of its operands.
//
// The model predicts response times for pipelined (FP-style) execution from
// first principles: a join's output rate follows its input rate once its
// tables are warm, so a linear step shifts the stream by a fixed latency,
// while a bushy step cannot produce its k-th result before enough tuples of
// *both* intermediate operands have arrived — a data-dependent ramp whose
// expectation grows linearly with the operand cardinality.
//
// The package exists for the Section 2.3.3 reproduction: the experiment
// harness compares the simulator's measured response times against these
// closed forms (same trend, see EXPERIMENTS.md) and uses the model to
// explain FP's behaviour on bushy trees at low parallelism.
package pipemodel

import (
	"fmt"
	"math"

	"multijoin/internal/costmodel"
	"multijoin/internal/jointree"
	"multijoin/internal/sim"
)

// Model carries the machine parameters the analytical formulas need.
type Model struct {
	Params costmodel.Params
}

// New returns a model over the given machine parameters.
func New(p costmodel.Params) Model { return Model{Params: p} }

// StepDelay returns the expected delay one pipeline step adds to the
// response time. For a linear step (base operand + intermediate operand) the
// delay is constant: the time to fill and ship one transport batch plus the
// downstream per-batch processing latency. For a bushy step (two
// intermediate operands of the given cardinality, declustered over procs
// processors) the delay additionally grows linearly with the per-processor
// operand size: the last results require nearly all tuples of both operands
// to have arrived, so the completing tail is proportional to card/procs.
func (m Model) StepDelay(bushy bool, card float64, procs int) sim.Duration {
	if procs < 1 {
		procs = 1
	}
	// Constant component: one batch must be produced, shipped and consumed.
	batch := float64(m.Params.BatchTuples)
	perTuple := costmodel.UnitsHash + costmodel.UnitsResult
	constant := m.Params.WorkCost(batch*perTuple) + m.Params.NetLatency
	if !bushy {
		return constant
	}
	// Proportional component: the expected extra wait for matching tuples
	// of the second intermediate operand. With uniformly ordered arrivals,
	// the last fraction of matches is discovered only while the slower
	// operand drains: an expected residual of ~half the per-processor
	// operand processing time.
	perProc := card / float64(procs)
	ramp := m.Params.WorkCost(perProc * (costmodel.UnitsHash + costmodel.UnitsProbe) / 2)
	return constant + ramp
}

// LinearResponse estimates the response time of an FP execution of a linear
// tree over k relations of cardinality card on procs processors: the
// duration of one (dominating) join plus a constant delay per pipeline step.
func (m Model) LinearResponse(k int, card float64, procs int) sim.Duration {
	if k < 2 {
		return 0
	}
	joins := k - 1
	perJoin := procs / joins
	if perJoin < 1 {
		perJoin = 1
	}
	// One join's busy time: both operands hashed (and one probed) plus
	// results created, spread over its processors.
	units := card * (2*costmodel.UnitsHash + costmodel.UnitsNetReceive + costmodel.UnitsResult)
	joinTime := m.Params.WorkCost(units / float64(perJoin))
	return joinTime + sim.Duration(joins)*m.StepDelay(false, card, perJoin)
}

// BushyResponse estimates the response time of an FP execution of a
// long bushy tree (pairs of base relations joined, then chained through
// joins of two intermediates) with depth bushy steps.
func (m Model) BushyResponse(bushySteps int, card float64, procs int) sim.Duration {
	joins := 2*bushySteps + 1
	perJoin := procs / joins
	if perJoin < 1 {
		perJoin = 1
	}
	units := card * (2*costmodel.UnitsHash + costmodel.UnitsNetReceive + costmodel.UnitsResult)
	joinTime := m.Params.WorkCost(units / float64(perJoin))
	return joinTime + sim.Duration(bushySteps)*m.StepDelay(true, card, perJoin)
}

// PipelineKind classifies one join node of a tree for the model: a leaf
// join (two base operands), a linear step (one base, one intermediate) or a
// bushy step (two intermediates).
type PipelineKind int

const (
	// LeafJoin joins two base relations.
	LeafJoin PipelineKind = iota
	// LinearStep joins a base relation with an intermediate result.
	LinearStep
	// BushyStep joins two intermediate results.
	BushyStep
)

// String names the pipeline step kind.
func (k PipelineKind) String() string {
	switch k {
	case LeafJoin:
		return "leaf"
	case LinearStep:
		return "linear-step"
	case BushyStep:
		return "bushy-step"
	default:
		return fmt.Sprintf("PipelineKind(%d)", int(k))
	}
}

// Classify returns the pipeline kind of a join node.
func Classify(n *jointree.Node) PipelineKind {
	switch {
	case n.Build.IsLeaf() && n.Probe.IsLeaf():
		return LeafJoin
	case !n.Build.IsLeaf() && !n.Probe.IsLeaf():
		return BushyStep
	default:
		return LinearStep
	}
}

// CriticalPath estimates the FP response time of an arbitrary tree as the
// longest root-to-leaf accumulation of step delays plus the dominating join
// duration — the generalization used to explain Figures 9-13 trends.
func (m Model) CriticalPath(root *jointree.Node, card float64, procsPerJoin int) sim.Duration {
	if procsPerJoin < 1 {
		procsPerJoin = 1
	}
	units := card * (2*costmodel.UnitsHash + costmodel.UnitsNetReceive + costmodel.UnitsResult)
	joinTime := m.Params.WorkCost(units / float64(procsPerJoin))
	var walk func(n *jointree.Node) sim.Duration
	walk = func(n *jointree.Node) sim.Duration {
		if n == nil || n.IsLeaf() {
			return 0
		}
		var step sim.Duration
		switch Classify(n) {
		case BushyStep:
			step = m.StepDelay(true, card, procsPerJoin)
		default:
			step = m.StepDelay(false, card, procsPerJoin)
		}
		b, p := walk(n.Build), walk(n.Probe)
		if p > b {
			b = p
		}
		return b + step
	}
	return joinTime + walk(root)
}

// CrossoverCard estimates the operand cardinality at which a bushy tree of
// the given depth stops beating a linear tree of the given length under FP —
// the Section 2.3.3 observation that "when the join operands are small, a
// bushy tree works better, and for larger operands linear trees work
// better", solved from the closed forms. It returns +Inf when the bushy tree
// wins at every size (more processors per join can make that happen).
func (m Model) CrossoverCard(linearJoins, bushySteps, procs int) float64 {
	// Find card where LinearResponse == BushyResponse by bisection over a
	// generous range.
	lo, hi := 1.0, 1e9
	f := func(card float64) float64 {
		return float64(m.BushyResponse(bushySteps, card, procs) - m.LinearResponse(linearJoins+1, card, procs))
	}
	if f(hi) < 0 {
		return math.Inf(1)
	}
	if f(lo) > 0 {
		return lo
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}
