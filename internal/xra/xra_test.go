package xra

import (
	"strings"
	"testing"

	"multijoin/internal/relation"
)

// smallPlan builds a valid two-join plan by hand: two scans feed join 1,
// whose output and a third scan feed join 2, collected at the host.
func smallPlan() *Plan {
	return &Plan{
		Strategy: "TEST",
		Ops: []*Op{
			{ID: "scan:R0", Kind: OpScan, Leaf: 0, FragAttr: relation.Unique2, Procs: []int{0, 1}},
			{ID: "scan:R1", Kind: OpScan, Leaf: 1, FragAttr: relation.Unique1, Procs: []int{0, 1}},
			{
				ID: "join:1", Kind: OpSimpleJoin, JoinID: 1, BuildIsLower: true,
				Build: &Input{From: "scan:R0", Route: relation.Unique2},
				Probe: &Input{From: "scan:R1", Route: relation.Unique1},
				Procs: []int{0, 1},
			},
			{ID: "scan:R2", Kind: OpScan, Leaf: 2, FragAttr: relation.Unique1, Procs: []int{2, 3}},
			{
				ID: "join:2", Kind: OpPipeJoin, JoinID: 2, BuildIsLower: true,
				Build: &Input{From: "join:1", Route: relation.Unique2},
				Probe: &Input{From: "scan:R2", Route: relation.Unique1},
				Procs: []int{2, 3},
				After: []string{"join:1"},
			},
			{ID: "collect", Kind: OpCollect, In: &Input{From: "join:2", Route: relation.Unique1}, Procs: []int{HostProc}},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := smallPlan().Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Plan)
	}{
		{"empty plan", func(p *Plan) { p.Ops = nil }},
		{"empty id", func(p *Plan) { p.Ops[0].ID = "" }},
		{"duplicate id", func(p *Plan) { p.Ops[1].ID = "scan:R0" }},
		{"no procs", func(p *Plan) { p.Ops[2].Procs = nil }},
		{"scan with input", func(p *Plan) { p.Ops[0].In = &Input{From: "scan:R1", Route: relation.Unique1} }},
		{"negative leaf", func(p *Plan) { p.Ops[0].Leaf = -1 }},
		{"join missing build", func(p *Plan) { p.Ops[2].Build = nil }},
		{"collect missing input", func(p *Plan) { p.Ops[5].In = nil }},
		{"collect two procs", func(p *Plan) { p.Ops[5].Procs = []int{0, 1} }},
		{"unknown input", func(p *Plan) { p.Ops[2].Build.From = "nope" }},
		{"forward input reference", func(p *Plan) { p.Ops[2].Build.From = "join:2" }},
		{"unknown after", func(p *Plan) { p.Ops[4].After = []string{"ghost"} }},
		{"forward after", func(p *Plan) { p.Ops[2].After = []string{"join:2"} }},
		{"two collects", func(p *Plan) {
			p.Ops[4].Kind = OpCollect
			p.Ops[4].In = p.Ops[4].Build
			p.Ops[4].Build, p.Ops[4].Probe = nil, nil
			p.Ops[4].Procs = []int{0}
		}},
		{"unconsumed op", func(p *Plan) {
			p.Ops = append(p.Ops[:5:5], &Op{ID: "scan:R9", Kind: OpScan, Leaf: 9,
				FragAttr: relation.Unique1, Procs: []int{0}}, p.Ops[5])
		}},
	}
	for _, m := range mutations {
		p := smallPlan()
		m.mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestOpLookup(t *testing.T) {
	p := smallPlan()
	if p.Op("join:1") == nil || p.Op("ghost") != nil {
		t.Error("Op lookup wrong")
	}
	if p.Collect() == nil || p.Collect().ID != "collect" {
		t.Error("Collect lookup wrong")
	}
}

func TestNumProcesses(t *testing.T) {
	p := smallPlan()
	// 2+2+2+2+2+1 = 11 processes.
	if got := p.NumProcesses(); got != 11 {
		t.Errorf("NumProcesses = %d, want 11", got)
	}
}

func TestLocalEdgeDetection(t *testing.T) {
	p := smallPlan()
	scan0, join1 := p.Op("scan:R0"), p.Op("join:1")
	if !LocalEdge(scan0, join1, join1.Build) {
		t.Error("aligned scan edge must be local")
	}
	// Mismatched attribute.
	scan0.FragAttr = relation.Unique1
	if LocalEdge(scan0, join1, join1.Build) {
		t.Error("attribute mismatch must not be local")
	}
	scan0.FragAttr = relation.Unique2
	// Mismatched processors.
	scan0.Procs = []int{0, 2}
	if LocalEdge(scan0, join1, join1.Build) {
		t.Error("processor mismatch must not be local")
	}
	scan0.Procs = []int{0, 1}
	// Join outputs are never local.
	join2 := p.Op("join:2")
	if LocalEdge(join1, join2, join2.Build) {
		t.Error("join output must always redistribute")
	}
}

func TestNumStreams(t *testing.T) {
	p := smallPlan()
	// scan:R0 -> join:1 local: 2 streams; scan:R1 -> join:1 local: 2;
	// join:1 -> join:2 redistribution: 2x2 = 4; scan:R2 -> join:2 local: 2;
	// join:2 -> collect: 2x1 = 2. Total 12.
	if got := p.NumStreams(); got != 12 {
		t.Errorf("NumStreams = %d, want 12", got)
	}
}

func TestMaxProc(t *testing.T) {
	if got := smallPlan().MaxProc(); got != 3 {
		t.Errorf("MaxProc = %d, want 3", got)
	}
}

func TestSortProcs(t *testing.T) {
	p := smallPlan()
	p.Ops[0].Procs = []int{1, 0}
	p.SortProcs()
	if p.Ops[0].Procs[0] != 0 {
		t.Error("SortProcs did not sort")
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	p := smallPlan()
	text := Encode(p)
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse failed: %v\n%s", err, text)
	}
	if Encode(q) != text {
		t.Errorf("round trip not stable:\n%s\nvs\n%s", text, Encode(q))
	}
	if q.Strategy != "TEST" || len(q.Ops) != len(p.Ops) {
		t.Error("parsed plan differs structurally")
	}
	j2 := q.Op("join:2")
	if j2.Kind != OpPipeJoin || !j2.BuildIsLower || j2.JoinID != 2 {
		t.Errorf("join:2 fields lost: %+v", j2)
	}
	if len(j2.After) != 1 || j2.After[0] != "join:1" {
		t.Errorf("After lost: %v", j2.After)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                 // missing header
		"op id=x kind=scan",                // op before header
		"plan strategy=a\nplan strategy=b", // duplicate header
		"plan strategy=a\nfrobnicate x=1",  // unknown directive
		"plan strategy=a\nop id=s kind=scan leaf=z frag=unique1 procs=0",   // bad leaf
		"plan strategy=a\nop id=s kind=scan leaf=0 frag=unique9 procs=0",   // bad attr
		"plan strategy=a\nop id=s kind=wat leaf=0 frag=unique1 procs=0",    // bad kind
		"plan strategy=a\nop id=s kind=scan leaf=0 frag=unique1 procs=",    // empty procs
		"plan strategy=a\nop id=s kind=scan leaf=0 frag=unique1 procs=0,x", // bad proc
		"plan strategy=a\nop kind=scan leaf=0 frag=unique1 procs=0",        // missing id
		"plan strategy=a\nop id=c kind=collect in=xunique1 procs=-1",       // malformed input
		"plan strategy=a\nop id=s kind=scan leaf=0 frag procs=0",           // field not k=v
	}
	for i, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("case %d: expected parse error for %q", i, text)
		}
	}
}

func TestOpKindString(t *testing.T) {
	names := map[OpKind]string{
		OpScan: "scan", OpSimpleJoin: "hashjoin", OpPipeJoin: "pipejoin", OpCollect: "collect",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !strings.Contains(OpKind(42).String(), "42") {
		t.Error("unknown kind should include its number")
	}
}

func TestInputsOrder(t *testing.T) {
	p := smallPlan()
	in := p.Op("join:1").Inputs()
	if len(in) != 2 || in[0].From != "scan:R0" || in[1].From != "scan:R1" {
		t.Errorf("Inputs order wrong: %+v", in)
	}
	if len(p.Op("scan:R0").Inputs()) != 0 {
		t.Error("scan must have no inputs")
	}
	if len(p.Op("collect").Inputs()) != 1 {
		t.Error("collect must have one input")
	}
}
