// Package xra is the parallel execution plan representation of the
// reproduction, playing the role of PRISMA/DB's eXtended Relational Algebra
// [GWF91]: a single intermediate form in which every parallelization
// strategy can express its plan. An xra.Plan fixes, for every operation,
// the set of processors executing it (intra-operator parallelism with
// arbitrary degree), how its inputs are partitioned across those processors
// (the tuple-stream routing), and explicit start-after dependencies
// (inter-operator scheduling). The execution engine interprets plans without
// knowing which strategy produced them.
package xra

import (
	"fmt"
	"sort"

	"multijoin/internal/relation"
)

// OpKind enumerates plan operators.
type OpKind int

const (
	// OpScan reads a base-relation fragment stored at each of the
	// operator's processors and feeds its consumer.
	OpScan OpKind = iota
	// OpSimpleJoin is the two-phase build-probe hash-join: it consumes its
	// build input completely before processing (buffered) probe input.
	OpSimpleJoin
	// OpPipeJoin is the symmetric pipelining hash-join, processing both
	// inputs as they arrive and emitting results as early as possible.
	OpPipeJoin
	// OpCollect gathers the final result at the scheduler host.
	OpCollect
)

// String names the operator kind (also used by the text format).
func (k OpKind) String() string {
	switch k {
	case OpScan:
		return "scan"
	case OpSimpleJoin:
		return "hashjoin"
	case OpPipeJoin:
		return "pipejoin"
	case OpCollect:
		return "collect"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// HostProc is the pseudo processor id of the scheduler host, used by
// OpCollect. It is excluded from utilization accounting.
const HostProc = -1

// Input describes one dataflow edge into an operator: the producing
// operator and the attribute on which tuples must be hash-partitioned over
// the consumer's processors. Collect inputs gather instead and ignore Route.
type Input struct {
	From  string
	Route relation.Attr
}

// Op is one operator of a parallel plan, executed by one operation process
// per entry of Procs.
type Op struct {
	ID   string
	Kind OpKind

	// Join operators.
	JoinID       int  // the join's label (the numbers in the paper's diagrams)
	BuildIsLower bool // whether the build operand covers the lower chain span
	Build        *Input
	Probe        *Input

	// Scan operators.
	Leaf     int           // base relation index
	FragAttr relation.Attr // attribute the stored fragments are declustered on

	// Collect operators.
	In *Input

	// Procs lists the processors running this operator, one operation
	// process each.
	Procs []int

	// After lists operator ids that must complete before this operator's
	// processes start processing input (input arriving earlier is
	// buffered). This expresses SP's strict phases, SE's
	// operands-ready rule and RD's segment waves.
	After []string
}

// Inputs returns the operator's dataflow inputs in a fixed order.
func (o *Op) Inputs() []*Input {
	var in []*Input
	if o.Build != nil {
		in = append(in, o.Build)
	}
	if o.Probe != nil {
		in = append(in, o.Probe)
	}
	if o.In != nil {
		in = append(in, o.In)
	}
	return in
}

// Plan is a complete parallel execution plan: operators in a deterministic
// order (producers before consumers), exactly one OpCollect.
type Plan struct {
	Strategy string // label of the strategy that produced the plan
	Ops      []*Op
}

// Op returns the operator with the given id, or nil.
func (p *Plan) Op(id string) *Op {
	for _, o := range p.Ops {
		if o.ID == id {
			return o
		}
	}
	return nil
}

// Collect returns the plan's collect operator, or nil.
func (p *Plan) Collect() *Op {
	for _, o := range p.Ops {
		if o.Kind == OpCollect {
			return o
		}
	}
	return nil
}

// NumProcesses returns the total number of operation processes the plan
// uses — the quantity that drives startup overhead (Section 3.5).
func (p *Plan) NumProcesses() int {
	n := 0
	for _, o := range p.Ops {
		n += len(o.Procs)
	}
	return n
}

// NumStreams returns the total number of tuple streams the plan opens: for
// each dataflow edge, (#producer processes) x (#consumer processes) for a
// redistribution, or #processes for an aligned local edge — the quantity
// that drives coordination overhead (Section 3.5).
func (p *Plan) NumStreams() int {
	n := 0
	for _, o := range p.Ops {
		for _, in := range o.Inputs() {
			from := p.Op(in.From)
			if from == nil {
				continue
			}
			if LocalEdge(from, o, in) {
				n += len(o.Procs)
			} else {
				n += len(from.Procs) * len(o.Procs)
			}
		}
	}
	return n
}

// LocalEdge reports whether the edge from producer to consumer delivers
// tuples purely processor-locally: the producer is a scan whose stored
// fragmentation attribute matches the consumer's required routing attribute
// and whose processor list is identical. Ideal initial data fragmentation
// (Section 4.1) makes exactly the base-operand edges local; intermediate
// results are always refragmented.
func LocalEdge(from, to *Op, in *Input) bool {
	if from.Kind != OpScan || from.FragAttr != in.Route {
		return false
	}
	if to.Kind == OpCollect {
		return false
	}
	if len(from.Procs) != len(to.Procs) {
		return false
	}
	for i := range from.Procs {
		if from.Procs[i] != to.Procs[i] {
			return false
		}
	}
	return true
}

// MaxProc returns the largest worker processor id used by the plan.
func (p *Plan) MaxProc() int {
	max := -1
	for _, o := range p.Ops {
		for _, pr := range o.Procs {
			if pr > max {
				max = pr
			}
		}
	}
	return max
}

// Validate checks that the plan is well formed: unique ids, existing input
// and After references, non-empty processor lists, every operator consumed
// exactly once (except collect), join operators with both inputs, exactly
// one collect, and an acyclic dataflow+After graph with producers listed
// before consumers.
func (p *Plan) Validate() error {
	if len(p.Ops) == 0 {
		return fmt.Errorf("xra: empty plan")
	}
	seen := make(map[string]int)
	for i, o := range p.Ops {
		if o.ID == "" {
			return fmt.Errorf("xra: op %d has empty id", i)
		}
		if _, dup := seen[o.ID]; dup {
			return fmt.Errorf("xra: duplicate op id %q", o.ID)
		}
		seen[o.ID] = i
		if len(o.Procs) == 0 {
			return fmt.Errorf("xra: op %q has no processors", o.ID)
		}
		switch o.Kind {
		case OpScan:
			if o.Build != nil || o.Probe != nil || o.In != nil {
				return fmt.Errorf("xra: scan %q must have no inputs", o.ID)
			}
			if o.Leaf < 0 {
				return fmt.Errorf("xra: scan %q has negative leaf %d", o.ID, o.Leaf)
			}
		case OpSimpleJoin, OpPipeJoin:
			if o.Build == nil || o.Probe == nil {
				return fmt.Errorf("xra: join %q needs build and probe inputs", o.ID)
			}
		case OpCollect:
			if o.In == nil {
				return fmt.Errorf("xra: collect %q needs an input", o.ID)
			}
			if len(o.Procs) != 1 {
				return fmt.Errorf("xra: collect %q must run on exactly one processor", o.ID)
			}
		default:
			return fmt.Errorf("xra: op %q has unknown kind %d", o.ID, int(o.Kind))
		}
	}
	collects := 0
	consumed := make(map[string]int)
	for i, o := range p.Ops {
		if o.Kind == OpCollect {
			collects++
		}
		for _, in := range o.Inputs() {
			j, ok := seen[in.From]
			if !ok {
				return fmt.Errorf("xra: op %q reads unknown op %q", o.ID, in.From)
			}
			if j >= i {
				return fmt.Errorf("xra: op %q reads op %q that is not listed before it", o.ID, in.From)
			}
			consumed[in.From]++
		}
		for _, a := range o.After {
			j, ok := seen[a]
			if !ok {
				return fmt.Errorf("xra: op %q is after unknown op %q", o.ID, a)
			}
			if j >= i {
				return fmt.Errorf("xra: op %q is after op %q that is not listed before it", o.ID, a)
			}
		}
	}
	if collects != 1 {
		return fmt.Errorf("xra: plan needs exactly one collect, got %d", collects)
	}
	for _, o := range p.Ops {
		want := 1
		if o.Kind == OpCollect {
			want = 0
		}
		if consumed[o.ID] != want {
			return fmt.Errorf("xra: op %q consumed %d times, want %d", o.ID, consumed[o.ID], want)
		}
	}
	return nil
}

// SortProcs normalizes every operator's processor list into ascending order.
// Strategies call it so that plans are canonical.
func (p *Plan) SortProcs() {
	for _, o := range p.Ops {
		sort.Ints(o.Procs)
	}
}
