package xra

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"multijoin/internal/relation"
)

// The text format renders one operator per line as space-separated
// key=value fields, in plan order:
//
//	plan strategy=FP
//	op id=scan:R0 kind=scan leaf=0 frag=unique1 procs=0,1,2
//	op id=join:1 kind=pipejoin join=1 buildlower=true \
//	   build=scan:R0@unique2 probe=scan:R1@unique1 procs=3,4 after=join:2
//	op id=collect kind=collect in=join:1@unique1 procs=-1
//
// Inputs are encoded as producer@routeattr. The format round-trips through
// Encode and Parse and exists for plan inspection tools and golden tests.

// Encode renders the plan in the textual XRA format.
func Encode(p *Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan strategy=%s\n", p.Strategy)
	for _, o := range p.Ops {
		fmt.Fprintf(&b, "op id=%s kind=%s", o.ID, o.Kind)
		switch o.Kind {
		case OpScan:
			fmt.Fprintf(&b, " leaf=%d frag=%s", o.Leaf, o.FragAttr)
		case OpSimpleJoin, OpPipeJoin:
			fmt.Fprintf(&b, " join=%d buildlower=%t build=%s probe=%s",
				o.JoinID, o.BuildIsLower, encodeInput(o.Build), encodeInput(o.Probe))
		case OpCollect:
			fmt.Fprintf(&b, " in=%s", encodeInput(o.In))
		}
		fmt.Fprintf(&b, " procs=%s", encodeInts(o.Procs))
		if len(o.After) > 0 {
			after := append([]string(nil), o.After...)
			sort.Strings(after)
			fmt.Fprintf(&b, " after=%s", strings.Join(after, ","))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func encodeInput(in *Input) string {
	return fmt.Sprintf("%s@%s", in.From, in.Route)
}

func encodeInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

// Parse reads a plan in the textual XRA format and validates it.
func Parse(text string) (*Plan, error) {
	p := &Plan{}
	sc := bufio.NewScanner(strings.NewReader(text))
	lineno := 0
	sawHeader := false
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		kv := make(map[string]string)
		for _, f := range fields[1:] {
			i := strings.IndexByte(f, '=')
			if i < 0 {
				return nil, fmt.Errorf("xra: line %d: field %q is not key=value", lineno, f)
			}
			kv[f[:i]] = f[i+1:]
		}
		switch fields[0] {
		case "plan":
			if sawHeader {
				return nil, fmt.Errorf("xra: line %d: duplicate plan header", lineno)
			}
			sawHeader = true
			p.Strategy = kv["strategy"]
		case "op":
			if !sawHeader {
				return nil, fmt.Errorf("xra: line %d: op before plan header", lineno)
			}
			o, err := parseOp(kv)
			if err != nil {
				return nil, fmt.Errorf("xra: line %d: %v", lineno, err)
			}
			p.Ops = append(p.Ops, o)
		default:
			return nil, fmt.Errorf("xra: line %d: unknown directive %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("xra: missing plan header")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseOp(kv map[string]string) (*Op, error) {
	o := &Op{ID: kv["id"], Leaf: -1}
	if o.ID == "" {
		return nil, fmt.Errorf("op without id")
	}
	var err error
	switch kv["kind"] {
	case "scan":
		o.Kind = OpScan
		if o.Leaf, err = strconv.Atoi(kv["leaf"]); err != nil {
			return nil, fmt.Errorf("bad leaf %q", kv["leaf"])
		}
		if o.FragAttr, err = parseAttr(kv["frag"]); err != nil {
			return nil, err
		}
	case "hashjoin", "pipejoin":
		o.Kind = OpSimpleJoin
		if kv["kind"] == "pipejoin" {
			o.Kind = OpPipeJoin
		}
		if o.JoinID, err = strconv.Atoi(kv["join"]); err != nil {
			return nil, fmt.Errorf("bad join id %q", kv["join"])
		}
		if o.BuildIsLower, err = strconv.ParseBool(kv["buildlower"]); err != nil {
			return nil, fmt.Errorf("bad buildlower %q", kv["buildlower"])
		}
		if o.Build, err = parseInput(kv["build"]); err != nil {
			return nil, err
		}
		if o.Probe, err = parseInput(kv["probe"]); err != nil {
			return nil, err
		}
	case "collect":
		o.Kind = OpCollect
		if o.In, err = parseInput(kv["in"]); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown kind %q", kv["kind"])
	}
	if o.Procs, err = parseInts(kv["procs"]); err != nil {
		return nil, err
	}
	if after := kv["after"]; after != "" {
		o.After = strings.Split(after, ",")
	}
	return o, nil
}

func parseInput(s string) (*Input, error) {
	i := strings.LastIndexByte(s, '@')
	if i < 0 {
		return nil, fmt.Errorf("bad input %q: want producer@attr", s)
	}
	attr, err := parseAttr(s[i+1:])
	if err != nil {
		return nil, err
	}
	return &Input{From: s[:i], Route: attr}, nil
}

func parseAttr(s string) (relation.Attr, error) {
	switch s {
	case relation.Unique1.String():
		return relation.Unique1, nil
	case relation.Unique2.String():
		return relation.Unique2, nil
	}
	return 0, fmt.Errorf("unknown attribute %q", s)
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("empty processor list")
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad processor %q", p)
		}
		out[i] = v
	}
	return out, nil
}
