// Package strategy implements phase two of the paper's two-phase
// optimization: parallelizing a given join tree. The four strategies of
// Section 3 are provided:
//
//   - SP, Sequential Parallel (Section 3.1): joins run strictly one after
//     another, each using every processor. No inter-operator parallelism, no
//     cost function needed, perfect idealized load balancing.
//
//   - SE, Synchronous Execution (Section 3.2, [CYW92]): independent subtrees
//     of a bushy tree run in parallel on disjoint processor subsets sized
//     proportionally to subtree work, so that operands become ready at the
//     same time; dependent joins run sequentially on the full inherited set.
//
//   - RD, Segmented Right-Deep (Section 3.3, [CLY92], after [SCD90]): the
//     tree is decomposed into right-deep segments; inside a segment all hash
//     tables build in parallel and then one probe pipeline streams through
//     them, with per-join processor counts proportional to work. Segments
//     with a producer-consumer relationship run sequentially; independent
//     segments run concurrently on disjoint subsets (scheduled in waves).
//
//   - FP, Full Parallel (Section 3.4, [WiA91]): every join gets a private
//     processor set proportional to its work, all joins run concurrently,
//     and the pipelining hash-join allows dataflow along both operands.
//
// All strategies emit xra plans; the differences are exactly processor
// allocation, start dependencies, and the join algorithm — as in the paper.
package strategy

import (
	"fmt"
	"sort"

	"multijoin/internal/jointree"
	"multijoin/internal/relation"
	"multijoin/internal/xra"
)

// Kind selects a parallelization strategy.
type Kind int

const (
	// SP is sequential parallel execution.
	SP Kind = iota
	// SE is synchronous execution.
	SE
	// RD is segmented right-deep execution.
	RD
	// FP is full parallel execution.
	FP
)

// Kinds lists all strategies in the paper's order.
var Kinds = []Kind{SP, SE, RD, FP}

// String returns the paper's abbreviation.
func (k Kind) String() string {
	switch k {
	case SP:
		return "SP"
	case SE:
		return "SE"
	case RD:
		return "RD"
	case FP:
		return "FP"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Parse converts an abbreviation into a Kind.
func Parse(s string) (Kind, error) {
	for _, k := range Kinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("strategy: unknown strategy %q", s)
}

// Config parameterizes plan generation, mirroring the inputs of the paper's
// plan generator (Section 4.3): the join tree, operand cardinalities, the
// strategy, and the number of processors.
type Config struct {
	// Procs is the number of processors; they get ids 0..Procs-1.
	Procs int
	// Card is the operand cardinality used by the cost function when
	// estimating relative join work. Explicit tree weights override it.
	Card float64
	// SpanCard, when set, supplies per-span cardinality estimates for
	// non-regular workloads (relations of different sizes); it takes
	// precedence over Card.
	SpanCard jointree.SpanCardFunc
	// EqualWork disables the cost function: every join is weighted
	// equally when distributing processors. This is the ablation for the
	// paper's claim that SE, RD and FP "need a cost function to estimate
	// the costs of the constituent binary joins" (Section 5).
	EqualWork bool
}

// work returns the allocation weight of one join under the config.
func (c Config) work(n *jointree.Node) float64 {
	if c.EqualWork {
		return 1
	}
	if c.SpanCard != nil {
		return n.WorkSpan(c.SpanCard)
	}
	return n.Work(c.Card)
}

// subtreeWork returns the total allocation weight of a subtree.
func (c Config) subtreeWork(n *jointree.Node) float64 {
	if n == nil || n.IsLeaf() {
		return 0
	}
	return c.work(n) + c.subtreeWork(n.Build) + c.subtreeWork(n.Probe)
}

// Plan parallelizes the finalized tree with the given strategy. The error
// cases are structural: too few processors to give every concurrently
// executing join its own processor (the paper never lets one processor work
// on two joins at once).
func Plan(k Kind, tree *jointree.Node, cfg Config) (*xra.Plan, error) {
	if tree == nil || tree.IsLeaf() {
		return nil, fmt.Errorf("strategy: tree must contain at least one join")
	}
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("strategy: need at least 1 processor, got %d", cfg.Procs)
	}
	if cfg.Card <= 0 {
		cfg.Card = 1
	}
	b := newBuilder(k, cfg)
	var err error
	switch k {
	case SP:
		err = b.planSP(tree)
	case SE:
		err = b.planSE(tree)
	case RD:
		err = b.planRD(tree)
	case FP:
		err = b.planFP(tree)
	default:
		return nil, fmt.Errorf("strategy: unknown strategy %v", k)
	}
	if err != nil {
		return nil, err
	}
	b.finishCollect(tree)
	plan := b.plan
	plan.SortProcs()
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("strategy: %v produced invalid plan: %w", k, err)
	}
	return plan, nil
}

// builder accumulates plan operators.
type builder struct {
	cfg  Config
	plan *xra.Plan
}

func newBuilder(k Kind, cfg Config) *builder {
	return &builder{cfg: cfg, plan: &xra.Plan{Strategy: k.String()}}
}

// allProcs returns [0..Procs-1].
func (b *builder) allProcs() []int {
	ps := make([]int, b.cfg.Procs)
	for i := range ps {
		ps[i] = i
	}
	return ps
}

func joinOpID(n *jointree.Node) string { return fmt.Sprintf("join:%d", n.JoinID) }
func scanOpID(leaf int) string         { return fmt.Sprintf("scan:R%d", leaf) }

// input returns the xra input for operand child of join node n, creating the
// scan operator for leaf children. Base relations use ideal initial
// fragmentation (Section 4.1): declustered on the attribute their first join
// needs, over exactly that join's processors, so the edge is local.
func (b *builder) input(child *jointree.Node, route relation.Attr, joinProcs []int) *xra.Input {
	if child.IsLeaf() {
		id := scanOpID(child.Leaf)
		b.plan.Ops = append(b.plan.Ops, &xra.Op{
			ID:       id,
			Kind:     xra.OpScan,
			Leaf:     child.Leaf,
			FragAttr: route,
			Procs:    append([]int(nil), joinProcs...),
		})
		return &xra.Input{From: id, Route: route}
	}
	return &xra.Input{From: joinOpID(child), Route: route}
}

// addJoin appends the operator for join node n.
func (b *builder) addJoin(n *jointree.Node, kind xra.OpKind, procs []int, after []string) {
	op := &xra.Op{
		ID:           joinOpID(n),
		Kind:         kind,
		JoinID:       n.JoinID,
		BuildIsLower: n.BuildIsLower(),
		Procs:        append([]int(nil), procs...),
		After:        after,
	}
	op.Build = b.input(n.Build, n.BuildAttr(), procs)
	op.Probe = b.input(n.Probe, n.ProbeAttr(), procs)
	// Scans were appended after their join would be; reorder so producers
	// come first: move the join op to the end.
	b.plan.Ops = append(b.plan.Ops, op)
}

// finishCollect appends the final gather operator at the scheduler host.
func (b *builder) finishCollect(tree *jointree.Node) {
	b.plan.Ops = append(b.plan.Ops, &xra.Op{
		ID:    "collect",
		Kind:  xra.OpCollect,
		In:    &xra.Input{From: joinOpID(tree), Route: relation.Unique1},
		Procs: []int{xra.HostProc},
	})
}

// proportional splits procs over the groups proportionally to their weights
// (largest-remainder method), guaranteeing at least one processor per group.
// This integer distribution is the source of the paper's "discretization
// error" (Section 3.5).
func proportional(weights []float64, procs []int) ([][]int, error) {
	n := len(weights)
	if n == 0 {
		return nil, nil
	}
	if len(procs) < n {
		return nil, fmt.Errorf("strategy: %d processors cannot host %d concurrent operations", len(procs), n)
	}
	total := 0.0
	for _, w := range weights {
		if w <= 0 {
			w = 1
		}
		total += w
	}
	counts := make([]int, n)
	type rem struct {
		frac float64
		idx  int
	}
	rems := make([]rem, n)
	assigned := 0
	for i, w := range weights {
		if w <= 0 {
			w = 1
		}
		exact := w / total * float64(len(procs))
		counts[i] = int(exact)
		if counts[i] < 1 {
			counts[i] = 1
		}
		rems[i] = rem{frac: exact - float64(int(exact)), idx: i}
		assigned += counts[i]
	}
	// Hand out remaining processors by largest fractional part; withdraw
	// overassignment (due to the >=1 floor) from the largest groups.
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		return rems[i].idx < rems[j].idx
	})
	for assigned < len(procs) {
		for _, r := range rems {
			if assigned == len(procs) {
				break
			}
			counts[r.idx]++
			assigned++
		}
	}
	for assigned > len(procs) {
		// Take back from the group with the most processors (>1).
		big, bigIdx := 0, -1
		for i, c := range counts {
			if c > big {
				big, bigIdx = c, i
			}
		}
		if big <= 1 {
			return nil, fmt.Errorf("strategy: cannot allocate %d processors to %d operations", len(procs), n)
		}
		counts[bigIdx]--
		assigned--
	}
	out := make([][]int, n)
	next := 0
	for i, c := range counts {
		out[i] = append([]int(nil), procs[next:next+c]...)
		next += c
	}
	return out, nil
}
