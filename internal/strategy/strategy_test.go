package strategy

import (
	"fmt"
	"testing"
	"testing/quick"

	"multijoin/internal/jointree"
	"multijoin/internal/xra"
)

func mustShape(t *testing.T, s jointree.Shape, k int) *jointree.Node {
	t.Helper()
	tree, err := jointree.BuildShape(s, k)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func mustPlan(t *testing.T, k Kind, tree *jointree.Node, procs int) *xra.Plan {
	t.Helper()
	p, err := Plan(k, tree, Config{Procs: procs, Card: 1000})
	if err != nil {
		t.Fatalf("Plan(%v): %v", k, err)
	}
	return p
}

func TestKindStrings(t *testing.T) {
	for _, k := range Kinds {
		parsed, err := Parse(k.String())
		if err != nil || parsed != k {
			t.Errorf("Parse(%q) = %v, %v", k.String(), parsed, err)
		}
	}
	if _, err := Parse("XX"); err == nil {
		t.Error("unknown strategy must fail")
	}
}

func TestAllStrategiesValidate(t *testing.T) {
	for _, s := range jointree.Shapes {
		tree := mustShape(t, s, 10)
		for _, k := range Kinds {
			p := mustPlan(t, k, tree, 20)
			if err := p.Validate(); err != nil {
				t.Errorf("%v/%v: %v", s, k, err)
			}
			if p.Strategy != k.String() {
				t.Errorf("%v: strategy label %q", k, p.Strategy)
			}
		}
	}
}

func joinOps(p *xra.Plan) []*xra.Op {
	var out []*xra.Op
	for _, o := range p.Ops {
		if o.Kind == xra.OpSimpleJoin || o.Kind == xra.OpPipeJoin {
			out = append(out, o)
		}
	}
	return out
}

func TestSPStructure(t *testing.T) {
	tree := mustShape(t, jointree.WideBushy, 10)
	p := mustPlan(t, SP, tree, 16)
	joins := joinOps(p)
	if len(joins) != 9 {
		t.Fatalf("%d join ops", len(joins))
	}
	for i, j := range joins {
		if j.Kind != xra.OpSimpleJoin {
			t.Errorf("SP join %s must use the simple hash-join", j.ID)
		}
		if len(j.Procs) != 16 {
			t.Errorf("SP join %s runs on %d procs, want all 16", j.ID, len(j.Procs))
		}
		if i == 0 && len(j.After) != 0 {
			t.Errorf("first SP join must start immediately")
		}
		if i > 0 && (len(j.After) != 1 || j.After[0] != joins[i-1].ID) {
			t.Errorf("SP join %s must run after %s, got %v", j.ID, joins[i-1].ID, j.After)
		}
	}
	// SP uses #joins x #procs join processes.
	want := 9*16 + 10*16 + 1 // joins + scans + collect
	if got := p.NumProcesses(); got != want {
		t.Errorf("SP processes = %d, want %d", got, want)
	}
}

func TestFPStructure(t *testing.T) {
	tree := mustShape(t, jointree.LeftBushy, 10)
	p := mustPlan(t, FP, tree, 18)
	joins := joinOps(p)
	seen := map[int]bool{}
	total := 0
	for _, j := range joins {
		if j.Kind != xra.OpPipeJoin {
			t.Errorf("FP join %s must use the pipelining hash-join", j.ID)
		}
		if len(j.After) != 0 {
			t.Errorf("FP join %s must start immediately", j.ID)
		}
		for _, pr := range j.Procs {
			if seen[pr] {
				t.Errorf("processor %d assigned to two FP joins", pr)
			}
			seen[pr] = true
		}
		total += len(j.Procs)
	}
	if total != 18 {
		t.Errorf("FP distributed %d processors, want all 18", total)
	}
}

func TestFPAllocationProportional(t *testing.T) {
	// Example tree weights 1,5,3,4 on 13 processors: exact proportional
	// shares are 1,5,3,4.
	p := mustPlan(t, FP, jointree.Example(), 13)
	want := map[int]int{1: 1, 5: 5, 3: 3, 4: 4}
	for _, j := range joinOps(p) {
		if len(j.Procs) != want[j.JoinID] {
			t.Errorf("join %d got %d procs, want %d", j.JoinID, len(j.Procs), want[j.JoinID])
		}
	}
}

func TestSEDegeneratesToSPOnLinear(t *testing.T) {
	for _, s := range []jointree.Shape{jointree.LeftLinear, jointree.RightLinear} {
		tree := mustShape(t, s, 10)
		se := mustPlan(t, SE, tree, 12)
		for _, j := range joinOps(se) {
			if len(j.Procs) != 12 {
				t.Errorf("%v: SE join %s on %d procs, want all (SP degeneration)", s, j.ID, len(j.Procs))
			}
			if j.Kind != xra.OpSimpleJoin {
				t.Errorf("SE must use simple hash-join")
			}
		}
	}
}

func TestSESplitsIndependentSubtrees(t *testing.T) {
	// Example tree: joins 3 and 4 are independent; SE must give them
	// disjoint processor subsets and run 5 and 1 on the full system after.
	p := mustPlan(t, SE, jointree.Example(), 10)
	byID := map[int]*xra.Op{}
	for _, j := range joinOps(p) {
		byID[j.JoinID] = j
	}
	if len(byID[3].Procs)+len(byID[4].Procs) != 10 {
		t.Errorf("joins 3+4 procs = %d+%d, want 10 total", len(byID[3].Procs), len(byID[4].Procs))
	}
	// Work 4 vs 3 on 10 procs: join 4 gets more.
	if len(byID[4].Procs) <= len(byID[3].Procs) {
		t.Errorf("join 4 (more work) got %d procs vs join 3's %d",
			len(byID[4].Procs), len(byID[3].Procs))
	}
	overlap := map[int]bool{}
	for _, pr := range byID[3].Procs {
		overlap[pr] = true
	}
	for _, pr := range byID[4].Procs {
		if overlap[pr] {
			t.Errorf("joins 3 and 4 share processor %d", pr)
		}
	}
	for _, id := range []int{5, 1} {
		if len(byID[id].Procs) != 10 {
			t.Errorf("join %d on %d procs, want all 10", id, len(byID[id].Procs))
		}
	}
	if len(byID[5].After) != 2 {
		t.Errorf("join 5 must wait for both operand subtrees, After=%v", byID[5].After)
	}
}

func TestRDDegenerations(t *testing.T) {
	// Left-linear: every segment is one join on all processors => SP-like.
	ll := mustPlan(t, RD, mustShape(t, jointree.LeftLinear, 10), 12)
	for _, j := range joinOps(ll) {
		if len(j.Procs) != 12 {
			t.Errorf("left-linear RD join %s on %d procs, want 12", j.ID, len(j.Procs))
		}
	}
	// Right-linear: one segment, processors distributed like FP.
	rl := mustPlan(t, RD, mustShape(t, jointree.RightLinear, 10), 18)
	fp := mustPlan(t, FP, mustShape(t, jointree.RightLinear, 10), 18)
	rlProcs := map[int]int{}
	for _, j := range joinOps(rl) {
		rlProcs[j.JoinID] = len(j.Procs)
		if len(j.After) != 0 {
			t.Errorf("right-linear RD join %s must start immediately", j.ID)
		}
	}
	for _, j := range joinOps(fp) {
		if rlProcs[j.JoinID] != len(j.Procs) {
			t.Errorf("join %d: RD %d procs vs FP %d procs (should coincide)",
				j.JoinID, rlProcs[j.JoinID], len(j.Procs))
		}
	}
}

func TestRDWaves(t *testing.T) {
	// Example tree: wave 1 = segment [4] on all 10 procs; wave 2 =
	// segment [1,5,3] sharing the 10 procs, all After join:4.
	p := mustPlan(t, RD, jointree.Example(), 10)
	byID := map[int]*xra.Op{}
	for _, j := range joinOps(p) {
		byID[j.JoinID] = j
	}
	if len(byID[4].Procs) != 10 || len(byID[4].After) != 0 {
		t.Errorf("join 4 must run first on all 10 procs: procs=%d after=%v",
			len(byID[4].Procs), byID[4].After)
	}
	total := 0
	for _, id := range []int{1, 5, 3} {
		total += len(byID[id].Procs)
		if len(byID[id].After) != 1 || byID[id].After[0] != "join:4" {
			t.Errorf("join %d must wait for join:4, After=%v", id, byID[id].After)
		}
	}
	if total != 10 {
		t.Errorf("second wave uses %d procs, want 10", total)
	}
	// Join 5 (weight 5) gets the most processors in its segment.
	if len(byID[5].Procs) <= len(byID[3].Procs) || len(byID[5].Procs) <= len(byID[1].Procs) {
		t.Error("segment allocation not proportional to work")
	}
}

func TestRDRightBushyIndependentSegments(t *testing.T) {
	// Right-oriented bushy over 10 relations: wave 1 = 4 independent leaf
	// joins on disjoint subsets; wave 2 = the 5-join probe pipeline.
	tree := mustShape(t, jointree.RightBushy, 10)
	p := mustPlan(t, RD, tree, 20)
	var wave1, wave2 int
	used := map[int]bool{}
	for _, j := range joinOps(p) {
		if len(j.After) == 0 {
			wave1++
			for _, pr := range j.Procs {
				if used[pr] {
					t.Errorf("wave-1 segments share processor %d", pr)
				}
				used[pr] = true
			}
		} else {
			wave2++
		}
	}
	if wave1 != 4 || wave2 != 5 {
		t.Errorf("waves = %d+%d joins, want 4+5", wave1, wave2)
	}
}

func TestScanFragmentationIdeal(t *testing.T) {
	// Every scan must be declustered over exactly its consumer's
	// processors on the attribute the consumer needs (Section 4.1).
	for _, k := range Kinds {
		p := mustPlan(t, k, mustShape(t, jointree.RightBushy, 10), 20)
		for _, o := range p.Ops {
			for _, in := range o.Inputs() {
				from := p.Op(in.From)
				if from.Kind != xra.OpScan {
					continue
				}
				if !xra.LocalEdge(from, o, in) {
					t.Errorf("%v: scan %s feeding %s is not local", k, from.ID, o.ID)
				}
			}
		}
	}
}

func TestTooFewProcessors(t *testing.T) {
	tree := mustShape(t, jointree.WideBushy, 10)
	// FP needs at least one processor per join (9 joins).
	if _, err := Plan(FP, tree, Config{Procs: 5, Card: 100}); err == nil {
		t.Error("FP with 5 procs for 9 joins must fail")
	}
	// SP works with a single processor.
	if _, err := Plan(SP, tree, Config{Procs: 1, Card: 100}); err != nil {
		t.Errorf("SP with 1 proc: %v", err)
	}
	// SE falls back to sequential subtree evaluation with 1 processor.
	if _, err := Plan(SE, tree, Config{Procs: 1, Card: 100}); err != nil {
		t.Errorf("SE with 1 proc: %v", err)
	}
}

func TestPlanArgumentErrors(t *testing.T) {
	tree := mustShape(t, jointree.LeftLinear, 4)
	if _, err := Plan(SP, nil, Config{Procs: 4}); err == nil {
		t.Error("nil tree must fail")
	}
	if _, err := Plan(SP, jointree.NewLeaf(0), Config{Procs: 4}); err == nil {
		t.Error("leaf-only tree must fail")
	}
	if _, err := Plan(SP, tree, Config{Procs: 0}); err == nil {
		t.Error("zero processors must fail")
	}
	if _, err := Plan(Kind(42), tree, Config{Procs: 4}); err == nil {
		t.Error("unknown strategy must fail")
	}
}

func TestProportional(t *testing.T) {
	procs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	parts, err := proportional([]float64{1, 5, 3, 4}, procs)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{len(parts[0]), len(parts[1]), len(parts[2]), len(parts[3])}
	total := 0
	for _, s := range sizes {
		total += s
		if s < 1 {
			t.Errorf("allocation %v has empty group", sizes)
		}
	}
	if total != 10 {
		t.Errorf("allocated %d processors, want 10", total)
	}
	// Weight 5 gets the most, weight 1 the least.
	if sizes[1] < sizes[2] || sizes[1] < sizes[3] || sizes[0] > sizes[2] {
		t.Errorf("allocation %v not ordered by weight", sizes)
	}
	// Groups must be disjoint and cover procs.
	seen := map[int]bool{}
	for _, part := range parts {
		for _, p := range part {
			if seen[p] {
				t.Errorf("processor %d allocated twice", p)
			}
			seen[p] = true
		}
	}
}

func TestProportionalErrors(t *testing.T) {
	if _, err := proportional([]float64{1, 1, 1}, []int{0, 1}); err == nil {
		t.Error("3 groups on 2 procs must fail")
	}
	parts, err := proportional(nil, []int{0, 1})
	if err != nil || parts != nil {
		t.Error("empty weights should allocate nothing")
	}
}

// TestProportionalProperties: allocations always use every processor exactly
// once, give every group at least one, and are deterministic.
func TestProportionalProperties(t *testing.T) {
	f := func(ws []uint8, extraRaw uint8) bool {
		if len(ws) == 0 || len(ws) > 12 {
			return true
		}
		weights := make([]float64, len(ws))
		for i, w := range ws {
			weights[i] = float64(w%50) + 0.5
		}
		n := len(ws) + int(extraRaw%30)
		procs := make([]int, n)
		for i := range procs {
			procs[i] = i
		}
		a, err := proportional(weights, procs)
		if err != nil {
			return false
		}
		b, _ := proportional(weights, procs)
		seen := map[int]bool{}
		total := 0
		for gi, g := range a {
			if len(g) < 1 {
				return false
			}
			if fmt.Sprint(g) != fmt.Sprint(b[gi]) {
				return false // nondeterministic
			}
			for _, p := range g {
				if seen[p] {
					return false
				}
				seen[p] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAllProcessorsUsed: for every strategy and shape, the union of join
// processor sets covers [0, P) — no processor is left idle by construction.
func TestAllProcessorsUsed(t *testing.T) {
	for _, s := range jointree.Shapes {
		tree := mustShape(t, s, 10)
		for _, k := range Kinds {
			p := mustPlan(t, k, tree, 20)
			used := map[int]bool{}
			for _, j := range joinOps(p) {
				for _, pr := range j.Procs {
					used[pr] = true
				}
			}
			if len(used) != 20 {
				t.Errorf("%v/%v: only %d of 20 processors used", s, k, len(used))
			}
		}
	}
}
