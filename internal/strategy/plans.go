package strategy

import (
	"fmt"

	"multijoin/internal/jointree"
	"multijoin/internal/xra"
)

// planSP emits the Sequential Parallel plan: the constituent joins execute
// strictly one after another in bottom-up (post-) order, each on all
// available processors with the simple hash-join. SP needs no cost function
// and its idealized load balancing is perfect (Figure 3), but it uses
// (#joins x #processors) operation processes and refragments every
// intermediate over the full machine — the startup and coordination
// overheads that dominate at high degrees of parallelism.
func (b *builder) planSP(tree *jointree.Node) error {
	all := b.allProcs()
	var prev string
	for _, j := range jointree.Joins(tree) {
		var after []string
		if prev != "" {
			after = []string{prev}
		}
		b.addJoin(j, xra.OpSimpleJoin, all, after)
		prev = joinOpID(j)
	}
	return nil
}

// planSE emits the Synchronous Execution plan [CYW92]: when both operands of
// a join are themselves join subtrees, the subtrees are independent and run
// in parallel on disjoint processor subsets proportional to their total
// work, aiming for both operands to become ready at the same time. In every
// other case joins run sequentially on the full inherited processor set. A
// join starts only after its operand subtrees have completed (no
// pipelining), so the simple hash-join is used. On linear trees there are no
// independent subtrees and SE degenerates to SP, exactly as in Figures 9
// and 13.
func (b *builder) planSE(tree *jointree.Node) error {
	var emit func(n *jointree.Node, procs []int) (string, error)
	emit = func(n *jointree.Node, procs []int) (string, error) {
		bothJoins := !n.Build.IsLeaf() && !n.Probe.IsLeaf()
		var after []string
		switch {
		case bothJoins && len(procs) >= 2:
			weights := []float64{
				b.cfg.subtreeWork(n.Build),
				b.cfg.subtreeWork(n.Probe),
			}
			parts, err := proportional(weights, procs)
			if err != nil {
				return "", err
			}
			left, err := emit(n.Build, parts[0])
			if err != nil {
				return "", err
			}
			right, err := emit(n.Probe, parts[1])
			if err != nil {
				return "", err
			}
			after = []string{left, right}
		default:
			// At most one operand is a subtree (or too few processors to
			// split): evaluate subtrees sequentially on the full set.
			for _, child := range []*jointree.Node{n.Build, n.Probe} {
				if child.IsLeaf() {
					continue
				}
				id, err := emit(child, procs)
				if err != nil {
					return "", err
				}
				after = append(after, id)
			}
		}
		b.addJoin(n, xra.OpSimpleJoin, procs, after)
		return joinOpID(n), nil
	}
	_, err := emit(tree, b.allProcs())
	return err
}

// planRD emits the Segmented Right-Deep plan [CLY92]: the tree is cut into
// right-deep segments (maximal probe-operand chains, Figure 5). Segments are
// scheduled in waves: a segment is ready when the segments producing its
// build operands have completed; all ready segments of a wave run
// concurrently on disjoint processor subsets proportional to segment work.
// Inside a segment every join receives processors proportional to its own
// work, all hash tables build concurrently, and the probe pipeline streams
// bottom-up through the whole segment (simple hash-join: build, then
// pipelined probe). On a left-linear tree every segment is a single join and
// RD degenerates to SP; on a right-linear tree the whole tree is one segment
// and RD coincides with FP (Figures 9 and 13).
func (b *builder) planRD(tree *jointree.Node) error {
	segs := jointree.RightDeepSegments(tree)
	// producers[i] lists the segment indexes that produce build operands of
	// segment i.
	rootOf := make(map[*jointree.Node]int) // segment root join -> segment index
	for i, s := range segs {
		rootOf[s.Root()] = i
	}
	producers := make([][]int, len(segs))
	for i, s := range segs {
		for _, j := range s.Joins {
			if !j.Build.IsLeaf() {
				producers[i] = append(producers[i], rootOf[j.Build])
			}
		}
	}
	done := make([]bool, len(segs))
	remaining := len(segs)
	var prevWaveRoots []string
	for remaining > 0 {
		var wave []int
		for i := range segs {
			if done[i] {
				continue
			}
			ready := true
			for _, p := range producers[i] {
				if !done[p] {
					ready = false
					break
				}
			}
			if ready {
				wave = append(wave, i)
			}
		}
		if len(wave) == 0 {
			return fmt.Errorf("strategy: RD segment dependency cycle")
		}
		weights := make([]float64, len(wave))
		for wi, si := range wave {
			for _, j := range segs[si].Joins {
				weights[wi] += b.cfg.work(j)
			}
		}
		parts, err := proportional(weights, b.allProcs())
		if err != nil {
			return err
		}
		var waveRoots []string
		for wi, si := range wave {
			if err := b.emitSegment(segs[si], parts[wi], prevWaveRoots); err != nil {
				return err
			}
			waveRoots = append(waveRoots, joinOpID(segs[si].Root()))
			done[si] = true
			remaining--
		}
		prevWaveRoots = waveRoots
	}
	return nil
}

// emitSegment adds the joins of one right-deep segment, allocating the
// segment's processors proportionally to per-join work. Joins must be
// emitted in producer-before-consumer order, i.e. bottom-up.
func (b *builder) emitSegment(seg *jointree.Segment, procs []int, after []string) error {
	weights := make([]float64, len(seg.Joins))
	for i, j := range seg.Joins {
		weights[i] = b.cfg.work(j)
	}
	parts, err := proportional(weights, procs)
	if err != nil {
		return err
	}
	for i := len(seg.Joins) - 1; i >= 0; i-- {
		b.addJoin(seg.Joins[i], xra.OpSimpleJoin, parts[i], after)
	}
	return nil
}

// planFP emits the Full Parallel plan [WiA91]: every join operation runs on
// a private set of processors proportional to its estimated work, all joins
// start immediately, and the pipelining hash-join lets results flow along
// both operands as soon as they are produced. FP uses the fewest operation
// processes (one per processor) but distributes processors over *all* joins
// at once, so it suffers most from discretization error (Section 3.5).
func (b *builder) planFP(tree *jointree.Node) error {
	joins := jointree.Joins(tree)
	weights := make([]float64, len(joins))
	for i, j := range joins {
		weights[i] = b.cfg.work(j)
	}
	parts, err := proportional(weights, b.allProcs())
	if err != nil {
		return err
	}
	for i, j := range joins {
		b.addJoin(j, xra.OpPipeJoin, parts[i], nil)
	}
	return nil
}
