package strategy

import (
	"strings"
	"testing"

	"multijoin/internal/jointree"
	"multijoin/internal/xra"
)

// Golden plans for the paper's example tree (Figure 2) on a 10-processor
// machine, pinning the exact parallelization each strategy produces. These
// correspond to the processor-allocation discussions around Figures 3, 4, 6
// and 7. A deliberate change to a strategy must update these.

const goldenSP = `plan strategy=SP
op id=scan:R1 kind=scan leaf=1 frag=unique2 procs=0,1,2,3,4,5,6,7,8,9
op id=scan:R2 kind=scan leaf=2 frag=unique1 procs=0,1,2,3,4,5,6,7,8,9
op id=join:4 kind=hashjoin join=4 buildlower=true build=scan:R1@unique2 probe=scan:R2@unique1 procs=0,1,2,3,4,5,6,7,8,9
op id=scan:R3 kind=scan leaf=3 frag=unique2 procs=0,1,2,3,4,5,6,7,8,9
op id=scan:R4 kind=scan leaf=4 frag=unique1 procs=0,1,2,3,4,5,6,7,8,9
op id=join:3 kind=hashjoin join=3 buildlower=true build=scan:R3@unique2 probe=scan:R4@unique1 procs=0,1,2,3,4,5,6,7,8,9 after=join:4
op id=join:5 kind=hashjoin join=5 buildlower=true build=join:4@unique2 probe=join:3@unique1 procs=0,1,2,3,4,5,6,7,8,9 after=join:3
op id=scan:R0 kind=scan leaf=0 frag=unique2 procs=0,1,2,3,4,5,6,7,8,9
op id=join:1 kind=hashjoin join=1 buildlower=true build=scan:R0@unique2 probe=join:5@unique1 procs=0,1,2,3,4,5,6,7,8,9 after=join:5
op id=collect kind=collect in=join:1@unique1 procs=-1
`

const goldenFP = `plan strategy=FP
op id=scan:R1 kind=scan leaf=1 frag=unique2 procs=0,1,2
op id=scan:R2 kind=scan leaf=2 frag=unique1 procs=0,1,2
op id=join:4 kind=pipejoin join=4 buildlower=true build=scan:R1@unique2 probe=scan:R2@unique1 procs=0,1,2
op id=scan:R3 kind=scan leaf=3 frag=unique2 procs=3,4
op id=scan:R4 kind=scan leaf=4 frag=unique1 procs=3,4
op id=join:3 kind=pipejoin join=3 buildlower=true build=scan:R3@unique2 probe=scan:R4@unique1 procs=3,4
op id=join:5 kind=pipejoin join=5 buildlower=true build=join:4@unique2 probe=join:3@unique1 procs=5,6,7,8
op id=scan:R0 kind=scan leaf=0 frag=unique2 procs=9
op id=join:1 kind=pipejoin join=1 buildlower=true build=scan:R0@unique2 probe=join:5@unique1 procs=9
op id=collect kind=collect in=join:1@unique1 procs=-1
`

const goldenSE = `plan strategy=SE
op id=scan:R1 kind=scan leaf=1 frag=unique2 procs=0,1,2,3,4,5
op id=scan:R2 kind=scan leaf=2 frag=unique1 procs=0,1,2,3,4,5
op id=join:4 kind=hashjoin join=4 buildlower=true build=scan:R1@unique2 probe=scan:R2@unique1 procs=0,1,2,3,4,5
op id=scan:R3 kind=scan leaf=3 frag=unique2 procs=6,7,8,9
op id=scan:R4 kind=scan leaf=4 frag=unique1 procs=6,7,8,9
op id=join:3 kind=hashjoin join=3 buildlower=true build=scan:R3@unique2 probe=scan:R4@unique1 procs=6,7,8,9
op id=join:5 kind=hashjoin join=5 buildlower=true build=join:4@unique2 probe=join:3@unique1 procs=0,1,2,3,4,5,6,7,8,9 after=join:3,join:4
op id=scan:R0 kind=scan leaf=0 frag=unique2 procs=0,1,2,3,4,5,6,7,8,9
op id=join:1 kind=hashjoin join=1 buildlower=true build=scan:R0@unique2 probe=join:5@unique1 procs=0,1,2,3,4,5,6,7,8,9 after=join:5
op id=collect kind=collect in=join:1@unique1 procs=-1
`

const goldenRD = `plan strategy=RD
op id=scan:R1 kind=scan leaf=1 frag=unique2 procs=0,1,2,3,4,5,6,7,8,9
op id=scan:R2 kind=scan leaf=2 frag=unique1 procs=0,1,2,3,4,5,6,7,8,9
op id=join:4 kind=hashjoin join=4 buildlower=true build=scan:R1@unique2 probe=scan:R2@unique1 procs=0,1,2,3,4,5,6,7,8,9
op id=scan:R3 kind=scan leaf=3 frag=unique2 procs=7,8,9
op id=scan:R4 kind=scan leaf=4 frag=unique1 procs=7,8,9
op id=join:3 kind=hashjoin join=3 buildlower=true build=scan:R3@unique2 probe=scan:R4@unique1 procs=7,8,9 after=join:4
op id=join:5 kind=hashjoin join=5 buildlower=true build=join:4@unique2 probe=join:3@unique1 procs=1,2,3,4,5,6 after=join:4
op id=scan:R0 kind=scan leaf=0 frag=unique2 procs=0
op id=join:1 kind=hashjoin join=1 buildlower=true build=scan:R0@unique2 probe=join:5@unique1 procs=0 after=join:4
op id=collect kind=collect in=join:1@unique1 procs=-1
`

func TestGoldenPlansExampleTree(t *testing.T) {
	golden := map[Kind]string{SP: goldenSP, SE: goldenSE, RD: goldenRD, FP: goldenFP}
	for _, k := range Kinds {
		p, err := Plan(k, jointree.Example(), Config{Procs: 10, Card: 1000})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		got := xra.Encode(p)
		if got != golden[k] {
			t.Errorf("%v plan changed.\ngot:\n%s\nwant:\n%s", k, got, golden[k])
		}
	}
}

// TestGoldenPlansParse: the golden texts themselves must be valid plans.
func TestGoldenPlansParse(t *testing.T) {
	for name, text := range map[string]string{
		"SP": goldenSP, "SE": goldenSE, "RD": goldenRD, "FP": goldenFP,
	} {
		p, err := xra.Parse(text)
		if err != nil {
			t.Errorf("golden %s does not parse: %v", name, err)
			continue
		}
		if !strings.Contains(xra.Encode(p), "plan strategy="+name) {
			t.Errorf("golden %s round trip lost the strategy", name)
		}
	}
}
