package hashjoin

import (
	"math/rand"
	"os"
	"testing"

	"multijoin/internal/relation"
	"multijoin/internal/spill"
)

// graceOperands builds two operands whose join has both matches and misses,
// with duplicate keys on the build side to exercise chain iteration.
func graceOperands(seed int64, buildCard, probeCard int) (build, probe *relation.Relation) {
	rng := rand.New(rand.NewSource(seed))
	build = relation.New("build", 208)
	probe = relation.New("probe", 208)
	for i := 0; i < buildCard; i++ {
		build.Append(relation.Tuple{
			Unique1: int64(rng.Intn(buildCard)),
			Unique2: int64(rng.Intn(probeCard + probeCard/2)), // some keys miss
			Check:   uint64(i) * 0x9e37,
		})
	}
	for i := 0; i < probeCard; i++ {
		probe.Append(relation.Tuple{
			Unique1: int64(i),
			Unique2: int64(rng.Intn(probeCard)),
			Check:   uint64(i)*0xc2b2 + 1,
		})
	}
	return build, probe
}

// batchOf transposes row-form tuples into a fresh columnar batch — the
// shape Grace's Add methods take.
func batchOf(ts []relation.Tuple) *relation.Batch {
	b := relation.NewBatch(len(ts))
	b.AppendTuples(ts)
	return b
}

// runGrace joins the operands with a Grace join under the given budget,
// feeding both sides in interleaved batches, and returns the result plus
// how many partitions spilled.
func runGrace(t *testing.T, build, probe *relation.Relation, budget int64) (*relation.Relation, int) {
	t.Helper()
	dir := t.TempDir()
	meter := spill.NewMeter(budget)
	pool := relation.NewBatchPool(32, 64)
	g := NewGrace(Spec{BuildIsLower: true}, meter, dir, pool)
	defer g.Close()
	const chunk = 24
	bi, pi := 0, 0
	for bi < build.Card() || pi < probe.Card() {
		if bi < build.Card() {
			hi := min(bi+chunk, build.Card())
			if err := g.AddBuild(batchOf(build.Tuples[bi:hi])); err != nil {
				t.Fatal(err)
			}
			bi = hi
		}
		if pi < probe.Card() {
			hi := min(pi+chunk, probe.Card())
			if err := g.AddProbe(batchOf(probe.Tuples[pi:hi])); err != nil {
				t.Fatal(err)
			}
			pi = hi
		}
	}
	sb, sp := g.SpilledSides()
	out := relation.New("grace", build.TupleBytes)
	if err := g.Drain(func(results *relation.Batch) error {
		results.AppendTo(out) // AppendTo copies; the chunk may be reused
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out, sb + sp
}

// TestGraceMatchesSimple asserts the Grace join produces the identical
// result multiset as the simple hash-join, both fully in memory and under a
// budget tiny enough that every partition spills.
func TestGraceMatchesSimple(t *testing.T) {
	build, probe := graceOperands(7, 700, 900)
	spec := Spec{BuildIsLower: true}
	want := Join(build, probe, spec, false)
	for _, tc := range []struct {
		name      string
		budget    int64
		wantSpill bool
	}{
		{"in-memory", 1 << 30, false},
		{"tiny-budget", 1 << 10, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, spilled := runGrace(t, build, probe, tc.budget)
			if diff := relation.DiffMultiset(got, want); diff != "" {
				t.Fatalf("grace result differs from simple join: %s", diff)
			}
			if tc.wantSpill && spilled == 0 {
				t.Fatalf("budget %d forced no spilled partitions", tc.budget)
			}
			if !tc.wantSpill && spilled != 0 {
				t.Fatalf("budget %d spilled %d partitions, want none", tc.budget, spilled)
			}
		})
	}
}

// TestGraceMatchesPipelining asserts Grace and the pipelining join agree on
// the mirrored spec too (BuildIsLower=false).
func TestGraceMatchesPipelining(t *testing.T) {
	build, probe := graceOperands(11, 500, 400)
	spec := Spec{BuildIsLower: false}
	want := Join(build, probe, spec, true)
	dir := t.TempDir()
	g := NewGrace(spec, spill.NewMeter(1<<11), dir, relation.NewBatchPool(32, 64))
	defer g.Close()
	if err := g.AddBuild(batchOf(build.Tuples)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddProbe(batchOf(probe.Tuples)); err != nil {
		t.Fatal(err)
	}
	got := relation.New("grace", build.TupleBytes)
	if err := g.Drain(func(rs *relation.Batch) error { rs.AppendTo(got); return nil }); err != nil {
		t.Fatal(err)
	}
	if diff := relation.DiffMultiset(got, want); diff != "" {
		t.Fatalf("grace result differs from pipelining join: %s", diff)
	}
}

// TestGraceDrainRemovesFiles asserts a drained join leaves no partition
// files behind, and that Close after Drain stays idempotent.
func TestGraceDrainRemovesFiles(t *testing.T) {
	build, probe := graceOperands(3, 300, 300)
	dir := t.TempDir()
	meter := spill.NewMeter(1 << 10)
	g := NewGrace(Spec{BuildIsLower: true}, meter, dir, relation.NewBatchPool(32, 64))
	if err := g.AddBuild(batchOf(build.Tuples)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddProbe(batchOf(probe.Tuples)); err != nil {
		t.Fatal(err)
	}
	if meter.Partitions() == 0 {
		t.Fatal("tiny budget created no spill partitions")
	}
	if err := g.Drain(func(*relation.Batch) error { return nil }); err != nil {
		t.Fatal(err)
	}
	g.Close()
	g.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("drain left %d partition files behind", len(entries))
	}
	if meter.Live() != 0 {
		t.Fatalf("meter still holds %d live bytes after drain", meter.Live())
	}
	if meter.SpilledBytes() == 0 || meter.IOTime() == 0 {
		t.Fatalf("spill stats not recorded: bytes=%d io=%v", meter.SpilledBytes(), meter.IOTime())
	}
}
