package hashjoin

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"multijoin/internal/relation"
)

// sortedTuples returns a canonically ordered copy for multiset comparison.
func sortedTuples(ts []relation.Tuple) []relation.Tuple {
	out := append([]relation.Tuple(nil), ts...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Unique1 != b.Unique1 {
			return a.Unique1 < b.Unique1
		}
		if a.Unique2 != b.Unique2 {
			return a.Unique2 < b.Unique2
		}
		return a.Check < b.Check
	})
	return out
}

func sameMultiset(a, b []relation.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := sortedTuples(a), sortedTuples(b)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestTableMatchesMapTableRandomStreams is the differential test between the
// open-addressing Table and the retired MapTable reference: random
// interleaved build/probe streams with heavy key duplication and zero-match
// probes must see identical multisets from both tables at every step.
// `make test` runs it under -race.
func TestTableMatchesMapTableRandomStreams(t *testing.T) {
	f := func(seed int64, nRaw uint16, keyRange uint8, hintRaw uint8) bool {
		n := int(nRaw%2000) + 1
		keys := int64(keyRange%32) + 1 // small range -> many duplicates
		hint := int(hintRaw) % (n + 1) // exercise undersized and oversized tables
		rng := rand.New(rand.NewSource(seed))

		for _, attr := range []relation.Attr{relation.Unique1, relation.Unique2} {
			oa := NewTableSized(attr, hint)
			ref := NewMapTable(attr)
			for i := 0; i < n; i++ {
				if rng.Intn(3) > 0 { // insert
					tp := relation.Tuple{
						Unique1: rng.Int63n(keys),
						Unique2: rng.Int63n(keys),
						Check:   rng.Uint64(),
					}
					oa.Insert(tp)
					ref.Insert(tp)
					if oa.Len() != ref.Len() {
						return false
					}
					continue
				}
				// Probe, including keys outside the inserted range
				// (zero-match probes) and negative keys.
				k := rng.Int63n(keys*2) - keys/2
				if !sameMultiset(oa.Matches(k), ref.Matches(k)) {
					return false
				}
			}
			// Final full sweep over every possible key.
			for k := int64(-1); k <= keys; k++ {
				if !sameMultiset(oa.Matches(k), ref.Matches(k)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestTableFirstNextChain checks the allocation-free iteration contract
// against Matches on duplicate chains.
func TestTableFirstNextChain(t *testing.T) {
	tab := NewTableSized(relation.Unique1, 0)
	for i := 0; i < 100; i++ {
		tab.Insert(relation.Tuple{Unique1: int64(i % 7), Check: uint64(i)})
	}
	for k := int64(-2); k < 9; k++ {
		var got []relation.Tuple
		for i := tab.First(k); i >= 0; i = tab.Next(i) {
			got = append(got, tab.At(i))
		}
		if !sameMultiset(got, tab.Matches(k)) {
			t.Errorf("First/Next disagrees with Matches for key %d", k)
		}
	}
}

// TestTableGrowth forces many doublings from the minimum size and checks
// nothing is lost or duplicated across rehashes.
func TestTableGrowth(t *testing.T) {
	tab := NewTable(relation.Unique1) // minimum slots, grows ~10 times
	const n = 20000
	for i := 0; i < n; i++ {
		tab.Insert(relation.Tuple{Unique1: int64(i), Check: uint64(i)})
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	for i := 0; i < n; i++ {
		m := tab.Matches(int64(i))
		if len(m) != 1 || m[0].Check != uint64(i) {
			t.Fatalf("key %d: matches %v", i, m)
		}
	}
	if tab.Matches(n) != nil {
		t.Error("phantom match after growth")
	}
}

// TestProbeBatchIntoMatchesMapTable is the differential test for the
// vectorized two-phase batch probe: a Simple join built from random tuples
// (via the radix bulk insert) probed with whole columnar batches must emit
// exactly the result multiset a scalar walk over the retained MapTable
// oracle produces, for both build orientations, duplicate-heavy keys and
// zero-match probes. `make test` runs it under -race and `make pooldebug`
// with the pool poison detector armed.
func TestProbeBatchIntoMatchesMapTable(t *testing.T) {
	f := func(seed int64, buildRaw, probeRaw uint16, keyRange uint8, lower bool) bool {
		rng := rand.New(rand.NewSource(seed))
		nBuild := int(buildRaw % 1500)
		nProbe := int(probeRaw % 1500)
		keys := int64(keyRange%64) + 1 // small range -> long duplicate chains
		spec := Spec{BuildIsLower: lower}

		var build relation.Batch
		ref := NewMapTable(spec.BuildAttr())
		for i := 0; i < nBuild; i++ {
			tp := relation.Tuple{
				Unique1: rng.Int63n(keys),
				Unique2: rng.Int63n(keys),
				Check:   rng.Uint64(),
			}
			build.AppendTuple(tp)
			ref.Insert(tp)
		}
		j := NewSimpleSized(spec, nBuild)
		j.InsertBatch(&build)
		if j.BuildSize() != ref.Len() {
			return false
		}

		var probe relation.Batch
		var want []relation.Tuple
		pa := spec.ProbeAttr()
		for i := 0; i < nProbe; i++ {
			tp := relation.Tuple{
				// Keys beyond the inserted range give zero-match probes.
				Unique1: rng.Int63n(keys*2) - keys/2,
				Unique2: rng.Int63n(keys*2) - keys/2,
				Check:   rng.Uint64(),
			}
			probe.AppendTuple(tp)
			for _, m := range ref.Matches(tp.Get(pa)) {
				want = append(want, spec.Result(m, tp))
			}
		}

		// Probe in sub-batches to exercise appends into a reused dst and
		// the per-call head-phase scratch resizing.
		var got relation.Batch
		for lo := 0; lo < probe.Len(); {
			hi := lo + 1 + rng.Intn(512)
			if hi > probe.Len() {
				hi = probe.Len()
			}
			sub := probe.View(lo, hi)
			j.ProbeBatchInto(&got, &sub)
			lo = hi
		}
		return sameMultiset(got.Tuples(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// BenchmarkHashTable_* measures the open-addressing table against the
// retired map reference; allocs/op is the point (0 for the sized table in
// steady state).
func benchTuples(n int) []relation.Tuple {
	rng := rand.New(rand.NewSource(7))
	ts := make([]relation.Tuple, n)
	for i := range ts {
		ts[i] = relation.Tuple{Unique1: rng.Int63n(int64(n)), Unique2: int64(i), Check: rng.Uint64()}
	}
	return ts
}

func BenchmarkHashTable_Insert(b *testing.B) {
	ts := benchTuples(40000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := NewTableSized(relation.Unique1, len(ts))
		for _, tp := range ts {
			tab.Insert(tp)
		}
	}
}

func BenchmarkHashTable_MapInsert(b *testing.B) {
	ts := benchTuples(40000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := NewMapTable(relation.Unique1)
		for _, tp := range ts {
			tab.Insert(tp)
		}
	}
}

func BenchmarkHashTable_Probe(b *testing.B) {
	ts := benchTuples(40000)
	tab := NewTableSized(relation.Unique1, len(ts))
	for _, tp := range ts {
		tab.Insert(tp)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		for _, tp := range ts {
			for j := tab.First(tp.Unique1); j >= 0; j = tab.Next(j) {
				sink += tab.At(j).Check
			}
		}
	}
	_ = sink
}

func BenchmarkHashTable_MapProbe(b *testing.B) {
	ts := benchTuples(40000)
	tab := NewMapTable(relation.Unique1)
	for _, tp := range ts {
		tab.Insert(tp)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		for _, tp := range ts {
			for _, m := range tab.Matches(tp.Unique1) {
				sink += m.Check
			}
		}
	}
	_ = sink
}

// BenchmarkHashTable_SimpleJoin measures one full sized build+probe cycle
// through the Simple state machine with a reused output buffer.
func BenchmarkHashTable_SimpleJoin(b *testing.B) {
	build := benchTuples(40000)
	probe := benchTuples(40000)
	b.ReportAllocs()
	b.ResetTimer()
	var dst []relation.Tuple
	for i := 0; i < b.N; i++ {
		j := NewSimpleSized(Spec{BuildIsLower: true}, len(build))
		j.Insert(build)
		dst = j.ProbeInto(dst[:0], probe)
	}
	_ = dst
}
