package hashjoin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"multijoin/internal/relation"
)

// makeOperands builds two 1:1-joinable relations of cardinality n: the lower
// operand's Unique2 values equal the higher operand's Unique1 values through
// a shared boundary permutation.
func makeOperands(n int, seed int64) (lower, higher *relation.Relation) {
	rng := rand.New(rand.NewSource(seed))
	boundary := rng.Perm(n)
	lower = relation.New("L", 208)
	higher = relation.New("H", 208)
	for j := 0; j < n; j++ {
		lower.Append(relation.Tuple{
			Unique1: int64(rng.Intn(n * 10)),
			Unique2: int64(boundary[j]),
			Check:   uint64(j) + 1,
		})
		higher.Append(relation.Tuple{
			Unique1: int64(boundary[j]),
			Unique2: int64(rng.Intn(n * 10)),
			Check:   uint64(j) + 100000,
		})
	}
	// Shuffle higher so the operands are not row-aligned.
	rng.Shuffle(n, func(i, j int) {
		higher.Tuples[i], higher.Tuples[j] = higher.Tuples[j], higher.Tuples[i]
	})
	return lower, higher
}

func TestSpecAttrs(t *testing.T) {
	s := Spec{BuildIsLower: true}
	if s.BuildAttr() != relation.Unique2 || s.ProbeAttr() != relation.Unique1 {
		t.Error("lower operand must join on Unique2, higher on Unique1")
	}
	s = Spec{BuildIsLower: false}
	if s.BuildAttr() != relation.Unique1 || s.ProbeAttr() != relation.Unique2 {
		t.Error("mirrored spec attributes wrong")
	}
}

func TestSpecResultOrientation(t *testing.T) {
	lo := relation.Tuple{Unique1: 1, Unique2: 5, Check: 10}
	hi := relation.Tuple{Unique1: 5, Unique2: 9, Check: 20}
	// Build = lower.
	r1 := Spec{BuildIsLower: true}.Result(lo, hi)
	// Build = higher (mirrored): the build argument is now hi.
	r2 := Spec{BuildIsLower: false}.Result(hi, lo)
	if r1 != r2 {
		t.Errorf("result must not depend on build/probe roles: %+v vs %+v", r1, r2)
	}
	if r1.Unique1 != 1 || r1.Unique2 != 9 {
		t.Errorf("result attrs (%d,%d), want (1,9)", r1.Unique1, r1.Unique2)
	}
	if r1.Check != relation.CombineChecks(10, 20) {
		t.Error("result check must combine lower then higher")
	}
}

func TestTable(t *testing.T) {
	tab := NewTable(relation.Unique1)
	if tab.Attr() != relation.Unique1 {
		t.Error("Attr() wrong")
	}
	tab.Insert(relation.Tuple{Unique1: 3, Check: 1})
	tab.Insert(relation.Tuple{Unique1: 3, Check: 2})
	tab.Insert(relation.Tuple{Unique1: 4, Check: 3})
	if tab.Len() != 3 {
		t.Errorf("Len = %d", tab.Len())
	}
	if len(tab.Matches(3)) != 2 || len(tab.Matches(4)) != 1 || tab.Matches(99) != nil {
		t.Error("Matches wrong")
	}
}

func TestSimpleJoinOneToOne(t *testing.T) {
	lower, higher := makeOperands(500, 1)
	out := Join(lower, higher, Spec{BuildIsLower: true}, false)
	if out.Card() != 500 {
		t.Fatalf("result card %d, want 500", out.Card())
	}
}

func TestPipeliningMatchesSimple(t *testing.T) {
	lower, higher := makeOperands(300, 2)
	spec := Spec{BuildIsLower: true}
	simple := Join(lower, higher, spec, false)
	pipe := Join(lower, higher, spec, true)
	if d := relation.DiffMultiset(simple, pipe); d != "" {
		t.Errorf("pipelining differs from simple: %s", d)
	}
}

func TestMirroredSpecSameResult(t *testing.T) {
	lower, higher := makeOperands(200, 3)
	a := Join(lower, higher, Spec{BuildIsLower: true}, false)
	// Mirrored: build on the higher operand.
	b := Join(higher, lower, Spec{BuildIsLower: false}, false)
	if d := relation.DiffMultiset(a, b); d != "" {
		t.Errorf("mirrored join differs: %s", d)
	}
}

func TestSimpleJoinDuplicates(t *testing.T) {
	build := relation.New("B", 208)
	probe := relation.New("P", 208)
	// Two build tuples share the key; three probe tuples match it.
	build.Append(
		relation.Tuple{Unique2: 7, Check: 1},
		relation.Tuple{Unique2: 7, Check: 2},
		relation.Tuple{Unique2: 8, Check: 3},
	)
	probe.Append(
		relation.Tuple{Unique1: 7, Check: 4},
		relation.Tuple{Unique1: 7, Check: 5},
		relation.Tuple{Unique1: 7, Check: 6},
		relation.Tuple{Unique1: 9, Check: 7},
	)
	out := Join(build, probe, Spec{BuildIsLower: true}, false)
	if out.Card() != 6 {
		t.Errorf("duplicate join card %d, want 2*3=6", out.Card())
	}
	pipe := Join(build, probe, Spec{BuildIsLower: true}, true)
	if d := relation.DiffMultiset(out, pipe); d != "" {
		t.Errorf("pipelining disagrees on duplicates: %s", d)
	}
}

func TestEmptyOperands(t *testing.T) {
	empty := relation.New("E", 208)
	other := relation.New("O", 208)
	other.Append(relation.Tuple{Unique1: 1, Unique2: 2})
	for _, pipelined := range []bool{false, true} {
		if got := Join(empty, other, Spec{BuildIsLower: true}, pipelined); got.Card() != 0 {
			t.Errorf("empty build join card %d (pipelined=%v)", got.Card(), pipelined)
		}
		if got := Join(other, empty, Spec{BuildIsLower: true}, pipelined); got.Card() != 0 {
			t.Errorf("empty probe join card %d (pipelined=%v)", got.Card(), pipelined)
		}
	}
}

func TestPipeliningEmitsEarly(t *testing.T) {
	// The defining property of the pipelining join (Section 2.3.2): results
	// appear before either operand is complete.
	j := NewPipelining(Spec{BuildIsLower: true})
	out := j.FromBuildSide([]relation.Tuple{{Unique2: 1, Check: 1}})
	if len(out) != 0 {
		t.Fatal("no match possible yet")
	}
	out = j.FromProbeSide([]relation.Tuple{{Unique1: 1, Check: 2}})
	if len(out) != 1 {
		t.Fatalf("expected early result, got %d", len(out))
	}
	// The simple join by contrast produces nothing until its probe phase,
	// which the engine only enters after the full build.
	s := NewSimple(Spec{BuildIsLower: true})
	s.Insert([]relation.Tuple{{Unique2: 1, Check: 1}})
	if s.BuildSize() != 1 {
		t.Error("build size wrong")
	}
}

func TestPipeliningBatchInterleavingInvariance(t *testing.T) {
	// The result multiset must not depend on how operands are interleaved.
	lower, higher := makeOperands(128, 4)
	spec := Spec{BuildIsLower: true}
	want := Join(lower, higher, spec, false)

	j := NewPipelining(spec)
	out := relation.New("out", 208)
	// Feed all of the probe side first, then all of the build side.
	out.Append(j.FromProbeSide(higher.Tuples)...)
	out.Append(j.FromBuildSide(lower.Tuples)...)
	if d := relation.DiffMultiset(out, want); d != "" {
		t.Errorf("probe-first interleaving differs: %s", d)
	}
}

func TestPipeliningCloseSides(t *testing.T) {
	spec := Spec{BuildIsLower: true}
	j := NewPipelining(spec)
	j.FromBuildSide([]relation.Tuple{{Unique2: 1, Check: 1}})
	j.CloseBuildSide()
	if !j.SideClosed(true) || j.SideClosed(false) {
		t.Error("closed flags wrong")
	}
	// Probe tuples arriving after the build side closed still find matches
	// but are no longer inserted into the probe table.
	out := j.FromProbeSide([]relation.Tuple{{Unique1: 1, Check: 2}})
	if len(out) != 1 {
		t.Fatalf("match after close missing")
	}
	_, probeLen := j.Sizes()
	if probeLen != 0 {
		t.Errorf("probe table grew to %d after build side closed", probeLen)
	}
}

func TestPipeliningCloseCorrectness(t *testing.T) {
	// Closing a side once its input really ended never changes the result.
	lower, higher := makeOperands(100, 5)
	spec := Spec{BuildIsLower: true}
	want := Join(lower, higher, spec, false)
	j := NewPipelining(spec)
	out := relation.New("out", 208)
	out.Append(j.FromBuildSide(lower.Tuples)...)
	j.CloseBuildSide()
	out.Append(j.FromProbeSide(higher.Tuples)...)
	j.CloseProbeSide()
	if d := relation.DiffMultiset(out, want); d != "" {
		t.Errorf("result after closing differs: %s", d)
	}
}

// TestJoinAlgorithmsAgreeProperty: on random multisets with arbitrary key
// skew, simple and pipelining joins agree, in both orientations.
func TestJoinAlgorithmsAgreeProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, keys uint8) bool {
		n := int(nRaw%60) + 1
		k := int64(keys%10) + 1
		rng := rand.New(rand.NewSource(seed))
		lower := relation.New("L", 208)
		higher := relation.New("H", 208)
		for i := 0; i < n; i++ {
			lower.Append(relation.Tuple{
				Unique1: rng.Int63n(100), Unique2: rng.Int63n(k), Check: rng.Uint64(),
			})
			higher.Append(relation.Tuple{
				Unique1: rng.Int63n(k), Unique2: rng.Int63n(100), Check: rng.Uint64(),
			})
		}
		spec := Spec{BuildIsLower: true}
		a := Join(lower, higher, spec, false)
		b := Join(lower, higher, spec, true)
		c := Join(higher, lower, Spec{BuildIsLower: false}, true)
		return relation.EqualMultiset(a, b) && relation.EqualMultiset(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPipeliningMemorySizes(t *testing.T) {
	// The pipelining join's documented cost: it holds both operands.
	lower, higher := makeOperands(64, 6)
	j := NewPipelining(Spec{BuildIsLower: true})
	j.FromBuildSide(lower.Tuples)
	j.FromProbeSide(higher.Tuples)
	b, p := j.Sizes()
	if b != 64 || p != 64 {
		t.Errorf("Sizes = (%d,%d), want (64,64)", b, p)
	}
}
