package hashjoin

import "multijoin/internal/relation"

// MapTable is the retired map[int64][]Tuple hash-table implementation,
// kept as the reference oracle for differential tests of Table: simple,
// obviously correct, and allocation-heavy (one map entry plus one slice per
// distinct key). Production code uses Table.
type MapTable struct {
	attr relation.Attr
	m    map[int64][]relation.Tuple
	n    int
}

// NewMapTable returns an empty reference table keyed on the given attribute.
func NewMapTable(attr relation.Attr) *MapTable {
	return &MapTable{attr: attr, m: make(map[int64][]relation.Tuple)}
}

// Insert adds a tuple.
func (t *MapTable) Insert(tp relation.Tuple) {
	k := tp.Get(t.attr)
	t.m[k] = append(t.m[k], tp)
	t.n++
}

// Matches returns the tuples whose key attribute equals k (nil if none).
func (t *MapTable) Matches(k int64) []relation.Tuple { return t.m[k] }

// Len returns the number of inserted tuples.
func (t *MapTable) Len() int { return t.n }

// Attr returns the key attribute.
func (t *MapTable) Attr() relation.Attr { return t.attr }
