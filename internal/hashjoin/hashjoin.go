// Package hashjoin implements the two main-memory join algorithms compared
// in the paper (Section 2.3.2):
//
//   - the simple hash-join: a two-phase build-probe algorithm that first
//     builds a hash table over its build (inner/"left") operand and then
//     streams the probe (outer/"right") operand through it;
//
//   - the pipelining hash-join [WiA90, WiA91]: a symmetric one-phase
//     algorithm that maintains a hash table for *both* operands. Each
//     arriving tuple is hashed, probes the part of the other operand's table
//     built so far, emits any matches, and is then inserted into its own
//     table. Result tuples are produced as early as possible, enabling
//     pipelining along both operands at the cost of a second hash table.
//
// The algorithms are pure data-structure state machines over tuple batches;
// the execution engine drives them and separately accounts simulated time.
// They are also directly usable for sequential reference execution in tests.
//
// Join semantics follow the chain query of Section 4.1: the operand covering
// the lower chain span joins its Unique2 attribute against the Unique1
// attribute of the higher-span operand (the shared boundary attribute), and
// the result tuple is (lower.Unique1, higher.Unique2) with a provenance
// checksum combining both inputs — again a Wisconsin-shaped tuple, as the
// paper's projection step demands.
package hashjoin

import "multijoin/internal/relation"

// Spec fixes the roles of the two operands of one binary join. Build is the
// operand a simple hash-join builds its table from (the paper's "left"
// operand); Probe streams. BuildIsLower records which operand covers the
// lower chain span and therefore which join attributes apply.
type Spec struct {
	// BuildIsLower is true when the build operand covers the lower chain
	// span. Left-oriented trees build on the lower (intermediate) side;
	// mirrored trees flip this.
	BuildIsLower bool
}

// BuildAttr returns the join attribute of the build operand: the lower span
// joins on Unique2, the higher span on Unique1.
func (s Spec) BuildAttr() relation.Attr {
	if s.BuildIsLower {
		return relation.Unique2
	}
	return relation.Unique1
}

// ProbeAttr returns the join attribute of the probe operand.
func (s Spec) ProbeAttr() relation.Attr {
	if s.BuildIsLower {
		return relation.Unique1
	}
	return relation.Unique2
}

// Result combines one build-side and one probe-side tuple into the join
// result tuple. Independent of which operand built the table, the result is
// (lower.Unique1, higher.Unique2, combine(lower.Check, higher.Check)), so
// every algorithm and every strategy produces the identical relation for a
// given join tree.
func (s Spec) Result(build, probe relation.Tuple) relation.Tuple {
	lower, higher := build, probe
	if !s.BuildIsLower {
		lower, higher = probe, build
	}
	return relation.Tuple{
		Unique1: lower.Unique1,
		Unique2: higher.Unique2,
		Check:   relation.CombineChecks(lower.Check, higher.Check),
	}
}

// Table is an in-memory hash table over one join attribute.
type Table struct {
	attr relation.Attr
	m    map[int64][]relation.Tuple
	n    int
}

// NewTable returns an empty hash table keyed on the given attribute.
func NewTable(attr relation.Attr) *Table {
	return &Table{attr: attr, m: make(map[int64][]relation.Tuple)}
}

// Insert adds a tuple.
func (t *Table) Insert(tp relation.Tuple) {
	k := tp.Get(t.attr)
	t.m[k] = append(t.m[k], tp)
	t.n++
}

// Matches returns the tuples whose key attribute equals k (nil if none).
func (t *Table) Matches(k int64) []relation.Tuple { return t.m[k] }

// Len returns the number of inserted tuples.
func (t *Table) Len() int { return t.n }

// Attr returns the key attribute.
func (t *Table) Attr() relation.Attr { return t.attr }

// Simple is the state of one simple (build-probe) hash-join instance.
type Simple struct {
	spec  Spec
	table *Table
}

// NewSimple returns a fresh simple hash-join.
func NewSimple(spec Spec) *Simple {
	return &Simple{spec: spec, table: NewTable(spec.BuildAttr())}
}

// Spec returns the join specification.
func (j *Simple) Spec() Spec { return j.spec }

// Insert consumes a batch of build-operand tuples (build phase).
func (j *Simple) Insert(batch []relation.Tuple) {
	for _, tp := range batch {
		j.table.Insert(tp)
	}
}

// BuildSize returns the number of tuples in the hash table.
func (j *Simple) BuildSize() int { return j.table.Len() }

// Probe streams a batch of probe-operand tuples through the (complete) hash
// table and returns the result tuples. The caller is responsible for not
// probing before the build phase finished — the engine buffers early probe
// input, which is exactly the blocking behaviour of the algorithm.
func (j *Simple) Probe(batch []relation.Tuple) []relation.Tuple {
	var out []relation.Tuple
	pa := j.spec.ProbeAttr()
	for _, tp := range batch {
		for _, b := range j.table.Matches(tp.Get(pa)) {
			out = append(out, j.spec.Result(b, tp))
		}
	}
	return out
}

// Pipelining is the state of one pipelining (symmetric) hash-join instance.
//
// As an optimization, an operand's tuples are inserted into that operand's
// hash table only while the *other* operand is still open: once the other
// side has ended, no future arrival can need the insertion, so the tuple
// only probes (one table action instead of two). On a right-linear tree,
// where every build operand is a base relation that ends quickly, the
// pipelining join therefore degenerates to simple-hash-join behaviour —
// which is why RD and FP coincide on right-linear trees (Figure 13).
type Pipelining struct {
	spec        Spec
	buildTable  *Table // tuples seen on the build side
	probeTable  *Table // tuples seen on the probe side
	buildClosed bool
	probeClosed bool
}

// NewPipelining returns a fresh pipelining hash-join.
func NewPipelining(spec Spec) *Pipelining {
	return &Pipelining{
		spec:       spec,
		buildTable: NewTable(spec.BuildAttr()),
		probeTable: NewTable(spec.ProbeAttr()),
	}
}

// Spec returns the join specification.
func (j *Pipelining) Spec() Spec { return j.spec }

// FromBuildSide consumes a batch arriving on the build operand: each tuple
// probes the probe-side table built so far and, while the probe operand is
// still open, is inserted into the build-side table. Matches found are
// returned immediately.
func (j *Pipelining) FromBuildSide(batch []relation.Tuple) []relation.Tuple {
	var out []relation.Tuple
	ba := j.spec.BuildAttr()
	for _, tp := range batch {
		for _, p := range j.probeTable.Matches(tp.Get(ba)) {
			out = append(out, j.spec.Result(tp, p))
		}
		if !j.probeClosed {
			j.buildTable.Insert(tp)
		}
	}
	return out
}

// FromProbeSide consumes a batch arriving on the probe operand,
// symmetrically to FromBuildSide.
func (j *Pipelining) FromProbeSide(batch []relation.Tuple) []relation.Tuple {
	var out []relation.Tuple
	pa := j.spec.ProbeAttr()
	for _, tp := range batch {
		for _, b := range j.buildTable.Matches(tp.Get(pa)) {
			out = append(out, j.spec.Result(b, tp))
		}
		if !j.buildClosed {
			j.probeTable.Insert(tp)
		}
	}
	return out
}

// CloseBuildSide declares the build operand ended: probe-side tuples stop
// being inserted (one table action per tuple instead of two).
func (j *Pipelining) CloseBuildSide() { j.buildClosed = true }

// CloseProbeSide declares the probe operand ended.
func (j *Pipelining) CloseProbeSide() { j.probeClosed = true }

// SideClosed reports whether the given side (build=true) has ended.
func (j *Pipelining) SideClosed(build bool) bool {
	if build {
		return j.buildClosed
	}
	return j.probeClosed
}

// Sizes returns the number of tuples stored in the build- and probe-side
// tables; the pipelining algorithm's extra memory cost is their sum.
func (j *Pipelining) Sizes() (build, probe int) {
	return j.buildTable.Len(), j.probeTable.Len()
}

// Join runs a complete join of two materialized relations with the given
// spec, using the pipelining algorithm if pipelined is set and the simple
// algorithm otherwise. Both produce the same multiset; the flag exists so
// tests can assert exactly that.
func Join(build, probe *relation.Relation, spec Spec, pipelined bool) *relation.Relation {
	out := relation.New("join", build.TupleBytes)
	if pipelined {
		j := NewPipelining(spec)
		// Interleave the operands to exercise the symmetric path.
		bi, pi := 0, 0
		const chunk = 16
		for bi < len(build.Tuples) || pi < len(probe.Tuples) {
			if bi < len(build.Tuples) {
				hi := bi + chunk
				if hi > len(build.Tuples) {
					hi = len(build.Tuples)
				}
				out.Append(j.FromBuildSide(build.Tuples[bi:hi])...)
				bi = hi
			}
			if pi < len(probe.Tuples) {
				hi := pi + chunk
				if hi > len(probe.Tuples) {
					hi = len(probe.Tuples)
				}
				out.Append(j.FromProbeSide(probe.Tuples[pi:hi])...)
				pi = hi
			}
		}
		return out
	}
	j := NewSimple(spec)
	j.Insert(build.Tuples)
	out.Append(j.Probe(probe.Tuples)...)
	return out
}
