// Package hashjoin implements the two main-memory join algorithms compared
// in the paper (Section 2.3.2):
//
//   - the simple hash-join: a two-phase build-probe algorithm that first
//     builds a hash table over its build (inner/"left") operand and then
//     streams the probe (outer/"right") operand through it;
//
//   - the pipelining hash-join [WiA90, WiA91]: a symmetric one-phase
//     algorithm that maintains a hash table for *both* operands. Each
//     arriving tuple is hashed, probes the part of the other operand's table
//     built so far, emits any matches, and is then inserted into its own
//     table. Result tuples are produced as early as possible, enabling
//     pipelining along both operands at the cost of a second hash table.
//
// The algorithms are pure data-structure state machines over tuple batches;
// the execution engine drives them and separately accounts simulated time.
// They are also directly usable for sequential reference execution in tests.
//
// The hash table itself is an open-addressing table over a flat slot array
// plus a tuple arena (see Table) — the compact, reusable state the symmetric
// hash-join literature assumes — so steady-state inserts and probes allocate
// nothing. MapTable keeps the retired map[int64][]Tuple implementation as
// the reference for differential tests.
//
// Join semantics follow the chain query of Section 4.1: the operand covering
// the lower chain span joins its Unique2 attribute against the Unique1
// attribute of the higher-span operand (the shared boundary attribute), and
// the result tuple is (lower.Unique1, higher.Unique2) with a provenance
// checksum combining both inputs — again a Wisconsin-shaped tuple, as the
// paper's projection step demands.
package hashjoin

import "multijoin/internal/relation"

// Spec fixes the roles of the two operands of one binary join. Build is the
// operand a simple hash-join builds its table from (the paper's "left"
// operand); Probe streams. BuildIsLower records which operand covers the
// lower chain span and therefore which join attributes apply.
type Spec struct {
	// BuildIsLower is true when the build operand covers the lower chain
	// span. Left-oriented trees build on the lower (intermediate) side;
	// mirrored trees flip this.
	BuildIsLower bool
}

// BuildAttr returns the join attribute of the build operand: the lower span
// joins on Unique2, the higher span on Unique1.
func (s Spec) BuildAttr() relation.Attr {
	if s.BuildIsLower {
		return relation.Unique2
	}
	return relation.Unique1
}

// ProbeAttr returns the join attribute of the probe operand.
func (s Spec) ProbeAttr() relation.Attr {
	if s.BuildIsLower {
		return relation.Unique1
	}
	return relation.Unique2
}

// Result combines one build-side and one probe-side tuple into the join
// result tuple. Independent of which operand built the table, the result is
// (lower.Unique1, higher.Unique2, combine(lower.Check, higher.Check)), so
// every algorithm and every strategy produces the identical relation for a
// given join tree.
func (s Spec) Result(build, probe relation.Tuple) relation.Tuple {
	lower, higher := build, probe
	if !s.BuildIsLower {
		lower, higher = probe, build
	}
	return relation.Tuple{
		Unique1: lower.Unique1,
		Unique2: higher.Unique2,
		Check:   relation.CombineChecks(lower.Check, higher.Check),
	}
}

// nilIndex terminates entry chains and marks free slots.
const nilIndex = -1

// minSlots keeps the slot array non-empty so the probe loop needs no
// emptiness check.
const minSlots = 16

// entry is one arena cell: a stored tuple plus the arena index of the next
// tuple with the same key (duplicate chain), or nilIndex.
type entry struct {
	tuple relation.Tuple
	next  int32
}

// Table is an in-memory hash table over one join attribute: an
// open-addressing slot array (linear probing, power-of-two size, no
// tombstones — the table only ever grows) whose slots point into a tuple
// arena. Duplicate keys chain inside the arena, so one slot per distinct
// key. Steady-state Insert performs no per-key allocation; growth doubles
// the slot array and re-seats slot heads without touching the arena.
//
// Sizing the table from the operand's declared cardinality (NewTableSized)
// avoids rehash churn entirely — the PRISMA/DB setting, where scans declare
// their fragment sizes up front.
type Table struct {
	attr    relation.Attr
	keys    []int64 // keys[s] is meaningful only when head[s] != nilIndex
	head    []int32 // slot -> first arena entry of the key's chain
	entries []entry // tuple arena, insertion-ordered
	used    int     // occupied slots (distinct keys)
	mask    uint64
}

// hashKey mixes a join-attribute value for slot addressing (same multiplier
// as relation.HashKey; the slot count is a power of two, so the high bits
// are folded down).
func hashKey(k int64) uint64 {
	h := uint64(k) * 0x9e3779b97f4a7c15
	return h ^ h>>32
}

// NewTable returns an empty hash table keyed on the given attribute, sized
// for small inputs. Use NewTableSized when the cardinality is known.
func NewTable(attr relation.Attr) *Table { return NewTableSized(attr, 0) }

// NewTableSized returns an empty hash table keyed on the given attribute
// with capacity for hint tuples before any growth.
func NewTableSized(attr relation.Attr, hint int) *Table {
	slots := minSlots
	for slots*3 < hint*4 { // keep load factor under 3/4 at hint tuples
		slots *= 2
	}
	t := &Table{
		attr: attr,
		keys: make([]int64, slots),
		head: make([]int32, slots),
		mask: uint64(slots - 1),
	}
	if hint > 0 {
		t.entries = make([]entry, 0, hint)
	}
	for i := range t.head {
		t.head[i] = nilIndex
	}
	return t
}

// Insert adds a tuple.
func (t *Table) Insert(tp relation.Tuple) {
	k := tp.Get(t.attr)
	s := hashKey(k) & t.mask
	for t.head[s] != nilIndex {
		if t.keys[s] == k {
			t.entries = append(t.entries, entry{tuple: tp, next: t.head[s]})
			t.head[s] = int32(len(t.entries) - 1)
			return
		}
		s = (s + 1) & t.mask
	}
	t.entries = append(t.entries, entry{tuple: tp, next: nilIndex})
	t.keys[s] = k
	t.head[s] = int32(len(t.entries) - 1)
	t.used++
	if t.used*4 > len(t.head)*3 {
		t.grow()
	}
}

// grow doubles the slot array and re-seats every chain head. The arena and
// its chains are untouched: only the distinct keys rehash.
func (t *Table) grow() {
	oldKeys, oldHead := t.keys, t.head
	slots := len(oldHead) * 2
	t.keys = make([]int64, slots)
	t.head = make([]int32, slots)
	t.mask = uint64(slots - 1)
	for i := range t.head {
		t.head[i] = nilIndex
	}
	for s, h := range oldHead {
		if h == nilIndex {
			continue
		}
		k := oldKeys[s]
		d := hashKey(k) & t.mask
		for t.head[d] != nilIndex {
			d = (d + 1) & t.mask
		}
		t.keys[d] = k
		t.head[d] = h
	}
}

// First returns the arena index of the most recently inserted tuple whose
// key attribute equals k, or a negative index if none. Iterate the full
// duplicate chain with Next:
//
//	for i := t.First(k); i >= 0; i = t.Next(i) {
//	    tp := t.At(i)
//	}
//
// The loop allocates nothing.
func (t *Table) First(k int64) int32 {
	s := hashKey(k) & t.mask
	for t.head[s] != nilIndex {
		if t.keys[s] == k {
			return t.head[s]
		}
		s = (s + 1) & t.mask
	}
	return nilIndex
}

// Next returns the arena index of the next tuple with the same key as entry
// i, or a negative index at the end of the chain.
func (t *Table) Next(i int32) int32 { return t.entries[i].next }

// At returns the tuple stored at arena index i.
func (t *Table) At(i int32) relation.Tuple { return t.entries[i].tuple }

// Matches returns the tuples whose key attribute equals k (nil if none).
// It allocates a fresh slice per call; hot paths iterate First/Next instead.
func (t *Table) Matches(k int64) []relation.Tuple {
	var out []relation.Tuple
	for i := t.First(k); i >= 0; i = t.Next(i) {
		out = append(out, t.At(i))
	}
	return out
}

// Len returns the number of inserted tuples.
func (t *Table) Len() int { return len(t.entries) }

// Attr returns the key attribute.
func (t *Table) Attr() relation.Attr { return t.attr }

// Simple is the state of one simple (build-probe) hash-join instance.
type Simple struct {
	spec  Spec
	table *Table
}

// NewSimple returns a fresh simple hash-join. Use NewSimpleSized when the
// build cardinality is known.
func NewSimple(spec Spec) *Simple { return NewSimpleSized(spec, 0) }

// NewSimpleSized returns a fresh simple hash-join whose table has capacity
// for hint build tuples before any growth.
func NewSimpleSized(spec Spec, hint int) *Simple {
	return &Simple{spec: spec, table: NewTableSized(spec.BuildAttr(), hint)}
}

// Spec returns the join specification.
func (j *Simple) Spec() Spec { return j.spec }

// Insert consumes a batch of build-operand tuples (build phase).
func (j *Simple) Insert(batch []relation.Tuple) {
	for _, tp := range batch {
		j.table.Insert(tp)
	}
}

// BuildSize returns the number of tuples in the hash table.
func (j *Simple) BuildSize() int { return j.table.Len() }

// ProbeInto streams a batch of probe-operand tuples through the (complete)
// hash table, appends the result tuples to dst and returns the extended
// slice — the allocation-free form of Probe for callers that reuse a
// scratch buffer. The caller is responsible for not probing before the
// build phase finished — the engine buffers early probe input, which is
// exactly the blocking behaviour of the algorithm.
func (j *Simple) ProbeInto(dst, batch []relation.Tuple) []relation.Tuple {
	pa := j.spec.ProbeAttr()
	t := j.table
	for _, tp := range batch {
		for i := t.First(tp.Get(pa)); i >= 0; i = t.Next(i) {
			dst = append(dst, j.spec.Result(t.At(i), tp))
		}
	}
	return dst
}

// Probe is ProbeInto into a fresh slice.
func (j *Simple) Probe(batch []relation.Tuple) []relation.Tuple {
	return j.ProbeInto(nil, batch)
}

// Pipelining is the state of one pipelining (symmetric) hash-join instance.
//
// As an optimization, an operand's tuples are inserted into that operand's
// hash table only while the *other* operand is still open: once the other
// side has ended, no future arrival can need the insertion, so the tuple
// only probes (one table action instead of two). On a right-linear tree,
// where every build operand is a base relation that ends quickly, the
// pipelining join therefore degenerates to simple-hash-join behaviour —
// which is why RD and FP coincide on right-linear trees (Figure 13).
type Pipelining struct {
	spec        Spec
	buildTable  *Table // tuples seen on the build side
	probeTable  *Table // tuples seen on the probe side
	buildClosed bool
	probeClosed bool
}

// NewPipelining returns a fresh pipelining hash-join. Use NewPipeliningSized
// when the operand cardinalities are known.
func NewPipelining(spec Spec) *Pipelining { return NewPipeliningSized(spec, 0) }

// NewPipeliningSized returns a fresh pipelining hash-join whose two tables
// each have capacity for hint tuples before any growth.
func NewPipeliningSized(spec Spec, hint int) *Pipelining {
	return &Pipelining{
		spec:       spec,
		buildTable: NewTableSized(spec.BuildAttr(), hint),
		probeTable: NewTableSized(spec.ProbeAttr(), hint),
	}
}

// Spec returns the join specification.
func (j *Pipelining) Spec() Spec { return j.spec }

// FromBuildSideInto consumes a batch arriving on the build operand: each
// tuple probes the probe-side table built so far and, while the probe
// operand is still open, is inserted into the build-side table. Matches are
// appended to dst and the extended slice returned.
func (j *Pipelining) FromBuildSideInto(dst, batch []relation.Tuple) []relation.Tuple {
	ba := j.spec.BuildAttr()
	pt := j.probeTable
	for _, tp := range batch {
		for i := pt.First(tp.Get(ba)); i >= 0; i = pt.Next(i) {
			dst = append(dst, j.spec.Result(tp, pt.At(i)))
		}
		if !j.probeClosed {
			j.buildTable.Insert(tp)
		}
	}
	return dst
}

// FromBuildSide is FromBuildSideInto into a fresh slice.
func (j *Pipelining) FromBuildSide(batch []relation.Tuple) []relation.Tuple {
	return j.FromBuildSideInto(nil, batch)
}

// FromProbeSideInto consumes a batch arriving on the probe operand,
// symmetrically to FromBuildSideInto.
func (j *Pipelining) FromProbeSideInto(dst, batch []relation.Tuple) []relation.Tuple {
	pa := j.spec.ProbeAttr()
	bt := j.buildTable
	for _, tp := range batch {
		for i := bt.First(tp.Get(pa)); i >= 0; i = bt.Next(i) {
			dst = append(dst, j.spec.Result(bt.At(i), tp))
		}
		if !j.buildClosed {
			j.probeTable.Insert(tp)
		}
	}
	return dst
}

// FromProbeSide is FromProbeSideInto into a fresh slice.
func (j *Pipelining) FromProbeSide(batch []relation.Tuple) []relation.Tuple {
	return j.FromProbeSideInto(nil, batch)
}

// CloseBuildSide declares the build operand ended: probe-side tuples stop
// being inserted (one table action per tuple instead of two).
func (j *Pipelining) CloseBuildSide() { j.buildClosed = true }

// CloseProbeSide declares the probe operand ended.
func (j *Pipelining) CloseProbeSide() { j.probeClosed = true }

// SideClosed reports whether the given side (build=true) has ended.
func (j *Pipelining) SideClosed(build bool) bool {
	if build {
		return j.buildClosed
	}
	return j.probeClosed
}

// Sizes returns the number of tuples stored in the build- and probe-side
// tables; the pipelining algorithm's extra memory cost is their sum.
func (j *Pipelining) Sizes() (build, probe int) {
	return j.buildTable.Len(), j.probeTable.Len()
}

// Join runs a complete join of two materialized relations with the given
// spec, using the pipelining algorithm if pipelined is set and the simple
// algorithm otherwise. Both produce the same multiset; the flag exists so
// tests can assert exactly that.
func Join(build, probe *relation.Relation, spec Spec, pipelined bool) *relation.Relation {
	out := relation.New("join", build.TupleBytes)
	if pipelined {
		hint := build.Card()
		if probe.Card() > hint {
			hint = probe.Card()
		}
		j := NewPipeliningSized(spec, hint)
		// Interleave the operands to exercise the symmetric path.
		bi, pi := 0, 0
		const chunk = 16
		for bi < len(build.Tuples) || pi < len(probe.Tuples) {
			if bi < len(build.Tuples) {
				hi := bi + chunk
				if hi > len(build.Tuples) {
					hi = len(build.Tuples)
				}
				out.Append(j.FromBuildSide(build.Tuples[bi:hi])...)
				bi = hi
			}
			if pi < len(probe.Tuples) {
				hi := pi + chunk
				if hi > len(probe.Tuples) {
					hi = len(probe.Tuples)
				}
				out.Append(j.FromProbeSide(probe.Tuples[pi:hi])...)
				pi = hi
			}
		}
		return out
	}
	j := NewSimpleSized(spec, build.Card())
	j.Insert(build.Tuples)
	out.Append(j.Probe(probe.Tuples)...)
	return out
}
