// Package hashjoin implements the two main-memory join algorithms compared
// in the paper (Section 2.3.2):
//
//   - the simple hash-join: a two-phase build-probe algorithm that first
//     builds a hash table over its build (inner/"left") operand and then
//     streams the probe (outer/"right") operand through it;
//
//   - the pipelining hash-join [WiA90, WiA91]: a symmetric one-phase
//     algorithm that maintains a hash table for *both* operands. Each
//     arriving tuple is hashed, probes the part of the other operand's table
//     built so far, emits any matches, and is then inserted into its own
//     table. Result tuples are produced as early as possible, enabling
//     pipelining along both operands at the cost of a second hash table.
//
// The algorithms are pure data-structure state machines over tuple batches;
// the execution engine drives them and separately accounts simulated time.
// They are also directly usable for sequential reference execution in tests.
//
// The hash table itself is an open-addressing table over a flat slot array
// plus a tuple arena (see Table) — the compact, reusable state the symmetric
// hash-join literature assumes — so steady-state inserts and probes allocate
// nothing. MapTable keeps the retired map[int64][]Tuple implementation as
// the reference for differential tests.
//
// Join semantics follow the chain query of Section 4.1: the operand covering
// the lower chain span joins its Unique2 attribute against the Unique1
// attribute of the higher-span operand (the shared boundary attribute), and
// the result tuple is (lower.Unique1, higher.Unique2) with a provenance
// checksum combining both inputs — again a Wisconsin-shaped tuple, as the
// paper's projection step demands.
package hashjoin

import (
	"math/bits"
	"sync"

	"multijoin/internal/relation"
)

// Spec fixes the roles of the two operands of one binary join. Build is the
// operand a simple hash-join builds its table from (the paper's "left"
// operand); Probe streams. BuildIsLower records which operand covers the
// lower chain span and therefore which join attributes apply.
type Spec struct {
	// BuildIsLower is true when the build operand covers the lower chain
	// span. Left-oriented trees build on the lower (intermediate) side;
	// mirrored trees flip this.
	BuildIsLower bool
}

// BuildAttr returns the join attribute of the build operand: the lower span
// joins on Unique2, the higher span on Unique1.
func (s Spec) BuildAttr() relation.Attr {
	if s.BuildIsLower {
		return relation.Unique2
	}
	return relation.Unique1
}

// ProbeAttr returns the join attribute of the probe operand.
func (s Spec) ProbeAttr() relation.Attr {
	if s.BuildIsLower {
		return relation.Unique1
	}
	return relation.Unique2
}

// Result combines one build-side and one probe-side tuple into the join
// result tuple. Independent of which operand built the table, the result is
// (lower.Unique1, higher.Unique2, combine(lower.Check, higher.Check)), so
// every algorithm and every strategy produces the identical relation for a
// given join tree.
func (s Spec) Result(build, probe relation.Tuple) relation.Tuple {
	lower, higher := build, probe
	if !s.BuildIsLower {
		lower, higher = probe, build
	}
	return relation.Tuple{
		Unique1: lower.Unique1,
		Unique2: higher.Unique2,
		Check:   relation.CombineChecks(lower.Check, higher.Check),
	}
}

// minSlots keeps the slot array non-empty so the probe loop needs no
// emptiness check.
const minSlots = 16

// RadixBuildMinTuples is the batch size from which a bulk insert
// (InsertBatchRadix) partitions its rows by destination slot before
// inserting: below it the slot array fits in cache and the scatter order is
// irrelevant; above it slot-ordered insertion turns random slot-array
// writes into near-sequential ones.
const RadixBuildMinTuples = 1 << 14

// radixBuckets is the fan-out of the slot-ordered bulk insert.
const radixBuckets = 256

// Table is an in-memory hash table over one join attribute: an
// open-addressing slot array (linear probing, power-of-two size, no
// tombstones) whose slots point into a columnar tuple arena (parallel
// u1/u2/check columns plus a next column for duplicate chains), so one
// slot per distinct key and three flat []int64-shaped arrays for the
// probe loops to stream over. Steady-state Insert performs no per-key
// allocation; growth doubles the slot array and re-seats slot heads
// without touching the arena.
//
// Slot heads and chain links store arena index + 1, with 0 meaning
// empty/end-of-chain: the zero value of a freshly made slot array is
// already "all empty", so neither construction nor growth pays a fill
// loop. The exported First/Next/At iteration API keeps its historical
// 0-based indices with negative meaning "none".
//
// Delete removes one tuple instance again (incremental view maintenance
// retracts tuples from resident tables). A slot whose last chain entry is
// deleted is emptied by backward-shift deletion — displaced entries are
// relocated into the hole — rather than tombstoned, so the probe loops
// keep their two-state slot model (occupied or empty, never "deleted")
// and stay byte-identical to the insert-only table. Freed arena rows are
// threaded onto a free list through the next column and reused by later
// inserts, keeping a steady-state delete/insert workload allocation-free.
//
// Sizing the table from the operand's declared cardinality (NewTableSized)
// avoids rehash churn entirely — the PRISMA/DB setting, where scans declare
// their fragment sizes up front.
type Table struct {
	attr relation.Attr
	keys []int64 // keys[s] is meaningful only when head[s] != 0
	head []int32 // slot -> arena index+1 of the key's chain head; 0 = empty
	// Columnar arena, insertion-ordered. next[i] is the arena index+1 of
	// the next tuple with the same key, 0 at the end of the chain. Rows on
	// the free list reuse next as the free-list link.
	u1    []int64
	u2    []int64
	check []uint64
	next  []int32
	free  int32 // arena index+1 of the first free (deleted) row; 0 = none
	used  int   // occupied slots (distinct keys)
	live  int   // inserted minus deleted tuples
	mask  uint64
}

// hashKey mixes a join-attribute value for slot addressing (same multiplier
// as relation.HashKey; the slot count is a power of two, so the high bits
// are folded down).
func hashKey(k int64) uint64 {
	h := uint64(k) * 0x9e3779b97f4a7c15
	return h ^ h>>32
}

// NewTable returns an empty hash table keyed on the given attribute, sized
// for small inputs. Use NewTableSized when the cardinality is known.
func NewTable(attr relation.Attr) *Table { return NewTableSized(attr, 0) }

// tableMem is the recyclable backing memory of one Table: the slot arrays
// of one power-of-two slot class plus the arena columns that grew on top of
// them. Join tables are born and die with every operation process, so
// recycling their backing store removes the dominant allocation (and the
// page-zeroing that comes with it) from the per-query cost.
type tableMem struct {
	keys  []int64
	head  []int32
	u1    []int64
	u2    []int64
	check []uint64
	next  []int32
}

// tablePools recycles table backing memory by slot class; index i holds
// memory whose slot arrays have exactly 1<<i slots. sync.Pool keeps the
// recycling GC-aware: an idle process drops the hoard on the next cycle.
var tablePools [33]sync.Pool

// Release returns the table's backing memory to the recycle pool and
// leaves the table unusable. Only the owner that created the table may
// release it, and must not touch the table — or any tuple slice previously
// returned by Matches, which aliases the arena — afterwards.
func (t *Table) Release() {
	slots := len(t.head)
	if slots == 0 {
		return
	}
	m := &tableMem{
		keys:  t.keys,
		head:  t.head,
		u1:    t.u1[:0],
		u2:    t.u2[:0],
		check: t.check[:0],
		next:  t.next[:0],
	}
	t.keys, t.head = nil, nil
	t.u1, t.u2, t.check, t.next = nil, nil, nil, nil
	t.free, t.used, t.live, t.mask = 0, 0, 0, 0
	tablePools[bits.TrailingZeros(uint(slots))].Put(m)
}

// NewTableSized returns an empty hash table keyed on the given attribute
// with capacity for hint tuples before any growth, reusing released
// backing memory of the same slot class when available.
func NewTableSized(attr relation.Attr, hint int) *Table {
	slots := minSlots
	for slots*3 < hint*4 { // keep load factor under 3/4 at hint tuples
		slots *= 2
	}
	t := &Table{attr: attr, mask: uint64(slots - 1)}
	if m, _ := tablePools[bits.TrailingZeros(uint(slots))].Get().(*tableMem); m != nil {
		// Only the chain heads must read as empty; keys[s] is never read
		// while head[s] == 0, so the stale keys need no clearing.
		for i := range m.head {
			m.head[i] = 0
		}
		t.keys, t.head = m.keys, m.head
		t.u1, t.u2, t.check, t.next = m.u1, m.u2, m.check, m.next
	} else {
		t.keys = make([]int64, slots)
		t.head = make([]int32, slots)
	}
	if hint > 0 && cap(t.u1) < hint {
		t.u1 = make([]int64, 0, hint)
		t.u2 = make([]int64, 0, hint)
		t.check = make([]uint64, 0, hint)
		t.next = make([]int32, 0, hint)
	}
	return t
}

// Insert adds a tuple.
func (t *Table) Insert(tp relation.Tuple) {
	t.insert(tp.Get(t.attr), tp.Unique1, tp.Unique2, tp.Check)
}

// insert adds one row given its key and column values.
func (t *Table) insert(k, u1v, u2v int64, ck uint64) {
	t.insertHashed(hashKey(k), k, u1v, u2v, ck)
}

// insertHashed is insert with the key hash precomputed (the radix bulk
// insert hashes once for bucketing and reuses it here).
func (t *Table) insertHashed(h uint64, k, u1v, u2v int64, ck uint64) {
	t.live++
	s := h & t.mask
	for t.head[s] != 0 {
		if t.keys[s] == k {
			t.head[s] = t.newRow(u1v, u2v, ck, t.head[s])
			return
		}
		s = (s + 1) & t.mask
	}
	t.head[s] = t.newRow(u1v, u2v, ck, 0)
	t.keys[s] = k
	t.used++
	if t.used*4 > len(t.head)*3 {
		t.grow(len(t.head) * 2)
	}
}

// newRow stores one arena row — popping the free list when a deleted row
// can be reused, appending otherwise — and returns its index+1.
func (t *Table) newRow(u1v, u2v int64, ck uint64, next int32) int32 {
	if e := t.free; e != 0 {
		j := e - 1
		t.free = t.next[j]
		t.u1[j], t.u2[j], t.check[j] = u1v, u2v, ck
		t.next[j] = next
		return e
	}
	t.u1 = append(t.u1, u1v)
	t.u2 = append(t.u2, u2v)
	t.check = append(t.check, ck)
	t.next = append(t.next, next)
	return int32(len(t.u1))
}

// InsertBatch adds every tuple of a columnar batch: the key column is read
// in one tight loop, the other columns are scattered into the arena.
func (t *Table) InsertBatch(b *relation.Batch) {
	keys := b.Col(t.attr)
	for i, k := range keys {
		t.insert(k, b.U1[i], b.U2[i], b.Check[i])
	}
}

// InsertBatchRadix is InsertBatch with a radix-partitioned build for large
// batches: rows are bucketed by the slot range their key hashes into
// (counting sort over the key column) and inserted bucket-by-bucket, so
// writes to the slot array proceed nearly sequentially instead of striding
// randomly across a table that no longer fits in cache. Small batches fall
// through to the plain insert loop.
func (t *Table) InsertBatchRadix(b *relation.Batch) {
	n := b.Len()
	if n < RadixBuildMinTuples {
		t.InsertBatch(b)
		return
	}
	// Pre-grow so no rehash happens mid-build (growth would remap the
	// slot ranges the buckets were computed from).
	t.reserve(len(t.u1) + n)
	shift := 0
	for s := len(t.head) / radixBuckets; s > 1; s >>= 1 {
		shift++
	}
	keys := b.Col(t.attr)
	hashes := make([]uint64, n)
	var counts [radixBuckets]int32
	for i, k := range keys {
		h := hashKey(k)
		hashes[i] = h
		counts[(h&t.mask)>>shift]++
	}
	starts := make([]int32, radixBuckets)
	var sum int32
	for bkt, c := range counts {
		starts[bkt] = sum
		sum += c
	}
	order := make([]int32, n)
	for i, h := range hashes {
		bkt := (h & t.mask) >> shift
		order[starts[bkt]] = int32(i)
		starts[bkt]++
	}
	for _, i := range order {
		t.insertHashed(hashes[i], keys[i], b.U1[i], b.U2[i], b.Check[i])
	}
}

// reserve grows the slot array until total tuples fit under the 3/4 load
// factor without further growth.
func (t *Table) reserve(total int) {
	slots := len(t.head)
	for slots*3 < total*4 {
		slots *= 2
	}
	if slots > len(t.head) {
		t.grow(slots)
	}
}

// grow re-seats every chain head into a larger slot array. The arena and
// its chains are untouched: only the distinct keys rehash. The new arrays
// come zero-initialized from make, and 0 already means "empty slot".
func (t *Table) grow(slots int) {
	oldKeys, oldHead := t.keys, t.head
	t.keys = make([]int64, slots)
	t.head = make([]int32, slots)
	t.mask = uint64(slots - 1)
	for s, h := range oldHead {
		if h == 0 {
			continue
		}
		k := oldKeys[s]
		d := hashKey(k) & t.mask
		for t.head[d] != 0 {
			d = (d + 1) & t.mask
		}
		t.keys[d] = k
		t.head[d] = h
	}
}

// First returns the arena index of the most recently inserted tuple whose
// key attribute equals k, or a negative index if none. Iterate the full
// duplicate chain with Next:
//
//	for i := t.First(k); i >= 0; i = t.Next(i) {
//	    tp := t.At(i)
//	}
//
// The loop allocates nothing.
func (t *Table) First(k int64) int32 {
	s := hashKey(k) & t.mask
	for t.head[s] != 0 {
		if t.keys[s] == k {
			return t.head[s] - 1
		}
		s = (s + 1) & t.mask
	}
	return -1
}

// Next returns the arena index of the next tuple with the same key as entry
// i, or a negative index at the end of the chain.
func (t *Table) Next(i int32) int32 { return t.next[i] - 1 }

// At returns the tuple stored at arena index i.
func (t *Table) At(i int32) relation.Tuple {
	return relation.Tuple{Unique1: t.u1[i], Unique2: t.u2[i], Check: t.check[i]}
}

// Delete removes one instance of tp (matched on all three columns) and
// reports whether one was found. The freed arena row goes on the free list
// for the next insert; a slot whose chain empties is removed by
// backward-shift deletion, so no tombstones accumulate and the probe
// loops' invariants are untouched. Delete allocates nothing.
func (t *Table) Delete(tp relation.Tuple) bool {
	k := tp.Get(t.attr)
	s := hashKey(k) & t.mask
	for {
		if t.head[s] == 0 {
			return false
		}
		if t.keys[s] == k {
			break
		}
		s = (s + 1) & t.mask
	}
	var prev int32
	for e := t.head[s]; e != 0; {
		j := e - 1
		if t.u1[j] == tp.Unique1 && t.u2[j] == tp.Unique2 && t.check[j] == tp.Check {
			nxt := t.next[j]
			switch {
			case prev != 0:
				t.next[prev-1] = nxt
			case nxt != 0:
				t.head[s] = nxt
			default:
				t.clearSlot(s)
			}
			t.next[j] = t.free
			t.free = e
			t.live--
			return true
		}
		prev, e = e, t.next[j]
	}
	return false
}

// clearSlot empties slot s by backward-shift deletion: scan forward
// through the probe cluster and move any entry whose ideal slot cannot
// reach it past the new hole back into the hole, repeating from the
// entry's old position until the cluster ends. Lookups that probe from any
// key's ideal slot then still find every remaining entry before an empty
// slot, with no tombstone state.
func (t *Table) clearSlot(s uint64) {
	t.used--
	t.head[s] = 0
	hole := s
	for j := s; ; {
		j = (j + 1) & t.mask
		if t.head[j] == 0 {
			return
		}
		ideal := hashKey(t.keys[j]) & t.mask
		// The entry at j may move into the hole unless its ideal slot lies
		// cyclically in (hole, j] — then it is still reachable from ideal
		// without passing the hole.
		if (j-ideal)&t.mask >= (j-hole)&t.mask {
			t.keys[hole] = t.keys[j]
			t.head[hole] = t.head[j]
			t.head[j] = 0
			hole = j
		}
	}
}

// DeleteBatch removes one instance of every tuple in a columnar batch and
// returns how many were found.
func (t *Table) DeleteBatch(b *relation.Batch) int {
	found := 0
	for i, n := 0, b.Len(); i < n; i++ {
		if t.Delete(b.Tuple(i)) {
			found++
		}
	}
	return found
}

// probeBatch streams a whole columnar batch through t — the vectorized
// probe every hot loop uses. Phase one hashes the batch's pa column in one
// tight loop, resolving each key to its chain head (index+1; 0 = no
// match); phase two walks the duplicate chains and appends result tuples
// column-wise to dst. probeIsLower orients the result: the paper's chain
// join emits (lower.Unique1, higher.Unique2, combined check) regardless of
// which operand built the table. heads is the caller's reusable scratch
// (returned re-sliced so it can grow once and be reused).
func probeBatch(dst *relation.Batch, t *Table, b *relation.Batch, pa relation.Attr, probeIsLower bool, heads []int32) []int32 {
	keys := b.Col(pa)
	heads = heads[:0]
	mask := t.mask
	for _, k := range keys {
		s := hashKey(k) & mask
		var e int32
		for t.head[s] != 0 {
			if t.keys[s] == k {
				e = t.head[s]
				break
			}
			s = (s + 1) & mask
		}
		heads = append(heads, e)
	}
	if probeIsLower {
		for i, e := range heads {
			for e != 0 {
				j := e - 1
				dst.Append(b.U1[i], t.u2[j], relation.CombineChecks(b.Check[i], t.check[j]))
				e = t.next[j]
			}
		}
	} else {
		for i, e := range heads {
			for e != 0 {
				j := e - 1
				dst.Append(t.u1[j], b.U2[i], relation.CombineChecks(t.check[j], b.Check[i]))
				e = t.next[j]
			}
		}
	}
	return heads
}

// ProbeBatchInto is the exported form of probeBatch for callers that hold
// bare tables rather than join state (the resident view network probes its
// tables directly): the whole batch's pa column is hashed in one pass, then
// matches are appended column-wise to dst. probeIsLower orients the result
// tuple; heads is the caller's reusable scratch, returned re-sliced.
func (t *Table) ProbeBatchInto(dst *relation.Batch, b *relation.Batch, pa relation.Attr, probeIsLower bool, heads []int32) []int32 {
	return probeBatch(dst, t, b, pa, probeIsLower, heads)
}

// Matches returns the tuples whose key attribute equals k (nil if none).
// It allocates a fresh slice per call; hot paths iterate First/Next instead.
func (t *Table) Matches(k int64) []relation.Tuple {
	var out []relation.Tuple
	for i := t.First(k); i >= 0; i = t.Next(i) {
		out = append(out, t.At(i))
	}
	return out
}

// Len returns the number of stored tuples (inserted minus deleted).
func (t *Table) Len() int { return t.live }

// MemBytes returns the resident size of the table's backing arrays — slot
// arrays plus the full arena capacity, including free-listed rows — the
// figure a resident view charges against the shared memory meter.
func (t *Table) MemBytes() int64 {
	return int64(len(t.head))*12 + int64(cap(t.u1))*28
}

// Attr returns the key attribute.
func (t *Table) Attr() relation.Attr { return t.attr }

// Simple is the state of one simple (build-probe) hash-join instance.
type Simple struct {
	spec  Spec
	table *Table
	heads []int32 // probeBatch scratch
}

// NewSimple returns a fresh simple hash-join. Use NewSimpleSized when the
// build cardinality is known.
func NewSimple(spec Spec) *Simple { return NewSimpleSized(spec, 0) }

// NewSimpleSized returns a fresh simple hash-join whose table has capacity
// for hint build tuples before any growth.
func NewSimpleSized(spec Spec, hint int) *Simple {
	return &Simple{spec: spec, table: NewTableSized(spec.BuildAttr(), hint)}
}

// Spec returns the join specification.
func (j *Simple) Spec() Spec { return j.spec }

// Insert consumes a batch of build-operand tuples (build phase).
func (j *Simple) Insert(batch []relation.Tuple) {
	for _, tp := range batch {
		j.table.Insert(tp)
	}
}

// InsertBatch consumes a columnar batch of build-operand tuples, with a
// radix-partitioned build when the batch is large (one-shot builds from a
// materialized operand or a Grace partition).
func (j *Simple) InsertBatch(b *relation.Batch) { j.table.InsertBatchRadix(b) }

// BuildSize returns the number of tuples in the hash table.
func (j *Simple) BuildSize() int { return j.table.Len() }

// ProbeInto streams a batch of probe-operand tuples through the (complete)
// hash table, appends the result tuples to dst and returns the extended
// slice — the allocation-free form of Probe for callers that reuse a
// scratch buffer. The caller is responsible for not probing before the
// build phase finished — the engine buffers early probe input, which is
// exactly the blocking behaviour of the algorithm.
func (j *Simple) ProbeInto(dst, batch []relation.Tuple) []relation.Tuple {
	pa := j.spec.ProbeAttr()
	t := j.table
	for _, tp := range batch {
		for i := t.First(tp.Get(pa)); i >= 0; i = t.Next(i) {
			dst = append(dst, j.spec.Result(t.At(i), tp))
		}
	}
	return dst
}

// Probe is ProbeInto into a fresh slice.
func (j *Simple) Probe(batch []relation.Tuple) []relation.Tuple {
	return j.ProbeInto(nil, batch)
}

// ProbeBatchInto streams a whole columnar batch of probe-operand tuples
// through the (complete) hash table, appending result tuples to dst — the
// vectorized two-phase probe (hash the key column, then resolve matches)
// the runtimes' hot loops use.
func (j *Simple) ProbeBatchInto(dst, b *relation.Batch) {
	j.heads = probeBatch(dst, j.table, b, j.spec.ProbeAttr(), !j.spec.BuildIsLower, j.heads)
}

// Release recycles the join's table memory. The join, and any tuple slice
// previously returned by reference, must not be used afterwards.
func (j *Simple) Release() { j.table.Release() }

// Pipelining is the state of one pipelining (symmetric) hash-join instance.
//
// As an optimization, an operand's tuples are inserted into that operand's
// hash table only while the *other* operand is still open: once the other
// side has ended, no future arrival can need the insertion, so the tuple
// only probes (one table action instead of two). On a right-linear tree,
// where every build operand is a base relation that ends quickly, the
// pipelining join therefore degenerates to simple-hash-join behaviour —
// which is why RD and FP coincide on right-linear trees (Figure 13).
type Pipelining struct {
	spec        Spec
	buildTable  *Table // tuples seen on the build side
	probeTable  *Table // tuples seen on the probe side
	buildClosed bool
	probeClosed bool
	heads       []int32 // probeBatch scratch
}

// NewPipelining returns a fresh pipelining hash-join. Use NewPipeliningSized
// when the operand cardinalities are known.
func NewPipelining(spec Spec) *Pipelining { return NewPipeliningSized(spec, 0) }

// NewPipeliningSized returns a fresh pipelining hash-join whose two tables
// each have capacity for hint tuples before any growth.
func NewPipeliningSized(spec Spec, hint int) *Pipelining {
	return &Pipelining{
		spec:       spec,
		buildTable: NewTableSized(spec.BuildAttr(), hint),
		probeTable: NewTableSized(spec.ProbeAttr(), hint),
	}
}

// Spec returns the join specification.
func (j *Pipelining) Spec() Spec { return j.spec }

// FromBuildSideInto consumes a batch arriving on the build operand: each
// tuple probes the probe-side table built so far and, while the probe
// operand is still open, is inserted into the build-side table. Matches are
// appended to dst and the extended slice returned.
func (j *Pipelining) FromBuildSideInto(dst, batch []relation.Tuple) []relation.Tuple {
	ba := j.spec.BuildAttr()
	pt := j.probeTable
	for _, tp := range batch {
		for i := pt.First(tp.Get(ba)); i >= 0; i = pt.Next(i) {
			dst = append(dst, j.spec.Result(tp, pt.At(i)))
		}
		if !j.probeClosed {
			j.buildTable.Insert(tp)
		}
	}
	return dst
}

// FromBuildSide is FromBuildSideInto into a fresh slice.
func (j *Pipelining) FromBuildSide(batch []relation.Tuple) []relation.Tuple {
	return j.FromBuildSideInto(nil, batch)
}

// FromBuildSideBatchInto consumes a columnar batch arriving on the build
// operand: the whole batch probes the probe-side table (vectorized
// two-phase probe, matches appended to dst) and, while the probe operand is
// still open, is bulk-inserted into the build-side table. Probing before
// inserting is equivalent to the per-tuple interleave because the two
// tables index different operands.
func (j *Pipelining) FromBuildSideBatchInto(dst, b *relation.Batch) {
	j.heads = probeBatch(dst, j.probeTable, b, j.spec.BuildAttr(), j.spec.BuildIsLower, j.heads)
	if !j.probeClosed {
		j.buildTable.InsertBatch(b)
	}
}

// FromProbeSideInto consumes a batch arriving on the probe operand,
// symmetrically to FromBuildSideInto.
func (j *Pipelining) FromProbeSideInto(dst, batch []relation.Tuple) []relation.Tuple {
	pa := j.spec.ProbeAttr()
	bt := j.buildTable
	for _, tp := range batch {
		for i := bt.First(tp.Get(pa)); i >= 0; i = bt.Next(i) {
			dst = append(dst, j.spec.Result(bt.At(i), tp))
		}
		if !j.buildClosed {
			j.probeTable.Insert(tp)
		}
	}
	return dst
}

// FromProbeSide is FromProbeSideInto into a fresh slice.
func (j *Pipelining) FromProbeSide(batch []relation.Tuple) []relation.Tuple {
	return j.FromProbeSideInto(nil, batch)
}

// FromProbeSideBatchInto consumes a columnar batch arriving on the probe
// operand, symmetrically to FromBuildSideBatchInto.
func (j *Pipelining) FromProbeSideBatchInto(dst, b *relation.Batch) {
	j.heads = probeBatch(dst, j.buildTable, b, j.spec.ProbeAttr(), !j.spec.BuildIsLower, j.heads)
	if !j.buildClosed {
		j.probeTable.InsertBatch(b)
	}
}

// CloseBuildSide declares the build operand ended: probe-side tuples stop
// being inserted (one table action per tuple instead of two).
func (j *Pipelining) CloseBuildSide() { j.buildClosed = true }

// CloseProbeSide declares the probe operand ended.
func (j *Pipelining) CloseProbeSide() { j.probeClosed = true }

// SideClosed reports whether the given side (build=true) has ended.
func (j *Pipelining) SideClosed(build bool) bool {
	if build {
		return j.buildClosed
	}
	return j.probeClosed
}

// Sizes returns the number of tuples stored in the build- and probe-side
// tables; the pipelining algorithm's extra memory cost is their sum.
func (j *Pipelining) Sizes() (build, probe int) {
	return j.buildTable.Len(), j.probeTable.Len()
}

// Release recycles both tables' memory. The join, and any tuple slice
// previously returned by reference, must not be used afterwards.
func (j *Pipelining) Release() {
	j.buildTable.Release()
	j.probeTable.Release()
}

// Join runs a complete join of two materialized relations with the given
// spec, using the pipelining algorithm if pipelined is set and the simple
// algorithm otherwise. Both produce the same multiset; the flag exists so
// tests can assert exactly that.
func Join(build, probe *relation.Relation, spec Spec, pipelined bool) *relation.Relation {
	out := relation.New("join", build.TupleBytes)
	if pipelined {
		hint := build.Card()
		if probe.Card() > hint {
			hint = probe.Card()
		}
		j := NewPipeliningSized(spec, hint)
		// Interleave the operands to exercise the symmetric path.
		bi, pi := 0, 0
		const chunk = 16
		for bi < len(build.Tuples) || pi < len(probe.Tuples) {
			if bi < len(build.Tuples) {
				hi := bi + chunk
				if hi > len(build.Tuples) {
					hi = len(build.Tuples)
				}
				out.Append(j.FromBuildSide(build.Tuples[bi:hi])...)
				bi = hi
			}
			if pi < len(probe.Tuples) {
				hi := pi + chunk
				if hi > len(probe.Tuples) {
					hi = len(probe.Tuples)
				}
				out.Append(j.FromProbeSide(probe.Tuples[pi:hi])...)
				pi = hi
			}
		}
		return out
	}
	j := NewSimpleSized(spec, build.Card())
	// One-shot build from a materialized operand: transpose to columns and
	// take the radix-partitioned bulk-insert path, then probe batch-wise.
	var bb, pb, res relation.Batch
	bb.AppendTuples(build.Tuples)
	j.InsertBatch(&bb)
	pb.AppendTuples(probe.Tuples)
	j.ProbeBatchInto(&res, &pb)
	res.AppendTo(out)
	return out
}
