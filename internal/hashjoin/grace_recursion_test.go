package hashjoin

import (
	"testing"

	"multijoin/internal/relation"
	"multijoin/internal/spill"
)

// skewedKeys returns n distinct keys that all land in partition 0 at
// recursion level 0 — the adversarial input for single-level Grace: the
// whole operand piles into one partition, so a drain without recursive
// re-partitioning rebuilds it as one over-budget hash table.
func skewedKeys(n int) []int64 {
	keys := make([]int64, 0, n)
	for k := int64(0); len(keys) < n; k++ {
		if gracePartition(k, 0) == 0 {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestGraceRecursesOnSkewedPartition asserts that a partition whose build
// side alone exceeds the memory budget is re-partitioned a level deeper
// (Recursions > 0) and that the recursive drain still produces the exact
// result multiset of the in-memory reference join.
func TestGraceRecursesOnSkewedPartition(t *testing.T) {
	keys := skewedKeys(600)
	build := relation.New("build", 208)
	probe := relation.New("probe", 208)
	for i, k := range keys {
		// Two build tuples per key: duplicate chains must survive recursion.
		build.Append(relation.Tuple{Unique1: int64(i), Unique2: k, Check: uint64(i) * 0x9e37})
		build.Append(relation.Tuple{Unique1: int64(i + len(keys)), Unique2: k, Check: uint64(i)*0x9e37 + 7})
		if i%3 != 0 { // some probe keys miss
			probe.Append(relation.Tuple{Unique1: k, Unique2: int64(i), Check: uint64(i)*0xc2b2 + 1})
		}
	}
	spec := Spec{BuildIsLower: true}
	want := Join(build, probe, spec, false)

	// All 1200 build tuples (28800 bytes) share partition 0 at level 0;
	// a 4 KiB budget forces both spilling on the way in and recursion on
	// the way out. At level 1 the keys spread across fresh hash bits, so
	// each sub-partition fits.
	meter := spill.NewMeter(4 << 10)
	g := NewGrace(spec, meter, t.TempDir(), relation.NewBatchPool(32, 64))
	defer g.Close()
	if err := g.AddBuild(batchOf(build.Tuples)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddProbe(batchOf(probe.Tuples)); err != nil {
		t.Fatal(err)
	}
	got := relation.New("grace", build.TupleBytes)
	if err := g.Drain(func(rs *relation.Batch) error { rs.AppendTo(got); return nil }); err != nil {
		t.Fatal(err)
	}
	if g.Recursions() == 0 {
		t.Fatal("oversized skewed partition did not trigger recursive re-partitioning")
	}
	if diff := relation.DiffMultiset(got, want); diff != "" {
		t.Fatalf("recursive grace result differs from simple join: %s", diff)
	}
	g.Close()
	if meter.Live() != 0 {
		t.Fatalf("meter still holds %d live bytes after recursive drain", meter.Live())
	}
}

// TestGraceRecursionBottomsOutOnDuplicateKeys asserts the depth cap: an
// operand of one repeated key cannot be split by any partitioning, so the
// recursion must stop at maxGraceLevel and join the partition in one piece
// rather than loop forever.
func TestGraceRecursionBottomsOutOnDuplicateKeys(t *testing.T) {
	build := relation.New("build", 208)
	probe := relation.New("probe", 208)
	const key = 42
	for i := 0; i < 400; i++ {
		build.Append(relation.Tuple{Unique1: int64(i), Unique2: key, Check: uint64(i)})
	}
	probe.Append(relation.Tuple{Unique1: key, Unique2: 0, Check: 1})
	spec := Spec{BuildIsLower: true}
	want := Join(build, probe, spec, false)

	meter := spill.NewMeter(1 << 10) // 400×24 bytes of one key ≫ 1 KiB
	g := NewGrace(spec, meter, t.TempDir(), relation.NewBatchPool(32, 64))
	defer g.Close()
	if err := g.AddBuild(batchOf(build.Tuples)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddProbe(batchOf(probe.Tuples)); err != nil {
		t.Fatal(err)
	}
	got := relation.New("grace", build.TupleBytes)
	if err := g.Drain(func(rs *relation.Batch) error { rs.AppendTo(got); return nil }); err != nil {
		t.Fatal(err)
	}
	if g.Recursions() == 0 {
		t.Fatal("over-budget duplicate-key partition did not recurse at all")
	}
	if diff := relation.DiffMultiset(got, want); diff != "" {
		t.Fatalf("depth-capped grace result differs from simple join: %s", diff)
	}
}
