package hashjoin

import (
	"time"

	"multijoin/internal/relation"
	"multijoin/internal/spill"
)

// GraceFanout is the number of hash partitions a Grace join splits each
// operand into. Matching build and probe tuples land in the same partition
// index because both sides hash their own join attribute with the same
// function, so partition i of the build side joins exactly partition i of
// the probe side.
const GraceFanout = 8

// gracePartition maps a join-attribute value to its partition index at one
// recursion level. It must NOT be relation.HashKey: redistribution already
// routed tuples to this process by HashKey(v, m) over the consumer's m
// instances, so every value arriving here agrees on HashKey modulo
// gcd(m, GraceFanout) — with m = 8 instances all tuples would land in a
// single partition and Drain would rebuild the whole operand fragment in
// one table, defeating the partition-at-a-time memory bound. A
// differently-mixed (salted) hash keeps the partition index independent of
// the routing decision. Each recursion level reads a different 3-bit window
// of the same mixed hash, so a partition that re-partitions (an oversized
// partition recursing one level down) splits on bits its parent never
// looked at — with the parent's bits it would land everything in one
// sub-partition again.
func gracePartition(v int64, level int) int {
	h := (uint64(v) + 0x9e3779b97f4a7c15) * 0xc2b2ae3d27d4eb4f
	h ^= h >> 29
	return int((h >> (3 * uint(level))) % GraceFanout)
}

// graceFlushTuples is how many tuples a spilled partition buffers in memory
// before appending them to its file — large enough to amortize the write
// syscall, small enough to keep a spilled partition's residency negligible.
const graceFlushTuples = 256

// gracePart is one hash partition of one operand: an in-memory columnar
// buffer and, once the partition has spilled, the overflow file. The
// buffer's meter reservation is derived from its length (mem.Len() ×
// TupleWireBytes), accounted batch-at-a-time as tuples arrive.
type gracePart struct {
	mem    relation.Batch
	file   *spill.File
	tuples int // total tuples in the partition (mem + file)
}

// memBytes is the partition's current resident meter reservation.
func (p *gracePart) memBytes() int64 {
	return int64(p.mem.Len()) * relation.TupleWireBytes
}

// Grace is the out-of-core join of the spill runtime: a Grace-style
// partitioned hash join [DeWitt et al.] over the chain-join semantics of
// Spec. Both operands are hash-partitioned on their join attribute as they
// arrive; while the run's memory meter is over budget the largest resident
// partition is serialized to a temp file. Once both operands have ended,
// Drain processes the partitions one at a time — build a hash table over
// partition i's build tuples (re-read from disk if spilled), stream
// partition i's probe tuples through it — so peak memory is one partition
// pair instead of two whole operands.
//
// Grace produces the same result multiset as Simple and Pipelining for the
// same operands; it trades their pipelining for a memory bound, which is
// why the spill runtime uses it for *both* plan join kinds. It is not safe
// for concurrent use: the runtime drives each instance from one process.
type Grace struct {
	spec  Spec
	meter *spill.Meter
	dir   string
	pool  *relation.BatchPool
	build [GraceFanout]gracePart
	probe [GraceFanout]gracePart
	heads []int32 // reusable probe scratch for Drain

	// level is the recursion depth: 0 for the runtime's join, +1 for each
	// re-partitioning of an oversized partition. It selects which bit
	// window of the partition hash this instance splits on.
	level int
	// recursions counts oversized partitions this instance re-partitioned
	// (not transitively) — a test hook.
	recursions int

	// drainBytes is the meter reservation of the drain phase's rebuilt
	// hash table (the spilled portion of the partition being re-read);
	// held only while one partition pair is being joined.
	drainBytes int64
}

// maxGraceLevel caps recursive re-partitioning depth. Each level splits on a
// fresh 3-bit hash window, so 6 levels distinguish 2^18 partitions — beyond
// that an oversized partition is almost certainly duplicate-key skew, which
// no amount of partitioning can split, and recursing further would only burn
// passes over the same data.
const maxGraceLevel = 6

// NewGrace returns a fresh Grace join writing overflow partitions into dir
// and accounting resident operand tuples against meter.
func NewGrace(spec Spec, meter *spill.Meter, dir string, pool *relation.BatchPool) *Grace {
	return &Grace{spec: spec, meter: meter, dir: dir, pool: pool}
}

// AddBuild partitions a batch of build-operand tuples.
func (g *Grace) AddBuild(batch *relation.Batch) error {
	return g.add(&g.build, g.spec.BuildAttr(), batch)
}

// AddProbe partitions a batch of probe-operand tuples.
func (g *Grace) AddProbe(batch *relation.Batch) error {
	return g.add(&g.probe, g.spec.ProbeAttr(), batch)
}

func (g *Grace) add(side *[GraceFanout]gracePart, attr relation.Attr, batch *relation.Batch) error {
	n := batch.Len()
	if n == 0 {
		return nil
	}
	// Route the whole batch first — the key column is hoisted so the
	// partition-index loop runs over a flat []int64 — then do the metering
	// and flush checks once per batch instead of once per tuple.
	keys := batch.Col(attr)
	for i := 0; i < n; i++ {
		p := &side[gracePartition(keys[i], g.level)]
		p.mem.Append(batch.U1[i], batch.U2[i], batch.Check[i])
		p.tuples++
	}
	g.meter.Add(int64(n) * relation.TupleWireBytes)
	for i := range side {
		p := &side[i]
		if p.file != nil && p.mem.Len() >= graceFlushTuples {
			// The partition already lives on disk: keep its resident tail
			// bounded by flushing eagerly.
			if err := g.flush(p); err != nil {
				return err
			}
		}
	}
	for g.meter.Over() {
		spilled, err := g.spillLargest()
		if err != nil {
			return err
		}
		if !spilled {
			// Nothing spillable here: either every partition is empty, or
			// the only residents are the bounded tails of already-spilled
			// partitions (flushed by the threshold above). The meter may
			// stay over — e.g. pooled batches in flight alone can exceed a
			// forcing test budget — and flushing those tails anyway would
			// degenerate into one tiny write per input batch without ever
			// getting under budget.
			break
		}
	}
	return nil
}

// spillLargest serializes the largest spill-worthy resident partition of
// either side to its file, creating the file on first spill, and reports
// whether anything was written. A partition is spill-worthy when it has no
// file yet (first spill releases its whole backlog) or its resident tail
// reached the flush threshold; smaller tails of already-spilled partitions
// are left to the eager flush in add, so a permanently-over-budget run
// still writes in amortized graceFlushTuples-sized appends.
func (g *Grace) spillLargest() (bool, error) {
	var victim *gracePart
	for i := range g.build {
		for _, p := range [2]*gracePart{&g.build[i], &g.probe[i]} {
			if p.mem.Len() == 0 || (p.file != nil && p.mem.Len() < graceFlushTuples) {
				continue
			}
			if victim == nil || p.mem.Len() > victim.mem.Len() {
				victim = p
			}
		}
	}
	if victim == nil {
		return false, nil
	}
	return true, g.flush(victim)
}

// flush appends a partition's resident tuples to its file (created on first
// use) and releases their meter reservation.
func (g *Grace) flush(p *gracePart) error {
	if p.mem.Len() == 0 {
		return nil
	}
	start := time.Now()
	if p.file == nil {
		f, err := spill.Create(g.dir)
		if err != nil {
			return err
		}
		p.file = f
		g.meter.NotePartition()
	}
	n, err := p.file.Append(&p.mem)
	g.meter.NoteIO(time.Since(start))
	if err != nil {
		return err
	}
	g.meter.NoteSpill(n)
	g.meter.Add(-p.memBytes())
	p.mem.Reset()
	return nil
}

// Drain joins the buffered operands partition-at-a-time and hands result
// batches to emit. emit owns nothing: the batch is reused between calls, so
// it must forward (copy) the tuples before returning. Returning a non-nil
// error (e.g. on cancellation) aborts the drain. Partition files are closed
// and removed as they are consumed.
//
// The drain phase's rebuilt hash table is accounted against the meter: the
// spilled portion of the build partition being re-read is reserved while
// its partition pair is joined, so a shared (multi-query) meter sees drain
// residency and other runs spill accordingly. A build partition whose hash
// table would alone exceed the memory budget is not rebuilt in one piece:
// the partition pair is re-partitioned one level deeper (a fresh bit window
// of the same hash, see gracePartition) and drained recursively, so peak
// residency stays bounded by budget/GraceFanout per level instead of by the
// largest skewed partition.
func (g *Grace) Drain(emit func(results *relation.Batch) error) error {
	var scratch relation.Batch
	for i := range g.build {
		bp, pp := &g.build[i], &g.probe[i]
		if g.level < maxGraceLevel && int64(bp.tuples)*relation.TupleWireBytes > g.meter.Budget() {
			if err := g.recurse(bp, pp, emit); err != nil {
				return err
			}
			continue
		}
		// Reserve the file-resident part of the build partition: rebuilding
		// its hash table makes those tuples memory-resident again. The
		// in-memory tail (bp.memBytes) is already on the meter.
		if fileBytes := int64(bp.tuples)*relation.TupleWireBytes - bp.memBytes(); fileBytes > 0 {
			g.meter.Add(fileBytes)
			g.drainBytes = fileBytes
		}
		table := NewTableSized(g.spec.BuildAttr(), bp.tuples)
		if bp.file != nil {
			start := time.Now()
			err := bp.file.ReadBatches(g.pool, func(batch *relation.Batch) error {
				table.InsertBatch(batch)
				return nil
			})
			g.meter.NoteIO(time.Since(start))
			if err != nil {
				return err
			}
		}
		table.InsertBatchRadix(&bp.mem)
		probeChunk := func(batch *relation.Batch) error {
			scratch.Reset()
			g.heads = probeBatch(&scratch, table, batch, g.spec.ProbeAttr(), !g.spec.BuildIsLower, g.heads)
			if scratch.Len() == 0 {
				return nil
			}
			return emit(&scratch)
		}
		if pp.file != nil {
			start := time.Now()
			err := pp.file.ReadBatches(g.pool, probeChunk)
			g.meter.NoteIO(time.Since(start))
			if err != nil {
				return err
			}
		}
		if err := probeChunk(&pp.mem); err != nil {
			return err
		}
		table.Release() // next partition's table reuses the memory
		g.releaseDrain()
		g.releasePart(bp)
		g.releasePart(pp)
	}
	return nil
}

// recurse re-partitions one oversized partition pair one level deeper and
// drains the sub-join in its place. The sub-join splits on a hash bit window
// the parent never looked at, so an oversized partition that is merely
// unlucky (many distinct keys colliding in one parent bucket) spreads back
// out across GraceFanout sub-partitions; true duplicate-key skew stays
// together and bottoms out at maxGraceLevel. Feeding goes through the same
// AddBuild/AddProbe path as the parent's input, so a sub-partition that is
// still over budget spills — and, if oversized again, recurses again.
func (g *Grace) recurse(bp, pp *gracePart, emit func(*relation.Batch) error) error {
	g.recursions++
	sub := NewGrace(g.spec, g.meter, g.dir, g.pool)
	sub.level = g.level + 1
	defer sub.Close()
	feed := func(p *gracePart, add func(*relation.Batch) error) error {
		if p.file != nil {
			start := time.Now()
			err := p.file.ReadBatches(g.pool, add)
			g.meter.NoteIO(time.Since(start))
			if err != nil {
				return err
			}
		}
		if p.mem.Len() > 0 {
			// add copies (it partitions into sub's own buffers), so the
			// resident tail can be handed over directly and released after.
			if err := add(&p.mem); err != nil {
				return err
			}
		}
		g.releasePart(p)
		return nil
	}
	if err := feed(bp, sub.AddBuild); err != nil {
		return err
	}
	if err := feed(pp, sub.AddProbe); err != nil {
		return err
	}
	return sub.Drain(emit)
}

// Recursions reports how many oversized partitions this instance (not its
// sub-joins) re-partitioned — a test hook for asserting that skew actually
// forced recursion.
func (g *Grace) Recursions() int { return g.recursions }

// releaseDrain returns the drain phase's hash-table reservation.
func (g *Grace) releaseDrain() {
	if g.drainBytes != 0 {
		g.meter.Add(-g.drainBytes)
		g.drainBytes = 0
	}
}

// releasePart returns a consumed partition's memory reservation and closes
// its file.
func (g *Grace) releasePart(p *gracePart) {
	g.meter.Add(-p.memBytes())
	p.mem = relation.Batch{}
	if p.file != nil {
		p.file.Close()
		p.file = nil
	}
}

// Close releases every partition (idempotent): the runtime calls it after
// all goroutines exited, so a cancelled run leaks neither file descriptors
// nor meter reservations.
func (g *Grace) Close() {
	g.releaseDrain()
	for i := range g.build {
		g.releasePart(&g.build[i])
		g.releasePart(&g.probe[i])
	}
}

// SpilledSides reports how many partitions of each side currently live on
// disk — a test hook for asserting that a budget actually forced spilling.
func (g *Grace) SpilledSides() (build, probe int) {
	for i := range g.build {
		if g.build[i].file != nil {
			build++
		}
		if g.probe[i].file != nil {
			probe++
		}
	}
	return
}
