package hashjoin

import (
	"math/rand"
	"sort"
	"testing"

	"multijoin/internal/relation"
)

// refTable is a map-based multiset reference for differential-testing
// Table's delete path.
type refTable map[relation.Tuple]int

func (r refTable) insert(tp relation.Tuple) { r[tp]++ }

func (r refTable) delete(tp relation.Tuple) bool {
	if r[tp] == 0 {
		return false
	}
	r[tp]--
	if r[tp] == 0 {
		delete(r, tp)
	}
	return true
}

// matches returns the reference's tuples whose attr equals k, as a sorted
// multiset.
func (r refTable) matches(attr relation.Attr, k int64) []relation.Tuple {
	var out []relation.Tuple
	for tp, n := range r {
		if tp.Get(attr) == k {
			for i := 0; i < n; i++ {
				out = append(out, tp)
			}
		}
	}
	sortTuples(out)
	return out
}

func sortTuples(ts []relation.Tuple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.Unique1 != b.Unique1 {
			return a.Unique1 < b.Unique1
		}
		if a.Unique2 != b.Unique2 {
			return a.Unique2 < b.Unique2
		}
		return a.Check < b.Check
	})
}

// TestTableDeleteDifferential drives random interleaved insert/delete
// sequences through Table and the map reference, checking chain lookups
// and the live count after every operation batch. Small key ranges force
// duplicate chains; small initial sizing forces growth mid-sequence, and
// heavy delete phases force backward-shift slot clearing across clusters.
func TestTableDeleteDifferential(t *testing.T) {
	for _, seed := range []int64{1, 7, 1995, 40} {
		rng := rand.New(rand.NewSource(seed))
		tab := NewTable(relation.Unique2)
		ref := refTable{}
		var pool []relation.Tuple // tuples currently inserted (with multiplicity)
		for step := 0; step < 4000; step++ {
			if len(pool) == 0 || rng.Intn(100) < 55 {
				tp := relation.Tuple{
					Unique1: int64(rng.Intn(300)),
					Unique2: int64(rng.Intn(97)), // narrow: long duplicate chains
					Check:   uint64(rng.Intn(50)),
				}
				tab.Insert(tp)
				ref.insert(tp)
				pool = append(pool, tp)
			} else if rng.Intn(100) < 90 {
				// Delete a tuple that is present.
				i := rng.Intn(len(pool))
				tp := pool[i]
				pool[i] = pool[len(pool)-1]
				pool = pool[:len(pool)-1]
				if !tab.Delete(tp) {
					t.Fatalf("seed %d step %d: Delete(%v) = false for a present tuple", seed, step, tp)
				}
				if !ref.delete(tp) {
					t.Fatalf("seed %d step %d: reference out of sync", seed, step)
				}
			} else {
				// Delete a tuple that is absent (fresh Check value).
				tp := relation.Tuple{Unique1: 1, Unique2: int64(rng.Intn(97)), Check: 1 << 60}
				if tab.Delete(tp) {
					t.Fatalf("seed %d step %d: Delete(%v) = true for an absent tuple", seed, step, tp)
				}
			}
			if tab.Len() != len(pool) {
				t.Fatalf("seed %d step %d: Len = %d, want %d", seed, step, tab.Len(), len(pool))
			}
			if step%97 == 0 {
				for k := int64(0); k < 97; k++ {
					got := tab.Matches(k)
					sortTuples(got)
					want := ref.matches(relation.Unique2, k)
					if len(got) != len(want) {
						t.Fatalf("seed %d step %d key %d: %d matches, want %d", seed, step, k, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("seed %d step %d key %d: match %d = %v, want %v", seed, step, k, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestTableDeleteDrainRefill empties a grown table tuple by tuple and
// refills it, checking the free list hands every arena row back out: the
// arena must not grow past its high-water mark.
func TestTableDeleteDrainRefill(t *testing.T) {
	tab := NewTable(relation.Unique1)
	const n = 10000
	for i := 0; i < n; i++ {
		tab.Insert(relation.Tuple{Unique1: int64(i), Unique2: int64(i % 13), Check: uint64(i)})
	}
	highWater := cap(tab.u1)
	for i := 0; i < n; i++ {
		if !tab.Delete(relation.Tuple{Unique1: int64(i), Unique2: int64(i % 13), Check: uint64(i)}) {
			t.Fatalf("Delete #%d failed", i)
		}
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", tab.Len())
	}
	if tab.used != 0 {
		t.Fatalf("used = %d after draining, want 0", tab.used)
	}
	for i := 0; i < n; i++ {
		tab.Insert(relation.Tuple{Unique1: int64(n + i), Unique2: int64(i % 13), Check: uint64(i)})
	}
	if cap(tab.u1) != highWater {
		t.Fatalf("arena grew on refill: cap %d, high-water %d (free list not reused)", cap(tab.u1), highWater)
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d after refill, want %d", tab.Len(), n)
	}
	tab.Release()
}

// TestTableDeleteAllocFree gates the steady-state delete/insert cycle at
// zero allocations — the resident view's per-delta hot path.
func TestTableDeleteAllocFree(t *testing.T) {
	tab := NewTableSized(relation.Unique1, 4096)
	for i := 0; i < 2048; i++ {
		tab.Insert(relation.Tuple{Unique1: int64(i), Unique2: int64(i), Check: uint64(i)})
	}
	i := int64(0)
	allocs := testing.AllocsPerRun(200, func() {
		tab.Delete(relation.Tuple{Unique1: i, Unique2: i, Check: uint64(i)})
		tab.Insert(relation.Tuple{Unique1: i + 4096, Unique2: i + 4096, Check: uint64(i)})
		i++
	})
	if allocs != 0 {
		t.Fatalf("delete/insert cycle allocates %.1f/op, want 0", allocs)
	}
	tab.Release()
}
