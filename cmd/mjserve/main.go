// Command mjserve exposes a long-lived multijoin Engine over TCP: it
// generates (or loads) a Wisconsin chain database, opens an Engine over
// it, and serves the framed query protocol of internal/serve — SUBMIT a
// query shape, stream the result back as credit-windowed columnar batches,
// CANCEL mid-stream. SIGINT/SIGTERM shuts the server down gracefully:
// in-flight cursors drain to their clients (bounded by -grace) before the
// engine closes; the process exits 0 only when the shared memory meter
// drained to zero.
//
//	mjserve -addr 127.0.0.1:7033 -relations 6 -card 5000 \
//	        -policy cost -budget 64MiB -conc 16
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"multijoin"
	"multijoin/internal/core"
	"multijoin/internal/serve"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mjserve: "+format+"\n", args...)
	os.Exit(2)
}

// parseBytes reads a byte size with an optional KiB/MiB/GiB (or K/M/G)
// suffix.
func parseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	for suffix, m := range map[string]int64{
		"KiB": 1 << 10, "MiB": 1 << 20, "GiB": 1 << 30,
		"K": 1 << 10, "M": 1 << 20, "G": 1 << 30,
	} {
		if strings.HasSuffix(t, suffix) {
			t, mult = strings.TrimSuffix(t, suffix), m
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return n * mult, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7033", "listen address (port 0 picks an ephemeral port)")
	relations := flag.Int("relations", 6, "number of Wisconsin chain relations")
	card := flag.Int("card", 5000, "tuples per relation")
	seed := flag.Int64("seed", 1995, "database generation seed")
	policy := flag.String("policy", "fifo", "admission policy: "+strings.Join(multijoin.AdmissionPolicies, ", "))
	budget := flag.String("budget", "64MiB", "shared live-tuple memory budget")
	conc := flag.Int("conc", 0, "max concurrent queries (0 means the engine default)")
	procs := flag.Int("procs", 0, "shared processor pool size (0 means GOMAXPROCS)")
	batch := flag.Int("batch", serve.DefaultBatchTuples, "result tuples per DATA frame")
	grace := flag.Duration("grace", 30*time.Second, "graceful-drain bound on shutdown")
	flag.Parse()

	budgetBytes, err := parseBytes(*budget)
	if err != nil {
		fail("%v", err)
	}
	db, err := multijoin.NewDatabase(*relations, *card, *seed)
	if err != nil {
		fail("database: %v", err)
	}
	eng, err := core.Open(db,
		core.WithAdmissionPolicy(*policy),
		core.WithEngineMemoryBudget(budgetBytes),
		core.WithMaxConcurrent(*conc),
		core.WithEngineProcs(*procs))
	if err != nil {
		fail("open engine: %v", err)
	}

	srv := serve.NewServer(eng, serve.Config{BatchTuples: *batch})
	bound, err := srv.Start(*addr)
	if err != nil {
		fail("%v", err)
	}
	// The parseable startup line: load generators and the smoke test read
	// the bound address from it (ephemeral ports).
	fmt.Printf("mjserve: listening on %s\n", bound)
	fmt.Printf("mjserve: %d relations x %d tuples, policy=%s budget=%s\n",
		*relations, *card, *policy, *budget)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("mjserve: %s, draining (grace %s)\n", s, *grace)

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "mjserve: shutdown: %v\n", err)
		os.Exit(1)
	}
	if live := eng.MemoryLive(); live != 0 {
		fmt.Fprintf(os.Stderr, "mjserve: %d bytes still live after drain\n", live)
		os.Exit(1)
	}
	fmt.Println("mjserve: drained clean (meter live = 0)")
}
