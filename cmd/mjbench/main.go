// Command mjbench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	mjbench -fig 9        # Figure 9: left-linear tree, 5K and 40K sweeps
//	mjbench -fig 10..13   # the other query shapes
//	mjbench -fig 14       # best response times table
//	mjbench -fig 3|4|6|7  # utilization diagrams of the example tree
//	mjbench -fig speedup  # Section 2.3.1 single-join speedup experiment
//	mjbench -fig pipedelay# Section 2.3.3 pipeline delay experiment
//	mjbench -fig ablation # Section 3.5 overhead ablation
//	mjbench -fig spillmem # memory-budget sweep on the out-of-core spill runtime
//	mjbench -fig throughput -concurrency N -policy fifo|cost # one shared Engine, N in-flight queries
//	mjbench -fig dist -workers N # multi-process dist runtime vs the goroutine runtime
//	mjbench -fig all      # everything
//
// -runtime selects the execution runtime for the response-time figures by
// registry name: "sim" (default) measures virtual seconds on the simulated
// PRISMA/DB machine; "parallel" runs the same plans on the goroutine
// runtime and measures wall-clock seconds on the host's real cores. Any
// runtime registered with multijoin.RegisterRuntime is accepted.
//
// -csv writes the response-time sweeps that were run (figures 9-13) to a
// CSV file; it therefore requires at least one of those figures in -fig.
//
// All flag combinations are validated before any experiment runs, so an
// invalid figure name cannot abort the run midway through partial output.
//
// -card5k/-card40k/-procs scale the experiments down for quick runs.
//
// -cpuprofile and -memprofile write pprof profiles covering the selected
// experiments (the CPU profile spans the whole run; the heap profile is
// taken after the last experiment), so perf work can attach evidence
// without editing the binary:
//
//	mjbench -fig 9 -runtime parallel -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"multijoin"
	"multijoin/internal/experiments"
	"multijoin/internal/jointree"
)

// figureShapes maps the response-time figures 9-13 to their query shapes.
var figureShapes = map[string]jointree.Shape{
	"9":  jointree.LeftLinear,
	"10": jointree.LeftBushy,
	"11": jointree.WideBushy,
	"12": jointree.RightBushy,
	"13": jointree.RightLinear,
}

// allFigures lists every valid -fig name in output order.
var allFigures = []string{"3", "4", "6", "7", "9", "10", "11", "12", "13", "14", "speedup", "pipedelay", "ablation", "memory", "costfn", "spillmem", "throughput", "dist", "saturation", "ivm"}

// fail reports a usage error (exit 2); die reports a runtime error
// (exit 1). Both stop an active CPU profile first — os.Exit skips defers,
// and without StopCPUProfile the profile file lacks its trailer and
// `go tool pprof` rejects it.
func fail(format string, args ...interface{}) { exit(2, format, args...) }
func die(format string, args ...interface{})  { exit(1, format, args...) }

func exit(code int, format string, args ...interface{}) {
	pprof.StopCPUProfile() // no-op when no profile is active
	fmt.Fprintf(os.Stderr, "mjbench: "+format+"\n", args...)
	os.Exit(code)
}

// parseFigures expands and validates the -fig argument up front, before any
// experiment output, so a typo cannot abort a long run midway through.
func parseFigures(fig string) []string {
	if fig == "all" {
		return allFigures
	}
	valid := make(map[string]bool, len(allFigures))
	for _, name := range allFigures {
		valid[name] = true
	}
	var names []string
	for _, name := range strings.Split(fig, ",") {
		name = strings.TrimSpace(name)
		if !valid[name] {
			fail("unknown figure %q (valid: %s, all)", name, strings.Join(allFigures, ", "))
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		fail("-fig is empty (valid: %s, all)", strings.Join(allFigures, ", "))
	}
	return names
}

func main() {
	multijoin.InitDistWorker() // never returns in a spawned dist worker process

	fig := flag.String("fig", "all", "comma-separated figures to regenerate: "+strings.Join(allFigures, ",")+", or all")
	card5k := flag.Int("card5k", 5000, "cardinality of the small experiment")
	card40k := flag.Int("card40k", 40000, "cardinality of the large experiment")
	seed := flag.Int64("seed", 1995, "database generator seed")
	csvPath := flag.String("csv", "", "write the response-time sweeps run for figures 9-13 to this CSV file")
	rt := flag.String("runtime", multijoin.DefaultRuntime, "execution runtime for figures 9-13, by registry name: "+strings.Join(multijoin.RuntimeNames(), ", "))
	concurrency := flag.Int("concurrency", 8, "peak in-flight query count for -fig throughput (the sweep runs 1,2,4,...,N)")
	policy := flag.String("policy", "fifo", "admission policy for -fig throughput: "+strings.Join(multijoin.AdmissionPolicies, ", "))
	workers := flag.Int("workers", 2, "worker-process count for -fig dist (and for -runtime dist sweeps)")
	offered := flag.String("offered", "10,25,50,100", "comma-separated open-loop offered rates (q/s) for -fig saturation")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (after the last experiment) to this file")
	flag.Parse()

	// Validate every flag combination before producing any output.
	names := parseFigures(*fig)
	if _, err := multijoin.LookupRuntime(*rt); err != nil {
		fail("invalid -runtime: %v", err)
	}
	if *concurrency < 1 {
		for _, name := range names {
			if name == "throughput" {
				fail("-concurrency must be >= 1 for -fig throughput; got %d", *concurrency)
			}
		}
	}
	validPolicy := false
	for _, p := range multijoin.AdmissionPolicies {
		if *policy == p {
			validPolicy = true
		}
	}
	if !validPolicy {
		fail("unknown -policy %q (valid: %s)", *policy, strings.Join(multijoin.AdmissionPolicies, ", "))
	}
	if *workers < 1 {
		for _, name := range names {
			if name == "dist" {
				fail("-workers must be >= 1 for -fig dist; got %d", *workers)
			}
		}
		if *rt == "dist" {
			fail("-workers must be >= 1 for -runtime dist; got %d", *workers)
		}
	}
	var offeredSteps []float64
	for _, f := range strings.Split(*offered, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			fail("bad -offered step %q (want a positive rate in q/s)", f)
		}
		offeredSteps = append(offeredSteps, v)
	}
	if *csvPath != "" {
		sweeps := 0
		for _, name := range names {
			if _, ok := figureShapes[name]; ok {
				sweeps++
			}
		}
		if sweeps == 0 {
			fail("-csv needs at least one response-time figure (9, 10, 11, 12, 13) in -fig; got -fig %s", *fig)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail("-cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("-cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	r := experiments.NewRunner()
	r.Seed = *seed
	small := experiments.Small
	small.Card = *card5k
	large := experiments.Large
	large.Card = *card40k
	sizes := []experiments.ProblemSize{small, large}

	var csvPoints []experiments.Point
	run := func(name string) error {
		switch name {
		case "3", "4", "6", "7":
			out, err := experiments.UtilizationFigure(name)
			if err != nil {
				return err
			}
			fmt.Print(out)
		case "9", "10", "11", "12", "13":
			shape := figureShapes[name]
			for _, size := range sizes {
				pts, err := r.SweepShape(shape, size, *rt)
				if err != nil {
					return err
				}
				unit := "virtual seconds"
				if len(pts) > 0 && !pts[0].Virtual {
					unit = fmt.Sprintf("wall seconds, %s runtime", *rt)
				}
				title := fmt.Sprintf("Figure %s: %s query tree, %s experiment (%s)", name, shape, size.Name, unit)
				fmt.Println(experiments.FormatSweep(title, pts))
				csvPoints = append(csvPoints, pts...)
			}
		case "14":
			rows, err := r.Figure14()
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatFigure14(rows))
		case "speedup":
			out, err := experiments.SingleJoinSpeedup(r.Params, *seed)
			if err != nil {
				return err
			}
			fmt.Print(out)
		case "pipedelay":
			out, err := experiments.PipelineDelay(r.Params, *seed)
			if err != nil {
				return err
			}
			fmt.Print(out)
		case "ablation":
			out, err := experiments.Ablation(*card5k, *seed)
			if err != nil {
				return err
			}
			fmt.Print(out)
		case "memory":
			out, err := experiments.Memory(*card40k, 80, *seed)
			if err != nil {
				return err
			}
			fmt.Print(out)
		case "costfn":
			out, err := experiments.CostFunction(40, *seed)
			if err != nil {
				return err
			}
			fmt.Print(out)
		case "spillmem":
			// Budget sweep from "everything spills" to "fully resident" on
			// the out-of-core spill runtime (wall clock, real cores).
			budgets := []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20, 64 << 20}
			out, err := experiments.MemoryBounded(*card40k, 16, budgets, *seed)
			if err != nil {
				return err
			}
			fmt.Print(out)
		case "dist":
			// Same plans, two transports: the goroutine runtime's channels
			// vs worker processes exchanging batches over loopback TCP.
			out, err := experiments.Distributed(*card5k, 16, *workers, *seed)
			if err != nil {
				return err
			}
			fmt.Print(out)
		case "throughput":
			// Concurrency sweep on one shared Engine: doubling in-flight
			// query counts up to -concurrency, mixed strategies and
			// runtimes, queries/sec plus admission queue waits, under the
			// selected admission policy (-policy fifo|cost).
			var levels []int
			for c := 1; c < *concurrency; c *= 2 {
				levels = append(levels, c)
			}
			levels = append(levels, *concurrency)
			out, err := experiments.Throughput(*card5k, 16, levels, 4**concurrency, *seed, *policy)
			if err != nil {
				return err
			}
			fmt.Print(out)
		case "saturation":
			// Offered-load sweep through the serving layer: an in-process
			// mjserve under open-loop Poisson arrivals at each -offered
			// rate plus one closed-loop capacity step, mixed workload with
			// 10% of queries cancelled mid-stream, under -policy admission.
			out, err := experiments.Saturation(*card5k/5, 16, offeredSteps, 32, 3*time.Second, 0.1, *seed, *policy)
			if err != nil {
				return err
			}
			fmt.Print(out)
		case "ivm":
			// Incremental view maintenance vs re-execution: one resident
			// FP view over the 40K left-linear chain, refresh latency
			// across delta fractions against a from-scratch run.
			out, err := experiments.IVM(*card40k, 16, []float64{0.001, 0.01, 0.1}, *seed)
			if err != nil {
				return err
			}
			fmt.Print(out)
		default:
			// parseFigures validates against allFigures; reaching here means
			// the list and this switch drifted apart.
			return fmt.Errorf("internal error: figure %q validated but not implemented", name)
		}
		return nil
	}

	for _, name := range names {
		if err := run(name); err != nil {
			die("%v", err)
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			die("%v", err)
		}
		defer f.Close()
		if err := experiments.WriteCSV(f, csvPoints); err != nil {
			die("%v", err)
		}
		fmt.Printf("wrote %s (%d rows)\n", *csvPath, len(csvPoints))
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			die("-memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC() // material heap only: drop garbage from the last run
		if err := pprof.WriteHeapProfile(f); err != nil {
			die("-memprofile: %v", err)
		}
	}
}
