// Command mjbench regenerates the tables and figures of the paper's
// evaluation section on the simulated PRISMA/DB machine.
//
// Usage:
//
//	mjbench -fig 9        # Figure 9: left-linear tree, 5K and 40K sweeps
//	mjbench -fig 10..13   # the other query shapes
//	mjbench -fig 14       # best response times table
//	mjbench -fig 3|4|6|7  # utilization diagrams of the example tree
//	mjbench -fig speedup  # Section 2.3.1 single-join speedup experiment
//	mjbench -fig pipedelay# Section 2.3.3 pipeline delay experiment
//	mjbench -fig ablation # Section 3.5 overhead ablation
//	mjbench -fig all      # everything
//
// -runtime selects the execution runtime for the response-time figures:
// "sim" (default) measures virtual seconds on the simulated PRISMA/DB
// machine; "parallel" runs the same plans on the goroutine runtime and
// measures wall-clock seconds on the host's real cores.
//
// -card5k/-card40k/-procs scale the experiments down for quick runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"multijoin/internal/experiments"
	"multijoin/internal/jointree"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3,4,6,7,9,10,11,12,13,14,speedup,pipedelay,ablation,memory,costfn,all")
	card5k := flag.Int("card5k", 5000, "cardinality of the small experiment")
	card40k := flag.Int("card40k", 40000, "cardinality of the large experiment")
	seed := flag.Int64("seed", 1995, "database generator seed")
	csvPath := flag.String("csv", "", "also write all response-time sweeps (figures 9-13) to this CSV file")
	rt := flag.String("runtime", "sim", "execution runtime for figures 9-13: sim (virtual clock) or parallel (goroutines, wall clock)")
	flag.Parse()
	if *rt != "sim" && *rt != "parallel" {
		fmt.Fprintf(os.Stderr, "mjbench: unknown -runtime %q (want sim or parallel)\n", *rt)
		os.Exit(2)
	}

	r := experiments.NewRunner()
	r.Seed = *seed
	small := experiments.Small
	small.Card = *card5k
	large := experiments.Large
	large.Card = *card40k
	sizes := []experiments.ProblemSize{small, large}

	figureShapes := map[string]jointree.Shape{
		"9":  jointree.LeftLinear,
		"10": jointree.LeftBushy,
		"11": jointree.WideBushy,
		"12": jointree.RightBushy,
		"13": jointree.RightLinear,
	}

	run := func(name string) error {
		switch name {
		case "3", "4", "6", "7":
			out, err := experiments.UtilizationFigure(name)
			if err != nil {
				return err
			}
			fmt.Print(out)
		case "9", "10", "11", "12", "13":
			shape := figureShapes[name]
			for _, size := range sizes {
				var (
					pts []experiments.Point
					err error
				)
				unit := "virtual seconds"
				if *rt == "parallel" {
					pts, err = r.SweepShapeParallel(shape, size)
					unit = "wall seconds, goroutine runtime"
				} else {
					pts, err = r.SweepShape(shape, size)
				}
				if err != nil {
					return err
				}
				title := fmt.Sprintf("Figure %s: %s query tree, %s experiment (%s)", name, shape, size.Name, unit)
				fmt.Println(experiments.FormatSweep(title, pts))
			}
		case "14":
			rows, err := r.Figure14()
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatFigure14(rows))
		case "speedup":
			out, err := experiments.SingleJoinSpeedup(r.Params, *seed)
			if err != nil {
				return err
			}
			fmt.Print(out)
		case "pipedelay":
			out, err := experiments.PipelineDelay(r.Params, *seed)
			if err != nil {
				return err
			}
			fmt.Print(out)
		case "ablation":
			out, err := experiments.Ablation(*card5k, *seed)
			if err != nil {
				return err
			}
			fmt.Print(out)
		case "memory":
			out, err := experiments.Memory(*card40k, 80, *seed)
			if err != nil {
				return err
			}
			fmt.Print(out)
		case "costfn":
			out, err := experiments.CostFunction(40, *seed)
			if err != nil {
				return err
			}
			fmt.Print(out)
		default:
			return fmt.Errorf("unknown figure %q", name)
		}
		return nil
	}

	var names []string
	if *fig == "all" {
		names = []string{"3", "4", "6", "7", "9", "10", "11", "12", "13", "14", "speedup", "pipedelay", "ablation", "memory", "costfn"}
	} else {
		names = strings.Split(*fig, ",")
	}
	for _, name := range names {
		if err := run(strings.TrimSpace(name)); err != nil {
			fmt.Fprintf(os.Stderr, "mjbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mjbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		writeCSV := r.CSVForShapes
		if *rt == "parallel" {
			writeCSV = r.CSVForShapesParallel
		}
		if err := writeCSV(f, sizes); err != nil {
			fmt.Fprintf(os.Stderr, "mjbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
}
