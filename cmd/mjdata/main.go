// Command mjdata generates and inspects the Wisconsin chain databases used
// by the experiments (Section 4.1 of the paper).
//
// Usage:
//
//	mjdata -relations 10 -card 5000 -show 5     # print the first tuples
//	mjdata -card 40000 -verify                  # check chain-join invariants
//	mjdata -card 1000 -full -show 3             # expand full 208-byte tuples
package main

import (
	"flag"
	"fmt"
	"os"

	"multijoin"
	"multijoin/internal/wisconsin"
)

func main() {
	relations := flag.Int("relations", 10, "number of base relations")
	card := flag.Int("card", 5000, "tuples per relation")
	seed := flag.Int64("seed", 1995, "generator seed")
	show := flag.Int("show", 3, "tuples to print per relation")
	full := flag.Bool("full", false, "expand the full 16-attribute Wisconsin tuples")
	verify := flag.Bool("verify", false, "verify the chain-join invariants of the database")
	flag.Parse()

	if err := run(*relations, *card, *seed, *show, *full, *verify); err != nil {
		fmt.Fprintf(os.Stderr, "mjdata: %v\n", err)
		os.Exit(1)
	}
}

func run(relations, card int, seed int64, show int, full, verify bool) error {
	db, err := multijoin.NewDatabase(relations, card, seed)
	if err != nil {
		return err
	}
	fmt.Printf("database: %d Wisconsin relations x %d tuples (%d bytes/tuple, seed %d)\n\n",
		relations, card, wisconsin.TupleBytes, seed)
	for i := 0; i < db.NumRelations(); i++ {
		r := db.Relation(i)
		fmt.Printf("%s: %d tuples, %d bytes\n", r.Name, r.Card(), r.Bytes())
		for j := 0; j < show && j < r.Card(); j++ {
			t := r.Tuples[j]
			if full {
				fmt.Printf("  %v\n", wisconsin.Expand(t.Unique1, t.Unique2))
			} else {
				fmt.Printf("  (unique1=%d unique2=%d check=%016x)\n", t.Unique1, t.Unique2, t.Check)
			}
		}
	}
	if !verify {
		return nil
	}
	fmt.Printf("\nverifying chain invariants...\n")
	// Every span must have exactly `card` expected tuples, and the full
	// chain must brute-force-check on a sample of boundaries.
	for lo := 0; lo < relations; lo++ {
		exp, err := db.ExpectedPairs(lo, relations-1)
		if err != nil {
			return err
		}
		if exp.Card() != card {
			return fmt.Errorf("span [%d,%d] expects %d tuples, want %d", lo, relations-1, exp.Card(), card)
		}
	}
	for i := 0; i+1 < relations; i++ {
		left, right := db.Relation(i), db.Relation(i+1)
		keys := make(map[int64]int, card)
		for _, t := range right.Tuples {
			keys[t.Unique1]++
		}
		for _, t := range left.Tuples {
			if keys[t.Unique2] != 1 {
				return fmt.Errorf("boundary %d: key %d has %d matches", i+1, t.Unique2, keys[t.Unique2])
			}
		}
	}
	fmt.Printf("ok: all %d boundaries are 1:1, all spans have cardinality %d\n", relations-1, card)
	return nil
}
