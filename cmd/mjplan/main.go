// Command mjplan inspects parallel execution plans: it prints the XRA text
// of a plan, its structural overhead statistics, and (optionally) the
// processor-utilization diagram of its execution on the simulated machine.
//
// Usage:
//
//	mjplan -shape wide-bushy -strategy FP -procs 20 -card 5000
//	mjplan -example -strategy RD -procs 10 -diagram
//	mjplan -shape right-linear -strategy SP -procs 8 -mirror -diagram
package main

import (
	"flag"
	"fmt"
	"os"

	"multijoin"
	"multijoin/internal/diagram"
	"multijoin/internal/jointree"
	"multijoin/internal/sim"
	"multijoin/internal/strategy"
)

func main() {
	shapeName := flag.String("shape", "wide-bushy", "query tree shape (left-linear, left-oriented-bushy, wide-bushy, right-oriented-bushy, right-linear)")
	strategyName := flag.String("strategy", "FP", "parallelization strategy (SP, SE, RD, FP)")
	procs := flag.Int("procs", 20, "number of processors")
	card := flag.Int("card", 5000, "tuples per relation")
	relations := flag.Int("relations", 10, "number of base relations")
	seed := flag.Int64("seed", 1995, "database seed")
	example := flag.Bool("example", false, "use the paper's Figure 2 example tree (5 relations)")
	mirror := flag.Bool("mirror", false, "mirror the tree (swap build/probe operands)")
	showDiagram := flag.Bool("diagram", false, "execute and render the utilization diagram")
	if err := run(shapeName, strategyName, procs, card, relations, seed, example, mirror, showDiagram); err != nil {
		fmt.Fprintf(os.Stderr, "mjplan: %v\n", err)
		os.Exit(1)
	}
}

func run(shapeName, strategyName *string, procs, card, relations *int, seed *int64, example, mirror, showDiagram *bool) error {
	flag.Parse()
	kind, err := strategy.Parse(*strategyName)
	if err != nil {
		return err
	}
	var tree *multijoin.Node
	if *example {
		tree = multijoin.ExampleTree()
		*relations = 5
	} else {
		shape, err := jointree.ParseShape(*shapeName)
		if err != nil {
			return err
		}
		if tree, err = multijoin.BuildTree(shape, *relations); err != nil {
			return err
		}
	}
	if *mirror {
		jointree.Mirror(tree)
	}
	db, err := multijoin.NewDatabase(*relations, *card, *seed)
	if err != nil {
		return err
	}
	params := multijoin.DefaultParams()
	params.RecordUtilization = *showDiagram
	q := multijoin.Query{DB: db, Tree: tree, Strategy: kind, Procs: *procs, Params: params}
	plan, err := q.Plan()
	if err != nil {
		return err
	}
	fmt.Printf("join tree: %v\n%s\n", tree, jointree.Render(tree))
	fmt.Print(multijoin.EncodePlan(plan))
	fmt.Printf("\nprocesses: %d   streams: %d\n", plan.NumProcesses(), plan.NumStreams())

	if !*showDiagram {
		return nil
	}
	res, err := q.Run()
	if err != nil {
		return err
	}
	fmt.Printf("\nresponse time: %.3fs   result tuples: %d\n",
		res.ResponseTime.Seconds(), res.Stats.ResultTuples)
	fmt.Printf("startup: %v   handshakes: %v   remote tuples: %d   local tuples: %d\n\n",
		res.Stats.StartupTime, res.Stats.HandshakeTime,
		res.Stats.TuplesMovedRemote, res.Stats.TuplesLocal)
	end := sim.Time(res.ResponseTime)
	fmt.Print(diagram.Render(res.Procs, end, 72))
	fmt.Print(diagram.Legend(res.Procs))
	fmt.Printf("average utilization: %.0f%%\n", 100*diagram.Utilization(res.Procs, end))
	return nil
}
