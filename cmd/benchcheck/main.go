// Command benchcheck gates allocation regressions in CI: it reads the
// test2json stream `make bench` writes to BENCH_alloc.json, extracts the
// allocs/op of selected benchmarks, and fails (exit 1) when a benchmark
// regresses by more than the allowed fraction against the checked-in
// baseline.
//
// Usage:
//
//	benchcheck -in BENCH_alloc.json -baseline bench_alloc_baseline.txt [-max-regress 0.20]
//
// The baseline file holds one `BenchmarkName allocs/op` pair per line
// (# starts a comment); only benchmarks listed there are gated, so adding a
// benchmark to the suite does not break CI until a baseline is recorded
// for it. Allocation counts, unlike ns/op, are stable enough on shared CI
// runners for a hard gate; the slack absorbs scheduling-dependent pool
// misses of the parallel runtime.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// allocCount extracts the allocs/op figure of a -benchmem result line.
var allocCount = regexp.MustCompile(`(\d+)\s+allocs/op`)

// parseBenchName returns the benchmark name opening a result line (GOMAXPROCS
// suffix stripped) and the rest of the line, or "" when the line does not
// start a benchmark result.
func parseBenchName(out string) (name, rest string) {
	if !strings.HasPrefix(out, "Benchmark") {
		return "", out
	}
	name = out
	if i := strings.IndexAny(out, " \t"); i >= 0 {
		name, rest = out[:i], out[i:]
	}
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name, rest
}

// event is the subset of a test2json record benchcheck needs.
type event struct {
	Output string `json:"Output"`
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(2)
}

// readBaseline parses "BenchmarkName allocs" lines; # starts a comment.
func readBaseline(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s: want `BenchmarkName allocs/op`, got %q", path, line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: %q: %v", path, line, err)
		}
		base[fields[0]] = v
	}
	return base, sc.Err()
}

// readResults extracts benchmark allocs/op from a test2json stream.
func readResults(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	got := make(map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var pending string // last benchmark name seen without metrics yet
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // non-JSON noise (plain `go test` output) is ignored
		}
		out := strings.TrimRight(ev.Output, "\n")
		name := pending
		// test2json may emit the name and the metrics as one Output record
		// or as two consecutive ones ("BenchmarkExecAlloc_FP \t" followed
		// by "       1\t  70179468 ns/op\t...\t8090 allocs/op\n"): a
		// metrics-only record is stitched to the preceding name.
		if n, rest := parseBenchName(out); n != "" {
			name = n
			pending = n
			out = rest
		}
		a := allocCount.FindStringSubmatch(out)
		if a == nil || name == "" {
			continue
		}
		if v, err := strconv.ParseFloat(a[1], 64); err == nil {
			got[name] = v
		}
		pending = ""
	}
	return got, sc.Err()
}

// check gates got against base, writing the per-benchmark verdicts to out
// and diagnostics to errOut. It reports whether any baseline benchmark is
// missing from the results or regressed past maxRegress. A zero-alloc
// baseline admits no slack (any fraction of zero is zero): the benchmark
// must stay at exactly zero allocs/op.
func check(base, got map[string]float64, maxRegress float64, out, errOut io.Writer) (bad bool) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base[name]
		have, ok := got[name]
		if !ok {
			fmt.Fprintf(errOut, "benchcheck: %s has a baseline but no result\n", name)
			bad = true
			continue
		}
		limit := want * (1 + maxRegress)
		status := "ok"
		if have > limit {
			status = "REGRESSION"
			bad = true
		}
		fmt.Fprintf(out, "%-28s %12.0f allocs/op  (baseline %.0f, limit %.0f)  %s\n",
			name, have, want, limit, status)
	}
	return bad
}

func main() {
	in := flag.String("in", "BENCH_alloc.json", "test2json benchmark output to check")
	baseline := flag.String("baseline", "bench_alloc_baseline.txt", "checked-in allocs/op baseline")
	maxRegress := flag.Float64("max-regress", 0.20, "maximum allowed fractional allocs/op regression")
	flag.Parse()

	base, err := readBaseline(*baseline)
	if err != nil {
		fail("%v", err)
	}
	if len(base) == 0 {
		fail("%s lists no benchmarks", *baseline)
	}
	got, err := readResults(*in)
	if err != nil {
		fail("%v", err)
	}
	if check(base, got, *maxRegress, os.Stdout, os.Stderr) {
		os.Exit(1)
	}
}
