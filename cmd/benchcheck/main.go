// Command benchcheck gates performance regressions in CI: it reads the
// test2json stream `make bench` writes to BENCH_alloc.json, extracts the
// allocs/op, ns/op and B/op of selected benchmarks, and fails (exit 1) when
// a benchmark regresses past the allowed fraction against the checked-in
// baseline.
//
// Usage:
//
//	benchcheck -in BENCH_alloc.json -baseline bench_alloc_baseline.txt \
//	    [-max-regress 0.20] [-max-ns-regress 0.50] \
//	    [-summary "$GITHUB_STEP_SUMMARY"] [-record bench_alloc_baseline.txt]
//
// The baseline file holds one benchmark per line (# starts a comment):
//
//	BenchmarkName allocs/op [ns/op B/op [ns-tolerance]]
//
// Only benchmarks listed there are gated, so adding a benchmark to the
// suite does not break CI until a baseline is recorded for it. Two gates
// apply per benchmark:
//
//   - allocs/op, against -max-regress: allocation counts are stable enough
//     on shared CI runners for a uniform hard gate;
//   - ns/op (when the baseline records it), against the per-benchmark
//     tolerance column — wall time is noisy and each benchmark's noise
//     floor differs, so the slack is recorded next to the number it
//     guards — falling back to -max-ns-regress when the column is absent.
//
// B/op is recorded for the diff table (-summary) but not gated: byte
// volume moves with pool capacity choices that the allocs and wall gates
// already bound.
//
// -record rewrites the baseline from the measured results (the `make
// bench-baseline` target), preserving each benchmark's tolerance column.
// -summary appends a GitHub-flavored markdown diff table (baseline vs run
// for all three metrics) to the given file, the CI job summary.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metric extraction from -benchmem result lines.
var (
	allocCount = regexp.MustCompile(`(\d+)\s+allocs/op`)
	nsPerOp    = regexp.MustCompile(`([\d.]+)\s+ns/op`)
	bytesPerOp = regexp.MustCompile(`(\d+)\s+B/op`)
)

// metrics is one benchmark's measured (or baselined) figures. A negative
// value means "not present".
type metrics struct {
	Allocs float64
	Ns     float64
	Bytes  float64
	// Tol is the per-benchmark fractional ns/op tolerance (baseline only);
	// negative means "use the -max-ns-regress default".
	Tol float64
}

// parseBenchName returns the benchmark name opening a result line (GOMAXPROCS
// suffix stripped) and the rest of the line, or "" when the line does not
// start a benchmark result.
func parseBenchName(out string) (name, rest string) {
	if !strings.HasPrefix(out, "Benchmark") {
		return "", out
	}
	name = out
	if i := strings.IndexAny(out, " \t"); i >= 0 {
		name, rest = out[:i], out[i:]
	}
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name, rest
}

// event is the subset of a test2json record benchcheck needs.
type event struct {
	Output string `json:"Output"`
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(2)
}

// readBaseline parses baseline lines of the forms
//
//	BenchmarkName allocs
//	BenchmarkName allocs ns bytes
//	BenchmarkName allocs ns bytes ns-tolerance
//
// (# starts a comment). Missing metrics are returned negative.
func readBaseline(path string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := make(map[string]metrics)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && len(fields) != 4 && len(fields) != 5 {
			return nil, fmt.Errorf("%s: want `BenchmarkName allocs [ns bytes [ns-tol]]`, got %q", path, line)
		}
		m := metrics{Ns: -1, Bytes: -1, Tol: -1}
		nums := make([]float64, len(fields)-1)
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("%s: %q: %v", path, line, err)
			}
			nums[i] = v
		}
		m.Allocs = nums[0]
		if len(nums) >= 3 {
			m.Ns, m.Bytes = nums[1], nums[2]
		}
		if len(nums) == 4 {
			m.Tol = nums[3]
		}
		base[fields[0]] = m
	}
	return base, sc.Err()
}

// readResults extracts benchmark metrics from a test2json stream.
func readResults(path string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	got := make(map[string]metrics)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var pending string // last benchmark name seen without metrics yet
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // non-JSON noise (plain `go test` output) is ignored
		}
		out := strings.TrimRight(ev.Output, "\n")
		name := pending
		// test2json may emit the name and the metrics as one Output record
		// or as two consecutive ones ("BenchmarkExecAlloc_FP \t" followed
		// by "       1\t  70179468 ns/op\t...\t8090 allocs/op\n"): a
		// metrics-only record is stitched to the preceding name.
		if n, rest := parseBenchName(out); n != "" {
			name = n
			pending = n
			out = rest
		}
		a := allocCount.FindStringSubmatch(out)
		if a == nil || name == "" {
			continue
		}
		m := metrics{Ns: -1, Bytes: -1, Tol: -1}
		m.Allocs, _ = strconv.ParseFloat(a[1], 64)
		if ns := nsPerOp.FindStringSubmatch(out); ns != nil {
			if v, err := strconv.ParseFloat(ns[1], 64); err == nil {
				m.Ns = v
			}
		}
		if by := bytesPerOp.FindStringSubmatch(out); by != nil {
			if v, err := strconv.ParseFloat(by[1], 64); err == nil {
				m.Bytes = v
			}
		}
		got[name] = m
		pending = ""
	}
	return got, sc.Err()
}

// gates is the pair of global tolerance defaults.
type gates struct {
	// MaxRegress is the allowed fractional allocs/op regression.
	MaxRegress float64
	// MaxNsRegress is the allowed fractional ns/op regression for
	// baselines without their own tolerance column.
	MaxNsRegress float64
}

// check gates got against base, writing the per-benchmark verdicts to out
// and diagnostics to errOut. It reports whether any baseline benchmark is
// missing from the results or regressed past its limits. A zero-alloc
// baseline admits no slack (any fraction of zero is zero): the benchmark
// must stay at exactly zero allocs/op. The ns/op gate applies only to
// baselines that record a wall-time figure.
func check(base, got map[string]metrics, g gates, out, errOut io.Writer) (bad bool) {
	for _, name := range sortedNames(base) {
		want := base[name]
		have, ok := got[name]
		if !ok {
			fmt.Fprintf(errOut, "benchcheck: %s has a baseline but no result\n", name)
			bad = true
			continue
		}
		allocLimit := want.Allocs * (1 + g.MaxRegress)
		status := "ok"
		if have.Allocs > allocLimit {
			status = "REGRESSION(allocs)"
			bad = true
		}
		fmt.Fprintf(out, "%-28s %12.0f allocs/op  (baseline %.0f, limit %.0f)",
			name, have.Allocs, want.Allocs, allocLimit)
		if want.Ns >= 0 {
			tol := want.Tol
			if tol < 0 {
				tol = g.MaxNsRegress
			}
			nsLimit := want.Ns * (1 + tol)
			if have.Ns < 0 {
				fmt.Fprintf(errOut, "benchcheck: %s has an ns/op baseline but the result reports no ns/op\n", name)
				bad = true
				status = "REGRESSION(ns missing)"
			} else if have.Ns > nsLimit {
				if status == "ok" {
					status = "REGRESSION(ns)"
				} else {
					status += "+ns"
				}
				bad = true
			}
			fmt.Fprintf(out, "  %12.0f ns/op (baseline %.0f, limit %.0f)", have.Ns, want.Ns, nsLimit)
		}
		fmt.Fprintf(out, "  %s\n", status)
	}
	return bad
}

func sortedNames(m map[string]metrics) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// writeSummary appends a GitHub-flavored markdown diff table — baseline vs
// this run for allocs/op, ns/op and B/op — to w.
func writeSummary(base, got map[string]metrics, w io.Writer) {
	fmt.Fprintf(w, "### Benchmark gate: baseline vs run\n\n")
	fmt.Fprintf(w, "| Benchmark | allocs/op | Δ allocs | ns/op | Δ ns | B/op | Δ bytes |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|---:|---:|---:|\n")
	for _, name := range sortedNames(base) {
		want := base[name]
		have, ok := got[name]
		if !ok {
			fmt.Fprintf(w, "| %s | _no result_ | | | | | |\n", name)
			continue
		}
		fmt.Fprintf(w, "| %s | %.0f | %s | %s | %s | %s | %s |\n",
			name,
			have.Allocs, delta(want.Allocs, have.Allocs),
			cell(have.Ns), delta(want.Ns, have.Ns),
			cell(have.Bytes), delta(want.Bytes, have.Bytes))
	}
}

// cell formats an optional metric value.
func cell(v float64) string {
	if v < 0 {
		return "—"
	}
	return fmt.Sprintf("%.0f", v)
}

// delta formats the signed fractional change from base to have, or "—"
// when either side is missing.
func delta(base, have float64) string {
	if base < 0 || have < 0 || base == 0 {
		return "—"
	}
	return fmt.Sprintf("%+.1f%%", (have-base)/base*100)
}

// writeBaseline rewrites path from the measured results, gating exactly the
// benchmarks that were measured and preserving per-benchmark tolerances
// from prev (defaultTol for new entries).
func writeBaseline(path string, got, prev map[string]metrics, defaultTol float64) error {
	var b strings.Builder
	b.WriteString(`# Checked-in performance baselines for make bench, gated by cmd/benchcheck.
# Columns: BenchmarkName allocs/op ns/op B/op ns-tolerance. CI fails on a
# >20% allocs/op regression (-max-regress) or an ns/op regression past the
# per-benchmark tolerance; B/op is reported in the job-summary diff table
# but not gated. Regenerate with make bench-baseline after intentional
# performance changes.
`)
	for _, name := range sortedNames(got) {
		m := got[name]
		tol := defaultTol
		if p, ok := prev[name]; ok && p.Tol >= 0 {
			tol = p.Tol
		}
		fmt.Fprintf(&b, "%s %.0f %.0f %.0f %.2f\n", name, m.Allocs, m.Ns, m.Bytes, tol)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func main() {
	in := flag.String("in", "BENCH_alloc.json", "test2json benchmark output to check")
	baseline := flag.String("baseline", "bench_alloc_baseline.txt", "checked-in performance baseline")
	maxRegress := flag.Float64("max-regress", 0.20, "maximum allowed fractional allocs/op regression")
	maxNsRegress := flag.Float64("max-ns-regress", 0.50, "default maximum fractional ns/op regression for baselines without a tolerance column")
	summary := flag.String("summary", os.Getenv("GITHUB_STEP_SUMMARY"), "append a markdown diff table (baseline vs run) to this file (default: $GITHUB_STEP_SUMMARY when set)")
	record := flag.String("record", "", "rewrite this baseline file from the results instead of gating")
	flag.Parse()

	got, err := readResults(*in)
	if err != nil {
		fail("%v", err)
	}
	if *record != "" {
		if len(got) == 0 {
			fail("%s holds no benchmark results to record", *in)
		}
		prev, err := readBaseline(*record)
		if err != nil && !os.IsNotExist(err) {
			fail("%v", err)
		}
		if err := writeBaseline(*record, got, prev, *maxNsRegress); err != nil {
			fail("%v", err)
		}
		fmt.Printf("benchcheck: recorded %d benchmarks to %s\n", len(got), *record)
		return
	}
	base, err := readBaseline(*baseline)
	if err != nil {
		fail("%v", err)
	}
	if len(base) == 0 {
		fail("%s lists no benchmarks", *baseline)
	}
	if *summary != "" {
		f, err := os.OpenFile(*summary, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail("%v", err)
		}
		writeSummary(base, got, f)
		f.Close()
	}
	if check(base, got, gates{MaxRegress: *maxRegress, MaxNsRegress: *maxNsRegress}, os.Stdout, os.Stderr) {
		os.Exit(1)
	}
}
