package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFile drops content into a temp file and returns its path.
func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReadBaseline covers the baseline parser's edge cases table-driven:
// legacy allocs-only lines, full metric rows with and without tolerance,
// comments, blank lines, malformed rows, unparsable numbers.
func TestReadBaseline(t *testing.T) {
	for _, tc := range []struct {
		name    string
		content string
		want    map[string]metrics
		wantErr string
	}{
		{
			name:    "legacy allocs-only lines",
			content: "# header\nBenchmarkA 100\nBenchmarkB 0 # zero-alloc benchmark\n\n",
			want: map[string]metrics{
				"BenchmarkA": {Allocs: 100, Ns: -1, Bytes: -1, Tol: -1},
				"BenchmarkB": {Allocs: 0, Ns: -1, Bytes: -1, Tol: -1},
			},
		},
		{
			name:    "full row without tolerance",
			content: "BenchmarkA 9000 43000000 55000000\n",
			want:    map[string]metrics{"BenchmarkA": {Allocs: 9000, Ns: 43000000, Bytes: 55000000, Tol: -1}},
		},
		{
			name:    "full row with tolerance column",
			content: "BenchmarkA 9000 43000000 55000000 0.60\n",
			want:    map[string]metrics{"BenchmarkA": {Allocs: 9000, Ns: 43000000, Bytes: 55000000, Tol: 0.60}},
		},
		{
			name:    "comment-only file parses empty",
			content: "# nothing gated yet\n",
			want:    map[string]metrics{},
		},
		{
			name:    "three fields rejected",
			content: "BenchmarkA 100 200\n",
			wantErr: "want `BenchmarkName allocs [ns bytes [ns-tol]]`",
		},
		{
			name:    "single field rejected",
			content: "BenchmarkA\n",
			wantErr: "want `BenchmarkName allocs [ns bytes [ns-tol]]`",
		},
		{
			name:    "non-numeric count rejected",
			content: "BenchmarkA lots\n",
			wantErr: "invalid syntax",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := readBaseline(writeFile(t, "baseline.txt", tc.content))
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error = %v, want contains %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("parsed %v, want %v", got, tc.want)
			}
			for k, v := range tc.want {
				if got[k] != v {
					t.Errorf("%s = %v, want %v", k, got[k], v)
				}
			}
		})
	}
}

// TestReadBaselineMissingFile asserts a missing baseline path errors rather
// than gating nothing.
func TestReadBaselineMissingFile(t *testing.T) {
	if _, err := readBaseline(filepath.Join(t.TempDir(), "absent.txt")); err == nil {
		t.Fatal("reading an absent baseline succeeded")
	}
}

// TestReadResults covers the test2json extraction edge cases: split
// name/metric records, GOMAXPROCS suffixes, malformed JSON noise, files
// with no benchmark output at all — and that ns/op and B/op come out
// alongside allocs/op.
func TestReadResults(t *testing.T) {
	for _, tc := range []struct {
		name    string
		content string
		want    map[string]metrics
	}{
		{
			name:    "one-record result with suffix",
			content: `{"Output":"BenchmarkExecAlloc_FP-8 \t       1\t  70179468 ns/op\t 4096 B/op\t    8090 allocs/op\n"}` + "\n",
			want:    map[string]metrics{"BenchmarkExecAlloc_FP": {Allocs: 8090, Ns: 70179468, Bytes: 4096, Tol: -1}},
		},
		{
			name: "name and metrics split across records",
			content: `{"Output":"BenchmarkHashTable_Insert-4 \t"}` + "\n" +
				`{"Output":"       100\t  1234 ns/op\t   12 allocs/op\n"}` + "\n",
			want: map[string]metrics{"BenchmarkHashTable_Insert": {Allocs: 12, Ns: 1234, Bytes: -1, Tol: -1}},
		},
		{
			name: "malformed JSON lines are skipped not fatal",
			content: "this is not json at all\n{broken\n" +
				`{"Output":"BenchmarkA-2 \t 1\t 5 allocs/op\n"}` + "\n" +
				"trailing garbage\n",
			want: map[string]metrics{"BenchmarkA": {Allocs: 5, Ns: -1, Bytes: -1, Tol: -1}},
		},
		{
			name:    "entirely malformed file yields no results",
			content: "::::\nnot json\n",
			want:    map[string]metrics{},
		},
		{
			name:    "zero allocs extracted as zero",
			content: `{"Output":"BenchmarkZero-8 \t 1000\t 99 ns/op\t 0 allocs/op\n"}` + "\n",
			want:    map[string]metrics{"BenchmarkZero": {Allocs: 0, Ns: 99, Bytes: -1, Tol: -1}},
		},
		{
			name:    "fractional ns/op parsed",
			content: `{"Output":"BenchmarkFast-8 \t 100000000\t 10.5 ns/op\t 0 B/op\t 0 allocs/op\n"}` + "\n",
			want:    map[string]metrics{"BenchmarkFast": {Allocs: 0, Ns: 10.5, Bytes: 0, Tol: -1}},
		},
		{
			name:    "non-benchmark output ignored",
			content: `{"Output":"ok  \tmultijoin\t0.5s\n"}` + "\n" + `{"Output":"PASS\n"}` + "\n",
			want:    map[string]metrics{},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := readResults(writeFile(t, "BENCH_alloc.json", tc.content))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("parsed %v, want %v", got, tc.want)
			}
			for k, v := range tc.want {
				if got[k] != v {
					t.Errorf("%s = %v, want %v", k, got[k], v)
				}
			}
		})
	}
}

// TestCheck covers the gating decision table-driven: alloc regressions, ns
// regressions against both the per-benchmark tolerance and the global
// default, missing baseline keys, and the zero-alloc baseline whose limit
// admits no slack.
func TestCheck(t *testing.T) {
	g := gates{MaxRegress: 0.20, MaxNsRegress: 0.50}
	for _, tc := range []struct {
		name       string
		base, got  map[string]metrics
		wantBad    bool
		wantOut    string
		wantErrOut string
	}{
		{
			name:    "within slack passes",
			base:    map[string]metrics{"BenchmarkA": {Allocs: 100, Ns: -1, Bytes: -1, Tol: -1}},
			got:     map[string]metrics{"BenchmarkA": {Allocs: 119}},
			wantOut: "ok",
		},
		{
			name:    "past alloc slack fails",
			base:    map[string]metrics{"BenchmarkA": {Allocs: 100, Ns: -1, Bytes: -1, Tol: -1}},
			got:     map[string]metrics{"BenchmarkA": {Allocs: 121}},
			wantBad: true,
			wantOut: "REGRESSION(allocs)",
		},
		{
			name:    "ns within default tolerance passes",
			base:    map[string]metrics{"BenchmarkA": {Allocs: 100, Ns: 1000, Bytes: 5000, Tol: -1}},
			got:     map[string]metrics{"BenchmarkA": {Allocs: 100, Ns: 1490, Bytes: 9999}},
			wantOut: "ok",
		},
		{
			name:    "ns past default tolerance fails",
			base:    map[string]metrics{"BenchmarkA": {Allocs: 100, Ns: 1000, Bytes: 5000, Tol: -1}},
			got:     map[string]metrics{"BenchmarkA": {Allocs: 100, Ns: 1510, Bytes: 5000}},
			wantBad: true,
			wantOut: "REGRESSION(ns)",
		},
		{
			name:    "per-benchmark tolerance loosens the ns gate",
			base:    map[string]metrics{"BenchmarkA": {Allocs: 100, Ns: 1000, Bytes: 5000, Tol: 1.0}},
			got:     map[string]metrics{"BenchmarkA": {Allocs: 100, Ns: 1900, Bytes: 5000}},
			wantOut: "ok",
		},
		{
			name:    "per-benchmark tolerance tightens the ns gate",
			base:    map[string]metrics{"BenchmarkA": {Allocs: 100, Ns: 1000, Bytes: 5000, Tol: 0.10}},
			got:     map[string]metrics{"BenchmarkA": {Allocs: 100, Ns: 1200, Bytes: 5000}},
			wantBad: true,
			wantOut: "REGRESSION(ns)",
		},
		{
			name:    "both gates can fail at once",
			base:    map[string]metrics{"BenchmarkA": {Allocs: 100, Ns: 1000, Bytes: 5000, Tol: 0.10}},
			got:     map[string]metrics{"BenchmarkA": {Allocs: 200, Ns: 2000, Bytes: 5000}},
			wantBad: true,
			wantOut: "REGRESSION(allocs)+ns",
		},
		{
			name:       "ns baseline with no measured ns fails",
			base:       map[string]metrics{"BenchmarkA": {Allocs: 100, Ns: 1000, Bytes: 5000, Tol: -1}},
			got:        map[string]metrics{"BenchmarkA": {Allocs: 100, Ns: -1}},
			wantBad:    true,
			wantErrOut: "reports no ns/op",
		},
		{
			name:       "baseline without result fails",
			base:       map[string]metrics{"BenchmarkGone": {Allocs: 10, Ns: -1, Bytes: -1, Tol: -1}},
			got:        map[string]metrics{"BenchmarkOther": {Allocs: 10}},
			wantBad:    true,
			wantErrOut: "BenchmarkGone has a baseline but no result",
		},
		{
			name:    "zero-alloc baseline stays zero",
			base:    map[string]metrics{"BenchmarkZero": {Allocs: 0, Ns: -1, Bytes: -1, Tol: -1}},
			got:     map[string]metrics{"BenchmarkZero": {Allocs: 0}},
			wantOut: "ok",
		},
		{
			name:    "zero-alloc baseline rejects any alloc",
			base:    map[string]metrics{"BenchmarkZero": {Allocs: 0, Ns: -1, Bytes: -1, Tol: -1}},
			got:     map[string]metrics{"BenchmarkZero": {Allocs: 1}},
			wantBad: true,
			wantOut: "REGRESSION(allocs)",
		},
		{
			name:    "improvement passes",
			base:    map[string]metrics{"BenchmarkA": {Allocs: 100, Ns: 1000, Bytes: 5000, Tol: 0.10}},
			got:     map[string]metrics{"BenchmarkA": {Allocs: 1, Ns: 10, Bytes: 10}},
			wantOut: "ok",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut strings.Builder
			bad := check(tc.base, tc.got, g, &out, &errOut)
			if bad != tc.wantBad {
				t.Errorf("check() = %v, want %v\nout: %s\nerr: %s", bad, tc.wantBad, out.String(), errOut.String())
			}
			if tc.wantOut != "" && !strings.Contains(out.String(), tc.wantOut) {
				t.Errorf("stdout %q does not contain %q", out.String(), tc.wantOut)
			}
			if tc.wantErrOut != "" && !strings.Contains(errOut.String(), tc.wantErrOut) {
				t.Errorf("stderr %q does not contain %q", errOut.String(), tc.wantErrOut)
			}
		})
	}
}

// TestWriteSummary asserts the markdown diff table carries all three
// metrics with signed deltas, and marks missing results.
func TestWriteSummary(t *testing.T) {
	base := map[string]metrics{
		"BenchmarkA":    {Allocs: 100, Ns: 1000, Bytes: 4000, Tol: -1},
		"BenchmarkGone": {Allocs: 10, Ns: -1, Bytes: -1, Tol: -1},
	}
	got := map[string]metrics{
		"BenchmarkA": {Allocs: 90, Ns: 1500, Bytes: 4000, Tol: -1},
	}
	var b strings.Builder
	writeSummary(base, got, &b)
	out := b.String()
	for _, want := range []string{
		"| Benchmark | allocs/op |",
		"| BenchmarkA | 90 | -10.0% | 1500 | +50.0% | 4000 | +0.0% |",
		"| BenchmarkGone | _no result_ |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary %q\nmissing %q", out, want)
		}
	}
}

// TestWriteBaselineRoundTrip asserts -record output re-parses to the same
// metrics, and that an existing per-benchmark tolerance survives the
// rewrite while new entries get the default.
func TestWriteBaselineRoundTrip(t *testing.T) {
	path := writeFile(t, "baseline.txt", "BenchmarkA 50 900 3000 0.33\n")
	prev, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]metrics{
		"BenchmarkA": {Allocs: 100, Ns: 1000, Bytes: 4000, Tol: -1},
		"BenchmarkB": {Allocs: 7, Ns: 70, Bytes: 700, Tol: -1},
	}
	if err := writeBaseline(path, got, prev, 0.50); err != nil {
		t.Fatal(err)
	}
	back, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	wantA := metrics{Allocs: 100, Ns: 1000, Bytes: 4000, Tol: 0.33}
	if back["BenchmarkA"] != wantA {
		t.Errorf("BenchmarkA = %v, want %v (tolerance preserved)", back["BenchmarkA"], wantA)
	}
	wantB := metrics{Allocs: 7, Ns: 70, Bytes: 700, Tol: 0.50}
	if back["BenchmarkB"] != wantB {
		t.Errorf("BenchmarkB = %v, want %v (default tolerance)", back["BenchmarkB"], wantB)
	}
}

// TestCheckEndToEnd runs the reader/gater pipeline over realistic files:
// a malformed results file against a real baseline must fail as "missing",
// not crash or pass.
func TestCheckEndToEnd(t *testing.T) {
	base, err := readBaseline(writeFile(t, "baseline.txt", "BenchmarkExecAlloc_FP 9200 43000000 55000000 0.50\n"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := readResults(writeFile(t, "BENCH_alloc.json", "completely malformed\n"))
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if !check(base, got, gates{MaxRegress: 0.20, MaxNsRegress: 0.50}, &out, &errOut) {
		t.Fatal("malformed results passed the gate")
	}
	if !strings.Contains(errOut.String(), "no result") {
		t.Errorf("stderr %q does not explain the missing result", errOut.String())
	}
}
