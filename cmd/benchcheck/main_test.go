package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFile drops content into a temp file and returns its path.
func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReadBaseline covers the baseline parser's edge cases table-driven:
// comments, blank lines, malformed pairs, unparsable numbers.
func TestReadBaseline(t *testing.T) {
	for _, tc := range []struct {
		name    string
		content string
		want    map[string]float64
		wantErr string
	}{
		{
			name:    "happy path with comments",
			content: "# header\nBenchmarkA 100\nBenchmarkB 0 # zero-alloc benchmark\n\n",
			want:    map[string]float64{"BenchmarkA": 100, "BenchmarkB": 0},
		},
		{
			name:    "comment-only file parses empty",
			content: "# nothing gated yet\n",
			want:    map[string]float64{},
		},
		{
			name:    "three fields rejected",
			content: "BenchmarkA 100 extra\n",
			wantErr: "want `BenchmarkName allocs/op`",
		},
		{
			name:    "single field rejected",
			content: "BenchmarkA\n",
			wantErr: "want `BenchmarkName allocs/op`",
		},
		{
			name:    "non-numeric count rejected",
			content: "BenchmarkA lots\n",
			wantErr: "invalid syntax",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := readBaseline(writeFile(t, "baseline.txt", tc.content))
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error = %v, want contains %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("parsed %v, want %v", got, tc.want)
			}
			for k, v := range tc.want {
				if got[k] != v {
					t.Errorf("%s = %v, want %v", k, got[k], v)
				}
			}
		})
	}
}

// TestReadBaselineMissingFile asserts a missing baseline path errors rather
// than gating nothing.
func TestReadBaselineMissingFile(t *testing.T) {
	if _, err := readBaseline(filepath.Join(t.TempDir(), "absent.txt")); err == nil {
		t.Fatal("reading an absent baseline succeeded")
	}
}

// TestReadResults covers the test2json extraction edge cases: split
// name/metric records, GOMAXPROCS suffixes, malformed JSON noise, files
// with no benchmark output at all.
func TestReadResults(t *testing.T) {
	for _, tc := range []struct {
		name    string
		content string
		want    map[string]float64
	}{
		{
			name:    "one-record result with suffix",
			content: `{"Output":"BenchmarkExecAlloc_FP-8 \t       1\t  70179468 ns/op\t 4096 B/op\t    8090 allocs/op\n"}` + "\n",
			want:    map[string]float64{"BenchmarkExecAlloc_FP": 8090},
		},
		{
			name: "name and metrics split across records",
			content: `{"Output":"BenchmarkHashTable_Insert-4 \t"}` + "\n" +
				`{"Output":"       100\t  1234 ns/op\t   12 allocs/op\n"}` + "\n",
			want: map[string]float64{"BenchmarkHashTable_Insert": 12},
		},
		{
			name: "malformed JSON lines are skipped not fatal",
			content: "this is not json at all\n{broken\n" +
				`{"Output":"BenchmarkA-2 \t 1\t 5 allocs/op\n"}` + "\n" +
				"trailing garbage\n",
			want: map[string]float64{"BenchmarkA": 5},
		},
		{
			name:    "entirely malformed file yields no results",
			content: "::::\nnot json\n",
			want:    map[string]float64{},
		},
		{
			name:    "zero allocs extracted as zero",
			content: `{"Output":"BenchmarkZero-8 \t 1000\t 99 ns/op\t 0 allocs/op\n"}` + "\n",
			want:    map[string]float64{"BenchmarkZero": 0},
		},
		{
			name:    "non-benchmark output ignored",
			content: `{"Output":"ok  \tmultijoin\t0.5s\n"}` + "\n" + `{"Output":"PASS\n"}` + "\n",
			want:    map[string]float64{},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := readResults(writeFile(t, "BENCH_alloc.json", tc.content))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("parsed %v, want %v", got, tc.want)
			}
			for k, v := range tc.want {
				if got[k] != v {
					t.Errorf("%s = %v, want %v", k, got[k], v)
				}
			}
		})
	}
}

// TestCheck covers the gating decision table-driven: regressions, missing
// baseline keys, and the zero-alloc baseline whose limit admits no slack.
func TestCheck(t *testing.T) {
	for _, tc := range []struct {
		name       string
		base, got  map[string]float64
		maxRegress float64
		wantBad    bool
		wantOut    string
		wantErrOut string
	}{
		{
			name:    "within slack passes",
			base:    map[string]float64{"BenchmarkA": 100},
			got:     map[string]float64{"BenchmarkA": 119},
			wantOut: "ok",
		},
		{
			name:    "past slack fails",
			base:    map[string]float64{"BenchmarkA": 100},
			got:     map[string]float64{"BenchmarkA": 121},
			wantBad: true,
			wantOut: "REGRESSION",
		},
		{
			name:       "baseline without result fails",
			base:       map[string]float64{"BenchmarkGone": 10},
			got:        map[string]float64{"BenchmarkOther": 10},
			wantBad:    true,
			wantErrOut: "BenchmarkGone has a baseline but no result",
		},
		{
			name:    "zero-alloc baseline stays zero",
			base:    map[string]float64{"BenchmarkZero": 0},
			got:     map[string]float64{"BenchmarkZero": 0},
			wantOut: "ok",
		},
		{
			name:    "zero-alloc baseline rejects any alloc",
			base:    map[string]float64{"BenchmarkZero": 0},
			got:     map[string]float64{"BenchmarkZero": 1},
			wantBad: true,
			wantOut: "REGRESSION",
		},
		{
			name:    "improvement passes",
			base:    map[string]float64{"BenchmarkA": 100},
			got:     map[string]float64{"BenchmarkA": 1},
			wantOut: "ok",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			maxRegress := tc.maxRegress
			if maxRegress == 0 {
				maxRegress = 0.20
			}
			var out, errOut strings.Builder
			bad := check(tc.base, tc.got, maxRegress, &out, &errOut)
			if bad != tc.wantBad {
				t.Errorf("check() = %v, want %v\nout: %s\nerr: %s", bad, tc.wantBad, out.String(), errOut.String())
			}
			if tc.wantOut != "" && !strings.Contains(out.String(), tc.wantOut) {
				t.Errorf("stdout %q does not contain %q", out.String(), tc.wantOut)
			}
			if tc.wantErrOut != "" && !strings.Contains(errOut.String(), tc.wantErrOut) {
				t.Errorf("stderr %q does not contain %q", errOut.String(), tc.wantErrOut)
			}
		})
	}
}

// TestCheckEndToEnd runs the reader/gater pipeline over realistic files:
// a malformed results file against a real baseline must fail as "missing",
// not crash or pass.
func TestCheckEndToEnd(t *testing.T) {
	base, err := readBaseline(writeFile(t, "baseline.txt", "BenchmarkExecAlloc_FP 9200\n"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := readResults(writeFile(t, "BENCH_alloc.json", "completely malformed\n"))
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if !check(base, got, 0.20, &out, &errOut) {
		t.Fatal("malformed results passed the gate")
	}
	if !strings.Contains(errOut.String(), "no result") {
		t.Errorf("stderr %q does not explain the missing result", errOut.String())
	}
}
