// Command mjload is the load generator for mjserve: it drives a running
// server with hundreds of concurrent connections issuing a mixed query
// workload (the four strategies crossed with the in-memory and spilling
// runtimes), in closed-loop mode (next query on completion) or open-loop
// mode (Poisson arrivals at a configured offered rate, so saturation shows
// up as queue wait and latency instead of a throughput plateau alone), and
// reports queries/sec, latency percentiles, queue wait and spill per step:
//
//	mjload -addr 127.0.0.1:7033 -conns 64 -duration 5s            # closed loop
//	mjload -addr 127.0.0.1:7033 -conns 64 -qps 50,100,200,400     # open-loop sweep
//	mjload -addr 127.0.0.1:7033 -conns 32 -cancel 0.2             # 20% cancel mid-stream
//
// With -ticker it becomes a continuous-query driver instead: each
// connection materializes one view on the server and feeds it Poisson
// delta rounds, reporting refresh-latency percentiles:
//
//	mjload -addr 127.0.0.1:7033 -ticker -views 8 -rate 200 -delta 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"multijoin/internal/serve"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mjload: "+format+"\n", args...)
	os.Exit(2)
}

// parseQPS reads the -qps flag: a comma-separated list of offered rates,
// each one open-loop step; empty means one closed-loop step.
func parseQPS(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return []float64{0}, nil
	}
	var steps []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -qps step %q", f)
		}
		steps = append(steps, v)
	}
	return steps, nil
}

// parseMix reads the -mix flag: comma-separated STRATEGY/RUNTIME pairs
// (e.g. "FP/parallel,SP/spill"); empty means the default mix.
func parseMix(s string) ([]serve.QuerySpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var specs []serve.QuerySpec
	for _, part := range strings.Split(s, ",") {
		st, rt, ok := strings.Cut(strings.TrimSpace(part), "/")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q (want STRATEGY/RUNTIME)", part)
		}
		specs = append(specs, serve.QuerySpec{Shape: "wide-bushy", Strategy: st, Runtime: rt})
	}
	return specs, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7033", "server address")
	conns := flag.Int("conns", 64, "concurrent client connections")
	duration := flag.Duration("duration", 3*time.Second, "offered-load window per step")
	qps := flag.String("qps", "", "comma-separated open-loop offered rates (q/s); empty runs one closed-loop step")
	cancel := flag.Float64("cancel", 0, "fraction of queries cancelled after their first batch")
	mix := flag.String("mix", "", "query mix as STRATEGY/RUNTIME pairs, comma separated; empty means SP,SE,RD,FP x parallel,spill")
	window := flag.Int("window", serve.DefaultWindow, "per-stream credit window in batches")
	seed := flag.Int64("seed", 1, "workload seed")
	ticker := flag.Bool("ticker", false, "continuous-query mode: each connection holds one view and feeds it Poisson delta rounds")
	views := flag.Int("views", 4, "ticker: concurrent view connections")
	rate := flag.Float64("rate", 50, "ticker: aggregate delta rounds per second")
	delta := flag.Int("delta", 16, "ticker: tuples inserted (and, once warm, deleted) per round")
	shape := flag.String("shape", "left-linear", "ticker: view join-tree shape")
	flag.Parse()

	if *ticker {
		// The ticker drives views, not the query mix: reject flags that
		// only parameterize the query workload instead of silently
		// ignoring them, mirroring mjbench's -fig/-workers validation.
		if *qps != "" {
			fail("-qps is a query-load flag; -ticker paces deltas with -rate")
		}
		if *cancel != 0 {
			fail("-cancel applies to query streams, not -ticker view rounds")
		}
		if *mix != "" {
			fail("-mix picks query specs; -ticker views take -shape instead")
		}
		if *views <= 0 {
			fail("-views must be positive; got %d", *views)
		}
		if *rate <= 0 {
			fail("-rate must be positive; got %g", *rate)
		}
		if *delta <= 0 {
			fail("-delta must be positive; got %d", *delta)
		}
		runTicker(*addr, *duration, *views, *rate, *delta, *shape, *seed)
		return
	}

	steps, err := parseQPS(*qps)
	if err != nil {
		fail("%v", err)
	}
	specs, err := parseMix(*mix)
	if err != nil {
		fail("%v", err)
	}
	if *cancel < 0 || *cancel > 1 {
		fail("-cancel must be in [0,1]; got %g", *cancel)
	}

	fmt.Printf("mjload: %s, %d conns, %s per step, cancel %.0f%%\n",
		*addr, *conns, *duration, *cancel*100)
	fmt.Printf("%-10s%12s%10s%10s%8s%10s%10s%10s%14s%14s\n",
		"offered", "achieved", "done", "cancel", "errs", "p50(ms)", "p95(ms)", "p99(ms)", "avg wait(ms)", "spill(MiB)")
	for _, offered := range steps {
		res, err := serve.RunLoad(serve.LoadConfig{
			Addr: *addr, Conns: *conns, Duration: *duration,
			OfferedQPS: offered, CancelFrac: *cancel,
			Specs: specs, Window: *window, Seed: *seed,
		})
		if err != nil {
			fail("%v", err)
		}
		label := "closed"
		if offered > 0 {
			label = fmt.Sprintf("%.0f q/s", offered)
		}
		fmt.Printf("%-10s%12.1f%10d%10d%8d%10.1f%10.1f%10.1f%14.2f%14.2f\n",
			label, res.Achieved, res.Completed, res.Cancelled, res.Errors,
			ms(res.P50), ms(res.P95), ms(res.P99), ms(res.AvgQueueWait),
			float64(res.SpilledBytes)/(1<<20))
	}
}

func ms(d time.Duration) float64 { return d.Seconds() * 1e3 }

// runTicker drives one continuous-query step and prints its result.
func runTicker(addr string, duration time.Duration, views int, rate float64, delta int, shape string, seed int64) {
	fmt.Printf("mjload: ticker, %s, %d views (%s), %.0f rounds/s offered, %d tuples/round, %s\n",
		addr, views, shape, rate, delta, duration)
	res, err := serve.RunTicker(serve.TickerConfig{
		Addr: addr, Views: views, Duration: duration,
		Rate: rate, DeltaTuples: delta,
		Spec: serve.ViewSpec{Shape: shape}, Seed: seed,
	})
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("%8s%10s%8s%12s%12s%12s%12s%12s%14s\n",
		"views", "rounds", "errs", "rounds/s", "p50(ms)", "p95(ms)", "p99(ms)", "create(ms)", "changes/round")
	perRound := 0.0
	if res.Applies > 0 {
		perRound = float64(res.Changes) / float64(res.Applies)
	}
	fmt.Printf("%8d%10d%8d%12.1f%12.2f%12.2f%12.2f%12.1f%14.1f\n",
		res.Views, res.Applies, res.Errors, res.Achieved,
		ms(res.P50), ms(res.P95), ms(res.P99), ms(res.CreateP50), perRound)
}
