// Command mjworker is one worker process of the distributed ("dist")
// runtime. It is normally spawned by a coordinator with the MJ_DIST_*
// environment set (dist.InitWorker handles that form, including when the
// coordinator re-executes its own binary); running the command by hand
// with flags exists for debugging a worker against a live coordinator:
//
//	mjworker -connect 127.0.0.1:PORT -node 0 -run RUNID
package main

import (
	"flag"
	"fmt"
	"os"

	"multijoin/internal/dist"
)

func main() {
	dist.InitWorker() // never returns when spawned by a coordinator

	connect := flag.String("connect", "", "coordinator control address (host:port)")
	node := flag.Int("node", 0, "this worker's node id")
	run := flag.String("run", "", "run id the coordinator announced")
	flag.Parse()
	if *connect == "" || *run == "" {
		fmt.Fprintln(os.Stderr, "mjworker: -connect and -run are required (or spawn via the dist coordinator)")
		os.Exit(2)
	}
	if err := dist.ServeWorker(*connect, *node, *run); err != nil {
		fmt.Fprintf(os.Stderr, "mjworker %d: %v\n", *node, err)
		os.Exit(1)
	}
}
