// Command mjworker is one worker process of the distributed ("dist")
// runtime. It is normally spawned by a coordinator with the MJ_DIST_*
// environment set (dist.InitWorker handles that form, including when the
// coordinator re-executes its own binary); running the command by hand
// with flags exists for debugging a worker against a live coordinator:
//
//	mjworker -connect 127.0.0.1:PORT -node 0 -run RUNID
//
// On a multi-host run, -bind sets the data listener's address on this
// machine and -advertise the name peers on other hosts dial (a bare
// hostname composes with the bound port):
//
//	mjworker -connect coord:7000 -node 1 -run RUNID -bind 0.0.0.0:0 -advertise worker1.example
package main

import (
	"flag"
	"fmt"
	"os"

	"multijoin/internal/dist"
)

func main() {
	dist.InitWorker() // never returns when spawned by a coordinator

	connect := flag.String("connect", "", "coordinator control address (host:port)")
	node := flag.Int("node", 0, "this worker's node id")
	run := flag.String("run", "", "run id the coordinator announced")
	bind := flag.String("bind", "", "data listener bind address (default loopback, ephemeral port)")
	advertise := flag.String("advertise", "", "address peers dial for this worker's data listener (default: the bound address)")
	flag.Parse()
	if *connect == "" || *run == "" {
		fmt.Fprintln(os.Stderr, "mjworker: -connect and -run are required (or spawn via the dist coordinator)")
		os.Exit(2)
	}
	if err := dist.ServeWorkerOn(*connect, *node, *run, *bind, *advertise); err != nil {
		fmt.Fprintf(os.Stderr, "mjworker %d: %v\n", *node, err)
		os.Exit(1)
	}
}
