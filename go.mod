module multijoin

go 1.24
