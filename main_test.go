package multijoin_test

import (
	"os"
	"testing"

	"multijoin"
)

// TestMain lets the "dist" runtime spawn workers by re-executing this test
// binary: InitDistWorker routes spawned worker processes (MJ_DIST_*
// environment set) into the worker protocol and never returns for them; in
// the ordinary test process it only marks the binary self-executable.
func TestMain(m *testing.M) {
	multijoin.InitDistWorker()
	os.Exit(m.Run())
}
