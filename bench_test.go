// Benchmarks regenerating every table and figure of the paper's evaluation
// section. Each benchmark runs the corresponding experiment on the simulated
// PRISMA/DB machine at the paper's full scale (10 Wisconsin relations, 5K
// and 40K tuples per relation, 20-80 processors) and logs the regenerated
// table; the paper's headline number for the configuration is also exposed
// as a custom metric (virtual seconds, reported as resp-s/op).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The equivalent command-line tool is cmd/mjbench.
package multijoin_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"multijoin"
	"multijoin/internal/experiments"
	"multijoin/internal/jointree"
	"multijoin/internal/strategy"
)

// sweepOnce caches full-size sweeps so that Figure 14 (which aggregates all
// of Figures 9-13) does not recompute them, mirroring how the paper derives
// its summary table from the same measurement set.
var (
	sweepMu    sync.Mutex
	sweepCache = map[string][]experiments.Point{}
	runner     = experiments.NewRunner()
)

func sweep(b *testing.B, shape jointree.Shape, size experiments.ProblemSize) []experiments.Point {
	b.Helper()
	sweepMu.Lock()
	defer sweepMu.Unlock()
	key := shape.String() + "/" + size.Name
	if pts, ok := sweepCache[key]; ok {
		return pts
	}
	pts, err := runner.SweepShape(shape, size, multijoin.DefaultRuntime)
	if err != nil {
		b.Fatal(err)
	}
	sweepCache[key] = pts
	return pts
}

// benchFigure regenerates one response-time figure (both problem sizes).
func benchFigure(b *testing.B, fig string, shape jointree.Shape) {
	var last float64
	for i := 0; i < b.N; i++ {
		for _, size := range experiments.Sizes {
			pts := sweep(b, shape, size)
			if i == 0 {
				title := "Figure " + fig + ": " + shape.String() + " / " + size.Name
				b.Logf("\n%s", experiments.FormatSweep(title, pts))
			}
			best := experiments.BestOf(shape, size, pts)
			last = best.Seconds
		}
	}
	b.ReportMetric(last, "best-resp-s")
}

func BenchmarkFigure9_LeftLinear(b *testing.B)   { benchFigure(b, "9", jointree.LeftLinear) }
func BenchmarkFigure10_LeftBushy(b *testing.B)   { benchFigure(b, "10", jointree.LeftBushy) }
func BenchmarkFigure11_WideBushy(b *testing.B)   { benchFigure(b, "11", jointree.WideBushy) }
func BenchmarkFigure12_RightBushy(b *testing.B)  { benchFigure(b, "12", jointree.RightBushy) }
func BenchmarkFigure13_RightLinear(b *testing.B) { benchFigure(b, "13", jointree.RightLinear) }

// BenchmarkFigure14_BestTimes regenerates the paper's summary table of best
// response times per query shape and problem size.
func BenchmarkFigure14_BestTimes(b *testing.B) {
	var bestBushy float64
	for i := 0; i < b.N; i++ {
		var rows []experiments.Best
		for _, shape := range jointree.Shapes {
			for _, size := range experiments.Sizes {
				rows = append(rows, experiments.BestOf(shape, size, sweep(b, shape, size)))
			}
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatFigure14(rows))
		}
		for _, r := range rows {
			if r.Shape == jointree.WideBushy && r.Size.Name == "5K" {
				bestBushy = r.Seconds
			}
		}
	}
	b.ReportMetric(bestBushy, "widebushy5K-s")
}

// benchUtilization regenerates one processor-utilization diagram of the
// example 5-way tree on 10 processors.
func benchUtilization(b *testing.B, fig string) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.UtilizationFigure(fig)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", out)
		}
	}
}

func BenchmarkFigure3_SPUtilization(b *testing.B) { benchUtilization(b, "3") }
func BenchmarkFigure4_SEUtilization(b *testing.B) { benchUtilization(b, "4") }
func BenchmarkFigure6_RDUtilization(b *testing.B) { benchUtilization(b, "6") }
func BenchmarkFigure7_FPUtilization(b *testing.B) { benchUtilization(b, "7") }

// BenchmarkSingleJoinSpeedup regenerates the Section 2.3.1 experiment:
// intra-operator speedup of one join and the square-root rule for the
// optimal number of processors.
func BenchmarkSingleJoinSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.SingleJoinSpeedup(runner.Params, 1995)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", out)
		}
	}
}

// BenchmarkPipelineDelay regenerates the Section 2.3.3 experiment: constant
// per-step delay of linear pipelines vs operand-size-proportional delay of
// bushy pipelines.
func BenchmarkPipelineDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.PipelineDelay(runner.Params, 1995)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", out)
		}
	}
}

// BenchmarkAblationOverheads regenerates the Section 3.5 ablation: zeroing
// startup and handshake overheads one at a time on the overhead-bound SP
// configuration.
func BenchmarkAblationOverheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Ablation(5000, 1995)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", out)
		}
	}
}

// BenchmarkEngineSingleQuery measures raw simulator throughput for one
// mid-sized FP query — a plain Go benchmark of the engine itself.
func BenchmarkEngineSingleQuery(b *testing.B) {
	r := experiments.NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(jointree.WideBushy, strategy.FP, 5000, 40, multijoin.DefaultRuntime); err != nil {
			b.Fatal(err)
		}
	}
}

// benchParallelVsSim runs the same mid-sized wide-bushy query through both
// runtimes for one strategy: the benchmark's own ns/op is the goroutine
// runtime's real wall clock; the simulator's prediction for the identical
// plan is reported alongside as sim-resp-s. Comparing the four strategies'
// benchmarks shows whether the paper's virtual-clock ordering (FP/SE ahead
// of SP at this scale) survives contact with real cores.
func benchParallelVsSim(b *testing.B, kind strategy.Kind) {
	db, err := multijoin.NewDatabase(10, 5000, 1995)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := multijoin.BuildTree(multijoin.WideBushy, 10)
	if err != nil {
		b.Fatal(err)
	}
	// Plans target 16 processors (RD and FP need one per concurrent join);
	// the runtime's semaphore caps real concurrency at the host cores.
	const procs = 16
	maxProcs := multijoin.HostCap(procs)
	q := multijoin.Query{DB: db, Tree: tree, Strategy: kind, Procs: procs, Params: multijoin.DefaultParams()}
	simRes, err := multijoin.Run(q)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var wall time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := multijoin.Exec(ctx, q,
			multijoin.WithRuntime("parallel"), multijoin.WithMaxProcs(maxProcs))
		if err != nil {
			b.Fatal(err)
		}
		wall = res.Time
	}
	b.StopTimer()
	b.ReportMetric(simRes.ResponseTime.Seconds(), "sim-resp-s")
	b.ReportMetric(wall.Seconds(), "real-wall-s")
}

// benchExecAlloc measures the allocation profile of the goroutine runtime's
// steady-state data path on the paper's large problem: a left-linear tree
// over 10 relations of 40K tuples, planned for 80 processors. The left-linear
// shape maximizes pipeline depth, so per-batch garbage in scans, transport
// and hash tables dominates; allocs/op is the number the arena/pool work is
// gated on in CI (cmd/benchcheck).
func benchExecAlloc(b *testing.B, kind strategy.Kind) {
	db, err := multijoin.NewDatabase(10, 40000, 1995)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := multijoin.BuildTree(multijoin.LeftLinear, 10)
	if err != nil {
		b.Fatal(err)
	}
	const procs = 80
	maxProcs := multijoin.HostCap(procs)
	q := multijoin.Query{DB: db, Tree: tree, Strategy: kind, Procs: procs, Params: multijoin.DefaultParams()}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multijoin.Exec(ctx, q,
			multijoin.WithRuntime("parallel"), multijoin.WithMaxProcs(maxProcs)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecAlloc_FP(b *testing.B) { benchExecAlloc(b, strategy.FP) }
func BenchmarkExecAlloc_RD(b *testing.B) { benchExecAlloc(b, strategy.RD) }

// BenchmarkExecStreamAlloc_FP measures the allocation profile of the
// streaming collect path on the same workload as BenchmarkExecAlloc_FP:
// one long-lived Engine, results consumed tuple-by-tuple through a Rows
// cursor instead of materialized. The cursor hands pooled batches back on
// Next, so allocs/op must stay in the same regime as the materialized path
// (minus the result relation itself); cmd/benchcheck gates it in CI.
func BenchmarkExecStreamAlloc_FP(b *testing.B) {
	db, err := multijoin.NewDatabase(10, 40000, 1995)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := multijoin.BuildTree(multijoin.LeftLinear, 10)
	if err != nil {
		b.Fatal(err)
	}
	const procs = 80
	eng, err := multijoin.Open(db,
		multijoin.WithEngineRuntime("parallel"),
		multijoin.WithEngineProcs(multijoin.HostCap(procs)))
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	q := multijoin.Query{DB: db, Tree: tree, Strategy: strategy.FP, Procs: procs, Params: multijoin.DefaultParams()}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eng.Query(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for rows.Next() {
			_ = rows.Tuple()
			n++
		}
		if err := rows.Err(); err != nil {
			b.Fatal(err)
		}
		if n != 40000 {
			b.Fatalf("streamed %d tuples, want 40000", n)
		}
	}
}

// BenchmarkViewApplyDelta_FP measures the steady-state incremental
// maintenance path: one resident materialized view over a left-linear
// chain, each iteration applying a mixed delta round (64 fresh inserts
// into relation 0 plus the previous round's 64 tuples back out) through
// the resident FP network. The per-round work — routing, signed probes,
// table insert/delete, collector updates — must run on pooled batches;
// cmd/benchcheck gates allocs/op in CI like the other hot paths.
func BenchmarkViewApplyDelta_FP(b *testing.B) {
	const deltaK = 64
	db, err := multijoin.NewDatabase(5, 5000, 1995)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := multijoin.BuildTree(multijoin.LeftLinear, 5)
	if err != nil {
		b.Fatal(err)
	}
	const procs = 16
	eng, err := multijoin.Open(db, multijoin.WithEngineProcs(multijoin.HostCap(procs)))
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	q := multijoin.Query{DB: db, Tree: tree, Strategy: strategy.FP, Procs: procs, Params: multijoin.DefaultParams()}
	ctx := context.Background()
	view, err := eng.CreateView(ctx, q)
	if err != nil {
		b.Fatal(err)
	}
	defer view.Close()
	// Two alternating tuple sets: round i inserts sets[i%2] and deletes
	// sets[(i+1)%2], so the view's cardinality is pinned and every timed
	// round does identical insert+delete work. The warm-up round seeds the
	// first delete set (and the batch pools).
	var sets [2][]multijoin.Tuple
	for s := range sets {
		sets[s] = make([]multijoin.Tuple, deltaK)
		for i := range sets[s] {
			sets[s][i] = multijoin.Tuple{
				Unique1: int64(10000 + s*deltaK + i),
				Unique2: int64((s*deltaK + i) % 5000),
				Check:   uint64(s*deltaK + i),
			}
		}
	}
	if _, err := view.Apply(ctx, multijoin.ViewDelta{Rel: 0, Insert: sets[1]}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := view.Apply(ctx, multijoin.ViewDelta{
			Rel: 0, Insert: sets[i%2], Delete: sets[(i+1)%2],
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Unmatched != 0 {
			b.Fatalf("round %d: %d unmatched deletes", i, res.Unmatched)
		}
	}
}

// BenchmarkEngineQueryCached measures the hot plan-cache path: a small
// repeated query shape on one long-lived Engine, where every iteration
// after the first hits the memoized plan. Planning allocations must not
// appear per-query — cmd/benchcheck gates the allocs/op baseline in CI.
func BenchmarkEngineQueryCached(b *testing.B) {
	db, err := multijoin.NewDatabase(5, 1000, 1995)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := multijoin.BuildTree(multijoin.WideBushy, 5)
	if err != nil {
		b.Fatal(err)
	}
	const procs = 8
	eng, err := multijoin.Open(db,
		multijoin.WithEngineRuntime("parallel"),
		multijoin.WithEngineProcs(multijoin.HostCap(procs)))
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	q := multijoin.Query{DB: db, Tree: tree, Strategy: strategy.FP, Procs: procs, Params: multijoin.DefaultParams()}
	ctx := context.Background()
	// Warm the plan cache so every timed iteration is a hit.
	if _, err := eng.Exec(ctx, q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eng.Query(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for rows.Next() {
			_ = rows.Tuple()
			n++
		}
		if err := rows.Err(); err != nil {
			b.Fatal(err)
		}
		if n != 1000 {
			b.Fatalf("streamed %d tuples, want 1000", n)
		}
	}
	b.StopTimer()
	hits, misses := eng.PlanCacheStats()
	if hits < int64(b.N) || misses != 1 {
		b.Fatalf("plan cache hits=%d misses=%d, want >= %d hits and exactly 1 miss", hits, misses, b.N)
	}
}

func BenchmarkParallelVsSim_SP(b *testing.B) { benchParallelVsSim(b, strategy.SP) }
func BenchmarkParallelVsSim_SE(b *testing.B) { benchParallelVsSim(b, strategy.SE) }
func BenchmarkParallelVsSim_RD(b *testing.B) { benchParallelVsSim(b, strategy.RD) }
func BenchmarkParallelVsSim_FP(b *testing.B) { benchParallelVsSim(b, strategy.FP) }
